// Benchmarks: one per experiment in EXPERIMENTS.md (the paper's
// Figure 1 plus the quantitative claims E1-E7 from §4 and §5). Run
//
//	go test -bench=. -benchmem
//
// cmd/pbench prints the corresponding row-level tables.
package packagebuilder

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/explore"
	"repro/internal/lifecycle"
	"repro/internal/minidb"
	"repro/internal/search"
	"repro/internal/sketch"
	"repro/internal/translate"
	"repro/internal/value"
	"repro/internal/viz"
)

const benchMealQuery = `
	SELECT PACKAGE(R) AS P
	FROM recipes R
	WHERE R.gluten = 'free'
	SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500
	MAXIMIZE SUM(P.protein)`

func benchDB(b *testing.B, n int) *minidb.DB {
	b.Helper()
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: n, Seed: 42}); err != nil {
		b.Fatal(err)
	}
	return db
}

func benchPrep(b *testing.B, n int) *core.Prepared {
	b.Helper()
	prep, err := core.Prepare(benchDB(b, n), benchMealQuery)
	if err != nil {
		b.Fatal(err)
	}
	return prep
}

// BenchmarkF1_SummaryRender measures the Figure 1 interface pipeline:
// evaluate several packages, choose 2 display dimensions, lay out and
// render the package-space summary.
func BenchmarkF1_SummaryRender(b *testing.B) {
	db := benchDB(b, 500)
	ses, err := explore.NewSession(db, benchMealQuery, core.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	prep := ses.Prepared()
	res, err := prep.Run(core.Options{Limit: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := viz.Summarize(prep, res.Packages, 0, false)
		if err != nil {
			b.Fatal(err)
		}
		sum.RenderASCII(io.Discard, 56, 12)
	}
}

// BenchmarkE1_PrunedVsBrute compares complete enumeration with and
// without §4.1 cardinality pruning (same answers, fewer nodes).
func BenchmarkE1_PrunedVsBrute(b *testing.B) {
	for _, n := range []int{14, 18} {
		prep := benchPrep(b, n)
		b.Run(fmt.Sprintf("brute/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := search.BruteForce(prep.Instance, search.Options{Limit: 1 << 30}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("pruned/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := search.PrunedEnumerate(prep.Instance, search.Options{Limit: 1 << 30, NoObjBound: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2_Strategies times each evaluation strategy on the meal
// query at sizes where it is viable.
func BenchmarkE2_Strategies(b *testing.B) {
	type cfg struct {
		strategy core.Strategy
		sizes    []int
	}
	cases := []cfg{
		{core.BruteForceStrategy, []int{16, 20}},
		{core.PrunedEnum, []int{16, 20, 100}},
		{core.Solver, []int{100, 1000, 5000}},
		{core.LocalSearchStrategy, []int{100, 1000, 5000}},
	}
	for _, c := range cases {
		for _, n := range c.sizes {
			prep := benchPrep(b, n)
			b.Run(fmt.Sprintf("%s/n=%d", c.strategy, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := prep.Run(core.Options{Strategy: c.strategy, Seed: 1}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE3_KReplacement times the §4.2 replacement neighbourhood
// query (a 2k-way SQL join) for k = 1, 2.
func BenchmarkE3_KReplacement(b *testing.B) {
	for _, n := range []int{100, 500} {
		db := benchDB(b, n)
		prep, err := core.Prepare(db, benchMealQuery)
		if err != nil {
			b.Fatal(err)
		}
		inst := prep.Instance
		mult := make([]int, len(inst.Rows))
		placed := 0
		for i := range mult {
			if placed < 3 {
				mult[i] = 1
				placed++
			}
		}
		for _, k := range []int{1, 2} {
			b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, _, err := search.ReplacementProbe(inst, db, mult, k); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE4_MultiPackage measures retrieving m packages through
// repeated MILP solves with exclusion cuts (§5 solver limitations).
func BenchmarkE4_MultiPackage(b *testing.B) {
	prep := benchPrep(b, 500)
	for _, m := range []int{1, 5, 10} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				model, err := translate.Translate(prep.Analysis, prep.Instance.Rows, prep.Instance.IDs)
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < m; k++ {
					res, err := model.Solve()
					if err != nil {
						b.Fatal(err)
					}
					if res.Solution.X == nil {
						break
					}
					if k+1 < m {
						if err := model.AddExclusionCut(res.Multiplicities); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}

// BenchmarkE5_Quality times local search at increasing restart budgets
// (the quality numbers are in cmd/pbench -exp e5).
func BenchmarkE5_Quality(b *testing.B) {
	db := benchDB(b, 200)
	prep, err := core.Prepare(db, benchMealQuery)
	if err != nil {
		b.Fatal(err)
	}
	for _, restarts := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("restarts=%d", restarts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := search.LocalSearch(prep.Instance, db, search.Options{
					Restarts: restarts, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6_Repeat measures solver cost as REPEAT widens multiplicity.
func BenchmarkE6_Repeat(b *testing.B) {
	db := benchDB(b, 30)
	for _, repeat := range []int{0, 2, 4} {
		q := fmt.Sprintf(`
			SELECT PACKAGE(R) AS P FROM recipes R REPEAT %d
			SUCH THAT COUNT(*) = 5 AND SUM(P.protein) >= 150
			MAXIMIZE SUM(P.protein)`, repeat)
		b.Run(fmt.Sprintf("repeat=%d", repeat), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Evaluate(db, q, core.Options{Strategy: core.Solver}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7_Diversity compares top-k retrieval with diverse selection.
func BenchmarkE7_Diversity(b *testing.B) {
	prep := benchPrep(b, 300)
	for _, diverse := range []bool{false, true} {
		name := "topk"
		if diverse {
			name = "diverse"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := prep.Run(core.Options{
					Strategy: core.Solver, Limit: 5, Diverse: diverse, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8_SketchRefine compares the partition-based SketchRefine
// strategy against the exact MILP solver as the relation grows (the
// follow-up papers' scalability claim). cmd/pbench -exp e8 prints the
// matching objective-gap table, including the N=100k point.
func BenchmarkE8_SketchRefine(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		prep := benchPrep(b, n)
		b.Run(fmt.Sprintf("exact/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prep.Run(core.Options{Strategy: core.Solver, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sketch/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prep.Run(core.Options{Strategy: core.SketchRefineStrategy, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9_HierarchicalSketch compares flat SketchRefine against the
// depth-2 partition tree and against a warm cross-query partition
// cache. cmd/pbench -exp e9 prints the matching table with the N=1M
// point.
func BenchmarkE9_HierarchicalSketch(b *testing.B) {
	n := 20000
	prep := benchPrep(b, n)
	b.Run(fmt.Sprintf("flat/n=%d", n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prep.Run(core.Options{Strategy: core.SketchRefineStrategy, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("hier-d2/n=%d", n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prep.Run(core.Options{Strategy: core.SketchRefineStrategy, Seed: 1, SketchDepth: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("hier-d2-cached/n=%d", n), func(b *testing.B) {
		cache := sketch.NewCache(0)
		opts := core.Options{Strategy: core.SketchRefineStrategy, Seed: 1, SketchDepth: 2, SketchCache: cache}
		if _, err := prep.Run(opts); err != nil { // warm the cache
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := prep.Run(opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE10_ParallelPersist compares the serial SketchRefine
// pipeline against the parallel one (identical results, divided work)
// and against a disk-warm cold start that loads the partition tree from
// the on-disk store instead of rebuilding. cmd/pbench -exp e10 prints
// the matching table with the 1M and 10M points.
func BenchmarkE10_ParallelPersist(b *testing.B) {
	n := 20000
	prep := benchPrep(b, n)
	base := core.Options{Strategy: core.SketchRefineStrategy, Seed: 1, SketchDepth: 2}
	b.Run(fmt.Sprintf("serial/n=%d", n), func(b *testing.B) {
		opts := base
		opts.SketchParallelism = 1
		for i := 0; i < b.N; i++ {
			if _, err := prep.Run(opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("parallel/n=%d/workers=%d", n, runtime.GOMAXPROCS(0)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prep.Run(base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("disk-warm/n=%d", n), func(b *testing.B) {
		opts := base
		opts.SketchPersistDir = b.TempDir()
		if _, err := prep.Run(opts); err != nil { // cold run writes the tree
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := prep.Run(opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11_FullGrammarSketch runs the full-atom-grammar workloads —
// an AVG rewrite, a MIN/MAX envelope query, and a two-branch
// disjunction — under SketchRefine, the queries that used to fall back
// to the exact solver. cmd/pbench -exp e11 prints the matching
// sketch-vs-exact table with the 100k and 1M points.
func BenchmarkE11_FullGrammarSketch(b *testing.B) {
	n := 20000
	db := benchDB(b, n)
	for _, q := range bench.E11Queries {
		prep, err := core.Prepare(db, q.Query)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s/n=%d", q.Name, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := prep.Run(core.Options{Strategy: core.SketchRefineStrategy, Seed: 1, SketchDepth: 2})
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.Strategy != core.SketchRefineStrategy || res.Stats.SketchLevels < 1 {
					b.Fatalf("fell off the sketch path: strategy=%v levels=%d",
						res.Stats.Strategy, res.Stats.SketchLevels)
				}
			}
		})
	}
}

// BenchmarkE12_IncrementalMaintenance compares tree readiness after a
// 1% write batch: a full rebuild of the partition tree versus
// Tree.ApplyDelta patching the stale tree through the real lineage
// pipeline (minidb delta log → fingerprint memo → remap). cmd/pbench
// -exp e12 prints the matching table with the 100k/1M points and the
// 0.1%/1%/10% batch sweep.
func BenchmarkE12_IncrementalMaintenance(b *testing.B) {
	n := 20000
	db := benchDB(b, n)
	prep, err := core.Prepare(db, benchMealQuery)
	if err != nil {
		b.Fatal(err)
	}
	opts := sketch.Options{MaxPartitionSize: 64, Depth: 2, Seed: 1}
	memo := core.NewFingerprintMemo()
	memo.Advance(prep)
	base := sketch.BuildTree(prep.Instance, opts)

	batch := n / 100
	rows := dataset.Recipes(dataset.RecipesConfig{N: batch, Seed: 7})
	for i := range rows {
		rows[i][0] = value.Int(int64(n + 1000000 + i))
	}
	if err := db.InsertRows("recipes", rows); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec(fmt.Sprintf("DELETE FROM recipes WHERE id > %d AND id <= %d", n/2, n/2+batch/5)); err != nil {
		b.Fatal(err)
	}
	prep2, err := core.Prepare(db, benchMealQuery)
	if err != nil {
		b.Fatal(err)
	}
	_, patch := memo.Advance(prep2)
	if patch == nil {
		b.Fatal("no patch lineage")
	}
	b.Run(fmt.Sprintf("rebuild/n=%d/batch=1%%", n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if tree := sketch.BuildTree(prep2.Instance, opts); len(tree.Leaves()) == 0 {
				b.Fatal("empty tree")
			}
		}
	})
	b.Run(fmt.Sprintf("apply-delta/n=%d/batch=1%%", n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			patched, ok := base.ApplyDelta(prep2.Instance.Rows, patch.Remap, opts)
			if !ok || len(patched.Leaves()) == 0 {
				b.Fatal("patch failed")
			}
		}
	})
}

// BenchmarkE13_PlannerVsHandSet compares the cost-based planner
// (strategy and every sketch knob chosen from catalog statistics)
// against the pre-planner hand-set defaults (flat τ=64 sketch, serial,
// rebuild after writes) on a read-only and a write-heavy cell.
// cmd/pbench -exp e13 prints the matching table with the 100k/1M mixed
// workload.
func BenchmarkE13_PlannerVsHandSet(b *testing.B) {
	n := 20000
	handOpts := func(db *minidb.DB) core.Options {
		return core.Options{Strategy: core.SketchRefineStrategy, Seed: 1,
			SketchPartitionSize: 64, SketchDepth: 1, SketchParallelism: 1,
			SketchIncremental: false, SketchIncrementalSet: true,
			SketchCache: sketch.NewCache(0), SketchMemo: core.NewFingerprintMemo()}
	}
	planOpts := func(db *minidb.DB) core.Options {
		return core.Options{Seed: 1, SketchCache: sketch.NewCache(0),
			SketchMemo: core.NewFingerprintMemo(), Catalog: catalog.New(db)}
	}
	for _, v := range []struct {
		name string
		opts func(*minidb.DB) core.Options
	}{{"hand-set", handOpts}, {"planner", planOpts}} {
		b.Run(fmt.Sprintf("read-only/%s/n=%d", v.name, n), func(b *testing.B) {
			db := benchDB(b, n)
			opts := v.opts(db)
			prep, err := core.Prepare(db, benchMealQuery)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prep.Run(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("write-heavy/%s/n=%d", v.name, n), func(b *testing.B) {
			db := benchDB(b, n)
			opts := v.opts(db)
			prep, err := core.Prepare(db, benchMealQuery)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := prep.Run(opts); err != nil { // warm the tree
				b.Fatal(err)
			}
			batch := n / 100
			rows := dataset.Recipes(dataset.RecipesConfig{N: batch, Seed: 7})
			for i := range rows {
				rows[i][0] = value.Int(int64(n + 1000000 + i))
			}
			if err := db.InsertRows("recipes", rows); err != nil {
				b.Fatal(err)
			}
			if prep, err = core.Prepare(db, benchMealQuery); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prep.Run(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE15_CertifiedBounds times the certified-interval machinery:
// the meal query with the planner-chosen bound pass (every answer must
// ship a certificate), and the two-branch disjunctive query with
// GapTolerance=5% (the anytime exit must certify after fewer branches
// than the tolerance-off control). cmd/pbench -exp e15 prints the
// matching table with the 100k/1M points and the standalone bound-LP
// overhead.
func BenchmarkE15_CertifiedBounds(b *testing.B) {
	n := 20000
	b.Run(fmt.Sprintf("certified/n=%d", n), func(b *testing.B) {
		db := benchDB(b, n)
		prep, err := core.Prepare(db, benchMealQuery)
		if err != nil {
			b.Fatal(err)
		}
		opts := core.Options{Seed: 1, SketchCache: sketch.NewCache(0),
			SketchMemo: core.NewFingerprintMemo(), Catalog: catalog.New(db)}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := prep.Run(opts)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Stats.Certified {
				b.Fatalf("no certificate: %+v", res.Stats)
			}
		}
	})
	b.Run(fmt.Sprintf("anytime-gap5/n=%d", n), func(b *testing.B) {
		db := benchDB(b, n)
		prep, err := core.Prepare(db, bench.E15Disjunctive)
		if err != nil {
			b.Fatal(err)
		}
		control, err := prep.Run(core.Options{Strategy: core.SketchRefineStrategy, Seed: 1,
			SketchCache: sketch.NewCache(0), SketchMemo: core.NewFingerprintMemo()})
		if err != nil {
			b.Fatal(err)
		}
		opts := core.Options{Strategy: core.SketchRefineStrategy, Seed: 1,
			SketchCache: sketch.NewCache(0), SketchMemo: core.NewFingerprintMemo(),
			GapTolerance: 0.05}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := prep.Run(opts)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Stats.Certified {
				b.Fatalf("anytime run lost the certificate: %+v", res.Stats)
			}
			if res.Stats.SketchBranches >= control.Stats.SketchBranches {
				b.Fatalf("no early exit: %d branches with tolerance vs %d without",
					res.Stats.SketchBranches, control.Stats.SketchBranches)
			}
		}
	})
}

// BenchmarkE16_BandTightening times the staged bound pipeline against
// the legacy per-leaf envelope on the BETWEEN-heavy band query, and
// asserts the pipeline's certified gap actually beats the envelope's —
// the tightening stages' whole point. cmd/pbench -exp e16 prints the
// matching table with the 100k/1M points, bound-pass share, and the
// anytime early-exit cell.
func BenchmarkE16_BandTightening(b *testing.B) {
	n := 20000
	db := benchDB(b, n)
	prep, err := core.Prepare(db, bench.E16Query)
	if err != nil {
		b.Fatal(err)
	}
	solve := func(b *testing.B, mode string) *sketch.Result {
		res, err := sketch.Solve(prep.Instance, sketch.Options{Seed: 1, BoundMode: mode})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Feasible || !res.Certified {
			b.Fatalf("mode %q: no certified package: %+v", mode, res)
		}
		return res
	}
	envGap := solve(b, sketch.BoundModeEnvelope).Gap
	b.Run(fmt.Sprintf("envelope/n=%d", n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solve(b, sketch.BoundModeEnvelope)
		}
	})
	b.Run(fmt.Sprintf("pipeline/n=%d", n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := solve(b, ""); res.Gap >= envGap {
				b.Fatalf("pipeline gap %.2f%% did not beat envelope gap %.2f%%",
					100*res.Gap, 100*envGap)
			}
		}
	})
}

// BenchmarkSketchPartition isolates the offline partitioning step.
func BenchmarkSketchPartition(b *testing.B) {
	prep := benchPrep(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		part := sketch.Partition(prep.Instance, sketch.Options{MaxPartitionSize: 64, Seed: 1})
		if len(part.Groups) == 0 {
			b.Fatal("no partitions")
		}
	}
}

// BenchmarkE14_LifecycleLoad pushes concurrent clients through the
// admission controller over a warmed partition tree — the Go-bench
// twin of cmd/pbench -exp e14's QPS/p50/p95/p99 table. Each iteration
// is one admitted query (acquire, solve, release) racing b.RunParallel
// workers for the controller's 4 slots.
func BenchmarkE14_LifecycleLoad(b *testing.B) {
	db := benchDB(b, 20000)
	cache := sketch.NewCache(0)
	opts := core.Options{Strategy: core.SketchRefineStrategy, Seed: 1,
		SketchCache: cache, SketchMemo: core.NewFingerprintMemo()}
	prep, err := core.Prepare(db, benchMealQuery)
	if err != nil {
		b.Fatal(err)
	}
	prep.SketchCache = cache
	if _, err := prep.Run(opts); err != nil {
		b.Fatal(err) // warm the tree outside the timed region
	}
	adm := lifecycle.NewController(4, 1<<20)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			release, err := adm.Acquire(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			_, rerr := prep.RunContext(context.Background(), opts)
			release()
			if rerr != nil {
				b.Fatal(rerr)
			}
		}
	})
}

// Portfolio reproduces the paper's §1 investment-portfolio scenario:
// "the client has a budget of $50K, wants to invest at least 30% of the
// assets in technology, and wants a balance of short-term and long-term
// options."
//
// The 30%-of-assets requirement is a linear constraint relating a
// filtered aggregate to the total — SUM(price WHERE tech) >= 0.3 *
// SUM(price) rearranges to an affine atom — and the short/long balance
// is a pair of filtered counts.
package main

import (
	"fmt"
	"log"
	"os"

	pb "repro"
	"repro/internal/dataset"
)

func main() {
	sys := pb.New()
	if err := dataset.LoadStocks(sys.DB(), "stocks", dataset.StocksConfig{N: 400, Seed: 11}); err != nil {
		log.Fatal(err)
	}

	query := `
		SELECT PACKAGE(S) AS P
		FROM stocks S
		WHERE S.risk <= 0.8
		SUCH THAT COUNT(*) BETWEEN 5 AND 12
		      AND SUM(P.price) <= 50000
		      AND SUM(P.price WHERE P.sector = 'technology') - 0.3 * SUM(P.price) >= 0
		      AND COUNT(* WHERE P.horizon = 'short') >= 2
		      AND COUNT(* WHERE P.horizon = 'long') >= 2
		MAXIMIZE SUM(P.price * P.expret)`

	fmt.Println("=== the broker's portfolio (max expected dollar return) ===")
	res, err := sys.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	pb.FormatResult(os.Stdout, sys, res)

	// Sanity-check the 30% technology allocation from the result.
	p := res.Packages[0]
	var total, tech float64
	for _, row := range p.Rows {
		price, _ := row[3].AsFloat()
		total += price
		if row[2].StrVal() == "technology" {
			tech += price
		}
	}
	fmt.Printf("technology share: %.1f%% of $%.0f invested\n", 100*tech/total, total)
}

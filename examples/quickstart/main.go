// Quickstart: load a tiny table, run one PaQL package query, print the
// result. This is the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	pb "repro"
)

func main() {
	sys := pb.New()

	// Any relational data works; here a small inline CSV of snacks.
	csv := `id:int,name,kcal:float,protein:float
1,Apple,95,0.5
2,Greek Yogurt,100,17
3,Trail Mix,350,10
4,Protein Bar,210,20
5,Banana,105,1.3
6,Cheese Sticks,160,12
7,Hummus Cup,180,6
`
	if _, err := sys.LoadCSV("snacks", strings.NewReader(csv)); err != nil {
		log.Fatal(err)
	}

	// A package of exactly 3 snacks totalling at most 500 kcal, with as
	// much protein as possible. The per-snack cap is a base constraint;
	// the calorie total and count are global constraints.
	res, err := sys.Query(`
		SELECT PACKAGE(S) AS P
		FROM snacks S
		WHERE S.kcal <= 250
		SUCH THAT COUNT(*) = 3 AND SUM(P.kcal) <= 500
		MAXIMIZE SUM(P.protein)`)
	if err != nil {
		log.Fatal(err)
	}
	pb.FormatResult(os.Stdout, sys, res)
	fmt.Println("done")
}

// Vacation reproduces the paper's §1 vacation-planner scenario: "a
// couple wants to organize a relaxing vacation at a tropical
// destination. They do not want to spend more than $2,000 on flights
// and hotels combined. They also want to be in walking distance from
// the beach, unless their budget can fit a rental car."
//
// The "unless" becomes a disjunctive global constraint — exactly the
// kind of arbitrary Boolean formula PackageBuilder supports in SUCH
// THAT — and the per-kind requirements use filtered aggregates.
package main

import (
	"fmt"
	"log"
	"os"

	pb "repro"
	"repro/internal/dataset"
)

func main() {
	sys := pb.New()
	err := dataset.LoadVacation(sys.DB(), "items", dataset.VacationConfig{
		Flights: 25, Hotels: 35, Cars: 12, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One flight, one hotel; total under budget; the hotel is within
	// 1 km of the beach OR the package includes a rental car. Among all
	// valid vacations, the cheapest wins.
	query := `
		SELECT PACKAGE(V) AS P
		FROM items V
		SUCH THAT COUNT(* WHERE P.kind = 'flight') = 1
		      AND COUNT(* WHERE P.kind = 'hotel') = 1
		      AND COUNT(* WHERE P.kind = 'car') <= 1
		      AND COUNT(*) <= 3
		      AND SUM(P.price) <= 2000
		      AND (MAX(P.dist WHERE P.kind = 'hotel') <= 1.0
		           OR COUNT(* WHERE P.kind = 'car') >= 1)
		MINIMIZE SUM(P.price)`

	fmt.Println("=== cheapest valid vacation ===")
	res, err := sys.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	pb.FormatResult(os.Stdout, sys, res)

	// What if the budget tightens? PaQL sub-queries can pull bounds from
	// the data itself: stay under the cheapest flight+hotel pair plus 50%.
	fmt.Println("\n=== alternatives: three diverse vacations under budget ===")
	res, err = sys.Query(query, pb.WithLimit(3), pb.WithDiverse())
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range res.Packages {
		total := p.AggValues["SUM(V.price)"]
		fmt.Printf("option %d: $%s —", i+1, total)
		for _, row := range p.Rows {
			fmt.Printf(" %s ($%s)", row[2], row[4]) // name, price
		}
		fmt.Println()
	}
}

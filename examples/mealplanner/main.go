// Mealplanner reproduces the paper's running example and demo scenario
// (§1, §7): an athlete builds a high-protein, gluten-free daily plan of
// three meals totalling 2000-2500 calories — then explores the package
// space interactively: pins a meal she likes, asks for replacements,
// and requests constraint suggestions for the "fat" column, exactly the
// Figure 1 interactions.
package main

import (
	"fmt"
	"log"
	"os"

	pb "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/explore"
	"repro/internal/template"
)

const mealQuery = `
	SELECT PACKAGE(R) AS P
	FROM recipes R
	WHERE R.gluten = 'free'
	SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500
	MAXIMIZE SUM(P.protein)`

func main() {
	sys := pb.New()
	if err := dataset.LoadRecipes(sys.DB(), "recipes", dataset.RecipesConfig{N: 500, Seed: 42}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== the athlete's daily plan (PaQL, §2) ===")
	res, err := sys.Query(mealQuery)
	if err != nil {
		log.Fatal(err)
	}
	pb.FormatResult(os.Stdout, sys, res)

	// Adaptive exploration (§3.3): keep the best meal, replace the rest.
	fmt.Println("\n=== adaptive exploration: pin the highest-protein meal, replace the others ===")
	ses, err := sys.Explore(mealQuery)
	if err != nil {
		log.Fatal(err)
	}
	first, err := ses.Refresh()
	if err != nil {
		log.Fatal(err)
	}
	bestIdx, bestProt := -1, -1.0
	for i, m := range first.Mult {
		if m > 0 {
			p, _ := ses.Prepared().Instance.Rows[i][6].AsFloat() // protein column
			if p > bestProt {
				bestProt, bestIdx = p, i
			}
		}
	}
	if err := ses.Pin(bestIdx); err != nil {
		log.Fatal(err)
	}
	for round := 1; round <= 2; round++ {
		next, err := ses.Replace()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replacement %d keeps the pinned meal and reaches protein %g\n",
			round, next.Objective)
	}

	// Constraint suggestion (§3.1): highlight the fat column.
	fmt.Println("\n=== suggestions for the highlighted \"fat\" column ===")
	sugg, err := ses.Suggest(explore.Highlight{Column: "fat", Row: -1})
	if err != nil {
		log.Fatal(err)
	}
	for _, sg := range sugg {
		fmt.Printf("  [%-9s] %-44s %s\n", sg.Kind, sg.Text, sg.Why)
	}

	// The package template (§3.1) renders the same query as slots.
	fmt.Println("\n=== package template ===")
	tpl, err := template.FromText(mealQuery)
	if err != nil {
		log.Fatal(err)
	}
	tab, _ := sys.DB().Table("recipes")
	tpl.Render(os.Stdout, tab.Schema, ses.Current(), []string{"name", "calories", "protein", "fat"})

	// The package-space summary (§3.2).
	fmt.Println("\n=== package space (top 8 packages, 2 auto-chosen dimensions) ===")
	prep := ses.Prepared()
	many, err := prep.Run(core.Options{Limit: 8, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	sum, err := sys.Summarize(prep, many.Packages, 0, false)
	if err != nil {
		log.Fatal(err)
	}
	sum.RenderASCII(os.Stdout, 56, 12)
}

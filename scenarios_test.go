package packagebuilder_test

// End-to-end tests of the paper's three §1 motivating scenarios, run
// through the public API against seeded synthetic data. These are the
// same queries as examples/{mealplanner,vacation,portfolio}, with the
// paper's stated requirements asserted on the results.

import (
	"testing"

	pb "repro"
	"repro/internal/dataset"
)

// §1 Meal planner: "a high-protein set of three gluten-free meals for
// the day, having in total between 2,000 and 2,500 calories."
func TestScenarioMealPlanner(t *testing.T) {
	sys := pb.New()
	if err := dataset.LoadRecipes(sys.DB(), "recipes", dataset.RecipesConfig{N: 300, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(`
		SELECT PACKAGE(R) AS P
		FROM recipes R
		WHERE R.gluten = 'free'
		SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500
		MAXIMIZE SUM(P.protein)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) != 1 {
		t.Fatalf("packages = %d", len(res.Packages))
	}
	p := res.Packages[0]
	if p.Size() != 3 {
		t.Errorf("meals = %d, want 3", p.Size())
	}
	cal, _ := p.AggValues["SUM(R.calories)"].AsFloat()
	if cal < 2000 || cal > 2500 {
		t.Errorf("total calories %g outside the daily budget", cal)
	}
	for _, row := range p.Rows {
		if row[4].StrVal() != "free" {
			t.Errorf("gluten meal slipped in: %v", row)
		}
	}
	if !res.Stats.Exact {
		t.Error("meal planner should solve exactly")
	}
}

// §1 Vacation planner: "no more than $2,000 on flights and hotels
// combined … walking distance from the beach, unless their budget can
// fit a rental car."
func TestScenarioVacationPlanner(t *testing.T) {
	sys := pb.New()
	err := dataset.LoadVacation(sys.DB(), "items", dataset.VacationConfig{
		Flights: 20, Hotels: 30, Cars: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(`
		SELECT PACKAGE(V) AS P
		FROM items V
		SUCH THAT COUNT(* WHERE P.kind = 'flight') = 1
		      AND COUNT(* WHERE P.kind = 'hotel') = 1
		      AND COUNT(* WHERE P.kind = 'car') <= 1
		      AND COUNT(*) <= 3
		      AND SUM(P.price) <= 2000
		      AND (MAX(P.dist WHERE P.kind = 'hotel') <= 1.0
		           OR COUNT(* WHERE P.kind = 'car') >= 1)
		MINIMIZE SUM(P.price)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) != 1 {
		t.Fatalf("packages = %d", len(res.Packages))
	}
	p := res.Packages[0]
	var total float64
	kinds := map[string]int{}
	var hotelDist float64
	for _, row := range p.Rows {
		kinds[row[1].StrVal()]++
		price, _ := row[4].AsFloat()
		total += price
		if row[1].StrVal() == "hotel" {
			hotelDist, _ = row[5].AsFloat()
		}
	}
	if kinds["flight"] != 1 || kinds["hotel"] != 1 {
		t.Errorf("itinerary shape: %v", kinds)
	}
	if total > 2000 {
		t.Errorf("budget exceeded: $%g", total)
	}
	// the disjunction: near-beach hotel OR a rental car
	if hotelDist > 1.0 && kinds["car"] == 0 {
		t.Errorf("far hotel (%.2f km) without a car", hotelDist)
	}
}

// §1 Investment portfolio: "a budget of $50K, at least 30% of the
// assets in technology, and a balance of short-term and long-term
// options."
func TestScenarioInvestmentPortfolio(t *testing.T) {
	sys := pb.New()
	if err := dataset.LoadStocks(sys.DB(), "stocks", dataset.StocksConfig{N: 250, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(`
		SELECT PACKAGE(S) AS P
		FROM stocks S
		WHERE S.risk <= 0.8
		SUCH THAT COUNT(*) BETWEEN 5 AND 12
		      AND SUM(P.price) <= 50000
		      AND SUM(P.price WHERE P.sector = 'technology') - 0.3 * SUM(P.price) >= 0
		      AND COUNT(* WHERE P.horizon = 'short') >= 2
		      AND COUNT(* WHERE P.horizon = 'long') >= 2
		MAXIMIZE SUM(P.price * P.expret)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) != 1 {
		t.Fatalf("packages = %d", len(res.Packages))
	}
	p := res.Packages[0]
	var total, tech float64
	horizons := map[string]int{}
	for _, row := range p.Rows {
		price, _ := row[3].AsFloat()
		total += price
		if row[2].StrVal() == "technology" {
			tech += price
		}
		horizons[row[6].StrVal()]++
		risk, _ := row[5].AsFloat()
		if risk > 0.8 {
			t.Errorf("base constraint violated: risk %g", risk)
		}
	}
	if total > 50000 {
		t.Errorf("budget exceeded: $%g", total)
	}
	if tech < 0.3*total-1e-6 {
		t.Errorf("technology share %.1f%% below 30%%", 100*tech/total)
	}
	if horizons["short"] < 2 || horizons["long"] < 2 {
		t.Errorf("horizon balance: %v", horizons)
	}
	if p.Size() < 5 || p.Size() > 12 {
		t.Errorf("portfolio size %d", p.Size())
	}
}

// The investment objective SUM(P.price * P.expret) multiplies two
// columns inside one aggregate — still linear per tuple. Verify the
// analyzer treats it as such (the solver handled it above).
func TestPerTupleProductIsLinear(t *testing.T) {
	sys := pb.New()
	if err := dataset.LoadStocks(sys.DB(), "stocks", dataset.StocksConfig{N: 40, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(`
		SELECT PACKAGE(S) AS P FROM stocks S
		SUCH THAT COUNT(*) = 3
		MAXIMIZE SUM(P.price * P.expret)`, pb.WithStrategy(pb.Solver))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Linear || !res.Stats.Exact {
		t.Errorf("per-tuple products should stay solver-friendly: linear=%v exact=%v",
			res.Stats.Linear, res.Stats.Exact)
	}
}

// TestScenarioAtomStrategyMatrix is the full grammar × strategy ×
// multiplicity grid: every PaQL atom kind the engines support runs
// end-to-end through the public API under the exact solver, under
// SketchRefine, and under Auto — plain, with REPEAT, and with a pinned
// tuple — so each newly supported atom has system-level coverage, not
// just unit tests. SketchRefine combinations additionally assert the
// query stayed on the sketch path (no silent fallback to exact).
func TestScenarioAtomStrategyMatrix(t *testing.T) {
	sys := pb.New()
	if err := dataset.LoadRecipes(sys.DB(), "recipes", dataset.RecipesConfig{N: 300, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	// A pinnable tuple admissible under every atom clause below
	// (protein >= 6, calories <= 800). With no WHERE clause, candidate
	// indexes equal table row indexes.
	tab, _ := sys.DB().Table("recipes")
	pin := -1
	for i, row := range tab.Rows {
		cal, _ := row[5].AsFloat()
		prot, _ := row[6].AsFloat()
		if prot >= 6 && cal <= 800 {
			pin = i
			break
		}
	}
	if pin < 0 {
		t.Fatal("no pinnable recipe in the dataset")
	}

	atoms := []struct{ name, clause string }{
		{"sum", "SUM(P.calories) BETWEEN 1200 AND 2600"},
		{"count-filter", "COUNT(* WHERE P.gluten = 'free') >= 1"},
		{"avg", "AVG(P.calories) <= 820"},
		{"min", "MIN(P.protein) >= 5"},
		{"max", "MAX(P.calories) <= 980"},
		{"disjunction", "(AVG(P.calories) <= 700 OR SUM(P.calories) <= 2600)"},
	}
	strategies := []struct {
		name string
		st   pb.Strategy
	}{
		{"solver", pb.Solver},
		{"sketch", pb.SketchRefine},
		{"auto", pb.Auto},
	}
	modes := []struct {
		name   string
		repeat string
		opts   []pb.Option
	}{
		{"plain", "", nil},
		{"repeat", " REPEAT 1", nil},
		{"require", "", []pb.Option{pb.WithRequire(pin)}},
	}
	for _, atom := range atoms {
		for _, strat := range strategies {
			for _, mode := range modes {
				name := atom.name + "/" + strat.name + "/" + mode.name
				t.Run(name, func(t *testing.T) {
					query := `SELECT PACKAGE(R) AS P FROM recipes R` + mode.repeat + `
						SUCH THAT COUNT(*) = 3 AND ` + atom.clause + `
						MAXIMIZE SUM(P.protein)`
					opts := append([]pb.Option{pb.WithStrategy(strat.st), pb.WithSeed(1)}, mode.opts...)
					res, err := sys.Query(query, opts...)
					if err != nil {
						t.Fatal(err)
					}
					if len(res.Packages) == 0 {
						t.Fatalf("no package (notes: %v)", res.Stats.Notes)
					}
					p := res.Packages[0]
					if p.Size() != 3 {
						t.Errorf("package size %d, want 3", p.Size())
					}
					if strat.st == pb.SketchRefine {
						if res.Stats.Strategy != pb.SketchRefine {
							t.Fatalf("sketch fell back to %v (notes: %v)", res.Stats.Strategy, res.Stats.Notes)
						}
						if res.Stats.SketchLevels < 1 {
							t.Errorf("SketchLevels = %d, want >= 1", res.Stats.SketchLevels)
						}
					}
					if mode.name == "require" && p.Mult[pin] < 1 {
						t.Errorf("pinned candidate %d missing from the package", pin)
					}
					if mode.name == "repeat" {
						for i, m := range p.Mult {
							if m > 2 {
								t.Errorf("candidate %d multiplicity %d exceeds REPEAT 1", i, m)
							}
						}
					}
				})
			}
		}
	}
}

package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/lifecycle"
	"repro/internal/minidb"
)

func testServer(t *testing.T) *server {
	t.Helper()
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 80, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	return newServer(db, "", true)
}

const demoQuery = `SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free'
SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500
MAXIMIZE SUM(P.protein)`

func postJSON(t *testing.T, h http.HandlerFunc, body string) (*httptest.ResponseRecorder, map[string]json.RawMessage) {
	t.Helper()
	req := httptest.NewRequest("POST", "/x", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h(rec, req)
	var out map[string]json.RawMessage
	_ = json.Unmarshal(rec.Body.Bytes(), &out)
	return rec, out
}

func TestHandleQueryAndReplace(t *testing.T) {
	s := testServer(t)
	rec, out := postJSON(t, s.handleQuery, `{"query": `+mustJSON(demoQuery)+`}`)
	if rec.Code != 200 {
		t.Fatalf("query status %d: %s", rec.Code, rec.Body)
	}
	var rows [][]string
	_ = json.Unmarshal(out["rows"], &rows)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	var aggs map[string]string
	_ = json.Unmarshal(out["aggregates"], &aggs)
	if aggs["COUNT(*)"] != "3" {
		t.Errorf("aggs = %v", aggs)
	}
	// replace must return a different package
	rec2, out2 := postJSON(t, s.handleReplace, `{}`)
	if rec2.Code != 200 {
		t.Fatalf("replace status %d: %s", rec2.Code, rec2.Body)
	}
	if string(out["rows"]) == string(out2["rows"]) {
		t.Error("replace returned the same package")
	}
}

func TestHandlePinSuggestSummary(t *testing.T) {
	s := testServer(t)
	rec, out := postJSON(t, s.handleQuery, `{"query": `+mustJSON(demoQuery)+`}`)
	if rec.Code != 200 {
		t.Fatalf("query: %s", rec.Body)
	}
	var rowIDs []int
	_ = json.Unmarshal(out["rowIds"], &rowIDs)
	if len(rowIDs) == 0 {
		t.Fatal("no row ids")
	}
	// pin
	rec2, _ := postJSON(t, s.handlePin, `{"rowId": `+itoa(rowIDs[0])+`}`)
	if rec2.Code != 200 {
		t.Fatalf("pin: %s", rec2.Body)
	}
	// unpin
	rec3, _ := postJSON(t, s.handlePin, `{"rowId": `+itoa(rowIDs[0])+`, "unpin": true}`)
	if rec3.Code != 200 {
		t.Fatalf("unpin: %s", rec3.Body)
	}
	// suggest
	req := httptest.NewRequest("GET", "/api/suggest?column=fat", nil)
	rec4 := httptest.NewRecorder()
	s.handleSuggest(rec4, req)
	if rec4.Code != 200 || !strings.Contains(rec4.Body.String(), "MINIMIZE SUM(P.fat)") {
		t.Errorf("suggest: %d %s", rec4.Code, rec4.Body)
	}
	// summary
	req = httptest.NewRequest("GET", "/api/summary", nil)
	rec5 := httptest.NewRecorder()
	s.handleSummary(rec5, req)
	if rec5.Code != 200 || !strings.Contains(rec5.Body.String(), "points") {
		t.Errorf("summary: %d %s", rec5.Code, rec5.Body)
	}
}

func TestHandlersWithoutSession(t *testing.T) {
	s := testServer(t)
	rec, _ := postJSON(t, s.handleReplace, `{}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("replace without session = %d", rec.Code)
	}
	rec2, _ := postJSON(t, s.handlePin, `{"rowId": 1}`)
	if rec2.Code != http.StatusBadRequest {
		t.Errorf("pin without session = %d", rec2.Code)
	}
	rec3, _ := postJSON(t, s.handleQuery, `{"query": "garbage"}`)
	if rec3.Code != http.StatusBadRequest {
		t.Errorf("bad query = %d", rec3.Code)
	}
	// index page serves HTML
	req := httptest.NewRequest("GET", "/", nil)
	rec4 := httptest.NewRecorder()
	s.handleIndex(rec4, req)
	if !strings.Contains(rec4.Body.String(), "PackageBuilder") {
		t.Error("index page missing")
	}
}

func mustJSON(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

func itoa(i int) string {
	b, _ := json.Marshal(i)
	return string(b)
}

func TestQueryStrategyExposure(t *testing.T) {
	s := testServer(t)
	rec, out := postJSON(t, s.handleQuery,
		`{"query": `+mustJSON(demoQuery)+`, "strategy": "sketch-refine"}`)
	if rec.Code != 200 {
		t.Fatalf("sketch query status %d: %s", rec.Code, rec.Body)
	}
	var stats map[string]any
	_ = json.Unmarshal(out["stats"], &stats)
	if stats["strategy"] != "sketch-refine" {
		t.Errorf("stats.strategy = %v", stats["strategy"])
	}
	if p, ok := stats["partitions"].(float64); !ok || p <= 0 {
		t.Errorf("stats.partitions = %v", stats["partitions"])
	}
	rec2, _ := postJSON(t, s.handleQuery,
		`{"query": `+mustJSON(demoQuery)+`, "strategy": "warp-drive"}`)
	if rec2.Code != http.StatusBadRequest {
		t.Errorf("unknown strategy status = %d", rec2.Code)
	}

	// Full-grammar sketch run: an AVG atom inside a disjunction stays on
	// the sketch strategy and surfaces the branch/rewrite counters.
	avgQuery := `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 3 AND (AVG(P.calories) <= 900 OR SUM(P.calories) <= 2000)
		MAXIMIZE SUM(P.protein)`
	rec3, out3 := postJSON(t, s.handleQuery,
		`{"query": `+mustJSON(avgQuery)+`, "strategy": "sketch-refine"}`)
	if rec3.Code != 200 {
		t.Fatalf("avg sketch query status %d: %s", rec3.Code, rec3.Body)
	}
	var stats3 map[string]any
	_ = json.Unmarshal(out3["stats"], &stats3)
	if stats3["strategy"] != "sketch-refine" {
		t.Errorf("avg query fell back: strategy = %v", stats3["strategy"])
	}
	if b, ok := stats3["sketchBranches"].(float64); !ok || b != 2 {
		t.Errorf("stats.sketchBranches = %v, want 2", stats3["sketchBranches"])
	}
	if rw, ok := stats3["sketchAtomRewrites"].(float64); !ok || rw != 1 {
		t.Errorf("stats.sketchAtomRewrites = %v, want 1", stats3["sketchAtomRewrites"])
	}
}

// TestConcurrentQueryTraffic hammers the API from many goroutines —
// queries evaluating in parallel with replaces, pins, suggestions and
// summaries — so `go test -race` can catch locking regressions in the
// session-swap path.
func TestConcurrentQueryTraffic(t *testing.T) {
	s := testServer(t)
	if rec, _ := postJSON(t, s.handleQuery, `{"query": `+mustJSON(demoQuery)+`}`); rec.Code != 200 {
		t.Fatalf("seed query: %s", rec.Body)
	}
	const workers = 12
	errs := make(chan string, workers*4)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				rec := httptest.NewRecorder()
				switch i % 5 {
				case 0:
					req := httptest.NewRequest("POST", "/api/query",
						strings.NewReader(`{"query": `+mustJSON(demoQuery)+`}`))
					s.handleQuery(rec, req)
					if rec.Code != 200 {
						errs <- "query: " + rec.Body.String()
					}
				case 1:
					req := httptest.NewRequest("POST", "/api/replace", strings.NewReader(`{}`))
					s.handleReplace(rec, req)
					// "no further distinct package" is a legitimate outcome
				case 2:
					req := httptest.NewRequest("GET", "/api/suggest?column=fat", nil)
					s.handleSuggest(rec, req)
					if rec.Code != 200 {
						errs <- "suggest: " + rec.Body.String()
					}
				case 3:
					req := httptest.NewRequest("GET", "/api/summary", nil)
					s.handleSummary(rec, req)
					if rec.Code != 200 {
						errs <- "summary: " + rec.Body.String()
					}
				case 4:
					// Pin/unpin mutate the session's pinned map; racing
					// them against queries is the point. A 400 ("row id
					// is not a candidate") is a legitimate outcome.
					body := `{"rowId": 1}`
					if j%2 == 1 {
						body = `{"rowId": 1, "unpin": true}`
					}
					req := httptest.NewRequest("POST", "/api/pin", strings.NewReader(body))
					s.handlePin(rec, req)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestHandleExplain exercises the explain request field: the server
// plans the query without executing it and returns the decision trail
// as structured JSON plus rendered text.
func TestHandleExplain(t *testing.T) {
	s := testServer(t)
	rec, out := postJSON(t, s.handleQuery,
		`{"query": `+mustJSON(demoQuery)+`, "explain": true}`)
	if rec.Code != 200 {
		t.Fatalf("explain status %d: %s", rec.Code, rec.Body)
	}
	var qp struct {
		Strategy  string `json:"strategy"`
		Decisions []struct {
			Name   string `json:"name"`
			Forced bool   `json:"forced"`
		} `json:"decisions"`
	}
	if err := json.Unmarshal(out["plan"], &qp); err != nil {
		t.Fatalf("plan JSON: %v", err)
	}
	if qp.Strategy == "" || len(qp.Decisions) == 0 {
		t.Fatalf("plan = %s", out["plan"])
	}
	var text string
	_ = json.Unmarshal(out["explain"], &text)
	if !strings.Contains(text, "strategy = ") || !strings.Contains(text, "plan for:") {
		t.Errorf("explain text = %q", text)
	}
	// Explaining must not publish a session.
	if _, err := s.session(); err == nil {
		t.Error("explain created a session")
	}

	// A forced strategy shows up as forced in the plan.
	rec2, out2 := postJSON(t, s.handleQuery,
		`{"query": `+mustJSON(demoQuery)+`, "explain": true, "strategy": "solver"}`)
	if rec2.Code != 200 {
		t.Fatalf("forced explain status %d: %s", rec2.Code, rec2.Body)
	}
	var qp2 struct {
		Strategy  string `json:"strategy"`
		Decisions []struct {
			Name   string `json:"name"`
			Forced bool   `json:"forced"`
		} `json:"decisions"`
	}
	_ = json.Unmarshal(out2["plan"], &qp2)
	if qp2.Strategy != "solver" {
		t.Errorf("forced strategy = %q", qp2.Strategy)
	}
	forced := false
	for _, d := range qp2.Decisions {
		if d.Name == "strategy" && d.Forced {
			forced = true
		}
	}
	if !forced {
		t.Errorf("strategy decision not marked forced: %s", out2["plan"])
	}
}

// TestPlannedStrategyStat checks every query response reports the
// planner's pick alongside the executed strategy.
func TestPlannedStrategyStat(t *testing.T) {
	s := testServer(t)
	rec, out := postJSON(t, s.handleQuery, `{"query": `+mustJSON(demoQuery)+`}`)
	if rec.Code != 200 {
		t.Fatalf("query status %d: %s", rec.Code, rec.Body)
	}
	var stats map[string]any
	_ = json.Unmarshal(out["stats"], &stats)
	ps, _ := stats["plannedStrategy"].(string)
	if ps == "" {
		t.Errorf("stats.plannedStrategy missing: %v", stats)
	}
}

// TestAdmissionShedding saturates a 1-slot/0-queue controller and
// checks the shed response: 429, a Retry-After hint, and the machine
// code "admission".
func TestAdmissionShedding(t *testing.T) {
	s := testServer(t)
	s.adm = lifecycle.NewController(1, 0)
	release, err := s.adm.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	rec, _ := postJSON(t, s.handleQuery, `{"query": `+mustJSON(demoQuery)+`}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated query status = %d: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	var body map[string]string
	_ = json.Unmarshal(rec.Body.Bytes(), &body)
	if body["code"] != "admission" {
		t.Errorf("code = %q, want admission", body["code"])
	}
	// Draining sheds the same way.
	s.adm = lifecycle.NewController(1, 0)
	s.adm.BeginDrain()
	rec2, _ := postJSON(t, s.handleQuery, `{"query": `+mustJSON(demoQuery)+`}`)
	if rec2.Code != http.StatusTooManyRequests {
		t.Errorf("draining query status = %d", rec2.Code)
	}
	// The slot freed: a fresh controller admits again.
	s.adm = lifecycle.NewController(1, 0)
	rec3, _ := postJSON(t, s.handleQuery, `{"query": `+mustJSON(demoQuery)+`}`)
	if rec3.Code != 200 {
		t.Errorf("post-shed query status = %d: %s", rec3.Code, rec3.Body)
	}
}

// TestTypedErrorStatuses checks each lifecycle outcome maps to its
// HTTP status and code field.
func TestTypedErrorStatuses(t *testing.T) {
	s := testServer(t)
	// Provably infeasible: 422 / infeasible.
	infeasible := `SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) >= 5 AND COUNT(*) <= 2`
	rec, _ := postJSON(t, s.handleQuery, `{"query": `+mustJSON(infeasible)+`}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("infeasible status = %d: %s", rec.Code, rec.Body)
	}
	var body map[string]string
	_ = json.Unmarshal(rec.Body.Bytes(), &body)
	if body["code"] != "infeasible" {
		t.Errorf("code = %q, want infeasible", body["code"])
	}
	// Memory budget refusal: 422 / budget.
	s.memBudget = 1
	rec2, _ := postJSON(t, s.handleQuery, `{"query": `+mustJSON(demoQuery)+`}`)
	if rec2.Code != http.StatusUnprocessableEntity {
		t.Errorf("budget status = %d: %s", rec2.Code, rec2.Body)
	}
	_ = json.Unmarshal(rec2.Body.Bytes(), &body)
	if body["code"] != "budget" {
		t.Errorf("code = %q, want budget", body["code"])
	}
	s.memBudget = 0
	// Dead request context: 408 / canceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/api/query",
		strings.NewReader(`{"query": `+mustJSON(demoQuery)+`}`)).WithContext(ctx)
	rec3 := httptest.NewRecorder()
	s.handleQuery(rec3, req)
	if rec3.Code != http.StatusRequestTimeout {
		t.Errorf("canceled status = %d: %s", rec3.Code, rec3.Body)
	}
	_ = json.Unmarshal(rec3.Body.Bytes(), &body)
	if body["code"] != "canceled" {
		t.Errorf("code = %q, want canceled", body["code"])
	}
}

// TestLifecycleEndpoint checks the ops counters surface.
func TestLifecycleEndpoint(t *testing.T) {
	s := testServer(t)
	if rec, _ := postJSON(t, s.handleQuery, `{"query": `+mustJSON(demoQuery)+`}`); rec.Code != 200 {
		t.Fatalf("seed query: %s", rec.Body)
	}
	req := httptest.NewRequest("GET", "/api/lifecycle", nil)
	rec := httptest.NewRecorder()
	s.handleLifecycle(rec, req)
	var st struct {
		Admitted uint64 `json:"admitted"`
		Draining bool   `json:"draining"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Admitted != 1 || st.Draining {
		t.Errorf("stats = %+v", st)
	}
}

func TestBodyLimitRejectsHugePayload(t *testing.T) {
	s := testServer(t)
	huge := strings.Repeat("x", maxBodyBytes+1024)
	rec, _ := postJSON(t, s.handleQuery, `{"query": `+mustJSON(huge)+`}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("oversized body status = %d", rec.Code)
	}
}

// TestRequestIDInErrorBody checks every error payload carries a
// request ID and the X-Request-Id header is echoed.
func TestRequestIDInErrorBody(t *testing.T) {
	s := testServer(t)
	rec, _ := postJSON(t, s.handleQuery, `{"query": "garbage"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
	var body map[string]string
	_ = json.Unmarshal(rec.Body.Bytes(), &body)
	if body["requestId"] == "" {
		t.Error("error body missing requestId")
	}
	if rec.Header().Get("X-Request-Id") != body["requestId"] {
		t.Errorf("header id %q != body id %q", rec.Header().Get("X-Request-Id"), body["requestId"])
	}
	// Shed responses (429) carry one too.
	s.adm = lifecycle.NewController(1, 0)
	release, err := s.adm.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	rec2, _ := postJSON(t, s.handleQuery, `{"query": `+mustJSON(demoQuery)+`}`)
	if rec2.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d", rec2.Code)
	}
	_ = json.Unmarshal(rec2.Body.Bytes(), &body)
	if body["requestId"] == "" {
		t.Error("429 body missing requestId")
	}
}

// TestRequestIDsUnique checks the middleware mints distinct IDs.
func TestRequestIDsUnique(t *testing.T) {
	a, b := newRequestID(), newRequestID()
	if a == b {
		t.Fatalf("duplicate request ids: %q", a)
	}
}

// TestHealthEndpoints drives the degradation registry end to end: a
// healthy solve reports ok, an injected store fault flips /healthz to
// degraded with the subsystem named, and a following clean solve
// clears it. /readyz flips to 503 on drain.
func TestHealthEndpoints(t *testing.T) {
	s := testServer(t)
	s.persistDir = t.TempDir()
	get := func(h http.HandlerFunc, path string) (*httptest.ResponseRecorder, map[string]json.RawMessage) {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		h(rec, req)
		var out map[string]json.RawMessage
		_ = json.Unmarshal(rec.Body.Bytes(), &out)
		return rec, out
	}
	if rec, _ := postJSON(t, s.handleQuery, `{"query": `+mustJSON(demoQuery)+`, "strategy": "sketch-refine"}`); rec.Code != 200 {
		t.Fatalf("seed query: %s", rec.Body)
	}
	rec, out := get(s.handleHealthz, "/healthz")
	if rec.Code != 200 || string(out["degraded"]) != "false" {
		t.Fatalf("healthy healthz = %d %s", rec.Code, rec.Body)
	}

	// Inject a store-load fault: the solve degrades, health flips.
	restore := fault.Enable(fault.NewInjector(1,
		fault.Rule{Site: "sketch.store.load", Kind: fault.KindError}))
	rec2, out2 := postJSON(t, s.handleQuery, `{"query": `+mustJSON(demoQuery)+`, "strategy": "sketch-refine", "sketchIncr": false}`)
	restore()
	if rec2.Code != 200 {
		t.Fatalf("degraded query status %d: %s", rec2.Code, rec2.Body)
	}
	var stats map[string]any
	_ = json.Unmarshal(out2["stats"], &stats)
	if deg, _ := stats["degraded"].(bool); !deg {
		// The tree may have been cached in memory by the seed query; a
		// fresh cache forces the store path.
		t.Logf("stats = %v", stats)
	}
	degNow, _ := s.health.Degraded()
	if degNow {
		rec3, _ := get(s.handleHealthz, "/healthz")
		if !strings.Contains(rec3.Body.String(), `"degraded":true`) {
			t.Errorf("healthz after fault = %s", rec3.Body)
		}
		// A clean solve clears the board.
		if rec4, _ := postJSON(t, s.handleQuery, `{"query": `+mustJSON(demoQuery)+`}`); rec4.Code != 200 {
			t.Fatalf("clean query: %s", rec4.Body)
		}
		if d, reasons := s.health.Degraded(); d {
			t.Errorf("health still degraded after clean solve: %v", reasons)
		}
	}

	// readyz: ready until draining.
	rec5, _ := get(s.handleReadyz, "/readyz")
	if rec5.Code != 200 {
		t.Errorf("readyz = %d", rec5.Code)
	}
	s.adm.BeginDrain()
	rec6, _ := get(s.handleReadyz, "/readyz")
	if rec6.Code != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d", rec6.Code)
	}
}

// TestInjectedPanicBecomes500AndDrainsSlot injects a panic at the
// solve site and checks (a) the response is a typed 500 with a request
// ID, and (b) the admission slot was released — the next query runs on
// a 1-slot controller.
func TestInjectedPanicBecomes500AndDrainsSlot(t *testing.T) {
	s := testServer(t)
	s.adm = lifecycle.NewController(1, 0)
	restore := fault.Enable(fault.NewInjector(1,
		fault.Rule{Site: "core.solve", Kind: fault.KindPanic, Limit: 1}))
	rec, _ := postJSON(t, s.handleQuery, `{"query": `+mustJSON(demoQuery)+`}`)
	restore()
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicked solve status = %d: %s", rec.Code, rec.Body)
	}
	var body map[string]string
	_ = json.Unmarshal(rec.Body.Bytes(), &body)
	if body["code"] != "internal" || body["requestId"] == "" {
		t.Errorf("500 body = %v", body)
	}
	// The slot drained: the same 1-slot controller admits the retry.
	rec2, _ := postJSON(t, s.handleQuery, `{"query": `+mustJSON(demoQuery)+`}`)
	if rec2.Code != 200 {
		t.Errorf("post-panic query status = %d: %s", rec2.Code, rec2.Body)
	}
	if st := s.adm.Stats(); st.InFlight != 0 {
		t.Errorf("inFlight = %d after panic, want 0", st.InFlight)
	}
}

// TestHealthyRunReportsNotDegraded pins the acceptance criterion:
// without any injector installed, query stats report degraded=false.
func TestHealthyRunReportsNotDegraded(t *testing.T) {
	s := testServer(t)
	rec, out := postJSON(t, s.handleQuery, `{"query": `+mustJSON(demoQuery)+`, "strategy": "sketch-refine"}`)
	if rec.Code != 200 {
		t.Fatalf("query: %s", rec.Body)
	}
	var stats map[string]any
	_ = json.Unmarshal(out["stats"], &stats)
	deg, ok := stats["degraded"].(bool)
	if !ok || deg {
		t.Errorf("stats.degraded = %v (ok=%v), want false", stats["degraded"], ok)
	}
	if _, present := stats["degradedReason"]; present {
		t.Error("degradedReason present on a healthy run")
	}
}

// Command pbserver serves the PackageBuilder meal-planner demo (the
// paper's Figure 1 scenario) over HTTP: a single-page UI for writing
// PaQL, viewing the sample package and its aggregates, pinning tuples,
// requesting replacements (§3.3 adaptive exploration), asking for
// constraint suggestions (§3.1), and seeing the 2-D package-space
// summary (§3.2).
//
//	pbserver -addr :8080 -n 500 -seed 42
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/bound"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/explore"
	"repro/internal/lifecycle"
	"repro/internal/minidb"
	"repro/internal/sketch"
	"repro/internal/viz"
)

// maxBodyBytes bounds request bodies so a client cannot stream an
// unbounded payload into the JSON decoder.
const maxBodyBytes = 1 << 20

// server holds the demo state. The database is read-only after startup
// and safe for concurrent readers; mu guards only the mutable
// exploration session (the booth-kiosk state), taken for reading by
// handlers that render it and for writing by handlers that swap or
// mutate it. Query evaluation itself runs outside the lock, so
// concurrent /api/query requests proceed in parallel.
//
// cache is the engine-level SketchRefine partition-tree cache, shared
// across all requests: repeated sketch evaluations over the unchanged
// demo data skip the offline partitioning step (the cache is its own
// lock domain and safe for concurrent use).
type server struct {
	db    *minidb.DB
	cache *sketch.Cache
	// memo is the engine-level candidate-fingerprint memo shared with
	// cache: warm sketch evaluations over unchanged data hash zero
	// candidate rows, and after writes the delta lineage it tracks lets
	// the cached tree be patched in place (incremental maintenance,
	// -sketch-incr).
	memo *core.FingerprintMemo
	// persistDir, when non-empty, backs the cache with an on-disk tree
	// store (-sketch-dir): a server restart then skips the offline
	// partitioning step. It is a server flag, never request data — a
	// client must not choose where the server writes.
	persistDir string
	// incremental is the -sketch-incr server default; a request's
	// sketchIncr field can switch tree patching off per query.
	incremental bool
	// cat is the table-statistics catalog the cost-based planner reads:
	// row counts, attribute stats and write rates from the delta log.
	cat *catalog.Catalog
	// adm bounds concurrent solves: excess requests queue FIFO, then
	// shed with 429 + Retry-After once the queue is full or the server
	// is draining. Cheap handlers (pin, suggest, index) bypass it.
	adm *lifecycle.Controller
	// memBudget and timeout are per-query lifecycle limits applied to
	// every solve (-mem-budget, -timeout); zero disables each.
	memBudget int64
	timeout   time.Duration
	// health is the per-subsystem degradation registry behind /healthz:
	// solves that took a degradation-ladder rung report the subsystem,
	// a fully clean solve clears the board.
	health *lifecycle.Health

	mu  sync.RWMutex
	ses *explore.Session // one demo session, like the booth kiosk
}

// Request IDs: a per-process salt plus an atomic counter, echoed in the
// X-Request-Id header and in every error body so a client-reported
// failure can be matched to exactly one server log line.
var (
	reqSalt uint64
	reqSeq  atomic.Uint64
)

func init() {
	reqSalt = uint64(time.Now().UnixNano())
	// splitmix-style finalizer so consecutive restarts don't share a prefix.
	reqSalt ^= reqSalt >> 30
	reqSalt *= 0xbf58476d1ce4e5b9
	reqSalt ^= reqSalt >> 27
}

func newRequestID() string {
	return fmt.Sprintf("%08x-%d", uint32(reqSalt), reqSeq.Add(1))
}

type ctxKey int

const reqIDKey ctxKey = iota

// requestID returns the request's ID, minting one for requests that did
// not pass through the middleware (direct handler calls in tests).
func requestID(r *http.Request) string {
	if id, ok := r.Context().Value(reqIDKey).(string); ok {
		return id
	}
	return newRequestID()
}

// newServer builds a server over a loaded database with an empty
// partition-tree cache and fingerprint memo, persisting trees under
// persistDir when set. The admission controller starts with the flag
// defaults; main overrides it from -max-inflight/-max-queue.
func newServer(db *minidb.DB, persistDir string, incremental bool) *server {
	return &server{db: db, cache: sketch.NewCache(0), memo: core.NewFingerprintMemo(),
		persistDir: persistDir, incremental: incremental, cat: catalog.New(db),
		adm: lifecycle.NewController(4, 16), health: lifecycle.NewHealth()}
}

// withRequest is the outermost middleware: it mints the request ID,
// echoes it in the X-Request-Id header, and converts a handler panic
// into a logged 500 with a typed body instead of a killed connection.
func (s *server) withRequest(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := newRequestID()
		w.Header().Set("X-Request-Id", id)
		r = r.WithContext(context.WithValue(r.Context(), reqIDKey, id))
		defer func() {
			if rec := recover(); rec != nil {
				s.httpErr(w, r, lifecycle.Internal(fmt.Errorf("panic: %v", rec)))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// noteHealth folds one solve's outcome into the health registry: each
// "subsystem: detail" degradation reason marks its subsystem not-OK,
// and a fully clean solve clears the whole board (one healthy
// end-to-end query exercises the main path).
func (s *server) noteHealth(stats *core.Stats) {
	if stats == nil {
		return
	}
	if !stats.Degraded {
		s.health.ClearAll()
		return
	}
	for _, reason := range stats.DegradedReasons {
		sub, detail, ok := strings.Cut(reason, ": ")
		if !ok {
			sub, detail = "engine", reason
		}
		s.health.Report(sub, detail)
	}
}

// session returns the current exploration session or an error when no
// query has been run yet.
func (s *server) session() (*explore.Session, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.ses == nil {
		return nil, fmt.Errorf("no active query")
	}
	return s.ses, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	n := flag.Int("n", 500, "recipe count")
	seed := flag.Int64("seed", 42, "dataset seed")
	sketchDir := flag.String("sketch-dir", "", "persist sketch-refine partition trees to this directory (survives restarts)")
	sketchIncr := flag.Bool("sketch-incr", true, "patch cached sketch-refine partition trees in place after writes instead of rebuilding")
	maxInFlight := flag.Int("max-inflight", 4, "concurrent solves admitted; excess requests queue")
	maxQueue := flag.Int("max-queue", 16, "queued solves before shedding with 429")
	memBudget := flag.Int64("mem-budget", 0, "per-query memory budget in bytes, enforced at solve admission (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "per-query soft time budget; best-effort packages at expiry (0 = none)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window on SIGTERM/SIGINT")
	flag.Parse()

	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: *n, Seed: *seed}); err != nil {
		log.Fatal(err)
	}
	s := newServer(db, *sketchDir, *sketchIncr)
	s.adm = lifecycle.NewController(*maxInFlight, *maxQueue)
	s.memBudget = *memBudget
	s.timeout = *timeout
	if *sketchDir != "" {
		// Constructing the store sweeps orphaned temp files a previous
		// crashed process may have left in the directory.
		st := sketch.NewStore(*sketchDir)
		if n, err := st.SweepResult(); err != nil {
			log.Printf("pbserver: sketch-dir sweep: %v", err)
		} else if n > 0 {
			log.Printf("pbserver: swept %d orphaned temp file(s) from %s", n, *sketchDir)
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/api/query", s.handleQuery)
	mux.HandleFunc("/api/replace", s.handleReplace)
	mux.HandleFunc("/api/pin", s.handlePin)
	mux.HandleFunc("/api/suggest", s.handleSuggest)
	mux.HandleFunc("/api/summary", s.handleSummary)
	mux.HandleFunc("/api/lifecycle", s.handleLifecycle)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	fmt.Fprintf(os.Stderr, "PackageBuilder meal planner on http://localhost%s (%d recipes)\n", *addr, *n)
	// A hardened server: a slow or hostile client cannot hold a
	// connection (and its handler goroutine) open indefinitely, and
	// request bodies are capped before they reach the JSON decoders.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.withRequest(http.MaxBytesHandler(mux, maxBodyBytes)),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}

	// Graceful shutdown: the first SIGTERM/SIGINT stops admission (new
	// solves shed with 429, queued waiters are released), lets in-flight
	// solves finish inside the drain window, then closes the listener. A
	// second signal aborts immediately via the restored default handler.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	errC := make(chan error, 1)
	go func() { errC <- srv.ListenAndServe() }()
	select {
	case err := <-errC:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal behavior: second signal kills
		log.Printf("pbserver: shutdown signal — draining for up to %s", *drain)
		s.adm.BeginDrain()
		// Readiness grace: Shutdown closes the listener (and idle
		// keep-alives) immediately, so /readyz could never serve its
		// 503. Keep the listener up briefly — admission is already
		// shedding solves — so load-balancer readiness probes observe
		// not-ready and stop routing before connections start failing.
		if grace := min(*drain/5, 2*time.Second); grace > 0 {
			time.Sleep(grace)
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("pbserver: drain window expired (%v); closing", err)
			_ = srv.Close()
		}
		st := s.adm.Stats()
		log.Printf("pbserver: stopped (admitted %d, shed %d)", st.Admitted, st.Shed)
	}
}

type pkgJSON struct {
	Columns   []string          `json:"columns"`
	Rows      [][]string        `json:"rows"`
	RowIDs    []int             `json:"rowIds"`
	Aggs      map[string]string `json:"aggregates"`
	Objective float64           `json:"objective"`
	Stats     map[string]any    `json:"stats"`
	Pinned    []int             `json:"pinned"`
}

func (s *server) packageJSON(ses *explore.Session, p *core.Package, stats *core.Stats) *pkgJSON {
	tab, _ := s.db.Table(ses.Query().Table)
	out := &pkgJSON{Aggs: map[string]string{}, Stats: map[string]any{}}
	for _, c := range tab.Schema.Cols {
		out.Columns = append(out.Columns, c.Name)
	}
	for _, row := range p.Rows {
		var cells []string
		for _, v := range row {
			cells = append(cells, v.String())
		}
		out.Rows = append(out.Rows, cells)
	}
	out.RowIDs = p.TupleIDs()
	for k, v := range p.AggValues {
		out.Aggs[k] = v.String()
	}
	out.Objective = p.Objective
	out.Pinned = ses.Pinned()
	if stats != nil {
		out.Stats["strategy"] = stats.Strategy.String()
		out.Stats["exact"] = stats.Exact
		out.Stats["candidates"] = stats.Candidates
		out.Stats["bounds"] = stats.Bounds.String()
		out.Stats["elapsedMs"] = float64(stats.Elapsed.Microseconds()) / 1000
		if stats.Certified {
			out.Stats["certified"] = true
			out.Stats["boundValue"] = stats.BoundValue
			out.Stats["gap"] = stats.Gap
			// gapText is the server-rendered figure via the shared
			// bound.Interval helper, so the UI shows the same rounding
			// (and the |objective| < 1 clamp note) as the CLI surfaces.
			iv := bound.Interval{Found: p.Objective, Bound: stats.BoundValue, Certified: true}
			out.Stats["gapText"] = iv.FormatGap()
			if stats.BoundStage != "" {
				out.Stats["boundStage"] = stats.BoundStage
			}
			if stats.BoundTightenRounds > 0 {
				out.Stats["boundTightenRounds"] = stats.BoundTightenRounds
			}
		}
		if stats.MemoryEstimate > 0 {
			out.Stats["memoryEstimate"] = stats.MemoryEstimate
		}
		if stats.Partitions > 0 {
			out.Stats["sketchCoalesced"] = stats.SketchCoalesced
			out.Stats["partitions"] = stats.Partitions
			out.Stats["sketchLevels"] = stats.SketchLevels
			out.Stats["sketchTopVars"] = stats.SketchTopVars
			out.Stats["sketchBranches"] = stats.SketchBranches
			out.Stats["sketchAtomRewrites"] = stats.SketchAtomRewrites
			out.Stats["sketchCacheHit"] = stats.SketchCacheHit
			out.Stats["sketchTreeLoaded"] = stats.SketchTreeLoaded
			out.Stats["sketchTreePatched"] = stats.SketchTreePatched
			out.Stats["sketchDeltaApplied"] = stats.SketchDeltaApplied
			out.Stats["sketchWorkers"] = stats.SketchWorkers
			cs := s.cache.Stats()
			out.Stats["sketchCacheHits"] = cs.Hits
			out.Stats["sketchCacheMisses"] = cs.Misses
			ms := s.memo.Stats()
			out.Stats["sketchFPRowsHashed"] = ms.RowsHashed
		}
		if stats.Plan != nil {
			out.Stats["plannedStrategy"] = stats.Plan.Strategy
		}
		out.Stats["degraded"] = stats.Degraded
		if stats.Degraded {
			out.Stats["degradedReason"] = strings.Join(stats.DegradedReasons, "; ")
		}
	}
	return out
}

// decodeJSON parses a body-limited JSON request.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	return json.NewDecoder(r.Body).Decode(v)
}

// admit gates a handler's solve work through the admission controller.
// On refusal it writes the 429 (shed) or 408 (client gone while
// queued) response itself and returns ok=false; on success the caller
// must defer the release.
func (s *server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	release, err := s.adm.Acquire(r.Context())
	if err != nil {
		s.httpErr(w, r, err)
		return nil, false
	}
	return release, true
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Query       string `json:"query"`
		Strategy    string `json:"strategy"`    // "", "auto", "solver", "sketch-refine", ...
		SketchDepth int    `json:"sketchDepth"` // 0/1 = flat, >=2 hierarchical
		SketchPar   int    `json:"sketchPar"`   // sketch workers: 0 = one per CPU, 1 = serial
		SketchIncr  *bool  `json:"sketchIncr"`  // tree patching after writes; nil = server default
		Explain     bool   `json:"explain"`     // plan only: return the decision trail, don't execute
	}
	if err := decodeJSON(w, r, &req); err != nil {
		s.httpErr(w, r, err)
		return
	}
	incremental := s.incremental
	if req.SketchIncr != nil {
		incremental = *req.SketchIncr
	}
	opts := core.Options{Seed: 1, SketchCache: s.cache, SketchDepth: req.SketchDepth,
		SketchParallelism: req.SketchPar, SketchPersistDir: s.persistDir,
		SketchMemo: s.memo, SketchIncremental: incremental,
		// Only an explicit request field forces patch-vs-rebuild; the
		// server default leaves the planner in charge.
		SketchIncrementalSet: req.SketchIncr != nil,
		Catalog:              s.cat,
		// Per-query lifecycle limits: the soft time budget (hard ctx
		// deadline trails it) and the memory-admission gate.
		Timeout: s.timeout, MemoryBudget: s.memBudget}
	if req.Strategy != "" {
		st, err := core.ParseStrategy(req.Strategy)
		if err != nil {
			s.httpErr(w, r, err)
			return
		}
		opts.Strategy = st
	}
	if req.Explain {
		prep, err := core.PrepareContext(r.Context(), s.db, req.Query)
		if err != nil {
			s.httpErr(w, r, err)
			return
		}
		prep.SketchCache = s.cache
		prep.SketchMemo = s.memo
		qp := prep.Plan(opts)
		writeJSON(w, map[string]any{"plan": qp, "explain": qp.Explain()})
		return
	}
	// Evaluation is the expensive part; it needs an admission slot and
	// runs without the lock so concurrent queries don't serialize
	// behind one another. The request context cancels the solve when
	// the client disconnects.
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ses, err := explore.NewSessionContext(r.Context(), s.db, req.Query, opts)
	if err != nil {
		s.httpErr(w, r, err)
		return
	}
	if _, err := ses.RefreshContext(r.Context()); err != nil {
		s.httpErr(w, r, err)
		return
	}
	s.noteHealth(ses.Stats())
	// Render before publishing: once s.ses is swapped, concurrent
	// replace/pin handlers may mutate the session, so it must not be
	// read lock-free after this point.
	out := s.packageJSON(ses, ses.Current(), ses.Stats())
	s.mu.Lock()
	s.ses = ses
	s.mu.Unlock()
	writeJSON(w, out)
}

func (s *server) handleReplace(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ses == nil {
		s.httpErr(w, r, fmt.Errorf("no active query"))
		return
	}
	if _, err := s.ses.ReplaceContext(r.Context()); err != nil {
		s.httpErr(w, r, err)
		return
	}
	s.noteHealth(s.ses.Stats())
	writeJSON(w, s.packageJSON(s.ses, s.ses.Current(), s.ses.Stats()))
}

func (s *server) handlePin(w http.ResponseWriter, r *http.Request) {
	var req struct {
		RowID int  `json:"rowId"`
		Unpin bool `json:"unpin"`
	}
	if err := decodeJSON(w, r, &req); err != nil {
		s.httpErr(w, r, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ses == nil {
		s.httpErr(w, r, fmt.Errorf("no active query"))
		return
	}
	if req.Unpin {
		for i, id := range s.ses.Prepared().Instance.IDs {
			if id == req.RowID {
				s.ses.Unpin(i)
			}
		}
	} else if err := s.ses.PinRowID(req.RowID); err != nil {
		s.httpErr(w, r, err)
		return
	}
	writeJSON(w, map[string]any{"pinned": s.ses.Pinned()})
}

func (s *server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	ses, err := s.session()
	if err != nil {
		s.httpErr(w, r, err)
		return
	}
	col := r.URL.Query().Get("column")
	// Suggest reads only the session's immutable prepared query, so it
	// runs without the lock or an admission slot, like handlePin.
	sugg, err := ses.Suggest(explore.Highlight{Column: col, Row: -1})
	if err != nil {
		s.httpErr(w, r, err)
		return
	}
	writeJSON(w, sugg)
}

// handleHealthz reports per-subsystem degradation state. It always
// answers 200 — a degraded server still serves queries (that is the
// point of the degradation ladder); the body says which rungs are
// currently engaged so an operator can fix the underlying fault.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	degraded, reasons := s.health.Degraded()
	status := "ok"
	if degraded {
		status = "degraded"
	}
	writeJSON(w, map[string]any{
		"status":     status,
		"degraded":   degraded,
		"reasons":    reasons,
		"subsystems": s.health.Snapshot(),
	})
}

// handleReadyz is the load-balancer probe: 200 while the server accepts
// new solves, 503 once draining began (graceful shutdown) so traffic
// moves away before the listener closes.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.adm.Stats().Draining {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{"ready": false, "reason": "draining"})
		return
	}
	writeJSON(w, map[string]any{"ready": true})
}

// handleLifecycle reports the admission controller's counters — the
// load-test and ops surface for watching in-flight/queued/shed.
func (s *server) handleLifecycle(w http.ResponseWriter, r *http.Request) {
	st := s.adm.Stats()
	writeJSON(w, map[string]any{
		"inFlight": st.InFlight,
		"queued":   st.Queued,
		"admitted": st.Admitted,
		"shed":     st.Shed,
		"draining": st.Draining,
	})
}

func (s *server) handleSummary(w http.ResponseWriter, r *http.Request) {
	ses, err := s.session()
	if err != nil {
		s.httpErr(w, r, err)
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	s.mu.RLock()
	prep := ses.Prepared()
	s.mu.RUnlock()
	// prep.RunContext is a pure read over the prepared query and the
	// database; it needs no lock, so summaries render concurrently too.
	res, err := prep.RunContext(r.Context(), core.Options{Limit: 9, Seed: 1, SketchCache: s.cache,
		SketchPersistDir: s.persistDir, SketchMemo: s.memo, SketchIncremental: s.incremental,
		Catalog: s.cat, Timeout: s.timeout, MemoryBudget: s.memBudget})
	if err != nil {
		s.httpErr(w, r, err)
		return
	}
	s.noteHealth(&res.Stats)
	sum, err := viz.Summarize(prep, res.Packages, 0, !res.Stats.Exact)
	if err != nil {
		s.httpErr(w, r, err)
		return
	}
	writeJSON(w, sum)
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// httpErr maps the lifecycle error taxonomy onto HTTP statuses so
// clients can react mechanically: 429 + Retry-After when the query was
// shed, 408 when the caller's context died (disconnect or deadline
// empty-handed), 422 for queries the engine refuses to or provably
// cannot answer, 500 for internal failures (a recovered panic or an
// injected fault that exhausted the degradation ladder), and 400 for
// everything else (parse errors, bad parameters). The JSON body's
// "code" field carries the category and "requestId" the request's ID;
// operator-actionable statuses (429/408/500) are logged with the same
// ID so a client report matches exactly one log line.
func (s *server) httpErr(w http.ResponseWriter, r *http.Request, err error) {
	id := requestID(r)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Request-Id", id)
	status, code := http.StatusBadRequest, "bad_request"
	switch {
	case errors.Is(err, lifecycle.ErrAdmission):
		status, code = http.StatusTooManyRequests, "admission"
		secs := int(math.Ceil(s.adm.RetryAfter().Seconds()))
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	case errors.Is(err, lifecycle.ErrCanceled):
		status, code = http.StatusRequestTimeout, "canceled"
	case errors.Is(err, lifecycle.ErrBudgetExceeded):
		status, code = http.StatusUnprocessableEntity, "budget"
	case errors.Is(err, lifecycle.ErrInfeasible):
		status, code = http.StatusUnprocessableEntity, "infeasible"
	case errors.Is(err, lifecycle.ErrInternal):
		status, code = http.StatusInternalServerError, "internal"
	}
	if status == http.StatusInternalServerError ||
		status == http.StatusTooManyRequests ||
		status == http.StatusRequestTimeout {
		log.Printf("pbserver: %s %s -> %d (request %s): %v", r.Method, r.URL.Path, status, id, err)
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error(), "code": code, "requestId": id})
}

const indexHTML = `<!doctype html>
<html><head><meta charset="utf-8"><title>PackageBuilder — Meal Planner</title>
<style>
 body { font-family: system-ui, sans-serif; margin: 2em; max-width: 1080px; }
 textarea { width: 100%; height: 9em; font-family: monospace; font-size: 13px; }
 table { border-collapse: collapse; margin-top: .7em; }
 td, th { border: 1px solid #bbb; padding: 3px 9px; font-size: 13px; }
 tr.pinned { background: #fff4c2; }
 button { margin: 4px 6px 4px 0; }
 #aggs, #stats, #sugg, #plan { font-family: monospace; font-size: 13px; white-space: pre; }
 .cols { display: flex; gap: 2em; } .col { flex: 1; }
 svg { border: 1px solid #ccc; background: #fafafa; }
 h3 { margin-bottom: .2em; }
</style></head><body>
<h1>PackageBuilder — Meal Planner</h1>
<p>Write a PaQL package query over the <code>recipes</code> relation
(columns: id, name, cuisine, mealtype, gluten, calories, protein, fat, carbs, price, rating).</p>
<textarea id="q">SELECT PACKAGE(R) AS P
FROM recipes R
WHERE R.gluten = 'free'
SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500
MAXIMIZE SUM(P.protein)</textarea><br>
<button onclick="run()">Run query</button>
<button onclick="explainPlan()">Explain plan</button>
<button onclick="replacePkg()">Replace unpinned (adaptive exploration)</button>
<button onclick="summary()">Package-space summary</button>
suggest for column: <input id="scol" size="10" value="fat">
<button onclick="suggest()">Suggest</button>
<div class="cols"><div class="col">
 <h3>Sample package <small>(click a row to pin/unpin)</small></h3>
 <div id="pkg"></div>
 <h3>Aggregates</h3><div id="aggs"></div>
</div><div class="col">
 <h3>Suggestions</h3><div id="sugg"></div>
 <h3>Plan</h3><div id="plan"></div>
 <h3>Package space</h3><div id="space"></div>
</div></div>
<script>
let pinned = new Set();
async function post(url, body) {
  const r = await fetch(url, {method:'POST', body: JSON.stringify(body||{})});
  const j = await r.json();
  if (j.error) { alert(j.error); throw j.error; }
  return j;
}
function render(p) {
  pinned = new Set(p.pinned || []);
  let h = '<table><tr>' + p.columns.map(c=>'<th>'+c+'</th>').join('') + '</tr>';
  p.rows.forEach((row, i) => {
    const id = p.rowIds[i];
    const cls = pinned.size && row && isPinnedId(id, p) ? ' class="pinned"' : '';
    h += '<tr'+cls+' onclick="togglePin('+id+')">' + row.map(c=>'<td>'+c+'</td>').join('') + '</tr>';
  });
  h += '</table>';
  document.getElementById('pkg').innerHTML = h;
  let stats = '';
  if (p.stats && p.stats.strategy) {
    let sk = '';
    if (p.stats.partitions) {
      sk = ' (' + p.stats.partitions + ' partitions';
      if (p.stats.sketchLevels > 1) sk += ', ' + p.stats.sketchLevels + ' levels';
      if (p.stats.sketchBranches > 1) sk += ', ' + p.stats.sketchBranches + ' branches';
      if (p.stats.sketchAtomRewrites > 0) sk += ', ' + p.stats.sketchAtomRewrites + ' atom rewrites';
      if (p.stats.sketchCacheHit) sk += ', cached tree';
      if (p.stats.sketchTreeLoaded) sk += ', tree from disk';
      if (p.stats.sketchTreePatched) sk += ', tree patched (' + p.stats.sketchDeltaApplied + ' tuples changed)';
      if (p.stats.sketchWorkers > 1) sk += ', ' + p.stats.sketchWorkers + ' workers';
      sk += ')';
    }
    stats = '\nstrategy: ' + p.stats.strategy + sk +
      '  candidates: ' + p.stats.candidates + '  ' + p.stats.elapsedMs + 'ms';
    if (p.stats.certified) {
      const lo = Math.min(p.objective, p.stats.boundValue);
      const hi = Math.max(p.objective, p.stats.boundValue);
      stats += '\ncertified: objective in [' + lo + ', ' + hi + ']  gap ' +
        (p.stats.gapText || (100 * p.stats.gap).toFixed(2) + '%');
      if (p.stats.boundStage) stats += '  via ' + p.stats.boundStage +
        (p.stats.boundTightenRounds ? ' (' + p.stats.boundTightenRounds + ' tightening rounds)' : '');
    }
    if (p.stats.plannedStrategy) stats += '\nplanned: ' + p.stats.plannedStrategy;
    if (p.stats.degraded) stats += '\ndegraded: ' + p.stats.degradedReason;
  }
  document.getElementById('aggs').textContent =
    Object.entries(p.aggregates).map(([k,v])=>k.padEnd(36)+v).join('\n') +
    '\nobjective: ' + p.objective + stats;
}
function isPinnedId(id, p) { return false; /* pin state shown after refresh */ }
async function run() { render(await post('/api/query', {query: document.getElementById('q').value})); }
async function explainPlan() {
  const j = await post('/api/query', {query: document.getElementById('q').value, explain: true});
  document.getElementById('plan').textContent = j.explain;
}
async function replacePkg() { render(await post('/api/replace')); }
async function togglePin(id) {
  const un = pinned.has(id);
  await post('/api/pin', {rowId: id, unpin: un});
  if (un) pinned.delete(id); else pinned.add(id);
}
async function suggest() {
  const col = document.getElementById('scol').value;
  const r = await fetch('/api/suggest?column=' + encodeURIComponent(col));
  const j = await r.json();
  if (j.error) { alert(j.error); return; }
  document.getElementById('sugg').textContent =
    j.map(s=>'['+s.Kind+'] '+s.Text+'\n        '+s.Why).join('\n');
}
async function summary() {
  const r = await fetch('/api/summary');
  const j = await r.json();
  if (j.error) { alert(j.error); return; }
  const W=420,H=260,pad=40;
  const xs=j.points.map(p=>p.x), ys=j.points.map(p=>p.y);
  const xmin=Math.min(...xs), xmax=Math.max(...xs), ymin=Math.min(...ys), ymax=Math.max(...ys);
  const sx=v=> pad + (xmax>xmin ? (v-xmin)/(xmax-xmin) : .5) * (W-2*pad);
  const sy=v=> H-pad - (ymax>ymin ? (v-ymin)/(ymax-ymin) : .5) * (H-2*pad);
  let svg = '<svg width="'+W+'" height="'+H+'">';
  j.points.forEach(p => {
    svg += '<circle cx="'+sx(p.x)+'" cy="'+sy(p.y)+'" r="'+(p.current?8:5)+'" fill="'+(p.current?'#d9480f':'#4263eb')+'"><title>package '+p.index+': obj '+p.objective+'</title></circle>';
  });
  svg += '<text x="'+(W/2)+'" y="'+(H-8)+'" text-anchor="middle" font-size="12">'+j.xLabel+'</text>';
  svg += '<text x="12" y="'+(H/2)+'" font-size="12" transform="rotate(-90 12 '+(H/2)+')">'+j.yLabel+'</text>';
  svg += '</svg>';
  document.getElementById('space').innerHTML = svg + (j.running ? '<br><em>running: result space incomplete</em>' : '');
}
</script></body></html>`

// Command checkdoc is the repository's missing-godoc linter: it fails
// when an exported top-level identifier in any of the named package
// directories lacks a doc comment. CI runs it in the docs job over the
// packages that form the public surface (the root packagebuilder
// package, internal/core, internal/sketch); run it locally with
//
//	go run ./cmd/checkdoc . ./internal/core ./internal/sketch
//
// The rules match the convention gofmt and staticcheck leave
// unchecked: every package needs a package doc comment on at least one
// file, and every exported func, type, method (on an exported type),
// const, and var needs either its own doc comment or — for const/var
// groups — a comment on the enclosing block. Test files and _test
// packages are exempt.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: checkdoc <package-dir> ...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		missing, err := check(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkdoc: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "checkdoc: %d exported identifiers lack doc comments\n", bad)
		os.Exit(1)
	}
}

// check parses one directory (non-test files only) and reports every
// exported identifier without a doc comment, as file:line: messages.
func check(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		if what == "package" {
			out = append(out, fmt.Sprintf("%s:%d: package %s has no package doc comment", p.Filename, p.Line, name))
			return
		}
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		pkgDoc := false
		var firstFile token.Pos
		for _, file := range pkg.Files {
			if file.Doc != nil {
				pkgDoc = true
			}
			if !firstFile.IsValid() || file.Package < firstFile {
				firstFile = file.Package
			}
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					checkFunc(d, report)
				case *ast.GenDecl:
					checkGen(d, report)
				}
			}
		}
		if !pkgDoc {
			report(firstFile, "package", name)
		}
	}
	return out, nil
}

// checkFunc flags exported functions and exported methods on exported
// receivers.
func checkFunc(d *ast.FuncDecl, report func(token.Pos, string, string)) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	what := "function"
	name := d.Name.Name
	if d.Recv != nil && len(d.Recv.List) == 1 {
		recv := receiverName(d.Recv.List[0].Type)
		if recv == "" || !ast.IsExported(recv) {
			return // method on an unexported type: internal surface
		}
		what = "method"
		name = recv + "." + name
	}
	report(d.Name.Pos(), what, name)
}

// checkGen flags exported names in type/const/var declarations. A doc
// comment on the declaration block covers every spec inside it — the
// idiomatic form for enums and flag groups.
func checkGen(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	blockDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !blockDoc && s.Doc == nil {
				report(s.Name.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if blockDoc || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
				}
			}
		}
	}
}

// receiverName unwraps a method receiver type to its base identifier
// (dropping pointers and type parameters).
func receiverName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// Command pbench regenerates every experiment in EXPERIMENTS.md: the
// Figure 1 interface reproduction (F1) and the quantitative experiments
// E1-E12 derived from the paper's §4 evaluation techniques, §5 research
// directions, and the SketchRefine follow-up papers.
//
// Usage:
//
//	pbench                 # run everything
//	pbench -exp e3         # one experiment
//	pbench -quick          # smaller sweeps
//	pbench -seed 7         # different synthetic data
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: f1, e1..e16, all")
	quick := flag.Bool("quick", false, "smaller parameter sweeps")
	seed := flag.Int64("seed", 42, "synthetic dataset seed")
	flag.Parse()

	cfg := bench.Config{Out: os.Stdout, Quick: *quick, Seed: *seed}
	if err := bench.Run(*exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "pbench:", err)
		os.Exit(1)
	}
}

// Command pbgen writes the synthetic datasets used by the examples and
// experiments as CSV (with typed headers the loader understands).
//
// Usage:
//
//	pbgen -kind recipes -n 500 -seed 42 -o recipes.csv
//	pbgen -kind vacation -n 60 -o items.csv
//	pbgen -kind stocks -n 1000           # stdout
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/schema"
)

func main() {
	kind := flag.String("kind", "recipes", "recipes | vacation | stocks")
	n := flag.Int("n", 500, "row count (vacation: split across flights/hotels/cars)")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("o", "", "output path (default stdout)")
	flag.Parse()

	var sc schema.Schema
	var rows []schema.Row
	switch *kind {
	case "recipes":
		sc, rows = dataset.RecipesSchema(), dataset.Recipes(dataset.RecipesConfig{N: *n, Seed: *seed})
	case "vacation":
		sc = dataset.VacationSchema()
		rows = dataset.Vacation(dataset.VacationConfig{
			Flights: *n / 3, Hotels: *n / 3, Cars: *n - 2*(*n/3), Seed: *seed})
	case "stocks":
		sc, rows = dataset.StocksSchema(), dataset.Stocks(dataset.StocksConfig{N: *n, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "pbgen: unknown kind %q\n", *kind)
		os.Exit(1)
	}
	text := dataset.WriteCSV(sc, rows)
	if *out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "pbgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d rows to %s\n", len(rows), *out)
}

// Command paql evaluates PaQL package queries from the command line.
//
// Data sources (choose one or more):
//
//	-csv table=path.csv     load a CSV file as a table (repeatable)
//	-gen recipes:500:42     generate a synthetic table kind:n:seed
//	                        (kinds: recipes, vacation, stocks)
//
// The query comes from -q or -f; with neither, an interactive REPL
// reads PaQL or SQL statements from stdin (terminate each with ';').
//
// Examples:
//
//	paql -gen recipes:500:1 -q "SELECT PACKAGE(R) AS P FROM recipes R
//	     WHERE R.gluten = 'free'
//	     SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500
//	     MAXIMIZE SUM(P.protein)"
//	paql -gen recipes:1000:1 -strategy local-search -limit 3 -q "..."
//	paql -gen recipes:100000:1 -strategy sketch -sketch-size 128 -q "..."
//	paql -gen recipes:1000000:1 -strategy sketch -sketch-depth 2 -q "..."
//	paql -gen recipes:1000000:1 -strategy sketch -sketch-depth 2 \
//	     -sketch-dir trees -q "..."     # re-run loads the partition tree from disk
//	paql -gen recipes:100000:1 -strategy sketch -q "SELECT PACKAGE(R) AS P FROM recipes R
//	     SUCH THAT COUNT(*) = 5 AND AVG(P.calories) <= 650
//	           AND (MIN(P.protein) >= 5 OR SUM(P.protein) >= 80)
//	     MAXIMIZE SUM(P.protein)"      # full atom grammar stays on the sketch path
//
// SketchRefine covers the full PaQL atom grammar: AVG atoms are
// linearized, MIN/MAX atoms are enforced via partition envelopes, and
// disjunctions descend one DNF branch each (the result notes report the
// branch and rewrite counts).
//
// In the REPL, INSERT/DELETE statements between package queries patch
// the cached partition tree in place instead of forcing a rebuild
// (-sketch-incr, on by default), and repeat queries over unchanged
// tables skip candidate fingerprint hashing entirely.
//
// With no explicit strategy or knob flags, a cost-based planner picks
// the strategy, partition size, tree depth, parallelism and
// maintenance mode per query from table statistics. Prefix a query
// with EXPLAIN (or pass -explain) to print the decision trail without
// executing:
//
//	paql -gen recipes:100000:1 -q "EXPLAIN SELECT PACKAGE(R) AS P FROM recipes R
//	     SUCH THAT COUNT(*) = 3 MAXIMIZE SUM(P.protein)"
//
// Lifecycle controls: -timeout sets a per-query soft time budget (the
// best package found so far is returned at expiry), -mem-budget
// refuses queries whose planner-predicted working set exceeds the
// given bytes, and Ctrl-C cancels the in-flight solve cooperatively.
// One-shot runs exit with distinct codes per outcome so scripts can
// branch: 2 provably infeasible, 3 canceled, 4 over budget, 1 other
// errors. The REPL classifies failures identically — each error line
// carries the same outcome label ("paql: budget: ...") the one-shot
// exit code would report — and --help prints the full pairing.
//
// Objective queries come back with a certificate: the result footer
// prints "certified: objective ∈ [bound, found]" with the proven
// relative gap, and -max-gap 0.05 switches on the anytime mode — the
// solve stops as soon as the gap is provably within 5%.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	pb "repro"
	"repro/internal/dataset"
	"repro/internal/sketch"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var csvs, gens multiFlag
	flag.Var(&csvs, "csv", "table=path.csv (repeatable)")
	flag.Var(&gens, "gen", "kind:n:seed synthetic table (kinds: recipes, vacation, stocks)")
	query := flag.String("q", "", "PaQL query text")
	file := flag.String("f", "", "file containing the PaQL query")
	strategy := flag.String("strategy", "auto", "auto | solver | sketch-refine | pruned-enum | local-search | brute-force")
	limit := flag.Int("limit", 0, "number of packages (overrides query LIMIT)")
	diverse := flag.Bool("diverse", false, "return diverse packages instead of top-k")
	seed := flag.Int64("seed", 1, "randomized strategy seed")
	sketchSize := flag.Int("sketch-size", 0, "sketch-refine partition size bound (0 = default)")
	sketchParts := flag.Int("sketch-partitions", 0, "sketch-refine partition count target (0 = off)")
	sketchDepth := flag.Int("sketch-depth", 0, "sketch-refine partition-tree depth (0/1 = flat, >=2 hierarchical)")
	sketchCache := flag.Bool("sketch-cache", true, "cache sketch-refine partition trees across REPL queries (one-shot runs never cache)")
	sketchPar := flag.Int("sketch-par", 0, "sketch-refine worker count (0 = one per CPU, 1 = serial)")
	sketchDir := flag.String("sketch-dir", "", "persist sketch-refine partition trees to this directory (cold starts load instead of rebuilding)")
	sketchIncr := flag.Bool("sketch-incr", true, "patch cached sketch-refine partition trees in place after INSERT/DELETE instead of rebuilding (REPL sessions)")
	explain := flag.Bool("explain", false, "plan the query — print the strategy and knob decisions — without executing it")
	timeout := flag.Duration("timeout", 0, "per-query soft time budget; best-effort packages at expiry (0 = none)")
	memBudget := flag.Int64("mem-budget", 0, "per-query memory budget in bytes, enforced at solve admission (0 = unlimited)")
	maxGap := flag.Float64("max-gap", 0, "anytime mode: stop once the optimality gap is certified ≤ this fraction, e.g. 0.05 (0 = solve fully; the certified interval is reported either way)")
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintln(out, "usage: paql [flags]")
		flag.PrintDefaults()
		fmt.Fprint(out, exitCodeTable)
	}
	flag.Parse()
	// Only an explicit -sketch-incr on the command line forces the
	// patch-vs-rebuild choice; otherwise the planner decides per query.
	sketchIncrSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "sketch-incr" {
			sketchIncrSet = true
		}
	})

	sys := pb.New()
	for _, spec := range csvs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fail("bad -csv %q (want table=path.csv)", spec)
		}
		n, err := sys.LoadCSVFile(name, path)
		if err != nil {
			fail("load %s: %v", spec, err)
		}
		fmt.Fprintf(os.Stderr, "loaded %d rows into %s\n", n, name)
	}
	for _, spec := range gens {
		if err := generate(sys, spec); err != nil {
			fail("generate %s: %v", spec, err)
		}
	}

	if *sketchDir != "" {
		// Constructing the store sweeps orphaned temp files a crashed
		// earlier run may have left behind, so they never block saves.
		st := sketch.NewStore(*sketchDir)
		if n, err := st.SweepResult(); err != nil {
			fmt.Fprintf(os.Stderr, "paql: sketch-dir sweep: %v\n", err)
		} else if n > 0 {
			fmt.Fprintf(os.Stderr, "paql: swept %d orphaned temp file(s) from %s\n", n, *sketchDir)
		}
	}

	text := *query
	if *file != "" {
		raw, err := os.ReadFile(*file)
		if err != nil {
			fail("%v", err)
		}
		text = string(raw)
	}
	cli := cliOpts{
		strategy: *strategy, limit: *limit, diverse: *diverse, seed: *seed,
		sketchSize: *sketchSize, sketchParts: *sketchParts,
		sketchDepth: *sketchDepth, sketchCache: *sketchCache,
		sketchPar: *sketchPar, sketchDir: *sketchDir, sketchIncr: *sketchIncr,
		sketchIncrSet: sketchIncrSet, explain: *explain,
		timeout: *timeout, memBudget: *memBudget, maxGap: *maxGap,
	}
	if text == "" {
		repl(sys, cli)
		return
	}
	// One-shot runs exit after a single query: fingerprinting and
	// storing a partition tree would be pure overhead, and writing tree
	// files to disk as a side effect of a single CLI invocation would
	// surprise. Both stay off — except persistence when the user named
	// a directory with -sketch-dir, which is exactly the ask to reuse
	// the tree across one-shot runs.
	cli.sketchCache = false
	// Ctrl-C / SIGTERM cancels the solve cooperatively: partial work is
	// discarded and the process exits with the canceled exit code (3).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runQuery(ctx, sys, text, cli)
}

// cliOpts carries the evaluation flags shared by one-shot and REPL use.
type cliOpts struct {
	strategy      string
	limit         int
	diverse       bool
	seed          int64
	sketchSize    int
	sketchParts   int
	sketchDepth   int
	sketchCache   bool
	sketchPar     int
	sketchDir     string
	sketchIncr    bool
	sketchIncrSet bool
	explain       bool
	timeout       time.Duration
	memBudget     int64
	maxGap        float64
}

func runQuery(ctx context.Context, sys *pb.System, text string, cli cliOpts) {
	if cli.explain || isExplain(text) {
		if err := runExplain(ctx, sys, os.Stdout, text, cli); err != nil {
			failErr(err)
		}
		return
	}
	opts, err := buildOpts(cli)
	if err != nil {
		failErr(err)
	}
	res, err := sys.QueryContext(ctx, text, opts...)
	if err != nil {
		failErr(err)
	}
	pb.FormatResult(os.Stdout, sys, res)
}

// exitCodeTable is the one-shot outcome → exit-code pairing appended to
// --help; the REPL prints the same labels on its error lines instead of
// exiting.
const exitCodeTable = `
exit codes (one-shot; REPL error lines carry the same labels):
  0  ok
  1  error       anything not classified below
  2  infeasible  provably no package satisfies the query
  3  canceled    Ctrl-C, or the deadline expired empty-handed
  4  budget      -mem-budget refused the query at admission
  5  internal    the solve failed unexpectedly (recovered panic)
`

// outcome maps an evaluation error onto the CLI's documented outcome
// label and exit code. One-shot runs exit with the code; the REPL
// prints the label and keeps going — one classification for both
// surfaces, so scripts and humans read a single taxonomy.
func outcome(err error) (int, string) {
	switch {
	case errors.Is(err, pb.ErrInfeasible):
		return 2, "infeasible"
	case errors.Is(err, pb.ErrCanceled):
		return 3, "canceled"
	case errors.Is(err, pb.ErrBudgetExceeded):
		return 4, "budget"
	case errors.Is(err, pb.ErrInternal):
		return 5, "internal"
	}
	return 1, "error"
}

// failErr prints the classified error and exits with its outcome code.
func failErr(err error) {
	code, label := outcome(err)
	fmt.Fprintf(os.Stderr, "paql: %s: %v\n", label, err)
	os.Exit(code)
}

// replErr reports a failed statement without leaving the REPL, printing
// the identical outcome label the one-shot exit code would map to.
func replErr(err error) {
	_, label := outcome(err)
	fmt.Fprintf(os.Stderr, "paql: %s: %v\n", label, err)
}

// isExplain reports whether the statement starts with the EXPLAIN
// keyword (the parser also accepts and strips it).
func isExplain(text string) bool {
	f := strings.Fields(strings.ToUpper(text))
	return len(f) > 0 && f[0] == "EXPLAIN"
}

// runExplain plans the query without executing it and prints the
// planner's decision trail.
func runExplain(ctx context.Context, sys *pb.System, w io.Writer, text string, cli cliOpts) error {
	opts, err := buildOpts(cli)
	if err != nil {
		return err
	}
	qp, err := sys.ExplainContext(ctx, text, opts...)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, qp.Explain())
	return nil
}

func buildOpts(cli cliOpts) ([]pb.Option, error) {
	st, err := pb.ParseStrategy(cli.strategy)
	if err != nil {
		return nil, err
	}
	opts := []pb.Option{pb.WithStrategy(st), pb.WithSeed(cli.seed)}
	if cli.limit > 0 {
		opts = append(opts, pb.WithLimit(cli.limit))
	}
	if cli.diverse {
		opts = append(opts, pb.WithDiverse())
	}
	if cli.sketchSize > 0 {
		opts = append(opts, pb.WithSketchPartitionSize(cli.sketchSize))
	}
	if cli.sketchParts > 0 {
		opts = append(opts, pb.WithSketchPartitions(cli.sketchParts))
	}
	if cli.sketchDepth > 0 {
		opts = append(opts, pb.WithSketchDepth(cli.sketchDepth))
	}
	if cli.sketchPar > 0 {
		opts = append(opts, pb.WithSketchParallelism(cli.sketchPar))
	}
	if cli.sketchDir != "" {
		opts = append(opts, pb.WithSketchPersistDir(cli.sketchDir))
	}
	opts = append(opts, pb.WithSketchCache(cli.sketchCache))
	if cli.sketchIncrSet {
		opts = append(opts, pb.WithSketchIncremental(cli.sketchIncr))
	}
	if cli.timeout > 0 {
		opts = append(opts, pb.WithTimeout(cli.timeout))
	}
	if cli.memBudget > 0 {
		opts = append(opts, pb.WithMemoryBudget(cli.memBudget))
	}
	if cli.maxGap > 0 {
		opts = append(opts, pb.WithGapTolerance(cli.maxGap))
	}
	return opts, nil
}

func generate(sys *pb.System, spec string) error {
	parts := strings.Split(spec, ":")
	kind := parts[0]
	n := 500
	var seed int64 = 1
	if len(parts) > 1 {
		v, err := strconv.Atoi(parts[1])
		if err != nil {
			return fmt.Errorf("bad size %q", parts[1])
		}
		n = v
	}
	if len(parts) > 2 {
		v, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q", parts[2])
		}
		seed = v
	}
	switch kind {
	case "recipes":
		return dataset.LoadRecipes(sys.DB(), "recipes", dataset.RecipesConfig{N: n, Seed: seed})
	case "vacation":
		return dataset.LoadVacation(sys.DB(), "items", dataset.VacationConfig{
			Flights: n / 3, Hotels: n / 3, Cars: n - 2*(n/3), Seed: seed})
	case "stocks":
		return dataset.LoadStocks(sys.DB(), "stocks", dataset.StocksConfig{N: n, Seed: seed})
	}
	return fmt.Errorf("unknown kind %q (recipes, vacation, stocks)", kind)
}

// repl reads ';'-terminated statements: PaQL (SELECT PACKAGE...) or SQL.
func repl(sys *pb.System, cli cliOpts) {
	fmt.Println("PackageBuilder REPL — PaQL or SQL, ';' terminated, \\q to quit")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() { fmt.Print("paql> ") }
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		if strings.TrimSpace(line) == `\q` {
			return
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			fmt.Print("   -> ")
			continue
		}
		stmt := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(buf.String()), ";"))
		buf.Reset()
		if stmt != "" {
			execStmt(sys, stmt, cli)
		}
		prompt()
	}
}

func execStmt(sys *pb.System, stmt string, cli cliOpts) {
	// Arm a per-statement signal context: Ctrl-C during a long solve
	// cancels just that query (the REPL prints the error and prompts
	// again); at the prompt the default handler still quits the REPL.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	upper := strings.ToUpper(stmt)
	if isExplain(stmt) {
		if err := runExplain(ctx, sys, os.Stdout, stmt, cli); err != nil {
			replErr(err)
		}
		return
	}
	if strings.HasPrefix(upper, "SELECT PACKAGE") {
		opts, err := buildOpts(cli)
		if err != nil {
			replErr(err)
			return
		}
		res, err := sys.QueryContext(ctx, stmt, opts...)
		if err != nil {
			replErr(err)
			return
		}
		pb.FormatResult(os.Stdout, sys, res)
		return
	}
	res, err := sys.ExecSQLContext(ctx, stmt)
	if err != nil {
		replErr(err)
		return
	}
	res.Format(os.Stdout)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "paql: "+format+"\n", args...)
	os.Exit(1)
}

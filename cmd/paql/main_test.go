package main

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	pb "repro"
	"repro/internal/dataset"
)

func testSystem(t *testing.T) *pb.System {
	t.Helper()
	sys := pb.New()
	if err := dataset.LoadRecipes(sys.DB(), "recipes", dataset.RecipesConfig{N: 200, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestIsExplain(t *testing.T) {
	cases := []struct {
		text string
		want bool
	}{
		{"EXPLAIN SELECT PACKAGE(R) AS P FROM recipes R", true},
		{"  explain\nSELECT PACKAGE(R) AS P FROM recipes R", true},
		{"SELECT PACKAGE(R) AS P FROM recipes R", false},
		{"EXPLAINX SELECT", false},
		{"", false},
	}
	for _, c := range cases {
		if got := isExplain(c.text); got != c.want {
			t.Errorf("isExplain(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

// TestRunExplainPrintsPlan drives the CLI explain path end-to-end: an
// EXPLAIN-prefixed statement prints the planner's decision trail and
// does not execute the query.
func TestRunExplainPrintsPlan(t *testing.T) {
	sys := testSystem(t)
	cli := cliOpts{strategy: "auto", seed: 1, sketchIncr: true}
	var buf strings.Builder
	err := runExplain(context.Background(), sys, &buf, `EXPLAIN SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 3 MAXIMIZE SUM(P.protein)`, cli)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"plan for:", "table recipes: 200 rows", "strategy = "} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "EXPLAIN") {
		t.Errorf("plan header kept the EXPLAIN prefix:\n%s", out)
	}
}

// TestOutcomeParity pins the documented exit-code ↔ error taxonomy in
// one place: the one-shot exit path and the REPL error lines both
// classify through outcome(), so every errors.Is pairing — including
// code 4 ↔ ErrBudgetExceeded, which the REPL used to drop — must map
// the same on both surfaces, and --help must document each code.
func TestOutcomeParity(t *testing.T) {
	cases := []struct {
		err   error
		code  int
		label string
	}{
		{pb.ErrInfeasible, 2, "infeasible"},
		{pb.ErrCanceled, 3, "canceled"},
		{pb.ErrBudgetExceeded, 4, "budget"},
		{errors.New("parse error"), 1, "error"},
		{fmt.Errorf("wrapped: %w", pb.ErrBudgetExceeded), 4, "budget"},
	}
	for _, c := range cases {
		code, label := outcome(c.err)
		if code != c.code || label != c.label {
			t.Errorf("outcome(%v) = (%d, %q), want (%d, %q)", c.err, code, label, c.code, c.label)
		}
		if !strings.Contains(exitCodeTable, fmt.Sprintf("%d  %s", c.code, c.label)) {
			t.Errorf("--help exit-code table missing %d/%s:\n%s", c.code, c.label, exitCodeTable)
		}
	}
}

// TestReplBudgetErrorLabeled drives the real REPL statement path under a
// tiny memory budget: the failure must surface with the same "budget"
// label the one-shot path exits 4 on.
func TestReplBudgetErrorLabeled(t *testing.T) {
	sys := testSystem(t)
	opts, err := buildOpts(cliOpts{strategy: "auto", seed: 1, memBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, qerr := sys.QueryContext(context.Background(), `SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 3 MAXIMIZE SUM(P.protein)`, opts...)
	if !errors.Is(qerr, pb.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded under a 1-byte budget, got %v", qerr)
	}
	if code, label := outcome(qerr); code != 4 || label != "budget" {
		t.Fatalf("REPL would report (%d, %q), want (4, \"budget\")", code, label)
	}
}

// TestRunExplainForcedFlags checks explicit CLI knobs surface as forced
// decisions in the plan instead of planner picks.
func TestRunExplainForcedFlags(t *testing.T) {
	sys := testSystem(t)
	cli := cliOpts{strategy: "sketch-refine", seed: 1, sketchSize: 32, sketchDepth: 2,
		sketchPar: 3, sketchIncr: false, sketchIncrSet: true}
	var buf strings.Builder
	err := runExplain(context.Background(), sys, &buf, `SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 3 MAXIMIZE SUM(P.protein)`, cli)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := strings.Count(out, "[forced]"); n < 5 {
		t.Errorf("want >= 5 forced decisions (strategy, tau, depth, parallelism, maintenance), got %d:\n%s", n, out)
	}
	for _, want := range []string{"strategy = sketch-refine", "tau = 32", "depth = 2",
		"parallelism = 3", "maintenance = rebuild"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

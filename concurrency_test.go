package packagebuilder_test

import (
	"sync"
	"testing"

	pb "repro"
	"repro/internal/dataset"
)

// Concurrent queries against one System must be safe: read-only
// strategies share the catalog under RLock, and local search's scratch
// tables carry unique names. Run under -race.
func TestConcurrentQueries(t *testing.T) {
	sys := newSystem(t, 120)
	queries := []struct {
		text string
		opts []pb.Option
	}{
		{mealQuery, []pb.Option{pb.WithStrategy(pb.Solver)}},
		{mealQuery, []pb.Option{pb.WithStrategy(pb.PrunedEnum)}},
		{mealQuery, []pb.Option{pb.WithStrategy(pb.LocalSearch), pb.WithSeed(1)}},
		{mealQuery, []pb.Option{pb.WithStrategy(pb.LocalSearch), pb.WithSeed(2)}},
		{mealQuery, []pb.Option{pb.WithLimit(3)}},
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(queries)*4)
	for round := 0; round < 4; round++ {
		for _, q := range queries {
			wg.Add(1)
			go func(text string, opts []pb.Option) {
				defer wg.Done()
				res, err := sys.Query(text, opts...)
				if err != nil {
					errs <- err
					return
				}
				for _, p := range res.Packages {
					if p.Size() != 3 {
						errs <- errSize(p.Size())
					}
				}
			}(q.text, q.opts)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type errSize int

func (e errSize) Error() string { return "unexpected package size" }

// Concurrent SQL readers during package evaluation.
func TestConcurrentSQLAndPaQL(t *testing.T) {
	sys := pb.New()
	if err := dataset.LoadRecipes(sys.DB(), "recipes", dataset.RecipesConfig{N: 100, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				if _, err := sys.ExecSQL(`SELECT COUNT(*), AVG(calories) FROM recipes WHERE gluten = 'free'`); err != nil {
					t.Error(err)
				}
				return
			}
			if _, err := sys.Query(mealQuery, pb.WithSeed(int64(i))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
}

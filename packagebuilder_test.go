package packagebuilder_test

import (
	"strings"
	"testing"
	"time"

	pb "repro"
	"repro/internal/dataset"
	"repro/internal/explore"
)

func newSystem(t *testing.T, n int) *pb.System {
	t.Helper()
	sys := pb.New()
	if err := dataset.LoadRecipes(sys.DB(), "recipes", dataset.RecipesConfig{N: n, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	return sys
}

const mealQuery = `
	SELECT PACKAGE(R) AS P
	FROM recipes R
	WHERE R.gluten = 'free'
	SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500
	MAXIMIZE SUM(P.protein)`

func TestPublicAPIQuery(t *testing.T) {
	sys := newSystem(t, 200)
	res, err := sys.Query(mealQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) != 1 {
		t.Fatalf("packages = %d", len(res.Packages))
	}
	p := res.Packages[0]
	if p.Size() != 3 {
		t.Errorf("size = %d", p.Size())
	}
	cal, _ := p.AggValues["SUM(R.calories)"].AsFloat()
	if cal < 2000 || cal > 2500 {
		t.Errorf("calories = %g outside [2000, 2500]", cal)
	}
	for _, row := range p.Rows {
		if row[4].StrVal() != "free" {
			t.Errorf("base constraint violated: %v", row)
		}
	}
}

func TestPublicAPIOptions(t *testing.T) {
	sys := newSystem(t, 60)
	res, err := sys.Query(mealQuery,
		pb.WithStrategy(pb.LocalSearch), pb.WithSeed(3), pb.WithRestarts(6),
		pb.WithLimit(2), pb.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Strategy != pb.LocalSearch {
		t.Errorf("strategy = %v", res.Stats.Strategy)
	}
	if len(res.Packages) == 0 || len(res.Packages) > 2 {
		t.Errorf("packages = %d", len(res.Packages))
	}
	// exact strategies agree through the public API
	solver, err := sys.Query(mealQuery, pb.WithStrategy(pb.Solver))
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := sys.Query(mealQuery, pb.WithStrategy(pb.PrunedEnum))
	if err != nil {
		t.Fatal(err)
	}
	if solver.Packages[0].Objective != pruned.Packages[0].Objective {
		t.Errorf("solver %g != pruned %g",
			solver.Packages[0].Objective, pruned.Packages[0].Objective)
	}
	// diverse option
	div, err := sys.Query(mealQuery, pb.WithLimit(3), pb.WithDiverse())
	if err != nil {
		t.Fatal(err)
	}
	if len(div.Packages) == 0 {
		t.Error("diverse query found nothing")
	}
}

func TestPublicAPISQLAndCSV(t *testing.T) {
	sys := pb.New()
	csv := "id:int,x:float\n1,10\n2,20\n3,30\n"
	if n, err := sys.LoadCSV("t", strings.NewReader(csv)); err != nil || n != 3 {
		t.Fatalf("LoadCSV = %d, %v", n, err)
	}
	res, err := sys.ExecSQL(`SELECT SUM(x) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := res.Rows[0][0].AsFloat(); f != 60 {
		t.Errorf("sum = %g", f)
	}
	q, err := sys.Parse(`SELECT PACKAGE(T) AS P FROM t T SUCH THAT COUNT(*) = 2`)
	if err != nil || q.Table != "t" {
		t.Errorf("Parse = %v, %v", q, err)
	}
	pkg, err := sys.Query(`SELECT PACKAGE(T) AS P FROM t T SUCH THAT COUNT(*) = 2 AND SUM(P.x) <= 30 MAXIMIZE SUM(P.x)`)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Packages[0].Objective != 30 {
		t.Errorf("objective = %g, want 30 (10+20)", pkg.Packages[0].Objective)
	}
}

func TestPublicAPIExploreAndTemplate(t *testing.T) {
	sys := newSystem(t, 100)
	ses, err := sys.Explore(mealQuery, pb.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	first, err := ses.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range first.Mult {
		if m > 0 {
			if err := ses.Pin(i); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	next, err := ses.Replace()
	if err != nil {
		t.Fatal(err)
	}
	if next.Size() != 3 {
		t.Errorf("replacement size = %d", next.Size())
	}
	sugg, err := ses.Suggest(explore.Highlight{Column: "fat", Row: -1})
	if err != nil || len(sugg) == 0 {
		t.Errorf("Suggest = %v, %v", sugg, err)
	}
	tpl, err := sys.Template(mealQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(tpl.Globals) != 2 {
		t.Errorf("template globals = %v", tpl.Globals)
	}
	// summary over several packages
	prep, err := sys.Prepare(mealQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(mealQuery, pb.WithLimit(5))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sys.Summarize(prep, res.Packages, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Points) != len(res.Packages) {
		t.Errorf("summary points = %d", len(sum.Points))
	}
}

// TestPublicAPIExplain drives the planner through the library surface:
// System.Explain returns the decision trail without executing, and an
// EXPLAIN-prefixed Query plans but returns no packages.
func TestPublicAPIExplain(t *testing.T) {
	sys := newSystem(t, 200)
	qp, err := sys.Explain(mealQuery)
	if err != nil {
		t.Fatal(err)
	}
	if qp.Strategy == "" || qp.Decision("strategy") == nil {
		t.Fatalf("plan missing strategy: %+v", qp)
	}
	if qp.Candidates == 0 {
		t.Errorf("plan candidates = 0")
	}
	text := qp.Explain()
	for _, want := range []string{"plan for:", "strategy = "} {
		if !strings.Contains(text, want) {
			t.Errorf("Explain() missing %q:\n%s", want, text)
		}
	}
	// Catalog stats flow into the plan.
	if qp.Table.Rows != 200 {
		t.Errorf("plan table rows = %d, want 200", qp.Table.Rows)
	}

	// EXPLAIN-prefixed query: planned, not executed.
	res, err := sys.Query("EXPLAIN " + mealQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) != 0 {
		t.Errorf("EXPLAIN executed the query: %d packages", len(res.Packages))
	}
	if res.Stats.Plan == nil {
		t.Error("EXPLAIN result has no plan")
	}
	found := false
	for _, n := range res.Stats.Notes {
		if strings.Contains(n, "EXPLAIN") {
			found = true
		}
	}
	if !found {
		t.Errorf("EXPLAIN note missing: %v", res.Stats.Notes)
	}

	// Plain queries also carry the plan in stats.
	res2, err := sys.Query(mealQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Plan == nil || res2.Stats.Plan.Strategy == "" {
		t.Error("executed query missing stats plan")
	}
}

// TestPublicAPIExplainForcedOptions is the library-surface forced-flags
// regression: every explicit knob option overrides the planner and is
// marked forced in the plan.
func TestPublicAPIExplainForcedOptions(t *testing.T) {
	sys := newSystem(t, 200)
	qp, err := sys.Explain(mealQuery,
		pb.WithStrategy(pb.SketchRefine), pb.WithSketchPartitionSize(32),
		pb.WithSketchDepth(2), pb.WithSketchParallelism(3),
		pb.WithSketchIncremental(false))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"strategy", "tau", "depth", "parallelism", "maintenance"} {
		d := qp.Decision(name)
		if d == nil || !d.Forced {
			t.Errorf("decision %s not forced: %+v", name, d)
		}
	}
	if qp.Strategy != "sketch-refine" || qp.Tau != 32 || qp.Depth != 2 || qp.Parallelism != 3 {
		t.Errorf("forced knobs not honored: %+v", qp)
	}
	if qp.Maintenance != "rebuild" || qp.Incremental {
		t.Errorf("WithSketchIncremental(false) not forced: maintenance=%s incremental=%v",
			qp.Maintenance, qp.Incremental)
	}

	// A custom planner with a tuned cost model changes the decision.
	pl := pb.NewPlanner()
	pl.Cost.SketchThreshold = 100 // 200-row table now clears the sketch bar
	qp2, err := sys.Explain(mealQuery, pb.WithPlanner(pl))
	if err != nil {
		t.Fatal(err)
	}
	if qp2.Strategy != "sketch-refine" {
		t.Errorf("tuned planner strategy = %s, want sketch-refine", qp2.Strategy)
	}
}

func TestFormatResultOutput(t *testing.T) {
	sys := newSystem(t, 80)
	res, err := sys.Query(mealQuery)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	pb.FormatResult(&sb, sys, res)
	out := sb.String()
	for _, want := range []string{"package 1 of 1", "MAXIMIZE", "COUNT(*)", "strategy=", "search space"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatResult missing %q:\n%s", want, out)
		}
	}
	// empty result
	empty, err := sys.Query(`SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 2 AND COUNT(*) = 3`)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	pb.FormatResult(&sb, sys, empty)
	if !strings.Contains(sb.String(), "no package") {
		t.Error("empty-result message missing")
	}
}

// TestPaperRunningExampleEndToEnd is the paper's §2 query, verified
// end-to-end across all strategies on a fixed dataset.
func TestPaperRunningExampleEndToEnd(t *testing.T) {
	sys := newSystem(t, 150)
	var objectives []float64
	for _, st := range []pb.Strategy{pb.Solver, pb.PrunedEnum} {
		res, err := sys.Query(mealQuery, pb.WithStrategy(st))
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if !res.Stats.Exact {
			t.Errorf("%v not exact", st)
		}
		objectives = append(objectives, res.Packages[0].Objective)
	}
	if objectives[0] != objectives[1] {
		t.Errorf("exact strategies disagree: %v", objectives)
	}
	heur, err := sys.Query(mealQuery, pb.WithStrategy(pb.LocalSearch), pb.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(heur.Packages) > 0 && heur.Packages[0].Objective > objectives[0] {
		t.Error("heuristic exceeded the proven optimum")
	}
}

// Package packagebuilder is a from-scratch Go implementation of
// PackageBuilder (Brucato, Ramakrishna, Abouzied, Meliou — VLDB 2014):
// a system that extends a relational database with *package queries*. A
// package is a collection of tuples that individually satisfy base
// constraints (ordinary WHERE predicates) and collectively satisfy
// global constraints (aggregate predicates over the whole package),
// optionally optimizing a per-package objective.
//
// Queries are written in PaQL, the paper's SQL-based language:
//
//	SELECT PACKAGE(R) AS P
//	FROM   recipes R
//	WHERE  R.gluten = 'free'
//	SUCH THAT COUNT(*) = 3
//	      AND SUM(P.calories) BETWEEN 2000 AND 2500
//	MAXIMIZE SUM(P.protein)
//
// The library is self-contained: it embeds its own relational engine
// (internal/minidb), a simplex/branch-and-bound MILP solver
// (internal/lp, internal/milp), the PaQL front-end (internal/paql), the
// PaQL→MILP translation (internal/translate), the search-based
// evaluation strategies with §4.1 cardinality pruning and the §4.2
// SQL-driven local search (internal/search), the partition-based
// SketchRefine strategy from the paper's follow-up work
// (internal/sketch), and the §3 interface abstractions
// (internal/explore, internal/viz, internal/template).
//
// At scale, SketchRefine (PVLDB 2016, "Scalable Package Queries in
// Relational Database Systems") replaces the one-MILP-per-query model:
// candidates are partitioned offline into size-bounded groups over the
// query's numeric attributes, a small sketch package is solved over one
// representative tuple per group, and the sketch is refined partition
// by partition with tiny sub-MILPs (greedy repair when a partition is
// infeasible or over budget). Select it with WithStrategy(SketchRefine)
// or let Auto choose it above a few thousand candidates; tune it with
// WithSketchPartitionSize / WithSketchPartitions. WithSketchDepth(d)
// generalizes the partitioning to a partition tree (PVLDB 2023,
// "Scaling Package Queries to a Billion Tuples"): the sketch recurses
// level by level so the top MILP stays around the d-th root of the
// partition count. Partition trees are cached across queries in the
// System's shared LRU (keyed by a fingerprint of the candidate rows, so
// writes invalidate automatically); WithSketchCache(false) opts out.
// The offline partitioning and the per-partition solves fan out across
// the machine's cores (WithSketchParallelism tunes or disables this;
// results are identical at any worker count), and
// WithSketchPersistDir(dir) adds an on-disk tier under the LRU so a new
// process skips the offline step as well. Both tiers are maintained
// incrementally (WithSketchIncremental, on by default): a shared
// fingerprint memo makes warm evaluations over unchanged tables hash
// zero candidate rows, and after INSERTs or DELETEs the stale tree is
// patched in place — the write batch routed or tombstoned through the
// existing structure — instead of rebuilt from scratch.
//
// SketchRefine covers the full PaQL atom grammar, not just conjunctive
// SUM/COUNT comparisons: AVG atoms are linearized as SUM − c·COUNT with
// a non-empty guard, MIN/MAX atoms are enforced through per-node
// min/max envelopes carried by the partition tree (exactly at the
// leaves, as sound pruning at every sketch level), and disjunctions
// expand to DNF with one sketch descent per branch — the best feasible
// branch wins. Stats report the branch and rewrite counts
// (SketchBranches / SketchAtomRewrites).
//
// Answers with an objective come with a certificate: alongside the best
// package found, the engine proves an LP-relaxation dual bound over the
// search space (internal/bound), so Stats report a certified
// objective ∈ [bound, found] interval and relative gap rather than an
// unquantified "approximate" answer. WithGapTolerance(tol) turns the
// certificate into an anytime mode — SketchRefine stops descending as
// soon as the proven gap drops within tol.
//
// Every evaluation surface has a context-aware variant — QueryContext,
// ExplainContext, ExploreContext, ExecSQLContext, and RunContext on a
// Prepared — that threads the context cooperatively through candidate
// scans, MILP branch-and-bound, and SketchRefine's parallel build and
// refine phases, so cancellation returns promptly even mid-solve over
// millions of tuples. Outcomes are distinguished by an errors.Is-able
// taxonomy (ErrInfeasible, ErrCanceled, ErrBudgetExceeded,
// ErrAdmission); WithTimeout is sugar for a derived context deadline and
// WithMemoryBudget refuses queries whose planner-predicted working set
// exceeds a byte budget. The context-free methods (Query, Explore, ...)
// evaluate under context.Background() with the original contracts.
//
// Typical use:
//
//	sys := packagebuilder.New()
//	_ = dataset.LoadRecipes(sys.DB(), "recipes", dataset.RecipesConfig{N: 500, Seed: 1})
//	res, err := sys.Query(queryText)          // evaluate a PaQL query
//	ses, err := sys.Explore(queryText)        // adaptive exploration
package packagebuilder

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/bound"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/lifecycle"
	"repro/internal/minidb"
	"repro/internal/paql"
	"repro/internal/plan"
	"repro/internal/sketch"
	"repro/internal/template"
	"repro/internal/viz"
)

// Typed query-lifecycle errors, re-exported from the lifecycle package.
// Match them with errors.Is; wrapped causes (context.Canceled,
// context.DeadlineExceeded) survive the wrap.
var (
	// ErrInfeasible: the query provably has no satisfying package.
	// Returned only by the context-aware surfaces and only on proof
	// (contradictory cardinality bounds, or an exact strategy completing
	// empty); a heuristic strategy finding nothing is an empty result,
	// not an error.
	ErrInfeasible = lifecycle.ErrInfeasible
	// ErrCanceled: the context was canceled or its deadline expired
	// before any answer was computed.
	ErrCanceled = lifecycle.ErrCanceled
	// ErrBudgetExceeded: the planner-predicted working set exceeds the
	// query's WithMemoryBudget; evaluation was refused before any
	// allocation.
	ErrBudgetExceeded = lifecycle.ErrBudgetExceeded
	// ErrAdmission: a serving-side admission controller shed the query
	// (pbserver maps it to HTTP 429 with a Retry-After).
	ErrAdmission = lifecycle.ErrAdmission
	// ErrInternal: the query failed unexpectedly — a recovered panic or
	// an exhausted degradation ladder. The solve drained its admission
	// slot correctly; retrying is safe (pbserver maps it to HTTP 500).
	ErrInternal = lifecycle.ErrInternal
)

// System is a PackageBuilder instance: an embedded database plus the
// package-query engine. Safe for concurrent readers.
//
// The system owns a shared SketchRefine partition-tree cache: repeated
// package queries over unchanged data reuse the offline partitioning
// instead of rebuilding it (the cache key fingerprints the candidate
// rows, so data changes invalidate stale trees automatically). Disable
// it per query with WithSketchCache(false).
type System struct {
	db          *minidb.DB
	sketchCache *sketch.Cache
	sketchMemo  *core.FingerprintMemo
	catalog     *catalog.Catalog
}

// New creates an empty system.
func New() *System {
	db := minidb.New()
	return &System{db: db, sketchCache: sketch.NewCache(0),
		sketchMemo: core.NewFingerprintMemo(), catalog: catalog.New(db)}
}

// Catalog exposes the system's table-statistics catalog: per-table row
// counts, per-attribute min/max/null-fraction/distinct estimates, and
// write rates derived from the delta log — the planner's input.
func (s *System) Catalog() *catalog.Catalog { return s.catalog }

// SketchCache exposes the system's shared partition-tree cache (for
// stats inspection and explicit clearing).
func (s *System) SketchCache() *sketch.Cache { return s.sketchCache }

// SketchMemo exposes the system's shared candidate-fingerprint memo:
// its stats report how many candidate rows were actually hashed across
// evaluations — zero for warm queries over unchanged tables.
func (s *System) SketchMemo() *core.FingerprintMemo { return s.sketchMemo }

// DB exposes the embedded relational engine (DDL, SQL, CSV loading).
func (s *System) DB() *minidb.DB { return s.db }

// ExecSQL runs one SQL statement against the embedded database.
func (s *System) ExecSQL(sql string) (*minidb.Result, error) {
	return s.db.Exec(sql)
}

// ExecSQLContext is ExecSQL under a context. Statements are short and
// run to completion once started; the context gates starting at all —
// a dead context returns ErrCanceled without touching the database.
func (s *System) ExecSQLContext(ctx context.Context, sql string) (*minidb.Result, error) {
	if err := lifecycle.ContextErr(ctx); err != nil {
		return nil, err
	}
	return s.db.Exec(sql)
}

// LoadCSV loads CSV data (header row; "name:type" cells supported) into
// a new table, returning the row count.
func (s *System) LoadCSV(table string, r io.Reader) (int, error) {
	return s.db.LoadCSV(table, r)
}

// LoadCSVFile is LoadCSV from a file path.
func (s *System) LoadCSVFile(table, path string) (int, error) {
	return s.db.LoadCSVFile(table, path)
}

// Strategy selects the evaluation strategy. See the core package for
// semantics; Auto picks by linearity and scale.
type Strategy = core.Strategy

// Evaluation strategies.
const (
	Auto         = core.Auto
	BruteForce   = core.BruteForceStrategy
	PrunedEnum   = core.PrunedEnum
	LocalSearch  = core.LocalSearchStrategy
	Solver       = core.Solver
	SketchRefine = core.SketchRefineStrategy
)

// ParseStrategy resolves a strategy name ("auto", "solver",
// "sketch-refine", ...) to its Strategy value.
func ParseStrategy(name string) (Strategy, error) { return core.ParseStrategy(name) }

// Result is a query evaluation outcome. Re-exported from core.
type Result = core.Result

// Package is one evaluated package. Re-exported from core.
type Package = core.Package

// Option tunes query evaluation.
type Option func(*core.Options)

// WithStrategy forces an evaluation strategy.
func WithStrategy(st Strategy) Option { return func(o *core.Options) { o.Strategy = st } }

// WithLimit requests n packages (overrides the query's LIMIT).
func WithLimit(n int) Option { return func(o *core.Options) { o.Limit = n } }

// WithTimeout bounds evaluation time. Under the context-aware surfaces
// it is sugar for a derived context deadline: the strategies treat it as
// a soft budget first (best-effort packages beat an error) with hard
// cancellation trailing as the backstop; symmetrically, a context
// deadline with no WithTimeout becomes the soft budget.
func WithTimeout(d time.Duration) Option { return func(o *core.Options) { o.Timeout = d } }

// WithMemoryBudget caps the planner-predicted peak working set (bytes) a
// query may allocate: evaluation refuses with ErrBudgetExceeded before
// dispatching a strategy whose estimate exceeds the budget. The
// estimate is the plan's "memory" decision — EXPLAIN shows it.
func WithMemoryBudget(bytes int64) Option {
	return func(o *core.Options) { o.MemoryBudget = bytes }
}

// WithGapTolerance switches on the anytime mode: SketchRefine keeps
// descending only while the certified relative optimality gap — the
// distance between the best package found and the LP dual bound proven
// over the remaining search space — exceeds tol (e.g. 0.05 for 5%).
// Once within tolerance it stops early and still returns the certified
// objective ∈ [bound, found] interval. Zero (the default) disables
// early exit but the interval is computed and reported regardless.
func WithGapTolerance(tol float64) Option {
	return func(o *core.Options) { o.GapTolerance = tol }
}

// WithSeed seeds the randomized strategies.
func WithSeed(seed int64) Option { return func(o *core.Options) { o.Seed = seed } }

// WithDiverse returns a diverse package set instead of the top-k.
func WithDiverse() Option { return func(o *core.Options) { o.Diverse = true } }

// WithRestarts sets local-search restarts.
func WithRestarts(n int) Option { return func(o *core.Options) { o.Restarts = n } }

// WithRequire pins candidate indexes into every package.
func WithRequire(idx ...int) Option { return func(o *core.Options) { o.Require = idx } }

// WithSketchPartitionSize bounds SketchRefine partitions at n tuples.
func WithSketchPartitionSize(n int) Option {
	return func(o *core.Options) { o.SketchPartitionSize = n }
}

// WithSketchPartitions targets a SketchRefine partition count instead
// of a size bound; the tighter of the two wins.
func WithSketchPartitions(n int) Option {
	return func(o *core.Options) { o.SketchPartitions = n }
}

// WithSketchDepth sets the SketchRefine partition-tree depth: 1 = flat,
// ≥ 2 recurses the sketch over partitions of partitions so the
// top-level MILP stays tiny at any scale.
func WithSketchDepth(d int) Option {
	return func(o *core.Options) { o.SketchDepth = d }
}

// WithSketchCache enables or disables the system's shared
// partition-tree cache for this query (enabled by default).
func WithSketchCache(enabled bool) Option {
	return func(o *core.Options) { o.SketchNoCache = !enabled }
}

// WithSketchParallelism caps the workers SketchRefine's offline
// partitioning and per-partition solves fan out across: 0 = one per
// CPU (the default), 1 = fully serial. Results are identical at every
// setting — parallelism only divides the work.
func WithSketchParallelism(n int) Option {
	return func(o *core.Options) { o.SketchParallelism = n }
}

// WithSketchPersistDir persists SketchRefine partition trees to dir as
// an on-disk tier under the in-memory cache, so a cold start (new
// process) skips the offline partitioning step too. Stale or corrupted
// files fall back to a rebuild.
func WithSketchPersistDir(dir string) Option {
	return func(o *core.Options) { o.SketchPersistDir = dir }
}

// WithSketchIncremental enables or disables incremental partition-tree
// maintenance (enabled by default): after INSERTs or DELETEs, the
// cached tree for the pre-write data is patched in place — deletions
// tombstoned, insertions routed to their leaves, overgrown leaves
// split locally — instead of rebuilt from scratch, and warm
// evaluations hash only the written rows rather than every candidate.
func WithSketchIncremental(enabled bool) Option {
	return func(o *core.Options) {
		o.SketchIncremental = enabled
		// An explicit caller choice is "forced": the planner's
		// patch-vs-rebuild decision must not override it.
		o.SketchIncrementalSet = true
	}
}

// Planner is the cost-based query planner: it binds a query against the
// catalog and picks the evaluation strategy and every SketchRefine knob,
// recording each decision with a cost estimate and reason.
type Planner = plan.Planner

// CostModel holds the planner's tunable thresholds and cost formulas.
type CostModel = plan.CostModel

// QueryPlan is a planner decision trail: strategy, knobs, maintenance
// and tree-source choices, each with alternatives and reasons. Render it
// with its Explain method.
type QueryPlan = plan.Plan

// NewPlanner returns a planner with the default cost model.
func NewPlanner() *Planner { return plan.NewPlanner() }

// WithPlanner substitutes a custom planner (e.g. a tuned cost model)
// for the default one.
func WithPlanner(pl *Planner) Option {
	return func(o *core.Options) { o.Planner = pl }
}

func (s *System) buildOptions(opts []Option) core.Options {
	// Incremental maintenance is on by default at the System surface;
	// WithSketchIncremental(false) opts out per query.
	o := core.Options{SketchIncremental: true}
	for _, fn := range opts {
		fn(&o)
	}
	if o.SketchCache == nil && !o.SketchNoCache {
		o.SketchCache = s.sketchCache
	}
	if o.SketchMemo == nil && !o.SketchNoCache {
		o.SketchMemo = s.sketchMemo
	}
	if o.Catalog == nil {
		o.Catalog = s.catalog
	}
	return o
}

// Query evaluates a PaQL query under context.Background() with the
// legacy contract: a provably infeasible query is an empty result, not
// an error. See QueryContext for the typed-error surface.
func (s *System) Query(paqlText string, opts ...Option) (*Result, error) {
	return core.Evaluate(s.db, paqlText, s.buildOptions(opts))
}

// QueryContext evaluates a PaQL query under a context. The context is
// checked cooperatively through every evaluation phase, so cancellation
// returns promptly with partial work discarded and the shared partition
// tree cache left consistent. Outcomes map onto the error taxonomy:
// ErrInfeasible (provably no package), ErrCanceled (context canceled, or
// deadline expired empty-handed), ErrBudgetExceeded (WithMemoryBudget
// refusal) — all errors.Is-able.
func (s *System) QueryContext(ctx context.Context, paqlText string, opts ...Option) (*Result, error) {
	return core.EvaluateContext(ctx, s.db, paqlText, s.buildOptions(opts))
}

// Prepare parses and binds a PaQL query for repeated evaluation.
// Repeated prep.Run calls share the system's partition-tree cache and
// fingerprint memo; prep.RunContext adds the context-aware typed-error
// contract per run.
func (s *System) Prepare(paqlText string) (*core.Prepared, error) {
	return s.PrepareContext(context.Background(), paqlText)
}

// PrepareContext is Prepare under a context: the candidate scan — the
// one preparation phase linear in the table — checks for cancellation
// periodically.
func (s *System) PrepareContext(ctx context.Context, paqlText string) (*core.Prepared, error) {
	prep, err := core.PrepareContext(ctx, s.db, paqlText)
	if err != nil {
		return nil, err
	}
	prep.SketchCache = s.sketchCache
	prep.SketchMemo = s.sketchMemo
	return prep, nil
}

// Parse parses PaQL without evaluating it.
func (s *System) Parse(paqlText string) (*paql.Query, error) {
	return paql.Parse(paqlText)
}

// Explain plans a PaQL query without executing it, returning the
// planner's decision trail (strategy, SketchRefine knobs, maintenance,
// tree source — each with cost estimates and reasons). A leading
// EXPLAIN keyword in the text is accepted and ignored.
func (s *System) Explain(paqlText string, opts ...Option) (*QueryPlan, error) {
	return s.ExplainContext(context.Background(), paqlText, opts...)
}

// ExplainContext is Explain under a context. Planning itself is cheap
// and never blocks; the context governs the preparation scan that
// precedes it.
func (s *System) ExplainContext(ctx context.Context, paqlText string, opts ...Option) (*QueryPlan, error) {
	prep, err := s.PrepareContext(ctx, paqlText)
	if err != nil {
		return nil, err
	}
	return prep.Plan(s.buildOptions(opts)), nil
}

// Explore opens an adaptive-exploration session (§3.3): evaluate,
// pin tuples, request replacements.
func (s *System) Explore(paqlText string, opts ...Option) (*explore.Session, error) {
	return explore.NewSession(s.db, paqlText, s.buildOptions(opts))
}

// ExploreContext is Explore under a context. The session's own
// RefreshContext and ReplaceContext take per-evaluation contexts with
// the typed-error contract; the context given here governs only session
// preparation.
func (s *System) ExploreContext(ctx context.Context, paqlText string, opts ...Option) (*explore.Session, error) {
	return explore.NewSessionContext(ctx, s.db, paqlText, s.buildOptions(opts))
}

// Template converts PaQL text into an editable package template (§3.1).
func (s *System) Template(paqlText string) (*template.Template, error) {
	return template.FromText(paqlText)
}

// Summarize lays out packages along two automatically selected
// dimensions (§3.2).
func (s *System) Summarize(prep *core.Prepared, pkgs []*Package, currentIdx int, running bool) (*viz.Summary, error) {
	return viz.Summarize(prep, pkgs, currentIdx, running)
}

// FormatResult renders an evaluation result: each package as a table of
// its tuples plus aggregate values, then the evaluation statistics.
func FormatResult(w io.Writer, sys *System, res *Result) {
	tab, ok := sys.db.Table(res.Query.Table)
	if !ok {
		fmt.Fprintf(w, "(relation %s vanished)\n", res.Query.Table)
		return
	}
	if len(res.Packages) == 0 {
		fmt.Fprintln(w, "no package satisfies the query")
	}
	for i, p := range res.Packages {
		fmt.Fprintf(w, "package %d of %d", i+1, len(res.Packages))
		if res.Query.Objective != nil {
			fmt.Fprintf(w, "  (%s %s = %g)", res.Query.Objective.Sense,
				res.Query.Objective.Expr, p.Objective)
		}
		fmt.Fprintln(w)
		r := &minidb.Result{Schema: tab.Schema, Rows: p.Rows}
		r.Format(w)
		for _, k := range sortedAggKeys(p) {
			fmt.Fprintf(w, "  %-40s %s\n", k, p.AggValues[k])
		}
		fmt.Fprintln(w)
	}
	st := res.Stats
	fmt.Fprintf(w, "strategy=%s exact=%v candidates=%d bounds=%s elapsed=%s\n",
		st.Strategy, st.Exact, st.Candidates, st.Bounds, st.Elapsed.Round(time.Microsecond))
	if st.Degraded {
		fmt.Fprintf(w, "degraded: %s\n", strings.Join(st.DegradedReasons, "; "))
	}
	if st.Certified && len(res.Packages) > 0 && res.Query.Objective != nil {
		// bound.Interval.FormatInterval is the one shared gap renderer
		// (the CLI and the HTTP server reuse it), so every surface rounds
		// — and handles the |objective| < 1 denominator clamp — the same
		// way.
		iv := bound.Interval{Found: res.Packages[0].Objective, Bound: st.BoundValue, Certified: true}
		fmt.Fprintf(w, "certified: %s", iv.FormatInterval())
		if st.BoundStage != "" {
			fmt.Fprintf(w, " via %s", st.BoundStage)
			if st.BoundTightenRounds > 0 {
				fmt.Fprintf(w, ", %d tightening round(s)", st.BoundTightenRounds)
			}
		}
		fmt.Fprintln(w)
	}
	if st.SpaceFull != nil && st.SpacePruned != nil {
		fmt.Fprintf(w, "search space: %s of %s candidate packages after §4.1 pruning\n",
			st.SpacePruned.String(), st.SpaceFull.String())
	}
	for _, n := range st.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

func sortedAggKeys(p *Package) []string {
	keys := make([]string, 0, len(p.AggValues))
	for k := range p.AggValues {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

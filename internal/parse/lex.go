// Package parse provides the lexer and the scalar-expression parser
// shared by the minidb SQL front-end and the PaQL front-end. Both
// languages use the same token stream and the same expression grammar;
// each front-end extends the primary production through a hook (SQL adds
// scalar sub-queries, PaQL adds package aggregates like SUM(P.calories)).
package parse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies tokens.
type TokenKind uint8

const (
	TEOF TokenKind = iota
	TIdent
	TNumber
	TString
	TPunct
)

func (k TokenKind) String() string {
	switch k {
	case TEOF:
		return "end of input"
	case TIdent:
		return "identifier"
	case TNumber:
		return "number"
	case TString:
		return "string"
	case TPunct:
		return "symbol"
	}
	return "token"
}

// Token is a lexical token. Text preserves the source spelling except
// for strings, where it holds the unescaped contents.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the source
}

// Lex tokenizes src. SQL-style comments (-- to end of line) are skipped.
// Strings are single-quoted with ” as the escape for a quote.
func Lex(src string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				i++
			}
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(src[i])) {
				i++
			}
			toks = append(toks, Token{Kind: TIdent, Text: src[start:i], Pos: start})
		case c >= '0' && c <= '9':
			start := i
			for i < n && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			if i < n && src[i] == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9' {
				i++
				for i < n && src[i] >= '0' && src[i] <= '9' {
					i++
				}
			}
			if i < n && (src[i] == 'e' || src[i] == 'E') {
				j := i + 1
				if j < n && (src[j] == '+' || src[j] == '-') {
					j++
				}
				if j < n && src[j] >= '0' && src[j] <= '9' {
					i = j
					for i < n && src[i] >= '0' && src[i] <= '9' {
						i++
					}
				}
			}
			toks = append(toks, Token{Kind: TNumber, Text: src[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("parse: unterminated string literal at offset %d", start)
			}
			toks = append(toks, Token{Kind: TString, Text: sb.String(), Pos: start})
		default:
			start := i
			// Multi-character operators first.
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				sym := two
				if sym == "!=" {
					sym = "<>"
				}
				toks = append(toks, Token{Kind: TPunct, Text: sym, Pos: start})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '(', ')', ',', '.', '*', '+', '-', '/', '%', ';':
				toks = append(toks, Token{Kind: TPunct, Text: string(c), Pos: start})
				i++
			default:
				return nil, fmt.Errorf("parse: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, Token{Kind: TEOF, Pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

package parse

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/value"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a.b, 'it''s' <= 3.5e2 -- comment\n<> !=")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"SELECT", "a", ".", "b", ",", "it's", "<=", "3.5e2", "<>", "<>", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %q", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[len(kinds)-1] != TEOF {
		t.Error("missing EOF")
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("1 2.5 3e4 5.25e-2 6E+1 7.")
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{}
	for _, tok := range toks {
		if tok.Kind != TEOF {
			texts = append(texts, tok.Text)
		}
	}
	// "7." lexes as number 7 then punct "." (qualification dot).
	want := []string{"1", "2.5", "3e4", "5.25e-2", "6E+1", "7", "."}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Errorf("tokens = %v, want %v", texts, want)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex("a # b"); err == nil {
		t.Error("bad character should fail")
	}
}

func TestTokenKindString(t *testing.T) {
	for _, k := range []TokenKind{TEOF, TIdent, TNumber, TString, TPunct} {
		if k.String() == "token" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func evalConst(t *testing.T, src string) value.V {
	t.Helper()
	e, err := ParseExprString(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := e.Eval(nil)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestExprArithmeticPrecedence(t *testing.T) {
	cases := []struct {
		src  string
		want value.V
	}{
		{"1 + 2 * 3", value.Int(7)},
		{"(1 + 2) * 3", value.Int(9)},
		{"10 - 4 - 3", value.Int(3)}, // left assoc
		{"7 / 2", value.Float(3.5)},
		{"7 % 4", value.Int(3)},
		{"-5 + 2", value.Int(-3)},
		{"-(5 + 2)", value.Int(-7)},
		{"2 * -3", value.Int(-6)},
		{"1.5 + 1", value.Float(2.5)},
		{"ABS(-4)", value.Int(4)},
		{"POW(2, 3)", value.Float(8)},
		{"COALESCE(NULL, 7)", value.Int(7)},
	}
	for _, tc := range cases {
		got := evalConst(t, tc.src)
		if !got.Equal(tc.want) {
			t.Errorf("%q = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestExprPredicates(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"1 < 2", true},
		{"2 <= 2", true},
		{"3 > 4", false},
		{"3 >= 4", false},
		{"1 = 1", true},
		{"1 <> 2", true},
		{"1 != 2", true},
		{"5 BETWEEN 1 AND 10", true},
		{"5 NOT BETWEEN 1 AND 10", false},
		{"5 BETWEEN 6 AND 10", false},
		{"'b' IN ('a', 'b')", true},
		{"'c' NOT IN ('a', 'b')", true},
		{"'hello' LIKE 'h%'", true},
		{"'hello' NOT LIKE 'x%'", true},
		{"NULL IS NULL", true},
		{"1 IS NOT NULL", true},
		{"TRUE AND FALSE OR TRUE", true},
		{"TRUE AND (FALSE OR FALSE)", false},
		{"NOT FALSE", true},
		{"NOT 1 = 2", true}, // NOT binds looser than comparison
		{"1 + 1 = 2 AND 2 + 2 = 4", true},
	}
	for _, tc := range cases {
		got := evalConst(t, tc.src)
		b, null := got.Truthy()
		if null || b != tc.want {
			t.Errorf("%q = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestExprColumnsBindEval(t *testing.T) {
	s := schema.New(
		schema.Column{Table: "r", Name: "cal", Type: schema.TFloat},
		schema.Column{Table: "r", Name: "gluten", Type: schema.TString},
	)
	row := schema.Row{value.Float(300), value.Str("free")}
	e, err := ParseExprString("r.cal <= 400 AND gluten = 'free'")
	if err != nil {
		t.Fatal(err)
	}
	if err := expr.Bind(e, s); err != nil {
		t.Fatal(err)
	}
	ok, err := expr.EvalBool(e, row)
	if err != nil || !ok {
		t.Errorf("predicate = %v, %v", ok, err)
	}
}

func TestExprRoundTripThroughString(t *testing.T) {
	srcs := []string{
		"(r.cal <= 400) AND (r.gluten = 'free')",
		"a + b * c - 2",
		"x BETWEEN 1 AND 10 OR y IN (1, 2, 3)",
		"NOT (name LIKE 'a%')",
		"price IS NOT NULL",
		"ABS(x) + POW(y, 2)",
	}
	for _, src := range srcs {
		e1, err := ParseExprString(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		rendered := e1.String()
		e2, err := ParseExprString(rendered)
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", rendered, src, err)
		}
		if e2.String() != rendered {
			t.Errorf("round-trip unstable: %q -> %q -> %q", src, rendered, e2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"1 +",
		"(1 + 2",
		"1 BETWEEN 2",
		"x IN (",
		"x IN ()",
		"x IS 3",
		"ABS(1,2,3) AND",
		"5 NOT 3",
		"1 2",
	}
	for _, src := range bad {
		if _, err := ParseExprString(src); err == nil {
			t.Errorf("ParseExprString(%q) should fail", src)
		}
	}
}

func TestParserHelpers(t *testing.T) {
	p, err := NewParser("FROM recipes R LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if !p.PeekKeyword("from") || !p.AcceptKeyword("FROM") {
		t.Fatal("keyword handling broken")
	}
	id, err := p.ParseIdent()
	if err != nil || id != "recipes" {
		t.Fatalf("ParseIdent = %q, %v", id, err)
	}
	if err := p.ExpectKeyword("WHERE"); err == nil {
		t.Error("ExpectKeyword should fail on R")
	}
	id, _ = p.ParseIdent()
	if id != "R" {
		t.Errorf("alias = %q", id)
	}
	if err := p.ExpectKeyword("LIMIT"); err != nil {
		t.Error(err)
	}
	n, err := p.ParseInt()
	if err != nil || n != 5 {
		t.Errorf("ParseInt = %d, %v", n, err)
	}
	if !p.AtEOF() {
		t.Error("should be at EOF")
	}
	// Next at EOF stays put.
	tok := p.Next()
	if tok.Kind != TEOF {
		t.Error("Next at EOF should return EOF")
	}
}

func TestPrimaryHook(t *testing.T) {
	p, err := NewParser("MAGIC + 1")
	if err != nil {
		t.Fatal(err)
	}
	p.PrimaryHook = func(p *Parser) (expr.Expr, bool, error) {
		if p.AcceptKeyword("MAGIC") {
			return &expr.Const{Val: value.Int(41)}, true, nil
		}
		return nil, false, nil
	}
	e, err := p.ParseExpr()
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Eval(nil)
	if err != nil || !v.Equal(value.Int(42)) {
		t.Errorf("hooked expr = %v, %v", v, err)
	}
}

func TestKeywordsNotSwallowedByExpr(t *testing.T) {
	// Expression parsing must stop before statement keywords.
	p, err := NewParser("cal <= 400 FROM recipes")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ParseExpr(); err != nil {
		t.Fatal(err)
	}
	if !p.PeekKeyword("FROM") {
		t.Errorf("parser should stop at FROM, at %v", p.Peek())
	}
}

package parse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/value"
)

// Parser is a token-stream cursor with the shared scalar-expression
// grammar. Statement-level grammars (SQL, PaQL) are built on top of it.
type Parser struct {
	src  string
	toks []Token
	pos  int

	// PrimaryHook, when set, is consulted first in the primary
	// production. It lets front-ends inject productions such as scalar
	// sub-queries (SQL) or package aggregates (PaQL). Returning
	// handled=false falls through to the standard primaries.
	PrimaryHook func(p *Parser) (e expr.Expr, handled bool, err error)
}

// NewParser lexes src and returns a parser over its tokens.
func NewParser(src string) (*Parser, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	return &Parser{src: src, toks: toks}, nil
}

// Src returns the original source text being parsed.
func (p *Parser) Src() string { return p.src }

// Peek returns the current token without consuming it.
func (p *Parser) Peek() Token { return p.toks[p.pos] }

// PeekAt returns the token n positions ahead (0 = current).
func (p *Parser) PeekAt(n int) Token {
	i := p.pos + n
	if i >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[i]
}

// Next consumes and returns the current token.
func (p *Parser) Next() Token {
	t := p.toks[p.pos]
	if t.Kind != TEOF {
		p.pos++
	}
	return t
}

// AtEOF reports whether all input has been consumed.
func (p *Parser) AtEOF() bool { return p.Peek().Kind == TEOF }

// Errf builds an error annotated with the current position.
func (p *Parser) Errf(format string, args ...any) error {
	t := p.Peek()
	ctx := t.Text
	if t.Kind == TEOF {
		ctx = "end of input"
	}
	return fmt.Errorf("parse: %s (at %q, offset %d)", fmt.Sprintf(format, args...), ctx, t.Pos)
}

// PeekKeyword reports whether the current token is the given keyword
// (case-insensitive identifier match).
func (p *Parser) PeekKeyword(kw string) bool {
	t := p.Peek()
	return t.Kind == TIdent && strings.EqualFold(t.Text, kw)
}

// AcceptKeyword consumes the keyword if present.
func (p *Parser) AcceptKeyword(kw string) bool {
	if p.PeekKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

// ExpectKeyword consumes the keyword or errors.
func (p *Parser) ExpectKeyword(kw string) error {
	if !p.AcceptKeyword(kw) {
		return p.Errf("expected %s", strings.ToUpper(kw))
	}
	return nil
}

// PeekPunct reports whether the current token is the given symbol.
func (p *Parser) PeekPunct(sym string) bool {
	t := p.Peek()
	return t.Kind == TPunct && t.Text == sym
}

// AcceptPunct consumes the symbol if present.
func (p *Parser) AcceptPunct(sym string) bool {
	if p.PeekPunct(sym) {
		p.pos++
		return true
	}
	return false
}

// ExpectPunct consumes the symbol or errors.
func (p *Parser) ExpectPunct(sym string) error {
	if !p.AcceptPunct(sym) {
		return p.Errf("expected %q", sym)
	}
	return nil
}

// ParseIdent consumes an identifier and returns its text.
func (p *Parser) ParseIdent() (string, error) {
	t := p.Peek()
	if t.Kind != TIdent {
		return "", p.Errf("expected identifier")
	}
	p.pos++
	return t.Text, nil
}

// ParseInt consumes an integer literal.
func (p *Parser) ParseInt() (int64, error) {
	t := p.Peek()
	if t.Kind != TNumber {
		return 0, p.Errf("expected integer")
	}
	i, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, p.Errf("expected integer, got %q", t.Text)
	}
	p.pos++
	return i, nil
}

// --- expression grammar ----------------------------------------------------
//
//	expr      := orExpr
//	orExpr    := andExpr (OR andExpr)*
//	andExpr   := notExpr (AND notExpr)*
//	notExpr   := NOT notExpr | predicate
//	predicate := addExpr [ cmp addExpr
//	                     | [NOT] BETWEEN addExpr AND addExpr
//	                     | [NOT] IN '(' expr {',' expr} ')'
//	                     | [NOT] LIKE addExpr
//	                     | IS [NOT] NULL ]
//	addExpr   := mulExpr (('+'|'-') mulExpr)*
//	mulExpr   := unary (('*'|'/'|'%') unary)*
//	unary     := '-' unary | primary
//	primary   := hook | literal | func '(' args ')' | ident ['.' ident]
//	           | '(' expr ')'

// ParseExpr parses a full scalar expression.
func (p *Parser) ParseExpr() (expr.Expr, error) {
	return p.parseOr()
}

func (p *Parser) parseOr() (expr.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.AcceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &expr.Binary{Op: expr.OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (expr.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.AcceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &expr.Binary{Op: expr.OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (expr.Expr, error) {
	if p.AcceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.Not{X: x}, nil
	}
	return p.parsePredicate()
}

func (p *Parser) parsePredicate() (expr.Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	invert := false
	if p.PeekKeyword("NOT") {
		// Lookahead: NOT must be followed by BETWEEN/IN/LIKE to belong here.
		nxt := p.PeekAt(1)
		if nxt.Kind == TIdent && (strings.EqualFold(nxt.Text, "BETWEEN") ||
			strings.EqualFold(nxt.Text, "IN") || strings.EqualFold(nxt.Text, "LIKE")) {
			p.pos++
			invert = true
		}
	}
	switch {
	case p.AcceptKeyword("BETWEEN"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.ExpectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &expr.Between{X: left, Lo: lo, Hi: hi, Invert: invert}, nil
	case p.AcceptKeyword("IN"):
		if err := p.ExpectPunct("("); err != nil {
			return nil, err
		}
		var list []expr.Expr
		for {
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.AcceptPunct(",") {
				break
			}
		}
		if err := p.ExpectPunct(")"); err != nil {
			return nil, err
		}
		return &expr.InList{X: left, List: list, Invert: invert}, nil
	case p.AcceptKeyword("LIKE"):
		pat, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &expr.Like{X: left, Pattern: pat, Invert: invert}, nil
	case p.AcceptKeyword("IS"):
		isNot := p.AcceptKeyword("NOT")
		if !p.AcceptKeyword("NULL") {
			return nil, p.Errf("expected NULL after IS")
		}
		return &expr.IsNull{X: left, Invert: isNot}, nil
	}
	if invert {
		return nil, p.Errf("expected BETWEEN, IN or LIKE after NOT")
	}
	// comparison?
	t := p.Peek()
	if t.Kind == TPunct {
		var op expr.BinOp
		ok := true
		switch t.Text {
		case "=":
			op = expr.OpEq
		case "<>":
			op = expr.OpNe
		case "<":
			op = expr.OpLt
		case "<=":
			op = expr.OpLe
		case ">":
			op = expr.OpGt
		case ">=":
			op = expr.OpGe
		default:
			ok = false
		}
		if ok {
			p.pos++
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &expr.Binary{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *Parser) parseAdd() (expr.Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.BinOp
		switch {
		case p.AcceptPunct("+"):
			op = expr.OpAdd
		case p.AcceptPunct("-"):
			op = expr.OpSub
		default:
			return left, nil
		}
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &expr.Binary{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseMul() (expr.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.BinOp
		switch {
		case p.AcceptPunct("*"):
			op = expr.OpMul
		case p.AcceptPunct("/"):
			op = expr.OpDiv
		case p.AcceptPunct("%"):
			op = expr.OpMod
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &expr.Binary{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseUnary() (expr.Expr, error) {
	if p.AcceptPunct("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation of numeric literals so "-5" is a Const.
		if c, ok := x.(*expr.Const); ok && c.Val.IsNumeric() {
			v, err := c.Val.Neg()
			if err == nil {
				return &expr.Const{Val: v}, nil
			}
		}
		return &expr.Neg{X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (expr.Expr, error) {
	if p.PrimaryHook != nil {
		e, handled, err := p.PrimaryHook(p)
		if err != nil {
			return nil, err
		}
		if handled {
			return e, nil
		}
	}
	t := p.Peek()
	switch t.Kind {
	case TNumber:
		p.pos++
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.Errf("bad number %q", t.Text)
			}
			return &expr.Const{Val: value.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.Errf("bad integer %q", t.Text)
		}
		return &expr.Const{Val: value.Int(i)}, nil
	case TString:
		p.pos++
		return &expr.Const{Val: value.Str(t.Text)}, nil
	case TPunct:
		if t.Text == "(" {
			p.pos++
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.ExpectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case TIdent:
		switch strings.ToUpper(t.Text) {
		case "TRUE":
			p.pos++
			return &expr.Const{Val: value.Bool(true)}, nil
		case "FALSE":
			p.pos++
			return &expr.Const{Val: value.Bool(false)}, nil
		case "NULL":
			p.pos++
			return &expr.Const{Val: value.Null()}, nil
		}
		// function call?
		if p.PeekAt(1).Kind == TPunct && p.PeekAt(1).Text == "(" && expr.KnownFunc(t.Text) {
			name := strings.ToUpper(t.Text)
			p.pos += 2 // ident and '('
			var args []expr.Expr
			if !p.PeekPunct(")") {
				for {
					a, err := p.ParseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.AcceptPunct(",") {
						break
					}
				}
			}
			if err := p.ExpectPunct(")"); err != nil {
				return nil, err
			}
			return &expr.Call{Name: name, Args: args}, nil
		}
		// column reference, possibly qualified
		p.pos++
		if p.PeekPunct(".") && p.PeekAt(1).Kind == TIdent {
			p.pos++
			name := p.Next().Text
			return expr.NewCol(t.Text, name), nil
		}
		return expr.NewCol("", t.Text), nil
	}
	return nil, p.Errf("expected expression")
}

// ParseExprString is a convenience that parses a standalone expression
// and requires all input to be consumed.
func ParseExprString(src string) (expr.Expr, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.ParseExpr()
	if err != nil {
		return nil, err
	}
	if !p.AtEOF() {
		return nil, p.Errf("unexpected trailing input")
	}
	return e, nil
}

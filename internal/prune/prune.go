// Package prune implements the paper's §4.1 cardinality-based pruning:
// from each global constraint it derives lower and upper bounds [l, u]
// on the size of any satisfying package, using only column statistics
// (MIN/MAX of each aggregate argument over the candidate tuples). With
// n candidate tuples and no repetition, pruning shrinks the search
// space from 2^n to Σ_{k=l..u} C(n,k) without losing any valid package.
//
// Bound soundness is the invariant everything rests on: the derived
// interval must CONTAIN the cardinality of every satisfying package
// (over-approximation is fine, under-approximation would lose
// solutions). The rules, for candidate statistics maxX = MAX(x),
// minX = MIN(x):
//
//	COUNT(*) = c            ->  [c, c]
//	COUNT(*) ≤ c            ->  [0, c]
//	COUNT(*) ≥ c            ->  [c, ∞)
//	SUM(x) ≥ a, a>0, maxX>0 ->  [⌈a/maxX⌉, ∞)   (k·maxX ≥ sum ≥ a)
//	SUM(x) ≥ a, a>0, maxX≤0 ->  infeasible
//	SUM(x) ≤ b, minX>0      ->  [0, ⌊b/minX⌋]   (sum ≥ k·minX)
//	SUM(x) ≤ b<0, minX≥0    ->  infeasible
//
// Filtered aggregates (COUNT(* WHERE p), SUM(x WHERE p)) bound only the
// filtered sub-multiset, which still lower-bounds the package size but
// never upper-bounds it. Conjunctions intersect intervals, disjunctions
// take the union, and negation pushes through comparisons by flipping
// the operator. Anything else contributes the trivial interval.
package prune

import (
	"fmt"
	"math"
	"math/big"

	"repro/internal/expr"
	"repro/internal/paql"
)

// Unbounded marks an upper bound of "no limit".
const Unbounded = math.MaxInt

// Bounds is a cardinality interval. Lo > Hi encodes "provably
// infeasible" (no package of any size satisfies the formula).
type Bounds struct {
	Lo int
	Hi int
}

// Trivial is the no-information interval [0, ∞).
func Trivial() Bounds { return Bounds{Lo: 0, Hi: Unbounded} }

// Infeasible returns a provably-empty interval.
func Infeasible() Bounds { return Bounds{Lo: 1, Hi: 0} }

// IsInfeasible reports whether the interval is empty.
func (b Bounds) IsInfeasible() bool { return b.Lo > b.Hi }

// Intersect combines bounds from conjoined constraints.
func (b Bounds) Intersect(o Bounds) Bounds {
	return Bounds{Lo: max(b.Lo, o.Lo), Hi: min(b.Hi, o.Hi)}
}

// Union combines bounds from disjoined constraints.
func (b Bounds) Union(o Bounds) Bounds {
	if b.IsInfeasible() {
		return o
	}
	if o.IsInfeasible() {
		return b
	}
	return Bounds{Lo: min(b.Lo, o.Lo), Hi: max(b.Hi, o.Hi)}
}

// String renders "[l, u]" with ∞ for unbounded.
func (b Bounds) String() string {
	if b.IsInfeasible() {
		return "[infeasible]"
	}
	if b.Hi == Unbounded {
		return fmt.Sprintf("[%d, inf)", b.Lo)
	}
	return fmt.Sprintf("[%d, %d]", b.Lo, b.Hi)
}

// StatsProvider supplies candidate-tuple statistics for an aggregate:
// MIN and MAX of the aggregate's argument over the candidate relation
// (restricted to the aggregate's filter, when present) and the number of
// candidates passing the filter. ok=false means statistics are
// unavailable (non-numeric argument), which yields trivial bounds.
type StatsProvider interface {
	AggStats(a *paql.Agg) (minVal, maxVal float64, n int, ok bool)
}

// Derive computes cardinality bounds for a SUCH THAT formula. n is the
// number of candidate tuples (post-WHERE) and maxMult the maximum tuple
// multiplicity (0 = unlimited). The result is clamped to [0, n·maxMult].
func Derive(f expr.Expr, sp StatsProvider, n, maxMult int) Bounds {
	b := Trivial()
	if f != nil {
		b = derive(f, false, sp)
	}
	if b.Lo < 0 {
		b.Lo = 0
	}
	if maxMult > 0 {
		capHi := n * maxMult
		if b.Hi > capHi {
			b.Hi = capHi
		}
		if b.Lo > capHi {
			return Infeasible()
		}
	}
	return b
}

func derive(f expr.Expr, neg bool, sp StatsProvider) Bounds {
	switch node := f.(type) {
	case *expr.Binary:
		switch node.Op {
		case expr.OpAnd:
			l := derive(node.L, neg, sp)
			r := derive(node.R, neg, sp)
			if neg { // NOT(a AND b) = NOT a OR NOT b
				return l.Union(r)
			}
			return l.Intersect(r)
		case expr.OpOr:
			l := derive(node.L, neg, sp)
			r := derive(node.R, neg, sp)
			if neg {
				return l.Intersect(r)
			}
			return l.Union(r)
		}
		if node.Op.Comparison() {
			op := node.Op
			if neg {
				var ok bool
				op, ok = op.Negate()
				if !ok {
					return Trivial()
				}
			}
			return compareBounds(node.L, op, node.R, sp)
		}
		return Trivial()
	case *expr.Not:
		return derive(node.X, !neg, sp)
	case *expr.Between:
		if node.Invert != neg { // effective NOT BETWEEN: union of two strict sides
			lo := compareBounds(node.X, expr.OpLt, node.Lo, sp)
			hi := compareBounds(node.X, expr.OpGt, node.Hi, sp)
			return lo.Union(hi)
		}
		lo := compareBounds(node.X, expr.OpGe, node.Lo, sp)
		hi := compareBounds(node.X, expr.OpLe, node.Hi, sp)
		return lo.Intersect(hi)
	case *expr.Const:
		// A constant FALSE formula admits no package at all.
		b, null := node.Val.Truthy()
		effective := b != neg
		if !null && !effective {
			return Infeasible()
		}
		return Trivial()
	}
	return Trivial()
}

// compareBounds handles one comparison atom. Only `Agg cmp const` and
// `const cmp Agg` shapes carry information; everything else is trivial.
func compareBounds(l expr.Expr, op expr.BinOp, r expr.Expr, sp StatsProvider) Bounds {
	agg, okL := l.(*paql.Agg)
	c, okR := constValue(r)
	if !okL || !okR {
		// try the flipped orientation
		agg2, okR2 := r.(*paql.Agg)
		c2, okL2 := constValue(l)
		if !okR2 || !okL2 {
			return Trivial()
		}
		agg, c = agg2, c2
		op = op.Flip()
	}
	switch agg.Fn {
	case "COUNT":
		return countBounds(agg, op, c)
	case "SUM":
		return sumBounds(agg, op, c, sp)
	}
	return Trivial()
}

func constValue(e expr.Expr) (float64, bool) {
	cst, ok := e.(*expr.Const)
	if !ok {
		return 0, false
	}
	f, ok := cst.Val.AsFloat()
	return f, ok
}

func countBounds(agg *paql.Agg, op expr.BinOp, c float64) Bounds {
	filtered := agg.Filter != nil
	switch op {
	case expr.OpEq:
		k := int(math.Round(c))
		if float64(k) != c {
			return Infeasible() // COUNT = 2.5 is unsatisfiable
		}
		if filtered {
			// k filtered tuples must exist in the package.
			return Bounds{Lo: k, Hi: Unbounded}
		}
		return Bounds{Lo: k, Hi: k}
	case expr.OpLe, expr.OpLt:
		hi := int(math.Floor(c))
		if op == expr.OpLt && float64(hi) == c {
			hi--
		}
		if hi < 0 {
			return Infeasible() // count is never negative
		}
		if filtered {
			return Trivial()
		}
		return Bounds{Lo: 0, Hi: hi}
	case expr.OpGe, expr.OpGt:
		lo := int(math.Ceil(c))
		if op == expr.OpGt && float64(lo) == c {
			lo++
		}
		if lo < 0 {
			lo = 0
		}
		return Bounds{Lo: lo, Hi: Unbounded}
	}
	return Trivial()
}

func sumBounds(agg *paql.Agg, op expr.BinOp, c float64, sp StatsProvider) Bounds {
	if sp == nil {
		return Trivial()
	}
	minX, maxX, _, ok := sp.AggStats(agg)
	if !ok {
		return Trivial()
	}
	filtered := agg.Filter != nil
	switch op {
	case expr.OpGe, expr.OpGt:
		if c <= 0 {
			return Trivial()
		}
		if maxX <= 0 {
			return Infeasible() // positive sum unreachable
		}
		lo := int(math.Ceil(c / maxX))
		return Bounds{Lo: lo, Hi: Unbounded}
	case expr.OpLe, expr.OpLt:
		if c < 0 && minX >= 0 {
			return Infeasible() // non-negative contributions cannot go below 0
		}
		if minX <= 0 || filtered {
			// Negative or zero contributions allow arbitrarily large
			// packages; a filter bounds only the filtered subset.
			return Trivial()
		}
		hi := int(math.Floor(c / minX))
		if hi < 0 {
			return Infeasible()
		}
		return Bounds{Lo: 0, Hi: hi}
	case expr.OpEq:
		ge := sumBounds(agg, expr.OpGe, c, sp)
		le := sumBounds(agg, expr.OpLe, c, sp)
		return ge.Intersect(le)
	}
	return Trivial()
}

// SpaceSize returns the pruned search-space size Σ_{k=l..min(u,n)}
// C(n, k) and the unpruned size 2^n, for packages without repetition.
// This is the quantity the paper reports for §4.1.
func SpaceSize(n int, b Bounds) (pruned, full *big.Int) {
	full = new(big.Int).Lsh(big.NewInt(1), uint(n))
	pruned = new(big.Int)
	if b.IsInfeasible() {
		return pruned, full
	}
	hi := b.Hi
	if hi > n {
		hi = n
	}
	for k := b.Lo; k <= hi; k++ {
		pruned.Add(pruned, new(big.Int).Binomial(int64(n), int64(k)))
	}
	return pruned, full
}

// ReductionFactor returns full/pruned as a float (∞ when pruned is 0).
func ReductionFactor(n int, b Bounds) float64 {
	pruned, full := SpaceSize(n, b)
	if pruned.Sign() == 0 {
		return math.Inf(1)
	}
	pf, _ := new(big.Float).SetInt(pruned).Float64()
	ff, _ := new(big.Float).SetInt(full).Float64()
	return ff / pf
}

package prune

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/paql"
	"repro/internal/schema"
	"repro/internal/value"
)

// fakeStats serves fixed MIN/MAX for every aggregate.
type fakeStats struct {
	min, max float64
	n        int
	ok       bool
}

func (f fakeStats) AggStats(*paql.Agg) (float64, float64, int, bool) {
	return f.min, f.max, f.n, f.ok
}

func relSchema() schema.Schema {
	return schema.New(
		schema.Column{Name: "calories", Type: schema.TFloat},
		schema.Column{Name: "kind", Type: schema.TString},
	)
}

func formula(t *testing.T, suchThat string) *paql.Query {
	t.Helper()
	q, err := paql.Parse(`SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT ` + suchThat)
	if err != nil {
		t.Fatalf("parse %q: %v", suchThat, err)
	}
	if _, err := paql.Analyze(q, relSchema()); err != nil {
		t.Fatalf("analyze %q: %v", suchThat, err)
	}
	return q
}

func TestCountBounds(t *testing.T) {
	sp := fakeStats{min: 100, max: 900, n: 50, ok: true}
	cases := []struct {
		clause string
		want   Bounds
	}{
		{`COUNT(*) = 3`, Bounds{3, 3}},
		{`COUNT(*) <= 5`, Bounds{0, 5}},
		{`COUNT(*) < 5`, Bounds{0, 4}},
		{`COUNT(*) >= 2`, Bounds{2, 50}},
		{`COUNT(*) > 2`, Bounds{3, 50}},
		{`3 = COUNT(*)`, Bounds{3, 3}},
		{`5 >= COUNT(*)`, Bounds{0, 5}},
		{`COUNT(*) BETWEEN 2 AND 6`, Bounds{2, 6}},
		{`NOT (COUNT(*) > 4)`, Bounds{0, 4}},
		{`NOT (COUNT(*) <= 4)`, Bounds{5, 50}},
	}
	for _, tc := range cases {
		q := formula(t, tc.clause)
		got := Derive(q.SuchThat, sp, 50, 1)
		if got != tc.want {
			t.Errorf("%q -> %v, want %v", tc.clause, got, tc.want)
		}
	}
}

func TestSumBoundsPaperExample(t *testing.T) {
	// The paper's example: 2000 <= SUM(calories) <= 2500 with
	// MAX(calories)=900, MIN(calories)=100:
	// l = ceil(2000/900) = 3, u = floor(2500/100) = 25.
	sp := fakeStats{min: 100, max: 900, n: 50, ok: true}
	q := formula(t, `SUM(P.calories) BETWEEN 2000 AND 2500`)
	got := Derive(q.SuchThat, sp, 50, 1)
	if got.Lo != 3 || got.Hi != 25 {
		t.Errorf("bounds = %v, want [3, 25]", got)
	}
}

func TestSumBoundsEdgeCases(t *testing.T) {
	cases := []struct {
		clause   string
		sp       fakeStats
		maxMult  int
		wantLo   int
		wantHi   int
		infeasOK bool
	}{
		// negative minimum: no upper bound from <=
		{`SUM(P.calories) <= 100`, fakeStats{min: -5, max: 50, n: 10, ok: true}, 1, 0, 10, false},
		// all-nonpositive max with positive demand: infeasible
		{`SUM(P.calories) >= 10`, fakeStats{min: -5, max: 0, n: 10, ok: true}, 1, 0, 0, true},
		// negative rhs with nonnegative contributions: infeasible
		{`SUM(P.calories) <= -1`, fakeStats{min: 0, max: 50, n: 10, ok: true}, 1, 0, 0, true},
		// equality combines both sides
		{`SUM(P.calories) = 300`, fakeStats{min: 100, max: 100, n: 10, ok: true}, 1, 3, 3, false},
		// stats unavailable: trivial
		{`SUM(P.calories) <= 100`, fakeStats{n: 10, ok: false}, 1, 0, 10, false},
		// REPEAT widens the clamp: n*mult
		{`SUM(P.calories) >= 200`, fakeStats{min: 10, max: 100, n: 3, ok: true}, 2, 2, 6, false},
		// demand <= 0 is trivially satisfiable in any size
		{`SUM(P.calories) >= -5`, fakeStats{min: 10, max: 100, n: 10, ok: true}, 1, 0, 10, false},
	}
	for _, tc := range cases {
		q := formula(t, tc.clause)
		got := Derive(q.SuchThat, tc.sp, tc.sp.n, tc.maxMult)
		if tc.infeasOK {
			if !got.IsInfeasible() {
				t.Errorf("%q -> %v, want infeasible", tc.clause, got)
			}
			continue
		}
		if got.Lo != tc.wantLo || got.Hi != tc.wantHi {
			t.Errorf("%q (%+v) -> %v, want [%d, %d]", tc.clause, tc.sp, got, tc.wantLo, tc.wantHi)
		}
	}
}

func TestConjunctionDisjunction(t *testing.T) {
	sp := fakeStats{min: 100, max: 900, n: 40, ok: true}
	q := formula(t, `COUNT(*) <= 10 AND COUNT(*) >= 4`)
	if got := Derive(q.SuchThat, sp, 40, 1); got.Lo != 4 || got.Hi != 10 {
		t.Errorf("AND -> %v", got)
	}
	q = formula(t, `COUNT(*) = 2 OR COUNT(*) = 7`)
	if got := Derive(q.SuchThat, sp, 40, 1); got.Lo != 2 || got.Hi != 7 {
		t.Errorf("OR -> %v", got)
	}
	// infeasible branch of an OR is dropped
	q = formula(t, `SUM(P.calories) <= -1 OR COUNT(*) = 3`)
	if got := Derive(q.SuchThat, sp, 40, 1); got.Lo != 3 || got.Hi != 3 {
		t.Errorf("OR with infeasible branch -> %v", got)
	}
	// contradictory conjunction
	q = formula(t, `COUNT(*) = 2 AND COUNT(*) = 7`)
	if got := Derive(q.SuchThat, sp, 40, 1); !got.IsInfeasible() {
		t.Errorf("contradiction -> %v", got)
	}
}

func TestFilteredAggregatesBoundOnlyBelow(t *testing.T) {
	sp := fakeStats{min: 100, max: 900, n: 40, ok: true}
	q := formula(t, `COUNT(* WHERE P.kind = 'car') >= 2`)
	if got := Derive(q.SuchThat, sp, 40, 1); got.Lo != 2 || got.Hi != 40 {
		t.Errorf("filtered count lo -> %v", got)
	}
	q = formula(t, `COUNT(* WHERE P.kind = 'car') <= 2`)
	if got := Derive(q.SuchThat, sp, 40, 1); got.Lo != 0 || got.Hi != 40 {
		t.Errorf("filtered count hi must stay trivial -> %v", got)
	}
	q = formula(t, `SUM(P.calories WHERE P.kind = 'car') <= 500`)
	if got := Derive(q.SuchThat, sp, 40, 1); got.Hi != 40 {
		t.Errorf("filtered sum hi must stay trivial -> %v", got)
	}
	q = formula(t, `SUM(P.calories WHERE P.kind = 'car') >= 1800`)
	if got := Derive(q.SuchThat, sp, 40, 1); got.Lo != 2 {
		t.Errorf("filtered sum lo -> %v", got)
	}
}

func TestNilFormulaAndUnknownShapes(t *testing.T) {
	sp := fakeStats{min: 1, max: 2, n: 5, ok: true}
	if got := Derive(nil, sp, 5, 1); got.Lo != 0 || got.Hi != 5 {
		t.Errorf("nil formula -> %v", got)
	}
	// AVG gives no cardinality info
	q := formula(t, `AVG(P.calories) <= 100`)
	if got := Derive(q.SuchThat, sp, 5, 1); got.Lo != 0 || got.Hi != 5 {
		t.Errorf("AVG -> %v", got)
	}
	// affine-but-not-bare aggregate comparisons stay trivial
	q = formula(t, `2 * SUM(P.calories) <= 100`)
	if got := Derive(q.SuchThat, sp, 5, 1); got.Lo != 0 || got.Hi != 5 {
		t.Errorf("scaled sum -> %v", got)
	}
	// constant FALSE formula
	q = formula(t, `FALSE`)
	if got := Derive(q.SuchThat, sp, 5, 1); !got.IsInfeasible() {
		t.Errorf("FALSE -> %v", got)
	}
	// unlimited REPEAT leaves Hi unbounded
	q = formula(t, `COUNT(*) >= 2`)
	if got := Derive(q.SuchThat, sp, 5, 0); got.Hi != Unbounded {
		t.Errorf("unlimited repeat -> %v", got)
	}
}

func TestSpaceSize(t *testing.T) {
	// n=5, bounds [2,3]: C(5,2)+C(5,3) = 10+10 = 20; full = 32.
	pruned, full := SpaceSize(5, Bounds{2, 3})
	if pruned.Cmp(big.NewInt(20)) != 0 || full.Cmp(big.NewInt(32)) != 0 {
		t.Errorf("space = %v / %v", pruned, full)
	}
	// unbounded hi clamps to n
	pruned, _ = SpaceSize(4, Bounds{0, Unbounded})
	if pruned.Cmp(big.NewInt(16)) != 0 {
		t.Errorf("unclamped = %v", pruned)
	}
	// infeasible -> 0
	pruned, _ = SpaceSize(4, Infeasible())
	if pruned.Sign() != 0 {
		t.Errorf("infeasible = %v", pruned)
	}
	if f := ReductionFactor(10, Bounds{3, 3}); f < 8 || f > 9 {
		t.Errorf("factor = %g, want 1024/120", f)
	}
	if f := ReductionFactor(4, Infeasible()); !isInf(f) {
		t.Errorf("infeasible factor = %g", f)
	}
}

func isInf(f float64) bool { return f > 1e300 }

// Soundness property: brute-force every subset of a random instance;
// every satisfying package's size must fall inside the derived bounds.
func TestPropBoundsNeverLoseSolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	clauses := []string{
		`SUM(P.calories) BETWEEN %d AND %d`,
		`SUM(P.calories) >= %d AND SUM(P.calories) <= %d`,
		`COUNT(*) >= 1 AND SUM(P.calories) <= %d AND SUM(P.calories) >= %d`,
	}
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(9)
		cal := make([]float64, n)
		mn, mx := 1e18, -1e18
		for i := range cal {
			cal[i] = float64(50 + rng.Intn(900))
			mn = minf(mn, cal[i])
			mx = maxf(mx, cal[i])
		}
		a := 200 + rng.Intn(1500)
		b := a + rng.Intn(1500)
		var src string
		switch clauses[trial%len(clauses)] {
		case clauses[0]:
			src = `SUM(P.calories) BETWEEN ` + itoa(a) + ` AND ` + itoa(b)
		case clauses[1]:
			src = `SUM(P.calories) >= ` + itoa(a) + ` AND SUM(P.calories) <= ` + itoa(b)
		default:
			src = `COUNT(*) >= 1 AND SUM(P.calories) <= ` + itoa(b) + ` AND SUM(P.calories) >= ` + itoa(a)
		}
		q := formula(t, src)
		sp := fakeStats{min: mn, max: mx, n: n, ok: true}
		bounds := Derive(q.SuchThat, sp, n, 1)
		// Enumerate all subsets and verify via the real evaluator.
		for mask := 0; mask < 1<<n; mask++ {
			var rows []schema.Row
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					rows = append(rows, schema.Row{value.Float(cal[i]), value.Str("x")})
				}
			}
			ok, err := paql.Satisfies(q.SuchThat, rows)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				k := len(rows)
				if k < bounds.Lo || k > bounds.Hi {
					t.Fatalf("trial %d: valid package of size %d outside bounds %v (clause %s)",
						trial, k, bounds, src)
				}
			}
		}
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
func itoa(i int) string { return value.Int(int64(i)).String() }

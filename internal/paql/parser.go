package paql

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/parse"
)

// Parse parses a PaQL query.
func Parse(src string) (*Query, error) {
	p, err := parse.NewParser(src)
	if err != nil {
		return nil, err
	}
	q := &Query{Raw: strings.TrimSpace(src), Repeat: 0}
	// [EXPLAIN] SELECT PACKAGE(R) [AS P]
	if p.AcceptKeyword("EXPLAIN") {
		q.Explain = true
		// Raw keeps the query proper so plans and round-trips print it
		// without the prefix.
		if len(q.Raw) >= 7 && strings.EqualFold(q.Raw[:7], "EXPLAIN") {
			q.Raw = strings.TrimSpace(q.Raw[7:])
		}
	}
	if err := p.ExpectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if err := p.ExpectKeyword("PACKAGE"); err != nil {
		return nil, err
	}
	if err := p.ExpectPunct("("); err != nil {
		return nil, err
	}
	relVar, err := p.ParseIdent()
	if err != nil {
		return nil, err
	}
	q.RelVar = relVar
	if err := p.ExpectPunct(")"); err != nil {
		return nil, err
	}
	q.PkgVar = "P"
	if p.AcceptKeyword("AS") {
		pv, err := p.ParseIdent()
		if err != nil {
			return nil, err
		}
		q.PkgVar = pv
	}
	// FROM table [alias] [REPEAT k]
	if err := p.ExpectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ParseIdent()
	if err != nil {
		return nil, err
	}
	q.Table = table
	if t := p.Peek(); t.Kind == parse.TIdent && !isPaqlKeyword(t.Text) {
		alias := p.Next().Text
		if !strings.EqualFold(alias, q.RelVar) {
			return nil, fmt.Errorf("paql: FROM binds %q but PACKAGE(%s) references %q", alias, q.RelVar, q.RelVar)
		}
	} else if !strings.EqualFold(q.RelVar, q.Table) {
		// PACKAGE(R) with "FROM Recipes" and no alias: accept when the
		// package variable matches the table name, otherwise the alias
		// is required.
		return nil, fmt.Errorf("paql: PACKAGE(%s) does not match FROM relation %q (missing alias?)", q.RelVar, q.Table)
	}
	if p.AcceptKeyword("REPEAT") {
		n, err := p.ParseInt()
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fmt.Errorf("paql: REPEAT must be non-negative, got %d", n)
		}
		q.Repeat = int(n)
	}
	// WHERE <base constraints>. Aggregates and sub-queries are accepted
	// by the grammar here so that Analyze can reject them with a
	// targeted message ("aggregates belong in SUCH THAT").
	if p.AcceptKeyword("WHERE") {
		installGlobalHook(p)
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		p.PrimaryHook = nil
		q.Where = e
	}
	// SUCH THAT <global formula> — aggregate-bearing expressions.
	if p.PeekKeyword("SUCH") {
		p.Next()
		if err := p.ExpectKeyword("THAT"); err != nil {
			return nil, err
		}
		installGlobalHook(p)
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		q.SuchThat = e
	}
	// MAXIMIZE / MINIMIZE
	if p.PeekKeyword("MAXIMIZE") || p.PeekKeyword("MINIMIZE") {
		sense := Maximize
		if p.AcceptKeyword("MINIMIZE") {
			sense = Minimize
		} else {
			p.Next()
		}
		installGlobalHook(p)
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		q.Objective = &Objective{Sense: sense, Expr: e}
	}
	if p.AcceptKeyword("LIMIT") {
		n, err := p.ParseInt()
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("paql: LIMIT must be at least 1, got %d", n)
		}
		q.Limit = int(n)
	}
	p.AcceptPunct(";")
	if !p.AtEOF() {
		return nil, p.Errf("unexpected trailing input")
	}
	return q, nil
}

func isPaqlKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "REPEAT", "WHERE", "SUCH", "THAT", "MAXIMIZE", "MINIMIZE", "LIMIT", "AS", "FROM", "SELECT":
		return true
	}
	return false
}

// installGlobalHook extends the expression grammar with package
// aggregates and scalar SQL sub-queries for SUCH THAT / objectives.
func installGlobalHook(p *parse.Parser) {
	p.PrimaryHook = func(p *parse.Parser) (expr.Expr, bool, error) {
		t := p.Peek()
		if t.Kind == parse.TIdent && p.PeekAt(1).Kind == parse.TPunct && p.PeekAt(1).Text == "(" {
			fn := strings.ToUpper(t.Text)
			switch fn {
			case "COUNT", "SUM", "MIN", "MAX", "AVG":
				p.Next() // fn
				p.Next() // (
				agg := &Agg{Fn: fn}
				if p.AcceptPunct("*") {
					if fn != "COUNT" {
						return nil, true, p.Errf("%s(*) is not valid; only COUNT(*)", fn)
					}
					agg.Star = true
				} else {
					// Aggregate arguments are plain scalar expressions
					// over the relation; suspend the hook so nested
					// aggregates are rejected cleanly later.
					saved := p.PrimaryHook
					p.PrimaryHook = nil
					arg, err := p.ParseExpr()
					p.PrimaryHook = saved
					if err != nil {
						return nil, true, err
					}
					agg.Arg = arg
				}
				if p.AcceptKeyword("WHERE") {
					saved := p.PrimaryHook
					p.PrimaryHook = nil
					f, err := p.ParseExpr()
					p.PrimaryHook = saved
					if err != nil {
						return nil, true, err
					}
					agg.Filter = f
				}
				if err := p.ExpectPunct(")"); err != nil {
					return nil, true, err
				}
				return agg, true, nil
			}
		}
		// '(' SELECT ... ')' — capture the raw SQL of the sub-query.
		if t.Kind == parse.TPunct && t.Text == "(" {
			nxt := p.PeekAt(1)
			if nxt.Kind == parse.TIdent && strings.EqualFold(nxt.Text, "SELECT") {
				p.Next() // (
				start := p.Peek().Pos
				depth := 1
				end := start
				for {
					tok := p.Next()
					if tok.Kind == parse.TEOF {
						return nil, true, p.Errf("unterminated sub-query")
					}
					if tok.Kind == parse.TPunct {
						switch tok.Text {
						case "(":
							depth++
						case ")":
							depth--
							if depth == 0 {
								end = tok.Pos
								goto done
							}
						}
					}
				}
			done:
				return &Subquery{SQL: strings.TrimSpace(p.Src()[start:end])}, true, nil
			}
		}
		return nil, false, nil
	}
}

package paql

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/schema"
)

// Analysis is the result of semantic analysis: a query validated and
// bound against its relation schema, with aggregate inventory and a
// linearity verdict that drives evaluation-strategy selection (§5:
// "solvers cannot usually handle non-linear global constraints; hence
// evaluating such queries requires different methods").
type Analysis struct {
	Query  *Query
	Schema schema.Schema // relation schema qualified by the relation variable
	Aggs   []*Agg        // distinct aggregates across SUCH THAT and objective

	// Linear reports whether the whole query (constraints and
	// objective) admits an exact mixed-integer linear translation.
	Linear bool
	// NonlinearReasons explains each linearity obstruction.
	NonlinearReasons []string
}

// Analyze validates and binds q against the relation schema (columns
// must be unqualified, as stored in the minidb catalog). It rewrites
// package-variable qualifiers (P.col) to the relation variable, binds
// every column reference, verifies aggregate shapes, and classifies
// linearity. Sub-queries must already be folded to constants (see
// FoldSubqueries in the engine); any remaining Subquery is an error.
func Analyze(q *Query, relSchema schema.Schema) (*Analysis, error) {
	qualified := relSchema.WithQualifier(q.RelVar)
	a := &Analysis{Query: q, Schema: qualified}

	normalize := func(e expr.Expr) {
		expr.Walk(e, func(n expr.Expr) {
			if c, ok := n.(*expr.Col); ok {
				if strings.EqualFold(c.Table, q.PkgVar) || strings.EqualFold(c.Table, q.Table) {
					c.Table = q.RelVar
				}
			}
		})
	}

	// Base constraints: plain tuple predicates, no aggregates.
	if q.Where != nil {
		if len(Aggregates(q.Where)) > 0 {
			return nil, fmt.Errorf("paql: WHERE holds base constraints; aggregates belong in SUCH THAT")
		}
		if len(Subqueries(q.Where)) > 0 {
			return nil, fmt.Errorf("paql: sub-queries are supported in SUCH THAT, not WHERE")
		}
		normalize(q.Where)
		if err := expr.Bind(q.Where, qualified); err != nil {
			return nil, fmt.Errorf("paql: WHERE: %w", err)
		}
	}

	bindGlobal := func(clause string, e expr.Expr) error {
		var firstErr error
		expr.Walk(e, func(n expr.Expr) {
			if firstErr != nil {
				return
			}
			switch node := n.(type) {
			case *Subquery:
				firstErr = fmt.Errorf("paql: %s: sub-query not folded: %s", clause, node)
			case *Agg:
				switch node.Fn {
				case "COUNT", "SUM", "MIN", "MAX", "AVG":
				default:
					firstErr = fmt.Errorf("paql: %s: unknown aggregate %s", clause, node.Fn)
					return
				}
				if !node.Star && node.Arg == nil {
					firstErr = fmt.Errorf("paql: %s: aggregate %s lacks an argument", clause, node.Fn)
					return
				}
				if node.Arg != nil {
					if len(Aggregates(node.Arg)) > 0 {
						firstErr = fmt.Errorf("paql: %s: nested aggregate in %s", clause, node)
						return
					}
					normalize(node.Arg)
					if err := expr.Bind(node.Arg, qualified); err != nil {
						firstErr = fmt.Errorf("paql: %s: %w", clause, err)
						return
					}
				}
				if node.Filter != nil {
					if len(Aggregates(node.Filter)) > 0 {
						firstErr = fmt.Errorf("paql: %s: aggregate inside filter of %s", clause, node)
						return
					}
					normalize(node.Filter)
					if err := expr.Bind(node.Filter, qualified); err != nil {
						firstErr = fmt.Errorf("paql: %s: %w", clause, err)
						return
					}
				}
			case *expr.Col:
				// A bare column outside any aggregate cannot be a
				// package-level value.
				if !insideAgg(e, node) {
					firstErr = fmt.Errorf("paql: %s: bare column %s outside an aggregate (global constraints aggregate over the package)", clause, node)
				}
			}
		})
		return firstErr
	}
	if q.SuchThat != nil {
		if err := bindGlobal("SUCH THAT", q.SuchThat); err != nil {
			return nil, err
		}
	}
	if q.Objective != nil {
		if err := bindGlobal(q.Objective.Sense.String(), q.Objective.Expr); err != nil {
			return nil, err
		}
	}

	// Aggregate inventory.
	if q.SuchThat != nil {
		a.Aggs = append(a.Aggs, Aggregates(q.SuchThat)...)
	}
	if q.Objective != nil {
		for _, agg := range Aggregates(q.Objective.Expr) {
			dup := false
			for _, have := range a.Aggs {
				if have.String() == agg.String() {
					dup = true
					break
				}
			}
			if !dup {
				a.Aggs = append(a.Aggs, agg)
			}
		}
	}

	// Linearity.
	a.Linear = true
	if q.SuchThat != nil {
		checkFormulaLinear(q.SuchThat, false, a)
	}
	if q.Objective != nil {
		if cls := classify(q.Objective.Expr); cls != classConst && cls != classAffine {
			a.Linear = false
			a.NonlinearReasons = append(a.NonlinearReasons,
				fmt.Sprintf("objective %s is not affine in SUM/COUNT aggregates", q.Objective.Expr))
		}
	}
	return a, nil
}

// insideAgg reports whether the column node appears within some
// aggregate's argument or filter in the tree rooted at e.
func insideAgg(e expr.Expr, target *expr.Col) bool {
	found := false
	expr.Walk(e, func(n expr.Expr) {
		if a, ok := n.(*Agg); ok {
			for _, child := range a.Children() {
				expr.Walk(child, func(m expr.Expr) {
					if m == expr.Expr(target) {
						found = true
					}
				})
			}
		}
	})
	return found
}

// expression classes for linearity analysis
type exprClass int

const (
	classConst    exprClass = iota // no aggregates
	classAffine                    // affine combination of SUM/COUNT aggregates
	classRatio                     // AVG alone (linearizable only vs a constant)
	classExtremal                  // MIN/MAX alone (rewritable only vs a constant)
	classNonlin                    // anything else
)

// classify assigns a class to a numeric global expression.
func classify(e expr.Expr) exprClass {
	switch n := e.(type) {
	case *expr.Const:
		return classConst
	case *Agg:
		switch n.Fn {
		case "COUNT", "SUM":
			return classAffine
		case "AVG":
			return classRatio
		case "MIN", "MAX":
			return classExtremal
		}
		return classNonlin
	case *expr.Neg:
		c := classify(n.X)
		if c == classConst || c == classAffine {
			return c
		}
		return classNonlin
	case *expr.Binary:
		l, r := classify(n.L), classify(n.R)
		switch n.Op {
		case expr.OpAdd, expr.OpSub:
			switch {
			case l == classConst && r == classConst:
				return classConst
			case (l == classConst || l == classAffine) && (r == classConst || r == classAffine):
				return classAffine
			}
			return classNonlin
		case expr.OpMul:
			switch {
			case l == classConst && r == classConst:
				return classConst
			case l == classConst && r == classAffine, l == classAffine && r == classConst:
				return classAffine
			}
			return classNonlin
		case expr.OpDiv:
			switch {
			case l == classConst && r == classConst:
				return classConst
			case l == classAffine && r == classConst:
				return classAffine
			}
			return classNonlin
		}
		return classNonlin
	case *expr.Call:
		// Scalar functions of constants stay constant; of aggregates,
		// they are nonlinear.
		for _, arg := range n.Args {
			if classify(arg) != classConst {
				return classNonlin
			}
		}
		return classConst
	}
	return classNonlin
}

// checkFormulaLinear walks a boolean global formula, recording
// obstructions to an exact MILP translation. neg tracks negation depth
// parity (NOT over comparisons is linear because comparisons negate;
// NOT over other shapes is handled by De Morgan pushing in translate).
func checkFormulaLinear(e expr.Expr, neg bool, a *Analysis) {
	fail := func(format string, args ...any) {
		a.Linear = false
		a.NonlinearReasons = append(a.NonlinearReasons, fmt.Sprintf(format, args...))
	}
	switch n := e.(type) {
	case *expr.Binary:
		if n.Op == expr.OpAnd || n.Op == expr.OpOr {
			checkFormulaLinear(n.L, neg, a)
			checkFormulaLinear(n.R, neg, a)
			return
		}
		if !n.Op.Comparison() {
			fail("global constraint %s is not a comparison or boolean combination", n)
			return
		}
		l, r := classify(n.L), classify(n.R)
		op := n.Op
		if neg {
			op, _ = op.Negate()
		}
		switch {
		case (l == classConst || l == classAffine) && (r == classConst || r == classAffine):
			if op == expr.OpNe {
				fail("constraint %s: <> over aggregates needs a disjunction of strict inequalities (handled by search strategies only)", n)
			}
		case l == classRatio && r == classConst, l == classConst && r == classRatio:
			if op == expr.OpEq || op == expr.OpNe {
				fail("constraint %s: AVG equality does not linearize exactly", n)
			}
		case l == classExtremal && r == classConst, l == classConst && r == classExtremal:
			if op == expr.OpEq || op == expr.OpNe {
				fail("constraint %s: MIN/MAX equality does not linearize exactly", n)
			}
		default:
			fail("constraint %s mixes aggregates non-linearly", n)
		}
	case *expr.Not:
		checkFormulaLinear(n.X, !neg, a)
	case *expr.Between:
		lo := classify(n.Lo)
		hi := classify(n.Hi)
		x := classify(n.X)
		if lo != classConst || hi != classConst {
			fail("BETWEEN bounds in %s must be constants", n)
			return
		}
		switch x {
		case classConst, classAffine, classRatio, classExtremal:
			// expands to two comparisons vs constants
		default:
			fail("BETWEEN subject in %s is non-linear", n)
		}
	case *expr.Const:
		// TRUE/FALSE literal: fine.
	case *Agg:
		fail("aggregate %s used as a boolean", n)
	case *expr.InList, *expr.Like, *expr.IsNull, *expr.Neg, *expr.Col, *expr.Call:
		fail("global constraint %s has no linear form", e)
	default:
		fail("global constraint %s has no linear form", e)
	}
}

package paql

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/value"
)

// EvalAgg computes a single aggregate over the package's tuples (a
// multiset: repeated tuples appear once per multiplicity). Aggregate
// arguments and filters must be bound to the relation schema.
func EvalAgg(a *Agg, rows []schema.Row) (value.V, error) {
	count := int64(0)
	sum := 0.0
	sawNum := false
	best := value.Null()
	for _, row := range rows {
		if a.Filter != nil {
			ok, err := expr.EvalBool(a.Filter, row)
			if err != nil {
				return value.Null(), err
			}
			if !ok {
				continue
			}
		}
		if a.Star {
			count++
			continue
		}
		v, err := a.Arg.Eval(row)
		if err != nil {
			return value.Null(), err
		}
		if v.IsNull() {
			continue
		}
		count++
		switch a.Fn {
		case "SUM", "AVG":
			f, ok := v.AsFloat()
			if !ok {
				return value.Null(), fmt.Errorf("paql: %s over non-numeric value %s", a.Fn, v)
			}
			sum += f
			sawNum = true
		case "MIN":
			if best.IsNull() {
				best = v
			} else if cmp, _ := v.Compare(best); cmp < 0 {
				best = v
			}
		case "MAX":
			if best.IsNull() {
				best = v
			} else if cmp, _ := v.Compare(best); cmp > 0 {
				best = v
			}
		}
	}
	switch a.Fn {
	case "COUNT":
		return value.Int(count), nil
	case "SUM":
		if !sawNum {
			return value.Null(), nil
		}
		return value.Float(sum), nil
	case "AVG":
		if count == 0 {
			return value.Null(), nil
		}
		return value.Float(sum / float64(count)), nil
	case "MIN", "MAX":
		return best, nil
	}
	return value.Null(), fmt.Errorf("paql: unknown aggregate %s", a.Fn)
}

// EvalGlobal evaluates a global expression (a SUCH THAT formula or an
// objective) against a concrete package. Aggregates are computed over
// the package rows and memoized by rendered text within the call.
func EvalGlobal(e expr.Expr, rows []schema.Row) (value.V, error) {
	memo := map[string]value.V{}
	var evalErr error
	folded := expr.Transform(e, func(n expr.Expr) expr.Expr {
		a, ok := n.(*Agg)
		if !ok {
			return nil
		}
		key := a.String()
		v, have := memo[key]
		if !have {
			var err error
			v, err = EvalAgg(a, rows)
			if err != nil && evalErr == nil {
				evalErr = err
			}
			memo[key] = v
		}
		return &expr.Const{Val: v}
	})
	if evalErr != nil {
		return value.Null(), evalErr
	}
	return folded.Eval(nil)
}

// Satisfies reports whether a package satisfies the SUCH THAT formula
// (NULL counts as false, per SQL semantics). A nil formula is satisfied
// by every package.
func Satisfies(f expr.Expr, rows []schema.Row) (bool, error) {
	if f == nil {
		return true, nil
	}
	v, err := EvalGlobal(f, rows)
	if err != nil {
		return false, err
	}
	b, null := v.Truthy()
	return b && !null, nil
}

// ObjectiveValue evaluates the objective for a package; a nil objective
// yields 0 so packages compare equal.
func ObjectiveValue(o *Objective, rows []schema.Row) (float64, error) {
	if o == nil {
		return 0, nil
	}
	v, err := EvalGlobal(o.Expr, rows)
	if err != nil {
		return 0, err
	}
	f, ok := v.AsFloat()
	if !ok {
		if v.IsNull() {
			return 0, fmt.Errorf("paql: objective %s is NULL for this package", o.Expr)
		}
		return 0, fmt.Errorf("paql: objective %s is not numeric (%s)", o.Expr, v)
	}
	return f, nil
}

// Better reports whether objective value a improves on b under the
// objective's sense. With a nil objective nothing improves.
func Better(o *Objective, a, b float64) bool {
	if o == nil {
		return false
	}
	if o.Sense == Maximize {
		return a > b+1e-12
	}
	return a < b-1e-12
}

// Package paql implements PaQL, the declarative SQL-based package query
// language of the PackageBuilder paper (§2). A PaQL query selects a
// *package* — a multiset of tuples from one base relation — subject to
// per-tuple base constraints (WHERE), collective global constraints
// (SUCH THAT) and an optional per-package objective
// (MAXIMIZE/MINIMIZE):
//
//	SELECT PACKAGE(R) AS P
//	FROM   Recipes R REPEAT 0
//	WHERE  R.gluten = 'free'
//	SUCH THAT COUNT(*) = 3
//	      AND SUM(P.calories) BETWEEN 2000 AND 2500
//	MAXIMIZE SUM(P.protein)
//
// Extensions beyond the paper's examples, motivated by its §1 scenarios
// and §5 future work:
//   - filtered aggregates, e.g. COUNT(* WHERE P.kind = 'car') — the
//     vacation planner's "unless the budget fits a rental car";
//   - scalar SQL sub-queries in SUCH THAT (mentioned in §2), evaluated
//     against the backing DBMS and folded to constants;
//   - LIMIT n requesting n distinct packages (§5 "solver limitations").
package paql

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/value"
)

// Sense is the objective direction.
type Sense int

const (
	Maximize Sense = iota
	Minimize
)

func (s Sense) String() string {
	if s == Minimize {
		return "MINIMIZE"
	}
	return "MAXIMIZE"
}

// Query is a parsed PaQL query.
type Query struct {
	PkgVar    string     // package variable (AS P); defaults to "P"
	RelVar    string     // relation binding in FROM (e.g. R)
	Table     string     // base relation name
	Repeat    int        // allowed repetitions per tuple: multiplicity ≤ Repeat+1; -1 = unlimited
	Where     expr.Expr  // base constraints (may be nil)
	SuchThat  expr.Expr  // global constraint formula with Agg leaves (may be nil)
	Objective *Objective // may be nil
	Limit     int        // number of packages requested; 0 means 1
	Raw       string     // original query text
	// Explain marks an EXPLAIN-prefixed query: the engine plans it (the
	// cost-based strategy/knob decision trail) but does not execute it.
	Explain bool
}

// Objective is the optimization clause.
type Objective struct {
	Sense Sense
	Expr  expr.Expr // numeric global expression with Agg leaves
}

// MaxMultiplicity returns the maximum number of times one tuple may
// appear in the package (Repeat+1), or 0 for unlimited.
func (q *Query) MaxMultiplicity() int {
	if q.Repeat < 0 {
		return 0
	}
	return q.Repeat + 1
}

// String renders the query as PaQL text.
func (q *Query) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SELECT PACKAGE(%s) AS %s\nFROM %s %s", q.RelVar, q.PkgVar, q.Table, q.RelVar)
	if q.Repeat >= 0 {
		fmt.Fprintf(&b, " REPEAT %d", q.Repeat)
	}
	if q.Where != nil {
		fmt.Fprintf(&b, "\nWHERE %s", q.Where)
	}
	if q.SuchThat != nil {
		fmt.Fprintf(&b, "\nSUCH THAT %s", q.SuchThat)
	}
	if q.Objective != nil {
		fmt.Fprintf(&b, "\n%s %s", q.Objective.Sense, q.Objective.Expr)
	}
	if q.Limit > 1 {
		fmt.Fprintf(&b, "\nLIMIT %d", q.Limit)
	}
	return b.String()
}

// Agg is a package-level aggregate appearing in SUCH THAT or the
// objective: COUNT(*), SUM(P.col), MIN/MAX/AVG(P.col), optionally with a
// per-tuple filter (COUNT(* WHERE pred), SUM(P.x WHERE pred)). It
// implements expr.Expr so global formulas reuse the shared expression
// machinery, and expr.Container so traversal descends into Arg/Filter.
type Agg struct {
	Fn     string    // COUNT, SUM, MIN, MAX, AVG
	Star   bool      // COUNT(*)
	Arg    expr.Expr // over the relation schema; nil when Star
	Filter expr.Expr // optional per-tuple predicate
}

// Eval reports an error: aggregates are evaluated per package by
// EvalGlobal or by the evaluation strategies.
func (a *Agg) Eval(schema.Row) (value.V, error) {
	return value.Null(), fmt.Errorf("paql: aggregate %s evaluated outside a package context", a)
}

// String renders the aggregate in PaQL syntax.
func (a *Agg) String() string {
	var inner string
	if a.Star {
		inner = "*"
	} else {
		inner = a.Arg.String()
	}
	if a.Filter != nil {
		inner += " WHERE " + a.Filter.String()
	}
	return a.Fn + "(" + inner + ")"
}

// Children implements expr.Container.
func (a *Agg) Children() []expr.Expr {
	var out []expr.Expr
	if a.Arg != nil {
		out = append(out, a.Arg)
	}
	if a.Filter != nil {
		out = append(out, a.Filter)
	}
	return out
}

// CloneWith implements expr.Container.
func (a *Agg) CloneWith(children []expr.Expr) expr.Expr {
	c := &Agg{Fn: a.Fn, Star: a.Star}
	i := 0
	if a.Arg != nil {
		c.Arg = children[i]
		i++
	}
	if a.Filter != nil {
		c.Filter = children[i]
	}
	return c
}

// Subquery is a scalar SQL sub-query inside a global expression. The
// engine evaluates SQL against the backing database and folds the node
// to a constant before analysis.
type Subquery struct {
	SQL string
}

// Eval reports an error: sub-queries must be folded first.
func (s *Subquery) Eval(schema.Row) (value.V, error) {
	return value.Null(), fmt.Errorf("paql: unfolded sub-query (%s)", s.SQL)
}

// String renders the sub-query.
func (s *Subquery) String() string { return "(" + s.SQL + ")" }

// Children implements expr.Container.
func (s *Subquery) Children() []expr.Expr { return nil }

// CloneWith implements expr.Container.
func (s *Subquery) CloneWith([]expr.Expr) expr.Expr { return &Subquery{SQL: s.SQL} }

// Aggregates returns the distinct Agg nodes (by rendered text) in an
// expression, in first-appearance order.
func Aggregates(e expr.Expr) []*Agg {
	var out []*Agg
	seen := map[string]bool{}
	expr.Walk(e, func(n expr.Expr) {
		if a, ok := n.(*Agg); ok {
			k := a.String()
			if !seen[k] {
				seen[k] = true
				out = append(out, a)
			}
		}
	})
	return out
}

// Subqueries returns the Subquery nodes in an expression.
func Subqueries(e expr.Expr) []*Subquery {
	var out []*Subquery
	expr.Walk(e, func(n expr.Expr) {
		if s, ok := n.(*Subquery); ok {
			out = append(out, s)
		}
	})
	return out
}

package paql

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/value"
)

const mealQuery = `
	SELECT PACKAGE(R) AS P
	FROM Recipes R
	WHERE R.gluten = 'free'
	SUCH THAT COUNT(*) = 3 AND
	          SUM(P.calories) BETWEEN 2000 AND 2500
	MAXIMIZE SUM(P.protein)`

func recipeSchema() schema.Schema {
	return schema.New(
		schema.Column{Name: "id", Type: schema.TInt},
		schema.Column{Name: "gluten", Type: schema.TString},
		schema.Column{Name: "calories", Type: schema.TFloat},
		schema.Column{Name: "protein", Type: schema.TFloat},
		schema.Column{Name: "kind", Type: schema.TString},
		schema.Column{Name: "price", Type: schema.TFloat},
	)
}

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, src)
	}
	return q
}

func mustAnalyze(t *testing.T, src string) (*Query, *Analysis) {
	t.Helper()
	q := mustParse(t, src)
	a, err := Analyze(q, recipeSchema())
	if err != nil {
		t.Fatalf("Analyze: %v\n%s", err, src)
	}
	return q, a
}

func TestParseMealQuery(t *testing.T) {
	q := mustParse(t, mealQuery)
	if q.RelVar != "R" || q.PkgVar != "P" || q.Table != "Recipes" {
		t.Errorf("vars = %q %q %q", q.RelVar, q.PkgVar, q.Table)
	}
	if q.Repeat != 0 || q.MaxMultiplicity() != 1 {
		t.Errorf("repeat = %d, mult = %d", q.Repeat, q.MaxMultiplicity())
	}
	if q.Where == nil || q.SuchThat == nil || q.Objective == nil {
		t.Fatal("missing clauses")
	}
	if q.Objective.Sense != Maximize {
		t.Errorf("sense = %v", q.Objective.Sense)
	}
	aggs := Aggregates(q.SuchThat)
	if len(aggs) != 2 {
		t.Fatalf("aggs = %v", aggs)
	}
	if aggs[0].String() != "COUNT(*)" {
		t.Errorf("agg0 = %s", aggs[0])
	}
	if !strings.Contains(aggs[1].String(), "SUM") {
		t.Errorf("agg1 = %s", aggs[1])
	}
}

func TestParseRepeatAndLimit(t *testing.T) {
	q := mustParse(t, `SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 2 SUCH THAT COUNT(*) = 4 LIMIT 5`)
	if q.Repeat != 2 || q.MaxMultiplicity() != 3 {
		t.Errorf("repeat = %d mult = %d", q.Repeat, q.MaxMultiplicity())
	}
	if q.Limit != 5 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestParseDefaults(t *testing.T) {
	q := mustParse(t, `SELECT PACKAGE(Recipes) FROM Recipes`)
	if q.PkgVar != "P" || q.RelVar != "Recipes" {
		t.Errorf("defaults: %q %q", q.PkgVar, q.RelVar)
	}
	if q.Where != nil || q.SuchThat != nil || q.Objective != nil || q.Limit != 0 {
		t.Error("clauses should default to nil")
	}
}

func TestParseFilteredAggregates(t *testing.T) {
	q := mustParse(t, `
		SELECT PACKAGE(V) AS P FROM Items V
		SUCH THAT SUM(P.price) <= 2000 AND
		          (MAX(P.price WHERE P.kind = 'hotel') <= 1 OR COUNT(* WHERE P.kind = 'car') >= 1)`)
	aggs := Aggregates(q.SuchThat)
	if len(aggs) != 3 {
		t.Fatalf("aggs = %d", len(aggs))
	}
	if !strings.Contains(aggs[1].String(), "WHERE") {
		t.Errorf("filter lost: %s", aggs[1])
	}
}

func TestParseSubquery(t *testing.T) {
	q := mustParse(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT SUM(P.calories) <= (SELECT MAX(calories) FROM Recipes) * 3`)
	subs := Subqueries(q.SuchThat)
	if len(subs) != 1 {
		t.Fatalf("subqueries = %d", len(subs))
	}
	if subs[0].SQL != "SELECT MAX(calories) FROM Recipes" {
		t.Errorf("sql = %q", subs[0].SQL)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT * FROM Recipes`,
		`SELECT PACKAGE(R) FROM Recipes S`, // alias mismatch
		`SELECT PACKAGE(R) FROM Recipes`,   // missing alias
		`SELECT PACKAGE(R) AS P FROM Recipes R REPEAT -1`,
		`SELECT PACKAGE(R) AS P FROM Recipes R LIMIT 0`,
		`SELECT PACKAGE(R) AS P FROM Recipes R SUCH COUNT(*) = 1`,
		`SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT SUM(*) > 1`,
		`SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT COUNT(*) = 1 trailing`,
		`SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT SUM(P.cal <= 3`,
		`SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT (SELECT MAX(x) FROM t`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	q := mustParse(t, mealQuery)
	text := q.String()
	q2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", text, err)
	}
	if q2.String() != text {
		t.Errorf("unstable rendering:\n%s\nvs\n%s", text, q2.String())
	}
}

func TestAnalyzeBindsAndNormalizes(t *testing.T) {
	q, a := mustAnalyze(t, mealQuery)
	if !a.Linear {
		t.Errorf("meal query should be linear: %v", a.NonlinearReasons)
	}
	if len(a.Aggs) != 3 { // COUNT(*), SUM(cal), SUM(protein)
		t.Errorf("aggs = %d", len(a.Aggs))
	}
	// The package-variable qualifier P.calories must now resolve against
	// the relation schema.
	row := schema.Row{value.Int(1), value.Str("free"), value.Float(700), value.Float(30), value.Str("x"), value.Float(1)}
	ok, err := expr.EvalBool(q.Where, row)
	if err != nil || !ok {
		t.Errorf("where eval = %v, %v", ok, err)
	}
	v, err := EvalGlobal(q.SuchThat, []schema.Row{row, row, row})
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := v.Truthy(); !b { // 3 rows, 2100 cal
		t.Errorf("formula = %v for 3x700cal", v)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cases := []string{
		// aggregate in WHERE
		`SELECT PACKAGE(R) AS P FROM Recipes R WHERE SUM(P.calories) > 3`,
		// unknown column
		`SELECT PACKAGE(R) AS P FROM Recipes R WHERE R.nope = 1`,
		`SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT SUM(P.nope) > 1`,
		// bare column in global constraint
		`SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT P.calories > 100`,
		// unfolded subquery
		`SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT COUNT(*) = (SELECT MAX(id) FROM Recipes)`,
		// subquery in WHERE unsupported
		`SELECT PACKAGE(R) AS P FROM Recipes R WHERE R.id = (SELECT MAX(id) FROM Recipes)`,
	}
	for _, src := range cases {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := Analyze(q, recipeSchema()); err == nil {
			t.Errorf("Analyze(%q) should fail", src)
		}
	}
}

func TestLinearityClassification(t *testing.T) {
	linear := []string{
		`SUCH THAT COUNT(*) = 3`,
		`SUCH THAT SUM(P.calories) BETWEEN 100 AND 200`,
		`SUCH THAT 2 * SUM(P.calories) - COUNT(*) <= 100`,
		`SUCH THAT SUM(P.calories) / 2 <= 100`,
		`SUCH THAT AVG(P.calories) <= 500`,
		`SUCH THAT MIN(P.calories) >= 100 AND MAX(P.calories) <= 700`,
		`SUCH THAT COUNT(*) = 3 OR SUM(P.calories) >= 1000`,
		`SUCH THAT NOT (SUM(P.calories) > 2500)`,
		`SUCH THAT AVG(P.calories) BETWEEN 100 AND 500`,
		`SUCH THAT COUNT(* WHERE P.kind = 'car') >= 1`,
	}
	nonlinear := []string{
		`SUCH THAT SUM(P.calories) * SUM(P.protein) <= 100`,
		`SUCH THAT SUM(P.calories) / COUNT(*) <= 100 AND SUM(P.protein) / SUM(P.calories) > 1`,
		`SUCH THAT AVG(P.calories) + SUM(P.protein) <= 100`,
		`SUCH THAT MIN(P.calories) = 100`,
		`SUCH THAT SUM(P.calories) <> 100`,
		`SUCH THAT AVG(P.calories) = 500`,
	}
	for _, clause := range linear {
		_, a := mustAnalyze(t, `SELECT PACKAGE(R) AS P FROM Recipes R `+clause)
		if !a.Linear {
			t.Errorf("%q should be linear: %v", clause, a.NonlinearReasons)
		}
	}
	for _, clause := range nonlinear {
		_, a := mustAnalyze(t, `SELECT PACKAGE(R) AS P FROM Recipes R `+clause)
		if a.Linear {
			t.Errorf("%q should be non-linear", clause)
		}
	}
	// nonlinear objective
	_, a := mustAnalyze(t, `SELECT PACKAGE(R) AS P FROM Recipes R MAXIMIZE SUM(P.protein) / COUNT(*)`)
	if a.Linear {
		t.Error("ratio objective should be non-linear")
	}
	_, a = mustAnalyze(t, `SELECT PACKAGE(R) AS P FROM Recipes R MINIMIZE SUM(P.price) - 2 * COUNT(*)`)
	if !a.Linear {
		t.Errorf("affine objective should be linear: %v", a.NonlinearReasons)
	}
}

func packageRows() []schema.Row {
	// id, gluten, calories, protein, kind, price
	return []schema.Row{
		{value.Int(1), value.Str("free"), value.Float(300), value.Float(10), value.Str("meal"), value.Float(5)},
		{value.Int(2), value.Str("free"), value.Float(500), value.Float(25), value.Str("meal"), value.Float(9)},
		{value.Int(3), value.Str("full"), value.Float(700), value.Float(40), value.Str("snack"), value.Float(3)},
	}
}

func TestEvalAgg(t *testing.T) {
	_, a := mustAnalyze(t, `SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT COUNT(*) = 3 AND SUM(P.calories) > 0 AND MIN(P.protein) > 0 AND
		          MAX(P.calories) > 0 AND AVG(P.price) > 0 AND COUNT(* WHERE P.kind = 'meal') > 0`)
	rows := packageRows()
	want := map[string]float64{
		"COUNT(*)":                         3,
		"SUM(R.calories)":                  1500,
		"MIN(R.protein)":                   10,
		"MAX(R.calories)":                  700,
		"AVG(R.price)":                     17.0 / 3,
		"COUNT(* WHERE (R.kind = 'meal'))": 2,
	}
	for _, agg := range a.Aggs {
		v, err := EvalAgg(agg, rows)
		if err != nil {
			t.Fatalf("%s: %v", agg, err)
		}
		expect, known := want[agg.String()]
		if !known {
			t.Fatalf("unexpected aggregate rendering %q", agg.String())
		}
		got, _ := v.AsFloat()
		if diff := got - expect; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s = %v, want %g", agg, v, expect)
		}
	}
}

func TestEvalAggEmptyPackage(t *testing.T) {
	_, a := mustAnalyze(t, `SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT COUNT(*) = 0 AND SUM(P.calories) > 0 AND MIN(P.calories) > 0 AND AVG(P.calories) > 0`)
	var rows []schema.Row
	vals := map[string]func(value.V) bool{
		"COUNT(*)":        func(v value.V) bool { return v.Equal(value.Int(0)) },
		"SUM(R.calories)": func(v value.V) bool { return v.IsNull() },
		"MIN(R.calories)": func(v value.V) bool { return v.IsNull() },
		"AVG(R.calories)": func(v value.V) bool { return v.IsNull() },
	}
	for _, agg := range a.Aggs {
		v, err := EvalAgg(agg, rows)
		if err != nil {
			t.Fatal(err)
		}
		check, known := vals[agg.String()]
		if !known {
			t.Fatalf("unexpected agg %s", agg)
		}
		if !check(v) {
			t.Errorf("%s over empty = %v", agg, v)
		}
	}
}

func TestSatisfiesAndObjective(t *testing.T) {
	q, _ := mustAnalyze(t, `SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 1000 AND 2000
		MAXIMIZE SUM(P.protein)`)
	rows := packageRows()
	ok, err := Satisfies(q.SuchThat, rows)
	if err != nil || !ok {
		t.Errorf("Satisfies = %v, %v", ok, err)
	}
	ok, err = Satisfies(q.SuchThat, rows[:2])
	if err != nil || ok {
		t.Errorf("2-row package should fail COUNT(*)=3: %v, %v", ok, err)
	}
	obj, err := ObjectiveValue(q.Objective, rows)
	if err != nil || obj != 75 {
		t.Errorf("objective = %v, %v", obj, err)
	}
	if !Better(q.Objective, 80, 75) || Better(q.Objective, 70, 75) {
		t.Error("Better(maximize) broken")
	}
	minObj := &Objective{Sense: Minimize, Expr: q.Objective.Expr}
	if !Better(minObj, 70, 75) || Better(minObj, 80, 75) {
		t.Error("Better(minimize) broken")
	}
	if Better(nil, 1, 0) {
		t.Error("nil objective should never improve")
	}
	if v, err := ObjectiveValue(nil, rows); err != nil || v != 0 {
		t.Error("nil objective should be 0")
	}
	// nil formula satisfied
	if ok, err := Satisfies(nil, rows); err != nil || !ok {
		t.Error("nil formula should be satisfied")
	}
}

func TestEvalGlobalArithmetic(t *testing.T) {
	q, _ := mustAnalyze(t, `SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT SUM(P.calories) - 100 * COUNT(*) = 1200`)
	rows := packageRows() // 1500 - 300 = 1200
	ok, err := Satisfies(q.SuchThat, rows)
	if err != nil || !ok {
		t.Errorf("arith formula = %v, %v", ok, err)
	}
}

func TestSubqueryCloneAndAggClone(t *testing.T) {
	q := mustParse(t, `SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT SUM(P.calories WHERE P.gluten = 'free') <= (SELECT MAX(calories) FROM Recipes)`)
	c := expr.Clone(q.SuchThat)
	if c.String() != q.SuchThat.String() {
		t.Errorf("clone mismatch:\n%s\n%s", c, q.SuchThat)
	}
	// mutating the clone must not affect the original
	expr.Walk(c, func(n expr.Expr) {
		if col, ok := n.(*expr.Col); ok {
			col.Table = "ZZZ"
		}
	})
	if strings.Contains(q.SuchThat.String(), "ZZZ") {
		t.Error("clone shares column nodes")
	}
}

// Package milp implements a mixed-integer linear program solver:
// best-first branch-and-bound over the bounded-variable simplex in
// internal/lp, with most-fractional branching, a rounding primal
// heuristic, and node/time limits. PackageBuilder's translation layer
// (internal/translate) compiles PaQL package queries into these MILPs;
// integer variables are tuple multiplicities, so branching tightens
// variable bounds and never adds rows.
package milp

import (
	"container/heap"
	"context"
	"math"
	"time"

	"repro/internal/lp"
)

// Problem couples an LP with integrality flags.
type Problem struct {
	LP      *lp.Problem
	Integer []bool // len == LP.NumVars(); true = integrality required
}

// NewProblem wraps an LP; integrality defaults to false per variable.
func NewProblem(p *lp.Problem) *Problem {
	return &Problem{LP: p, Integer: make([]bool, p.NumVars())}
}

// SetInteger marks a variable as integer.
func (p *Problem) SetInteger(j int) { p.Integer[j] = true }

// Status reports the solve outcome.
type Status int

const (
	// StatusOptimal: proven optimal integer solution.
	StatusOptimal Status = iota
	// StatusInfeasible: no integer-feasible point exists.
	StatusInfeasible
	// StatusUnbounded: the relaxation is unbounded.
	StatusUnbounded
	// StatusFeasible: limits hit; best incumbent returned without proof.
	StatusFeasible
	// StatusLimit: limits hit with no incumbent found.
	StatusLimit
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusFeasible:
		return "feasible(limit)"
	case StatusLimit:
		return "limit"
	}
	return "unknown"
}

// Options tunes the search.
type Options struct {
	MaxNodes  int           // 0 = default (200000)
	TimeLimit time.Duration // 0 = none
	IntTol    float64       // integrality tolerance, default 1e-6
	// InitialIncumbent, when non-nil, seeds the search with a known
	// integer-feasible point (e.g. from local search), enabling pruning
	// from the first node.
	InitialIncumbent []float64
	// Ctx, when non-nil, cancels the search cooperatively: it is
	// checked before every branch-and-bound node and polled inside each
	// node's LP relaxation, so a cancelled solve returns within one
	// simplex iteration. The solution's Canceled flag records that the
	// stop came from the context rather than a node or time limit.
	Ctx context.Context
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status     Status
	X          []float64
	Objective  float64
	Bound      float64 // best proven dual bound (in the problem's sense)
	Nodes      int
	LPIters    int
	WallTime   time.Duration
	GapClosed  bool
	Incumbents int  // number of improving incumbents found
	Canceled   bool // the search stopped because Options.Ctx was done
}

type node struct {
	lo, up []float64 // bounds override (full copies)
	bound  float64   // parent LP bound (priority)
}

type nodeQueue struct {
	items []*node
	max   bool // true for maximize problems: higher bound first
}

func (q *nodeQueue) Len() int { return len(q.items) }
func (q *nodeQueue) Less(i, j int) bool {
	if q.max {
		return q.items[i].bound > q.items[j].bound
	}
	return q.items[i].bound < q.items[j].bound
}
func (q *nodeQueue) Swap(i, j int)      { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *nodeQueue) Push(x interface{}) { q.items = append(q.items, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}

// Solve runs branch-and-bound.
func Solve(p *Problem, opts ...Options) *Solution {
	var opt Options
	if len(opts) > 0 {
		opt = opts[0]
	}
	if opt.MaxNodes <= 0 {
		opt.MaxNodes = 200000
	}
	if opt.IntTol <= 0 {
		opt.IntTol = 1e-6
	}
	start := time.Now()
	maximize := p.LP.Sense() == lp.Maximize
	sol := &Solution{Status: StatusLimit}
	// Non-blocking context poll, shared with the per-iteration hook of
	// every node's LP relaxation.
	var cancelPoll func() bool
	if opt.Ctx != nil {
		ctx := opt.Ctx
		cancelPoll = func() bool {
			select {
			case <-ctx.Done():
				return true
			default:
				return false
			}
		}
	}
	better := func(a, b float64) bool {
		if maximize {
			return a > b+1e-9
		}
		return a < b-1e-9
	}

	n := p.LP.NumVars()
	var haveIncumbent bool
	var incumbent []float64
	var incObj float64
	accept := func(x []float64) {
		obj := objective(p.LP, x)
		if !haveIncumbent || better(obj, incObj) {
			incumbent = append([]float64(nil), x...)
			incObj = obj
			haveIncumbent = true
			sol.Incumbents++
		}
	}
	if opt.InitialIncumbent != nil && integerFeasible(p, opt.InitialIncumbent, opt.IntTol) {
		accept(opt.InitialIncumbent)
	}

	rootLo := make([]float64, n)
	rootUp := make([]float64, n)
	for j := 0; j < n; j++ {
		rootLo[j], rootUp[j] = p.LP.Bounds(j)
		// Integer variables get integral bounds up front.
		if p.Integer[j] {
			rootLo[j] = math.Ceil(rootLo[j] - opt.IntTol)
			if !math.IsInf(rootUp[j], 1) {
				rootUp[j] = math.Floor(rootUp[j] + opt.IntTol)
			}
			if rootLo[j] > rootUp[j] {
				sol.Status = StatusInfeasible
				sol.WallTime = time.Since(start)
				return sol
			}
		}
	}
	q := &nodeQueue{max: maximize}
	heap.Init(q)
	heap.Push(q, &node{lo: rootLo, up: rootUp, bound: infFor(maximize)})

	work := p.LP.Clone()
	bestBound := infFor(maximize)
	firstNode := true

	for q.Len() > 0 {
		if cancelPoll != nil && cancelPoll() {
			sol.Canceled = true
			break
		}
		if sol.Nodes >= opt.MaxNodes {
			break
		}
		if opt.TimeLimit > 0 && time.Since(start) > opt.TimeLimit {
			break
		}
		nd := heap.Pop(q).(*node)
		// Bound-based pruning against the incumbent.
		if haveIncumbent && !better(nd.bound, incObj) && !firstNode {
			continue
		}
		sol.Nodes++
		for j := 0; j < n; j++ {
			if err := work.SetBounds(j, nd.lo[j], nd.up[j]); err != nil {
				// Empty range: infeasible node.
				goto nextNode
			}
		}
		{
			res := lp.Solve(work, lp.Options{Cancel: cancelPoll})
			sol.LPIters += res.Iterations
			switch res.Status {
			case lp.StatusInfeasible:
				goto nextNode
			case lp.StatusUnbounded:
				if firstNode {
					sol.Status = StatusUnbounded
					sol.WallTime = time.Since(start)
					return sol
				}
				goto nextNode
			case lp.StatusIterLimit:
				goto nextNode
			}
			if firstNode {
				bestBound = res.Objective
				firstNode = false
			}
			if haveIncumbent && !better(res.Objective, incObj) {
				goto nextNode // dominated
			}
			frac := mostFractional(p, res.X, opt.IntTol)
			if frac == -1 {
				accept(res.X)
				goto nextNode
			}
			// Rounding heuristic: snap to nearest integers and verify.
			if rounded := roundCandidate(p, res.X, nd.lo, nd.up, opt.IntTol); rounded != nil {
				accept(rounded)
			}
			// Branch on the most fractional variable.
			v := res.X[frac]
			left := &node{lo: append([]float64(nil), nd.lo...), up: append([]float64(nil), nd.up...), bound: res.Objective}
			left.up[frac] = math.Floor(v)
			right := &node{lo: append([]float64(nil), nd.lo...), up: append([]float64(nil), nd.up...), bound: res.Objective}
			right.lo[frac] = math.Ceil(v)
			if left.lo[frac] <= left.up[frac] {
				heap.Push(q, left)
			}
			if right.lo[frac] <= right.up[frac] {
				heap.Push(q, right)
			}
		}
	nextNode:
	}
	sol.WallTime = time.Since(start)
	// With open nodes remaining, the best open node's parent bound is
	// the tightest proven dual bound (the heap root, by construction).
	if q.Len() > 0 {
		bestBound = q.items[0].bound
	}
	switch {
	// A cancelled search proves nothing: a node may have been dropped
	// by the LP's cancel hook, so never claim optimal or infeasible.
	case sol.Canceled && haveIncumbent:
		sol.Status = StatusFeasible
		sol.Bound = bestBound
	case sol.Canceled:
		sol.Status = StatusLimit
		sol.Bound = bestBound
	case q.Len() == 0 && sol.Nodes < opt.MaxNodes && haveIncumbent:
		sol.Status = StatusOptimal
		sol.Bound = incObj
	case q.Len() == 0 && sol.Nodes < opt.MaxNodes:
		sol.Status = StatusInfeasible
	case haveIncumbent:
		sol.Status = StatusFeasible
		sol.Bound = bestBound
	default:
		sol.Status = StatusLimit
		sol.Bound = bestBound
	}
	if haveIncumbent {
		sol.X = incumbent
		sol.Objective = incObj
		sol.GapClosed = sol.Status == StatusOptimal
	}
	return sol
}

func infFor(maximize bool) float64 {
	if maximize {
		return math.Inf(1)
	}
	return math.Inf(-1)
}

func objective(p *lp.Problem, x []float64) float64 {
	obj := 0.0
	for j := 0; j < p.NumVars(); j++ {
		obj += p.ObjectiveCoef(j) * x[j]
	}
	return obj
}

// mostFractional returns the integer variable whose value is farthest
// from integrality, or -1 when all are integral.
func mostFractional(p *Problem, x []float64, tol float64) int {
	best := -1
	bestDist := tol
	for j, isInt := range p.Integer {
		if !isInt {
			continue
		}
		f := x[j] - math.Floor(x[j])
		dist := math.Min(f, 1-f)
		if dist > bestDist {
			bestDist = dist
			best = j
		}
	}
	return best
}

// roundCandidate snaps integer variables to the nearest in-bounds
// integer and returns the point if it satisfies every constraint.
func roundCandidate(p *Problem, x, lo, up []float64, tol float64) []float64 {
	out := append([]float64(nil), x...)
	for j, isInt := range p.Integer {
		if !isInt {
			continue
		}
		r := math.Round(out[j])
		if r < lo[j] {
			r = math.Ceil(lo[j] - tol)
		}
		if r > up[j] {
			r = math.Floor(up[j] + tol)
		}
		out[j] = r
	}
	if !p.LP.Feasible(out, 1e-6) {
		return nil
	}
	return out
}

// integerFeasible verifies bounds, constraints and integrality.
func integerFeasible(p *Problem, x []float64, tol float64) bool {
	if len(x) != p.LP.NumVars() {
		return false
	}
	for j, isInt := range p.Integer {
		if isInt && math.Abs(x[j]-math.Round(x[j])) > tol {
			return false
		}
	}
	return p.LP.Feasible(x, 1e-6)
}

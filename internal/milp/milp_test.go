package milp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/lp"
)

// knapsackBrute solves 0/1 knapsack exactly by enumeration.
func knapsackBrute(v, w []float64, cap float64) float64 {
	n := len(v)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		totW, totV := 0.0, 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				totW += w[i]
				totV += v[i]
			}
		}
		if totW <= cap && totV > best {
			best = totV
		}
	}
	return best
}

func buildKnapsack(v, w []float64, cap float64) *Problem {
	n := len(v)
	p := lp.NewProblem(n)
	obj := make([]float64, n)
	copy(obj, v)
	_ = p.SetObjective(obj, lp.Maximize)
	var row []lp.Coef
	for i := 0; i < n; i++ {
		_ = p.SetBounds(i, 0, 1)
		row = append(row, lp.Coef{Var: i, Val: w[i]})
	}
	_, _ = p.AddConstraint(row, lp.LE, cap)
	mp := NewProblem(p)
	for i := 0; i < n; i++ {
		mp.SetInteger(i)
	}
	return mp
}

func TestKnapsackSmall(t *testing.T) {
	v := []float64{60, 100, 120}
	w := []float64{10, 20, 30}
	mp := buildKnapsack(v, w, 50)
	s := Solve(mp)
	if s.Status != StatusOptimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-220) > 1e-6 {
		t.Errorf("objective = %g, want 220", s.Objective)
	}
	// x must be integral
	for j, x := range s.X {
		if math.Abs(x-math.Round(x)) > 1e-6 {
			t.Errorf("x[%d] = %g not integral", j, x)
		}
	}
}

func TestIntegerGapInfeasible(t *testing.T) {
	// 0.4 <= x <= 0.6 with x integer: no integer point.
	p := lp.NewProblem(1)
	_ = p.SetObjective([]float64{1}, lp.Maximize)
	_ = p.SetBounds(0, 0.4, 0.6)
	mp := NewProblem(p)
	mp.SetInteger(0)
	if s := Solve(mp); s.Status != StatusInfeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestLPInfeasible(t *testing.T) {
	p := lp.NewProblem(1)
	_, _ = p.AddConstraint([]lp.Coef{{Var: 0, Val: 1}}, lp.GE, 5)
	_, _ = p.AddConstraint([]lp.Coef{{Var: 0, Val: 1}}, lp.LE, 3)
	mp := NewProblem(p)
	mp.SetInteger(0)
	if s := Solve(mp); s.Status != StatusInfeasible {
		t.Errorf("status = %v", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := lp.NewProblem(1)
	_ = p.SetObjective([]float64{1}, lp.Maximize)
	mp := NewProblem(p)
	mp.SetInteger(0)
	if s := Solve(mp); s.Status != StatusUnbounded {
		t.Errorf("status = %v", s.Status)
	}
}

func TestMinimizeSense(t *testing.T) {
	// min 3x + 2y s.t. x + y >= 3, x,y in {0..5} integer.
	p := lp.NewProblem(2)
	_ = p.SetObjective([]float64{3, 2}, lp.Minimize)
	_ = p.SetBounds(0, 0, 5)
	_ = p.SetBounds(1, 0, 5)
	_, _ = p.AddConstraint([]lp.Coef{{Var: 0, Val: 1}, {Var: 1, Val: 1}}, lp.GE, 3)
	mp := NewProblem(p)
	mp.SetInteger(0)
	mp.SetInteger(1)
	s := Solve(mp)
	if s.Status != StatusOptimal || math.Abs(s.Objective-6) > 1e-6 {
		t.Errorf("min objective = %v %g, want optimal 6", s.Status, s.Objective)
	}
}

func TestGeneralIntegerVariables(t *testing.T) {
	// max x + y s.t. 3x + 5y <= 17, integers: best is x=4,y=1 -> 5.
	p := lp.NewProblem(2)
	_ = p.SetObjective([]float64{1, 1}, lp.Maximize)
	_ = p.SetBounds(0, 0, 10)
	_ = p.SetBounds(1, 0, 10)
	_, _ = p.AddConstraint([]lp.Coef{{Var: 0, Val: 3}, {Var: 1, Val: 5}}, lp.LE, 17)
	mp := NewProblem(p)
	mp.SetInteger(0)
	mp.SetInteger(1)
	s := Solve(mp)
	if s.Status != StatusOptimal || math.Abs(s.Objective-5) > 1e-6 {
		t.Errorf("objective = %v %g, want 5", s.Status, s.Objective)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 2x + y, x integer, y continuous; x + y <= 2.5, x <= 2.
	// Optimum: x=2, y=0.5 -> 4.5.
	p := lp.NewProblem(2)
	_ = p.SetObjective([]float64{2, 1}, lp.Maximize)
	_ = p.SetBounds(0, 0, 2)
	_ = p.SetBounds(1, 0, lp.Inf)
	_, _ = p.AddConstraint([]lp.Coef{{Var: 0, Val: 1}, {Var: 1, Val: 1}}, lp.LE, 2.5)
	mp := NewProblem(p)
	mp.SetInteger(0)
	s := Solve(mp)
	if s.Status != StatusOptimal || math.Abs(s.Objective-4.5) > 1e-6 {
		t.Errorf("objective = %v %g, want 4.5", s.Status, s.Objective)
	}
}

func TestNodeLimitReturnsFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 30
	v := make([]float64, n)
	w := make([]float64, n)
	for i := range v {
		v[i] = float64(rng.Intn(100) + 1)
		w[i] = float64(rng.Intn(50) + 1)
	}
	mp := buildKnapsack(v, w, 200)
	s := Solve(mp, Options{MaxNodes: 3})
	if s.Status != StatusFeasible && s.Status != StatusOptimal && s.Status != StatusLimit {
		t.Errorf("status = %v", s.Status)
	}
	if s.Status == StatusFeasible {
		// incumbent must be integral and feasible
		if s.X == nil {
			t.Fatal("feasible status without X")
		}
		if !mp.LP.Feasible(s.X, 1e-6) {
			t.Error("incumbent infeasible")
		}
		// bound must not be worse than the incumbent for maximize
		if s.Bound < s.Objective-1e-6 {
			t.Errorf("bound %g < incumbent %g", s.Bound, s.Objective)
		}
	}
}

func TestTimeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 40
	v := make([]float64, n)
	w := make([]float64, n)
	for i := range v {
		v[i] = float64(rng.Intn(1000) + 1)
		w[i] = float64(rng.Intn(1000) + 1)
	}
	mp := buildKnapsack(v, w, 5000)
	start := time.Now()
	_ = Solve(mp, Options{TimeLimit: 10 * time.Millisecond})
	if time.Since(start) > 2*time.Second {
		t.Error("time limit ignored")
	}
}

func TestInitialIncumbentPrunes(t *testing.T) {
	v := []float64{60, 100, 120}
	w := []float64{10, 20, 30}
	mp := buildKnapsack(v, w, 50)
	// Seed with the known optimum: y+z.
	seed := []float64{0, 1, 1}
	s := Solve(mp, Options{InitialIncumbent: seed})
	if s.Status != StatusOptimal || math.Abs(s.Objective-220) > 1e-6 {
		t.Errorf("seeded solve = %v %g", s.Status, s.Objective)
	}
	// A bogus initial incumbent (infeasible) must be ignored.
	bad := []float64{1, 1, 1}
	s = Solve(mp, Options{InitialIncumbent: bad})
	if s.Status != StatusOptimal || math.Abs(s.Objective-220) > 1e-6 {
		t.Errorf("bad seed solve = %v %g", s.Status, s.Objective)
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{StatusOptimal, StatusInfeasible, StatusUnbounded, StatusFeasible, StatusLimit} {
		if s.String() == "unknown" {
			t.Errorf("status %d has no name", s)
		}
	}
}

// Property: random 0/1 knapsacks match brute force exactly.
func TestPropKnapsackMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(10)
		v := make([]float64, n)
		w := make([]float64, n)
		totW := 0.0
		for i := range v {
			v[i] = float64(rng.Intn(100) + 1)
			w[i] = float64(rng.Intn(40) + 1)
			totW += w[i]
		}
		cap := totW * (0.25 + 0.5*rng.Float64())
		want := knapsackBrute(v, w, cap)
		s := Solve(buildKnapsack(v, w, cap))
		if s.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		if math.Abs(s.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: milp=%g brute=%g (n=%d)", trial, s.Objective, want, n)
		}
	}
}

// Property: equality-count problems (the paper's COUNT(*) = k) match
// brute force.
func TestPropCountConstrainedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(8)
		k := 1 + rng.Intn(3)
		cal := make([]float64, n)
		prot := make([]float64, n)
		for i := range cal {
			cal[i] = float64(100 + rng.Intn(700))
			prot[i] = float64(rng.Intn(50))
		}
		lo, hi := 500.0, 1800.0
		// brute force
		want := math.Inf(-1)
		for mask := 0; mask < 1<<n; mask++ {
			cnt, cs, ps := 0, 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					cnt++
					cs += cal[i]
					ps += prot[i]
				}
			}
			if cnt == k && cs >= lo && cs <= hi && ps > want {
				want = ps
			}
		}
		// milp
		p := lp.NewProblem(n)
		obj := make([]float64, n)
		copy(obj, prot)
		_ = p.SetObjective(obj, lp.Maximize)
		var cnt, cs []lp.Coef
		for i := 0; i < n; i++ {
			_ = p.SetBounds(i, 0, 1)
			cnt = append(cnt, lp.Coef{Var: i, Val: 1})
			cs = append(cs, lp.Coef{Var: i, Val: cal[i]})
		}
		_, _ = p.AddConstraint(cnt, lp.EQ, float64(k))
		_, _ = p.AddConstraint(cs, lp.GE, lo)
		_, _ = p.AddConstraint(cs, lp.LE, hi)
		mp := NewProblem(p)
		for i := 0; i < n; i++ {
			mp.SetInteger(i)
		}
		s := Solve(mp)
		if math.IsInf(want, -1) {
			if s.Status != StatusInfeasible {
				t.Fatalf("trial %d: want infeasible, got %v obj=%g", trial, s.Status, s.Objective)
			}
			continue
		}
		if s.Status != StatusOptimal || math.Abs(s.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: milp=%v %g brute=%g", trial, s.Status, s.Objective, want)
		}
	}
}

func BenchmarkKnapsack100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 100
	v := make([]float64, n)
	w := make([]float64, n)
	for i := range v {
		v[i] = float64(rng.Intn(100) + 1)
		w[i] = float64(rng.Intn(50) + 1)
	}
	mp := buildKnapsack(v, w, 600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := Solve(mp); s.Status != StatusOptimal {
			b.Fatal(s.Status)
		}
	}
}

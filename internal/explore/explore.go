// Package explore implements the paper's §3.3 adaptive exploration and
// §3.1 constraint suggestion. A Session wraps a prepared package query;
// the user pins tuples they like and asks for a replacement package
// that keeps the pinned tuples and swaps the rest ("Users can then
// select good tuples within the sample, and request a new sample that
// replaces the unselected tuples"). Suggest proposes constraints from
// highlighted cells, rows or columns, mirroring the Figure 1 side panel.
package explore

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/minidb"
	"repro/internal/paql"
	"repro/internal/value"
)

// Session is an interactive exploration of one package query.
type Session struct {
	prep    *core.Prepared
	opts    core.Options
	current *core.Package
	pinned  map[int]bool // candidate indexes
	history []*core.Package
	stats   *core.Stats // last evaluation's statistics
}

// Stats returns the statistics of the most recent Refresh or Replace
// evaluation (nil before the first one).
func (s *Session) Stats() *core.Stats { return s.stats }

// NewSession prepares a query for exploration.
func NewSession(db *minidb.DB, queryText string, opts core.Options) (*Session, error) {
	return NewSessionContext(context.Background(), db, queryText, opts)
}

// NewSessionContext is NewSession under a context: the candidate scan
// checks for cancellation (see core.PrepareContext).
func NewSessionContext(ctx context.Context, db *minidb.DB, queryText string, opts core.Options) (*Session, error) {
	prep, err := core.PrepareContext(ctx, db, queryText)
	if err != nil {
		return nil, err
	}
	return &Session{prep: prep, opts: opts, pinned: map[int]bool{}}, nil
}

// Query returns the underlying PaQL query.
func (s *Session) Query() *paql.Query { return s.prep.Query }

// Prepared exposes the underlying prepared query (for viz/template).
func (s *Session) Prepared() *core.Prepared { return s.prep }

// Current returns the package on display (nil before Refresh).
func (s *Session) Current() *core.Package { return s.current }

// History returns all packages shown so far, oldest first.
func (s *Session) History() []*core.Package { return s.history }

// Pinned returns the pinned candidate indexes, sorted.
func (s *Session) Pinned() []int {
	out := make([]int, 0, len(s.pinned))
	for i := range s.pinned {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Refresh evaluates the query (respecting pins) and makes the best
// package current. Legacy surface: provable infeasibility comes back as
// the classic untyped message; RefreshContext keeps the typed error.
func (s *Session) Refresh() (*core.Package, error) {
	p, err := s.RefreshContext(context.Background())
	if err != nil && errors.Is(err, lifecycle.ErrInfeasible) {
		return nil, fmt.Errorf("explore: no package satisfies the query%s",
			pinSuffix(len(s.pinned)))
	}
	return p, err
}

// RefreshContext is Refresh under a context, with the RunContext error
// taxonomy: lifecycle.ErrInfeasible when the query (with the current
// pins) provably has no package, lifecycle.ErrCanceled /
// ErrBudgetExceeded on cancellation or budget refusal. A heuristic
// strategy finding nothing keeps the classic untyped "no package
// satisfies" error.
func (s *Session) RefreshContext(ctx context.Context) (*core.Package, error) {
	opts := s.opts
	opts.Require = s.Pinned()
	res, err := s.prep.RunContext(ctx, opts)
	if res != nil {
		s.stats = &res.Stats
	}
	if err != nil {
		return nil, err
	}
	if len(res.Packages) == 0 {
		return nil, fmt.Errorf("explore: no package satisfies the query%s",
			pinSuffix(len(opts.Require)))
	}
	s.current = res.Packages[0]
	s.history = append(s.history, s.current)
	return s.current, nil
}

func pinSuffix(n int) string {
	if n == 0 {
		return ""
	}
	return fmt.Sprintf(" with %d pinned tuple(s)", n)
}

// Pin marks a candidate (by its position in the current package's
// candidate set) as kept across replacements.
func (s *Session) Pin(candidateIdx int) error {
	if candidateIdx < 0 || candidateIdx >= len(s.prep.Instance.Rows) {
		return fmt.Errorf("explore: candidate %d out of range", candidateIdx)
	}
	s.pinned[candidateIdx] = true
	return nil
}

// PinRowID pins by base-table row id.
func (s *Session) PinRowID(rowID int) error {
	for i, id := range s.prep.Instance.IDs {
		if id == rowID {
			return s.Pin(i)
		}
	}
	return fmt.Errorf("explore: row id %d is not a candidate (check base constraints)", rowID)
}

// Unpin releases a pinned candidate.
func (s *Session) Unpin(candidateIdx int) { delete(s.pinned, candidateIdx) }

// Replace finds a package that keeps every pinned tuple but differs
// from all packages shown so far (§3.3's "request a new sample that
// replaces the unselected tuples"). Legacy surface: provable
// infeasibility comes back as the classic untyped message;
// ReplaceContext keeps the typed error.
func (s *Session) Replace() (*core.Package, error) {
	p, err := s.ReplaceContext(context.Background())
	if err != nil && errors.Is(err, lifecycle.ErrInfeasible) {
		return nil, fmt.Errorf("explore: no further distinct package exists%s",
			pinSuffix(len(s.pinned)))
	}
	return p, err
}

// ReplaceContext is Replace under a context, with the RunContext error
// taxonomy (see RefreshContext).
func (s *Session) ReplaceContext(ctx context.Context) (*core.Package, error) {
	opts := s.opts
	opts.Require = s.Pinned()
	opts.Limit = len(s.history) + 3 // enough distinct packages to skip history
	res, err := s.prep.RunContext(ctx, opts)
	if res != nil {
		s.stats = &res.Stats
	}
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, h := range s.history {
		seen[core.MultKey(h.Mult)] = true
	}
	for _, p := range res.Packages {
		if !seen[core.MultKey(p.Mult)] {
			s.current = p
			s.history = append(s.history, p)
			return p, nil
		}
	}
	return nil, fmt.Errorf("explore: no further distinct package exists%s", pinSuffix(len(opts.Require)))
}

// Highlight describes what the user selected in the sample-package view.
type Highlight struct {
	Column string // column name; empty for a row-only highlight
	Row    int    // candidate index; -1 for a column-only highlight
}

// Suggestion is one proposed refinement.
type Suggestion struct {
	Kind string // "base" | "global" | "objective" | "action"
	Text string // PaQL fragment or action description
	Why  string
}

// Suggest proposes constraints for a highlight, following the paper's
// example: "when the user selects a cell within the 'fats' column, the
// system proposes several constraints that would restrict the amount of
// fat in each meal, and objectives that would minimize the total amount
// of fat".
func (s *Session) Suggest(h Highlight) ([]Suggestion, error) {
	inst := s.prep.Instance
	pv := s.prep.Query.PkgVar
	rv := s.prep.Query.RelVar
	if h.Column == "" {
		if h.Row < 0 || h.Row >= len(inst.Rows) {
			return nil, fmt.Errorf("explore: highlight names neither a column nor a valid row")
		}
		return []Suggestion{{
			Kind: "action",
			Text: fmt.Sprintf("PIN tuple %d", inst.IDs[h.Row]),
			Why:  "keep this tuple and replace the others (adaptive exploration)",
		}}, nil
	}
	ord, err := s.prep.Table.Schema.IndexOf("", h.Column)
	if err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}
	col := s.prep.Table.Schema.Cols[ord]
	var sugg []Suggestion
	if col.Type.Numeric() {
		stats := s.columnStats(ord)
		if h.Row >= 0 && h.Row < len(inst.Rows) {
			cell, _ := inst.Rows[h.Row][ord].AsFloat()
			sugg = append(sugg,
				Suggestion{Kind: "base", Text: fmt.Sprintf("%s.%s <= %g", rv, col.Name, cell),
					Why: "restrict every tuple to at most the highlighted value"},
				Suggestion{Kind: "global", Text: fmt.Sprintf("MAX(%s.%s) <= %g", pv, col.Name, cell),
					Why: "cap the package-wide maximum at the highlighted value"},
			)
		}
		sugg = append(sugg,
			Suggestion{Kind: "base", Text: fmt.Sprintf("%s.%s BETWEEN %g AND %g", rv, col.Name, stats.q1, stats.q3),
				Why: "keep tuples in the interquartile range of the candidates"},
			Suggestion{Kind: "global", Text: fmt.Sprintf("SUM(%s.%s) <= %g", pv, col.Name, round2(stats.median*float64(maxI(inst.Bounds.Lo, 1)*2))),
				Why: "bound the package total (twice the median times the minimum size)"},
			Suggestion{Kind: "global", Text: fmt.Sprintf("AVG(%s.%s) <= %g", pv, col.Name, round2(stats.median)),
				Why: "keep the package average at or below the candidate median"},
			Suggestion{Kind: "objective", Text: fmt.Sprintf("MINIMIZE SUM(%s.%s)", pv, col.Name),
				Why: "prefer packages with the least total " + col.Name},
			Suggestion{Kind: "objective", Text: fmt.Sprintf("MAXIMIZE SUM(%s.%s)", pv, col.Name),
				Why: "prefer packages with the most total " + col.Name},
		)
		return sugg, nil
	}
	// categorical column
	if h.Row >= 0 && h.Row < len(inst.Rows) {
		cell := inst.Rows[h.Row][ord]
		if cell.Kind() == value.KindString {
			v := cell.SQLString()
			sugg = append(sugg,
				Suggestion{Kind: "base", Text: fmt.Sprintf("%s.%s = %s", rv, col.Name, v),
					Why: "restrict every tuple to the highlighted category"},
				Suggestion{Kind: "global", Text: fmt.Sprintf("COUNT(* WHERE %s.%s = %s) >= 1", pv, col.Name, v),
					Why: "require at least one tuple of the highlighted category"},
			)
		}
	}
	for _, v := range s.topCategories(ord, 3) {
		sugg = append(sugg, Suggestion{
			Kind: "global",
			Text: fmt.Sprintf("COUNT(* WHERE %s.%s = %s) >= 1", pv, col.Name, v.SQLString()),
			Why:  "require representation of a frequent category",
		})
	}
	if len(sugg) == 0 {
		return nil, fmt.Errorf("explore: no suggestions for column %s", col.Name)
	}
	return sugg, nil
}

type colStats struct{ q1, median, q3 float64 }

func (s *Session) columnStats(ord int) colStats {
	var vals []float64
	for _, row := range s.prep.Instance.Rows {
		if f, ok := row[ord].AsFloat(); ok {
			vals = append(vals, f)
		}
	}
	if len(vals) == 0 {
		return colStats{}
	}
	sort.Float64s(vals)
	q := func(p float64) float64 {
		idx := p * float64(len(vals)-1)
		lo := int(math.Floor(idx))
		hi := int(math.Ceil(idx))
		frac := idx - float64(lo)
		return round2(vals[lo]*(1-frac) + vals[hi]*frac)
	}
	return colStats{q1: q(0.25), median: q(0.5), q3: q(0.75)}
}

func (s *Session) topCategories(ord, k int) []value.V {
	counts := map[string]int{}
	vals := map[string]value.V{}
	for _, row := range s.prep.Instance.Rows {
		v := row[ord]
		if v.IsNull() {
			continue
		}
		key := v.String()
		counts[key]++
		vals[key] = v
	}
	keys := make([]string, 0, len(counts))
	for key := range counts {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > k {
		keys = keys[:k]
	}
	out := make([]value.V, len(keys))
	for i, key := range keys {
		out[i] = vals[key]
	}
	return out
}

func round2(f float64) float64 { return math.Round(f*100) / 100 }

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package explore

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/minidb"
)

const mealQuery = `
	SELECT PACKAGE(R) AS P
	FROM recipes R
	WHERE R.gluten = 'free'
	SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 1000 AND 2200
	MAXIMIZE SUM(P.protein)`

func newSession(t *testing.T) *Session {
	t.Helper()
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 60, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(db, mealQuery, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRefreshAndHistory(t *testing.T) {
	s := newSession(t)
	if s.Current() != nil {
		t.Error("current should be nil before Refresh")
	}
	p, err := s.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 3 {
		t.Errorf("package size = %d", p.Size())
	}
	if s.Current() != p || len(s.History()) != 1 {
		t.Error("current/history not updated")
	}
}

func TestReplaceProducesDistinctPackages(t *testing.T) {
	s := newSession(t)
	first, err := s.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{core.MultKey(first.Mult): true}
	for i := 0; i < 3; i++ {
		next, err := s.Replace()
		if err != nil {
			t.Fatalf("replace %d: %v", i, err)
		}
		key := core.MultKey(next.Mult)
		if seen[key] {
			t.Fatalf("replace %d returned a previously shown package", i)
		}
		seen[key] = true
		if next.Size() != 3 {
			t.Errorf("replacement size = %d", next.Size())
		}
	}
	if len(s.History()) != 4 {
		t.Errorf("history = %d", len(s.History()))
	}
}

func TestPinKeepsTuplesAcrossReplace(t *testing.T) {
	s := newSession(t)
	first, err := s.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	// pin the first tuple of the current package
	var pinnedCand int = -1
	for i, m := range first.Mult {
		if m > 0 {
			pinnedCand = i
			break
		}
	}
	if err := s.Pin(pinnedCand); err != nil {
		t.Fatal(err)
	}
	pinnedID := s.Prepared().Instance.IDs[pinnedCand]
	for i := 0; i < 3; i++ {
		next, err := s.Replace()
		if err != nil {
			t.Fatalf("replace %d: %v", i, err)
		}
		if next.Mult[pinnedCand] == 0 {
			t.Fatalf("replace %d dropped the pinned tuple (id %d)", i, pinnedID)
		}
	}
	// unpin works
	s.Unpin(pinnedCand)
	if len(s.Pinned()) != 0 {
		t.Error("unpin failed")
	}
}

func TestPinByRowID(t *testing.T) {
	s := newSession(t)
	if _, err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	id := s.Prepared().Instance.IDs[0]
	if err := s.PinRowID(id); err != nil {
		t.Fatal(err)
	}
	if len(s.Pinned()) != 1 {
		t.Error("PinRowID did not pin")
	}
	if err := s.PinRowID(99999); err == nil {
		t.Error("bogus row id should fail")
	}
	if err := s.Pin(-1); err == nil {
		t.Error("negative candidate should fail")
	}
}

func TestSuggestNumericColumn(t *testing.T) {
	s := newSession(t)
	if _, err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	sugg, err := s.Suggest(Highlight{Column: "fat", Row: -1})
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	minimized := false
	for _, sg := range sugg {
		kinds = append(kinds, sg.Kind)
		if sg.Kind == "objective" && strings.HasPrefix(sg.Text, "MINIMIZE SUM(P.fat") {
			minimized = true
		}
		if sg.Why == "" {
			t.Errorf("suggestion %q lacks a rationale", sg.Text)
		}
	}
	if !minimized {
		t.Errorf("the paper's fat example should suggest MINIMIZE SUM(P.fat); got %v", kinds)
	}
}

func TestSuggestCellAndCategorical(t *testing.T) {
	s := newSession(t)
	if _, err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	sugg, err := s.Suggest(Highlight{Column: "calories", Row: 0})
	if err != nil {
		t.Fatal(err)
	}
	foundBase, foundMax := false, false
	for _, sg := range sugg {
		if sg.Kind == "base" && strings.Contains(sg.Text, "<=") {
			foundBase = true
		}
		if strings.HasPrefix(sg.Text, "MAX(P.calories)") {
			foundMax = true
		}
	}
	if !foundBase || !foundMax {
		t.Errorf("cell highlight suggestions incomplete: %+v", sugg)
	}
	catSugg, err := s.Suggest(Highlight{Column: "cuisine", Row: 0})
	if err != nil {
		t.Fatal(err)
	}
	foundCount := false
	for _, sg := range catSugg {
		if strings.HasPrefix(sg.Text, "COUNT(* WHERE P.cuisine = ") {
			foundCount = true
		}
	}
	if !foundCount {
		t.Errorf("categorical suggestions incomplete: %+v", catSugg)
	}
	// row-only highlight suggests pinning
	rowSugg, err := s.Suggest(Highlight{Row: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rowSugg) != 1 || rowSugg[0].Kind != "action" {
		t.Errorf("row highlight = %+v", rowSugg)
	}
}

func TestSuggestErrors(t *testing.T) {
	s := newSession(t)
	if _, err := s.Suggest(Highlight{Column: "nope"}); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := s.Suggest(Highlight{Row: -1}); err == nil {
		t.Error("empty highlight should fail")
	}
}

func TestInfeasibleRefreshErrors(t *testing.T) {
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 20, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(db, `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 3 AND SUM(P.calories) >= 100000`, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Refresh(); err == nil {
		t.Error("infeasible query should error on Refresh")
	}
}

package expr

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

// Rendering of every node type; re-parseability is covered by the parse
// package's round-trip test.
func TestStringAllNodes(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&Const{Val: value.Int(5)}, "5"},
		{&Const{Val: value.Str("a'b")}, "'a''b'"},
		{NewCol("t", "c"), "t.c"},
		{NewCol("", "c"), "c"},
		{&Binary{Op: OpAdd, L: NewCol("", "a"), R: &Const{Val: value.Int(1)}}, "(a + 1)"},
		{&Binary{Op: OpNe, L: NewCol("", "a"), R: &Const{Val: value.Int(1)}}, "(a <> 1)"},
		{&Binary{Op: OpMod, L: NewCol("", "a"), R: &Const{Val: value.Int(2)}}, "(a % 2)"},
		{&Not{X: &Const{Val: value.Bool(true)}}, "(NOT true)"},
		{&Neg{X: NewCol("", "a")}, "(-a)"},
		{&Between{X: NewCol("", "a"), Lo: &Const{Val: value.Int(1)}, Hi: &Const{Val: value.Int(2)}}, "(a BETWEEN 1 AND 2)"},
		{&Between{X: NewCol("", "a"), Lo: &Const{Val: value.Int(1)}, Hi: &Const{Val: value.Int(2)}, Invert: true}, "(a NOT BETWEEN 1 AND 2)"},
		{&InList{X: NewCol("", "a"), List: []Expr{&Const{Val: value.Int(1)}}}, "(a IN (1))"},
		{&InList{X: NewCol("", "a"), List: []Expr{&Const{Val: value.Int(1)}}, Invert: true}, "(a NOT IN (1))"},
		{&IsNull{X: NewCol("", "a")}, "(a IS NULL)"},
		{&IsNull{X: NewCol("", "a"), Invert: true}, "(a IS NOT NULL)"},
		{&Like{X: NewCol("", "a"), Pattern: &Const{Val: value.Str("x%")}}, "(a LIKE 'x%')"},
		{&Like{X: NewCol("", "a"), Pattern: &Const{Val: value.Str("x%")}, Invert: true}, "(a NOT LIKE 'x%')"},
		{&Call{Name: "ABS", Args: []Expr{NewCol("", "a")}}, "ABS(a)"},
		{&Call{Name: "POW", Args: []Expr{NewCol("", "a"), &Const{Val: value.Int(2)}}}, "POW(a, 2)"},
	}
	for _, tc := range cases {
		if got := tc.e.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestOpStringAll(t *testing.T) {
	want := map[BinOp]string{
		OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
		OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
		OpAnd: "AND", OpOr: "OR",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), s)
		}
	}
	if BinOp(99).String() == "" {
		t.Error("unknown op should still render")
	}
}

func TestFlipNegateAll(t *testing.T) {
	flips := map[BinOp]BinOp{
		OpLt: OpGt, OpLe: OpGe, OpGt: OpLt, OpGe: OpLe,
		OpEq: OpEq, OpNe: OpNe, OpAdd: OpAdd,
	}
	for op, want := range flips {
		if op.Flip() != want {
			t.Errorf("%v.Flip() = %v, want %v", op, op.Flip(), want)
		}
	}
	negs := map[BinOp]BinOp{
		OpEq: OpNe, OpNe: OpEq, OpLt: OpGe, OpLe: OpGt, OpGt: OpLe, OpGe: OpLt,
	}
	for op, want := range negs {
		got, ok := op.Negate()
		if !ok || got != want {
			t.Errorf("%v.Negate() = %v,%v", op, got, ok)
		}
	}
}

// fakeContainer exercises the Container extension paths in
// Walk/Clone/Transform.
type fakeContainer struct {
	kids []Expr
}

func (f *fakeContainer) Eval(schema.Row) (value.V, error) { return value.Int(7), nil }
func (f *fakeContainer) String() string                   { return "FAKE()" }
func (f *fakeContainer) Children() []Expr                 { return f.kids }
func (f *fakeContainer) CloneWith(kids []Expr) Expr       { return &fakeContainer{kids: kids} }

func TestContainerTraversal(t *testing.T) {
	inner := NewCol("t", "x")
	fc := &fakeContainer{kids: []Expr{inner}}
	root := &Binary{Op: OpAdd, L: fc, R: &Const{Val: value.Int(1)}}

	// Walk descends into container children.
	var cols []*Col
	Walk(root, func(n Expr) {
		if c, ok := n.(*Col); ok {
			cols = append(cols, c)
		}
	})
	if len(cols) != 1 || cols[0] != inner {
		t.Fatalf("Walk missed container child: %v", cols)
	}
	// Clone rebuilds via CloneWith without sharing children.
	c := Clone(root).(*Binary)
	cc := c.L.(*fakeContainer)
	if cc == fc || cc.kids[0] == Expr(inner) {
		t.Error("Clone shared container internals")
	}
	// Transform substitutes inside containers.
	out := Transform(root, func(n Expr) Expr {
		if _, ok := n.(*Col); ok {
			return &Const{Val: value.Int(41)}
		}
		return nil
	})
	v, err := out.Eval(nil)
	if err != nil || !v.Equal(value.Int(8)) { // FAKE()=7 + 1
		t.Errorf("transformed eval = %v, %v", v, err)
	}
	// the substituted tree holds the const
	kid := out.(*Binary).L.(*fakeContainer).kids[0]
	if _, ok := kid.(*Const); !ok {
		t.Errorf("Transform did not replace inside container: %T", kid)
	}
}

func TestTransformAllNodeTypes(t *testing.T) {
	src := &Binary{Op: OpOr,
		L: &Between{X: NewCol("", "a"), Lo: &Const{Val: value.Int(1)}, Hi: &Const{Val: value.Int(9)}},
		R: &Binary{Op: OpAnd,
			L: &InList{X: NewCol("", "b"), List: []Expr{&Const{Val: value.Int(2)}}},
			R: &Not{X: &Like{X: NewCol("", "s"), Pattern: &Const{Val: value.Str("%x")}}},
		},
	}
	extra := &Binary{Op: OpEq,
		L: &Neg{X: NewCol("", "n")},
		R: &Call{Name: "ABS", Args: []Expr{&IsNull{X: NewCol("", "z")}}},
	}
	for _, e := range []Expr{src, extra} {
		renamed := Transform(e, func(n Expr) Expr {
			if c, ok := n.(*Col); ok {
				return NewCol("q", c.Name)
			}
			return nil
		})
		// every column got qualified; original untouched
		Walk(renamed, func(n Expr) {
			if c, ok := n.(*Col); ok && c.Table != "q" {
				t.Errorf("column %s not rewritten", c)
			}
		})
		Walk(e, func(n Expr) {
			if c, ok := n.(*Col); ok && c.Table == "q" {
				t.Error("Transform mutated its input")
			}
		})
	}
	if Transform(nil, func(Expr) Expr { return nil }) != nil {
		t.Error("Transform(nil) should be nil")
	}
}

func TestCloneAllNodeTypes(t *testing.T) {
	nodes := []Expr{
		&Between{X: NewCol("", "a"), Lo: &Const{Val: value.Int(1)}, Hi: &Const{Val: value.Int(2)}, Invert: true},
		&InList{X: NewCol("", "a"), List: []Expr{NewCol("", "b")}, Invert: true},
		&IsNull{X: NewCol("", "a"), Invert: true},
		&Like{X: NewCol("", "a"), Pattern: &Const{Val: value.Str("%")}, Invert: true},
		&Call{Name: "LEAST", Args: []Expr{NewCol("", "a"), NewCol("", "b")}},
		&Neg{X: NewCol("", "a")},
		&Not{X: NewCol("", "a")},
	}
	for _, n := range nodes {
		c := Clone(n)
		if c.String() != n.String() {
			t.Errorf("clone mismatch: %s vs %s", c, n)
		}
		// bind the clone; the original must stay unbound
		s := schema.New(schema.Column{Name: "a", Type: schema.TInt}, schema.Column{Name: "b", Type: schema.TInt})
		_ = Bind(c, s)
		Walk(n, func(x Expr) {
			if col, ok := x.(*Col); ok && col.Idx != -1 {
				t.Errorf("Clone shares column %s", col)
			}
		})
	}
	if Clone(nil) != nil {
		t.Error("Clone(nil) should be nil")
	}
}

func TestColEvalOutOfRange(t *testing.T) {
	c := &Col{Name: "x", Idx: 5}
	if _, err := c.Eval(schema.Row{value.Int(1)}); err == nil {
		t.Error("out-of-range ordinal should error")
	}
}

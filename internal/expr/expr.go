// Package expr implements the scalar expression language shared by the
// minidb SQL engine and the PaQL front-end: literals, column references,
// arithmetic, comparisons, three-valued boolean logic, BETWEEN/IN/LIKE/IS
// NULL, and a small set of scalar functions.
//
// Expressions are built by the parsers with unresolved column references
// and then bound to a schema with Bind, which fills in column ordinals.
// Eval evaluates a bound expression against a row. String renders the
// expression back to SQL text that the minidb parser accepts — the §4.2
// local-search strategy relies on this to generate its replacement
// queries.
package expr

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/schema"
	"repro/internal/value"
)

// Expr is a scalar expression node.
type Expr interface {
	// Eval evaluates the expression against a row. Column references
	// must have been resolved with Bind first.
	Eval(row schema.Row) (value.V, error)
	// String renders SQL text for the expression.
	String() string
}

// BinOp enumerates binary operators.
type BinOp uint8

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

// String returns the SQL spelling of the operator.
func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	}
	return fmt.Sprintf("BinOp(%d)", uint8(op))
}

// Comparison reports whether the operator is a comparison (=, <>, <, <=, >, >=).
func (op BinOp) Comparison() bool { return op >= OpEq && op <= OpGe }

// Arithmetic reports whether the operator is numeric arithmetic.
func (op BinOp) Arithmetic() bool { return op <= OpMod }

// Flip returns the comparison with sides exchanged (a < b  ==>  b > a).
func (op BinOp) Flip() BinOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op
}

// Negate returns the logical complement of a comparison (a < b ==> a >= b).
func (op BinOp) Negate() (BinOp, bool) {
	switch op {
	case OpEq:
		return OpNe, true
	case OpNe:
		return OpEq, true
	case OpLt:
		return OpGe, true
	case OpLe:
		return OpGt, true
	case OpGt:
		return OpLe, true
	case OpGe:
		return OpLt, true
	}
	return op, false
}

// Const is a literal datum.
type Const struct{ Val value.V }

// Eval returns the literal.
func (c *Const) Eval(schema.Row) (value.V, error) { return c.Val, nil }

// String renders the literal as SQL.
func (c *Const) String() string { return c.Val.SQLString() }

// Col is a (possibly qualified) column reference. Idx is -1 until Bind
// resolves it against a schema.
type Col struct {
	Table string
	Name  string
	Idx   int
}

// NewCol builds an unresolved column reference.
func NewCol(table, name string) *Col { return &Col{Table: table, Name: name, Idx: -1} }

// Eval returns the referenced datum from the row.
func (c *Col) Eval(row schema.Row) (value.V, error) {
	if c.Idx < 0 {
		return value.Null(), fmt.Errorf("expr: unbound column %s", c.String())
	}
	if c.Idx >= len(row) {
		return value.Null(), fmt.Errorf("expr: column %s ordinal %d out of range for %d-wide row", c.String(), c.Idx, len(row))
	}
	return row[c.Idx], nil
}

// String renders "table.name" or "name".
func (c *Col) String() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Binary applies a binary operator.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// Eval applies the operator with SQL semantics: NULL propagates through
// arithmetic and comparisons; AND/OR use Kleene three-valued logic.
func (b *Binary) Eval(row schema.Row) (value.V, error) {
	if b.Op == OpAnd || b.Op == OpOr {
		return b.evalLogic(row)
	}
	l, err := b.L.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	r, err := b.R.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	switch b.Op {
	case OpAdd:
		return l.Add(r)
	case OpSub:
		return l.Sub(r)
	case OpMul:
		return l.Mul(r)
	case OpDiv:
		return l.Div(r)
	case OpMod:
		return l.Mod(r)
	}
	cmp, null := l.Compare(r)
	if null {
		return value.Null(), nil
	}
	var res bool
	switch b.Op {
	case OpEq:
		res = cmp == 0
	case OpNe:
		res = cmp != 0
	case OpLt:
		res = cmp < 0
	case OpLe:
		res = cmp <= 0
	case OpGt:
		res = cmp > 0
	case OpGe:
		res = cmp >= 0
	default:
		return value.Null(), fmt.Errorf("expr: unknown operator %v", b.Op)
	}
	return value.Bool(res), nil
}

func (b *Binary) evalLogic(row schema.Row) (value.V, error) {
	l, err := b.L.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	lv, lnull := l.Truthy()
	// Short-circuit where three-valued logic allows it.
	if b.Op == OpAnd && !lnull && !lv {
		return value.Bool(false), nil
	}
	if b.Op == OpOr && !lnull && lv {
		return value.Bool(true), nil
	}
	r, err := b.R.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	rv, rnull := r.Truthy()
	if b.Op == OpAnd {
		switch {
		case !rnull && !rv:
			return value.Bool(false), nil
		case lnull || rnull:
			return value.Null(), nil
		default:
			return value.Bool(true), nil
		}
	}
	switch {
	case !rnull && rv:
		return value.Bool(true), nil
	case lnull || rnull:
		return value.Null(), nil
	default:
		return value.Bool(false), nil
	}
}

// String renders the operation with parentheses that re-parse correctly.
func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// Not is logical negation with three-valued semantics (NOT NULL = NULL).
type Not struct{ X Expr }

// Eval negates the operand.
func (n *Not) Eval(row schema.Row) (value.V, error) {
	v, err := n.X.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	b, null := v.Truthy()
	if null {
		return value.Null(), nil
	}
	return value.Bool(!b), nil
}

// String renders "NOT (x)".
func (n *Not) String() string { return "(NOT " + n.X.String() + ")" }

// Neg is arithmetic negation.
type Neg struct{ X Expr }

// Eval negates the numeric operand.
func (n *Neg) Eval(row schema.Row) (value.V, error) {
	v, err := n.X.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	return v.Neg()
}

// String renders "(-x)".
func (n *Neg) String() string { return "(-" + n.X.String() + ")" }

// Between is "x [NOT] BETWEEN lo AND hi" (inclusive on both ends).
type Between struct {
	X, Lo, Hi Expr
	Invert    bool
}

// Eval implements BETWEEN as (x >= lo AND x <= hi) with NULL semantics.
func (b *Between) Eval(row schema.Row) (value.V, error) {
	ge := &Binary{Op: OpGe, L: b.X, R: b.Lo}
	le := &Binary{Op: OpLe, L: b.X, R: b.Hi}
	v, err := (&Binary{Op: OpAnd, L: ge, R: le}).Eval(row)
	if err != nil {
		return value.Null(), err
	}
	if !b.Invert {
		return v, nil
	}
	t, null := v.Truthy()
	if null {
		return value.Null(), nil
	}
	return value.Bool(!t), nil
}

// String renders the BETWEEN form.
func (b *Between) String() string {
	not := ""
	if b.Invert {
		not = "NOT "
	}
	return "(" + b.X.String() + " " + not + "BETWEEN " + b.Lo.String() + " AND " + b.Hi.String() + ")"
}

// InList is "x [NOT] IN (e1, e2, ...)".
type InList struct {
	X      Expr
	List   []Expr
	Invert bool
}

// Eval implements IN with SQL NULL semantics: if no element matches but
// some comparison was NULL, the result is NULL.
func (in *InList) Eval(row schema.Row) (value.V, error) {
	x, err := in.X.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	sawNull := x.IsNull()
	found := false
	if !sawNull {
		for _, e := range in.List {
			v, err := e.Eval(row)
			if err != nil {
				return value.Null(), err
			}
			cmp, null := x.Compare(v)
			if null {
				sawNull = true
				continue
			}
			if cmp == 0 {
				found = true
				break
			}
		}
	}
	switch {
	case found:
		return value.Bool(!in.Invert), nil
	case sawNull:
		return value.Null(), nil
	default:
		return value.Bool(in.Invert), nil
	}
}

// String renders the IN form.
func (in *InList) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	not := ""
	if in.Invert {
		not = "NOT "
	}
	return "(" + in.X.String() + " " + not + "IN (" + strings.Join(parts, ", ") + "))"
}

// IsNull is "x IS [NOT] NULL".
type IsNull struct {
	X      Expr
	Invert bool
}

// Eval never returns NULL: IS NULL is a definite predicate.
func (is *IsNull) Eval(row schema.Row) (value.V, error) {
	v, err := is.X.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	if is.Invert {
		return value.Bool(!v.IsNull()), nil
	}
	return value.Bool(v.IsNull()), nil
}

// String renders the IS NULL form.
func (is *IsNull) String() string {
	if is.Invert {
		return "(" + is.X.String() + " IS NOT NULL)"
	}
	return "(" + is.X.String() + " IS NULL)"
}

// Like is "x [NOT] LIKE pattern" with % (any sequence) and _ (any rune).
type Like struct {
	X, Pattern Expr
	Invert     bool
}

// Eval matches the pattern; NULL operands yield NULL.
func (l *Like) Eval(row schema.Row) (value.V, error) {
	x, err := l.X.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	p, err := l.Pattern.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	if x.IsNull() || p.IsNull() {
		return value.Null(), nil
	}
	if x.Kind() != value.KindString || p.Kind() != value.KindString {
		return value.Null(), fmt.Errorf("expr: LIKE requires string operands")
	}
	m := likeMatch([]rune(x.StrVal()), []rune(p.StrVal()))
	return value.Bool(m != l.Invert), nil
}

func likeMatch(s, p []rune) bool {
	// Iterative wildcard matching with backtracking on the last %.
	si, pi := 0, 0
	star, ss := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star, ss = pi, si
			pi++
		case star >= 0:
			ss++
			si, pi = ss, star+1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// String renders the LIKE form.
func (l *Like) String() string {
	not := ""
	if l.Invert {
		not = "NOT "
	}
	return "(" + l.X.String() + " " + not + "LIKE " + l.Pattern.String() + ")"
}

// Call is a scalar function invocation.
type Call struct {
	Name string // canonical upper-case name
	Args []Expr
}

// Eval dispatches to the built-in function table.
func (c *Call) Eval(row schema.Row) (value.V, error) {
	args := make([]value.V, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(row)
		if err != nil {
			return value.Null(), err
		}
		args[i] = v
	}
	return callBuiltin(c.Name, args)
}

// String renders "NAME(arg, ...)".
func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Name + "(" + strings.Join(parts, ", ") + ")"
}

// KnownFunc reports whether name is a built-in scalar function.
func KnownFunc(name string) bool {
	switch strings.ToUpper(name) {
	case "ABS", "FLOOR", "CEIL", "ROUND", "SQRT", "POW", "EXP", "LN",
		"LOWER", "UPPER", "LENGTH", "COALESCE", "LEAST", "GREATEST":
		return true
	}
	return false
}

func callBuiltin(name string, args []value.V) (value.V, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("expr: %s expects %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	num := func(i int) (float64, bool, error) {
		if args[i].IsNull() {
			return 0, true, nil
		}
		f, ok := args[i].AsFloat()
		if !ok {
			return 0, false, fmt.Errorf("expr: %s expects numeric argument, got %s", name, args[i].Kind())
		}
		return f, false, nil
	}
	switch name {
	case "ABS":
		if err := need(1); err != nil {
			return value.Null(), err
		}
		if args[0].IsNull() {
			return value.Null(), nil
		}
		if args[0].Kind() == value.KindInt {
			i := args[0].IntVal()
			if i < 0 {
				i = -i
			}
			return value.Int(i), nil
		}
		f, _, err := num(0)
		if err != nil {
			return value.Null(), err
		}
		return value.Float(math.Abs(f)), nil
	case "FLOOR", "CEIL", "ROUND", "SQRT", "EXP", "LN":
		if err := need(1); err != nil {
			return value.Null(), err
		}
		f, null, err := num(0)
		if err != nil || null {
			return value.Null(), err
		}
		switch name {
		case "FLOOR":
			return value.Float(math.Floor(f)), nil
		case "CEIL":
			return value.Float(math.Ceil(f)), nil
		case "ROUND":
			return value.Float(math.Round(f)), nil
		case "SQRT":
			if f < 0 {
				return value.Null(), nil
			}
			return value.Float(math.Sqrt(f)), nil
		case "EXP":
			return value.Float(math.Exp(f)), nil
		default: // LN
			if f <= 0 {
				return value.Null(), nil
			}
			return value.Float(math.Log(f)), nil
		}
	case "POW":
		if err := need(2); err != nil {
			return value.Null(), err
		}
		a, n1, err := num(0)
		if err != nil {
			return value.Null(), err
		}
		b, n2, err := num(1)
		if err != nil {
			return value.Null(), err
		}
		if n1 || n2 {
			return value.Null(), nil
		}
		return value.Float(math.Pow(a, b)), nil
	case "LOWER", "UPPER", "LENGTH":
		if err := need(1); err != nil {
			return value.Null(), err
		}
		if args[0].IsNull() {
			return value.Null(), nil
		}
		if args[0].Kind() != value.KindString {
			return value.Null(), fmt.Errorf("expr: %s expects a string argument", name)
		}
		s := args[0].StrVal()
		switch name {
		case "LOWER":
			return value.Str(strings.ToLower(s)), nil
		case "UPPER":
			return value.Str(strings.ToUpper(s)), nil
		default:
			return value.Int(int64(len([]rune(s)))), nil
		}
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return value.Null(), nil
	case "LEAST", "GREATEST":
		best := value.Null()
		for _, a := range args {
			if a.IsNull() {
				continue
			}
			if best.IsNull() {
				best = a
				continue
			}
			cmp, _ := a.Compare(best)
			if (name == "LEAST" && cmp < 0) || (name == "GREATEST" && cmp > 0) {
				best = a
			}
		}
		return best, nil
	}
	return value.Null(), fmt.Errorf("expr: unknown function %s", name)
}

// --- extension nodes ---------------------------------------------------------

// Container is implemented by expression nodes defined outside this
// package (aggregate calls, sub-queries). Walk descends into Children,
// and Clone rebuilds the node through CloneWith.
type Container interface {
	Expr
	// Children returns the node's direct sub-expressions.
	Children() []Expr
	// CloneWith returns a copy of the node with the given children
	// (same length and order as Children).
	CloneWith(children []Expr) Expr
}

// --- binding and traversal -------------------------------------------------

// Bind resolves every column reference in e against s, filling in
// ordinals. It returns the first resolution error encountered.
func Bind(e Expr, s schema.Schema) error {
	var firstErr error
	Walk(e, func(n Expr) {
		c, ok := n.(*Col)
		if !ok || firstErr != nil {
			return
		}
		idx, err := s.IndexOf(c.Table, c.Name)
		if err != nil {
			firstErr = err
			return
		}
		c.Idx = idx
	})
	return firstErr
}

// Walk visits every node of the expression tree in pre-order.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch n := e.(type) {
	case *Binary:
		Walk(n.L, fn)
		Walk(n.R, fn)
	case *Not:
		Walk(n.X, fn)
	case *Neg:
		Walk(n.X, fn)
	case *Between:
		Walk(n.X, fn)
		Walk(n.Lo, fn)
		Walk(n.Hi, fn)
	case *InList:
		Walk(n.X, fn)
		for _, it := range n.List {
			Walk(it, fn)
		}
	case *IsNull:
		Walk(n.X, fn)
	case *Like:
		Walk(n.X, fn)
		Walk(n.Pattern, fn)
	case *Call:
		for _, a := range n.Args {
			Walk(a, fn)
		}
	case Container:
		for _, c := range n.Children() {
			Walk(c, fn)
		}
	}
}

// Columns returns the distinct column references in the expression, in
// first-appearance order.
func Columns(e Expr) []*Col {
	var out []*Col
	seen := map[string]bool{}
	Walk(e, func(n Expr) {
		if c, ok := n.(*Col); ok {
			key := strings.ToLower(c.Table) + "." + strings.ToLower(c.Name)
			if !seen[key] {
				seen[key] = true
				out = append(out, c)
			}
		}
	})
	return out
}

// Clone deep-copies an expression tree (column bindings included).
func Clone(e Expr) Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *Const:
		c := *n
		return &c
	case *Col:
		c := *n
		return &c
	case *Binary:
		return &Binary{Op: n.Op, L: Clone(n.L), R: Clone(n.R)}
	case *Not:
		return &Not{X: Clone(n.X)}
	case *Neg:
		return &Neg{X: Clone(n.X)}
	case *Between:
		return &Between{X: Clone(n.X), Lo: Clone(n.Lo), Hi: Clone(n.Hi), Invert: n.Invert}
	case *InList:
		list := make([]Expr, len(n.List))
		for i, it := range n.List {
			list[i] = Clone(it)
		}
		return &InList{X: Clone(n.X), List: list, Invert: n.Invert}
	case *IsNull:
		return &IsNull{X: Clone(n.X), Invert: n.Invert}
	case *Like:
		return &Like{X: Clone(n.X), Pattern: Clone(n.Pattern), Invert: n.Invert}
	case *Call:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Clone(a)
		}
		return &Call{Name: n.Name, Args: args}
	case Container:
		kids := n.Children()
		cloned := make([]Expr, len(kids))
		for i, k := range kids {
			cloned[i] = Clone(k)
		}
		return n.CloneWith(cloned)
	}
	panic(fmt.Sprintf("expr: Clone: unknown node %T", e))
}

// Transform rewrites an expression tree. fn is applied to each node in
// pre-order; returning a non-nil replacement substitutes that subtree
// without descending further, returning nil recurses into children.
// The input tree is not modified; untouched subtrees are shared.
func Transform(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	if r := fn(e); r != nil {
		return r
	}
	switch n := e.(type) {
	case *Const, *Col:
		return e
	case *Binary:
		return &Binary{Op: n.Op, L: Transform(n.L, fn), R: Transform(n.R, fn)}
	case *Not:
		return &Not{X: Transform(n.X, fn)}
	case *Neg:
		return &Neg{X: Transform(n.X, fn)}
	case *Between:
		return &Between{X: Transform(n.X, fn), Lo: Transform(n.Lo, fn), Hi: Transform(n.Hi, fn), Invert: n.Invert}
	case *InList:
		list := make([]Expr, len(n.List))
		for i, it := range n.List {
			list[i] = Transform(it, fn)
		}
		return &InList{X: Transform(n.X, fn), List: list, Invert: n.Invert}
	case *IsNull:
		return &IsNull{X: Transform(n.X, fn), Invert: n.Invert}
	case *Like:
		return &Like{X: Transform(n.X, fn), Pattern: Transform(n.Pattern, fn), Invert: n.Invert}
	case *Call:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Transform(a, fn)
		}
		return &Call{Name: n.Name, Args: args}
	case Container:
		kids := n.Children()
		out := make([]Expr, len(kids))
		for i, k := range kids {
			out[i] = Transform(k, fn)
		}
		return n.CloneWith(out)
	}
	panic(fmt.Sprintf("expr: Transform: unknown node %T", e))
}

// EvalBool evaluates a predicate; NULL (unknown) counts as false, per
// SQL WHERE semantics.
func EvalBool(e Expr, row schema.Row) (bool, error) {
	v, err := e.Eval(row)
	if err != nil {
		return false, err
	}
	b, null := v.Truthy()
	return b && !null, nil
}

// AndAll conjoins expressions; nil for an empty list.
func AndAll(es ...Expr) Expr {
	var out Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &Binary{Op: OpAnd, L: out, R: e}
		}
	}
	return out
}

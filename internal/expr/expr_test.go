package expr

import (
	"testing"
	"testing/quick"

	"repro/internal/schema"
	"repro/internal/value"
)

func testRowSchema() (schema.Schema, schema.Row) {
	s := schema.New(
		schema.Column{Table: "r", Name: "cal", Type: schema.TFloat},
		schema.Column{Table: "r", Name: "name", Type: schema.TString},
		schema.Column{Table: "r", Name: "gluten", Type: schema.TString},
		schema.Column{Table: "r", Name: "rank", Type: schema.TInt},
	)
	row := schema.Row{value.Float(350), value.Str("Pasta"), value.Str("free"), value.Int(3)}
	return s, row
}

func mustBind(t *testing.T, e Expr, s schema.Schema) Expr {
	t.Helper()
	if err := Bind(e, s); err != nil {
		t.Fatalf("bind: %v", err)
	}
	return e
}

func evalV(t *testing.T, e Expr, row schema.Row) value.V {
	t.Helper()
	v, err := e.Eval(row)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v
}

func TestConstAndCol(t *testing.T) {
	s, row := testRowSchema()
	c := &Const{Val: value.Int(5)}
	if v := evalV(t, c, row); !v.Equal(value.Int(5)) {
		t.Errorf("const = %v", v)
	}
	col := mustBind(t, NewCol("r", "cal"), s)
	if v := evalV(t, col, row); !v.Equal(value.Float(350)) {
		t.Errorf("col = %v", v)
	}
	// unbound column errors
	if _, err := NewCol("r", "cal").Eval(row); err == nil {
		t.Error("unbound column should error")
	}
	// unknown column fails at bind
	if err := Bind(NewCol("r", "nope"), s); err == nil {
		t.Error("bind unknown column should fail")
	}
}

func TestArithmeticAndComparisons(t *testing.T) {
	s, row := testRowSchema()
	cal := func() Expr { return NewCol("r", "cal") }
	e := mustBind(t, &Binary{Op: OpAdd, L: cal(), R: &Const{Val: value.Float(50)}}, s)
	if v := evalV(t, e, row); !v.Equal(value.Float(400)) {
		t.Errorf("cal+50 = %v", v)
	}
	e = mustBind(t, &Binary{Op: OpLe, L: cal(), R: &Const{Val: value.Float(400)}}, s)
	if v := evalV(t, e, row); !v.Equal(value.Bool(true)) {
		t.Errorf("cal<=400 = %v", v)
	}
	e = mustBind(t, &Binary{Op: OpGt, L: cal(), R: &Const{Val: value.Float(400)}}, s)
	if v := evalV(t, e, row); !v.Equal(value.Bool(false)) {
		t.Errorf("cal>400 = %v", v)
	}
	e = mustBind(t, &Binary{Op: OpEq, L: NewCol("r", "gluten"), R: &Const{Val: value.Str("free")}}, s)
	if v := evalV(t, e, row); !v.Equal(value.Bool(true)) {
		t.Errorf("gluten='free' = %v", v)
	}
	// comparison against NULL is NULL
	e = &Binary{Op: OpEq, L: &Const{Val: value.Null()}, R: &Const{Val: value.Int(1)}}
	if v := evalV(t, e, nil); !v.IsNull() {
		t.Errorf("NULL = 1 -> %v", v)
	}
}

func TestThreeValuedLogic(t *testing.T) {
	T := &Const{Val: value.Bool(true)}
	F := &Const{Val: value.Bool(false)}
	N := &Const{Val: value.Null()}
	cases := []struct {
		op   BinOp
		l, r Expr
		want value.V
	}{
		{OpAnd, T, T, value.Bool(true)},
		{OpAnd, T, F, value.Bool(false)},
		{OpAnd, F, N, value.Bool(false)}, // short-circuit
		{OpAnd, N, F, value.Bool(false)},
		{OpAnd, T, N, value.Null()},
		{OpAnd, N, N, value.Null()},
		{OpOr, F, F, value.Bool(false)},
		{OpOr, T, N, value.Bool(true)}, // short-circuit
		{OpOr, N, T, value.Bool(true)},
		{OpOr, F, N, value.Null()},
		{OpOr, N, N, value.Null()},
	}
	for _, tc := range cases {
		v := evalV(t, &Binary{Op: tc.op, L: tc.l, R: tc.r}, nil)
		if v.IsNull() != tc.want.IsNull() || (!v.IsNull() && !v.Equal(tc.want)) {
			t.Errorf("%s %v %s = %v, want %v", tc.l, tc.op, tc.r, v, tc.want)
		}
	}
}

func TestNotNegBetween(t *testing.T) {
	if v := evalV(t, &Not{X: &Const{Val: value.Bool(true)}}, nil); !v.Equal(value.Bool(false)) {
		t.Errorf("NOT true = %v", v)
	}
	if v := evalV(t, &Not{X: &Const{Val: value.Null()}}, nil); !v.IsNull() {
		t.Errorf("NOT NULL = %v", v)
	}
	if v := evalV(t, &Neg{X: &Const{Val: value.Int(4)}}, nil); !v.Equal(value.Int(-4)) {
		t.Errorf("-4 = %v", v)
	}
	b := &Between{X: &Const{Val: value.Int(5)}, Lo: &Const{Val: value.Int(1)}, Hi: &Const{Val: value.Int(10)}}
	if v := evalV(t, b, nil); !v.Equal(value.Bool(true)) {
		t.Errorf("5 BETWEEN 1 AND 10 = %v", v)
	}
	b.Invert = true
	if v := evalV(t, b, nil); !v.Equal(value.Bool(false)) {
		t.Errorf("5 NOT BETWEEN 1 AND 10 = %v", v)
	}
	b2 := &Between{X: &Const{Val: value.Int(11)}, Lo: &Const{Val: value.Int(1)}, Hi: &Const{Val: value.Int(10)}}
	if v := evalV(t, b2, nil); !v.Equal(value.Bool(false)) {
		t.Errorf("11 BETWEEN 1 AND 10 = %v", v)
	}
}

func TestInList(t *testing.T) {
	in := &InList{
		X:    &Const{Val: value.Str("b")},
		List: []Expr{&Const{Val: value.Str("a")}, &Const{Val: value.Str("b")}},
	}
	if v := evalV(t, in, nil); !v.Equal(value.Bool(true)) {
		t.Errorf("b IN (a,b) = %v", v)
	}
	in.Invert = true
	if v := evalV(t, in, nil); !v.Equal(value.Bool(false)) {
		t.Errorf("b NOT IN (a,b) = %v", v)
	}
	// no match + NULL element -> NULL
	in2 := &InList{
		X:    &Const{Val: value.Int(9)},
		List: []Expr{&Const{Val: value.Int(1)}, &Const{Val: value.Null()}},
	}
	if v := evalV(t, in2, nil); !v.IsNull() {
		t.Errorf("9 IN (1, NULL) = %v, want NULL", v)
	}
	// match wins over NULL
	in3 := &InList{
		X:    &Const{Val: value.Int(1)},
		List: []Expr{&Const{Val: value.Null()}, &Const{Val: value.Int(1)}},
	}
	if v := evalV(t, in3, nil); !v.Equal(value.Bool(true)) {
		t.Errorf("1 IN (NULL, 1) = %v", v)
	}
}

func TestIsNull(t *testing.T) {
	if v := evalV(t, &IsNull{X: &Const{Val: value.Null()}}, nil); !v.Equal(value.Bool(true)) {
		t.Errorf("NULL IS NULL = %v", v)
	}
	if v := evalV(t, &IsNull{X: &Const{Val: value.Int(1)}, Invert: true}, nil); !v.Equal(value.Bool(true)) {
		t.Errorf("1 IS NOT NULL = %v", v)
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%lo", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hell", "h__lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%b%", true},
		{"abc", "%d%", false},
		{"aXbXc", "a%b%c", true},
	}
	for _, tc := range cases {
		l := &Like{X: &Const{Val: value.Str(tc.s)}, Pattern: &Const{Val: value.Str(tc.p)}}
		if v := evalV(t, l, nil); !v.Equal(value.Bool(tc.want)) {
			t.Errorf("%q LIKE %q = %v, want %v", tc.s, tc.p, v, tc.want)
		}
	}
	l := &Like{X: &Const{Val: value.Null()}, Pattern: &Const{Val: value.Str("%")}}
	if v := evalV(t, l, nil); !v.IsNull() {
		t.Errorf("NULL LIKE %% = %v", v)
	}
	bad := &Like{X: &Const{Val: value.Int(3)}, Pattern: &Const{Val: value.Str("%")}}
	if _, err := bad.Eval(nil); err == nil {
		t.Error("LIKE on int should error")
	}
}

func TestCalls(t *testing.T) {
	eval1 := func(name string, args ...value.V) value.V {
		t.Helper()
		es := make([]Expr, len(args))
		for i, a := range args {
			es[i] = &Const{Val: a}
		}
		return evalV(t, &Call{Name: name, Args: es}, nil)
	}
	if v := eval1("ABS", value.Int(-3)); !v.Equal(value.Int(3)) {
		t.Errorf("ABS(-3) = %v", v)
	}
	if v := eval1("ABS", value.Float(-2.5)); !v.Equal(value.Float(2.5)) {
		t.Errorf("ABS(-2.5) = %v", v)
	}
	if v := eval1("FLOOR", value.Float(2.7)); !v.Equal(value.Float(2)) {
		t.Errorf("FLOOR = %v", v)
	}
	if v := eval1("CEIL", value.Float(2.1)); !v.Equal(value.Float(3)) {
		t.Errorf("CEIL = %v", v)
	}
	if v := eval1("ROUND", value.Float(2.5)); !v.Equal(value.Float(3)) {
		t.Errorf("ROUND = %v", v)
	}
	if v := eval1("SQRT", value.Float(9)); !v.Equal(value.Float(3)) {
		t.Errorf("SQRT = %v", v)
	}
	if v := eval1("SQRT", value.Float(-1)); !v.IsNull() {
		t.Errorf("SQRT(-1) = %v, want NULL", v)
	}
	if v := eval1("POW", value.Int(2), value.Int(10)); !v.Equal(value.Float(1024)) {
		t.Errorf("POW = %v", v)
	}
	if v := eval1("LOWER", value.Str("AbC")); !v.Equal(value.Str("abc")) {
		t.Errorf("LOWER = %v", v)
	}
	if v := eval1("UPPER", value.Str("AbC")); !v.Equal(value.Str("ABC")) {
		t.Errorf("UPPER = %v", v)
	}
	if v := eval1("LENGTH", value.Str("héllo")); !v.Equal(value.Int(5)) {
		t.Errorf("LENGTH = %v", v)
	}
	if v := eval1("COALESCE", value.Null(), value.Int(2), value.Int(3)); !v.Equal(value.Int(2)) {
		t.Errorf("COALESCE = %v", v)
	}
	if v := eval1("LEAST", value.Int(3), value.Int(1), value.Null()); !v.Equal(value.Int(1)) {
		t.Errorf("LEAST = %v", v)
	}
	if v := eval1("GREATEST", value.Int(3), value.Float(4.5)); !v.Equal(value.Float(4.5)) {
		t.Errorf("GREATEST = %v", v)
	}
	if _, err := (&Call{Name: "NOPE"}).Eval(nil); err == nil {
		t.Error("unknown function should error")
	}
	if _, err := (&Call{Name: "ABS"}).Eval(nil); err == nil {
		t.Error("arity error expected")
	}
	if !KnownFunc("abs") || KnownFunc("nope") {
		t.Error("KnownFunc broken")
	}
}

func TestOpHelpers(t *testing.T) {
	if !OpEq.Comparison() || OpAdd.Comparison() {
		t.Error("Comparison() broken")
	}
	if !OpAdd.Arithmetic() || OpEq.Arithmetic() {
		t.Error("Arithmetic() broken")
	}
	if OpLt.Flip() != OpGt || OpGe.Flip() != OpLe || OpEq.Flip() != OpEq {
		t.Error("Flip broken")
	}
	if n, ok := OpLt.Negate(); !ok || n != OpGe {
		t.Error("Negate broken")
	}
	if _, ok := OpAdd.Negate(); ok {
		t.Error("Negate of + should fail")
	}
}

func TestStringRendersReparseable(t *testing.T) {
	s, _ := testRowSchema()
	e := &Binary{Op: OpAnd,
		L: &Binary{Op: OpLe, L: NewCol("r", "cal"), R: &Const{Val: value.Float(400)}},
		R: &Binary{Op: OpEq, L: NewCol("r", "gluten"), R: &Const{Val: value.Str("free")}},
	}
	mustBind(t, e, s)
	want := "((r.cal <= 400) AND (r.gluten = 'free'))"
	if got := e.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestWalkColumnsClone(t *testing.T) {
	e := &Binary{Op: OpAnd,
		L: &Binary{Op: OpLe, L: NewCol("r", "cal"), R: &Const{Val: value.Float(400)}},
		R: &InList{X: NewCol("r", "name"), List: []Expr{&Const{Val: value.Str("x")}, NewCol("r", "cal")}},
	}
	cols := Columns(e)
	if len(cols) != 2 {
		t.Fatalf("Columns = %v (want cal, name deduped)", cols)
	}
	n := 0
	Walk(e, func(Expr) { n++ })
	if n < 7 {
		t.Errorf("Walk visited %d nodes", n)
	}
	// Clone isolates mutation.
	s, _ := testRowSchema()
	c := Clone(e)
	mustBind(t, c, s)
	if cols[0].Idx != -1 {
		t.Error("Clone must not share Col nodes with original")
	}
}

func TestEvalBoolAndAll(t *testing.T) {
	_, row := testRowSchema()
	if b, err := EvalBool(&Const{Val: value.Null()}, row); err != nil || b {
		t.Errorf("EvalBool(NULL) = %v, %v", b, err)
	}
	if b, err := EvalBool(&Const{Val: value.Bool(true)}, row); err != nil || !b {
		t.Errorf("EvalBool(true) = %v, %v", b, err)
	}
	if AndAll() != nil {
		t.Error("AndAll() should be nil")
	}
	one := &Const{Val: value.Bool(true)}
	if AndAll(one) != one {
		t.Error("AndAll(x) should be x")
	}
	both := AndAll(one, &Const{Val: value.Bool(false)})
	if b, _ := EvalBool(both, nil); b {
		t.Error("true AND false should be false")
	}
	if AndAll(nil, one) != one {
		t.Error("AndAll skips nils")
	}
}

// Property: LIKE with pattern == the string itself (no wildcards in it)
// always matches; appending % still matches.
func TestPropLikeSelfMatch(t *testing.T) {
	f := func(raw string) bool {
		s := ""
		for _, r := range raw { // strip wildcards from the generated string
			if r != '%' && r != '_' {
				s += string(r)
			}
		}
		self := &Like{X: &Const{Val: value.Str(s)}, Pattern: &Const{Val: value.Str(s)}}
		v1, err1 := self.Eval(nil)
		pre := &Like{X: &Const{Val: value.Str(s)}, Pattern: &Const{Val: value.Str(s + "%")}}
		v2, err2 := pre.Eval(nil)
		return err1 == nil && err2 == nil && v1.Equal(value.Bool(true)) && v2.Equal(value.Bool(true))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan — NOT(a AND b) == (NOT a) OR (NOT b) under
// three-valued logic, for all 3x3 combinations.
func TestPropDeMorgan(t *testing.T) {
	vals := []value.V{value.Bool(true), value.Bool(false), value.Null()}
	for _, a := range vals {
		for _, b := range vals {
			lhs := evalV(t, &Not{X: &Binary{Op: OpAnd, L: &Const{Val: a}, R: &Const{Val: b}}}, nil)
			rhs := evalV(t, &Binary{Op: OpOr, L: &Not{X: &Const{Val: a}}, R: &Not{X: &Const{Val: b}}}, nil)
			if lhs.IsNull() != rhs.IsNull() || (!lhs.IsNull() && !lhs.Equal(rhs)) {
				t.Errorf("De Morgan fails for %v, %v: %v vs %v", a, b, lhs, rhs)
			}
		}
	}
}

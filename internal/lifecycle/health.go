package lifecycle

import (
	"sort"
	"sync"
	"time"
)

// Health tracks per-subsystem degradation state for a serving front
// end's /healthz endpoint. Subsystems report degradation events as they
// degrade a query (e.g. "store: load failed; tree rebuilt"); a fully
// clean solve clears the board, since one healthy end-to-end query
// exercises the main path. The registry never gates queries — it is an
// observability surface over the degradation ladder, not a breaker.
//
// The zero value is not usable; construct with NewHealth.
type Health struct {
	mu   sync.Mutex
	subs map[string]*SubsystemHealth
	now  func() time.Time // test hook
}

// SubsystemHealth is the point-in-time state of one subsystem.
type SubsystemHealth struct {
	// OK is false while the most recent signal for the subsystem was a
	// degradation event.
	OK bool `json:"ok"`
	// Reason is the most recent degradation detail, empty when OK.
	Reason string `json:"reason,omitempty"`
	// Since is when the subsystem entered its current state.
	Since time.Time `json:"since"`
	// Events counts degradation events since construction (it survives
	// recoveries, so operators can spot flapping).
	Events int64 `json:"events"`
}

// NewHealth builds an empty health registry.
func NewHealth() *Health {
	return &Health{subs: make(map[string]*SubsystemHealth), now: time.Now}
}

// SetClock overrides the registry's time source (tests).
func (h *Health) SetClock(now func() time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.now = now
}

// Report records a degradation event for subsystem sub with a detail
// string, marking it not-OK.
func (h *Health) Report(sub, reason string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.subs[sub]
	if s == nil {
		s = &SubsystemHealth{OK: true, Since: h.now()}
		h.subs[sub] = s
	}
	if s.OK {
		s.Since = h.now()
	}
	s.OK = false
	s.Reason = reason
	s.Events++
}

// ClearAll marks every tracked subsystem healthy again, preserving the
// event counters. Called after a fully clean solve.
func (h *Health) ClearAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, s := range h.subs {
		if !s.OK {
			s.OK = true
			s.Reason = ""
			s.Since = h.now()
		}
	}
}

// Snapshot returns a copy of the per-subsystem states.
func (h *Health) Snapshot() map[string]SubsystemHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]SubsystemHealth, len(h.subs))
	for name, s := range h.subs {
		out[name] = *s
	}
	return out
}

// Degraded reports whether any subsystem is currently not-OK, along
// with the sorted list of "sub: reason" strings for those that are.
func (h *Health) Degraded() (bool, []string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var reasons []string
	for name, s := range h.subs {
		if !s.OK {
			reasons = append(reasons, name+": "+s.Reason)
		}
	}
	sort.Strings(reasons)
	return len(reasons) > 0, reasons
}

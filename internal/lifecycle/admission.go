package lifecycle

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Controller is a server-side admission controller: it bounds the
// number of solves in flight, parks excess arrivals in a bounded FIFO
// wait queue, and sheds with ErrAdmission once the queue is full or
// the server is draining. Fairness is strict arrival order — a waiter
// is granted the slot freed by a finishing solve before any newcomer.
//
// The zero value is not usable; construct with NewController.
type Controller struct {
	mu          sync.Mutex
	maxInFlight int
	maxQueue    int
	inFlight    int
	queue       []*waiter
	draining    bool
	drainC      chan struct{} // closed by BeginDrain

	admitted uint64
	shed     uint64
	ewmaMs   float64        // exponentially-weighted solve duration, for Retry-After
	jitter   func() float64 // uniform [0,1) source for Retry-After spread
}

type waiter struct {
	ready chan struct{} // closed when a slot is granted
}

// NewController builds a controller admitting at most maxInFlight
// concurrent solves with at most maxQueue queued waiters. Non-positive
// arguments select 1 in flight and an empty queue (pure shed-on-busy).
func NewController(maxInFlight, maxQueue int) *Controller {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Controller{
		maxInFlight: maxInFlight,
		maxQueue:    maxQueue,
		drainC:      make(chan struct{}),
		jitter:      rand.Float64,
	}
}

// Acquire blocks until a solve slot is granted, the context is done,
// or the query is shed. On success it returns a release function the
// caller must invoke exactly once when the solve finishes (defer it).
// Shedding returns an ErrAdmission wrap; cancellation while queued
// returns an ErrCanceled wrap.
func (c *Controller) Acquire(ctx context.Context) (func(), error) {
	c.mu.Lock()
	if c.draining {
		c.shed++
		c.mu.Unlock()
		return nil, Shed("draining")
	}
	if c.inFlight < c.maxInFlight && len(c.queue) == 0 {
		c.inFlight++
		c.admitted++
		c.mu.Unlock()
		return c.releaseFunc(), nil
	}
	if len(c.queue) >= c.maxQueue {
		c.shed++
		c.mu.Unlock()
		return nil, Shed("queue full")
	}
	w := &waiter{ready: make(chan struct{})}
	c.queue = append(c.queue, w)
	c.mu.Unlock()

	select {
	case <-w.ready:
		return c.releaseFunc(), nil
	case <-ctx.Done():
		if c.abandon(w) {
			return nil, Canceled(ctx.Err())
		}
		// Granted concurrently with the cancellation: hand the slot to
		// the next waiter and report the cancel.
		c.releaseFunc()()
		return nil, Canceled(ctx.Err())
	case <-c.drainC:
		if c.abandon(w) {
			return nil, Shed("draining")
		}
		c.releaseFunc()()
		return nil, Shed("draining")
	}
}

// abandon removes a still-queued waiter; false means the waiter was
// already granted a slot (its ready channel is closed).
func (c *Controller) abandon(w *waiter) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, q := range c.queue {
		if q == w {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return true
		}
	}
	return false
}

// releaseFunc builds the one-shot release closure for a granted slot.
func (c *Controller) releaseFunc() func() {
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			dur := time.Since(start)
			c.mu.Lock()
			defer c.mu.Unlock()
			ms := float64(dur.Milliseconds())
			if c.ewmaMs == 0 {
				c.ewmaMs = ms
			} else {
				c.ewmaMs = 0.8*c.ewmaMs + 0.2*ms
			}
			c.inFlight--
			if !c.draining && len(c.queue) > 0 && c.inFlight < c.maxInFlight {
				next := c.queue[0]
				c.queue = c.queue[1:]
				c.inFlight++
				c.admitted++
				close(next.ready)
			}
		})
	}
}

// BeginDrain stops admitting: every queued waiter is shed immediately
// and every future Acquire fails with ErrAdmission. In-flight solves
// keep their slots; follow with Drain to wait for them.
func (c *Controller) BeginDrain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return
	}
	c.draining = true
	close(c.drainC)
}

// Drain blocks until every in-flight solve has released its slot or
// the context expires; it implies BeginDrain. The error is nil on a
// clean drain and the context's error when the deadline cut it short.
func (c *Controller) Drain(ctx context.Context) error {
	c.BeginDrain()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		c.mu.Lock()
		idle := c.inFlight == 0
		c.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Retry-After bounds: hints are jittered ±25% and then clamped to
// [retryAfterFloor, retryAfterCeil] so a shed burst does not send every
// client back at the same instant.
const (
	retryAfterFloor = time.Second
	retryAfterCeil  = 30 * time.Second
)

// RetryAfter hints how long a shed client should wait before retrying:
// the smoothed solve duration scaled by queue pressure, spread with
// ±25% jitter, clamped to [1s, 30s]. The jitter decorrelates clients
// that were shed by the same burst — without it they all retry in
// lockstep and re-create the burst. With no history it returns a
// jittered floor-to-1.25s hint.
func (c *Controller) RetryAfter() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	ms := c.ewmaMs
	if ms <= 0 {
		ms = float64(retryAfterFloor.Milliseconds())
	}
	// A shed client is behind maxQueue waiters and maxInFlight solves;
	// one smoothed solve-time per in-flight "wave" approximates the
	// backlog clearing time.
	waves := 1 + len(c.queue)/c.maxInFlight
	est := ms * float64(waves)
	est *= 0.75 + 0.5*c.jitter() // uniform in [0.75, 1.25) of the estimate
	d := time.Duration(est) * time.Millisecond
	if d < retryAfterFloor {
		return retryAfterFloor
	}
	if d > retryAfterCeil {
		return retryAfterCeil
	}
	return d
}

// ControllerStats is a point-in-time snapshot of the controller.
type ControllerStats struct {
	InFlight int    // solves currently holding a slot
	Queued   int    // waiters parked in the FIFO queue
	Admitted uint64 // total slots granted since construction
	Shed     uint64 // total queries turned away
	Draining bool   // BeginDrain has been called
}

// Stats snapshots the controller's counters.
func (c *Controller) Stats() ControllerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ControllerStats{
		InFlight: c.inFlight,
		Queued:   len(c.queue),
		Admitted: c.admitted,
		Shed:     c.shed,
		Draining: c.draining,
	}
}

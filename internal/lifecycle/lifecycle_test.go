package lifecycle

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestErrorTaxonomy(t *testing.T) {
	cases := []struct {
		err      error
		sentinel error
	}{
		{Canceled(context.Canceled), ErrCanceled},
		{Canceled(context.DeadlineExceeded), ErrCanceled},
		{Canceled(nil), ErrCanceled},
		{Infeasible("COUNT lower bound 5 > upper bound 2"), ErrInfeasible},
		{Infeasible(""), ErrInfeasible},
		{BudgetExceeded(2<<20, 1<<20), ErrBudgetExceeded},
		{Shed("queue full"), ErrAdmission},
		{Shed(""), ErrAdmission},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.sentinel) {
			t.Errorf("%v does not match its sentinel %v", c.err, c.sentinel)
		}
	}
	// Causes stay visible through the wrap.
	if !errors.Is(Canceled(context.Canceled), context.Canceled) {
		t.Error("Canceled(context.Canceled) lost its cause")
	}
	if !errors.Is(Canceled(context.DeadlineExceeded), context.DeadlineExceeded) {
		t.Error("Canceled(context.DeadlineExceeded) lost its cause")
	}
	// Sentinels stay distinct.
	if errors.Is(Shed("x"), ErrCanceled) || errors.Is(Infeasible("x"), ErrBudgetExceeded) {
		t.Error("sentinels bleed into each other")
	}
}

func TestContextErr(t *testing.T) {
	if err := ContextErr(nil); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	if err := ContextErr(context.Background()); err != nil {
		t.Fatalf("live ctx: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ContextErr(ctx)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx mapped to %v", err)
	}
}

func TestBudgetExceededMessage(t *testing.T) {
	err := BudgetExceeded(3<<30, 512<<20)
	for _, want := range []string{"3.0 GB", "512.0 MB"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("message %q missing %q", err, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512 B",
		2 << 10: "2.0 KB",
		3 << 20: "3.0 MB",
		5 << 30: "5.0 GB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestControllerAdmitAndRelease(t *testing.T) {
	c := NewController(2, 0)
	rel1, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.InFlight != 2 || st.Admitted != 2 {
		t.Fatalf("stats after two acquires: %+v", st)
	}
	// Third arrival with an empty queue is shed.
	if _, err := c.Acquire(context.Background()); !errors.Is(err, ErrAdmission) {
		t.Fatalf("expected shed, got %v", err)
	}
	rel1()
	rel1() // double release is a no-op
	if st := c.Stats(); st.InFlight != 1 || st.Shed != 1 {
		t.Fatalf("stats after release: %+v", st)
	}
	rel2()
}

func TestControllerQueueFIFO(t *testing.T) {
	c := NewController(1, 2)
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			// Stagger arrivals so the FIFO order is deterministic.
			time.Sleep(time.Duration(i) * 20 * time.Millisecond)
			r, err := c.Acquire(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			r()
		}(i)
	}
	close(start)
	time.Sleep(80 * time.Millisecond) // both queued now
	if st := c.Stats(); st.Queued != 2 {
		t.Fatalf("expected 2 queued, got %+v", st)
	}
	// Queue full: next arrival is shed.
	if _, err := c.Acquire(context.Background()); !errors.Is(err, ErrAdmission) {
		t.Fatalf("expected shed with full queue, got %v", err)
	}
	rel()
	wg.Wait()
	close(order)
	var got []int
	for i := range order {
		got = append(got, i)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("grant order %v, want [1 2]", got)
	}
}

func TestControllerCancelWhileQueued(t *testing.T) {
	c := NewController(1, 4)
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx)
		done <- err
	}()
	for c.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	err = <-done
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("queued cancel returned %v", err)
	}
	if st := c.Stats(); st.Queued != 0 {
		t.Fatalf("abandoned waiter still queued: %+v", st)
	}
	rel()
	// The slot is free again for the next arrival.
	rel2, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2()
}

func TestControllerDrain(t *testing.T) {
	c := NewController(1, 4)
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		_, err := c.Acquire(context.Background())
		queued <- err
	}()
	for c.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	c.BeginDrain()
	if err := <-queued; !errors.Is(err, ErrAdmission) {
		t.Fatalf("queued waiter at drain returned %v", err)
	}
	// New arrivals are shed while draining.
	if _, err := c.Acquire(context.Background()); !errors.Is(err, ErrAdmission) {
		t.Fatalf("acquire while draining returned %v", err)
	}
	// Drain waits for the in-flight solve.
	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		drainErr <- c.Drain(ctx)
	}()
	time.Sleep(20 * time.Millisecond)
	rel()
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := c.Stats(); !st.Draining || st.InFlight != 0 {
		t.Fatalf("post-drain stats: %+v", st)
	}
}

func TestControllerDrainDeadline(t *testing.T) {
	c := NewController(1, 0)
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := c.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain with stuck solve returned %v", err)
	}
}

func TestRetryAfterBounds(t *testing.T) {
	c := NewController(1, 0)
	if got := c.RetryAfter(); got < time.Second || got >= 1250*time.Millisecond {
		t.Fatalf("no-history hint %v, want [1s, 1.25s)", got)
	}
	rel, _ := c.Acquire(context.Background())
	rel()
	got := c.RetryAfter()
	if got < time.Second || got > 30*time.Second {
		t.Fatalf("hint %v outside [1s, 30s]", got)
	}
	// A huge smoothed duration clamps to 30s even at maximum jitter.
	c.mu.Lock()
	c.ewmaMs = 10 * 60 * 1000
	c.mu.Unlock()
	if got := c.RetryAfter(); got != 30*time.Second {
		t.Fatalf("hint %v, want 30s clamp", got)
	}
	// And the floor holds at minimum jitter.
	c.mu.Lock()
	c.ewmaMs = 1
	c.jitter = func() float64 { return 0 }
	c.mu.Unlock()
	if got := c.RetryAfter(); got != time.Second {
		t.Fatalf("hint %v, want 1s floor", got)
	}
}

// TestRetryAfterJitterSpreads checks shed clients are decorrelated: the
// same controller state yields different hints across calls.
func TestRetryAfterJitterSpreads(t *testing.T) {
	c := NewController(1, 0)
	c.mu.Lock()
	c.ewmaMs = 10 * 1000 // 10s estimate, far from both clamps
	c.mu.Unlock()
	seen := make(map[time.Duration]bool)
	for i := 0; i < 32; i++ {
		d := c.RetryAfter()
		if d < 7500*time.Millisecond || d >= 12500*time.Millisecond {
			t.Fatalf("hint %v outside jitter band [7.5s, 12.5s)", d)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Fatalf("32 hints collapsed to %d distinct values", len(seen))
	}
}

func TestHealthRegistry(t *testing.T) {
	h := NewHealth()
	if deg, _ := h.Degraded(); deg {
		t.Fatal("fresh registry reports degraded")
	}
	h.Report("store", "load failed; tree rebuilt")
	h.Report("cache", "probe failed")
	h.Report("store", "save failed")
	deg, reasons := h.Degraded()
	if !deg || len(reasons) != 2 {
		t.Fatalf("degraded=%v reasons=%v", deg, reasons)
	}
	if reasons[0] != "cache: probe failed" {
		t.Fatalf("reasons not sorted: %v", reasons)
	}
	snap := h.Snapshot()
	if snap["store"].Events != 2 || snap["store"].OK {
		t.Fatalf("store state %+v", snap["store"])
	}
	h.ClearAll()
	if deg, _ := h.Degraded(); deg {
		t.Fatal("degraded after ClearAll")
	}
	if snap := h.Snapshot(); snap["store"].Events != 2 {
		t.Fatalf("ClearAll lost event counter: %+v", snap["store"])
	}
}

func TestInternalWrap(t *testing.T) {
	err := Internal(errors.New("panic: boom"))
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("Internal() does not match ErrInternal: %v", err)
	}
	if !errors.Is(Internal(nil), ErrInternal) {
		t.Fatal("Internal(nil) does not match ErrInternal")
	}
}

// TestControllerStress hammers Acquire/release from many goroutines
// (run under -race) and checks the in-flight bound is never violated.
func TestControllerStress(t *testing.T) {
	const workers = 32
	c := NewController(4, workers)
	var over sync.Once
	var violated bool
	var active int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				rel, err := c.Acquire(context.Background())
				if err != nil {
					continue
				}
				mu.Lock()
				active++
				if active > 4 {
					over.Do(func() { violated = true })
				}
				mu.Unlock()
				time.Sleep(time.Microsecond)
				mu.Lock()
				active--
				mu.Unlock()
				rel()
			}
		}()
	}
	wg.Wait()
	if violated {
		t.Fatal("in-flight bound violated")
	}
	if st := c.Stats(); st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("leaked slots: %+v", st)
	}
}

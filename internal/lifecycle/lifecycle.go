// Package lifecycle is the query-lifecycle layer: the typed error
// taxonomy every surface reports through, and the admission controller
// that bounds concurrent solves on a serving front end.
//
// The package sits below internal/core and above nothing — it imports
// only the standard library, so the solver layers (milp, sketch,
// search) and the public API can all share one error vocabulary
// without cycles. Callers classify outcomes with errors.Is:
//
//	res, err := sys.QueryContext(ctx, q)
//	switch {
//	case errors.Is(err, lifecycle.ErrAdmission):      // shed: retry later
//	case errors.Is(err, lifecycle.ErrCanceled):       // caller gave up
//	case errors.Is(err, lifecycle.ErrBudgetExceeded): // too big to admit
//	case errors.Is(err, lifecycle.ErrInfeasible):     // proven: no package
//	}
//
// Wrapped causes stay visible: a canceled query satisfies both
// errors.Is(err, lifecycle.ErrCanceled) and errors.Is(err,
// context.Canceled).
package lifecycle

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors for the query-lifecycle outcomes. They are
// package-level variables so errors.Is works across process layers;
// every helper below wraps them, never replaces them.
var (
	// ErrInfeasible reports a *proven* empty answer: the exact solver
	// closed the search space (or the cardinality bounds are
	// contradictory) and no package satisfies the query. A heuristic
	// strategy merely failing to find a package does not qualify.
	ErrInfeasible = errors.New("infeasible: no package satisfies the query")

	// ErrCanceled reports that the query stopped before completing
	// because its context was canceled or its deadline passed. Partial
	// work has been discarded; shared caches are left consistent.
	ErrCanceled = errors.New("query canceled")

	// ErrBudgetExceeded reports that the planner's memory estimate for
	// the chosen strategy exceeds the per-query budget, so the solve was
	// rejected at admission rather than risking the process.
	ErrBudgetExceeded = errors.New("memory budget exceeded")

	// ErrAdmission reports that the admission controller shed the query:
	// the server is at capacity (or draining) and the wait queue is
	// full. The client should retry after the hinted delay.
	ErrAdmission = errors.New("admission: server at capacity")

	// ErrInternal reports an unexpected engine failure — typically a
	// recovered panic in a solve path. The query produced no answer,
	// but the process and its shared state (caches, admission slots)
	// remain consistent; the client may retry.
	ErrInternal = errors.New("internal: query failed unexpectedly")
)

// Canceled wraps a context error (or any cause) so the result matches
// both ErrCanceled and the original cause under errors.Is. A nil cause
// returns ErrCanceled itself.
func Canceled(cause error) error {
	if cause == nil {
		return ErrCanceled
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// Infeasible wraps ErrInfeasible with a human-readable detail string,
// e.g. the contradiction the bounds derivation found.
func Infeasible(detail string) error {
	if detail == "" {
		return ErrInfeasible
	}
	return fmt.Errorf("%w (%s)", ErrInfeasible, detail)
}

// BudgetExceeded wraps ErrBudgetExceeded with the estimate and budget
// that collided, both in bytes.
func BudgetExceeded(estimate, budget int64) error {
	return fmt.Errorf("%w: estimated %s exceeds budget %s",
		ErrBudgetExceeded, FormatBytes(estimate), FormatBytes(budget))
}

// Shed wraps ErrAdmission with the reason a query was turned away
// ("queue full", "draining").
func Shed(reason string) error {
	if reason == "" {
		return ErrAdmission
	}
	return fmt.Errorf("%w (%s)", ErrAdmission, reason)
}

// Internal wraps a cause (usually a recovered panic rendered as an
// error) so the result matches ErrInternal under errors.Is. A nil
// cause returns ErrInternal itself.
func Internal(cause error) error {
	if cause == nil {
		return ErrInternal
	}
	return fmt.Errorf("%w: %w", ErrInternal, cause)
}

// ContextErr classifies a context's error into the lifecycle taxonomy:
// nil stays nil, everything else becomes an ErrCanceled wrap (deadline
// expiry included — the caller distinguishes via errors.Is(err,
// context.DeadlineExceeded) when it matters).
func ContextErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return Canceled(err)
	}
	return nil
}

// FormatBytes renders a byte count with a binary-ish human unit, for
// error messages and EXPLAIN trails (1.5 MB, 12 KB, 180 B).
func FormatBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

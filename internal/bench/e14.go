package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/sketch"
)

// RunE14 is the serving-load experiment behind the lifecycle layer:
// concurrent clients push the running-example query through an
// admission controller (the same one pbserver mounts) over a warmed
// 1M-row partition tree, and the table reports throughput and the
// latency distribution per client count — plus a deliberately
// saturated row showing the controller shedding instead of queueing
// without bound.
//
//	clients  queries  shed  qps  p50  p95  p99
//
// Quick mode shrinks the table and the per-client query count so the
// experiment fits a CI smoke job.
func RunE14(cfg Config) error {
	n := 1000000
	clientSweeps := []int{1, 4, 16, 64}
	perClient := 8
	if cfg.Quick {
		n = 5000
		clientSweeps = []int{1, 4, 8}
		perClient = 4
	}
	fmt.Fprintf(cfg.Out, "== E14: query lifecycle under load (admission control, %d rows) ==\n", n)
	db, err := recipesDB(n, cfg.seed())
	if err != nil {
		return err
	}
	cache := sketch.NewCache(0)
	memo := core.NewFingerprintMemo()
	opts := core.Options{Strategy: core.SketchRefineStrategy, Seed: cfg.seed(),
		SketchCache: cache, SketchMemo: memo}
	prep, err := core.Prepare(db, MealQuery)
	if err != nil {
		return err
	}
	prep.SketchCache = cache
	prep.SketchMemo = memo
	// Warm the partition tree once: the load rows then measure serving
	// latency, not the offline partitioning step.
	if _, err := prep.Run(opts); err != nil {
		return err
	}

	tw := newTable(cfg.Out, "clients", "inflight/queue", "queries", "shed", "qps", "p50", "p95", "p99")
	for _, clients := range clientSweeps {
		adm := lifecycle.NewController(4, 16)
		if err := runE14Row(tw, prep, opts, adm, clients, perClient, "4/16"); err != nil {
			return err
		}
	}
	// Saturation row: one slot, no queue — most arrivals must shed.
	adm := lifecycle.NewController(1, 0)
	if err := runE14Row(tw, prep, opts, adm, 16, perClient, "1/0"); err != nil {
		return err
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "(claim check: bounded in-flight keeps tail latency flat as clients grow; at saturation the controller sheds instead of queueing without bound)")
	return nil
}

// runE14Row drives clients×perClient queries through the controller
// and prints one table row. Shed queries (ErrAdmission) count toward
// the shed column, not the latency distribution.
func runE14Row(tw io.Writer, prep *core.Prepared, opts core.Options,
	adm *lifecycle.Controller, clients, perClient int, admLabel string) error {
	var mu sync.Mutex
	var lats []time.Duration
	var shed int
	var firstErr error
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < perClient; q++ {
				qStart := time.Now()
				release, err := adm.Acquire(context.Background())
				if err != nil {
					mu.Lock()
					if errors.Is(err, lifecycle.ErrAdmission) {
						shed++
					} else if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				_, rerr := prep.RunContext(context.Background(), opts)
				release()
				mu.Lock()
				if rerr != nil && firstErr == nil {
					firstErr = rerr
				}
				lats = append(lats, time.Since(qStart))
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return firstErr
	}
	qps := float64(len(lats)) / elapsed.Seconds()
	fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%.1f\t%s\t%s\t%s\n",
		clients, admLabel, len(lats), shed, qps,
		ms(percentile(lats, 0.50)), ms(percentile(lats, 0.95)), ms(percentile(lats, 0.99)))
	return nil
}

// percentile returns the p-quantile of the latency sample (nearest
// rank); zero for an empty sample.
func percentile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

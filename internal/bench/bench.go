// Package bench is the experiment harness behind cmd/pbench and the
// root-level Go benchmarks. The 2014 demo paper contains one figure
// (the interface) and no numeric tables, so — per DESIGN.md §4 — each
// experiment reproduces one quantitative claim from the paper's text:
//
//	F1  §Fig.1  the interface: template, suggestions, 2-D summary
//	E1  §4.1    cardinality pruning shrinks 2^n to Σ C(n,k), losslessly
//	E2  §4,7    strategy runtimes and their crossovers
//	E3  §4.2    k-replacement SQL joins blow up with k
//	E4  §5      m packages need m re-solves with exclusion cuts
//	E5  §4.2    local search trades optimality for speed
//	E6  §2      REPEAT changes feasibility and cost
//	E7  §5      diverse package results beat top-k on distance
//	E8  follow-up  SketchRefine: partitioned MILP vs exact at scale
//	E9  follow-up  hierarchical SketchRefine + cross-query partition cache
//	E10 follow-up  parallel SketchRefine pipeline + on-disk partition trees
//	E11 follow-up  full-grammar SketchRefine: AVG/MIN/MAX + disjunctions vs exact
//	E12 follow-up  incremental tree maintenance: full rebuild vs ApplyDelta per write batch
//	E13 follow-up  cost-based planner: planner-chosen strategy/knobs vs hand-set defaults
//	E14 follow-up  query lifecycle under load: QPS and p50/p95/p99 behind admission control
//	E15 follow-up  certified dual bounds: LP bound-pass overhead + anytime early-exit savings
//	E16 follow-up  band-aware bound tightening: legacy envelope vs staged pipeline on BETWEEN-heavy queries
//
// Each Run* prints an aligned table to cfg.Out; EXPERIMENTS.md records
// the measured shapes against the paper's claims.
package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/minidb"
)

// Config parameterizes a harness run.
type Config struct {
	Out   io.Writer
	Quick bool  // smaller sweeps for CI / -short
	Seed  int64 // dataset seed
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 42
	}
	return c.Seed
}

// MealQuery is the paper's running example, used across experiments.
const MealQuery = `
	SELECT PACKAGE(R) AS P
	FROM recipes R
	WHERE R.gluten = 'free'
	SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500
	MAXIMIZE SUM(P.protein)`

// recipesDB builds a database with n recipes.
func recipesDB(n int, seed int64) (*minidb.DB, error) {
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: n, Seed: seed}); err != nil {
		return nil, err
	}
	return db, nil
}

func newTable(out io.Writer, headers ...string) *tabwriter.Writer {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	for i, h := range headers {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	return tw
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}

// RunAll executes every experiment in order.
func RunAll(cfg Config) error {
	steps := []struct {
		name string
		fn   func(Config) error
	}{
		{"F1", RunF1}, {"E1", RunE1}, {"E2", RunE2}, {"E3", RunE3},
		{"E4", RunE4}, {"E5", RunE5}, {"E6", RunE6}, {"E7", RunE7},
		{"E8", RunE8}, {"E9", RunE9}, {"E10", RunE10}, {"E11", RunE11},
		{"E12", RunE12}, {"E13", RunE13}, {"E14", RunE14}, {"E15", RunE15},
		{"E16", RunE16},
	}
	for _, s := range steps {
		if err := s.fn(cfg); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

// Run dispatches one experiment by id (e.g. "e3", "F1", "all").
func Run(id string, cfg Config) error {
	switch id {
	case "all", "ALL", "":
		return RunAll(cfg)
	case "f1", "F1":
		return RunF1(cfg)
	case "e1", "E1":
		return RunE1(cfg)
	case "e2", "E2":
		return RunE2(cfg)
	case "e3", "E3":
		return RunE3(cfg)
	case "e4", "E4":
		return RunE4(cfg)
	case "e5", "E5":
		return RunE5(cfg)
	case "e6", "E6":
		return RunE6(cfg)
	case "e7", "E7":
		return RunE7(cfg)
	case "e8", "E8":
		return RunE8(cfg)
	case "e9", "E9":
		return RunE9(cfg)
	case "e10", "E10":
		return RunE10(cfg)
	case "e11", "E11":
		return RunE11(cfg)
	case "e12", "E12":
		return RunE12(cfg)
	case "e13", "E13":
		return RunE13(cfg)
	case "e14", "E14":
		return RunE14(cfg)
	case "e15", "E15":
		return RunE15(cfg)
	case "e16", "E16":
		return RunE16(cfg)
	}
	return fmt.Errorf("bench: unknown experiment %q (f1, e1..e16, all)", id)
}

// evalTimed runs a query under options and reports elapsed wall time.
func evalTimed(db *minidb.DB, query string, opts core.Options) (*core.Result, time.Duration, error) {
	start := time.Now()
	res, err := core.Evaluate(db, query, opts)
	return res, time.Since(start), err
}

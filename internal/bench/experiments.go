package bench

import (
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"slices"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/explore"
	"repro/internal/minidb"
	"repro/internal/search"
	"repro/internal/sketch"
	"repro/internal/template"
	"repro/internal/translate"
	"repro/internal/value"
	"repro/internal/viz"
)

// RunF1 reproduces Figure 1: the package template with a sample
// package, constraint suggestions for a highlighted column, and the 2-D
// visual summary of the package space.
func RunF1(cfg Config) error {
	n := 500
	if cfg.Quick {
		n = 100
	}
	fmt.Fprintf(cfg.Out, "== F1: the PackageBuilder interface (Figure 1), %d recipes ==\n", n)
	db, err := recipesDB(n, cfg.seed())
	if err != nil {
		return err
	}
	ses, err := explore.NewSession(db, MealQuery, core.Options{Seed: cfg.seed()})
	if err != nil {
		return err
	}
	if _, err := ses.Refresh(); err != nil {
		return err
	}
	tpl, err := template.FromText(MealQuery)
	if err != nil {
		return err
	}
	tab, _ := db.Table("recipes")
	start := time.Now()
	tpl.Render(cfg.Out, tab.Schema, ses.Current(), []string{"name", "gluten", "calories", "protein", "fat"})
	sugg, err := ses.Suggest(explore.Highlight{Column: "fat", Row: -1})
	if err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "\nSuggestions for highlighted column \"fat\":")
	for _, sg := range sugg {
		fmt.Fprintf(cfg.Out, "  [%-9s] %-46s — %s\n", sg.Kind, sg.Text, sg.Why)
	}
	// Package space: several packages laid out on two dimensions.
	prep := ses.Prepared()
	res, err := prep.Run(core.Options{Limit: 8, Seed: cfg.seed()})
	if err != nil {
		return err
	}
	sum, err := viz.Summarize(prep, res.Packages, 0, false)
	if err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "\nPackage-space summary (@ = current, o = other packages):")
	sum.RenderASCII(cfg.Out, 56, 12)
	fmt.Fprintf(cfg.Out, "interface render time: %s\n", ms(time.Since(start)))
	return nil
}

// RunE1 reproduces the §4.1 claim: cardinality bounds shrink the search
// space from 2^n to Σ_{k=l..u} C(n,k) without losing any valid package.
func RunE1(cfg Config) error {
	sizes := []int{10, 14, 18, 22}
	if cfg.Quick {
		sizes = []int{10, 14}
	}
	fmt.Fprintln(cfg.Out, "== E1: §4.1 cardinality pruning — search-space reduction, no lost solutions ==")
	tw := newTable(cfg.Out, "n", "bounds", "2^n", "pruned-space", "reduction", "brute-nodes", "pruned-nodes", "packages", "lossless")
	for _, n := range sizes {
		db, err := recipesDB(n, cfg.seed())
		if err != nil {
			return err
		}
		prep, err := core.Prepare(db, MealQuery)
		if err != nil {
			return err
		}
		inst := prep.Instance
		brute, err := search.BruteForce(inst, search.Options{Limit: 1 << 30})
		if err != nil {
			return err
		}
		pruned, err := search.PrunedEnumerate(inst, search.Options{Limit: 1 << 30, NoObjBound: true})
		if err != nil {
			return err
		}
		lossless := len(brute.Packages) == len(pruned.Packages)
		bk := map[string]bool{}
		for _, p := range brute.Packages {
			bk[p.Key()] = true
		}
		for _, p := range pruned.Packages {
			if !bk[p.Key()] {
				lossless = false
			}
		}
		sp, full := res2space(prep)
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%.1fx\t%d\t%d\t%d\t%v\n",
			len(inst.Rows), inst.Bounds, full, sp,
			bigRatio(full, sp), brute.Examined, pruned.Examined,
			len(pruned.Packages), lossless)
	}
	return tw.Flush()
}

func res2space(prep *core.Prepared) (pruned, full string) {
	// reuse prune.SpaceSize through a tiny evaluation
	res, err := prep.Run(core.Options{Strategy: core.PrunedEnum, Limit: 1})
	if err != nil || res.Stats.SpaceFull == nil {
		return "?", "?"
	}
	return res.Stats.SpacePruned.String(), res.Stats.SpaceFull.String()
}

func bigRatio(fullS, prunedS string) float64 {
	var full, pruned float64
	fmt.Sscanf(fullS, "%g", &full)
	fmt.Sscanf(prunedS, "%g", &pruned)
	if pruned == 0 {
		return math.Inf(1)
	}
	return full / pruned
}

// RunE2 compares the evaluation strategies across data sizes: brute
// force collapses quickly, pruned enumeration extends the exact range,
// the MILP solver scales to thousands of tuples, and local search stays
// fast but gives no optimality guarantee.
func RunE2(cfg Config) error {
	sizes := []int{12, 16, 20, 100, 1000, 5000}
	if cfg.Quick {
		sizes = []int{12, 16, 100}
	}
	fmt.Fprintln(cfg.Out, "== E2: strategy runtimes across n (meal query) ==")
	tw := newTable(cfg.Out, "n", "strategy", "time", "objective", "exact", "nodes")
	for _, n := range sizes {
		db, err := recipesDB(n, cfg.seed())
		if err != nil {
			return err
		}
		type run struct {
			st core.Strategy
			ok bool
		}
		runs := []run{
			{core.BruteForceStrategy, n <= 20},
			{core.PrunedEnum, n <= 200},
			{core.Solver, true},
			{core.LocalSearchStrategy, true},
		}
		for _, r := range runs {
			if !r.ok {
				fmt.Fprintf(tw, "%d\t%s\t-\t-\t-\t- (skipped: intractable)\n", n, r.st)
				continue
			}
			res, elapsed, err := evalTimed(db, MealQuery, core.Options{
				Strategy: r.st, Seed: cfg.seed(), Restarts: 4,
			})
			if err != nil {
				return fmt.Errorf("n=%d %s: %w", n, r.st, err)
			}
			obj := math.NaN()
			if len(res.Packages) > 0 {
				obj = res.Packages[0].Objective
			}
			fmt.Fprintf(tw, "%d\t%s\t%s\t%.0f\t%v\t%d\n",
				n, r.st, ms(elapsed), obj, res.Stats.Exact, res.Stats.Nodes)
		}
	}
	return tw.Flush()
}

// RunE3 measures the §4.2 replacement query: the neighbourhood of k
// simultaneous swaps is one SQL query joining the package against the
// candidate relation k times each — a 2k-way join whose cost explodes
// with k.
func RunE3(cfg Config) error {
	type point struct{ n, k int }
	points := []point{
		{100, 1}, {100, 2}, {100, 3},
		{500, 1}, {500, 2},
		{1000, 1}, {1000, 2},
	}
	if cfg.Quick {
		points = []point{{100, 1}, {100, 2}, {300, 1}, {300, 2}}
	}
	fmt.Fprintln(cfg.Out, "== E3: §4.2 k-replacement neighbourhood via SQL (2k-way join) ==")
	tw := newTable(cfg.Out, "n", "k", "join-width", "neighbourhood", "time")
	for _, pt := range points {
		db, err := recipesDB(pt.n, cfg.seed())
		if err != nil {
			return err
		}
		prep, err := core.Prepare(db, MealQuery)
		if err != nil {
			return err
		}
		inst := prep.Instance
		// P0: the three heaviest candidates (almost surely violates the
		// 2500-calorie cap, so swaps that repair it exist).
		mult := make([]int, len(inst.Rows))
		heavy := topCaloriesIdx(inst, 3)
		for _, i := range heavy {
			mult[i] = 1
		}
		_, neigh, elapsed, err := search.ReplacementProbe(inst, db, mult, pt.k)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d\t%d-way\t%d\t%s\n", pt.n, pt.k, 2*pt.k, neigh, ms(elapsed))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "(shape check: time grows roughly ×n per +1 in k — the paper's intractability claim)")
	return nil
}

func topCaloriesIdx(inst *search.Instance, k int) []int {
	type pair struct {
		idx int
		cal float64
	}
	var ps []pair
	calOrd := 5 // calories column in the recipes schema
	for i, row := range inst.Rows {
		c, _ := row[calOrd].AsFloat()
		ps = append(ps, pair{i, c})
	}
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].cal > ps[j-1].cal; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
	var out []int
	for i := 0; i < k && i < len(ps); i++ {
		out = append(out, ps[i].idx)
	}
	return out
}

// RunE4 reproduces the §5 "solver limitations" claim: a constraint
// solver returns one package; the m-th distinct package costs an m-th
// re-solve with an exclusion cut.
func RunE4(cfg Config) error {
	n, m := 1000, 10
	if cfg.Quick {
		n, m = 200, 5
	}
	fmt.Fprintf(cfg.Out, "== E4: §5 multiple packages via exclusion cuts (n=%d) ==\n", n)
	db, err := recipesDB(n, cfg.seed())
	if err != nil {
		return err
	}
	prep, err := core.Prepare(db, MealQuery)
	if err != nil {
		return err
	}
	model, err := translate.Translate(prep.Analysis, prep.Instance.Rows, prep.Instance.IDs)
	if err != nil {
		return err
	}
	tw := newTable(cfg.Out, "package#", "solve-time", "cumulative", "objective", "distinct")
	seen := map[string]bool{}
	cumulative := time.Duration(0)
	for i := 1; i <= m; i++ {
		start := time.Now()
		res, err := model.Solve()
		solveTime := time.Since(start)
		cumulative += solveTime
		if err != nil {
			return err
		}
		if res.Solution.X == nil {
			fmt.Fprintf(tw, "%d\t%s\t%s\t(no more packages)\t-\n", i, ms(solveTime), ms(cumulative))
			break
		}
		key := fmt.Sprint(res.Multiplicities)
		distinct := !seen[key]
		seen[key] = true
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.0f\t%v\n",
			i, ms(solveTime), ms(cumulative), res.Solution.Objective, distinct)
		if err := model.AddExclusionCut(res.Multiplicities); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// RunE5 quantifies the §4.2 caveat: local search is fast but "there is
// no guarantee that all valid solutions will be found" — its objective
// approaches the exact optimum as restarts grow.
func RunE5(cfg Config) error {
	n := 200
	restarts := []int{1, 4, 16}
	if cfg.Quick {
		n = 100
		restarts = []int{1, 4}
	}
	fmt.Fprintf(cfg.Out, "== E5: local-search quality vs exact optimum (n=%d) ==\n", n)
	db, err := recipesDB(n, cfg.seed())
	if err != nil {
		return err
	}
	exact, exactTime, err := evalTimed(db, MealQuery, core.Options{Strategy: core.Solver, Seed: cfg.seed()})
	if err != nil {
		return err
	}
	if len(exact.Packages) == 0 {
		return fmt.Errorf("bench: E5 instance infeasible")
	}
	opt := exact.Packages[0].Objective
	tw := newTable(cfg.Out, "method", "restarts", "time", "objective", "ratio")
	fmt.Fprintf(tw, "solver (exact)\t-\t%s\t%.0f\t1.000\n", ms(exactTime), opt)
	for _, r := range restarts {
		res, elapsed, err := evalTimed(db, MealQuery, core.Options{
			Strategy: core.LocalSearchStrategy, Restarts: r, Seed: cfg.seed(),
		})
		if err != nil {
			return err
		}
		obj := 0.0
		if len(res.Packages) > 0 {
			obj = res.Packages[0].Objective
		}
		fmt.Fprintf(tw, "local search\t%d\t%s\t%.0f\t%.3f\n", r, ms(elapsed), obj, obj/opt)
	}
	return tw.Flush()
}

// RunE6 exercises §2's REPEAT: raising the multiplicity bound turns
// infeasible queries feasible and improves objectives, at growing
// search cost.
func RunE6(cfg Config) error {
	n := 30
	if cfg.Quick {
		n = 20
	}
	fmt.Fprintf(cfg.Out, "== E6: REPEAT semantics (n=%d, COUNT(*)=5, demanding protein total) ==\n", n)
	db, err := recipesDB(n, cfg.seed())
	if err != nil {
		return err
	}
	// Find a protein demand between "top-5 distinct" and "5 x best", so
	// repetition visibly changes feasibility.
	prep, err := core.Prepare(db, `SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 5 MAXIMIZE SUM(P.protein)`)
	if err != nil {
		return err
	}
	best5, err := prep.Run(core.Options{Strategy: core.Solver})
	if err != nil {
		return err
	}
	demand := math.Floor(best5.Packages[0].Objective + 10)
	tw := newTable(cfg.Out, "REPEAT", "max-mult", "feasible", "objective", "time", "B&B-nodes")
	for _, repeat := range []int{0, 1, 2, 4} {
		q := fmt.Sprintf(`
			SELECT PACKAGE(R) AS P FROM recipes R REPEAT %d
			SUCH THAT COUNT(*) = 5 AND SUM(P.protein) >= %g
			MAXIMIZE SUM(P.protein)`, repeat, demand)
		if repeat == 0 {
			q = strings.Replace(q, " REPEAT 0", "", 1)
		}
		res, elapsed, err := evalTimed(db, q, core.Options{Strategy: core.Solver, Seed: cfg.seed()})
		if err != nil {
			return err
		}
		if len(res.Packages) == 0 {
			fmt.Fprintf(tw, "%d\t%d\tno\t-\t%s\t%d\n", repeat, repeat+1, ms(elapsed), res.Stats.Nodes)
			continue
		}
		fmt.Fprintf(tw, "%d\t%d\tyes\t%.0f\t%s\t%d\n",
			repeat, repeat+1, res.Packages[0].Objective, ms(elapsed), res.Stats.Nodes)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "(protein demand %.0f sits above the best distinct-5 package of %.0f)\n",
		demand, best5.Packages[0].Objective)
	return nil
}

// RunE7 implements the §5 future-work direction "diverse package
// results": greedy max-min selection versus plain top-k.
func RunE7(cfg Config) error {
	n, k := 500, 5
	if cfg.Quick {
		n = 120
	}
	fmt.Fprintf(cfg.Out, "== E7: diverse package results (n=%d, k=%d) ==\n", n, k)
	db, err := recipesDB(n, cfg.seed())
	if err != nil {
		return err
	}
	tw := newTable(cfg.Out, "selection", "time", "min-distance", "mean-distance", "best-objective")
	for _, diverse := range []bool{false, true} {
		res, elapsed, err := evalTimed(db, MealQuery, core.Options{
			Strategy: core.Solver, Limit: k, Diverse: diverse, Seed: cfg.seed(),
		})
		if err != nil {
			return err
		}
		var mults [][]int
		for _, p := range res.Packages {
			mults = append(mults, p.Mult)
		}
		name := "top-k"
		if diverse {
			name = "diverse (max-min)"
		}
		best := math.NaN()
		if len(res.Packages) > 0 {
			best = res.Packages[0].Objective
		}
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%.0f\n",
			name, ms(elapsed), core.MinPairwiseDistance(mults), core.MeanPairwiseDistance(mults), best)
	}
	return tw.Flush()
}

// RunE8 measures the follow-up papers' SketchRefine strategy (PVLDB
// 2016 "Scalable Package Queries") against the exact MILP solver as the
// relation grows: partition offline, solve a sketch over partition
// representatives, refine per partition. Exactness is traded for
// latency; the table reports the objective gap alongside the speedup.
func RunE8(cfg Config) error {
	sizes := []int{1000, 10000, 100000}
	if cfg.Quick {
		sizes = []int{1000, 5000}
	}
	fmt.Fprintln(cfg.Out, "== E8: SketchRefine vs exact MILP (meal query, partition size 64) ==")
	tw := newTable(cfg.Out, "n", "strategy", "time", "objective", "gap", "speedup", "partitions", "repaired")
	for _, n := range sizes {
		db, err := recipesDB(n, cfg.seed())
		if err != nil {
			return err
		}
		prep, err := core.Prepare(db, MealQuery)
		if err != nil {
			return err
		}
		exactStart := time.Now()
		exact, err := prep.Run(core.Options{Strategy: core.Solver, Seed: cfg.seed()})
		exactTime := time.Since(exactStart)
		if err != nil {
			return fmt.Errorf("n=%d solver: %w", n, err)
		}
		if len(exact.Packages) == 0 {
			fmt.Fprintf(tw, "%d\tsolver (exact)\t%s\t(infeasible)\t-\t-\t-\t-\n", n, ms(exactTime))
			continue
		}
		opt := exact.Packages[0].Objective
		fmt.Fprintf(tw, "%d\tsolver (exact)\t%s\t%.0f\t0.0%%\t1.0x\t-\t-\n", n, ms(exactTime), opt)
		skStart := time.Now()
		sk, err := prep.Run(core.Options{Strategy: core.SketchRefineStrategy, Seed: cfg.seed()})
		skTime := time.Since(skStart)
		if err != nil {
			return fmt.Errorf("n=%d sketch: %w", n, err)
		}
		if len(sk.Packages) == 0 {
			fmt.Fprintf(tw, "%d\tsketch-refine\t%s\t(no package)\t-\t-\t%d\t%d\n",
				n, ms(skTime), sk.Stats.Partitions, sk.Stats.Repaired)
			continue
		}
		obj := sk.Packages[0].Objective
		gap := (opt - obj) / opt * 100
		fmt.Fprintf(tw, "%d\tsketch-refine\t%s\t%.0f\t%.1f%%\t%.1fx\t%d\t%d\n",
			n, ms(skTime), obj, gap, float64(exactTime)/float64(skTime),
			sk.Stats.Partitions, sk.Stats.Repaired)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "(claim check: gap stays small while the speedup grows with n — one huge MILP becomes many tiny ones)")
	return nil
}

// RunE9 measures the PVLDB 2023 follow-up's hierarchical SketchRefine
// against the flat variant as the relation reaches 10⁶ tuples, plus a
// warm run against the cross-query partition cache: flat solves one
// sketch MILP with a variable per partition, the partition tree keeps
// the top-level MILP at about the square root of that, and a cache hit
// skips the offline partitioning step entirely.
func RunE9(cfg Config) error {
	sizes := []int{100000, 1000000}
	tau := 256
	if cfg.Quick {
		sizes = []int{20000, 50000}
		tau = 64
	}
	fmt.Fprintf(cfg.Out, "== E9: hierarchical SketchRefine + partition cache (meal query, τ=%d) ==\n", tau)
	tw := newTable(cfg.Out, "n", "variant", "time", "objective", "gap-vs-flat", "partitions", "top-vars", "cache")
	for _, n := range sizes {
		db, err := recipesDB(n, cfg.seed())
		if err != nil {
			return err
		}
		prep, err := core.Prepare(db, MealQuery)
		if err != nil {
			return err
		}
		cache := sketch.NewCache(0)
		type variant struct {
			name string
			opts core.Options
		}
		variants := []variant{
			{"flat", core.Options{Strategy: core.SketchRefineStrategy, Seed: cfg.seed(), SketchPartitionSize: tau}},
			{"hierarchical d=2", core.Options{Strategy: core.SketchRefineStrategy, Seed: cfg.seed(), SketchPartitionSize: tau, SketchDepth: 2, SketchCache: cache}},
			{"hier d=2 + warm cache", core.Options{Strategy: core.SketchRefineStrategy, Seed: cfg.seed(), SketchPartitionSize: tau, SketchDepth: 2, SketchCache: cache}},
		}
		flatObj := math.NaN()
		for _, v := range variants {
			start := time.Now()
			res, err := prep.Run(v.opts)
			elapsed := time.Since(start)
			if err != nil {
				return fmt.Errorf("n=%d %s: %w", n, v.name, err)
			}
			if len(res.Packages) == 0 {
				fmt.Fprintf(tw, "%d\t%s\t%s\t(no package)\t-\t%d\t%d\t%v\n",
					n, v.name, ms(elapsed), res.Stats.Partitions, res.Stats.SketchTopVars, res.Stats.SketchCacheHit)
				continue
			}
			obj := res.Packages[0].Objective
			if v.name == "flat" {
				flatObj = obj
			}
			gap := "-"
			if !math.IsNaN(flatObj) {
				gap = fmt.Sprintf("%.1f%%", (flatObj-obj)/flatObj*100)
			}
			fmt.Fprintf(tw, "%d\t%s\t%s\t%.0f\t%s\t%d\t%d\t%v\n",
				n, v.name, ms(elapsed), obj, gap,
				res.Stats.Partitions, res.Stats.SketchTopVars, res.Stats.SketchCacheHit)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "(claim check: the top-level MILP shrinks to ~√P variables with a small gap, and the warm-cache run drops the offline partitioning cost)")
	return nil
}

// RunE10 measures the parallelized SketchRefine pipeline and the
// on-disk partition-tree store: the same build + descend + refine run
// fully serial and with one worker per CPU (identical packages — the
// workers only divide the work), then with persistence on, where a
// cold start in a fresh engine loads the tree from disk instead of
// re-running the offline partitioning.
func RunE10(cfg Config) error {
	sizes := []int{1000000, 10000000}
	tau := 256
	if cfg.Quick {
		sizes = []int{20000, 50000}
		tau = 64
	}
	workers := runtime.GOMAXPROCS(0)
	fmt.Fprintf(cfg.Out, "== E10: parallel SketchRefine + on-disk partition trees (meal query, τ=%d, depth 2, %d CPUs) ==\n", tau, workers)
	tw := newTable(cfg.Out, "n", "variant", "time", "objective", "workers", "tree", "speedup-vs-serial")
	for _, n := range sizes {
		if err := runE10Size(cfg, tw, n, tau, workers); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "(claim check: parallel build+refine returns the identical package at a fraction of the serial time, and the disk-warm run loads the tree instead of rebuilding)")
	return nil
}

// runE10Size runs the E10 variants at one relation size with its own
// temporary tree store.
func runE10Size(cfg Config, tw io.Writer, n, tau, workers int) error {
	db, err := recipesDB(n, cfg.seed())
	if err != nil {
		return err
	}
	prep, err := core.Prepare(db, MealQuery)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "pbench-e10-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	base := core.Options{Strategy: core.SketchRefineStrategy, Seed: cfg.seed(),
		SketchPartitionSize: tau, SketchDepth: 2}
	type variant struct {
		name string
		opts core.Options
	}
	serial, parallel, cold, warm := base, base, base, base
	serial.SketchParallelism = 1
	cold.SketchPersistDir = dir
	warm.SketchPersistDir = dir
	variants := []variant{
		{"serial", serial},
		{fmt.Sprintf("parallel ×%d", workers), parallel},
		{"parallel + persist (cold)", cold},
		{"disk-warm cold start", warm},
	}
	var serialTime time.Duration
	var serialMult []int
	for _, v := range variants {
		start := time.Now()
		res, err := prep.Run(v.opts)
		elapsed := time.Since(start)
		if err != nil {
			return fmt.Errorf("n=%d %s: %w", n, v.name, err)
		}
		if len(res.Packages) == 0 {
			fmt.Fprintf(tw, "%d\t%s\t%s\t(no package)\t%d\t-\t-\n",
				n, v.name, ms(elapsed), res.Stats.SketchWorkers)
			continue
		}
		if v.name == "serial" {
			serialTime = elapsed
			serialMult = res.Packages[0].Mult
		} else if serialMult != nil && !slices.Equal(serialMult, res.Packages[0].Mult) {
			return fmt.Errorf("n=%d %s: package diverged from serial", n, v.name)
		}
		tree := "built"
		if res.Stats.SketchTreeLoaded {
			tree = "loaded"
		}
		speedup := "-"
		if serialTime > 0 && elapsed > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(serialTime)/float64(elapsed))
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.0f\t%d\t%s\t%s\n",
			n, v.name, ms(elapsed), res.Packages[0].Objective,
			res.Stats.SketchWorkers, tree, speedup)
	}
	return nil
}

// RunE12 measures incremental partition-tree maintenance: at each
// relation size, a base tree is built once, a write batch (inserts
// plus deletes, at 0.1%, 1%, and 10% of the relation) is applied
// through minidb, and tree readiness is timed both ways — a full
// rebuild over the new candidates versus Tree.ApplyDelta patching the
// base tree in place through the real lineage pipeline (delta log →
// fingerprint memo → remap). The claim is a >=10x readiness speedup
// for batches at or below 1% of N at 1M tuples, with the patched tree
// answering the meal query at the same feasibility and a comparable
// objective.
func RunE12(cfg Config) error {
	sizes := []int{100000, 1000000}
	tau := 256
	fracs := []float64{0.001, 0.01, 0.10}
	if cfg.Quick {
		sizes = []int{20000, 50000}
		tau = 64
		fracs = []float64{0.01, 0.10}
	}
	fmt.Fprintf(cfg.Out, "== E12: incremental tree maintenance — full rebuild vs ApplyDelta (meal query, τ=%d, depth 2) ==\n", tau)
	tw := newTable(cfg.Out, "n", "batch", "rebuild", "patch", "speedup", "objective-rebuild", "objective-patched")
	for _, n := range sizes {
		for _, frac := range fracs {
			if err := runE12Point(cfg, tw, n, tau, frac); err != nil {
				return err
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "(claim check: tree readiness via ApplyDelta is >=10x faster than a cold rebuild for write batches <=1% of N, with equivalent packages)")
	return nil
}

// runE12Point measures one (size, batch-fraction) cell.
func runE12Point(cfg Config, tw io.Writer, n, tau int, frac float64) error {
	db, err := recipesDB(n, cfg.seed())
	if err != nil {
		return err
	}
	prep, err := core.Prepare(db, MealQuery)
	if err != nil {
		return err
	}
	opts := sketch.Options{MaxPartitionSize: tau, Depth: 2, Seed: cfg.seed()}
	memo := core.NewFingerprintMemo()
	memo.Advance(prep) // snapshot the base candidates
	base := sketch.BuildTree(prep.Instance, opts)

	// The write batch: ~80% inserts (fresh synthetic recipes), ~20%
	// deletes (an id range), applied through the engine so the delta
	// log records them exactly as production writes would.
	batch := int(frac * float64(n))
	if batch < 2 {
		batch = 2
	}
	ins, del := batch-batch/5, batch/5
	rows := dataset.Recipes(dataset.RecipesConfig{N: ins, Seed: cfg.seed() + 1})
	for i := range rows {
		rows[i][0] = value.Int(int64(n + 1000000 + i)) // ids beyond the base range
	}
	if err := db.InsertRows("recipes", rows); err != nil {
		return err
	}
	if del > 0 {
		if _, err := db.Exec(fmt.Sprintf("DELETE FROM recipes WHERE id > %d AND id <= %d", n/2, n/2+del)); err != nil {
			return err
		}
	}
	prep2, err := core.Prepare(db, MealQuery)
	if err != nil {
		return err
	}
	_, patch := memo.Advance(prep2)
	if patch == nil {
		return fmt.Errorf("e12: n=%d frac=%g: no patch lineage", n, frac)
	}

	rebuildStart := time.Now()
	rebuilt := sketch.BuildTree(prep2.Instance, opts)
	rebuildTime := time.Since(rebuildStart)

	wide := opts
	wide.DeltaMaxFrac = 0.5 // admit the 10% batch point
	patchStart := time.Now()
	patched, ok := base.ApplyDelta(prep2.Instance.Rows, patch.Remap, wide)
	patchTime := time.Since(patchStart)
	if !ok {
		fmt.Fprintf(tw, "%d\t%.1f%%\t%s\t(rebuild forced)\t-\t-\t-\n", n, 100*frac, ms(rebuildTime))
		return nil
	}

	// Both trees must answer the query equivalently: solve each through
	// a pre-seeded cache so the offline step is excluded.
	objective := func(t *sketch.Tree) (string, error) {
		cache := sketch.NewCache(0)
		cache.Put(sketch.KeyFor(prep2.Instance, opts), t)
		o := opts
		o.Cache = cache
		res, err := sketch.Solve(prep2.Instance, o)
		if err != nil {
			return "", err
		}
		if !res.Feasible {
			return "(no package)", nil
		}
		return fmt.Sprintf("%.0f", res.Objective), nil
	}
	objR, err := objective(rebuilt)
	if err != nil {
		return err
	}
	objP, err := objective(patched)
	if err != nil {
		return err
	}
	speedup := "-"
	if patchTime > 0 {
		speedup = fmt.Sprintf("%.1fx", float64(rebuildTime)/float64(patchTime))
	}
	fmt.Fprintf(tw, "%d\t%.1f%%\t%s\t%s\t%s\t%s\t%s\n",
		n, 100*frac, ms(rebuildTime), ms(patchTime), speedup, objR, objP)
	return nil
}

// E11Queries are the full-atom-grammar workloads E11 measures: an AVG
// rewrite, a MIN/MAX envelope workload, and a two-branch disjunction,
// all over the recipes relation.
var E11Queries = []struct {
	Name  string
	Query string
}{
	{"avg", `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 5 AND AVG(P.calories) <= 650
		MAXIMIZE SUM(P.protein)`},
	{"min+max", `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 5 AND MIN(P.protein) >= 5 AND MAX(P.calories) <= 900
		      AND SUM(P.calories) BETWEEN 2500 AND 3500
		MAXIMIZE SUM(P.protein)`},
	{"disjunction", `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 5 AND (AVG(P.calories) <= 650 OR SUM(P.calories) <= 3000)
		MAXIMIZE SUM(P.protein)`},
}

// RunE11 measures SketchRefine over the full PaQL atom grammar —
// AVG/MIN/MAX atoms and disjunctions, the workloads that used to fall
// back to the exact solver — against the exact MILP at growing scale:
// the claim is a small objective gap at 100k tuples and an
// order-of-magnitude speedup at 1M, with the sketch path really used
// (levels > 0, branches/rewrites reported). The exact side runs under a
// wall-clock budget at the largest size; when it returns an incumbent
// without proof the reported speedup is a lower bound.
func RunE11(cfg Config) error {
	sizes := []int{100000, 1000000}
	tau := 256
	exactBudget := 10 * time.Minute
	if cfg.Quick {
		sizes = []int{20000, 50000}
		tau = 64
		exactBudget = time.Minute
	}
	fmt.Fprintf(cfg.Out, "== E11: full-grammar SketchRefine — AVG/MIN/MAX + disjunctions vs exact (τ=%d, depth 2) ==\n", tau)
	tw := newTable(cfg.Out, "n", "query", "strategy", "time", "objective", "gap", "speedup", "levels", "branches", "rewrites")
	for _, n := range sizes {
		db, err := recipesDB(n, cfg.seed())
		if err != nil {
			return err
		}
		for _, q := range E11Queries {
			prep, err := core.Prepare(db, q.Query)
			if err != nil {
				return err
			}
			exactStart := time.Now()
			exact, err := prep.Run(core.Options{Strategy: core.Solver, Seed: cfg.seed(), Timeout: exactBudget})
			exactTime := time.Since(exactStart)
			if err != nil {
				return fmt.Errorf("n=%d %s solver: %w", n, q.Name, err)
			}
			if len(exact.Packages) == 0 {
				fmt.Fprintf(tw, "%d\t%s\tsolver (exact)\t%s\t(no package)\t-\t-\t-\t-\t-\n", n, q.Name, ms(exactTime))
				continue
			}
			opt := exact.Packages[0].Objective
			proof := ""
			if !exact.Stats.Exact {
				proof = " (budget hit)"
			}
			fmt.Fprintf(tw, "%d\t%s\tsolver (exact)%s\t%s\t%.0f\t0.0%%\t1.0x\t-\t-\t-\n", n, q.Name, proof, ms(exactTime), opt)

			skStart := time.Now()
			sk, err := prep.Run(core.Options{Strategy: core.SketchRefineStrategy, Seed: cfg.seed(),
				SketchPartitionSize: tau, SketchDepth: 2})
			skTime := time.Since(skStart)
			if err != nil {
				return fmt.Errorf("n=%d %s sketch: %w", n, q.Name, err)
			}
			if sk.Stats.Strategy != core.SketchRefineStrategy {
				return fmt.Errorf("n=%d %s: fell back to %v", n, q.Name, sk.Stats.Strategy)
			}
			if sk.Stats.SketchLevels < 1 {
				return fmt.Errorf("n=%d %s: sketch did not run (levels=0)", n, q.Name)
			}
			if len(sk.Packages) == 0 {
				fmt.Fprintf(tw, "%d\t%s\tsketch-refine\t%s\t(no package)\t-\t-\t%d\t%d\t%d\n",
					n, q.Name, ms(skTime), sk.Stats.SketchLevels, sk.Stats.SketchBranches, sk.Stats.SketchAtomRewrites)
				continue
			}
			obj := sk.Packages[0].Objective
			gap := (opt - obj) / opt * 100
			fmt.Fprintf(tw, "%d\t%s\tsketch-refine\t%s\t%.0f\t%.1f%%\t%.1fx\t%d\t%d\t%d\n",
				n, q.Name, ms(skTime), obj, gap, float64(exactTime)/float64(skTime),
				sk.Stats.SketchLevels, sk.Stats.SketchBranches, sk.Stats.SketchAtomRewrites)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "(claim check: AVG/MIN/MAX and disjunctive queries stay on the sketch path — small gap at 100k, >=10x speedup at 1M)")
	return nil
}

// e13Workloads are the mixed cells E13 sweeps: the planner must adapt
// strategy and knobs per cell — exact MILP where affordable,
// hierarchical parallel sketch at scale, depth capped under MIN/MAX
// atoms, patch-based maintenance after writes — while the hand-set
// baseline runs every cell with the same flat, serial, rebuild-on-write
// sketch configuration.
var e13Workloads = []struct {
	Name   string
	Query  string
	Writes bool
}{
	{"linear read-only", MealQuery, false},
	{"min-max read-only", E11Queries[1].Query, false},
	{"linear write-heavy", MealQuery, true},
}

// RunE13 pits the cost-based planner (strategy, τ, depth, parallelism
// and maintenance all chosen from catalog statistics) against hand-set
// defaults (flat τ=64 sketch, serial, rebuild after writes) across the
// mixed workload above. The claim: planner-chosen knobs match or beat
// the hand-set defaults on every cell without per-query tuning, with
// the write-heavy cells surfacing the patch-vs-rebuild win.
func RunE13(cfg Config) error {
	sizes := []int{100000, 1000000}
	if cfg.Quick {
		sizes = []int{5000, 20000}
	}
	fmt.Fprintln(cfg.Out, "== E13: cost-based planner vs hand-set defaults (mixed workload) ==")
	tw := newTable(cfg.Out, "n", "workload", "variant", "strategy", "partitions", "levels", "workers", "time", "objective", "speedup-vs-hand-set")
	for _, n := range sizes {
		for _, wl := range e13Workloads {
			if err := runE13Point(cfg, tw, n, wl.Name, wl.Query, wl.Writes); err != nil {
				return err
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "(claim check: the planner adapts per cell — exact MILP with the provably best objective where affordable, hierarchical parallel sketch at scale, patched trees after writes for the readiness win)")
	return nil
}

// runE13Point measures one (size, workload) cell under both variants.
// Each variant gets its own freshly generated database (same seed, so
// identical data) because the write-heavy cells mutate it.
func runE13Point(cfg Config, tw io.Writer, n int, name, query string, writes bool) error {
	var handTime time.Duration
	for _, variant := range []string{"hand-set", "planner"} {
		db, err := recipesDB(n, cfg.seed())
		if err != nil {
			return err
		}
		cache := sketch.NewCache(0)
		memo := core.NewFingerprintMemo()
		var opts core.Options
		if variant == "hand-set" {
			// The pre-planner defaults: always sketch, flat tree, τ=64,
			// serial, full rebuild after any write.
			opts = core.Options{Strategy: core.SketchRefineStrategy, Seed: cfg.seed(),
				SketchPartitionSize: 64, SketchDepth: 1, SketchParallelism: 1,
				SketchIncremental: false, SketchIncrementalSet: true,
				SketchCache: cache, SketchMemo: memo}
		} else {
			opts = core.Options{Seed: cfg.seed(),
				SketchCache: cache, SketchMemo: memo, Catalog: catalog.New(db)}
		}
		prep, err := core.Prepare(db, query)
		if err != nil {
			return err
		}
		if writes {
			// Warm the tree on the base data, then push a ~1% write batch
			// through the engine so the timed run sees a stale tree plus
			// real delta lineage.
			if _, err := prep.Run(opts); err != nil {
				return err
			}
			if err := e13WriteBatch(db, n, cfg.seed()); err != nil {
				return err
			}
			if prep, err = core.Prepare(db, query); err != nil {
				return err
			}
		}
		start := time.Now()
		res, err := prep.Run(opts)
		elapsed := time.Since(start)
		if err != nil {
			return fmt.Errorf("e13: n=%d %s %s: %w", n, name, variant, err)
		}
		obj := "(no package)"
		if len(res.Packages) > 0 {
			obj = fmt.Sprintf("%.0f", res.Packages[0].Objective)
		}
		speedup := "-"
		if variant == "hand-set" {
			handTime = elapsed
		} else if elapsed > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(handTime)/float64(elapsed))
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%d\t%d\t%d\t%s\t%s\t%s\n",
			n, name, variant, res.Stats.Strategy, res.Stats.Partitions,
			res.Stats.SketchLevels, res.Stats.SketchWorkers, ms(elapsed), obj, speedup)
	}
	return nil
}

// e13WriteBatch applies a ~1% write batch (80% inserts, 20% deletes)
// through the engine so the delta log records real lineage.
func e13WriteBatch(db *minidb.DB, n int, seed int64) error {
	batch := n / 100
	if batch < 2 {
		batch = 2
	}
	ins, del := batch-batch/5, batch/5
	rows := dataset.Recipes(dataset.RecipesConfig{N: ins, Seed: seed + 1})
	for i := range rows {
		rows[i][0] = value.Int(int64(n + 1000000 + i))
	}
	if err := db.InsertRows("recipes", rows); err != nil {
		return err
	}
	if del > 0 {
		if _, err := db.Exec(fmt.Sprintf("DELETE FROM recipes WHERE id > %d AND id <= %d", n/2, n/2+del)); err != nil {
			return err
		}
	}
	return nil
}

package bench

import (
	"strconv"
	"strings"
	"testing"
)

// Each experiment must run in quick mode and emit its table header —
// this is the integration test that keeps cmd/pbench honest.
func TestExperimentsQuick(t *testing.T) {
	cases := []struct {
		id   string
		want []string
	}{
		{"f1", []string{"Package template", "Suggestions", "Package-space summary", "MINIMIZE SUM(P.fat)"}},
		{"e1", []string{"pruned-space", "lossless", "true"}},
		{"e2", []string{"strategy", "solver", "local-search", "skipped: intractable"}},
		{"e3", []string{"join-width", "2-way", "4-way", "neighbourhood"}},
		{"e4", []string{"package#", "cumulative", "distinct"}},
		{"e5", []string{"restarts", "ratio", "solver (exact)"}},
		{"e6", []string{"REPEAT", "max-mult", "feasible"}},
		{"e7", []string{"selection", "min-distance", "diverse"}},
		{"e9", []string{"hierarchical", "top-vars", "warm cache", "true"}},
		{"e10", []string{"parallel", "speedup-vs-serial", "disk-warm cold start", "loaded"}},
		{"e12", []string{"incremental tree maintenance", "rebuild", "patch", "speedup"}},
		{"e13", []string{"cost-based planner", "hand-set", "planner", "speedup-vs-hand-set"}},
		{"e14", []string{"query lifecycle under load", "clients", "shed", "p99", "sheds instead of queueing"}},
		{"e16", []string{"band-aware bound tightening", "bound/envelope", "bound/pipeline", "anytime/gap5", "early exit"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			t.Parallel()
			var sb strings.Builder
			if err := Run(tc.id, Config{Out: &sb, Quick: true, Seed: 42}); err != nil {
				t.Fatalf("%s: %v", tc.id, err)
			}
			out := sb.String()
			for _, w := range tc.want {
				if !strings.Contains(out, w) {
					t.Errorf("%s output missing %q:\n%s", tc.id, w, out)
				}
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := Run("e99", Config{Out: &sb}); err == nil {
		t.Error("unknown experiment should fail")
	}
}

// E1's lossless column must read true on every row — a regression here
// means pruning lost solutions.
func TestE1AlwaysLossless(t *testing.T) {
	var sb strings.Builder
	if err := RunE1(Config{Out: &sb, Quick: true, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.Contains(line, "false") {
			t.Errorf("lossless=false in E1 output: %s", line)
		}
	}
}

// E5's ratio column must never exceed 1.0 (heuristic cannot beat the
// proven optimum).
func TestE5RatioAtMostOne(t *testing.T) {
	var sb strings.Builder
	if err := RunE5(Config{Out: &sb, Quick: true, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 || fields[0] != "local" {
			continue
		}
		ratio := fields[len(fields)-1]
		var r float64
		if _, err := fmtSscan(ratio, &r); err == nil && r > 1.0001 {
			t.Errorf("heuristic ratio %s > 1: %s", ratio, line)
		}
	}
}

func fmtSscan(s string, v *float64) (int, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	*v = f
	return 1, nil
}

package bench

// E15 measures what the certified-bound engine costs and what the
// anytime mode saves:
//
//   - the "certified" cells run the paper's meal query end-to-end and
//     separately time a standalone leaf-envelope LP bound at the same
//     scale, so the bound pass's share of the full solve is visible;
//   - the "anytime" cells run a two-branch disjunctive query twice —
//     gap tolerance off, then 5% — and check the tolerance run stops
//     after fewer branches while still returning a certified interval.

import (
	"fmt"
	"time"

	"repro/internal/bound"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/paql"
	"repro/internal/sketch"
	"repro/internal/translate"
)

// E15Disjunctive places the trivially-feasible high-objective branch
// first, so a certified-gap early exit can skip the second branch.
const E15Disjunctive = `
	SELECT PACKAGE(R) AS P
	FROM recipes R
	SUCH THAT COUNT(*) = 3 AND (SUM(P.protein) >= 0 OR SUM(P.calories) <= 2500)
	MAXIMIZE SUM(P.protein)`

// RunE15 sweeps the bound-overhead and anytime cells. It fails if no
// anytime cell exits early with a certificate — the feature's whole
// claim.
func RunE15(cfg Config) error {
	sizes := []int{100000, 1000000}
	if cfg.Quick {
		sizes = []int{5000, 20000}
	}
	fmt.Fprintln(cfg.Out, "== E15: certified bounds — overhead and anytime early exit ==")
	tw := newTable(cfg.Out, "n", "cell", "time", "objective", "bound", "gap", "certified", "branches", "note")
	earlyExits := 0
	for _, n := range sizes {
		if err := runE15Certified(cfg, tw, n); err != nil {
			return err
		}
		early, err := runE15Anytime(cfg, tw, n)
		if err != nil {
			return err
		}
		if early {
			earlyExits++
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if earlyExits == 0 {
		return fmt.Errorf("e15: no anytime cell exited early with a certificate; the claim vanished")
	}
	fmt.Fprintf(cfg.Out, "(claim check: every answer ships a certified objective ∈ [bound, found] interval; the standalone bound LP is a fraction of the solve; GapTolerance=5%% exited early on %d of %d cells)\n", earlyExits, len(sizes))
	return nil
}

// runE15Certified runs the meal query end-to-end under the planner and
// then times a standalone leaf-envelope LP bound over the same
// candidates, reporting both on one row each.
func runE15Certified(cfg Config, tw interface{ Write([]byte) (int, error) }, n int) error {
	db, err := recipesDB(n, cfg.seed())
	if err != nil {
		return err
	}
	prep, err := core.Prepare(db, MealQuery)
	if err != nil {
		return err
	}
	opts := core.Options{Seed: cfg.seed(), SketchCache: sketch.NewCache(0),
		SketchMemo: core.NewFingerprintMemo(), Catalog: catalog.New(db)}
	start := time.Now()
	res, err := prep.Run(opts)
	elapsed := time.Since(start)
	if err != nil {
		return fmt.Errorf("e15: n=%d certified: %w", n, err)
	}
	if !res.Stats.Certified || len(res.Packages) == 0 {
		return fmt.Errorf("e15: n=%d: full solve returned no certified interval (certified=%v)", n, res.Stats.Certified)
	}
	fmt.Fprintf(tw, "%d\tcertified/full\t%s\t%.0f\t%.0f\t%.2f%%\t%v\t%d\t\n",
		n, ms(elapsed), res.Packages[0].Objective, res.Stats.BoundValue,
		100*res.Stats.Gap, res.Stats.Certified, res.Stats.SketchBranches)

	// Standalone bound: leaf-envelope groups over a default tree, the
	// exact tuple-level atoms, one LP solve. The tree build is excluded
	// — the solve needs it anyway — so this is the marginal cost of
	// certification.
	inst := prep.Instance
	atoms, ok, err := translate.ConjunctiveAtoms(prep.Analysis, inst.Rows)
	if err != nil || !ok {
		return fmt.Errorf("e15: n=%d: meal query must lower to conjunctive atoms (ok=%v err=%v)", n, ok, err)
	}
	tree := sketch.BuildTree(inst, sketch.Options{Seed: cfg.seed()})
	leaves := tree.Leaves()
	groups := make([]bound.Group, len(leaves))
	for i := range leaves {
		hi := lp.Inf
		if inst.MaxMult > 0 {
			hi = float64(len(leaves[i].Tuples) * inst.MaxMult)
		}
		groups[i] = bound.Group{Tuples: leaves[i].Tuples, Hi: hi}
	}
	sense := lp.Minimize
	if prep.Query.Objective.Sense == paql.Maximize {
		sense = lp.Maximize
	}
	start = time.Now()
	p, err := bound.Relax(atoms, inst.ObjW, sense, groups)
	if err != nil {
		return err
	}
	out := bound.Solve(nil, p, inst.ObjK)
	boundTime := time.Since(start)
	// Tightness of the standalone envelope against the answer the full
	// solve found: how much certified gap this one cheap LP buys on its
	// own (E16 measures what the staged pipeline tightens on top).
	tightness := bound.Interval{Found: res.Packages[0].Objective, Bound: out.Bound}
	fmt.Fprintf(tw, "%d\tbound/leaf-lp\t%s\t-\t%.0f\t%.2f%%\t%v\t-\t%d leaves, %d iters\n",
		n, ms(boundTime), out.Bound, 100*tightness.Gap(), out.Certified, len(groups), out.Iterations)
	return nil
}

// runE15Anytime runs the disjunctive query with the tolerance off and
// at 5%, reporting whether the tolerance run certified AND descended
// fewer branches.
func runE15Anytime(cfg Config, tw interface{ Write([]byte) (int, error) }, n int) (bool, error) {
	db, err := recipesDB(n, cfg.seed())
	if err != nil {
		return false, err
	}
	prep, err := core.Prepare(db, E15Disjunctive)
	if err != nil {
		return false, err
	}
	var offBranches int
	var offTime time.Duration
	early := false
	for _, tol := range []float64{0, 0.05} {
		opts := core.Options{Strategy: core.SketchRefineStrategy, Seed: cfg.seed(),
			SketchCache: sketch.NewCache(0), SketchMemo: core.NewFingerprintMemo(),
			GapTolerance: tol}
		start := time.Now()
		res, err := prep.Run(opts)
		elapsed := time.Since(start)
		if err != nil {
			return false, fmt.Errorf("e15: n=%d anytime tol=%g: %w", n, tol, err)
		}
		if len(res.Packages) == 0 {
			return false, fmt.Errorf("e15: n=%d anytime tol=%g: no package", n, tol)
		}
		cell, note := "anytime/off", ""
		if tol > 0 {
			cell = "anytime/gap5"
			if res.Stats.Certified && res.Stats.SketchBranches < offBranches {
				early = true
				note = fmt.Sprintf("early exit: %d of %d branches, %.2fx faster",
					res.Stats.SketchBranches, offBranches, float64(offTime)/float64(elapsed))
			}
		} else {
			offBranches = res.Stats.SketchBranches
			offTime = elapsed
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.0f\t%.0f\t%.2f%%\t%v\t%d\t%s\n",
			n, cell, ms(elapsed), res.Packages[0].Objective, res.Stats.BoundValue,
			100*res.Stats.Gap, res.Stats.Certified, res.Stats.SketchBranches, note)
	}
	return early, nil
}

package bench

// E16 measures what the staged bound-tightening pipeline buys on
// BETWEEN-heavy workloads — the band rows (GE/LE pairs over one weight
// vector) that made the old single-envelope-per-leaf bound uselessly
// loose:
//
//   - the "envelope" cells run with BoundMode "envelope" (the legacy
//     unsegmented per-leaf relaxation) and the "pipeline" cells at the
//     stage the planner picks for band queries (segmented columns +
//     Lagrangian tightening rounds); the pipeline must beat the
//     envelope at every size, reach a ≤5% certified gap at the
//     largest full-mode size, and keep the bound pass under 10% of
//     the solve;
//   - the "anytime" cells run a disjunctive band query with
//     GapTolerance off and at 5%, and check the tolerance run exits
//     early with a certificate — only possible because the tightened
//     bound closes the gap at all (anytime mode runs the full ladder
//     including the adaptive descent stage).

import (
	"fmt"
	"time"

	"repro/internal/bound"
	"repro/internal/core"
	"repro/internal/sketch"
)

// E16Query is the BETWEEN-heavy meal workload: two band constraints on
// correlated columns on top of the COUNT pin. Each band lowers to a
// GE/LE row pair — exactly the rows the Lagrangian tightening stage
// dualizes and the old envelope bound ignored almost entirely.
const E16Query = `
	SELECT PACKAGE(R) AS P
	FROM recipes R
	SUCH THAT COUNT(*) = 3
		AND SUM(P.calories) BETWEEN 2000 AND 2500
		AND SUM(P.fat) BETWEEN 20 AND 200
	MAXIMIZE SUM(P.protein)`

// E16Disjunctive puts a trivially-feasible high-objective branch first
// and the band branch second, so a certified-gap early exit can skip
// the band branch's descent entirely.
const E16Disjunctive = `
	SELECT PACKAGE(R) AS P
	FROM recipes R
	SUCH THAT COUNT(*) = 3 AND (SUM(P.protein) >= 0 OR SUM(P.calories) BETWEEN 2000 AND 2500)
	MAXIMIZE SUM(P.protein)`

// e16FullTau and e16FullDepth are the partitioning knobs the full-size
// cells run under (the E9 scaling convention): τ=256 depth-2 trees keep
// the per-leaf segments coarse enough that the tightening stages — not
// sheer variable count — have to close the gap.
const (
	e16FullTau   = 256
	e16FullDepth = 2
)

// RunE16 sweeps the envelope-vs-pipeline and anytime cells. It fails
// if the pipeline does not beat the envelope everywhere, if the
// largest full-mode cell misses the ≤5% gap or the <10% bound-share
// budget, or if no anytime cell exits early — the tightening work's
// whole claim.
func RunE16(cfg Config) error {
	sizes := []int{100000, 1000000}
	full := true
	if cfg.Quick {
		sizes = []int{5000, 20000}
		full = false
	}
	fmt.Fprintln(cfg.Out, "== E16: band-aware bound tightening — envelope vs pipeline ==")
	tw := newTable(cfg.Out, "n", "cell", "time", "objective", "bound", "gap", "stage", "rounds", "bound-share", "note")
	earlyExits := 0
	for _, n := range sizes {
		gate := full && n == sizes[len(sizes)-1]
		if err := runE16Tightening(cfg, tw, n, full, gate); err != nil {
			tw.Flush() // show the measured rows alongside the gate failure
			return err
		}
		early, err := runE16Anytime(cfg, tw, n, full)
		if err != nil {
			tw.Flush()
			return err
		}
		if early {
			earlyExits++
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if earlyExits == 0 {
		return fmt.Errorf("e16: no anytime cell exited early with a certificate; the tightened bound buys nothing")
	}
	fmt.Fprintf(cfg.Out, "(claim check: the staged pipeline beats the legacy envelope bound on every BETWEEN-heavy cell; GapTolerance=5%% exited early on %d of %d cells)\n", earlyExits, len(sizes))
	return nil
}

// runE16Tightening runs the band query twice at one size — legacy
// envelope bound, then the full pipeline — and enforces the
// improvement gate (and, when gate is set, the ≤5% gap and <10%
// bound-share budgets).
func runE16Tightening(cfg Config, tw interface{ Write([]byte) (int, error) }, n int, full, gate bool) error {
	db, err := recipesDB(n, cfg.seed())
	if err != nil {
		return err
	}
	prep, err := core.Prepare(db, E16Query)
	if err != nil {
		return err
	}
	base := sketch.Options{Seed: cfg.seed()}
	if full {
		base.MaxPartitionSize = e16FullTau
		base.Depth = e16FullDepth
	}
	cell := func(name, mode string) (*sketch.Result, time.Duration, error) {
		o := base
		o.BoundMode = mode
		start := time.Now()
		res, err := sketch.Solve(prep.Instance, o)
		elapsed := time.Since(start)
		if err != nil {
			return nil, 0, fmt.Errorf("e16: n=%d %s: %w", n, name, err)
		}
		if !res.Feasible || !res.Certified {
			return nil, 0, fmt.Errorf("e16: n=%d %s: no certified package (feasible=%v certified=%v)", n, name, res.Feasible, res.Certified)
		}
		share := float64(res.BoundTime) / float64(elapsed)
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.0f\t%.0f\t%.2f%%\t%s\t%d\t%.1f%%\t\n",
			n, name, ms(elapsed), res.Objective, res.Bound,
			100*res.Gap, res.BoundStage, res.BoundRounds, 100*share)
		return res, elapsed, nil
	}
	env, _, err := cell("bound/envelope", sketch.BoundModeEnvelope)
	if err != nil {
		return err
	}
	// The planner's pick for a band query outside anytime mode:
	// segmented columns plus the Lagrangian rounds (the descent stage
	// is what anytime mode adds, measured by the cells below).
	pipe, elapsed, err := cell("bound/pipeline", bound.StageTightened)
	if err != nil {
		return err
	}
	if pipe.Gap >= env.Gap {
		return fmt.Errorf("e16: n=%d: pipeline gap %.2f%% did not beat envelope gap %.2f%%; tightening stages regressed",
			n, 100*pipe.Gap, 100*env.Gap)
	}
	if gate {
		if pipe.Gap > 0.05 {
			return fmt.Errorf("e16: n=%d: pipeline certified gap %.2f%% exceeds the 5%% acceptance gate", n, 100*pipe.Gap)
		}
		if share := float64(pipe.BoundTime) / float64(elapsed); share >= 0.10 {
			return fmt.Errorf("e16: n=%d: bound pass took %.1f%% of the solve (budget <10%%)", n, 100*share)
		}
	}
	return nil
}

// runE16Anytime runs the disjunctive band query with the tolerance off
// and at 5%, reporting whether the tolerance run certified AND
// descended fewer branches.
func runE16Anytime(cfg Config, tw interface{ Write([]byte) (int, error) }, n int, full bool) (bool, error) {
	db, err := recipesDB(n, cfg.seed())
	if err != nil {
		return false, err
	}
	prep, err := core.Prepare(db, E16Disjunctive)
	if err != nil {
		return false, err
	}
	base := sketch.Options{Seed: cfg.seed()}
	if full {
		base.MaxPartitionSize = e16FullTau
		base.Depth = e16FullDepth
	}
	var offBranches int
	var offTime time.Duration
	early := false
	for _, tol := range []float64{0, 0.05} {
		o := base
		o.GapTolerance = tol
		start := time.Now()
		res, err := sketch.Solve(prep.Instance, o)
		elapsed := time.Since(start)
		if err != nil {
			return false, fmt.Errorf("e16: n=%d anytime tol=%g: %w", n, tol, err)
		}
		if !res.Feasible {
			return false, fmt.Errorf("e16: n=%d anytime tol=%g: no package", n, tol)
		}
		cell, note := "anytime/off", ""
		if tol > 0 {
			cell = "anytime/gap5"
			if res.Certified && res.Branches < offBranches {
				early = true
				note = fmt.Sprintf("early exit: %d of %d branches, %.2fx faster",
					res.Branches, offBranches, float64(offTime)/float64(elapsed))
			}
		} else {
			offBranches = res.Branches
			offTime = elapsed
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.0f\t%.0f\t%.2f%%\t%s\t%d\t-\t%s\n",
			n, cell, ms(elapsed), res.Objective, res.Bound,
			100*res.Gap, res.BoundStage, res.Branches, note)
	}
	return early, nil
}

// Package sketch implements SketchRefine, the partition-based
// evaluation strategy from the paper's follow-up work ("Scalable
// Package Queries in Relational Database Systems", PVLDB 2016, and
// "Scaling Package Queries to a Billion Tuples via Hierarchical
// Partitioning and Customized Optimization", PVLDB 2023): instead of
// handing the solver one MILP with a variable per candidate tuple, the
// relation is partitioned offline into size-bounded groups over the
// query's numeric attributes, a small "sketch" package is solved over
// one representative tuple per group, and the sketch is then refined
// partition by partition, swapping each chosen representative for real
// tuples via a tiny per-partition MILP. One huge solve becomes many
// small ones, trading a bounded objective gap for orders-of-magnitude
// lower latency at scale.
//
// At depth ≥ 2 the flat partitioning generalizes to a partition tree:
// the sketch MILP runs over the tree's roots (about the depth-th root
// of the leaf count), and each selected node's multiplicity is re-solved
// over its children's representatives level by level, descending only
// into nodes the level above chose — the top-level solve stays tiny no
// matter how large the relation grows. An optional Cache keyed by a
// fingerprint of the candidate rows lets repeated workloads skip the
// offline partitioning step entirely, and Options.PersistDir backs that
// cache with an on-disk Store so a brand-new process skips it too. The
// tree is a maintained structure, not a throwaway artifact: when the
// caller supplies write lineage (Options.Patch, derived from minidb's
// per-table delta log by core's fingerprint memo), a stale cached tree
// is patched in place via Tree.ApplyDelta — deletions tombstoned,
// insertions routed to their leaves, overgrown leaves split locally,
// representatives and envelopes refreshed bottom-up — and then
// re-persisted, instead of being rebuilt from scratch.
//
// The pipeline is parallel end to end: tree construction forks the
// median splits across a worker pool (small subtrees stay serial), the
// per-parent push-down solves of each descent level and the per-leaf
// refine solves run as concurrent waves against a shared residual
// snapshot, merged in fixed order. Options.Parallelism tunes the worker
// count; the result is byte-identical at every setting (see the package
// README for the architecture and the full knob table).
//
// The strategy covers the full PaQL atom grammar of linear queries
// with an affine objective (sketch.Applicable reports the precise
// obstruction otherwise, naming the offending atom): affine SUM/COUNT
// comparisons flow through every level as re-weighted rows; AVG atoms
// are linearized at compile time as SUM(arg) − c·COUNT ⋚ 0 plus a
// non-empty guard (the PVLDB 2016 rewrite), so they ride the same
// machinery; MIN/MAX atoms lower to elimination and at-least-one
// selector rows that are exact over real tuples and are relaxed over
// partition nodes via the per-node min/max envelopes the offline build
// attaches to the tree; disjunctions expand to DNF (capped at
// MaxBranches) with one sketch descent per branch, best feasible
// package wins. When a partition's sub-MILP is infeasible or the time
// budget runs out, a greedy repair pass substitutes the real tuples
// nearest the representative; a final validation plus bounded
// re-refinement sweeps keep the result honest — Result.Feasible is true
// only for packages that satisfy the full SUCH THAT formula (and
// contain every pinned tuple, when Options.Require is set).
package sketch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/bound"
	"repro/internal/fault"
	"repro/internal/lifecycle"
	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/paql"
	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/translate"
)

// DefaultPartitionSize is the partition size bound τ when the caller
// sets neither MaxPartitionSize nor NumPartitions.
const DefaultPartitionSize = 64

// maxDepth caps the partition-tree depth; beyond it extra levels only
// add representative error.
const maxDepth = 8

// Options tunes a SketchRefine evaluation.
type Options struct {
	// Ctx, when non-nil, cancels the evaluation cooperatively: the DNF
	// branch loop, the offline tree build's median splits, every
	// descent and refine sub-MILP (per branch-and-bound node and per
	// simplex iteration) poll it. A cancelled Solve returns a
	// lifecycle.ErrCanceled wrap promptly, discards partial work, and
	// never publishes a partially-built tree to the cache or the store.
	Ctx context.Context
	// MaxPartitionSize bounds each leaf partition (τ); 0 = default (64).
	MaxPartitionSize int
	// NumPartitions targets a leaf count instead; the tighter of the
	// two bounds wins. 0 = derive from MaxPartitionSize.
	NumPartitions int
	// Depth is the number of sketch levels (the partition-tree depth):
	// 0 or 1 = flat SketchRefine, ≥ 2 recurses the sketch over
	// partitions of partitions so the top-level MILP stays around the
	// depth-th root of the leaf count (clamped to 8).
	Depth int
	// Seed drives partitioning tie-breaks (deterministic per seed).
	Seed int64
	// Timeout bounds the whole evaluation; refine falls back to greedy
	// repair once it expires.
	Timeout time.Duration
	// SolverNodes caps branch-and-bound nodes per sub-MILP (0 = default).
	SolverNodes int
	// Cache, when non-nil, caches partition trees across evaluations,
	// keyed by a fingerprint of the candidate rows plus the
	// partitioning knobs; a hit skips the offline partitioning step
	// entirely. Share one Cache across queries over the same data.
	Cache *Cache
	// Require lists candidate indexes that must appear in every package
	// with multiplicity ≥ 1. Each pinned tuple's leaf partition is
	// forced into every sketch level (a lower bound on the multiplicity
	// of every ancestor node) instead of falling back to the exact
	// solver.
	Require []int
	// Exclude lists multiplicity vectors of packages the result must
	// differ from — exclusion cuts in sketch space: each cut becomes
	// one extra linear atom (the solver's §5 cut
	// Σ_{i∈S} x_i − Σ_{i∉S} x_i ≤ |S|−1), enforced approximately at
	// every sketch level via per-node mean weights and exactly during
	// refine. Requires 0/1 multiplicities (no REPEAT).
	Exclude [][]int
	// Parallelism caps the workers the offline partitioning, the
	// per-level push-down wave, and the per-leaf refine wave fan out
	// across: 0 = one worker per CPU (GOMAXPROCS), 1 = fully serial.
	// Results are byte-identical at every setting (workers only divide
	// the work, never reorder the merge); under a Timeout the per-solve
	// time slices depend on wall clock, so only timeout-free runs are
	// reproducible across machines.
	Parallelism int
	// PersistDir, when non-empty, names a directory used as an on-disk
	// second tier under Cache: trees are saved after every build and
	// loaded on a cache miss (same fingerprint-based key, so stale
	// files are never used — see Store). Empty = no persistence.
	PersistDir string
	// Fingerprint, when non-nil, is the precomputed fingerprint of the
	// candidate rows (core's fingerprint memo maintains it
	// incrementally per table version). It replaces the O(n) per-cell
	// hash acquireTree would otherwise run on every evaluation; warm
	// queries over unchanged data then hash nothing at all.
	Fingerprint *uint64
	// Patch, when non-nil, relates the current candidates to the
	// dataset fingerprinted as Patch.BaseFingerprint: on a cache and
	// store miss, the engine patches that base tree in place via
	// Tree.ApplyDelta — tombstoning deletions, routing insertions to
	// their leaves, re-splitting overgrown leaves — instead of
	// rebuilding from scratch, and re-persists the patched tree.
	Patch *PatchSpec
	// DeltaMaxFrac bounds the delta ApplyDelta absorbs, as a fraction
	// of the current candidate count (0 = DefaultDeltaMaxFrac); larger
	// deltas rebuild.
	DeltaMaxFrac float64
	// GapTolerance, when positive, switches on the anytime mode: once a
	// feasible package is provably within this relative gap of the
	// certified dual bound over every DNF branch, the remaining branch
	// descents are skipped — early exit with a proof. Zero (the
	// default) still computes and reports the certified interval but
	// never changes what is descended.
	GapTolerance float64
	// BoundMode, when set, pins how deep the certified-bound pipeline
	// runs on branches above the raw-candidate cap: bound.StageTreeLP
	// (segmented leaf columns, no tightening), bound.StageTightened
	// (adds the Lagrangian rounds), bound.StageDescend (adds the
	// adaptive one-level descent), or BoundModeEnvelope (the legacy
	// unsegmented per-leaf envelope, kept for comparison runs). Empty
	// runs the full pipeline. The planner's bound decision feeds this.
	BoundMode string
	// forceRebuild bypasses the cache, store, and patch lookups and
	// builds fresh, overwriting both tiers. Set internally by Solve's
	// patched-infeasible retry: a patched tree that yields no feasible
	// package must not be the engine's last word when a from-scratch
	// tree could still find one.
	forceRebuild bool
}

func (o Options) nodes() int {
	if o.SolverNodes > 0 {
		return o.SolverNodes
	}
	return 50000
}

// stopped is the non-blocking poll behind every cooperative
// cancellation checkpoint in the package.
func (o Options) stopped() bool {
	if o.Ctx == nil {
		return false
	}
	select {
	case <-o.Ctx.Done():
		return true
	default:
		return false
	}
}

// EffectiveTau resolves the leaf size bound the options imply for an
// n-candidate instance (exported for callers that perturb it between
// re-solves, like the engine's multi-package path).
func (o Options) EffectiveTau(n int) int { return effectiveTau(n, o) }

func (o Options) depth() int {
	if o.Depth <= 1 {
		return 1
	}
	if o.Depth > maxDepth {
		return maxDepth
	}
	return o.Depth
}

// MaxBranches caps the disjunctive-normal-form expansion Solve accepts:
// each DNF branch of the SUCH THAT formula costs one sketch descent, so
// the cap bounds the total work. Formulas expanding past it are not
// sketch-applicable.
const MaxBranches = translate.DefaultMaxSketchBranches

// Result is a SketchRefine outcome.
type Result struct {
	Mult        []int   // multiplicity per candidate
	Objective   float64 // objective of Mult (0 when the query has none)
	Feasible    bool    // Mult satisfies the full SUCH THAT formula (and pins)
	Bound       float64 // certified dual bound on the objective (valid when Certified)
	Gap         float64 // certified relative gap |Objective − Bound| / max(1, |Objective|)
	Certified   bool    // Bound provably brackets the exact optimum (see internal/bound)
	BoundStage  string  // deepest bound-pipeline stage reached across branches (bound.Stage*)
	BoundRounds int     // Lagrangian tightening rounds spent across all branch bounds
	// BoundTime is the wall time the certified-bound passes cost
	// (every branchBound call), so benchmarks can report the bound's
	// share of the solve without re-deriving it.
	BoundTime    time.Duration
	Partitions   int   // leaf partitions produced by the offline step
	Levels       int   // partition-tree levels used (1 = flat)
	TopVars      int   // variables in the top-level sketch MILP
	Branches     int   // DNF branches descended (1 = conjunctive formula)
	AtomRewrites int   // AVG/MIN/MAX atoms rewritten into sketchable rows
	CacheHit     bool  // partition tree served from the cache
	TreeLoaded   bool  // partition tree loaded from the on-disk store
	TreePatched  bool  // stale tree patched in place via ApplyDelta
	Coalesced    bool  // tree acquisition joined another solve's in-flight build
	DeltaApplied int   // tuples the patch inserted plus deleted
	Workers      int   // workers the parallel phases fanned out across
	Active       int   // leaf partitions the sketch solution touched
	Refined      int   // partitions refined via their sub-MILP
	Repaired     int   // partitions that fell back to greedy repair
	Nodes        int64 // branch-and-bound nodes across all solves
	LPIters      int   // simplex iterations across all solves
	Notes        []string
	// Degraded lists the degradation-ladder rungs this solve took, one
	// "subsystem: detail" entry per event — an optional tier (cache,
	// disk store, delta patch, bound pass) failed and the solve
	// continued one rung down instead of failing. Empty on a fully
	// healthy solve.
	Degraded []string
	Elapsed  time.Duration
	// patchedAny records that any tree this solve descended carries
	// patched provenance — whether ApplyDelta ran here or a
	// patched-born tree arrived via the cache or the store. Solve's
	// parity retry keys on it (TreePatched reflects only the last
	// acquisition).
	patchedAny bool
}

// degrade records one degradation-ladder rung on the result: the named
// optional subsystem failed with detail, and the solve continued one
// rung down instead of failing.
func (r *Result) degrade(sub, detail string) {
	r.Degraded = append(r.Degraded, sub+": "+detail)
}

// Applicable reports whether the instance can be evaluated with
// SketchRefine; the error names the obstruction — for an atom the
// compiler cannot lower, the message names the offending aggregate.
func Applicable(inst *search.Instance) error {
	if !inst.Analysis.Linear {
		return fmt.Errorf("sketch: query is not linear: %v", inst.Analysis.NonlinearReasons)
	}
	if _, _, err := translate.CompileSketch(inst.Analysis, MaxBranches); err != nil {
		return fmt.Errorf("sketch: %w", err)
	}
	if inst.Analysis.Query.Objective != nil && inst.ObjW == nil {
		return fmt.Errorf("sketch: objective is not affine")
	}
	return nil
}

// Solve runs SketchRefine over the full PaQL atom grammar: the SUCH
// THAT formula is compiled into DNF branches (AVG atoms linearized as
// SUM − c·COUNT, MIN/MAX atoms lowered to envelope-prunable selector
// rows), each branch descends the shared partition tree — sketch over
// the roots, push down level by level, refine the leaves into real
// tuples — and the best feasible branch wins. When a branch's sketch
// MILP over the roots is infeasible, that branch retries flat, then at
// a quarter of the partition size bound (finer partitions make
// representatives more faithful) before giving up.
func Solve(inst *search.Instance, opts Options) (*Result, error) {
	start := time.Now()
	// The same gate as Applicable, but compiling the branches exactly
	// once (Applicable throws its compilation away; callers that probed
	// it first would otherwise pay for the formula walk twice more).
	if !inst.Analysis.Linear {
		return nil, fmt.Errorf("sketch: query is not linear: %v", inst.Analysis.NonlinearReasons)
	}
	branches, rewrites, err := translate.CompileSketch(inst.Analysis, MaxBranches)
	if err != nil {
		return nil, fmt.Errorf("sketch: %w", err)
	}
	if inst.Analysis.Query.Objective != nil && inst.ObjW == nil {
		return nil, fmt.Errorf("sketch: objective is not affine")
	}
	res := &Result{Workers: opts.workers(), AtomRewrites: rewrites}
	defer func() { res.Elapsed = time.Since(start) }()
	n := len(inst.Rows)
	pins, err := pinSet(n, opts.Require)
	if err != nil {
		return nil, err
	}
	exAtoms, err := exclusionAtoms(inst, opts.Exclude)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		// The empty package, judged under the linear lens (empty sums
		// are 0): feasible when some branch's rows accept the zero
		// vector and the cardinality bounds allow an empty package.
		res.Mult = []int{}
		for _, br := range branches {
			ba, err := newBranchAtoms(opts.Ctx, inst, br)
			if err != nil {
				return nil, err
			}
			ok := inst.Bounds.Lo <= 0
			for _, at := range ba.tuple {
				ok = ok && at.Check(nil)
			}
			if ok {
				res.Feasible = true
				break
			}
		}
		return res, nil
	}
	if len(branches) == 0 {
		res.Notes = append(res.Notes, "SUCH THAT is constant false; no package can satisfy the query")
		return res, nil
	}
	deadline := time.Time{}
	if opts.Timeout > 0 {
		deadline = start.Add(opts.Timeout)
	}
	trees := &treeSource{inst: inst, opts: opts, res: res}
	// best: the feasible branch outcome with the best objective.
	// fallback: the first refined-but-infeasible outcome, reported when
	// no branch reaches feasibility (mirrors the single-branch contract:
	// a best-effort package plus Feasible=false).
	var best, fallback, last *Result
	// merged is the certified dual bound over every DNF branch (the
	// union's optimum cannot beat the best branch relaxation); it backs
	// both the reported interval and the anytime early exit.
	wantBound := inst.Analysis.Query.Objective != nil && inst.ObjW != nil
	var merged bound.Outcome
	// recordBound folds a pass's per-branch pipeline results into the
	// union bound and the Result's stage/round stats (stage keeps the
	// deepest seen; rounds stay cumulative across the parity retry, like
	// Nodes/LPIters — they measure real work done).
	recordBound := func(prs []bound.PipelineResult) {
		var stage string
		var rounds int
		merged, stage, rounds = mergeBranchBounds(objSense(inst), prs)
		if boundStageRank(stage) > boundStageRank(res.BoundStage) {
			res.BoundStage = stage
		}
		res.BoundRounds += rounds
	}
	for pass := 0; ; pass++ {
		best, fallback, last = nil, nil, nil
		var prs []bound.PipelineResult
		// Anytime pre-pass: with a gap tolerance and several branches,
		// bound every branch up front (cheap LPs over leaves or raw
		// candidates) so the descent loop below can stop as soon as an
		// incumbent is provably within tolerance of the union bound. No
		// incumbent exists yet, so the pipeline runs every allowed stage
		// — the tightest certificate it can produce.
		prebounded := false
		if wantBound && opts.GapTolerance > 0 && len(branches) > 1 {
			for _, br := range branches {
				ba, err := newBranchAtoms(opts.Ctx, inst, br)
				if err != nil {
					return nil, err
				}
				bt := time.Now()
				pr, err := branchBound(inst, ba, exAtoms, pins, trees, opts, nanIncumbent, false)
				res.BoundTime += time.Since(bt)
				if err != nil {
					if ferr := boundFatal(opts, err); ferr != nil {
						return nil, ferr
					}
					// Certification rung: the bound pass is optional, so
					// its failure degrades to an uncertified answer and
					// the descent continues.
					res.degrade("bound", fmt.Sprintf("certification pass failed (%v); answer uncertified", err))
					wantBound = false
					prs = nil
					break
				}
				prs = append(prs, pr)
			}
			if wantBound {
				recordBound(prs)
				prebounded = true
			}
		}
		for bi, br := range branches {
			if err := lifecycle.ContextErr(opts.Ctx); err != nil {
				return nil, err
			}
			if prebounded && best != nil && merged.Certified {
				iv := bound.Interval{Found: best.Objective, Bound: merged.Bound}
				if iv.Gap() <= opts.GapTolerance {
					res.Notes = append(res.Notes, fmt.Sprintf(
						"anytime: certified gap %.2f%% ≤ tolerance %.2f%% after %d of %d branches; skipping the rest",
						100*iv.Gap(), 100*opts.GapTolerance, bi, len(branches)))
					break
				}
			}
			ba, err := newBranchAtoms(opts.Ctx, inst, br)
			if err != nil {
				return nil, err
			}
			bres := &Result{}
			last = bres
			if err := solveBranch(inst, ba, exAtoms, pins, trees, opts, deadline, bres); err != nil {
				return nil, err
			}
			res.Branches++
			res.Nodes += bres.Nodes
			res.LPIters += bres.LPIters
			prefix := ""
			if len(branches) > 1 {
				prefix = fmt.Sprintf("branch %d/%d: ", bi+1, len(branches))
			}
			for _, note := range bres.Notes {
				res.Notes = append(res.Notes, prefix+note)
			}
			if bres.Feasible {
				if best == nil || inst.Better(bres.Objective, best.Objective) {
					best = bres
				}
				if inst.Analysis.Query.Objective == nil {
					break // any feasible branch answers an objective-free query
				}
			} else if fallback == nil && bres.Mult != nil {
				fallback = bres
			}
			if wantBound && !prebounded {
				// Bound after the descent, not before: the best objective
				// so far is an incumbent the pipeline can measure its gap
				// against, stopping stage escalation as soon as the
				// certificate is tight enough (Options.GapTolerance).
				incumbent, has := nanIncumbent, false
				if best != nil {
					incumbent, has = best.Objective, true
				}
				bt := time.Now()
				pr, err := branchBound(inst, ba, exAtoms, pins, trees, opts, incumbent, has)
				res.BoundTime += time.Since(bt)
				if err != nil {
					if ferr := boundFatal(opts, err); ferr != nil {
						return nil, ferr
					}
					res.degrade("bound", fmt.Sprintf("certification pass failed (%v); answer uncertified", err))
					wantBound = false
					prs = nil
				} else {
					prs = append(prs, pr)
				}
			}
		}
		if wantBound && !prebounded {
			recordBound(prs)
		}
		if best != nil || pass > 0 || !res.patchedAny {
			break
		}
		// Parity retry: the descent ran over a patched tree and found no
		// feasible package. Patched trees are approximations (merged
		// internal representatives, nearest-leaf routing), so before
		// declaring the query infeasible, rebuild from scratch and run
		// once more — incremental maintenance must never lose a package
		// a rebuild would find. The fresh tree overwrites the patched
		// one in both cache tiers.
		res.Notes = append(res.Notes,
			"patched partition tree yielded no feasible package; rebuilding from scratch and retrying")
		// Branch stats describe the pass the final answer came from;
		// Nodes/LPIters stay cumulative (they measure real work done).
		res.Branches = 0
		o := opts
		o.Patch = nil
		o.forceRebuild = true
		trees = &treeSource{inst: inst, opts: o, res: res}
	}
	pick := best
	if pick == nil {
		pick = fallback
	}
	if pick == nil {
		// Every branch was sketch-infeasible before reaching refine:
		// report the last attempt's tree shape so stats still show what
		// ran, with no package.
		res.Partitions, res.Levels, res.TopVars = last.Partitions, last.Levels, last.TopVars
		res.Notes = append(res.Notes, "sketch over representatives is infeasible on every branch; the query may have no package")
		return res, nil
	}
	res.Mult, res.Objective, res.Feasible = pick.Mult, pick.Objective, pick.Feasible
	res.Partitions, res.Levels, res.TopVars = pick.Partitions, pick.Levels, pick.TopVars
	res.Active, res.Refined, res.Repaired = pick.Active, pick.Refined, pick.Repaired
	res.LPIters += merged.Iterations
	if merged.Certified && res.Feasible {
		res.Bound, res.Certified = merged.Bound, true
		res.Gap = bound.Interval{Found: res.Objective, Bound: res.Bound}.Gap()
	}
	return res, nil
}

// boundFatal classifies a bound-pass error: cancellation must
// propagate (the caller gave up, not the subsystem), everything else
// may degrade to an uncertified answer. Returns the error to propagate
// or nil when degrading is allowed.
func boundFatal(opts Options, err error) error {
	if errors.Is(err, lifecycle.ErrCanceled) {
		return err
	}
	if cerr := lifecycle.ContextErr(opts.Ctx); cerr != nil {
		return cerr
	}
	return nil
}

// treeSource memoizes partition-tree acquisition across the branch
// descents of one Solve: every DNF branch shares the same candidates
// and split attributes, so one (τ, depth) tree serves them all, and the
// cache/persist flags on the outer Result reflect real acquisitions,
// never intra-call reuse.
type treeSource struct {
	inst  *search.Instance
	opts  Options
	res   *Result
	trees map[[2]int]*Tree
}

func (ts *treeSource) get(tau, depth int) (*Tree, error) {
	k := [2]int{tau, depth}
	if t, ok := ts.trees[k]; ok {
		return t, nil
	}
	o := ts.opts
	o.MaxPartitionSize, o.NumPartitions, o.Depth = tau, 0, depth
	t, err := acquireTree(ts.inst, o, ts.res)
	if err != nil {
		return nil, err
	}
	if ts.trees == nil {
		ts.trees = map[[2]int]*Tree{}
	}
	ts.trees[k] = t
	return t, nil
}

// solveBranch runs the classic SketchRefine pipeline — acquire tree,
// descend, refine — for one DNF branch, recording the outcome in res.
// A branch whose top-level sketch is infeasible retries flat over the
// same leaves, then once more at τ/4, exactly like the conjunctive
// engine always has.
func solveBranch(inst *search.Instance, ba *branchAtoms, exAtoms []*translate.LinearAtom, pins map[int]bool, trees *treeSource, opts Options, deadline time.Time, res *Result) error {
	n := len(inst.Rows)
	// The working atom set: the branch's tuple-level rows plus one
	// synthetic atom per exclusion cut. Everything downstream — the
	// per-level sketch MILPs, the refine residuals, the final check —
	// enforces this extended set.
	fullAtoms := ba.tuple
	if len(exAtoms) > 0 {
		fullAtoms = append(append([]*translate.LinearAtom{}, ba.tuple...), exAtoms...)
	}
	tau := effectiveTau(n, opts)
	depth := opts.depth()
	reducedTau := false
	var flatFrom *Tree // a hierarchical tree whose leaves the flat retry reuses
	for {
		if err := lifecycle.ContextErr(opts.Ctx); err != nil {
			return err
		}
		var tree *Tree
		if flatFrom != nil {
			// The flat retry shares the previous tree's leaf level: same
			// τ and seed mean the leaves are identical, so re-running the
			// offline partitioning (the dominant cost at scale) would
			// only rebuild what is already in memory.
			tree = flatFrom.flatten()
			flatFrom = nil
		} else {
			var err error
			tree, err = trees.get(tau, depth)
			if err != nil {
				return err
			}
		}
		res.Partitions = len(tree.Leaves())
		res.Levels = tree.Depth
		res.TopVars = len(tree.Levels[0])
		y, leafAtoms, infeasible, err := descend(inst, tree, ba, exAtoms, pins, opts, deadline, res)
		if err != nil {
			return err
		}
		if infeasible {
			switch {
			case tree.Depth > 1:
				// Coarse top-level representatives can be infeasible
				// where the flat sketch is not; retry over the same
				// leaves as a single level before shrinking τ. (Keyed
				// on the tree actually built: a depth request the
				// builder early-stopped to 1 level must not re-try the
				// same flat tree.)
				depth = 1
				flatFrom = tree
				res.Notes = append(res.Notes,
					"hierarchical sketch infeasible at the top level; retrying flat over the same leaves")
				continue
			case !reducedTau && tau > 1:
				reducedTau = true
				tau = max(1, tau/4)
				res.Notes = append(res.Notes,
					fmt.Sprintf("sketch over representatives infeasible; retrying with partition size %d", tau))
				continue
			}
			res.Notes = append(res.Notes, "sketch over representatives is infeasible; the query may have no package")
			return nil
		}
		if y == nil {
			res.Notes = append(res.Notes, "sketch solver hit its limits without an incumbent")
			return nil
		}
		refine(inst, tree.leafPartitioning(), fullAtoms, leafAtoms, y, pins, opts, deadline, res)
		return nil
	}
}

// exclusionAtoms converts excluded multiplicity vectors into tuple-level
// linear atoms (Σ_{i∈S} x_i − Σ_{i∉S} x_i ≤ |S|−1).
func exclusionAtoms(inst *search.Instance, exclude [][]int) ([]*translate.LinearAtom, error) {
	if len(exclude) == 0 {
		return nil, nil
	}
	if inst.MaxMult != 1 {
		return nil, fmt.Errorf("sketch: exclusion cuts require 0/1 multiplicities (REPEAT 0), REPEAT is %d", inst.MaxMult-1)
	}
	atoms := make([]*translate.LinearAtom, 0, len(exclude))
	for _, mult := range exclude {
		if len(mult) != len(inst.Rows) {
			return nil, fmt.Errorf("sketch: exclusion cut has %d entries for %d candidates", len(mult), len(inst.Rows))
		}
		w := make([]float64, len(mult))
		in := 0
		for i, m := range mult {
			if m > 0 {
				w[i] = 1
				in++
			} else {
				w[i] = -1
			}
		}
		atoms = append(atoms, &translate.LinearAtom{W: w, Op: lp.LE, RHS: float64(in - 1), Source: "exclusion cut"})
	}
	return atoms, nil
}

// nodeExclusionAtoms re-weights tuple-level exclusion atoms over a
// level's nodes: a node's weight is its subtree's mean tuple weight,
// the same per-unit approximation the representative carries for SUM
// atoms.
func nodeExclusionAtoms(nodes []Node, exAtoms []*translate.LinearAtom) []*translate.LinearAtom {
	out := make([]*translate.LinearAtom, len(exAtoms))
	for k, ex := range exAtoms {
		w := make([]float64, len(nodes))
		for g := range nodes {
			s := 0.0
			for _, i := range nodes[g].Tuples {
				s += ex.W[i]
			}
			w[g] = s / float64(len(nodes[g].Tuples))
		}
		out[k] = &translate.LinearAtom{W: w, Op: ex.Op, RHS: ex.RHS, Source: ex.Source}
	}
	return out
}

// pinSet validates Require into a lookup set.
func pinSet(n int, require []int) (map[int]bool, error) {
	if len(require) == 0 {
		return nil, nil
	}
	pins := make(map[int]bool, len(require))
	for _, i := range require {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("sketch: pinned candidate %d out of range [0,%d)", i, n)
		}
		pins[i] = true
	}
	return pins, nil
}

// pinCount counts the pinned candidates a node's subtree covers: the
// node's multiplicity lower bound at every sketch level.
func pinCount(tuples []int, pins map[int]bool) int {
	if len(pins) == 0 {
		return 0
	}
	c := 0
	for _, i := range tuples {
		if pins[i] {
			c++
		}
	}
	return c
}

// acquireTree fetches the partition tree from the in-memory cache, then
// from the on-disk store, then — when Options.Patch supplies lineage —
// by patching the previous dataset's tree in place, and only then
// builds it (populating both tiers). The key fingerprints the candidate
// rows, so any change to the backing data misses in both tiers; with a
// Patch the stale tree is repaired via ApplyDelta and re-persisted,
// without one a rebuild overwrites it. CacheHit/TreeLoaded/TreePatched
// reflect the tree this call returns: a retry that rebuilds clears
// flags recorded by an earlier attempt.
//
// Concurrent misses on the same key coalesce onto one acquisition (see
// Cache.do): joiners share the winner's tree and report Coalesced. A
// canceled acquisition returns a lifecycle.ErrCanceled wrap and writes
// nothing to either cache tier — the incomplete tree a canceled build
// returns is discarded here, never published.
func acquireTree(inst *search.Instance, opts Options, res *Result) (*Tree, error) {
	res.CacheHit, res.TreeLoaded, res.TreePatched, res.Coalesced, res.DeltaApplied = false, false, false, false, 0
	var store *Store
	if opts.PersistDir != "" {
		store = NewStore(opts.PersistDir)
	}
	if opts.Cache == nil && store == nil {
		return buildFresh(inst, opts, res, nil, Key{}, nil)
	}
	key, err := keyForCtx(inst, opts)
	if err != nil {
		return nil, err
	}
	width := 0
	if len(inst.Rows) > 0 {
		width = len(inst.Rows[0])
	}
	if opts.forceRebuild {
		return buildFresh(inst, opts, res, store, key, opts.Cache)
	}
	// Cache rung of the degradation ladder: a failed probe bypasses the
	// in-memory tier for this acquisition (disk, patch, and build still
	// run) rather than failing the query.
	cacheOK := opts.Cache != nil
	if cacheOK {
		if ferr := fault.Check("sketch.cache.get"); ferr != nil {
			cacheOK = false
			res.degrade("cache", fmt.Sprintf("probe failed (%v); bypassed for this query", ferr))
		}
	}
	cacheGet := func() (*Tree, bool) {
		if !cacheOK {
			return nil, false
		}
		t, ok := opts.Cache.Get(key)
		if ok {
			res.CacheHit = true
			res.patchedAny = res.patchedAny || t.Patched
		}
		return t, ok
	}
	if t, ok := cacheGet(); ok {
		return t, nil
	}
	miss := func() (*Tree, error) {
		// The flight's winner may have populated the cache between this
		// caller's miss and its grant; re-check before doing real work.
		// Peek, not Get: the one recorded miss already describes this
		// acquisition, a second lookup must not skew the counters.
		if cacheOK {
			if t, ok := opts.Cache.Peek(key); ok {
				res.CacheHit = true
				res.patchedAny = res.patchedAny || t.Patched
				return t, nil
			}
		}
		if store != nil {
			t, err := store.Load(key)
			if err == nil && t != nil {
				err = t.validateAgainst(len(inst.Rows), width)
			}
			switch {
			case err != nil:
				// Corrupt, truncated, stale, or instance-mismatched files are
				// a rebuild, never a failure: the build below overwrites them.
				res.Notes = append(res.Notes, fmt.Sprintf("persisted partition tree unusable (%v); rebuilding", err))
				res.degrade("store", fmt.Sprintf("persisted tree unusable (%v); rebuilt", err))
			case t != nil:
				res.TreeLoaded = true
				res.patchedAny = res.patchedAny || t.Patched
				if cacheOK {
					cachePublish(opts.Cache, key, t, res)
				}
				return t, nil
			}
		}
		if t := patchStaleTree(inst, opts, key, store, res); t != nil {
			return t, nil
		}
		return buildFresh(inst, opts, res, store, key, opts.Cache)
	}
	if opts.Cache == nil {
		return miss()
	}
	t, coalesced, err := opts.Cache.do(opts.Ctx, key, miss)
	if err != nil {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			return nil, lifecycle.Canceled(opts.Ctx.Err())
		}
		return nil, err
	}
	if coalesced {
		res.Coalesced = true
		res.patchedAny = res.patchedAny || t.Patched
	}
	return t, nil
}

// buildFresh runs the offline build and publishes the result to both
// cache tiers — unless the context was canceled mid-build, in which
// case the incomplete tree is dropped on the floor and an error
// returned, keeping cache and store consistent.
func buildFresh(inst *search.Instance, opts Options, res *Result, store *Store, key Key, cache *Cache) (*Tree, error) {
	t := BuildTree(inst, opts)
	if err := lifecycle.ContextErr(opts.Ctx); err != nil {
		return nil, err
	}
	cachePublish(cache, key, t, res)
	if store != nil {
		if err := store.Save(key, t); err != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("could not persist partition tree: %v", err))
			res.degrade("store", fmt.Sprintf("tree not persisted (%v); disk tier cold for this key", err))
		}
	}
	return t, nil
}

// cachePublish puts a tree in the in-memory tier unless the publish
// fault site fires; publication is optional, so a failure only degrades
// (the tree still serves this query and the disk tier).
func cachePublish(c *Cache, key Key, t *Tree, res *Result) {
	if c == nil {
		return
	}
	if ferr := fault.Check("sketch.cache.put"); ferr != nil {
		res.degrade("cache", fmt.Sprintf("publish failed (%v); tree not cached", ferr))
		return
	}
	c.Put(key, t)
}

// patchStaleTree attempts incremental maintenance on an exact-key miss:
// the tree cached (or persisted) for the pre-write dataset — the base
// fingerprint in Options.Patch — is patched via ApplyDelta to cover the
// current candidates, stored under the new key, and re-persisted
// atomically. Returns nil when there is no lineage, no base tree, or
// the delta cannot be absorbed locally (the caller then rebuilds).
//
// Patching is the first rung above a rebuild, so every failure mode —
// an injected fault, or a panic out of ApplyDelta on a tree that
// decoded cleanly but trips an invariant — degrades to "no patch" and
// lets the caller rebuild from scratch, never fails the query.
func patchStaleTree(inst *search.Instance, opts Options, key Key, store *Store, res *Result) (t *Tree) {
	defer func() {
		if r := recover(); r != nil {
			res.degrade("patch", fmt.Sprintf("delta patch panicked (%v); rebuilding from scratch", r))
			res.TreePatched = false
			t = nil
		}
	}()
	if opts.Patch == nil || key.Fingerprint == opts.Patch.BaseFingerprint {
		return nil
	}
	if opts.stopped() {
		// A canceled solve must not publish a patched tree; report "no
		// patch" and let the build path surface the cancellation.
		return nil
	}
	if ferr := fault.Check("sketch.tree.patch"); ferr != nil {
		res.degrade("patch", fmt.Sprintf("delta patch failed (%v); rebuilding from scratch", ferr))
		return nil
	}
	baseKey := key
	baseKey.Fingerprint = opts.Patch.BaseFingerprint
	var base *Tree
	if opts.Cache != nil {
		base, _ = opts.Cache.Get(baseKey)
	}
	if base == nil && store != nil {
		if t, err := store.Load(baseKey); err == nil && t != nil {
			base = t
		}
	}
	if base == nil {
		return nil
	}
	patched, ok := base.ApplyDelta(inst.Rows, opts.Patch.Remap, opts)
	if !ok {
		res.Notes = append(res.Notes, "stale partition tree not locally patchable; rebuilding")
		return nil
	}
	res.TreePatched = true
	res.patchedAny = true
	res.DeltaApplied = opts.Patch.DeltaSize(len(inst.Rows))
	cachePublish(opts.Cache, key, patched, res)
	if store != nil {
		if err := store.Save(key, patched); err != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("could not persist patched partition tree: %v", err))
			res.degrade("store", fmt.Sprintf("patched tree not persisted (%v)", err))
		}
	}
	return patched
}

// KeyFor resolves the cache/store key an evaluation with these options
// uses for the instance: the candidate fingerprint (Options.Fingerprint
// when precomputed) plus every knob that shapes the tree. Exported for
// benchmarks and tooling that pre-seed the cache.
func KeyFor(inst *search.Instance, opts Options) Key {
	opts.Ctx = nil // tool callers want the key, not a cancellation point
	key, _ := keyForCtx(inst, opts)
	return key
}

// keyForCtx is KeyFor with the solve's context threaded into the O(n)
// fingerprint hash, so a canceled evaluation bails out of the hash
// instead of finishing it (the dominant per-solve cost at 1M rows when
// no memo precomputes the fingerprint).
func keyForCtx(inst *search.Instance, opts Options) (Key, error) {
	fp := uint64(0)
	if opts.Fingerprint != nil {
		fp = *opts.Fingerprint
	} else {
		var err error
		if fp, err = fingerprintCtx(opts.Ctx, inst.Rows); err != nil {
			return Key{}, err
		}
	}
	return Key{
		Fingerprint: fp,
		Attrs:       attrsKey(partitionAttrs(inst)),
		Tau:         effectiveTau(len(inst.Rows), opts),
		Depth:       opts.depth(),
		Seed:        opts.Seed,
	}, nil
}

func attrsKey(attrs []int) string {
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = strconv.Itoa(a)
	}
	return strings.Join(parts, ",")
}

// descend runs the sketch at every level of the tree: one MILP over the
// root representatives first, then each selected node's multiplicity is
// re-solved over its children's representatives against residual
// constraint right-hand sides — the same residual scheme refine applies
// to real tuples, applied to representatives level by level. Only nodes
// chosen at the level above are descended into. Returns the leaf
// multiplicities together with the branch atoms weighted over the leaf
// level (what refine consumes): representative rows for affine and AVG
// atoms, envelope relaxations for the MIN/MAX selector rows.
func descend(inst *search.Instance, tree *Tree, ba *branchAtoms, exAtoms []*translate.LinearAtom, pins map[int]bool, opts Options, deadline time.Time, res *Result) (y []int, leafAtoms []*translate.LinearAtom, infeasible bool, err error) {
	levelAtoms := make([][]*translate.LinearAtom, tree.Depth)
	levelObjW := make([][]float64, tree.Depth)
	levelAdm := make([][]int, tree.Depth)
	for l, nodes := range tree.Levels {
		reps := make([]schema.Row, len(nodes))
		for i := range nodes {
			reps[i] = nodes[i].Rep
		}
		atoms, err := ba.levelAtoms(nodes, tree.Attrs, reps)
		if err != nil {
			return nil, nil, false, err
		}
		atoms = append(atoms, nodeExclusionAtoms(nodes, exAtoms)...)
		w, _, err := translate.ObjectiveWeights(inst.Analysis, reps)
		if err != nil {
			return nil, nil, false, err
		}
		levelAtoms[l], levelObjW[l], levelAdm[l] = atoms, w, ba.admissibleCounts(nodes)
	}
	y, infeasible, err = rootSolve(inst, tree.Levels[0], levelAtoms[0], levelObjW[0], levelAdm[0], pins, opts, deadline, res)
	if err != nil || infeasible || y == nil {
		return nil, nil, infeasible, err
	}
	for l := 1; l < tree.Depth; l++ {
		y = pushLevel(inst, tree, l, levelAtoms, levelObjW, levelAdm, y, pins, opts, deadline, res)
	}
	return y, levelAtoms[tree.Depth-1], false, nil
}

// jointCap bounds the variable count of a joint per-level MILP (the
// union of all active nodes' children); beyond it pushLevel falls back
// to per-parent residual solves, which stay tiny regardless of how
// many nodes the level above selected.
const jointCap = 4096

// rootSolve builds and solves the top-level sketch MILP: one integer
// variable per root node (the representative's multiplicity, capped at
// the subtree's tuple capacity and floored at the subtree's pinned
// count), the query's linear atoms re-weighted over the root
// representatives, and the affine objective likewise.
func rootSolve(inst *search.Instance, nodes []Node, atoms []*translate.LinearAtom, objW []float64, adm []int, pins map[int]bool, opts Options, deadline time.Time, res *Result) (y []int, infeasible bool, err error) {
	G := len(nodes)
	p := lp.NewProblem(G)
	for g := 0; g < G; g++ {
		lo := float64(pinCount(nodes[g].Tuples, pins))
		up := nodeCap(inst, &nodes[g], adm, g)
		if lo > up {
			// A pinned tuple inside a fully-eliminated subtree: no
			// package on this branch can honor both.
			return nil, true, nil
		}
		if err := p.SetBounds(g, lo, up); err != nil {
			return nil, false, err
		}
	}
	if err := p.SetObjective(objW, objSense(inst)); err != nil {
		return nil, false, err
	}
	for _, at := range atoms {
		var coefs []lp.Coef
		for g, w := range at.W {
			if w != 0 {
				coefs = append(coefs, lp.Coef{Var: g, Val: w})
			}
		}
		if _, err := p.AddConstraint(coefs, at.Op, at.RHS); err != nil {
			return nil, false, err
		}
	}
	mp := milp.NewProblem(p)
	for g := 0; g < G; g++ {
		mp.SetInteger(g)
	}
	sol := milp.Solve(mp, milp.Options{MaxNodes: opts.nodes(), TimeLimit: timeShare(deadline, 2), Ctx: opts.Ctx})
	res.Nodes += int64(sol.Nodes)
	res.LPIters += sol.LPIters
	switch sol.Status {
	case milp.StatusInfeasible:
		return nil, true, nil
	case milp.StatusUnbounded:
		return nil, false, fmt.Errorf("sketch: objective is unbounded over representatives (add constraints or REPEAT)")
	}
	if sol.X == nil {
		return nil, false, nil
	}
	y = make([]int, G)
	for g := 0; g < G; g++ {
		y[g] = int(math.Round(sol.X[g]))
	}
	return y, false, nil
}

// pushLevel distributes the multiplicities chosen at level l-1 over the
// nodes of level l, descending only into subtrees the level above
// selected. It first attempts one joint MILP over the union of every
// active parent's children against the full constraints — the
// highest-quality push-down, and still tiny because the union is
// bounded by the active count times the fanout. When that union
// exceeds jointCap or the joint solve fails, the active parents are
// pushed down as a concurrent wave (see solveWave): each parent gets
// its own MILP over its children whose constraint right-hand sides are
// the query atoms minus every other parent's representative
// contribution, the solves fan out across workers (parents own
// disjoint child sets), and the merge walks the parents in fixed order
// (largest multiplicity first). A parent whose sub-MILP fails falls
// back to a greedy spread over its children, nearest representative
// first, honoring pinned lower bounds. Cross-parent error left by the
// shared snapshot is absorbed a level deeper — ultimately by refine's
// validation and repair sweeps.
func pushLevel(inst *search.Instance, tree *Tree, l int, levelAtoms [][]*translate.LinearAtom, levelObjW [][]float64, levelAdm [][]int, parentMult []int, pins map[int]bool, opts Options, deadline time.Time, res *Result) []int {
	parents := tree.Levels[l-1]
	children := tree.Levels[l]
	pAtoms, cAtoms := levelAtoms[l-1], levelAtoms[l]
	adm := levelAdm[l]
	childMult := make([]int, len(children))

	var union []int
	for g, m := range parentMult {
		if m > 0 {
			union = append(union, parents[g].Children...)
		}
	}
	if len(union) <= jointCap {
		sort.Ints(union)
		residual := make([]float64, len(cAtoms))
		for k := range cAtoms {
			residual[k] = cAtoms[k].RHS
		}
		if residualSolve(inst, union, nodeBound(inst, children, pins, adm), cAtoms, levelObjW[l], residual, childMult, opts, deadline, res) {
			return childMult
		}
		for _, ci := range union {
			childMult[ci] = 0
		}
	}

	// cur[k]: every active parent's representative contribution to atom
	// k — the shared snapshot the wave's residuals are taken against.
	cur := make([]float64, len(cAtoms))
	grpSum := make([][]float64, len(parents))
	for g := range parents {
		grpSum[g] = make([]float64, len(cAtoms))
		if parentMult[g] == 0 {
			continue
		}
		for k := range cAtoms {
			grpSum[g][k] = pAtoms[k].W[g] * float64(parentMult[g])
			cur[k] += grpSum[g][k]
		}
	}
	var active []int
	for g, m := range parentMult {
		if m > 0 {
			active = append(active, g)
		}
	}
	sort.SliceStable(active, func(i, j int) bool {
		if parentMult[active[i]] != parentMult[active[j]] {
			return parentMult[active[i]] > parentMult[active[j]]
		}
		return active[i] < active[j]
	})
	oks := solveWave(inst, active, func(g int) []int { return parents[g].Children },
		nodeBound(inst, children, pins, adm), cAtoms, levelObjW[l], cur, grpSum, childMult, opts, deadline, res)
	// Scales feed only the greedy fallback's distance metric, and cost a
	// full candidate scan — computed on first use.
	var scales []float64
	for ai, g := range active {
		if !oks[ai] {
			if scales == nil {
				scales = attrScales(inst, tree.Attrs)
			}
			greedySpread(inst, children, parents[g], parentMult[g], childMult, pins, scales, tree.Attrs, adm)
		}
	}
	return childMult
}

// nodeBound is the push-down bound function over a level's nodes:
// floored at the subtree's pinned count, capped at the subtree's
// admissible tuple capacity.
func nodeBound(inst *search.Instance, nodes []Node, pins map[int]bool, adm []int) func(int) (float64, float64) {
	return func(ci int) (float64, float64) {
		return float64(pinCount(nodes[ci].Tuples, pins)), nodeCap(inst, &nodes[ci], adm, ci)
	}
}

// nodeCap bounds a node's multiplicity at a sketch level: the subtree's
// tuple count times the REPEAT cap, shrunk to the admissible supply
// when the branch carries elimination rows — units the refine MILP
// could never place must not be promised by the sketch. A node whose
// whole subtree is eliminated caps at 0 (the envelope prune as a
// bound).
func nodeCap(inst *search.Instance, n *Node, adm []int, g int) float64 {
	tuples := len(n.Tuples)
	if adm != nil && adm[g] < tuples {
		tuples = adm[g]
	}
	if tuples == 0 {
		return 0
	}
	if inst.MaxMult > 0 {
		return float64(tuples * inst.MaxMult)
	}
	return lp.Inf
}

// greedySpread hands a parent's units to its children when the
// push-down MILP fails: every child first receives its pinned lower
// bound, then the remaining units go round-robin to the children whose
// representatives are nearest the parent's in normalized attribute
// space (the same allocation the per-leaf repair uses).
func greedySpread(inst *search.Instance, children []Node, parent Node, units int, childMult []int, pins map[int]bool, scales []float64, attrs []int, adm []int) {
	floor := func(ci int) int { return pinCount(children[ci].Tuples, pins) }
	capacity := func(ci int) int {
		tuples := len(children[ci].Tuples)
		if adm != nil && adm[ci] < tuples {
			tuples = adm[ci]
		}
		if inst.MaxMult > 0 {
			return tuples * inst.MaxMult
		}
		if tuples == 0 {
			return 0
		}
		return max(units, 1)
	}
	dist := func(ci int) float64 {
		d := 0.0
		for ai, a := range attrs {
			diff := (numAt(children[ci].Rep, a) - numAt(parent.Rep, a)) / scales[ai]
			d += diff * diff
		}
		return d
	}
	allocate(parent.Children, units, floor, capacity, dist, childMult)
}

// objSense maps the query objective to an LP sense (minimize-zero for
// objective-free queries).
func objSense(inst *search.Instance) lp.Sense {
	if o := inst.Analysis.Query.Objective; o != nil && o.Sense == paql.Maximize {
		return lp.Maximize
	}
	return lp.Minimize
}

// timeShare splits the remaining budget into parts (0 = no limit).
func timeShare(deadline time.Time, parts int) time.Duration {
	if deadline.IsZero() {
		return 0
	}
	left := time.Until(deadline)
	if left <= 0 {
		// The budget is spent; hand solves a token slice so they bail
		// out quickly rather than running unbounded.
		return time.Millisecond
	}
	return left / time.Duration(max(parts, 1))
}

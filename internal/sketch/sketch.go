// Package sketch implements SketchRefine, the partition-based
// evaluation strategy from the paper's follow-up work ("Scalable
// Package Queries in Relational Database Systems", PVLDB 2016): instead
// of handing the solver one MILP with a variable per candidate tuple,
// the relation is partitioned offline into size-bounded groups over the
// query's numeric attributes, a small "sketch" package is solved over
// one representative tuple per group, and the sketch is then refined
// partition by partition, swapping each chosen representative for real
// tuples via a tiny per-partition MILP. One huge solve becomes many
// small ones, trading a bounded objective gap for orders-of-magnitude
// lower latency at scale.
//
// The strategy applies to linear queries whose SUCH THAT clause is a
// pure conjunction of SUM/COUNT comparison atoms and whose objective is
// affine (sketch.Applicable reports the precise obstruction otherwise).
// When a partition's sub-MILP is infeasible or the time budget runs
// out, a greedy repair pass substitutes the real tuples nearest the
// representative; a final validation plus bounded re-refinement sweeps
// keep the result honest — Result.Feasible is true only for packages
// that satisfy the full SUCH THAT formula.
package sketch

import (
	"fmt"
	"math"
	"time"

	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/paql"
	"repro/internal/search"
	"repro/internal/translate"
)

// DefaultPartitionSize is the partition size bound τ when the caller
// sets neither MaxPartitionSize nor NumPartitions.
const DefaultPartitionSize = 64

// Options tunes a SketchRefine evaluation.
type Options struct {
	// MaxPartitionSize bounds each partition (τ); 0 = default (64).
	MaxPartitionSize int
	// NumPartitions targets a partition count instead; the tighter of
	// the two bounds wins. 0 = derive from MaxPartitionSize.
	NumPartitions int
	// Seed drives partitioning tie-breaks (deterministic per seed).
	Seed int64
	// Timeout bounds the whole evaluation; refine falls back to greedy
	// repair once it expires.
	Timeout time.Duration
	// SolverNodes caps branch-and-bound nodes per sub-MILP (0 = default).
	SolverNodes int
}

func (o Options) nodes() int {
	if o.SolverNodes > 0 {
		return o.SolverNodes
	}
	return 50000
}

// Result is a SketchRefine outcome.
type Result struct {
	Mult       []int   // multiplicity per candidate
	Objective  float64 // objective of Mult (0 when the query has none)
	Feasible   bool    // Mult satisfies the full SUCH THAT formula
	Partitions int     // partitions produced by the offline step
	Active     int     // partitions the sketch solution touched
	Refined    int     // partitions refined via their sub-MILP
	Repaired   int     // partitions that fell back to greedy repair
	Nodes      int64   // branch-and-bound nodes across all solves
	LPIters    int     // simplex iterations across all solves
	Notes      []string
	Elapsed    time.Duration
}

// Applicable reports whether the instance can be evaluated with
// SketchRefine; the error names the obstruction.
func Applicable(inst *search.Instance) error {
	if !inst.Analysis.Linear {
		return fmt.Errorf("sketch: query is not linear: %v", inst.Analysis.NonlinearReasons)
	}
	if !inst.Pure {
		return fmt.Errorf("sketch: SUCH THAT is not a pure conjunction of SUM/COUNT atoms (disjunctions and AVG/MIN/MAX need the full solver)")
	}
	if inst.Analysis.Query.Objective != nil && inst.ObjW == nil {
		return fmt.Errorf("sketch: objective is not affine")
	}
	return nil
}

// Solve runs SketchRefine: partition, sketch over representatives,
// refine per partition. When the sketch MILP over representatives is
// infeasible the partitioning is retried at a quarter of the size bound
// (finer partitions make representatives more faithful) before giving
// up.
func Solve(inst *search.Instance, opts Options) (*Result, error) {
	start := time.Now()
	if err := Applicable(inst); err != nil {
		return nil, err
	}
	res := &Result{}
	defer func() { res.Elapsed = time.Since(start) }()
	n := len(inst.Rows)
	if n == 0 {
		res.Mult = []int{}
		res.Feasible = inst.CheckAtoms(res.Mult) && inst.Bounds.Lo <= 0
		return res, nil
	}
	deadline := time.Time{}
	if opts.Timeout > 0 {
		deadline = start.Add(opts.Timeout)
	}
	tau := effectiveTau(n, opts)
	for attempt := 0; ; attempt++ {
		o := opts
		o.MaxPartitionSize, o.NumPartitions = tau, 0
		part := Partition(inst, o)
		res.Partitions = len(part.Groups)
		y, repAtoms, infeasible, err := sketchSolve(inst, part, opts, deadline, res)
		if err != nil {
			return nil, err
		}
		if infeasible {
			if attempt == 0 && tau > 1 {
				tau = max(1, tau/4)
				res.Notes = append(res.Notes,
					fmt.Sprintf("sketch over representatives infeasible; retrying with partition size %d", tau))
				continue
			}
			res.Notes = append(res.Notes, "sketch over representatives is infeasible; the query may have no package")
			return res, nil
		}
		if y == nil {
			res.Notes = append(res.Notes, "sketch solver hit its limits without an incumbent")
			return res, nil
		}
		refine(inst, part, repAtoms, y, opts, deadline, res)
		return res, nil
	}
}

// sketchSolve builds and solves the sketch MILP: one integer variable
// per partition (the representative's multiplicity, capped at partition
// capacity), the query's linear atoms re-weighted over representatives,
// and the affine objective likewise.
func sketchSolve(inst *search.Instance, part *Partitioning, opts Options, deadline time.Time, res *Result) (y []int, repAtoms []*translate.LinearAtom, infeasible bool, err error) {
	repAtoms, _, err = translate.ConjunctiveAtoms(inst.Analysis, part.Reps)
	if err != nil {
		return nil, nil, false, err
	}
	if len(repAtoms) != len(inst.Atoms) {
		return nil, nil, false, fmt.Errorf("sketch: internal error: %d representative atoms for %d instance atoms", len(repAtoms), len(inst.Atoms))
	}
	repW, _, err := translate.ObjectiveWeights(inst.Analysis, part.Reps)
	if err != nil {
		return nil, nil, false, err
	}
	G := len(part.Groups)
	p := lp.NewProblem(G)
	for g := 0; g < G; g++ {
		up := lp.Inf
		if inst.MaxMult > 0 {
			up = float64(len(part.Groups[g]) * inst.MaxMult)
		}
		if err := p.SetBounds(g, 0, up); err != nil {
			return nil, nil, false, err
		}
	}
	if err := p.SetObjective(repW, objSense(inst)); err != nil {
		return nil, nil, false, err
	}
	for _, at := range repAtoms {
		var coefs []lp.Coef
		for g, w := range at.W {
			if w != 0 {
				coefs = append(coefs, lp.Coef{Var: g, Val: w})
			}
		}
		if _, err := p.AddConstraint(coefs, at.Op, at.RHS); err != nil {
			return nil, nil, false, err
		}
	}
	mp := milp.NewProblem(p)
	for g := 0; g < G; g++ {
		mp.SetInteger(g)
	}
	sol := milp.Solve(mp, milp.Options{MaxNodes: opts.nodes(), TimeLimit: timeShare(deadline, 2)})
	res.Nodes += int64(sol.Nodes)
	res.LPIters += sol.LPIters
	switch sol.Status {
	case milp.StatusInfeasible:
		return nil, nil, true, nil
	case milp.StatusUnbounded:
		return nil, nil, false, fmt.Errorf("sketch: objective is unbounded over representatives (add constraints or REPEAT)")
	}
	if sol.X == nil {
		return nil, nil, false, nil
	}
	y = make([]int, G)
	for g := 0; g < G; g++ {
		y[g] = int(math.Round(sol.X[g]))
	}
	return y, repAtoms, false, nil
}

// objSense maps the query objective to an LP sense (minimize-zero for
// objective-free queries).
func objSense(inst *search.Instance) lp.Sense {
	if o := inst.Analysis.Query.Objective; o != nil && o.Sense == paql.Maximize {
		return lp.Maximize
	}
	return lp.Minimize
}

// timeShare splits the remaining budget into parts (0 = no limit).
func timeShare(deadline time.Time, parts int) time.Duration {
	if deadline.IsZero() {
		return 0
	}
	left := time.Until(deadline)
	if left <= 0 {
		// The budget is spent; hand solves a token slice so they bail
		// out quickly rather than running unbounded.
		return time.Millisecond
	}
	return left / time.Duration(max(parts, 1))
}

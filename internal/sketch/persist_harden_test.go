package sketch_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sketch"
)

// hardenFixture saves one tree and returns the store, key, and the
// persisted file's path.
func hardenFixture(t *testing.T) (*sketch.Store, sketch.Key, string) {
	t.Helper()
	prep := recipesPrep(t, 500)
	opts := sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 3}
	tree := sketch.BuildTree(prep.Instance, opts)
	key := sketch.Key{
		Fingerprint: sketch.Fingerprint(prep.Instance.Rows),
		Attrs:       "1,2", Tau: 16, Depth: 2, Seed: 3,
	}
	store := sketch.NewStore(t.TempDir())
	if err := store.Save(key, tree); err != nil {
		t.Fatal(err)
	}
	return store, key, store.Path(key)
}

// TestQuarantineCorruptFile checks a corrupt store file is moved aside
// with a reason file on first load, so the next miss on the key is
// clean instead of re-reading the same bad bytes forever.
func TestQuarantineCorruptFile(t *testing.T) {
	store, key, path := hardenFixture(t)
	corrupt(t, path, false, func(b []byte) []byte { b[len(b)/2] ^= 0x20; return b })

	if _, err := store.Load(key); err == nil {
		t.Fatal("corrupt file loaded without error")
	} else if !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("load error does not mention quarantine: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still at original path: %v", err)
	}
	if _, err := os.Stat(path + ".quarantine"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	reason, err := os.ReadFile(path + ".quarantine.reason")
	if err != nil {
		t.Fatalf("reason file missing: %v", err)
	}
	if !strings.Contains(string(reason), "cause:") {
		t.Fatalf("reason file lacks a cause: %q", reason)
	}
	// The key now misses cleanly — the degraded query was a one-off.
	if tr, err := store.Load(key); tr != nil || err != nil {
		t.Fatalf("post-quarantine load: got (%v, %v), want clean miss", tr, err)
	}
	// And a fresh save reclaims the original path.
	prep := recipesPrep(t, 500)
	tree := sketch.BuildTree(prep.Instance, sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 3})
	if err := store.Save(key, tree); err != nil {
		t.Fatal(err)
	}
	if loaded, err := store.Load(key); err != nil || loaded == nil {
		t.Fatalf("reload after re-save: (%v, %v)", loaded, err)
	}
}

// TestOrphanSweepOnNewStore plants crash debris — an orphaned save temp
// — and checks the first NewStore for the directory removes it while
// leaving real tree files (and quarantined files) alone.
func TestOrphanSweepOnNewStore(t *testing.T) {
	store, key, path := hardenFixture(t)
	dir := store.Dir()
	orphan := filepath.Join(dir, ".pbtree-123456789")
	if err := os.WriteFile(orphan, []byte("half a tree"), 0o644); err != nil {
		t.Fatal(err)
	}
	keepQ := path + ".quarantine"
	if err := os.WriteFile(keepQ, []byte("evidence"), 0o644); err != nil {
		t.Fatal(err)
	}

	sketch.ResetSweepForTest(dir)
	fresh := sketch.NewStore(dir)
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan temp survived the sweep: %v", err)
	}
	if _, err := os.Stat(keepQ); err != nil {
		t.Fatalf("sweep removed quarantined evidence: %v", err)
	}
	if loaded, err := fresh.Load(key); err != nil || loaded == nil {
		t.Fatalf("sweep damaged the real tree file: (%v, %v)", loaded, err)
	}
}

// TestCrashInterruptedSaveNeverBlocksLaterSaves simulates a save that
// dies between writing the temp and the rename (the temp survives, the
// process does not): later saves in a new "process" must still succeed
// and the startup sweep must clear the debris.
func TestCrashInterruptedSaveNeverBlocksLaterSaves(t *testing.T) {
	store, key, _ := hardenFixture(t)
	dir := store.Dir()

	// Crash mid-save: the rename never happens and nothing cleans up.
	restore := sketch.SetRenameHook(func(tmp, dst string) error {
		panic("simulated crash before rename")
	})
	prep := recipesPrep(t, 500)
	tree := sketch.BuildTree(prep.Instance, sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 3})
	func() {
		defer func() { recover() }()
		store.Save(key, tree)
	}()
	restore()

	orphans := 0
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".pbtree-") {
			orphans++
		}
	}
	if orphans == 0 {
		t.Fatal("crash simulation left no orphan; the test is vacuous")
	}

	// "Restart": the sweep clears the debris and saving works again.
	sketch.ResetSweepForTest(dir)
	fresh := sketch.NewStore(dir)
	if err := fresh.Save(key, tree); err != nil {
		t.Fatalf("save after crash debris: %v", err)
	}
	entries, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".pbtree-") {
			t.Fatalf("orphan %s survived restart sweep", e.Name())
		}
	}
	if loaded, err := fresh.Load(key); err != nil || loaded == nil {
		t.Fatalf("tree unreadable after crash recovery: (%v, %v)", loaded, err)
	}
}

// TestStoreRetriesTransientErrors checks one-off injected I/O errors on
// load and save are absorbed by the backoff loop, while persistent ones
// surface after the attempts are exhausted.
func TestStoreRetriesTransientErrors(t *testing.T) {
	defer sketch.SetStoreRetryForTest(3, time.Millisecond, 2*time.Millisecond)()
	store, key, _ := hardenFixture(t)

	// One transient load fault: absorbed.
	restoreInj := fault.Enable(fault.NewInjector(1,
		fault.Rule{Site: "sketch.store.load", Kind: fault.KindError, Limit: 1}))
	loaded, err := store.Load(key)
	restoreInj()
	if err != nil || loaded == nil {
		t.Fatalf("transient load fault not retried: (%v, %v)", loaded, err)
	}

	// Persistent load faults: surfaced after retries.
	inj := fault.NewInjector(2, fault.Rule{Site: "sketch.store.load", Kind: fault.KindError})
	restoreInj = fault.Enable(inj)
	_, err = store.Load(key)
	restoreInj()
	if !fault.Injected(err) {
		t.Fatalf("persistent load fault not surfaced: %v", err)
	}
	if v := inj.Coverage()["sketch.store.load"].Visits; v != 3 {
		t.Fatalf("load visited %d times, want 3 attempts", v)
	}

	// One transient save fault: absorbed, file intact afterwards.
	prep := recipesPrep(t, 500)
	tree := sketch.BuildTree(prep.Instance, sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 3})
	restoreInj = fault.Enable(fault.NewInjector(3,
		fault.Rule{Site: "sketch.store.save", Kind: fault.KindError, Limit: 1}))
	err = store.Save(key, tree)
	restoreInj()
	if err != nil {
		t.Fatalf("transient save fault not retried: %v", err)
	}
	if loaded, err := store.Load(key); err != nil || loaded == nil {
		t.Fatalf("file damaged by retried save: (%v, %v)", loaded, err)
	}
}

// TestSaveRetriesPartialWrite tears the first save attempt mid-write;
// the retry must land a complete, loadable file and leave no temp
// debris behind.
func TestSaveRetriesPartialWrite(t *testing.T) {
	defer sketch.SetStoreRetryForTest(3, time.Millisecond, 2*time.Millisecond)()
	prep := recipesPrep(t, 500)
	opts := sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 3}
	tree := sketch.BuildTree(prep.Instance, opts)
	key := sketch.Key{
		Fingerprint: sketch.Fingerprint(prep.Instance.Rows),
		Attrs:       "1,2", Tau: 16, Depth: 2, Seed: 3,
	}
	dir := t.TempDir()

	restoreInj := fault.Enable(fault.NewInjector(4,
		fault.Rule{Site: "sketch.store.fs.write", Kind: fault.KindPartialWrite, Limit: 1}))
	defer restoreInj()
	sketch.ResetSweepForTest(dir)
	store := sketch.NewStore(dir) // constructed while enabled: FS is injected
	if err := store.Save(key, tree); err != nil {
		t.Fatalf("torn first write not retried: %v", err)
	}
	restoreInj()

	loaded, err := store.Load(key)
	if err != nil || loaded == nil {
		t.Fatalf("file after retried save: (%v, %v)", loaded, err)
	}
	if !reflect.DeepEqual(tree, loaded) {
		t.Fatal("retried save round-trip differs")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".pbtree-") {
			t.Fatalf("failed attempt leaked temp %s", e.Name())
		}
	}
}

package sketch_test

// Write-interleaved differential fuzzing: the incremental-maintenance
// pipeline (minidb delta log → fingerprint memo → Tree.ApplyDelta) is
// held to the same standard as a from-scratch rebuild. Each case
// generates a random table and query (the same generator the main
// harness uses), evaluates once to warm the tree cache, then applies
// 1-3 random INSERT/DELETE batches; after every batch the query is
// evaluated twice — through the shared cache+memo with incremental
// maintenance on (the patched path) and by rebuilding the partition
// tree from scratch — and both are cross-checked against the exact
// MILP:
//
//  1. incremental maintenance must never lose a package: a round where
//     the rebuilt tree finds a feasible package and the patched path
//     does not is a disagreement, zero tolerated (the engine enforces
//     this structurally — a patched-tree descent that ends infeasible
//     rebuilds from scratch and retries, converging to the exact same
//     evaluation as the rebuilt side). The opposite direction — the
//     patched tree finding a validated package the fresh heuristic
//     misses — is the approximation out-recalling the rebuild; it is
//     counted and bounded, not fatal;
//  2. a feasible patched package must validate under paql.Satisfies
//     (core enforces this on materialization) and must never exist for
//     an instance the exact solver proved infeasible, nor beat a
//     proven optimum;
//  3. patched objective gaps must track rebuilt gaps (quantile-gated,
//     like the main harness — patched trees carry approximate internal
//     representatives, so per-case equality is not expected, but the
//     distribution must not degrade).

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/milp"
	"repro/internal/minidb"
	"repro/internal/sketch"
	"repro/internal/translate"
)

// incrStats aggregates one interleaved-write differential run.
type incrStats struct {
	cases, rounds, patched int
	feasible               int
	bonus                  int       // patched feasible where the rebuilt heuristic missed
	gapPatched, gapRebuilt []float64 // parallel, per proven optimum with both sides feasible
	worse                  int       // rounds where the patched gap exceeded rebuilt by >25 points
	certPatched            int       // certified intervals computed from patched envelopes
	certRebuilt            int       // certified intervals from from-scratch rebuilds
}

// nullObjective recognizes the engine's long-standing empty-package
// quirk: a feasible empty package with a SUM objective materializes a
// NULL objective, which core reports as an error. Those cases say
// nothing about incremental maintenance, so the harness skips them.
func nullObjective(err error) bool {
	return err != nil && strings.Contains(err.Error(), "NULL for this package")
}

// incrWrite applies one random write batch to table t, returning the
// statements executed (for failure reports).
func incrWrite(g *qgen, db *minidb.DB) []string {
	var stmts []string
	exec := func(s string) {
		// Generated writes are valid by construction; an error here is
		// a bug in the generator, surfaced by the zero-rows guard.
		if _, err := db.Exec(s); err != nil {
			panic(fmt.Sprintf("generated write %q: %v", s, err))
		}
		stmts = append(stmts, s)
	}
	for i, n := 0, g.intn(4); i < n; i++ {
		c := fmt.Sprintf("%d", g.intn(100)-10)
		if g.intn(12) == 0 {
			c = "NULL"
		}
		exec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d, %s)", g.intn(100)-10, g.intn(60), c))
	}
	switch g.intn(4) {
	case 0:
		lo := g.intn(90) - 10
		exec(fmt.Sprintf("DELETE FROM t WHERE a >= %d AND a < %d", lo, lo+2+g.intn(3)))
	case 1:
		lo := g.intn(55)
		exec(fmt.Sprintf("DELETE FROM t WHERE b = %d", lo))
	}
	return stmts
}

// incrOne runs one interleaved-write differential case. It reports
// false when the generated query never reached a head-to-head round.
func incrOne(t *testing.T, g *qgen, st *incrStats) bool {
	t.Helper()
	ddl, gc := genQuery(g)
	db := minidb.New()
	for _, stmt := range ddl {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("ddl %q: %v", stmt, err)
		}
	}
	prep, err := core.Prepare(db, gc.queryText)
	if err != nil {
		return false
	}
	if !prep.Analysis.Linear || sketch.Applicable(prep.Instance) != nil {
		return false
	}
	tau := 4 + g.intn(8)
	depth := 1 + g.intn(2)
	copts := core.Options{
		Strategy:            core.SketchRefineStrategy,
		Seed:                int64(g.intn(1000)),
		SketchPartitionSize: tau,
		SketchDepth:         depth,
		SketchCache:         sketch.NewCache(0),
		SketchMemo:          core.NewFingerprintMemo(),
		SketchIncremental:   true,
	}
	if _, err := prep.Run(copts); err != nil {
		if nullObjective(err) {
			return false // empty-package optimum: core cannot materialize it
		}
		t.Fatalf("warm-up eval: %v\n%s", err, gc.queryText)
	}

	ran := false
	for round, rounds := 0, 1+g.intn(3); round < rounds; round++ {
		writes := incrWrite(g, db)
		if len(writes) == 0 {
			continue
		}
		prep, err = core.Prepare(db, gc.queryText)
		if err != nil {
			t.Fatalf("re-prepare after %v: %v", writes, err)
		}
		if len(prep.Instance.Rows) == 0 {
			break // writes emptied the table; nothing to compare
		}
		ctx := fmt.Sprintf("%s\nwrites=%v round=%d", gc.queryText, writes, round)

		// Patched path: shared cache + memo, incremental on. core
		// hard-errors if a claimed-feasible package fails validation.
		pres, err := prep.Run(copts)
		if err != nil {
			if nullObjective(err) {
				break // empty-package optimum: core cannot materialize it
			}
			t.Fatalf("patched eval: %v\n%s", err, ctx)
		}
		if pres.Stats.Strategy != core.SketchRefineStrategy {
			break // fell back (e.g. applicability changed); next case
		}
		// Rebuilt path: same knobs, no cache, no lineage.
		rres, err := sketch.Solve(prep.Instance, sketch.Options{
			MaxPartitionSize: tau, Depth: depth, Seed: copts.Seed,
		})
		if err != nil {
			t.Fatalf("rebuilt eval: %v\n%s", err, ctx)
		}
		st.rounds++
		ran = true
		if pres.Stats.SketchTreePatched {
			st.patched++
		}
		pFeasible := len(pres.Packages) > 0
		if !pFeasible && rres.Feasible {
			t.Fatalf("FEASIBILITY DISAGREEMENT: rebuilt found a package the patched path lost (tree patched=%v)\n%s",
				pres.Stats.SketchTreePatched, ctx)
		}
		if pFeasible && !rres.Feasible {
			st.bonus++ // patched out-recalled the rebuild; bounded below
		}
		if pFeasible {
			st.feasible++
		}

		// Exact side: soundness oracle.
		model, err := translate.Translate(prep.Analysis, prep.Instance.Rows, prep.Instance.IDs)
		if err != nil {
			t.Fatalf("translate: %v\n%s", err, ctx)
		}
		sol := milp.Solve(model.MILP, milp.Options{MaxNodes: 300000})
		if pFeasible && sol.Status == milp.StatusInfeasible {
			t.Fatalf("FEASIBILITY DISAGREEMENT: exact proved infeasible, patched found a package\n%s", ctx)
		}
		if pFeasible && rres.Feasible && sol.Status == milp.StatusOptimal && sol.X != nil && prep.Query.Objective != nil {
			exactObj, err := prep.Instance.Objective(model.Multiplicities(sol.X))
			if err != nil {
				continue
			}
			pObj := pres.Packages[0].Objective
			if prep.Instance.Better(pObj, exactObj) && math.Abs(pObj-exactObj) > 1e-6*(1+math.Abs(exactObj)) {
				t.Fatalf("OPTIMALITY DISAGREEMENT: patched %g beats proven optimum %g\n%s", pObj, exactObj, ctx)
			}
			denom := math.Max(1, math.Abs(exactObj))
			gp := math.Abs(pObj-exactObj) / denom
			gr := math.Abs(rres.Objective-exactObj) / denom
			st.gapPatched = append(st.gapPatched, gp)
			st.gapRebuilt = append(st.gapRebuilt, gr)
			if gp > gr+0.25 {
				st.worse++
			}
			// Bound soundness under writes: a certified interval whose
			// envelopes came from ApplyDelta patches must remain valid
			// against the post-write exact optimum, exactly like one
			// from a from-scratch rebuild.
			tol := 1e-6 * (1 + math.Abs(exactObj))
			if pres.Stats.Certified {
				st.certPatched++
				if prep.Instance.Better(exactObj, pres.Stats.BoundValue) && math.Abs(exactObj-pres.Stats.BoundValue) > tol {
					t.Fatalf("BOUND VIOLATION (patched tree): exact optimum %g beats certified bound %g\n%s",
						exactObj, pres.Stats.BoundValue, ctx)
				}
			}
			if rres.Certified {
				st.certRebuilt++
				if prep.Instance.Better(exactObj, rres.Bound) && math.Abs(exactObj-rres.Bound) > tol {
					t.Fatalf("BOUND VIOLATION (rebuilt tree): exact optimum %g beats certified bound %g\n%s",
						exactObj, rres.Bound, ctx)
				}
			}
		}
	}
	if ran {
		st.cases++
	}
	return ran
}

// FuzzIncrementalSketchVsExact is the byte-driven entry point for the
// write-interleaved harness; the seed corpus covers the write shapes
// (append-only, delete-only, mixed, emptying).
func FuzzIncrementalSketchVsExact(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte("append-only batches"))
	f.Add([]byte("delete the world"))
	f.Add([]byte("mixed insert delete interleave"))
	f.Add([]byte{3, 141, 59, 26, 53, 58, 97, 93, 23, 84, 62, 64})
	f.Add([]byte{255, 0, 255, 0, 17, 34, 51, 68, 85})
	f.Fuzz(func(t *testing.T, data []byte) {
		var st incrStats
		incrOne(t, &qgen{data: data}, &st)
	})
}

// TestIncrementalVsRebuildCorpus replays a fixed pseudo-random corpus
// of write-interleaved cases — zero feasibility or optimality
// disagreements allowed, real patch coverage required, and the patched
// gap distribution must track the rebuilt one.
func TestIncrementalVsRebuildCorpus(t *testing.T) {
	target := 250
	if testing.Short() {
		target = 50
	}
	var st incrStats
	rng := rand.New(rand.NewSource(20260729))
	attempts := 0
	for st.cases < target && attempts < 6*target {
		attempts++
		data := make([]byte, 96)
		rng.Read(data)
		incrOne(t, &qgen{data: data}, &st)
	}
	t.Logf("cases=%d rounds=%d patched=%d feasible=%d bonus=%d optima=%d worse-than-rebuilt=%d cert-patched=%d cert-rebuilt=%d",
		st.cases, st.rounds, st.patched, st.feasible, st.bonus, len(st.gapPatched), st.worse, st.certPatched, st.certRebuilt)
	if st.certPatched == 0 {
		t.Error("no certified interval ever came from a patched tree; write-path bound coverage is gone")
	}
	if st.certRebuilt == 0 {
		t.Error("no certified interval ever came from a rebuilt tree")
	}
	if st.rounds > 0 && float64(st.bonus)/float64(st.rounds) > 0.10 {
		t.Errorf("patched trees out-recalled rebuilds in %d/%d rounds; the comparison is no longer apples-to-apples", st.bonus, st.rounds)
	}
	if st.cases < target {
		t.Fatalf("only %d of %d cases reached a head-to-head round (%d attempts)", st.cases, target, attempts)
	}
	if st.patched == 0 {
		t.Fatal("no round exercised tree patching; the harness lost its purpose")
	}
	if st.feasible == 0 {
		t.Fatal("no feasible package across the corpus; the harness is not exercising the engine")
	}
	if n := len(st.gapPatched); n > 0 {
		within25 := 0
		for _, g := range st.gapPatched {
			if g <= 0.25 {
				within25++
			}
		}
		if frac := float64(within25) / float64(n); frac < 0.80 {
			t.Errorf("only %.0f%% of patched gaps within 25%% (want >= 80%%)", 100*frac)
		}
		if frac := float64(st.worse) / float64(n); frac > 0.10 {
			t.Errorf("patched gap exceeded rebuilt by >25 points in %.0f%% of optima (want <= 10%%)", 100*frac)
		}
	}
}

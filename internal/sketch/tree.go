package sketch

import (
	"math"
	"sort"

	"repro/internal/schema"
	"repro/internal/search"
)

// Node is one partition-tree node. A leaf holds a τ-bounded group of
// candidate tuples; an internal node groups nodes of the next deeper
// level. Every node covers the candidate tuples of its whole subtree
// and carries a representative over them (mean for numeric columns,
// mode otherwise), so a sketch MILP can run at any level of the tree.
//
// Besides the representative, every node carries a per-attribute
// min/max envelope over its subtree (the billion-tuple follow-up's
// soundness device for hierarchical pruning): Lo/Hi/NonNull are
// parallel to Tree.Attrs and record, per split attribute, the smallest
// and largest non-NULL value any covered tuple holds and how many
// tuples are non-NULL. MIN/MAX atom relaxation reads them to decide in
// O(1) whether a whole subtree violates a bound (prune it from the
// sketch MILP) or can still supply a witness.
type Node struct {
	Children []int      // indexes into the next-deeper level; nil for leaves
	Tuples   []int      // covered candidate indexes, sorted ascending
	Rep      schema.Row // representative tuple over Tuples
	Lo       []float64  // per-attr subtree minimum over non-NULL values
	Hi       []float64  // per-attr subtree maximum over non-NULL values
	NonNull  []int      // per-attr count of non-NULL values in the subtree
}

// Tree is a hierarchical partitioning of the candidates (the PVLDB 2023
// follow-up's partition tree): Levels[0] holds the roots the top-level
// sketch MILP runs over, Levels[Depth-1] the τ-bounded leaves the final
// refine step resolves into real tuples. With P leaves and depth d the
// builder aims each level at roughly P^((ℓ+1)/d) nodes, so the top
// level stays around the d-th root of P however large the relation
// grows.
//
// A Tree is immutable after BuildTree; the partition cache shares one
// tree across concurrent evaluations.
type Tree struct {
	Attrs  []int    // column ordinals the splitter used
	Tau    int      // leaf size bound
	Depth  int      // number of levels (== len(Levels)); 1 = flat
	Levels [][]Node // Levels[0] = roots … Levels[Depth-1] = leaves
	// Patched records that the tree came out of ApplyDelta rather than
	// a full build. Patched trees are approximations (merged internal
	// representatives, nearest-leaf insert routing); Solve uses the
	// flag — which survives caching and persistence — to rebuild from
	// scratch before ever declaring a query infeasible on one.
	Patched bool
}

// Leaves returns the deepest level: the τ-bounded partitions.
func (t *Tree) Leaves() []Node { return t.Levels[t.Depth-1] }

// flatten returns the single-level view of the tree: the same leaf
// nodes (shared, not copied — a Tree is immutable) under depth 1. The
// infeasible-retry path uses it to fall back from hierarchical to flat
// without re-running the offline partitioning.
func (t *Tree) flatten() *Tree {
	return &Tree{Attrs: t.Attrs, Tau: t.Tau, Depth: 1, Levels: [][]Node{t.Leaves()}, Patched: t.Patched}
}

// leafPartitioning adapts the leaf level to the flat Partitioning view
// the refine step consumes.
func (t *Tree) leafPartitioning() *Partitioning {
	leaves := t.Leaves()
	p := &Partitioning{Attrs: t.Attrs, Tau: t.Tau}
	for i := range leaves {
		p.Groups = append(p.Groups, leaves[i].Tuples)
		p.Reps = append(p.Reps, leaves[i].Rep)
	}
	return p
}

// BuildTree partitions the candidates into τ-bounded leaves and stacks
// up to depth-1 grouping levels on top. Each grouping step runs the
// same median splitter over the child representatives with a fanout of
// ceil(P^(1/depth)), shrinking the node count by that factor per level;
// building stops early once another level could not shrink the top.
// When Options.Ctx is canceled mid-build the function returns early
// with whatever structure exists so far; such a tree is incomplete and
// every caller on the cancellation path (acquireTree) discards it
// before it can reach a cache tier.
func BuildTree(inst *search.Instance, opts Options) *Tree {
	base := Partition(inst, opts)
	t := &Tree{Attrs: base.Attrs, Tau: base.Tau, Depth: 1}
	leaves := make([]Node, len(base.Groups))
	parallelFor(opts.workers(), len(base.Groups), func(i int) {
		leaves[i] = Node{Tuples: base.Groups[i], Rep: base.Reps[i]}
		leaves[i].Lo, leaves[i].Hi, leaves[i].NonNull = envelope(inst.Rows, base.Groups[i], base.Attrs)
	})
	t.Levels = [][]Node{leaves}
	depth := opts.depth()
	if depth <= 1 || len(leaves) == 0 || opts.stopped() {
		return t
	}
	// The median splitter halves groups until they fit the bound, so
	// group sizes land in (bound/2, bound] and the group count can
	// overshoot the ideal by up to 2×. Doubling the bound keeps every
	// level at or below its P^((ℓ+1)/depth) target.
	fanout := 2 * int(math.Ceil(math.Pow(float64(len(leaves)), 1/float64(depth))))
	if fanout < 2 {
		fanout = 2
	}
	var stop func() bool
	if opts.Ctx != nil {
		stop = opts.stopped
	}
	for t.Depth < depth && len(t.Levels[0]) > fanout && !opts.stopped() {
		parents := groupLevel(inst, t.Levels[0], t.Attrs, fanout, opts.Seed, opts.workers(), stop)
		t.Levels = append([][]Node{parents}, t.Levels...)
		t.Depth++
	}
	return t
}

// groupLevel builds one level of internal nodes over children: the
// children's representatives are median-split into groups of at most
// fanout, and each group becomes a parent whose representative is
// recomputed over the union of covered tuples (a tuple-weighted mean,
// more faithful than averaging child representatives). Parents are
// independent, so their unions and representatives are computed across
// workers.
func groupLevel(inst *search.Instance, children []Node, attrs []int, fanout int, seed int64, workers int, stop func() bool) []Node {
	repRows := make([]schema.Row, len(children))
	all := make([]int, len(children))
	for i := range children {
		repRows[i] = children[i].Rep
		all[i] = i
	}
	groups := medianSplit(repRows, all, shuffledAttrs(attrs, seed), fanout, workers, stop)
	parents := make([]Node, len(groups))
	parallelFor(workers, len(groups), func(pi int) {
		g := groups[pi]
		var tuples []int
		for _, ci := range g {
			tuples = append(tuples, children[ci].Tuples...)
		}
		sort.Ints(tuples)
		parents[pi] = Node{Children: g, Tuples: tuples, Rep: representative(inst.Rows, tuples)}
		parents[pi].Lo, parents[pi].Hi, parents[pi].NonNull = mergeEnvelopes(children, g, len(attrs))
	})
	return parents
}

// envelope scans a tuple set and returns its per-attribute min/max
// envelope: for each split attribute, the smallest and largest value
// among non-NULL cells (non-numeric cells count as 0, matching the
// selector-atom value lens) and the non-NULL count. Constant (0, 0)
// bounds mark attributes with no non-NULL value.
func envelope(rows []schema.Row, tuples, attrs []int) (lo, hi []float64, nonNull []int) {
	lo = make([]float64, len(attrs))
	hi = make([]float64, len(attrs))
	nonNull = make([]int, len(attrs))
	for ai, a := range attrs {
		for _, i := range tuples {
			if a >= len(rows[i]) || rows[i][a].IsNull() {
				continue
			}
			v, _ := rows[i][a].AsFloat()
			if nonNull[ai] == 0 || v < lo[ai] {
				lo[ai] = v
			}
			if nonNull[ai] == 0 || v > hi[ai] {
				hi[ai] = v
			}
			nonNull[ai]++
		}
	}
	return lo, hi, nonNull
}

// mergeEnvelopes folds the envelopes of a parent's children (disjoint
// tuple sets) into the parent's — exactly the envelope a fresh scan of
// the tuple union would produce, at a fraction of the cost.
func mergeEnvelopes(children []Node, group []int, nAttrs int) (lo, hi []float64, nonNull []int) {
	lo = make([]float64, nAttrs)
	hi = make([]float64, nAttrs)
	nonNull = make([]int, nAttrs)
	for ai := 0; ai < nAttrs; ai++ {
		for _, ci := range group {
			c := &children[ci]
			if c.NonNull[ai] == 0 {
				continue
			}
			if nonNull[ai] == 0 || c.Lo[ai] < lo[ai] {
				lo[ai] = c.Lo[ai]
			}
			if nonNull[ai] == 0 || c.Hi[ai] > hi[ai] {
				hi[ai] = c.Hi[ai]
			}
			nonNull[ai] += c.NonNull[ai]
		}
	}
	return lo, hi, nonNull
}

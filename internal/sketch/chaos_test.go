package sketch_test

// Chaos harness: the fault-injection acceptance test for the
// graceful-degradation ladder. Every corpus case is the same randomized
// query + write workload the differential harnesses use, evaluated
// three ways — a clean run through the full incremental stack (cache +
// memo + on-disk store + catalog), a from-scratch rebuild, and a run
// under injected faults — and the faulted run is held to the ladder's
// contract:
//
//  1. no single subsystem failure fails the query: a faulted run must
//     either return an answer or a *typed* error (lifecycle.ErrInternal
//     from the solve-path fault sites). Any other error is a harness
//     failure;
//  2. a faulted answer is a correct answer: every degradation rung
//     swaps one deterministic tree source for another (patched → the
//     clean run's tree, anything else → the rebuilt tree), so the
//     faulted objective must equal the clean or rebuilt objective, and
//     a certified interval must not be beaten by either reference;
//  3. every registered fault site is exercised (visit + fire counters)
//     and every degradation rung that reports a reason (cache, store,
//     patch, bound) is observed at least once;
//  4. a fully healthy run is byte-identical to the engine without any
//     of this machinery: degraded=false and the same multiplicity
//     vector a bare sketch.Solve produces.
//
// Set CHAOS_SUMMARY=/path/to/file to write the aggregated fault-site
// coverage table (the artifact the CI chaos-smoke job uploads).

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"slices"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lifecycle"
	"repro/internal/minidb"
	"repro/internal/sketch"
)

// chaosRuleSets cycles one deterministic fault profile per corpus case:
// first every registered site in isolation (persistent and transient
// variants where the distinction matters), then mixed storms.
//
// KindPanic rules may only target sites checked on the solve's own
// goroutine — core.solve and sketch.tree.patch. Parallel build workers
// never check panic sites, so a panic rule elsewhere would escape the
// recovery rungs and kill the test process.
func chaosRuleSets() [][]fault.Rule {
	return [][]fault.Rule{
		{{Site: "sketch.cache.get", Kind: fault.KindError}},
		{{Site: "sketch.cache.put", Kind: fault.KindError}},
		{{Site: "sketch.store.load", Kind: fault.KindError}},
		{{Site: "sketch.store.load", Kind: fault.KindError, Limit: 1}},
		{{Site: "sketch.store.save", Kind: fault.KindError}},
		{{Site: "sketch.store.fs.*", Kind: fault.KindError, Prob: 0.5}},
		{{Site: "sketch.store.fs.write", Kind: fault.KindPartialWrite, Limit: 1}},
		{{Site: "sketch.store.fs.rename", Kind: fault.KindError, Limit: 1}},
		{{Site: "sketch.tree.patch", Kind: fault.KindError}},
		{{Site: "sketch.tree.patch", Kind: fault.KindPanic, Limit: 1}},
		{{Site: "bound.relax", Kind: fault.KindError}},
		{{Site: "minidb.delta", Kind: fault.KindError}},
		{{Site: "catalog.refresh", Kind: fault.KindError}},
		{{Site: "plan.probe", Kind: fault.KindError}},
		{{Site: "core.solve", Kind: fault.KindError, Limit: 1}},
		{{Site: "core.solve", Kind: fault.KindPanic, Limit: 1}},
		// Storms: several subsystems failing probabilistically at once,
		// plus latency-only noise that must change nothing.
		{
			{Site: "sketch.*", Kind: fault.KindError, Prob: 0.4},
			{Site: "minidb.delta", Kind: fault.KindError, Prob: 0.5},
			{Site: "catalog.refresh", Kind: fault.KindError, Prob: 0.5},
			{Site: "plan.probe", Kind: fault.KindError, Prob: 0.5},
		},
		{
			{Site: "sketch.store.*", Kind: fault.KindLatency, Latency: 10 * time.Microsecond},
			{Site: "sketch.cache.*", Kind: fault.KindError, Prob: 0.5},
			{Site: "bound.relax", Kind: fault.KindError, Prob: 0.5},
		},
	}
}

// chaosStats aggregates the corpus for the closing assertions.
type chaosStats struct {
	cases      int // faulted runs executed
	withWrites int // cases whose faulted run saw a patched-lineage table
	answers    int // faulted runs that returned an answer
	typedErrs  int // faulted runs that returned lifecycle.ErrInternal
	nullObj    int // pre-existing empty-package quirk, fault-independent
	degraded   int // faulted answers that reported at least one rung
}

// chaosStack is one full incremental evaluation stack; the clean and
// faulted runs each get their own so the faulted run's lineage is an
// exact replica of the clean run's.
type chaosStack struct {
	opts core.Options
}

func newChaosStack(t *testing.T, db *minidb.DB, tau, depth int, seed int64) *chaosStack {
	t.Helper()
	return &chaosStack{opts: core.Options{
		Strategy:            core.SketchRefineStrategy,
		Seed:                seed,
		SketchPartitionSize: tau,
		SketchDepth:         depth,
		SketchCache:         sketch.NewCache(0),
		SketchMemo:          core.NewFingerprintMemo(),
		SketchIncremental:   true,
		SketchPersistDir:    t.TempDir(),
		Catalog:             catalog.New(db),
	}}
}

// chaosClose reports a ≈ b under the harness's relative tolerance.
func chaosClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// mergeCoverage folds one injector's counters into the corpus total.
func mergeCoverage(total fault.Coverage, c fault.Coverage) {
	for site, s := range c {
		agg := total[site]
		agg.Visits += s.Visits
		agg.Fires += s.Fires
		total[site] = agg
	}
}

// chaosOne runs a single corpus case. Returns false when the generated
// query never reached a faulted evaluation (not applicable, empty
// table, or the empty-package quirk).
func chaosOne(t *testing.T, g *qgen, rules []fault.Rule, seed int64,
	cs *chaosStats, cov fault.Coverage, rungs map[string]int) bool {
	t.Helper()
	ddl, gc := genQuery(g)
	db := minidb.New()
	for _, stmt := range ddl {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("ddl %q: %v", stmt, err)
		}
	}
	prep, err := core.Prepare(db, gc.queryText)
	if err != nil {
		return false
	}
	if !prep.Analysis.Linear || sketch.Applicable(prep.Instance) != nil {
		return false
	}
	tau := 4 + g.intn(8)
	depth := 1 + g.intn(2)
	clean := newChaosStack(t, db, tau, depth, seed)
	faulty := newChaosStack(t, db, tau, depth, seed)

	// Healthy warm-up on both stacks (identical by determinism), plus
	// the byte-identical gate: the full stack with no faults must
	// produce exactly what a bare sketch.Solve produces, undegraded.
	warm, err := prep.Run(clean.opts)
	if err != nil {
		if nullObjective(err) {
			return false
		}
		t.Fatalf("healthy warm-up: %v\n%s", err, gc.queryText)
	}
	if warm.Stats.Degraded || len(warm.Stats.DegradedReasons) != 0 {
		t.Fatalf("healthy run reported degraded (%v)\n%s", warm.Stats.DegradedReasons, gc.queryText)
	}
	bare, err := sketch.Solve(prep.Instance, sketch.Options{
		MaxPartitionSize: tau, Depth: depth, Seed: seed,
	})
	if err != nil {
		t.Fatalf("bare solve: %v\n%s", err, gc.queryText)
	}
	if (len(warm.Packages) > 0) != bare.Feasible {
		t.Fatalf("healthy run feasibility (%v) differs from bare solve (%v)\n%s",
			len(warm.Packages) > 0, bare.Feasible, gc.queryText)
	}
	if len(warm.Packages) > 0 && !slices.Equal(warm.Packages[0].Mult, bare.Mult) {
		t.Fatalf("healthy run multiplicities differ from bare solve\n full=%v\n bare=%v\n%s",
			warm.Packages[0].Mult, bare.Mult, gc.queryText)
	}
	if _, err := prep.Run(faulty.opts); err != nil {
		t.Fatalf("faulted-stack warm-up (no injector yet): %v\n%s", err, gc.queryText)
	}

	// Interleave a write batch so the faulted run has patch lineage;
	// cases whose batch comes up empty still run (the patch sites just
	// stay cold for them).
	writes := incrWrite(g, db)
	if len(writes) > 0 {
		prep, err = core.Prepare(db, gc.queryText)
		if err != nil {
			t.Fatalf("re-prepare after %v: %v", writes, err)
		}
		if len(prep.Instance.Rows) == 0 {
			return false
		}
	}
	ctx := fmt.Sprintf("%s\nwrites=%v rules=%+v seed=%d", gc.queryText, writes, rules, seed)

	// Reference answers: the clean incremental stack (patched path) and
	// a from-scratch rebuild. Every ladder rung lands on one of these
	// two trees, so they bracket all acceptable faulted outcomes.
	cres, err := prep.Run(clean.opts)
	if err != nil {
		if nullObjective(err) {
			return false
		}
		t.Fatalf("clean reference: %v\n%s", err, ctx)
	}
	rres, err := sketch.Solve(prep.Instance, sketch.Options{
		MaxPartitionSize: tau, Depth: depth, Seed: seed,
	})
	if err != nil {
		t.Fatalf("rebuilt reference: %v\n%s", err, ctx)
	}
	cleanFeas := len(cres.Packages) > 0

	inj := fault.NewInjector(seed, rules...)
	restore := fault.Enable(inj)
	fres, ferr := prep.Run(faulty.opts)
	restore()
	mergeCoverage(cov, inj.Coverage())

	cs.cases++
	if len(writes) > 0 {
		cs.withWrites++
	}
	if ferr != nil {
		switch {
		case errors.Is(ferr, lifecycle.ErrInternal):
			cs.typedErrs++
		case nullObjective(ferr):
			// The empty-package quirk pre-dates fault injection and can
			// surface on whichever tree the ladder landed on; it is not
			// a fault-induced untyped error.
			cs.nullObj++
		default:
			t.Fatalf("UNTYPED ERROR under faults: %v\n%s", ferr, ctx)
		}
		return true
	}
	cs.answers++
	for _, reason := range fres.Stats.DegradedReasons {
		sub, _, ok := strings.Cut(reason, ": ")
		if !ok || sub == "" {
			t.Fatalf("malformed degraded reason %q\n%s", reason, ctx)
		}
		rungs[sub]++
	}
	if fres.Stats.Degraded != (len(fres.Stats.DegradedReasons) > 0) {
		t.Fatalf("Degraded=%v with %d reasons\n%s", fres.Stats.Degraded, len(fres.Stats.DegradedReasons), ctx)
	}
	if fres.Stats.Degraded {
		cs.degraded++
	}

	fFeas := len(fres.Packages) > 0
	if !fFeas && cleanFeas && rres.Feasible {
		t.Fatalf("WRONG ANSWER: faulted run lost a package both references found\n%s", ctx)
	}
	if fFeas && prep.Query.Objective != nil {
		fObj := fres.Packages[0].Objective
		okClean := cleanFeas && chaosClose(fObj, cres.Packages[0].Objective)
		okRebuilt := rres.Feasible && chaosClose(fObj, rres.Objective)
		if !okClean && !okRebuilt {
			cObj := math.NaN()
			if cleanFeas {
				cObj = cres.Packages[0].Objective
			}
			t.Fatalf("WRONG ANSWER: faulted objective %g matches neither clean %g nor rebuilt %g (feasible=%v/%v)\n%s",
				fObj, cObj, rres.Objective, cleanFeas, rres.Feasible, ctx)
		}
		// A certified interval must stay sound against every reference
		// answer we hold: a degraded-but-certified bound that either
		// reference beats is a ladder bug, not an approximation.
		if fres.Stats.Certified {
			best := fObj
			if cleanFeas && prep.Instance.Better(cres.Packages[0].Objective, best) {
				best = cres.Packages[0].Objective
			}
			if rres.Feasible && prep.Instance.Better(rres.Objective, best) {
				best = rres.Objective
			}
			tol := 1e-6 * (1 + math.Abs(best))
			if prep.Instance.Better(best, fres.Stats.BoundValue) && math.Abs(best-fres.Stats.BoundValue) > tol {
				t.Fatalf("BOUND VIOLATION under faults: objective %g beats certified bound %g\n%s",
					best, fres.Stats.BoundValue, ctx)
			}
		}
	}
	return true
}

// TestChaosFaultedCorpus is the acceptance run: ≥250 randomized cases
// (fewer under -short) under faults at every registered site, zero
// wrong answers, zero untyped errors, every reason-reporting rung
// observed.
func TestChaosFaultedCorpus(t *testing.T) {
	target := 250
	if testing.Short() {
		target = 60
	}
	// Real backoff delays would dominate the corpus; keep the retry
	// structure, shrink the clock.
	defer sketch.SetStoreRetryForTest(3, 50*time.Microsecond, 200*time.Microsecond)()

	rng := rand.New(rand.NewSource(20260808))
	ruleSets := chaosRuleSets()
	cs := &chaosStats{}
	cov := fault.Coverage{}
	rungs := map[string]int{}
	data := make([]byte, 96)
	for attempts := 0; cs.cases < target; attempts++ {
		if attempts >= target*60 {
			t.Fatalf("only %d/%d chaos cases after %d attempts", cs.cases, target, attempts)
		}
		rng.Read(data)
		g := &qgen{data: append([]byte(nil), data...)}
		rules := ruleSets[cs.cases%len(ruleSets)]
		chaosOne(t, g, rules, int64(attempts+1), cs, cov, rungs)
	}

	t.Logf("chaos corpus: %d cases (%d with writes), %d answers (%d degraded), %d typed internal errors, %d null-objective skips",
		cs.cases, cs.withWrites, cs.answers, cs.degraded, cs.typedErrs, cs.nullObj)
	t.Logf("rungs observed: %v", rungs)

	// Site coverage: every registered fault site must have been both
	// visited and fired at least once across the corpus.
	required := []string{
		"core.solve",
		"sketch.cache.get", "sketch.cache.put",
		"sketch.store.load", "sketch.store.save",
		"sketch.tree.patch",
		"bound.relax", "minidb.delta", "catalog.refresh", "plan.probe",
	}
	for _, site := range required {
		if s := cov[site]; s.Visits == 0 || s.Fires == 0 {
			t.Errorf("fault site %s not exercised: visits=%d fires=%d", site, s.Visits, s.Fires)
		}
	}
	// The FS sites are registered as a family behind the store; require
	// the hot ops individually and at least one fire across the family.
	var fsFires int64
	for site, s := range cov {
		if strings.HasPrefix(site, "sketch.store.fs.") {
			fsFires += s.Fires
		}
	}
	for _, op := range []string{"read", "create", "write", "rename"} {
		if s := cov["sketch.store.fs."+op]; s.Visits == 0 {
			t.Errorf("fault site sketch.store.fs.%s never visited", op)
		}
	}
	if fsFires == 0 {
		t.Error("no fault ever fired at an FS site")
	}

	// Rung coverage: every degradation rung that reports a reason.
	for _, rung := range []string{"cache", "store", "patch", "bound"} {
		if rungs[rung] == 0 {
			t.Errorf("degradation rung %q never observed", rung)
		}
	}
	if cs.typedErrs == 0 {
		t.Error("no faulted run surfaced a typed lifecycle.ErrInternal (solve-path rung untested)")
	}
	if cs.answers == 0 || cs.degraded == 0 {
		t.Errorf("corpus produced %d answers, %d degraded — ladder never took a rung with an answer", cs.answers, cs.degraded)
	}

	if path := os.Getenv("CHAOS_SUMMARY"); path != "" {
		if err := os.WriteFile(path, []byte(cov.Summary()), 0o644); err != nil {
			t.Errorf("write CHAOS_SUMMARY: %v", err)
		} else {
			t.Logf("fault-site coverage written to %s", path)
		}
	}
}

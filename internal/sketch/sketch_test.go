package sketch_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/minidb"
	"repro/internal/sketch"
)

const mealQuery = `
	SELECT PACKAGE(R) AS P
	FROM recipes R
	WHERE R.gluten = 'free'
	SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500
	MAXIMIZE SUM(P.protein)`

func recipesPrep(t *testing.T, n int) *core.Prepared {
	t.Helper()
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: n, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	prep, err := core.Prepare(db, mealQuery)
	if err != nil {
		t.Fatal(err)
	}
	return prep
}

func TestPartitionSizeBoundAndCover(t *testing.T) {
	prep := recipesPrep(t, 300)
	inst := prep.Instance
	part := sketch.Partition(inst, sketch.Options{MaxPartitionSize: 16, Seed: 7})
	if part.Tau != 16 {
		t.Fatalf("tau = %d", part.Tau)
	}
	seen := map[int]bool{}
	for _, g := range part.Groups {
		if len(g) == 0 || len(g) > 16 {
			t.Fatalf("group size %d outside (0, 16]", len(g))
		}
		for _, i := range g {
			if seen[i] {
				t.Fatalf("candidate %d in two partitions", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != len(inst.Rows) {
		t.Fatalf("partitions cover %d of %d candidates", len(seen), len(inst.Rows))
	}
	if len(part.Reps) != len(part.Groups) {
		t.Fatalf("%d reps for %d groups", len(part.Reps), len(part.Groups))
	}
	if len(part.Attrs) == 0 {
		t.Fatal("no partition attributes chosen")
	}
}

func TestPartitionDeterministicUnderSeed(t *testing.T) {
	prep := recipesPrep(t, 250)
	a := sketch.Partition(prep.Instance, sketch.Options{MaxPartitionSize: 10, Seed: 99})
	b := sketch.Partition(prep.Instance, sketch.Options{MaxPartitionSize: 10, Seed: 99})
	if !reflect.DeepEqual(a.Groups, b.Groups) {
		t.Fatal("same seed produced different partitionings")
	}
	if !reflect.DeepEqual(a.Reps, b.Reps) {
		t.Fatal("same seed produced different representatives")
	}
}

func TestPartitionCountKnob(t *testing.T) {
	prep := recipesPrep(t, 200)
	part := sketch.Partition(prep.Instance, sketch.Options{NumPartitions: 8, Seed: 1})
	n := len(prep.Instance.Rows)
	want := (n + 7) / 8
	if part.Tau != want {
		t.Fatalf("tau = %d, want %d (n=%d)", part.Tau, want, n)
	}
	if len(part.Groups) < 8 {
		t.Fatalf("got %d partitions, want >= 8", len(part.Groups))
	}
}

func TestSketchVsExactSmall(t *testing.T) {
	for _, n := range []int{120, 400} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			prep := recipesPrep(t, n)
			exact, err := prep.Run(core.Options{Strategy: core.Solver, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			skres, err := sketch.Solve(prep.Instance, sketch.Options{MaxPartitionSize: 16, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(exact.Packages) == 0 {
				if skres.Feasible {
					t.Fatal("sketch found a package where the exact solver proved none")
				}
				return
			}
			if !skres.Feasible {
				t.Fatalf("exact solver found a package but sketch did not: %v", skres.Notes)
			}
			opt := exact.Packages[0].Objective
			if skres.Objective > opt+1e-6 {
				t.Fatalf("sketch objective %.3f beats proven optimum %.3f", skres.Objective, opt)
			}
			if gap := (opt - skres.Objective) / opt; gap > 0.25 {
				t.Fatalf("objective gap %.1f%% > 25%% (sketch %.1f vs exact %.1f)",
					gap*100, skres.Objective, opt)
			}
		})
	}
}

// TestRefineFallbackInfeasiblePartition forces a partition whose
// sub-MILP is infeasible: with τ=2 the values {1,2} and {2,3} land in
// separate partitions whose representatives average to 1.5 and 2.5, the
// sketch picks one unit of each (1.5+2.5 = 4), and the first refined
// partition is asked for a single tuple summing to exactly 1.5 — which
// no integer-valued member can satisfy. Greedy repair plus the
// coordinate-descent sweep must still land on a feasible package.
func TestRefineFallbackInfeasiblePartition(t *testing.T) {
	db := minidb.New()
	stmts := []string{
		"CREATE TABLE t (x INT)",
		"INSERT INTO t VALUES (1)",
		"INSERT INTO t VALUES (2)",
		"INSERT INTO t VALUES (2)",
		"INSERT INTO t VALUES (3)",
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	prep, err := core.Prepare(db, `SELECT PACKAGE(T) AS P FROM t T SUCH THAT COUNT(*) = 2 AND SUM(P.x) = 4`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sketch.Solve(prep.Instance, sketch.Options{MaxPartitionSize: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Repaired == 0 {
		t.Fatalf("expected at least one greedy-repaired partition, got refine stats %+v", res)
	}
	if !res.Feasible {
		t.Fatalf("repair sweeps did not reach a feasible package: %+v", res)
	}
	sum, count := 0, 0
	for i, m := range res.Mult {
		sum += m * int(prep.Instance.Rows[i][0].IntVal())
		count += m
	}
	if count != 2 || sum != 4 {
		t.Fatalf("package has count=%d sum=%d, want 2 and 4", count, sum)
	}
}

// TestApplicableCoversFullAtomGrammar pins the applicability contract:
// AVG/MIN/MAX atoms and disjunctions are sketchable now, and the
// refusal message for what remains unsupported names the offending
// aggregate instead of a blanket "not a pure conjunction".
func TestApplicableCoversFullAtomGrammar(t *testing.T) {
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 50, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	supported := []string{
		`SUCH THAT COUNT(*) = 3 AND AVG(P.calories) <= 800`,
		`SUCH THAT COUNT(*) = 3 AND MIN(P.protein) >= 5`,
		`SUCH THAT COUNT(*) = 3 AND MAX(P.calories) < 950`,
		`SUCH THAT COUNT(*) = 2 OR SUM(P.calories) <= 1500`,
	}
	for _, clause := range supported {
		prep, err := core.Prepare(db, "SELECT PACKAGE(R) AS P FROM recipes R "+clause)
		if err != nil {
			t.Fatal(err)
		}
		if err := sketch.Applicable(prep.Instance); err != nil {
			t.Errorf("%s should be sketch-applicable, got: %v", clause, err)
		}
	}
	rejected := []struct {
		clause string
		want   string // the offending aggregate the message must name
	}{
		{`SUCH THAT MIN(P.calories) = 500`, "MIN(R.calories)"},
		{`SUCH THAT AVG(P.calories) = 800`, "AVG(R.calories)"},
		{`SUCH THAT SUM(P.calories) <> 800`, "SUM(R.calories)"},
	}
	for _, tc := range rejected {
		prep, err := core.Prepare(db, "SELECT PACKAGE(R) AS P FROM recipes R "+tc.clause)
		if err != nil {
			t.Fatal(err)
		}
		err = sketch.Applicable(prep.Instance)
		if err == nil {
			t.Errorf("%s should not be sketch-applicable", tc.clause)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error should name %s, got: %v", tc.clause, tc.want, err)
		}
		if _, serr := sketch.Solve(prep.Instance, sketch.Options{}); serr == nil {
			t.Errorf("%s: Solve should refuse a non-applicable instance", tc.clause)
		}
	}
}

func TestSketchTrivialEmptyCandidates(t *testing.T) {
	db := minidb.New()
	if _, err := db.Exec("CREATE TABLE t (x INT)"); err != nil {
		t.Fatal(err)
	}
	prep, err := core.Prepare(db, `SELECT PACKAGE(T) AS P FROM t T SUCH THAT SUM(P.x) <= 10`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sketch.Solve(prep.Instance, sketch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || len(res.Mult) != 0 {
		t.Fatalf("empty relation should yield the empty package, got %+v", res)
	}
}

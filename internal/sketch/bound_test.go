package sketch_test

// Certified-bound tests for the tree-path pipeline: the exclusion-cut
// soundness regression (cuts relaxed over leaf segments must never
// inflate the bound past the true cut optimum) and the band-tightening
// check (the staged pipeline must beat the legacy per-leaf envelope on
// BETWEEN-heavy queries, which is the whole point of the stages).

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/minidb"
	"repro/internal/sketch"
)

func boundPrep(t *testing.T, n int, query string) *core.Prepared {
	t.Helper()
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: n, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	prep, err := core.Prepare(db, query)
	if err != nil {
		t.Fatal(err)
	}
	return prep
}

// TestExclusionCutTreeBoundSound: above the raw-candidate cap an
// exclusion cut's ±1 row is relaxed over leaf segments like any other
// row. Relaxation can only loosen a valid row, so the certified bound
// must still be ≥ the true optimum under the cut — which this instance
// makes analytic: MAXIMIZE SUM(protein) with COUNT(*) = 2 has optimum
// w₁+w₂ (the two best tuples); excluding exactly that package moves the
// optimum to w₁+w₃. A bound below w₁+w₃ would prove the relaxation
// unsound.
func TestExclusionCutTreeBoundSound(t *testing.T) {
	prep := boundPrep(t, 6000, `
		SELECT PACKAGE(R) AS P
		FROM recipes R
		SUCH THAT COUNT(*) = 2
		MAXIMIZE SUM(P.protein)`)
	inst := prep.Instance
	if len(inst.Rows) <= 4096 {
		t.Fatalf("%d candidates: need > 4096 so the bound takes the tree path", len(inst.Rows))
	}
	idx := make([]int, len(inst.ObjW))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return inst.ObjW[idx[a]] > inst.ObjW[idx[b]] })
	ex := make([]int, len(inst.Rows))
	ex[idx[0]], ex[idx[1]] = 1, 1
	cutOpt := inst.ObjW[idx[0]] + inst.ObjW[idx[2]] + inst.ObjK
	res, err := sketch.Solve(inst, sketch.Options{Seed: 1, Exclude: [][]int{ex}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("no feasible package under the cut: %v", res.Notes)
	}
	if res.Mult[idx[0]] > 0 && res.Mult[idx[1]] > 0 {
		t.Fatal("result is the excluded package")
	}
	if !res.Certified {
		t.Fatalf("tree-path bound with an exclusion cut must certify: %+v", res.Notes)
	}
	tol := 1e-6 * (1 + cutOpt)
	if res.Bound < cutOpt-tol {
		t.Fatalf("UNSOUND: certified bound %.6f below true cut optimum %.6f — the relaxed exclusion cut inflated the bound", res.Bound, cutOpt)
	}
	if res.Objective > res.Bound+tol {
		t.Fatalf("found objective %.6f beats its own certified bound %.6f", res.Objective, res.Bound)
	}
}

// TestBetweenBoundTightenedVsEnvelope: on a BETWEEN-heavy query above
// the raw cap, the staged pipeline (segments + Lagrangian rounds) must
// produce a certified gap no worse than the legacy single-envelope
// bound, report the stage and rounds it ran, and stay sound against its
// own incumbent.
func TestBetweenBoundTightenedVsEnvelope(t *testing.T) {
	const q = `
		SELECT PACKAGE(R) AS P
		FROM recipes R
		SUCH THAT COUNT(*) = 3
			AND SUM(P.calories) BETWEEN 2000 AND 2500
			AND SUM(P.fat) BETWEEN 20 AND 200
		MAXIMIZE SUM(P.protein)`
	prep := boundPrep(t, 6000, q)
	inst := prep.Instance
	if len(inst.Rows) <= 4096 {
		t.Fatalf("%d candidates: need > 4096 so the bound takes the tree path", len(inst.Rows))
	}
	env, err := sketch.Solve(inst, sketch.Options{Seed: 1, BoundMode: sketch.BoundModeEnvelope})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := sketch.Solve(inst, sketch.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !env.Feasible || !tight.Feasible {
		t.Fatalf("query must be feasible (env %v, tight %v)", env.Feasible, tight.Feasible)
	}
	if !env.Certified || !tight.Certified {
		t.Fatalf("both runs must certify (env %v, tight %v)", env.Certified, tight.Certified)
	}
	if tight.Objective != env.Objective {
		t.Fatalf("bound mode changed the package: %.6f vs %.6f", tight.Objective, env.Objective)
	}
	// Maximize: the dual bound is an upper bound, so tighter = smaller.
	if tight.Bound > env.Bound+1e-9*(1+env.Bound) {
		t.Fatalf("pipeline bound %.6f looser than envelope bound %.6f", tight.Bound, env.Bound)
	}
	if tight.Bound < tight.Objective-1e-6*(1+tight.Objective) {
		t.Fatalf("UNSOUND: bound %.6f below found objective %.6f", tight.Bound, tight.Objective)
	}
	if tight.BoundStage == "" || tight.BoundStage == "tree-lp" {
		t.Fatalf("full pipeline on a band query should pass tree-lp, got %q", tight.BoundStage)
	}
	if tight.BoundRounds == 0 {
		t.Fatalf("no Lagrangian rounds ran (stage %q)", tight.BoundStage)
	}
	t.Logf("envelope gap %.4f, pipeline gap %.4f (stage %s, %d rounds)", env.Gap, tight.Gap, tight.BoundStage, tight.BoundRounds)
	// The gate the legacy envelope fails: on this BETWEEN-heavy instance
	// its certified gap is tens of percent, the pipeline's must be ≤ 10%.
	if tight.Gap > 0.10 {
		t.Fatalf("pipeline certified gap %.2f%% still above 10%%", 100*tight.Gap)
	}
}

package sketch

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/search"
	"repro/internal/translate"
)

// maxSweeps bounds the re-refinement passes after the first refine:
// each extra sweep re-solves every active partition against the real
// (no longer representative) contributions of the others, a coordinate
// descent that repairs cross-partition approximation error.
const maxSweeps = 3

// refine replaces each sketch-chosen representative with real tuples
// from its partition. The first pass is a concurrent wave: every active
// partition gets a sub-MILP over its own tuples whose constraint
// right-hand sides are the query atoms minus every other partition's
// representative contribution — the residuals come from one shared
// snapshot, so the solves are independent, run across workers, and
// merge in fixed partition order (largest sketch multiplicity first),
// keeping the result identical at any worker count. Infeasible or
// over-budget sub-problems fall back to a greedy repair that picks the
// tuples nearest the representative. Pinned tuples keep multiplicity
// ≥ 1 throughout: the sub-MILP floors their variables and the repair
// assigns them first. The final package is validated against the full
// formula (and the pins), with up to maxSweeps-1 sequential
// coordinate-descent passes — each re-solve seeing every earlier
// partition's real tuples — to absorb representative and
// cross-partition error.
func refine(inst *search.Instance, part *Partitioning, atoms, repAtoms []*translate.LinearAtom, y []int, pins map[int]bool, opts Options, deadline time.Time, res *Result) {
	n := len(inst.Rows)
	mult := make([]int, n)

	// grpSum[g][k]: partition g's current contribution to atom k —
	// representative-based until g is refined, real afterwards.
	grpSum := make([][]float64, len(part.Groups))
	cur := make([]float64, len(atoms))
	for g := range part.Groups {
		grpSum[g] = make([]float64, len(atoms))
		if y[g] == 0 {
			continue
		}
		for k := range atoms {
			grpSum[g][k] = repAtoms[k].W[g] * float64(y[g])
			cur[k] += grpSum[g][k]
		}
	}

	var active []int
	for g, m := range y {
		if m > 0 {
			active = append(active, g)
		}
	}
	sort.SliceStable(active, func(i, j int) bool {
		if y[active[i]] != y[active[j]] {
			return y[active[i]] > y[active[j]]
		}
		return active[i] < active[j]
	})
	res.Active = len(active)

	// Scales feed only the greedy fallback's distance metric, and cost a
	// full candidate scan — computed on first use.
	var scales []float64
	repair := func(g int) {
		if scales == nil {
			scales = attrScales(inst, part.Attrs)
		}
		greedyRepair(inst, part, g, y[g], mult, pins, scales)
	}
	// syncGroup swaps g's tracked contribution from representative to
	// real tuples.
	syncGroup := func(g int) {
		for k := range atoms {
			s := 0.0
			for _, i := range part.Groups[g] {
				if mult[i] != 0 {
					s += atoms[k].W[i] * float64(mult[i])
				}
			}
			cur[k] += s - grpSum[g][k]
			grpSum[g][k] = s
		}
	}

	// Sweep 0: the concurrent wave. Partitions are disjoint, so each
	// solve writes only its own mult entries; the repair fallback and
	// the contribution bookkeeping run in the deterministic merge loop.
	oks := solveWave(inst, active, func(g int) []int { return part.Groups[g] },
		tupleBound(inst, pins), atoms, inst.ObjW, cur, grpSum, mult, opts, deadline, res)
	for ai, g := range active {
		if oks[ai] {
			res.Refined++
		} else {
			repair(g)
			res.Repaired++
		}
		syncGroup(g)
	}
	valid := checkAtoms(atoms, cur)

	// Repair sweeps are sequential coordinate descent: each re-solve
	// sees every earlier partition's real tuples (order-dependent state
	// keeps them serial), so the last feasible solve enforces the full
	// formula. They only run when the wave's shared-snapshot result
	// violates a constraint.
	for sweep := 1; !valid && sweep < maxSweeps; sweep++ {
		if sweep == 1 {
			res.Notes = append(res.Notes, "refined package violates a constraint; running repair sweeps")
		}
		for _, g := range active {
			residual := make([]float64, len(atoms))
			for k := range atoms {
				residual[k] = atoms[k].RHS - (cur[k] - grpSum[g][k])
			}
			if !residualSolve(inst, part.Groups[g], tupleBound(inst, pins), atoms, inst.ObjW, residual, mult, opts, deadline, res) {
				repair(g)
			}
			syncGroup(g)
		}
		valid = checkAtoms(atoms, cur)
	}

	res.Mult = mult
	if obj, err := inst.Objective(mult); err == nil {
		res.Objective = obj
	}
	for i := range pins {
		if valid && mult[i] == 0 {
			valid = false
			res.Notes = append(res.Notes, "internal: a pinned tuple fell out of the refined package")
		}
	}
	if valid {
		// The atom set is a sufficient condition for the formula (one
		// DNF branch, with strict comparisons epsilon-tightened), but
		// validate end to end anyway; a disagreement is a bug upstream.
		full, err := inst.Validate(mult)
		valid = err == nil && full
		if !valid {
			res.Notes = append(res.Notes, "internal: atom check and full validation disagree")
		}
	}
	res.Feasible = valid
	if !valid {
		res.Notes = append(res.Notes,
			fmt.Sprintf("refine could not reach a feasible package within %d sweeps", maxSweeps))
	}
}

// residualSolve runs one residual sub-MILP shared by the refine step
// (members are partition tuples) and the hierarchical push-down
// (members are a level's nodes): variables are the members'
// multiplicities with caller-supplied bounds, constraints the atoms —
// weighted per member — against residual right-hand sides, objective
// the affine objective restricted to the members. Atoms the members
// cannot influence (all-zero weights) are skipped: their violation, if
// any, is another group's to repair. The solution lands in out, indexed
// by member id. Returns false when the MILP is infeasible, hits its
// limits without an incumbent, or the budget is spent.
func residualSolve(inst *search.Instance, members []int, bound func(id int) (lo, up float64), atoms []*translate.LinearAtom, objW []float64, residual []float64, out []int, opts Options, deadline time.Time, res *Result) bool {
	if !deadline.IsZero() && time.Now().After(deadline) {
		return false
	}
	if opts.stopped() {
		// Canceled: report failure so the wave's merge loop falls back
		// to the (cheap) greedy path and the caller's own checkpoint
		// surfaces the cancellation.
		return false
	}
	m := len(members)
	p := lp.NewProblem(m)
	for j, id := range members {
		lo, up := bound(id)
		if err := p.SetBounds(j, lo, up); err != nil {
			return false
		}
	}
	if inst.ObjW != nil && objW != nil {
		obj := make([]float64, m)
		for j, id := range members {
			obj[j] = objW[id]
		}
		if err := p.SetObjective(obj, objSense(inst)); err != nil {
			return false
		}
	}
	for k, at := range atoms {
		var coefs []lp.Coef
		for j, id := range members {
			if at.W[id] != 0 {
				coefs = append(coefs, lp.Coef{Var: j, Val: at.W[id]})
			}
		}
		if len(coefs) == 0 {
			continue
		}
		if _, err := p.AddConstraint(coefs, at.Op, residual[k]); err != nil {
			return false
		}
	}
	mp := milp.NewProblem(p)
	for j := 0; j < m; j++ {
		mp.SetInteger(j)
	}
	sol := milp.Solve(mp, milp.Options{MaxNodes: opts.nodes(), TimeLimit: timeShare(deadline, 4), Ctx: opts.Ctx})
	res.Nodes += int64(sol.Nodes)
	res.LPIters += sol.LPIters
	if sol.X == nil || (sol.Status != milp.StatusOptimal && sol.Status != milp.StatusFeasible) {
		return false
	}
	for j, id := range members {
		out[id] = int(math.Round(sol.X[j]))
	}
	return true
}

// solveWave runs one residual sub-MILP per group in order concurrently,
// every residual taken against the same cur/grpSum snapshot (each
// group's own contribution subtracted back out). Groups own disjoint
// entries of out, so the solves are independent and their results are
// deterministic regardless of scheduling; per-solve node/iteration
// counters are accumulated into res in group order. Both waves — the
// per-leaf refine and the hierarchical per-parent push-down — share it.
// Returns one success flag per group; the caller applies fallbacks and
// contribution updates in its own deterministic merge loop.
func solveWave(inst *search.Instance, order []int, members func(g int) []int, bound func(int) (float64, float64), atoms []*translate.LinearAtom, objW []float64, cur []float64, grpSum [][]float64, out []int, opts Options, deadline time.Time, res *Result) []bool {
	oks := make([]bool, len(order))
	subs := make([]Result, len(order))
	residuals := make([][]float64, len(order))
	for ai, g := range order {
		r := make([]float64, len(atoms))
		for k := range atoms {
			r[k] = atoms[k].RHS - (cur[k] - grpSum[g][k])
		}
		residuals[ai] = r
	}
	parallelFor(opts.workers(), len(order), func(ai int) {
		g := order[ai]
		oks[ai] = residualSolve(inst, members(g), bound, atoms, objW, residuals[ai], out, opts, deadline, &subs[ai])
	})
	for ai := range order {
		res.Nodes += subs[ai].Nodes
		res.LPIters += subs[ai].LPIters
	}
	return oks
}

// tupleBound is the refine step's bound function: pinned tuples floored
// at 1, capped at the query's REPEAT bound.
func tupleBound(inst *search.Instance, pins map[int]bool) func(int) (float64, float64) {
	return func(i int) (float64, float64) {
		lo := 0.0
		if pins[i] {
			lo = 1
		}
		up := lp.Inf
		if inst.MaxMult > 0 {
			up = float64(inst.MaxMult)
		}
		return lo, up
	}
}

// greedyRepair approximates the representative's contribution with real
// tuples when the sub-MILP fails: pinned tuples receive their unit
// first, then the remaining units the sketch owes are assigned
// round-robin to the partition's tuples nearest the representative in
// normalized attribute space.
func greedyRepair(inst *search.Instance, part *Partitioning, g, units int, mult []int, pins map[int]bool, scales []float64) {
	members := part.Groups[g]
	rep := part.Reps[g]
	floor := func(i int) int {
		if pins[i] {
			return 1
		}
		return 0
	}
	capacity := func(int) int {
		if inst.MaxMult > 0 {
			return inst.MaxMult
		}
		return max(units, 1)
	}
	dist := func(i int) float64 {
		d := 0.0
		for ai, a := range part.Attrs {
			diff := (numAt(inst.Rows[i], a) - numAt(rep, a)) / scales[ai]
			d += diff * diff
		}
		return d
	}
	allocate(members, units, floor, capacity, dist, mult)
}

// allocate distributes units across members: every member first takes
// its floor (floors outrank units — the total placed is at least their
// sum), then the remainder goes round-robin in distance order (nearest
// first, member id on ties), respecting per-member capacity. Results
// land in out, indexed by member id; prior values are overwritten. Both
// greedy fallbacks — per-leaf repair and per-level spread — share it.
func allocate(members []int, units int, floor, capacity func(id int) int, dist func(id int) float64, out []int) {
	placed := 0
	for _, id := range members {
		f := floor(id)
		out[id] = f
		placed += f
	}
	if units < placed {
		units = placed
	}
	order := append([]int(nil), members...)
	sort.SliceStable(order, func(a, b int) bool {
		da, db := dist(order[a]), dist(order[b])
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	for placed < units {
		progressed := false
		for _, id := range order {
			if placed >= units {
				break
			}
			if out[id] < capacity(id) {
				out[id]++
				placed++
				progressed = true
			}
		}
		if !progressed {
			break // capacity exhausted
		}
	}
}

// attrScales normalizes each partition attribute by its spread across
// all candidates (1 for constant columns).
func attrScales(inst *search.Instance, attrs []int) []float64 {
	return rowScales(inst.Rows, attrs)
}

// checkAtoms verifies every atom against the tracked sums.
func checkAtoms(atoms []*translate.LinearAtom, sums []float64) bool {
	for k, at := range atoms {
		if !at.CheckSum(sums[k]) {
			return false
		}
	}
	return true
}

package sketch

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/search"
	"repro/internal/translate"
)

// maxSweeps bounds the re-refinement passes after the first refine:
// each extra sweep re-solves every active partition against the real
// (no longer representative) contributions of the others, a coordinate
// descent that repairs cross-partition approximation error.
const maxSweeps = 3

// refine replaces each sketch-chosen representative with real tuples
// from its partition. Partitions are processed greedily (largest sketch
// multiplicity first); each gets a sub-MILP over its own tuples whose
// constraint right-hand sides are the query atoms minus every other
// partition's current contribution. Infeasible or over-budget
// sub-problems fall back to a greedy repair that picks the tuples
// nearest the representative. The final package is validated against
// the full formula, with up to maxSweeps coordinate-descent passes to
// absorb representative error.
func refine(inst *search.Instance, part *Partitioning, repAtoms []*translate.LinearAtom, y []int, opts Options, deadline time.Time, res *Result) {
	atoms := inst.Atoms
	n := len(inst.Rows)
	mult := make([]int, n)

	// grpSum[g][k]: partition g's current contribution to atom k —
	// representative-based until g is refined, real afterwards.
	grpSum := make([][]float64, len(part.Groups))
	cur := make([]float64, len(atoms))
	for g := range part.Groups {
		grpSum[g] = make([]float64, len(atoms))
		if y[g] == 0 {
			continue
		}
		for k := range atoms {
			grpSum[g][k] = repAtoms[k].W[g] * float64(y[g])
			cur[k] += grpSum[g][k]
		}
	}

	var active []int
	for g, m := range y {
		if m > 0 {
			active = append(active, g)
		}
	}
	sort.SliceStable(active, func(i, j int) bool {
		if y[active[i]] != y[active[j]] {
			return y[active[i]] > y[active[j]]
		}
		return active[i] < active[j]
	})
	res.Active = len(active)

	scales := attrScales(inst, part.Attrs)
	refineGroup := func(g int, sweep int) {
		residual := make([]float64, len(atoms))
		for k := range atoms {
			residual[k] = atoms[k].RHS - (cur[k] - grpSum[g][k])
		}
		ok := subSolve(inst, part, g, residual, mult, opts, deadline, res)
		if ok {
			if sweep == 0 {
				res.Refined++
			}
		} else {
			greedyRepair(inst, part, g, y[g], mult, scales)
			if sweep == 0 {
				res.Repaired++
			}
		}
		// Swap g's contribution from representative to real tuples.
		for k := range atoms {
			s := 0.0
			for _, i := range part.Groups[g] {
				if mult[i] != 0 {
					s += atoms[k].W[i] * float64(mult[i])
				}
			}
			cur[k] += s - grpSum[g][k]
			grpSum[g][k] = s
		}
	}

	valid := false
	for sweep := 0; sweep < maxSweeps; sweep++ {
		for _, g := range active {
			refineGroup(g, sweep)
		}
		if valid = checkAtoms(atoms, cur); valid {
			break
		}
		if sweep == 0 {
			res.Notes = append(res.Notes, "refined package violates a constraint; running repair sweeps")
		}
	}

	res.Mult = mult
	if obj, err := inst.Objective(mult); err == nil {
		res.Objective = obj
	}
	if valid {
		// Atoms are exactly the formula (Applicable requires Pure), but
		// validate end to end anyway; a disagreement is a bug upstream.
		full, err := inst.Validate(mult)
		valid = err == nil && full
		if !valid {
			res.Notes = append(res.Notes, "internal: atom check and full validation disagree")
		}
	}
	res.Feasible = valid
	if !valid {
		res.Notes = append(res.Notes,
			fmt.Sprintf("refine could not reach a feasible package within %d sweeps", maxSweeps))
	}
}

// subSolve runs the per-partition MILP: variables are the partition's
// tuple multiplicities, constraints the query atoms with residual
// right-hand sides, objective the query's affine objective restricted
// to the partition. Atoms the partition cannot influence (all-zero
// weights) are skipped: their violation, if any, is another partition's
// to repair. Returns false when the sub-MILP is infeasible, hits its
// limits without an incumbent, or the budget is spent.
func subSolve(inst *search.Instance, part *Partitioning, g int, residual []float64, mult []int, opts Options, deadline time.Time, res *Result) bool {
	if !deadline.IsZero() && time.Now().After(deadline) {
		return false
	}
	members := part.Groups[g]
	m := len(members)
	p := lp.NewProblem(m)
	for j := 0; j < m; j++ {
		up := lp.Inf
		if inst.MaxMult > 0 {
			up = float64(inst.MaxMult)
		}
		if err := p.SetBounds(j, 0, up); err != nil {
			return false
		}
	}
	if inst.ObjW != nil {
		obj := make([]float64, m)
		for j, i := range members {
			obj[j] = inst.ObjW[i]
		}
		if err := p.SetObjective(obj, objSense(inst)); err != nil {
			return false
		}
	}
	for k, at := range inst.Atoms {
		var coefs []lp.Coef
		for j, i := range members {
			if at.W[i] != 0 {
				coefs = append(coefs, lp.Coef{Var: j, Val: at.W[i]})
			}
		}
		if len(coefs) == 0 {
			continue
		}
		if _, err := p.AddConstraint(coefs, at.Op, residual[k]); err != nil {
			return false
		}
	}
	mp := milp.NewProblem(p)
	for j := 0; j < m; j++ {
		mp.SetInteger(j)
	}
	sol := milp.Solve(mp, milp.Options{MaxNodes: opts.nodes(), TimeLimit: timeShare(deadline, 4)})
	res.Nodes += int64(sol.Nodes)
	res.LPIters += sol.LPIters
	if sol.X == nil || (sol.Status != milp.StatusOptimal && sol.Status != milp.StatusFeasible) {
		return false
	}
	for j, i := range members {
		mult[i] = int(math.Round(sol.X[j]))
	}
	return true
}

// greedyRepair approximates the representative's contribution with real
// tuples when the sub-MILP fails: the units partitions owe (the sketch
// multiplicity) are assigned round-robin to the partition's tuples
// nearest the representative in normalized attribute space.
func greedyRepair(inst *search.Instance, part *Partitioning, g, units int, mult []int, scales []float64) {
	members := part.Groups[g]
	for _, i := range members {
		mult[i] = 0
	}
	if units <= 0 {
		return
	}
	rep := part.Reps[g]
	order := append([]int(nil), members...)
	dist := func(i int) float64 {
		d := 0.0
		for ai, a := range part.Attrs {
			diff := (numAt(inst.Rows[i], a) - numAt(rep, a)) / scales[ai]
			d += diff * diff
		}
		return d
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := dist(order[a]), dist(order[b])
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	cap := inst.MaxMult
	if cap <= 0 {
		cap = units
	}
	placed := 0
	for placed < units {
		progressed := false
		for _, i := range order {
			if placed >= units {
				break
			}
			if mult[i] < cap {
				mult[i]++
				placed++
				progressed = true
			}
		}
		if !progressed {
			break // partition capacity exhausted
		}
	}
}

// attrScales normalizes each partition attribute by its spread across
// all candidates (1 for constant columns).
func attrScales(inst *search.Instance, attrs []int) []float64 {
	scales := make([]float64, len(attrs))
	for ai, a := range attrs {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, row := range inst.Rows {
			v := numAt(row, a)
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		scales[ai] = 1
		if hi > lo {
			scales[ai] = hi - lo
		}
	}
	return scales
}

// checkAtoms verifies every atom against the tracked sums.
func checkAtoms(atoms []*translate.LinearAtom, sums []float64) bool {
	for k, at := range atoms {
		if !at.CheckSum(sums[k]) {
			return false
		}
	}
	return true
}

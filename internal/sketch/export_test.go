package sketch

// ParallelForTest exposes the scheduling helper to the external test
// package.
var ParallelForTest = parallelFor

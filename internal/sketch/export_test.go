package sketch

import (
	"repro/internal/bound"
	"repro/internal/search"
	"repro/internal/translate"
)

// ParallelForTest exposes the scheduling helper to the external test
// package.
var ParallelForTest = parallelFor

// RawLPBoundForTest computes the exact LP-relaxation bound over the raw
// candidates of the instance's first DNF branch, sidestepping
// rawBoundCap — the tightness yardstick the bound tests compare the
// tree pipeline against.
func RawLPBoundForTest(inst *search.Instance) (bound.Outcome, error) {
	branches, _, err := translate.CompileSketch(inst.Analysis, MaxBranches)
	if err != nil {
		return bound.Outcome{}, err
	}
	ba, err := newBranchAtoms(nil, inst, branches[0])
	if err != nil {
		return bound.Outcome{}, err
	}
	groups := bound.Candidates(len(inst.Rows), inst.MaxMult, nil)
	p, err := bound.Relax(ba.tuple, inst.ObjW, objSense(inst), groups)
	if err != nil {
		return bound.Outcome{}, err
	}
	return bound.Solve(nil, p, inst.ObjK), nil
}

// SetRenameHook swaps the store's rename step for fault injection
// (crash-mid-resave tests); it returns a restore function.
func SetRenameHook(fn func(tmp, dst string) error) (restore func()) {
	old := renameFile
	renameFile = fn
	return func() { renameFile = old }
}

package sketch

// ParallelForTest exposes the scheduling helper to the external test
// package.
var ParallelForTest = parallelFor

// SetRenameHook swaps the store's rename step for fault injection
// (crash-mid-resave tests); it returns a restore function.
func SetRenameHook(fn func(tmp, dst string) error) (restore func()) {
	old := renameFile
	renameFile = fn
	return func() { renameFile = old }
}

package sketch

import (
	"time"

	"repro/internal/bound"
	"repro/internal/search"
	"repro/internal/translate"
)

// ParallelForTest exposes the scheduling helper to the external test
// package.
var ParallelForTest = parallelFor

// RawLPBoundForTest computes the exact LP-relaxation bound over the raw
// candidates of the instance's first DNF branch, sidestepping
// rawBoundCap — the tightness yardstick the bound tests compare the
// tree pipeline against.
func RawLPBoundForTest(inst *search.Instance) (bound.Outcome, error) {
	branches, _, err := translate.CompileSketch(inst.Analysis, MaxBranches)
	if err != nil {
		return bound.Outcome{}, err
	}
	ba, err := newBranchAtoms(nil, inst, branches[0])
	if err != nil {
		return bound.Outcome{}, err
	}
	groups := bound.Candidates(len(inst.Rows), inst.MaxMult, nil)
	p, err := bound.Relax(ba.tuple, inst.ObjW, objSense(inst), groups)
	if err != nil {
		return bound.Outcome{}, err
	}
	return bound.Solve(nil, p, inst.ObjK), nil
}

// SetRenameHook swaps the store's rename step for fault injection
// (crash-mid-resave tests); it returns a restore function.
func SetRenameHook(fn func(tmp, dst string) error) (restore func()) {
	old := renameFile
	renameFile = fn
	return func() { renameFile = old }
}

// ResetSweepForTest forgets that dir was already swept, so the next
// NewStore sweeps it again.
func ResetSweepForTest(dir string) { sweptDirs.Delete(dir) }

// SetStoreRetryForTest overrides the transient-I/O retry policy and
// returns a restore function (the chaos harness shrinks the backoff).
func SetStoreRetryForTest(attempts int, base, cap time.Duration) (restore func()) {
	oa, ob, oc := storeRetryAttempts, storeRetryBase, storeRetryCap
	storeRetryAttempts, storeRetryBase, storeRetryCap = attempts, base, cap
	return func() { storeRetryAttempts, storeRetryBase, storeRetryCap = oa, ob, oc }
}

package sketch_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/lifecycle"
	"repro/internal/minidb"
	"repro/internal/sketch"
)

const cancelQuery = `
	SELECT PACKAGE(R) AS P
	FROM recipes R
	SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500
	MAXIMIZE SUM(P.protein)`

func cancelPrep(t *testing.T, n int) *core.Prepared {
	t.Helper()
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: n, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	prep, err := core.Prepare(db, cancelQuery)
	if err != nil {
		t.Fatal(err)
	}
	return prep
}

// A context canceled before Solve starts returns ErrCanceled without
// publishing anything to the cache.
func TestSolveCanceledBeforeStart(t *testing.T) {
	prep := cancelPrep(t, 500)
	cache := sketch.NewCache(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sketch.Solve(prep.Instance, sketch.Options{
		Ctx: ctx, MaxPartitionSize: 32, Seed: 1, Cache: cache,
	})
	if !errors.Is(err, lifecycle.ErrCanceled) {
		t.Fatalf("Solve on canceled ctx returned %v, want ErrCanceled", err)
	}
	if cache.Len() != 0 {
		t.Fatalf("canceled solve published %d tree(s) to the cache", cache.Len())
	}
	// The cache stays usable: the same options solve cleanly afterwards.
	res, err := sketch.Solve(prep.Instance, sketch.Options{
		Ctx: context.Background(), MaxPartitionSize: 32, Seed: 1, Cache: cache,
	})
	if err != nil || !res.Feasible {
		t.Fatalf("follow-up solve after cancel: feasible=%v err=%v", res != nil && res.Feasible, err)
	}
	if cache.Len() != 1 {
		t.Fatalf("follow-up solve cached %d trees, want 1", cache.Len())
	}
}

// Concurrent solves sharing a fingerprint coalesce onto one tree
// build: every solver gets the same feasible answer and the cache
// records at most one real build (misses can exceed builds only by
// the flights that joined).
func TestConcurrentSolvesCoalesce(t *testing.T) {
	prep := cancelPrep(t, 2000)
	cache := sketch.NewCache(4)
	const clients = 8
	var wg sync.WaitGroup
	results := make([]*sketch.Result, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = sketch.Solve(prep.Instance, sketch.Options{
				Ctx: context.Background(), MaxPartitionSize: 64, Seed: 1, Cache: cache,
			})
		}(i)
	}
	wg.Wait()
	coalesced := 0
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !results[i].Feasible {
			t.Fatalf("client %d: infeasible", i)
		}
		if results[i].Coalesced {
			coalesced++
		}
	}
	st := cache.Stats()
	if st.Entries != 1 {
		t.Fatalf("cache holds %d trees, want 1", st.Entries)
	}
	if int(st.Coalesced) != coalesced {
		t.Fatalf("cache counted %d coalesced, results flag %d", st.Coalesced, coalesced)
	}
	// All clients race one flight; everyone who missed the initial Get
	// but did not win the flight must have coalesced.
	if int(st.Misses) != coalesced+1 {
		t.Fatalf("stats %v: want misses == coalesced+1 (one real build)", st)
	}
}

// A joiner whose own context is canceled while parked on another
// solve's flight unblocks promptly with ErrCanceled; the builder is
// unaffected.
func TestCoalescedJoinerCancel(t *testing.T) {
	prep := cancelPrep(t, 50000)
	cache := sketch.NewCache(4)
	opts := func(ctx context.Context) sketch.Options {
		return sketch.Options{Ctx: ctx, MaxPartitionSize: 16, Depth: 3, Seed: 1, Cache: cache, Parallelism: 1}
	}
	builderDone := make(chan error, 1)
	go func() {
		_, err := sketch.Solve(prep.Instance, opts(context.Background()))
		builderDone <- err
	}()
	ctx, cancel := context.WithCancel(context.Background())
	joinerDone := make(chan error, 1)
	go func() {
		_, err := sketch.Solve(prep.Instance, opts(ctx))
		joinerDone <- err
	}()
	cancel()
	if err := <-joinerDone; err != nil && !errors.Is(err, lifecycle.ErrCanceled) {
		t.Fatalf("joiner returned %v, want nil or ErrCanceled", err)
	}
	if err := <-builderDone; err != nil {
		t.Fatalf("builder failed: %v", err)
	}
}

package sketch

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/schema"
	"repro/internal/value"
)

// persistMagic and persistVersion identify the on-disk partition-tree
// format. Bump the version whenever the encoding changes: old files
// then fail the header check and are rebuilt, never misread.
//
// Version history:
//
//	1  children/tuples + representative row per node
//	2  adds the per-attribute min/max envelope (Lo/Hi/NonNull) each
//	   node carries for MIN/MAX atom pruning
//	3  the key fingerprint switched to the per-row-hash composition
//	   (RowHash/CombineRowHashes) incremental maintenance recombines
//	   (a v2 file's fingerprint was computed under the old mixing
//	   order, so matching it against a v3 key could only ever be a
//	   collision — old files fail the version check and rebuild
//	   cleanly instead), and the tree header gains the Patched
//	   provenance flag ApplyDelta sets
const (
	persistMagic   = "PBTREE"
	persistVersion = 3
)

// Store is the on-disk tier of the partition-tree cache: one file per
// Key under a directory, written atomically (temp file + rename) after
// every build and read on an in-memory miss. Files carry the full key
// — fingerprint included — plus a trailing checksum, so a stale,
// truncated, or corrupted file is detected and reported as a miss
// (the caller rebuilds and overwrites); a load never yields a tree
// that does not match the requested key byte for byte.
//
// The rename-based write makes concurrent use safe: readers only ever
// see complete files, and the last concurrent builder of the same key
// wins with an identical tree (builds are deterministic).
//
// Failure handling (the storage rungs of the degradation ladder):
//
//   - Transient I/O errors on load and save are retried with capped
//     exponential backoff plus jitter; a missing file is never retried
//     (it is a clean miss).
//   - A file that decodes as corrupt is quarantined — renamed to
//     <name>.quarantine with a sibling .reason file — so the next miss
//     on that key is clean instead of re-reading the same bad bytes on
//     every query.
//   - Orphaned temp files (".pbtree-*", left by a crash between write
//     and rename) are swept once per directory per process, on the
//     first NewStore for that directory.
type Store struct {
	dir string
	fs  fault.FS
}

// sweepState guards the once-per-process-per-directory orphan sweep
// and records its outcome so serving front ends can log what the first
// NewStore for their directory actually removed.
type sweepState struct {
	once    sync.Once
	removed int
	err     error
}

var sweptDirs sync.Map // dir -> *sweepState

// NewStore returns a store rooted at dir. The directory is created on
// the first Save; the first NewStore for a directory sweeps any
// orphaned temp files a previous crashed process left behind.
func NewStore(dir string) *Store {
	s := &Store{dir: dir, fs: fault.FSFor("sketch.store.fs")}
	v, _ := sweptDirs.LoadOrStore(dir, new(sweepState))
	st := v.(*sweepState)
	st.once.Do(func() { st.removed, st.err = s.SweepOrphans() })
	return s
}

// SweepResult reports what the once-per-process startup sweep for the
// store's directory removed (0, nil before any NewStore for it ran).
func (s *Store) SweepResult() (removed int, err error) {
	if v, ok := sweptDirs.Load(s.dir); ok {
		st := v.(*sweepState)
		return st.removed, st.err
	}
	return 0, nil
}

// SweepOrphans removes leftover ".pbtree-*" temp files from the store
// directory — debris from a save that crashed between writing the
// payload and the atomic rename. It returns how many files it removed.
// A missing directory is a clean no-op. Sweeping runs automatically on
// the first NewStore per directory; serving front ends may also call it
// explicitly at startup.
func (s *Store) SweepOrphans() (removed int, err error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, tmpPrefix) {
			continue
		}
		if s.fs.Remove(filepath.Join(s.dir, name)) == nil {
			removed++
		}
	}
	return removed, nil
}

// tmpPattern names save temp files; tmpPrefix is what SweepOrphans
// matches against.
const (
	tmpPattern = ".pbtree-*"
	tmpPrefix  = ".pbtree-"
)

// renameFile publishes a finished temp file; tests swap it via
// SetRenameHook to inject a crash between writing the payload and the
// atomic rename (the window where both the old file and the orphaned
// temp exist). When nil, the store's own FS performs the rename.
var renameFile func(tmp, dst string) error

// Retry policy for transient load/save I/O errors: capped exponential
// backoff with jitter. Variables so the chaos harness can shrink the
// delays.
var (
	storeRetryAttempts = 3
	storeRetryBase     = 2 * time.Millisecond
	storeRetryCap      = 16 * time.Millisecond
)

// retryIO runs op up to storeRetryAttempts times, sleeping an
// exponentially growing, jittered backoff between attempts. A missing
// file is returned immediately — absence is a fact, not a fault.
func retryIO(op func() error) error {
	var err error
	for i := 0; ; i++ {
		err = op()
		if err == nil || os.IsNotExist(err) || i+1 >= storeRetryAttempts {
			return err
		}
		d := storeRetryBase << i
		if d > storeRetryCap {
			d = storeRetryCap
		}
		// Full jitter over the upper half of the window decorrelates
		// concurrent retriers hammering the same device.
		d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
		time.Sleep(d)
	}
}

// Dir reports the directory backing the store.
func (s *Store) Dir() string { return s.dir }

// Path returns the file a key persists to: the row fingerprint plus a
// digest of the remaining knobs, so distinct keys never collide on a
// name and a data change switches files instead of overwriting a tree
// another dataset still uses.
func (s *Store) Path(k Key) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d", k.Attrs, k.Tau, k.Depth, k.Seed)
	return filepath.Join(s.dir, fmt.Sprintf("%016x-%016x.pbtree", k.Fingerprint, h.Sum64()))
}

// Save writes the tree for the key, atomically replacing any previous
// file. Transient I/O errors retry the whole write (each attempt uses a
// fresh temp file; a failed attempt removes its own temp so crashed
// saves never accumulate debris that blocks later ones).
func (s *Store) Save(k Key, t *Tree) error {
	return retryIO(func() error {
		if err := fault.Check("sketch.store.save"); err != nil {
			return err
		}
		return s.saveOnce(k, t)
	})
}

// saveOnce performs one atomic write attempt.
func (s *Store) saveOnce(k Key, t *Tree) error {
	if err := s.fs.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	f, err := s.fs.CreateTemp(s.dir, tmpPattern)
	if err != nil {
		return err
	}
	tmp := f.Name()
	crc := crc32.NewIEEE()
	enc := &treeEncoder{w: bufio.NewWriter(io.MultiWriter(f, crc))}
	enc.encode(k, t)
	err = enc.flush()
	if err == nil {
		// The checksum trails the payload so it can be computed while
		// streaming; once the payload is flushed it is final, and goes
		// straight to the file (bypassing the hash writer).
		var sum [4]byte
		binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
		_, err = f.Write(sum[:])
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		rn := renameFile
		if rn == nil {
			rn = s.fs.Rename
		}
		err = rn(tmp, s.Path(k))
	}
	if err != nil {
		s.fs.Remove(tmp)
	}
	return err
}

// Contains reports whether a file for the key exists, without reading
// or validating it — the planner's cheap "could the tree come from
// disk?" probe. A corrupt file makes Contains optimistic; the engine's
// Load still falls back to a rebuild, so the plan is a prediction, not
// a promise.
func (s *Store) Contains(k Key) bool {
	fi, err := s.fs.Stat(s.Path(k))
	return err == nil && !fi.IsDir()
}

// Load reads the tree persisted for the key. A missing file is a clean
// miss (nil, nil); transient read errors are retried with backoff; a
// file that is truncated, corrupted, carries another format version, or
// was written for a different key — a stale fingerprint after a data
// change, say — is quarantined and returns an error the caller should
// treat as "rebuild", never as fatal. Quarantining (rename to
// <name>.quarantine plus a .reason file) turns a persistently corrupt
// file into exactly one degraded query: the next miss on the key is
// clean and the rebuilt tree re-persists under the original name.
func (s *Store) Load(k Key) (*Tree, error) {
	path := s.Path(k)
	var data []byte
	err := retryIO(func() error {
		if err := fault.Check("sketch.store.load"); err != nil {
			return err
		}
		var rerr error
		data, rerr = s.fs.ReadFile(path)
		return rerr
	})
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	t, err := decodeTree(data, k)
	if err != nil {
		if qerr := s.quarantine(path, err); qerr == nil {
			err = fmt.Errorf("%w (file quarantined)", err)
		}
		return nil, err
	}
	return t, nil
}

// quarantine moves a corrupt store file out of the key's path and
// records why, preserving the bytes for post-mortem instead of letting
// the next save silently overwrite the evidence.
func (s *Store) quarantine(path string, cause error) error {
	qpath := path + ".quarantine"
	if err := s.fs.Rename(path, qpath); err != nil {
		return err
	}
	reason := fmt.Sprintf("quarantined: %s\ntime: %s\ncause: %v\n",
		filepath.Base(path), time.Now().UTC().Format(time.RFC3339), cause)
	// Best effort: the quarantine itself succeeded even if the note
	// cannot be written.
	s.fs.WriteFile(qpath+".reason", []byte(reason), 0o644)
	return nil
}

// treeEncoder streams the versioned binary encoding: magic, version,
// the full key, then the tree — per level, per node: children and
// tuples as delta-compressed uvarints (both are sorted ascending) and
// the representative row via value.EncodeKey.
type treeEncoder struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (e *treeEncoder) bytes(b []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

func (e *treeEncoder) uvarint(u uint64) {
	n := binary.PutUvarint(e.buf[:], u)
	e.bytes(e.buf[:n])
}

func (e *treeEncoder) varint(i int64) {
	n := binary.PutVarint(e.buf[:], i)
	e.bytes(e.buf[:n])
}

// deltaInts writes a sorted int slice as count + first + deltas (the
// arithmetic wraps through uint64, so even an unsorted slice — a bug,
// not a format — would still round-trip exactly).
func (e *treeEncoder) deltaInts(xs []int) {
	e.uvarint(uint64(len(xs)))
	prev := 0
	for _, x := range xs {
		e.uvarint(uint64(x - prev))
		prev = x
	}
}

func (e *treeEncoder) row(r schema.Row) {
	e.uvarint(uint64(len(r)))
	var buf []byte
	for _, v := range r {
		buf = v.EncodeKey(buf[:0])
		e.bytes(buf)
	}
}

func (e *treeEncoder) encode(k Key, t *Tree) {
	e.bytes([]byte(persistMagic))
	e.uvarint(persistVersion)
	var fp [8]byte
	binary.LittleEndian.PutUint64(fp[:], k.Fingerprint)
	e.bytes(fp[:])
	e.uvarint(uint64(len(k.Attrs)))
	e.bytes([]byte(k.Attrs))
	e.uvarint(uint64(k.Tau))
	e.uvarint(uint64(k.Depth))
	e.varint(k.Seed)
	e.deltaInts(t.Attrs)
	e.uvarint(uint64(t.Tau))
	e.uvarint(uint64(t.Depth))
	patched := uint64(0)
	if t.Patched {
		patched = 1
	}
	e.uvarint(patched)
	for _, nodes := range t.Levels {
		e.uvarint(uint64(len(nodes)))
		for i := range nodes {
			e.deltaInts(nodes[i].Children)
			e.deltaInts(nodes[i].Tuples)
			e.row(nodes[i].Rep)
			e.envelope(&nodes[i], len(t.Attrs))
		}
	}
}

// envelope writes a node's per-attribute min/max envelope: Lo and Hi as
// raw float64 bits (bit-for-bit round-trip, no text formatting loss)
// and NonNull as a uvarint, one triple per split attribute.
func (e *treeEncoder) envelope(n *Node, nAttrs int) {
	for ai := 0; ai < nAttrs; ai++ {
		var b [16]byte
		binary.LittleEndian.PutUint64(b[:8], math.Float64bits(n.Lo[ai]))
		binary.LittleEndian.PutUint64(b[8:], math.Float64bits(n.Hi[ai]))
		e.bytes(b[:])
		e.uvarint(uint64(n.NonNull[ai]))
	}
}

func (e *treeEncoder) flush() error {
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

// treeDecoder validates as it reads: every count is checked against the
// bytes remaining before allocation, so a corrupted header cannot
// trigger a huge allocation, and any overrun surfaces as an error.
type treeDecoder struct {
	data []byte
	off  int
}

func (d *treeDecoder) remaining() int { return len(d.data) - d.off }

func (d *treeDecoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.remaining() < n {
		return nil, fmt.Errorf("truncated (%d bytes wanted, %d left)", n, d.remaining())
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *treeDecoder) uvarint() (uint64, error) {
	u, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated varint at offset %d", d.off)
	}
	d.off += n
	return u, nil
}

func (d *treeDecoder) varint() (int64, error) {
	i, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated varint at offset %d", d.off)
	}
	d.off += n
	return i, nil
}

// count reads a length prefix, rejecting any value no payload of the
// remaining size could hold (each element takes at least one byte).
func (d *treeDecoder) count() (int, error) {
	u, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if u > uint64(d.remaining()) {
		return 0, fmt.Errorf("count %d exceeds remaining %d bytes", u, d.remaining())
	}
	return int(u), nil
}

func (d *treeDecoder) deltaInts() ([]int, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	xs := make([]int, n)
	prev := uint64(0)
	for i := range xs {
		u, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		prev += u
		xs[i] = int(prev)
	}
	return xs, nil
}

func (d *treeDecoder) row() (schema.Row, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	r := make(schema.Row, n)
	rest := d.data[d.off:]
	for i := range r {
		var v value.V
		v, rest, err = value.DecodeKey(rest)
		if err != nil {
			return nil, err
		}
		r[i] = v
	}
	d.off = len(d.data) - len(rest)
	return r, nil
}

// envelope reads a node's per-attribute min/max envelope (the inverse
// of treeEncoder.envelope).
func (d *treeDecoder) envelope(n *Node, nAttrs int) error {
	n.Lo = make([]float64, nAttrs)
	n.Hi = make([]float64, nAttrs)
	n.NonNull = make([]int, nAttrs)
	for ai := 0; ai < nAttrs; ai++ {
		b, err := d.bytes(16)
		if err != nil {
			return err
		}
		n.Lo[ai] = math.Float64frombits(binary.LittleEndian.Uint64(b[:8]))
		n.Hi[ai] = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
		u, err := d.uvarint()
		if err != nil {
			return err
		}
		n.NonNull[ai] = int(u)
	}
	return nil
}

// decodeTree parses and verifies one persisted tree against the key the
// caller asked for.
func decodeTree(data []byte, k Key) (*Tree, error) {
	if len(data) < len(persistMagic)+4 {
		return nil, fmt.Errorf("sketch: persisted tree: file too short (%d bytes)", len(data))
	}
	payload, sum := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(sum) {
		return nil, fmt.Errorf("sketch: persisted tree: checksum mismatch (truncated or corrupted file)")
	}
	d := &treeDecoder{data: payload}
	magic, err := d.bytes(len(persistMagic))
	if err != nil || string(magic) != persistMagic {
		return nil, fmt.Errorf("sketch: persisted tree: bad magic")
	}
	version, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("sketch: persisted tree: %w", err)
	}
	if version != persistVersion {
		return nil, fmt.Errorf("sketch: persisted tree: format version %d (want %d)", version, persistVersion)
	}
	fpBytes, err := d.bytes(8)
	if err != nil {
		return nil, fmt.Errorf("sketch: persisted tree: %w", err)
	}
	got := Key{Fingerprint: binary.LittleEndian.Uint64(fpBytes)}
	attrsLen, err := d.count()
	if err != nil {
		return nil, fmt.Errorf("sketch: persisted tree: %w", err)
	}
	attrs, err := d.bytes(attrsLen)
	if err != nil {
		return nil, fmt.Errorf("sketch: persisted tree: %w", err)
	}
	got.Attrs = string(attrs)
	tau, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("sketch: persisted tree: %w", err)
	}
	got.Tau = int(tau)
	depth, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("sketch: persisted tree: %w", err)
	}
	got.Depth = int(depth)
	if got.Seed, err = d.varint(); err != nil {
		return nil, fmt.Errorf("sketch: persisted tree: %w", err)
	}
	if got != k {
		return nil, fmt.Errorf("sketch: persisted tree is for another key (stale fingerprint or knobs): have %+v, want %+v", got, k)
	}
	t := &Tree{}
	if t.Attrs, err = d.deltaInts(); err != nil {
		return nil, fmt.Errorf("sketch: persisted tree: attrs: %w", err)
	}
	treeTau, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("sketch: persisted tree: %w", err)
	}
	t.Tau = int(treeTau)
	treeDepth, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("sketch: persisted tree: %w", err)
	}
	t.Depth = int(treeDepth)
	if t.Depth < 1 || t.Depth > maxDepth {
		return nil, fmt.Errorf("sketch: persisted tree: implausible depth %d", t.Depth)
	}
	patched, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("sketch: persisted tree: %w", err)
	}
	if patched > 1 {
		return nil, fmt.Errorf("sketch: persisted tree: implausible patched flag %d", patched)
	}
	t.Patched = patched == 1
	t.Levels = make([][]Node, t.Depth)
	for l := range t.Levels {
		n, err := d.count()
		if err != nil {
			return nil, fmt.Errorf("sketch: persisted tree: level %d: %w", l, err)
		}
		nodes := make([]Node, n)
		for i := range nodes {
			if nodes[i].Children, err = d.deltaInts(); err != nil {
				return nil, fmt.Errorf("sketch: persisted tree: level %d node %d children: %w", l, i, err)
			}
			if nodes[i].Tuples, err = d.deltaInts(); err != nil {
				return nil, fmt.Errorf("sketch: persisted tree: level %d node %d tuples: %w", l, i, err)
			}
			if nodes[i].Rep, err = d.row(); err != nil {
				return nil, fmt.Errorf("sketch: persisted tree: level %d node %d rep: %w", l, i, err)
			}
			if err = d.envelope(&nodes[i], len(t.Attrs)); err != nil {
				return nil, fmt.Errorf("sketch: persisted tree: level %d node %d envelope: %w", l, i, err)
			}
		}
		t.Levels[l] = nodes
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("sketch: persisted tree: %d trailing bytes", d.remaining())
	}
	if err := t.validateStructure(); err != nil {
		return nil, fmt.Errorf("sketch: persisted tree: %w", err)
	}
	return t, nil
}

// validateStructure rejects trees that decoded cleanly but are
// internally inconsistent — the checksum guards against accidental
// damage, this guards against files whose payload was altered and
// re-checksummed (or a fingerprint collision): nothing a Load returns
// may panic the solver downstream. Instance-dependent checks (tuple
// indexes vs the candidate count, attrs vs the row width) live in
// validateAgainst.
func (t *Tree) validateStructure() error {
	if t.Depth != len(t.Levels) {
		return fmt.Errorf("depth %d but %d levels", t.Depth, len(t.Levels))
	}
	for _, a := range t.Attrs {
		if a < 0 {
			return fmt.Errorf("negative attribute ordinal %d", a)
		}
	}
	for l, nodes := range t.Levels {
		if len(nodes) == 0 {
			return fmt.Errorf("level %d is empty", l)
		}
		for i := range nodes {
			if len(nodes[i].Tuples) == 0 {
				return fmt.Errorf("level %d node %d covers no tuples", l, i)
			}
			for _, x := range nodes[i].Tuples {
				if x < 0 {
					return fmt.Errorf("level %d node %d: negative tuple index %d", l, i, x)
				}
			}
			if nodes[i].Rep == nil {
				return fmt.Errorf("level %d node %d has no representative", l, i)
			}
			if len(nodes[i].Lo) != len(t.Attrs) || len(nodes[i].Hi) != len(t.Attrs) || len(nodes[i].NonNull) != len(t.Attrs) {
				return fmt.Errorf("level %d node %d: envelope covers %d/%d/%d of %d attributes",
					l, i, len(nodes[i].Lo), len(nodes[i].Hi), len(nodes[i].NonNull), len(t.Attrs))
			}
			for ai := range t.Attrs {
				if nodes[i].NonNull[ai] < 0 || nodes[i].NonNull[ai] > len(nodes[i].Tuples) {
					return fmt.Errorf("level %d node %d attr %d: %d non-NULL values for %d tuples",
						l, i, ai, nodes[i].NonNull[ai], len(nodes[i].Tuples))
				}
				if nodes[i].NonNull[ai] > 0 && !(nodes[i].Lo[ai] <= nodes[i].Hi[ai]) {
					return fmt.Errorf("level %d node %d attr %d: envelope lo %g above hi %g",
						l, i, ai, nodes[i].Lo[ai], nodes[i].Hi[ai])
				}
			}
			if l == t.Depth-1 {
				if len(nodes[i].Children) != 0 {
					return fmt.Errorf("leaf node %d has children", i)
				}
				continue
			}
			below := len(t.Levels[l+1])
			for _, ci := range nodes[i].Children {
				if ci < 0 || ci >= below {
					return fmt.Errorf("level %d node %d: child index %d outside level %d (%d nodes)", l, i, ci, l+1, below)
				}
			}
		}
	}
	return nil
}

// validateAgainst checks the tree fits the instance it is about to
// serve: every leaf tuple index in range and covered exactly once, and
// every split attribute a real column. The partition cache key should
// make a mismatch impossible; this is the backstop that turns a
// fingerprint collision or a tampered store file into a rebuild
// instead of an out-of-range panic inside a solve.
func (t *Tree) validateAgainst(n, width int) error {
	for _, a := range t.Attrs {
		if a >= width {
			return fmt.Errorf("attribute ordinal %d outside %d-column rows", a, width)
		}
	}
	seen := make([]bool, n)
	covered := 0
	for i := range t.Leaves() {
		for _, x := range t.Leaves()[i].Tuples {
			if x >= n {
				return fmt.Errorf("leaf %d: tuple index %d outside %d candidates", i, x, n)
			}
			if seen[x] {
				return fmt.Errorf("tuple %d covered by two leaves", x)
			}
			seen[x] = true
			covered++
		}
	}
	if covered != n {
		return fmt.Errorf("leaves cover %d of %d candidates", covered, n)
	}
	return nil
}

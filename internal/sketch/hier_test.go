package sketch_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/minidb"
	"repro/internal/sketch"
)

// TestTreeInvariants checks the partition-tree shape: every level
// covers every candidate exactly once, each internal node's children
// partition its covered tuples, and level sizes shrink root-ward.
func TestTreeInvariants(t *testing.T) {
	prep := recipesPrep(t, 2000)
	tree := sketch.BuildTree(prep.Instance, sketch.Options{MaxPartitionSize: 16, Depth: 3, Seed: 7})
	if tree.Depth < 2 || tree.Depth > 3 {
		t.Fatalf("depth = %d, want 2..3", tree.Depth)
	}
	if len(tree.Levels) != tree.Depth {
		t.Fatalf("%d levels for depth %d", len(tree.Levels), tree.Depth)
	}
	n := len(prep.Instance.Rows)
	for l, nodes := range tree.Levels {
		seen := map[int]bool{}
		for _, nd := range nodes {
			if len(nd.Tuples) == 0 {
				t.Fatalf("level %d has an empty node", l)
			}
			for _, i := range nd.Tuples {
				if seen[i] {
					t.Fatalf("level %d covers candidate %d twice", l, i)
				}
				seen[i] = true
			}
			if nd.Rep == nil {
				t.Fatalf("level %d node without representative", l)
			}
		}
		if len(seen) != n {
			t.Fatalf("level %d covers %d of %d candidates", l, len(seen), n)
		}
		if l > 0 && len(nodes) < len(tree.Levels[l-1]) {
			t.Fatalf("level %d (%d nodes) smaller than level %d (%d nodes)",
				l, len(nodes), l-1, len(tree.Levels[l-1]))
		}
	}
	// Children partition the parent's covered tuples.
	for l := 0; l < tree.Depth-1; l++ {
		for _, nd := range tree.Levels[l] {
			covered := 0
			for _, ci := range nd.Children {
				covered += len(tree.Levels[l+1][ci].Tuples)
			}
			if covered != len(nd.Tuples) {
				t.Fatalf("level %d node covers %d tuples but its children cover %d",
					l, len(nd.Tuples), covered)
			}
		}
	}
	// Leaves respect τ.
	for _, nd := range tree.Leaves() {
		if len(nd.Tuples) > 16 {
			t.Fatalf("leaf size %d > τ=16", len(nd.Tuples))
		}
	}
}

// TestDepthClampedAndFlat checks that an absurd depth still builds
// (early-stopping once another level cannot shrink the top) and that
// depth 0/1 stays flat.
func TestDepthClampedAndFlat(t *testing.T) {
	prep := recipesPrep(t, 200)
	tree := sketch.BuildTree(prep.Instance, sketch.Options{MaxPartitionSize: 8, Depth: 100, Seed: 1})
	if tree.Depth > 8 {
		t.Fatalf("depth %d not clamped", tree.Depth)
	}
	flat := sketch.BuildTree(prep.Instance, sketch.Options{MaxPartitionSize: 8, Seed: 1})
	if flat.Depth != 1 {
		t.Fatalf("default depth = %d, want 1", flat.Depth)
	}
}

// TestHierarchicalDepth2 runs the meal query with a two-level sketch:
// the result must stay feasible, never beat the proven optimum, and the
// top-level MILP must stay around the square root of the leaf count.
func TestHierarchicalDepth2(t *testing.T) {
	prep := recipesPrep(t, 2000)
	exact, err := prep.Run(core.Options{Strategy: core.Solver, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sketch.Solve(prep.Instance, sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("hierarchical sketch found no feasible package: %v", res.Notes)
	}
	if res.Levels != 2 {
		t.Fatalf("levels = %d, want 2", res.Levels)
	}
	maxTop := int(math.Ceil(math.Sqrt(float64(res.Partitions)))) + 1
	if res.TopVars > maxTop {
		t.Fatalf("top-level MILP has %d vars for %d leaves (want <= ~√P = %d)",
			res.TopVars, res.Partitions, maxTop)
	}
	opt := exact.Packages[0].Objective
	if res.Objective > opt+1e-6 {
		t.Fatalf("sketch objective %.3f beats proven optimum %.3f", res.Objective, opt)
	}
}

// TestHierarchical1MWithin5Percent is the scale acceptance check: on a
// 1M-tuple synthetic workload a depth-2 sketch must return a feasible
// package with an objective within 5% of flat SketchRefine while its
// top-level MILP stays at ≤ √(#partitions) variables, and a warm
// partition-cache hit must skip partitioning entirely (verified by the
// stats counters).
func TestHierarchical1MWithin5Percent(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 1M-tuple relation")
	}
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 1000000, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	prep, err := core.Prepare(db, mealQuery)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := sketch.Solve(prep.Instance, sketch.Options{MaxPartitionSize: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !flat.Feasible {
		t.Fatalf("flat sketch infeasible at 1M: %v", flat.Notes)
	}
	cache := sketch.NewCache(0)
	hier, err := sketch.Solve(prep.Instance, sketch.Options{MaxPartitionSize: 256, Depth: 2, Seed: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !hier.Feasible {
		t.Fatalf("hierarchical sketch infeasible at 1M: %v", hier.Notes)
	}
	if hier.Levels < 2 {
		t.Fatalf("levels = %d, want >= 2", hier.Levels)
	}
	if maxTop := int(math.Ceil(math.Sqrt(float64(hier.Partitions)))); hier.TopVars > maxTop {
		t.Fatalf("top-level MILP has %d vars for %d leaves (want <= √P = %d)",
			hier.TopVars, hier.Partitions, maxTop)
	}
	if gap := (flat.Objective - hier.Objective) / math.Abs(flat.Objective); gap > 0.05 {
		t.Fatalf("hierarchical objective %.1f is %.1f%% below flat %.1f (want <= 5%%)",
			hier.Objective, gap*100, flat.Objective)
	}
	if hier.CacheHit {
		t.Fatal("cold run must not report a cache hit")
	}
	warm, err := sketch.Solve(prep.Instance, sketch.Options{MaxPartitionSize: 256, Depth: 2, Seed: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("warm run must hit the partition cache")
	}
	if !warm.Feasible {
		t.Fatalf("warm run infeasible: %v", warm.Notes)
	}
	cs := cache.Stats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Fatalf("cache stats = %v, want 1 hit / 1 miss", cs)
	}
}

// TestPartitionCacheHitAndInvalidation verifies the cache contract on a
// small workload: a repeat evaluation hits, and changing the backing
// rows changes the fingerprint so the stale tree is never served.
func TestPartitionCacheHitAndInvalidation(t *testing.T) {
	cache := sketch.NewCache(0)
	prep := recipesPrep(t, 300)
	opts := sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 1, Cache: cache}
	cold, err := sketch.Solve(prep.Instance, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Fatal("first evaluation must miss")
	}
	afterCold := cache.Stats()
	if afterCold.Hits != 0 || afterCold.Misses == 0 {
		t.Fatalf("cold stats = %v, want 0 hits and >0 misses", afterCold)
	}
	warm, err := sketch.Solve(prep.Instance, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("second evaluation must hit")
	}
	if warm.Partitions != cold.Partitions || warm.Objective != cold.Objective {
		t.Fatalf("cached run diverged: %+v vs %+v", warm, cold)
	}
	afterWarm := cache.Stats()
	// A warm repeat hits for every tree the cold run built: no new
	// misses means partitioning was skipped entirely.
	if afterWarm.Misses != afterCold.Misses || afterWarm.Hits == 0 {
		t.Fatalf("warm stats = %v (cold %v), want hits only", afterWarm, afterCold)
	}
	// Write to the backing table: the candidate fingerprint changes, so
	// the next evaluation must rebuild instead of serving a stale tree.
	db := prep.DB
	if _, err := db.Exec("INSERT INTO recipes VALUES (99999, 'new', 'fusion', 'dinner', 'free', 2100, 99, 10, 50, 9.5, 4.5)"); err != nil {
		t.Fatal(err)
	}
	prep2, err := core.Prepare(db, mealQuery)
	if err != nil {
		t.Fatal(err)
	}
	after, err := sketch.Solve(prep2.Instance, opts)
	if err != nil {
		t.Fatal(err)
	}
	if after.CacheHit {
		t.Fatal("evaluation after a write must not hit the stale tree")
	}
	afterWrite := cache.Stats()
	if afterWrite.Misses <= afterWarm.Misses || afterWrite.Hits != afterWarm.Hits {
		t.Fatalf("post-write stats = %v (pre-write %v), want new misses and no new hits", afterWrite, afterWarm)
	}
}

// TestCacheLRUEviction exercises the bound directly.
func TestCacheLRUEviction(t *testing.T) {
	c := sketch.NewCache(2)
	mk := func(seed int64) (sketch.Key, *sketch.Tree) {
		return sketch.Key{Fingerprint: uint64(seed), Tau: 8, Depth: 1, Seed: seed}, &sketch.Tree{Tau: 8, Depth: 1}
	}
	k1, t1 := mk(1)
	k2, t2 := mk(2)
	k3, t3 := mk(3)
	c.Put(k1, t1)
	c.Put(k2, t2)
	if _, ok := c.Get(k1); !ok { // k1 is now most recently used
		t.Fatal("k1 should be cached")
	}
	c.Put(k3, t3) // evicts k2, the least recently used
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, ok := c.Get(k2); ok {
		t.Fatal("k2 should have been evicted")
	}
	if _, ok := c.Get(k1); !ok {
		t.Fatal("k1 should have survived eviction")
	}
	cs := c.Stats()
	if cs.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", cs.Evictions)
	}
}

// TestSketchHonorsPinnedTuples pins the candidate the objective likes
// least; the sketch must force its leaf partition into every level and
// return a feasible package containing it, at depth 1 and 2 alike.
func TestSketchHonorsPinnedTuples(t *testing.T) {
	prep := recipesPrep(t, 400)
	inst := prep.Instance
	// The lowest-protein candidate: MAXIMIZE SUM(protein) would never
	// pick it on its own.
	pin, worst := -1, math.Inf(1)
	for i, w := range inst.ObjW {
		if w < worst {
			pin, worst = i, w
		}
	}
	for _, depth := range []int{1, 2} {
		res, err := sketch.Solve(inst, sketch.Options{MaxPartitionSize: 16, Depth: depth, Seed: 1, Require: []int{pin}})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Fatalf("depth %d: no feasible package with pinned tuple %d: %v", depth, pin, res.Notes)
		}
		if res.Mult[pin] < 1 {
			t.Fatalf("depth %d: pinned candidate %d has multiplicity %d", depth, pin, res.Mult[pin])
		}
		if ok, err := inst.Validate(res.Mult); err != nil || !ok {
			t.Fatalf("depth %d: pinned package invalid (%v, %v)", depth, ok, err)
		}
	}
	// Out-of-range pins are an error, not a silent drop.
	if _, err := sketch.Solve(inst, sketch.Options{Require: []int{len(inst.Rows)}}); err == nil {
		t.Fatal("out-of-range pin should be rejected")
	}
}

// TestSketchExclusionCuts asks for successive packages, each excluding
// the ones before: every result must be feasible, distinct from all
// excluded vectors, and the cuts must be enforced exactly (not just at
// the representative level).
func TestSketchExclusionCuts(t *testing.T) {
	prep := recipesPrep(t, 400)
	inst := prep.Instance
	opts := sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 1}
	var exclude [][]int
	for round := 0; round < 3; round++ {
		o := opts
		o.Exclude = exclude
		res, err := sketch.Solve(inst, o)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Fatalf("round %d: no feasible package: %v", round, res.Notes)
		}
		for ei, ex := range exclude {
			same := true
			for i := range ex {
				if (ex[i] > 0) != (res.Mult[i] > 0) {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("round %d returned the package excluded in round %d", round, ei)
			}
		}
		exclude = append(exclude, res.Mult)
	}
	// Exclusion cuts require 0/1 multiplicities.
	db := minidb.New()
	for _, s := range []string{"CREATE TABLE t (x INT)", "INSERT INTO t VALUES (1)", "INSERT INTO t VALUES (2)"} {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	rp, err := core.Prepare(db, `SELECT PACKAGE(T) AS P FROM t T REPEAT 2 SUCH THAT SUM(P.x) <= 10`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sketch.Solve(rp.Instance, sketch.Options{Exclude: [][]int{{1, 0}}}); err == nil {
		t.Fatal("exclusion cuts with REPEAT should be rejected")
	}
}

package sketch_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/minidb"
	"repro/internal/schema"
	"repro/internal/sketch"
	"repro/internal/value"
)

// deltaFixture builds a prepared meal query over n recipes, returning
// the db and prep for follow-up writes.
func deltaFixture(t *testing.T, n int) (*minidb.DB, *core.Prepared) {
	t.Helper()
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: n, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	prep, err := core.Prepare(db, mealQuery)
	if err != nil {
		t.Fatal(err)
	}
	return db, prep
}

// remapByID matches old candidates to new ones through the unique id
// column — the ground-truth lineage the fingerprint memo derives from
// the delta log.
func remapByID(oldRows, newRows []schema.Row) []int {
	pos := map[string]int{}
	for j, row := range newRows {
		pos[row[0].String()] = j
	}
	remap := make([]int, len(oldRows))
	for i, row := range oldRows {
		if j, ok := pos[row[0].String()]; ok {
			remap[i] = j
		} else {
			remap[i] = -1
		}
	}
	return remap
}

// checkTree verifies the structural invariants a patched tree must
// keep: exact coverage at every level, children partitioning parents,
// leaf sizes within τ, and exact leaf envelopes.
func checkTree(t *testing.T, tree *sketch.Tree, rows []schema.Row) {
	t.Helper()
	n := len(rows)
	for l, nodes := range tree.Levels {
		seen := map[int]bool{}
		for ni := range nodes {
			nd := &nodes[ni]
			if len(nd.Tuples) == 0 {
				t.Fatalf("level %d node %d empty", l, ni)
			}
			prev := -1
			for _, i := range nd.Tuples {
				if i <= prev {
					t.Fatalf("level %d node %d tuples not strictly ascending", l, ni)
				}
				prev = i
				if i < 0 || i >= n {
					t.Fatalf("level %d node %d tuple %d outside [0,%d)", l, ni, i, n)
				}
				if seen[i] {
					t.Fatalf("level %d covers tuple %d twice", l, i)
				}
				seen[i] = true
			}
		}
		if len(seen) != n {
			t.Fatalf("level %d covers %d of %d candidates", l, len(seen), n)
		}
	}
	for l := 0; l < tree.Depth-1; l++ {
		for ni := range tree.Levels[l] {
			covered := 0
			for _, ci := range tree.Levels[l][ni].Children {
				covered += len(tree.Levels[l+1][ci].Tuples)
			}
			if covered != len(tree.Levels[l][ni].Tuples) {
				t.Fatalf("level %d node %d: %d tuples vs %d under children",
					l, ni, len(tree.Levels[l][ni].Tuples), covered)
			}
		}
	}
	for li := range tree.Leaves() {
		leaf := &tree.Leaves()[li]
		if len(leaf.Tuples) > tree.Tau {
			t.Fatalf("leaf %d holds %d tuples, τ = %d", li, len(leaf.Tuples), tree.Tau)
		}
	}
}

func TestApplyDeltaInsertAndDelete(t *testing.T) {
	db, prep := deltaFixture(t, 600)
	opts := sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 1}
	base := sketch.BuildTree(prep.Instance, opts)

	// Mixed batch: delete a slice of candidates, insert gluten-free
	// rows (which enter the candidate set) and one gluten-full row
	// (which does not).
	if _, err := db.Exec("DELETE FROM recipes WHERE id >= 40 AND id < 55"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		stmt := fmt.Sprintf("INSERT INTO recipes VALUES (%d, 'new%d', 'fusion', 'dinner', 'free', %d, %d, 10, 50, 9.5, 4.5)",
			90000+i, i, 600+40*i, 20+i)
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec("INSERT INTO recipes VALUES (99999, 'full', 'fusion', 'dinner', 'full', 700, 30, 10, 50, 9.5, 4.5)"); err != nil {
		t.Fatal(err)
	}
	prep2, err := core.Prepare(db, mealQuery)
	if err != nil {
		t.Fatal(err)
	}
	remap := remapByID(prep.Instance.Rows, prep2.Instance.Rows)

	patched, ok := base.ApplyDelta(prep2.Instance.Rows, remap, opts)
	if !ok {
		t.Fatal("ApplyDelta rejected a small mixed batch")
	}
	if patched.Depth != base.Depth || patched.Tau != base.Tau {
		t.Fatalf("patched shape %d/%d, want %d/%d", patched.Depth, patched.Tau, base.Depth, base.Tau)
	}
	if !patched.Patched || base.Patched {
		t.Fatalf("provenance flags wrong: patched=%v base=%v", patched.Patched, base.Patched)
	}
	checkTree(t, patched, prep2.Instance.Rows)

	// The patched tree must answer the query like a rebuilt one.
	cache := sketch.NewCache(0)
	fp := sketch.Fingerprint(prep2.Instance.Rows)
	baseFP := sketch.Fingerprint(prep.Instance.Rows)
	warm := opts
	warm.Cache = cache
	// Seed the cache with the base tree under the base fingerprint,
	// then solve with lineage: the engine must patch, not rebuild.
	bres, err := sketch.Solve(prep.Instance, warm)
	if err != nil {
		t.Fatal(err)
	}
	if bres.TreePatched {
		t.Fatal("cold solve cannot patch")
	}
	warm.Fingerprint = &fp
	warm.Patch = &sketch.PatchSpec{BaseFingerprint: baseFP, Remap: remap}
	pres, err := sketch.Solve(prep2.Instance, warm)
	if err != nil {
		t.Fatal(err)
	}
	if !pres.TreePatched {
		t.Fatalf("solve did not patch the stale tree: %+v", pres.Notes)
	}
	if pres.DeltaApplied == 0 {
		t.Fatal("DeltaApplied not reported")
	}
	rres, err := sketch.Solve(prep2.Instance, opts) // rebuild from scratch
	if err != nil {
		t.Fatal(err)
	}
	if pres.Feasible != rres.Feasible {
		t.Fatalf("feasibility diverged: patched %v vs rebuilt %v", pres.Feasible, rres.Feasible)
	}
	if pres.Feasible {
		if ok, err := prep2.Instance.Validate(pres.Mult); err != nil || !ok {
			t.Fatalf("patched package invalid (ok=%v err=%v)", ok, err)
		}
	}
}

func TestApplyDeltaRoutesInsertsToLeaves(t *testing.T) {
	_, prep := deltaFixture(t, 400)
	opts := sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 3}
	base := sketch.BuildTree(prep.Instance, opts)
	nOld := len(prep.Instance.Rows)

	// Pure appends: clone the candidate rows and add copies of an
	// existing tuple — they must land in some leaf, splitting it if τ
	// overflows, with every other leaf untouched.
	rows := append([]schema.Row{}, prep.Instance.Rows...)
	for i := 0; i < 40; i++ {
		rows = append(rows, prep.Instance.Rows[i%7])
	}
	remap := make([]int, nOld)
	for i := range remap {
		remap[i] = i
	}
	patched, ok := base.ApplyDelta(rows, remap, opts)
	if !ok {
		t.Fatal("ApplyDelta rejected a pure append batch")
	}
	checkTree(t, patched, rows)
	if len(patched.Leaves()) < len(base.Leaves()) {
		t.Fatalf("leaf count shrank: %d -> %d", len(base.Leaves()), len(patched.Leaves()))
	}
	// The base tree must be untouched (it is shared in caches).
	checkTree(t, base, prep.Instance.Rows)
	total := 0
	for li := range base.Leaves() {
		total += len(base.Leaves()[li].Tuples)
	}
	if total != nOld {
		t.Fatalf("base tree mutated: covers %d of %d", total, nOld)
	}
}

func TestApplyDeltaRejectsOversizedDelta(t *testing.T) {
	_, prep := deltaFixture(t, 200)
	opts := sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 1}
	base := sketch.BuildTree(prep.Instance, opts)
	n := len(prep.Instance.Rows)
	// Delete half the candidates: far past DeltaMaxFrac.
	rows := prep.Instance.Rows[:n/2]
	remap := make([]int, n)
	for i := range remap {
		if i < n/2 {
			remap[i] = i
		} else {
			remap[i] = -1
		}
	}
	if _, ok := base.ApplyDelta(rows, remap, opts); ok {
		t.Fatal("ApplyDelta absorbed a 50% delta; it must rebuild")
	}
	// A caller can widen the budget explicitly.
	wide := opts
	wide.DeltaMaxFrac = 2
	patched, ok := base.ApplyDelta(rows, remap, wide)
	if !ok {
		t.Fatal("explicit DeltaMaxFrac budget ignored")
	}
	checkTree(t, patched, rows)
}

// TestPatchedProvenanceTriggersRebuildRetry pins the safety net across
// solves: a patched-born tree served from the CACHE (not patched in
// this call) that yields no feasible package must still trigger the
// rebuild-from-scratch retry — the Patched provenance flag travels
// with the tree. The fixture tree lies: its representatives promise a
// sum its real tuples cannot deliver, and it omits the only feasible
// pair, so the descent refines into an invalid package; only a rebuild
// finds {60, 40}.
func TestPatchedProvenanceTriggersRebuildRetry(t *testing.T) {
	db := minidb.New()
	for _, stmt := range []string{
		"CREATE TABLE t (a INT)",
		"INSERT INTO t VALUES (60), (40), (10), (11), (12), (13)",
	} {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	prep, err := core.Prepare(db, `
		SELECT PACKAGE(T) AS P FROM t T
		SUCH THAT COUNT(*) = 2 AND SUM(P.a) = 100`)
	if err != nil {
		t.Fatal(err)
	}
	opts := sketch.Options{MaxPartitionSize: 2, Seed: 1}
	lyingTree := func(patched bool) *sketch.Tree {
		rep := func(v float64) schema.Row { return schema.Row{value.Float(v)} }
		return &sketch.Tree{Attrs: []int{0}, Tau: 2, Depth: 1, Patched: patched,
			Levels: [][]sketch.Node{{
				{Tuples: []int{2, 3}, Rep: rep(50), Lo: []float64{10}, Hi: []float64{11}, NonNull: []int{2}},
				{Tuples: []int{4, 5}, Rep: rep(50), Lo: []float64{12}, Hi: []float64{13}, NonNull: []int{2}},
			}}}
	}

	// Patched provenance: the cache-served tree fails, the engine must
	// rebuild and find the package.
	cache := sketch.NewCache(0)
	cache.Put(sketch.KeyFor(prep.Instance, opts), lyingTree(true))
	withCache := opts
	withCache.Cache = cache
	res, err := sketch.Solve(prep.Instance, withCache)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("patched-born cached tree lost the only package; notes: %v", res.Notes)
	}
	if res.Mult[0] != 1 || res.Mult[1] != 1 {
		t.Fatalf("mult = %v, want the {60, 40} pair", res.Mult)
	}

	// Same lying tree without provenance: no retry, documenting that
	// the Patched flag is what arms the safety net.
	cache2 := sketch.NewCache(0)
	cache2.Put(sketch.KeyFor(prep.Instance, opts), lyingTree(false))
	withCache.Cache = cache2
	res2, err := sketch.Solve(prep.Instance, withCache)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Feasible {
		t.Fatal("unpatched lying tree unexpectedly recovered; the fixture no longer isolates the retry")
	}
}

func TestApplyDeltaEmptyingTreeRebuilds(t *testing.T) {
	_, prep := deltaFixture(t, 50)
	opts := sketch.Options{MaxPartitionSize: 8, Seed: 1, DeltaMaxFrac: 10}
	base := sketch.BuildTree(prep.Instance, opts)
	remap := make([]int, len(prep.Instance.Rows))
	for i := range remap {
		remap[i] = -1
	}
	if _, ok := base.ApplyDelta(nil, remap, opts); ok {
		t.Fatal("deleting every candidate must force a rebuild")
	}
}

package sketch

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"repro/internal/lifecycle"
	"repro/internal/schema"
)

// DefaultCacheCapacity bounds a Cache when the caller passes no
// capacity of their own.
const DefaultCacheCapacity = 32

// Key identifies one partition tree in the cache: the dataset
// fingerprint plus every knob that shapes the tree. Two evaluations
// share a tree only when they agree on all of them; a write to the
// backing rows changes the fingerprint, so stale trees are never
// served and age out of the LRU instead.
type Key struct {
	Fingerprint uint64 // Fingerprint of the candidate rows
	Attrs       string // partition attributes, comma-joined ordinals
	Tau         int    // leaf size bound
	Depth       int    // tree depth
	Seed        int64  // tie-break seed
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvMix(h, u uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h ^= (u >> s) & 0xff
		h *= fnvPrime64
	}
	return h
}

// RowHash hashes one candidate row (its width and every cell). The
// fingerprint memo in core caches one RowHash per candidate so
// incremental evaluations rehash only rows a write actually touched —
// CombineRowHashes folds the cached hashes back into a Fingerprint
// without ever re-reading a cell.
func RowHash(row schema.Row) uint64 {
	h := fnvMix(uint64(fnvOffset64), uint64(len(row)))
	for _, v := range row {
		h = fnvMix(h, v.Hash())
	}
	return h
}

// CombineRowHashes folds per-row hashes into the order-sensitive
// dataset fingerprint: Fingerprint(rows) ==
// CombineRowHashes(map(RowHash, rows)) by construction.
func CombineRowHashes(hs []uint64) uint64 {
	h := fnvMix(uint64(fnvOffset64), uint64(len(hs)))
	for _, rh := range hs {
		h = fnvMix(h, rh)
	}
	return h
}

// Fingerprint hashes the candidate rows (order-sensitive, every cell)
// into the cache key. It is linear in the data but orders of magnitude
// cheaper than partitioning, which is what a cache hit skips; callers
// on the warm path avoid even this by memoizing RowHash per row and
// recombining (see core's fingerprint memo).
func Fingerprint(rows []schema.Row) uint64 {
	fp, _ := fingerprintCtx(nil, rows)
	return fp
}

// fingerprintCtx is Fingerprint with a cooperative cancellation check
// every few thousand rows: without the memo this hash runs on every
// solve and is the longest uninterruptible stretch at 1M candidates
// (hundreds of milliseconds), so a canceled query must be able to bail
// out of it. A nil context never errors.
func fingerprintCtx(ctx context.Context, rows []schema.Row) (uint64, error) {
	hs := make([]uint64, len(rows))
	for i, row := range rows {
		if i&8191 == 0 && ctx != nil {
			if err := lifecycle.ContextErr(ctx); err != nil {
				return 0, err
			}
		}
		hs[i] = RowHash(row)
	}
	return CombineRowHashes(hs), nil
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Coalesced int64 // callers served by joining another caller's in-flight build
	Entries   int
}

// String renders the counters in the compact k=v form logs use.
func (s CacheStats) String() string {
	return fmt.Sprintf("hits=%d misses=%d evictions=%d coalesced=%d entries=%d",
		s.Hits, s.Misses, s.Evictions, s.Coalesced, s.Entries)
}

// Cache is an LRU of partition trees shared across queries (and, in
// pbserver, across requests): repeated workloads over unchanged data
// skip the offline partitioning step entirely. Trees are immutable, so
// a cached tree may be used by many evaluations concurrently. Safe for
// concurrent use.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List // front = most recently used; values are *cacheEntry
	entries   map[Key]*list.Element
	flights   map[Key]*flight // in-flight tree acquisitions, for coalescing
	hits      int64
	misses    int64
	evictions int64
	coalesced int64
}

// flight is one in-progress tree acquisition other callers can join.
type flight struct {
	done chan struct{} // closed once tree/err are set
	tree *Tree
	err  error
}

type cacheEntry struct {
	key  Key
	tree *Tree
}

// NewCache creates a cache bounded at capacity trees (<=0 uses
// DefaultCacheCapacity).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		entries:  map[Key]*list.Element{},
	}
}

// Get returns the cached tree for the key, marking it most recently
// used. Every lookup counts toward the hit/miss statistics.
func (c *Cache) Get(k Key) (*Tree, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).tree, true
}

// Peek reports whether a tree for the key is cached without touching
// the hit/miss counters or the LRU order. The planner uses it to cost
// warm-vs-cold alternatives — a probe must not masquerade as cache
// traffic or promote an entry nobody used.
func (c *Cache) Peek(k Key) (*Tree, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).tree, true
}

// Put stores a tree, evicting the least recently used entry beyond
// capacity.
func (c *Cache) Put(k Key, t *Tree) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).tree = t
		c.order.MoveToFront(el)
		return
	}
	c.entries[k] = c.order.PushFront(&cacheEntry{key: k, tree: t})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Len reports the number of cached trees.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats snapshots the hit/miss/eviction counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Coalesced: c.coalesced, Entries: c.order.Len()}
}

// do coalesces concurrent acquisitions of the same key onto one fn
// call: the first caller becomes the builder and runs fn; the rest
// park on the flight and share its tree. A joiner's context can cancel
// its wait without affecting the builder. When the builder fails (for
// example its own context was canceled), waiting joiners loop and the
// next one retries as the builder — one caller's cancellation never
// poisons another's query. Returns the tree, whether this caller
// joined someone else's flight, and the error.
func (c *Cache) do(ctx context.Context, k Key, fn func() (*Tree, error)) (*Tree, bool, error) {
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	for {
		c.mu.Lock()
		if c.flights == nil {
			c.flights = map[Key]*flight{}
		}
		if f, ok := c.flights[k]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
				if f.err == nil {
					c.mu.Lock()
					c.coalesced++
					c.mu.Unlock()
					return f.tree, true, nil
				}
				if ctx != nil && ctx.Err() != nil {
					return nil, false, ctx.Err()
				}
				continue // builder failed; retry, possibly as builder
			case <-ctxDone:
				return nil, false, ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		c.flights[k] = f
		c.mu.Unlock()
		f.tree, f.err = fn()
		c.mu.Lock()
		delete(c.flights, k)
		c.mu.Unlock()
		close(f.done)
		return f.tree, false, f.err
	}
}

// Clear drops every entry (counters are kept: they describe lifetime
// effectiveness, not contents).
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.entries = map[Key]*list.Element{}
}

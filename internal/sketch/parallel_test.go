package sketch_test

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/sketch"
)

// TestParallelForCoversEveryIndexOnce exercises the scheduling helper
// directly: every index must run exactly once at any worker count,
// including degenerate ones.
func TestParallelForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 3, 100} {
			counts := make([]int32, n)
			sketch.ParallelForTest(workers, n, func(i int) { counts[i]++ })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

// TestParallelBuildDeterministic builds the same partition tree serially
// and with many workers: the trees must be deeply equal — parallelism
// divides the work, never the outcome.
func TestParallelBuildDeterministic(t *testing.T) {
	prep := recipesPrep(t, 5000)
	serial := sketch.BuildTree(prep.Instance, sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 7, Parallelism: 1})
	parallel := sketch.BuildTree(prep.Instance, sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 7, Parallelism: 8})
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel tree build diverged from serial")
	}
}

// TestParallelSolveByteIdentical runs the full sketch pipeline serially
// and with many workers at depths 1 and 2: the packages must be
// byte-identical under the fixed seed (the acceptance bar for the
// parallel pipeline), along with the objective and the refine stats.
func TestParallelSolveByteIdentical(t *testing.T) {
	prep := recipesPrep(t, 5000)
	for _, depth := range []int{1, 2} {
		serial, err := sketch.Solve(prep.Instance, sketch.Options{MaxPartitionSize: 16, Depth: depth, Seed: 1, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := sketch.Solve(prep.Instance, sketch.Options{MaxPartitionSize: 16, Depth: depth, Seed: 1, Parallelism: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !serial.Feasible || !parallel.Feasible {
			t.Fatalf("depth %d: infeasible (serial %v, parallel %v)", depth, serial.Feasible, parallel.Feasible)
		}
		if !reflect.DeepEqual(serial.Mult, parallel.Mult) {
			t.Fatalf("depth %d: parallel package diverged from serial", depth)
		}
		if serial.Objective != parallel.Objective {
			t.Fatalf("depth %d: objective %v (serial) vs %v (parallel)", depth, serial.Objective, parallel.Objective)
		}
		if serial.Refined != parallel.Refined || serial.Repaired != parallel.Repaired {
			t.Fatalf("depth %d: refine stats diverged: serial %d/%d, parallel %d/%d",
				depth, serial.Refined, serial.Repaired, parallel.Refined, parallel.Repaired)
		}
		if parallel.Workers != 8 || serial.Workers != 1 {
			t.Fatalf("depth %d: workers stat = %d/%d, want 1/8", depth, serial.Workers, parallel.Workers)
		}
	}
}

// TestParallelSpeedup1M is the scale acceptance check for the parallel
// pipeline: building and refining at 1M rows with all cores must be at
// least 2x faster than fully serial, with byte-identical packages. It
// needs real cores, so single- and dual-core machines skip it (the CI
// full-test job runs on 4-core runners).
func TestParallelSpeedup1M(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 1M-tuple relation")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("needs >= 4 CPUs, have %d", runtime.GOMAXPROCS(0))
	}
	prep := recipesPrep(t, 1000000)
	run := func(par int) (*sketch.Result, time.Duration) {
		start := time.Now()
		res, err := sketch.Solve(prep.Instance, sketch.Options{MaxPartitionSize: 256, Depth: 2, Seed: 1, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		return res, time.Since(start)
	}
	// Warm once so allocator and page-cache effects do not pollute the
	// serial-vs-parallel comparison.
	run(0)
	serial, serialTime := run(1)
	parallel, parallelTime := run(0)
	if !serial.Feasible || !parallel.Feasible {
		t.Fatalf("infeasible at 1M (serial %v, parallel %v)", serial.Feasible, parallel.Feasible)
	}
	if !reflect.DeepEqual(serial.Mult, parallel.Mult) {
		t.Fatal("parallel package diverged from serial at 1M")
	}
	if speedup := float64(serialTime) / float64(parallelTime); speedup < 2 {
		t.Fatalf("parallel speedup %.2fx < 2x (serial %v, parallel %v on %d CPUs)",
			speedup, serialTime, parallelTime, runtime.GOMAXPROCS(0))
	}
}

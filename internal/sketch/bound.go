package sketch

import (
	"math"

	"repro/internal/bound"
	"repro/internal/lp"
	"repro/internal/search"
	"repro/internal/translate"
)

// rawBoundCap is the candidate count up to which the dual bound is
// computed over the raw candidates (the exact LP relaxation of the
// query's MILP — the tightest bound an LP can give). Above it the
// bound runs over the partition-tree leaves instead, one LP variable
// per leaf segment with coefficient-range relaxation, so the bound
// pass stays tiny at any scale. Matches the planner's SketchThreshold:
// below it the exact strategy would run anyway.
const rawBoundCap = 4096

// maxBoundVars caps the segmented tree relaxation: SplitGroups spends
// up to this many variables cutting each leaf into objective-sorted
// segments (piecewise-linear columns). Twice rawBoundCap so even τ=256
// leaves at 1M rows get ≥ 2 segments each.
const maxBoundVars = 2 * rawBoundCap

// boundDescendBudget is the extra singleton variables the adaptive
// one-level descent (bound.StageDescend) may spend re-bounding the
// worst-contributing leaves.
const boundDescendBudget = rawBoundCap

// branchBound computes the certified dual bound for one DNF branch via
// the staged tightening pipeline (internal/bound): the branch's exact
// tuple-level rows (plus any exclusion cuts) relaxed over singleton
// groups when the candidates are few, or — when they are many — over
// objective-sorted segments of the shared partition tree's leaves,
// tightened by Lagrangian rounds on the band rows and, adaptively, a
// one-level descent into the loosest leaves. The tree is the same one
// the descent uses (memoized by trees), so the bound adds no
// partitioning work.
//
// Exclusion cuts ride the same relaxation soundly: a cut is a valid
// linear row over the branch's feasible packages (REPEAT is rejected
// before any cut exists, so multiplicities are 0/1 and the §5 cut is
// exact), and relaxing any valid row to its per-group min coefficient
// only enlarges the feasible set — a relaxed cut can make the bound
// looser, never unsoundly tighter. Dropping elimination-inadmissible
// tuples from the segments is exact for the cut rows too: such tuples
// carry multiplicity 0 in every feasible package of the branch, so
// their −1 cut coefficients contribute nothing (see
// TestExclusionCutTreeBoundSound).
//
// incumbent, when hasIncumbent, is the best feasible objective found
// so far: the pipeline stops escalating stages once the gap against it
// is within opts.GapTolerance (or runs every allowed stage when the
// tolerance is 0).
func branchBound(inst *search.Instance, ba *branchAtoms, exAtoms []*translate.LinearAtom, pins map[int]bool, trees *treeSource, opts Options, incumbent float64, hasIncumbent bool) (bound.PipelineResult, error) {
	atoms := ba.tuple
	if len(exAtoms) > 0 {
		atoms = append(append([]*translate.LinearAtom{}, ba.tuple...), exAtoms...)
	}
	n := len(inst.Rows)
	sense := objSense(inst)
	if n <= rawBoundCap {
		groups := bound.Candidates(n, inst.MaxMult, pins)
		p, err := bound.Relax(atoms, inst.ObjW, sense, groups)
		if err != nil {
			return bound.PipelineResult{}, err
		}
		out := bound.Solve(opts.Ctx, p, inst.ObjK)
		return bound.PipelineResult{Outcome: out, Stage: bound.StageRawLP, Vars: n}, nil
	}
	tree, err := trees.get(effectiveTau(n, opts), opts.depth())
	if err != nil {
		return bound.PipelineResult{}, err
	}
	leaves := tree.Leaves()
	adm := ba.admissibleCounts(leaves)
	groups := make([]bound.Group, len(leaves))
	for g := range leaves {
		groups[g] = bound.Group{
			Tuples: leaves[g].Tuples,
			Lo:     float64(pinCount(leaves[g].Tuples, pins)),
			Hi:     nodeCap(inst, &leaves[g], adm, g),
		}
	}
	tupleLo := func(i int) float64 {
		if pins[i] {
			return 1
		}
		return 0
	}
	tupleHi := func(i int) float64 {
		if ba.admissible != nil && !ba.admissible[i] {
			return 0
		}
		if inst.MaxMult > 0 {
			return float64(inst.MaxMult)
		}
		return lp.Inf
	}
	stage, rounds, budget := boundStagePlan(opts)
	if stage != bound.StageTreeLP || opts.BoundMode == bound.StageTreeLP {
		// Segmented columns are stage-1 tightening: applied for every
		// tree-path mode except the legacy single-envelope comparison
		// baseline (BoundMode "envelope", used by benchmarks).
		groups = bound.SplitGroups(groups, inst.ObjW, sense, maxBoundVars, tupleLo, tupleHi)
	}
	return bound.RunPipeline(groups, bound.PipelineOptions{
		Ctx:           opts.Ctx,
		Atoms:         atoms,
		ObjW:          inst.ObjW,
		Konst:         inst.ObjK,
		Sense:         sense,
		MaxStage:      stage,
		TightenRounds: rounds,
		DescendBudget: budget,
		Incumbent:     incumbent,
		HasIncumbent:  hasIncumbent,
		GapTarget:     opts.GapTolerance,
		TupleLo:       tupleLo,
		TupleHi:       tupleHi,
	}), nil
}

// BoundModeEnvelope is the legacy pre-pipeline bound for comparison
// runs: one unsegmented coefficient-range envelope per leaf, no
// tightening. Benchmarks use it to measure what the pipeline buys.
const BoundModeEnvelope = "envelope"

// boundStagePlan maps Options.BoundMode (the planner's bound decision)
// onto the pipeline knobs: the deepest stage allowed, the Lagrangian
// round budget, and the descent variable budget.
func boundStagePlan(opts Options) (stage string, rounds, budget int) {
	switch opts.BoundMode {
	case BoundModeEnvelope, bound.StageTreeLP, bound.StageRawLP:
		return bound.StageTreeLP, 0, 0
	case bound.StageTightened:
		return bound.StageTightened, bound.DefaultTightenRounds, 0
	default: // bound.StageDescend or "" (auto): the full pipeline
		return bound.StageDescend, bound.DefaultTightenRounds, boundDescendBudget
	}
}

// boundStageRank orders stage names for aggregating the deepest stage
// across DNF branches into Result.BoundStage.
func boundStageRank(stage string) int {
	switch stage {
	case bound.StageRawLP:
		return 0
	case bound.StageTreeLP:
		return 1
	case bound.StageTightened:
		return 2
	case bound.StageDescend:
		return 3
	}
	return -1
}

// mergeBranchBounds folds per-branch pipeline results into the solve's
// bound stats: Best-merged outcome, deepest stage, summed rounds.
func mergeBranchBounds(sense lp.Sense, prs []bound.PipelineResult) (bound.Outcome, string, int) {
	outs := make([]bound.Outcome, len(prs))
	stage := ""
	rounds := 0
	for i, pr := range prs {
		outs[i] = pr.Outcome
		rounds += pr.Rounds
		if boundStageRank(pr.Stage) > boundStageRank(stage) {
			stage = pr.Stage
		}
	}
	return bound.Best(sense, outs), stage, rounds
}

// nanIncumbent is the "no incumbent yet" placeholder for branchBound
// callers.
var nanIncumbent = math.NaN()

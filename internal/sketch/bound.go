package sketch

import (
	"repro/internal/bound"
	"repro/internal/search"
	"repro/internal/translate"
)

// rawBoundCap is the candidate count up to which the dual bound is
// computed over the raw candidates (the exact LP relaxation of the
// query's MILP — the tightest bound an LP can give). Above it the
// bound runs over the partition-tree leaves instead, one LP variable
// per leaf with coefficient-range relaxation, so the bound pass stays
// tiny at any scale. Matches the planner's SketchThreshold: below it
// the exact strategy would run anyway.
const rawBoundCap = 4096

// branchBound computes the LP-relaxation dual bound for one DNF
// branch: the branch's exact tuple-level rows (plus any exclusion
// cuts) relaxed over singleton groups when the candidates are few, or
// over the shared partition tree's leaves — pinned counts as lower
// bounds, admissible supply as caps — when they are many. The tree is
// the same one the descent uses (memoized by trees), so the bound adds
// no partitioning work.
func branchBound(inst *search.Instance, ba *branchAtoms, exAtoms []*translate.LinearAtom, pins map[int]bool, trees *treeSource, opts Options) (bound.Outcome, error) {
	atoms := ba.tuple
	if len(exAtoms) > 0 {
		atoms = append(append([]*translate.LinearAtom{}, ba.tuple...), exAtoms...)
	}
	n := len(inst.Rows)
	var groups []bound.Group
	if n <= rawBoundCap {
		groups = bound.Candidates(n, inst.MaxMult, pins)
	} else {
		tree, err := trees.get(effectiveTau(n, opts), opts.depth())
		if err != nil {
			return bound.Outcome{}, err
		}
		leaves := tree.Leaves()
		adm := ba.admissibleCounts(leaves)
		groups = make([]bound.Group, len(leaves))
		for g := range leaves {
			groups[g] = bound.Group{
				Tuples: leaves[g].Tuples,
				Lo:     float64(pinCount(leaves[g].Tuples, pins)),
				Hi:     nodeCap(inst, &leaves[g], adm, g),
			}
		}
	}
	for _, g := range groups {
		if g.Lo > g.Hi {
			// A pinned tuple inside a fully-eliminated group: the branch
			// relaxation has no feasible point (same conclusion rootSolve
			// draws for the sketch itself).
			return bound.Outcome{Infeasible: true}, nil
		}
	}
	p, err := bound.Relax(atoms, inst.ObjW, objSense(inst), groups)
	if err != nil {
		return bound.Outcome{}, err
	}
	return bound.Solve(opts.Ctx, p, inst.ObjK), nil
}

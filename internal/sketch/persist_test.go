package sketch_test

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sketch"
)

// TestPersistRoundTrip saves a tree and loads it back byte-exact.
func TestPersistRoundTrip(t *testing.T) {
	prep := recipesPrep(t, 2000)
	opts := sketch.Options{MaxPartitionSize: 16, Depth: 3, Seed: 7}
	tree := sketch.BuildTree(prep.Instance, opts)
	key := sketch.Key{
		Fingerprint: sketch.Fingerprint(prep.Instance.Rows),
		Attrs:       "1,2", Tau: 16, Depth: 3, Seed: 7,
	}
	store := sketch.NewStore(t.TempDir())
	if err := store.Save(key, tree); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tree, loaded) {
		t.Fatal("loaded tree differs from saved tree")
	}
	// A key the store never saw is a clean miss, not an error.
	other := key
	other.Fingerprint++
	if tr, err := store.Load(other); tr != nil || err != nil {
		t.Fatalf("unknown key: got (%v, %v), want clean miss", tr, err)
	}
}

// TestPersistSaveOnBuildLoadOnMiss drives persistence through Solve:
// the first evaluation builds and writes the tree, a later evaluation
// with a cold in-memory cache loads it from disk instead of rebuilding,
// and a warm in-memory cache still wins over the disk tier.
func TestPersistSaveOnBuildLoadOnMiss(t *testing.T) {
	prep := recipesPrep(t, 2000)
	dir := t.TempDir()
	base := sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 1, PersistDir: dir}

	cold, err := sketch.Solve(prep.Instance, base)
	if err != nil {
		t.Fatal(err)
	}
	if cold.TreeLoaded || cold.CacheHit {
		t.Fatalf("first run must build: TreeLoaded=%v CacheHit=%v", cold.TreeLoaded, cold.CacheHit)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("save-on-build wrote %d files, want 1", len(files))
	}

	// "Restart": no in-memory state survives, only the directory.
	cache := sketch.NewCache(0)
	o := base
	o.Cache = cache
	warm, err := sketch.Solve(prep.Instance, o)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.TreeLoaded {
		t.Fatalf("disk-warm run must load the persisted tree: %v", warm.Notes)
	}
	if warm.CacheHit {
		t.Fatal("disk-warm run must not report an in-memory hit")
	}
	if !reflect.DeepEqual(cold.Mult, warm.Mult) {
		t.Fatal("disk-loaded tree produced a different package")
	}

	// The loaded tree was promoted into the memory tier: next time the
	// cache answers before the disk is touched.
	hot, err := sketch.Solve(prep.Instance, o)
	if err != nil {
		t.Fatal(err)
	}
	if !hot.CacheHit || hot.TreeLoaded {
		t.Fatalf("memory tier should win: CacheHit=%v TreeLoaded=%v", hot.CacheHit, hot.TreeLoaded)
	}
}

// corrupt rewrites a persisted tree file through fn, recomputing the
// trailing checksum so the corruption under test — not the checksum —
// is what the loader trips on.
func corrupt(t *testing.T, path string, fixCRC bool, fn func([]byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data = fn(data)
	if fixCRC && len(data) >= 4 {
		binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(data[:len(data)-4]))
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestPersistCorruptionFallsBackToRebuild damages the persisted file in
// every way the loader guards against — truncation, a foreign format
// version, a stale fingerprint — and checks each one falls back to a
// clean rebuild with the same package, never a panic or a wrong tree.
func TestPersistCorruptionFallsBackToRebuild(t *testing.T) {
	prep := recipesPrep(t, 1000)
	cases := []struct {
		name   string
		fixCRC bool
		fn     func([]byte) []byte
	}{
		{"truncated", false, func(b []byte) []byte { return b[:len(b)/2] }},
		{"empty", false, func(b []byte) []byte { return nil }},
		{"version-mismatch", true, func(b []byte) []byte {
			b[6] = 99 // the version uvarint follows the 6-byte magic
			return b
		}},
		{"fingerprint-mismatch", true, func(b []byte) []byte {
			b[7] ^= 0xff // first byte of the stored fingerprint
			return b
		}},
		{"bit-flip", false, func(b []byte) []byte {
			b[len(b)/2] ^= 0x40
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			opts := sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 1, PersistDir: dir}
			want, err := sketch.Solve(prep.Instance, opts)
			if err != nil {
				t.Fatal(err)
			}
			files, err := os.ReadDir(dir)
			if err != nil || len(files) != 1 {
				t.Fatalf("expected one persisted file, got %d (%v)", len(files), err)
			}
			path := dir + "/" + files[0].Name()
			corrupt(t, path, tc.fixCRC, tc.fn)
			got, err := sketch.Solve(prep.Instance, opts)
			if err != nil {
				t.Fatalf("corrupted store must rebuild, not fail: %v", err)
			}
			if got.TreeLoaded {
				t.Fatal("corrupted tree must not be loaded")
			}
			if !reflect.DeepEqual(want.Mult, got.Mult) {
				t.Fatal("rebuild after corruption produced a different package")
			}
			// The rebuild overwrote the damaged file: the next run loads
			// cleanly again.
			again, err := sketch.Solve(prep.Instance, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !again.TreeLoaded {
				t.Fatalf("store not repaired after rebuild: %v", again.Notes)
			}
		})
	}
}

// TestPersistForeignTreeRejected simulates a fingerprint collision: a
// structurally valid tree built for a bigger relation lands under a
// smaller instance's key. The solver must reject it against the
// instance (out-of-range tuple indexes would panic a sub-MILP) and
// rebuild, not load it.
func TestPersistForeignTreeRejected(t *testing.T) {
	big := recipesPrep(t, 1000)
	small := recipesPrep(t, 300)
	dir := t.TempDir()
	opts := sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 1, PersistDir: dir}
	foreign := sketch.BuildTree(big.Instance, opts)
	smallKey := sketch.Key{
		Fingerprint: sketch.Fingerprint(small.Instance.Rows),
		Attrs:       "5,6", // the meal query's calories/protein ordinals
		Tau:         16, Depth: 2, Seed: 1,
	}
	if err := sketch.NewStore(dir).Save(smallKey, foreign); err != nil {
		t.Fatal(err)
	}
	res, err := sketch.Solve(small.Instance, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TreeLoaded {
		t.Fatal("foreign tree must be rejected, not loaded")
	}
	if !res.Feasible {
		t.Fatalf("rebuild after rejecting a foreign tree failed: %v", res.Notes)
	}
	// The rejection must actually have happened — if the hand-built key
	// no longer matches acquireTree's, this test would pass vacuously.
	rejected := false
	for _, n := range res.Notes {
		if strings.Contains(n, "persisted partition tree unusable") {
			rejected = true
		}
	}
	if !rejected {
		t.Fatalf("expected a rejection note (did the store key drift?): %v", res.Notes)
	}
}

// TestCorePersistTreeLoadedStat drives persistence through the engine:
// a cold start (fresh Prepared, no in-memory cache, same persist
// directory) must load the tree from disk instead of rebuilding,
// surfaced via the SketchTreeLoaded stat, with an identical package.
func TestCorePersistTreeLoadedStat(t *testing.T) {
	dir := t.TempDir()
	opts := core.Options{Strategy: core.SketchRefineStrategy, Seed: 1,
		SketchPartitionSize: 16, SketchDepth: 2, SketchPersistDir: dir}

	first := recipesPrep(t, 1500)
	cold, err := first.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.SketchTreeLoaded {
		t.Fatal("cold start must build, not load")
	}
	if len(cold.Packages) == 0 {
		t.Fatalf("no package: %v", cold.Stats.Notes)
	}

	// A fresh preparation simulates a new process: no cache, only disk.
	second := recipesPrep(t, 1500)
	warm, err := second.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.SketchTreeLoaded {
		t.Fatalf("disk-warm cold start must load the tree: %v", warm.Stats.Notes)
	}
	if warm.Stats.SketchCacheHit {
		t.Fatal("no in-memory cache was configured")
	}
	if !reflect.DeepEqual(cold.Packages[0].Mult, warm.Packages[0].Mult) {
		t.Fatal("disk-loaded tree produced a different package")
	}
}

// TestPersistConcurrentBuildLoad hammers one store key from many
// goroutines with no in-memory cache: every evaluation either builds or
// loads the same deterministic tree, so all packages agree and the file
// stays readable throughout. Run under -race in CI.
func TestPersistConcurrentBuildLoad(t *testing.T) {
	prep := recipesPrep(t, 1000)
	dir := t.TempDir()
	opts := sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 1, PersistDir: dir}
	want, err := sketch.Solve(prep.Instance, opts)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	mults := make([][]int, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := sketch.Solve(prep.Instance, opts)
			if err != nil {
				errs <- err
				return
			}
			mults[i] = res.Mult
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, m := range mults {
		if !reflect.DeepEqual(want.Mult, m) {
			t.Fatalf("goroutine %d diverged", i)
		}
	}
}

package sketch_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/minidb"
	"repro/internal/sketch"
)

// TestPatchedTreeResaveCrashSafety is the fault-injection companion to
// the bit-flip tests: re-saving a patched tree must be atomic, so a
// crash between writing the temp file and publishing it (the rename)
// leaves either the old valid file or the new valid file — never a
// torn one — and the orphaned temp must not confuse later loads.
func TestPatchedTreeResaveCrashSafety(t *testing.T) {
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 400, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	prep, err := core.Prepare(db, mealQuery)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store := sketch.NewStore(dir)
	opts := sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 1}
	base := sketch.BuildTree(prep.Instance, opts)
	key := sketch.Key{
		Fingerprint: sketch.Fingerprint(prep.Instance.Rows),
		Attrs:       "5,6", Tau: 16, Depth: 2, Seed: 1,
	}
	if err := store.Save(key, base); err != nil {
		t.Fatal(err)
	}

	// Patch the tree (an insert batch) and crash the re-save at the
	// rename: the write completed, the publish did not.
	for i := 0; i < 4; i++ {
		stmt := fmt.Sprintf("INSERT INTO recipes VALUES (%d, 'f%d', 'fusion', 'dinner', 'free', %d, %d, 10, 50, 9.5, 4.5)",
			70000+i, i, 640+i*25, 25+i)
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	prep2, err := core.Prepare(db, mealQuery)
	if err != nil {
		t.Fatal(err)
	}
	remap := remapByID(prep.Instance.Rows, prep2.Instance.Rows)
	patched, ok := base.ApplyDelta(prep2.Instance.Rows, remap, opts)
	if !ok {
		t.Fatal("patch rejected")
	}
	newKey := key
	newKey.Fingerprint = sketch.Fingerprint(prep2.Instance.Rows)

	var orphan string
	restore := sketch.SetRenameHook(func(tmp, dst string) error {
		orphan = tmp
		return fmt.Errorf("injected crash before rename")
	})
	if err := store.Save(newKey, patched); err == nil {
		t.Fatal("crashed save must report the failure")
	}
	restore()

	// Old file: still present, still valid, still loads the base tree.
	got, err := store.Load(key)
	if err != nil || got == nil {
		t.Fatalf("old file unusable after crashed resave: (%v, %v)", got, err)
	}
	if !reflect.DeepEqual(got, base) {
		t.Fatal("old file content changed across the crash")
	}
	// New key: a clean miss (the caller rebuilds/patches again), not a
	// torn read.
	if tr, err := store.Load(newKey); tr != nil || err != nil {
		t.Fatalf("new key after crash: got (%v, %v), want clean miss", tr, err)
	}
	// Simulate the truly-orphaned temp a hard crash would leave (the
	// error path above removed its own), and verify it is inert.
	stray := filepath.Join(dir, ".pbtree-stray")
	if err := os.WriteFile(stray, []byte("partial payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	if orphan != "" && !strings.HasPrefix(filepath.Base(orphan), ".pbtree-") {
		t.Fatalf("temp file %q not namespaced away from tree files", orphan)
	}
	if got, err := store.Load(key); err != nil || got == nil {
		t.Fatalf("stray temp broke loading: (%v, %v)", got, err)
	}

	// The second half of the guarantee: a crash-free re-save publishes
	// the new file atomically and both generations stay readable.
	if err := store.Save(newKey, patched); err != nil {
		t.Fatal(err)
	}
	reloaded, err := store.Load(newKey)
	if err != nil || reloaded == nil {
		t.Fatalf("resave after crash recovery failed: (%v, %v)", reloaded, err)
	}
	if !reflect.DeepEqual(reloaded, patched) {
		t.Fatal("reloaded patched tree differs")
	}
	if got, err := store.Load(key); err != nil || got == nil {
		t.Fatalf("old generation vanished: (%v, %v)", got, err)
	}
}

// TestSolvePersistsPatchedTree checks the full engine path: a solve
// that patches a stale tree re-persists it, so a cold process sees the
// patched generation on disk.
func TestSolvePersistsPatchedTree(t *testing.T) {
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 400, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	prep, err := core.Prepare(db, mealQuery)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 1, PersistDir: dir}
	if _, err := sketch.Solve(prep.Instance, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO recipes VALUES (70010, 'p', 'fusion', 'dinner', 'free', 700, 33, 10, 50, 9.5, 4.5)"); err != nil {
		t.Fatal(err)
	}
	prep2, err := core.Prepare(db, mealQuery)
	if err != nil {
		t.Fatal(err)
	}
	fp := sketch.Fingerprint(prep2.Instance.Rows)
	popts := opts
	popts.Fingerprint = &fp
	popts.Patch = &sketch.PatchSpec{
		BaseFingerprint: sketch.Fingerprint(prep.Instance.Rows),
		Remap:           remapByID(prep.Instance.Rows, prep2.Instance.Rows),
	}
	res, err := sketch.Solve(prep2.Instance, popts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TreePatched {
		t.Fatalf("disk-tier lineage did not patch: %v", res.Notes)
	}
	// A brand-new evaluation (no cache, no lineage) over the new data
	// must load the re-persisted patched tree instead of rebuilding.
	cold, err := sketch.Solve(prep2.Instance, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.TreeLoaded {
		t.Fatalf("patched tree not re-persisted: %v", cold.Notes)
	}
}

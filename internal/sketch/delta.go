package sketch

import (
	"math"
	"sort"

	"repro/internal/schema"
	"repro/internal/value"
)

// Incremental partition-tree maintenance: instead of discarding a tree
// whenever the backing rows change, ApplyDelta patches it — deleted
// tuples are tombstoned out of their leaves, inserted tuples are routed
// down the existing structure to the nearest leaf, and representatives,
// counts, and min/max envelopes are recomputed bottom-up along the
// touched paths only. Leaves that outgrow τ are split locally; a parent
// whose fanout degrades past its build-time shape gets its leaf group
// rebuilt in place (a scoped subtree rebuild); anything the local rules
// cannot absorb — a too-large delta, a degraded upper level, a broken
// invariant — falls back to a full rebuild, which is always correct.
//
// Patched trees are approximations of a from-scratch rebuild: leaf
// membership may differ (inserted tuples go to the nearest existing
// leaf rather than re-running the global median splits) and internal
// representatives are child-weighted merges rather than exact scans.
// Both only steer the sketch; leaf representatives and envelopes are
// recomputed exactly, so envelope pruning stays sound and the refine
// step keeps its guarantees. The differential fuzz harness
// (TestIncrementalVsRebuild*) holds patched trees to the same
// feasibility and gap standards as rebuilt ones.

// DefaultDeltaMaxFrac is the largest delta (inserts + deletes, as a
// fraction of the current candidate count) ApplyDelta absorbs when
// Options.DeltaMaxFrac is unset; beyond it patching would touch most
// of the tree anyway and a rebuild is both faster and higher-fidelity.
const DefaultDeltaMaxFrac = 0.25

// PatchSpec relates the current candidate set to the one a cached
// partition tree was built over, enabling in-place tree patching after
// writes. Remap maps every base candidate index to its current index,
// or -1 for deleted tuples; surviving candidates keep their relative
// order and precede every inserted one, so current indexes at or above
// the survivor count are inserts. core's fingerprint memo derives it
// from minidb's per-table delta log.
type PatchSpec struct {
	BaseFingerprint uint64 // fingerprint of the base candidate rows
	Remap           []int  // base index -> current index, -1 = deleted
}

// DeltaSize reports the number of changed tuples (inserts + deletes)
// the spec describes for a current candidate count of n.
func (ps *PatchSpec) DeltaSize(n int) int {
	surv := 0
	for _, v := range ps.Remap {
		if v >= 0 {
			surv++
		}
	}
	return (len(ps.Remap) - surv) + (n - surv)
}

func (o Options) deltaMaxFrac() float64 {
	if o.DeltaMaxFrac > 0 {
		return o.DeltaMaxFrac
	}
	return DefaultDeltaMaxFrac
}

// ApplyDelta returns a copy of the tree patched to cover rows, the
// current candidate set, given remap (see PatchSpec.Remap). The
// original tree is never mutated — cached trees are shared across
// concurrent evaluations. ok is false when the delta is too large
// (Options.DeltaMaxFrac), when local repair would break a structural
// invariant above the leaf-parent level, or when patching empties the
// tree; the caller must then rebuild from scratch.
func (t *Tree) ApplyDelta(rows []schema.Row, remap []int, opts Options) (*Tree, bool) {
	n := len(rows)
	if n == 0 || t.Depth < 1 {
		return nil, false
	}
	surv := 0
	for _, v := range remap {
		if v >= 0 {
			surv++
		}
	}
	deletes := len(remap) - surv
	inserts := n - surv
	if inserts < 0 || float64(inserts+deletes) > t.deltaBudget(n, opts) {
		return nil, false
	}

	p := &patcher{
		tree:   t,
		rows:   rows,
		remap:  remap,
		opts:   opts,
		levels: make([][]Node, t.Depth),
		dead:   make([][]bool, t.Depth),
		dirty:  make([][]bool, t.Depth),
	}
	for l := range t.Levels {
		p.levels[l] = append([]Node(nil), t.Levels[l]...)
		p.dead[l] = make([]bool, len(t.Levels[l]))
		p.dirty[l] = make([]bool, len(t.Levels[l]))
	}
	p.fanLimits()

	p.firstNew = len(rows) // no inserts unless routeInserts lowers it
	if deletes > 0 {
		p.remapLeaves()
	}
	if inserts > 0 {
		p.routeInserts(surv)
	}
	p.repairLeaves()
	if !p.patchParents(deletes > 0) {
		return nil, false
	}
	out, ok := p.compact()
	if !ok {
		return nil, false
	}
	width := 0
	if len(rows) > 0 {
		width = len(rows[0])
	}
	// The structural backstop: a patch that silently broke coverage or
	// an envelope must surface as a rebuild, never as a corrupt tree.
	if err := out.validateStructure(); err != nil {
		return nil, false
	}
	if err := out.validateAgainst(n, width); err != nil {
		return nil, false
	}
	return out, true
}

// deltaBudget resolves the largest absorbable delta in tuples.
func (t *Tree) deltaBudget(n int, opts Options) float64 {
	return opts.deltaMaxFrac() * float64(n)
}

// patcher carries ApplyDelta's working state: copied levels plus
// per-node dead/dirty marks. Nodes are patched copy-on-write — any
// modified slice is freshly allocated, never shared with the source
// tree.
type patcher struct {
	tree   *Tree
	rows   []schema.Row
	remap  []int
	opts   Options
	levels [][]Node
	dead   [][]bool
	dirty  [][]bool
	// limit[l] bounds an internal node's fanout at level l before its
	// subtree is considered degraded (twice the build-time maximum).
	limit []int
	// newByParent collects leaves created by splits, keyed by their
	// parent's index at level Depth-2 (unused for flat trees).
	newByParent map[int][]int
	parentOf    []int // leaf index -> parent index at Depth-2 (nil when flat)
	scales      []float64
	// firstNew is the first inserted candidate index (== the survivor
	// count): leaf tuple suffixes at or above it are this patch's
	// inserts.
	firstNew int
	// delDirty marks leaves whose membership shrank via deletions —
	// those need exact representative/envelope rescans, while
	// insert-only leaves update incrementally.
	delDirty []bool
	// pend[l][node] lists inserted tuple indexes routed through an
	// internal node at level l, in ascending order; parent tuple lists
	// are rebuilt as remap(old)+pend without any sorting.
	pend []map[int][]int
}

func (p *patcher) fanLimits() {
	t := p.tree
	p.limit = make([]int, t.Depth)
	for l := 0; l < t.Depth-1; l++ {
		m := 0
		for i := range t.Levels[l] {
			if c := len(t.Levels[l][i].Children); c > m {
				m = c
			}
		}
		p.limit[l] = 2*m + 2
	}
	if t.Depth >= 2 {
		p.parentOf = make([]int, len(t.Levels[t.Depth-1]))
		for pi := range t.Levels[t.Depth-2] {
			for _, ci := range t.Levels[t.Depth-2][pi].Children {
				p.parentOf[ci] = pi
			}
		}
	}
	p.newByParent = map[int][]int{}
	p.delDirty = make([]bool, len(t.Levels[t.Depth-1]))
	p.pend = make([]map[int][]int, t.Depth-1)
	for l := range p.pend {
		p.pend[l] = map[int][]int{}
	}
}

// remapLeaves renumbers every leaf's tuple list under the remap,
// dropping deleted tuples. Remap is monotone over survivors, so the
// rewritten lists stay sorted.
func (p *patcher) remapLeaves() {
	leaves := p.levels[p.tree.Depth-1]
	for i := range leaves {
		old := leaves[i].Tuples
		nt := make([]int, 0, len(old))
		for _, x := range old {
			if x < len(p.remap) && p.remap[x] >= 0 {
				nt = append(nt, p.remap[x])
			}
		}
		if len(nt) != len(old) {
			p.dirty[p.tree.Depth-1][i] = true
			p.delDirty[i] = true
		}
		leaves[i].Tuples = nt
	}
}

// routeInserts walks each inserted tuple down the tree — nearest
// representative in normalized attribute space at every level, the
// same metric greedy repair uses — and appends it to the chosen leaf.
// Inserted indexes exceed every survivor index, so appends keep the
// tuple lists sorted.
func (p *patcher) routeInserts(firstNew int) {
	t := p.tree
	p.firstNew = firstNew
	if p.scales == nil {
		p.scales = rowScales(p.rows, t.Attrs)
	}
	leafLevel := t.Depth - 1
	// Fresh tuple slices for leaves that receive inserts: the copied
	// node still shares its backing array with the source tree.
	touched := map[int]bool{}
	for j := firstNew; j < len(p.rows); j++ {
		cur := p.nearest(p.levels[0], nil, j)
		for l := 0; l < leafLevel; l++ {
			p.pend[l][cur] = append(p.pend[l][cur], j)
			cur = p.nearest(p.levels[l+1], p.levels[l][cur].Children, j)
		}
		leaf := &p.levels[leafLevel][cur]
		if !touched[cur] {
			touched[cur] = true
			leaf.Tuples = append([]int(nil), leaf.Tuples...)
		}
		leaf.Tuples = append(leaf.Tuples, j)
		p.dirty[leafLevel][cur] = true
	}
}

// nearest picks the candidate node (all of nodes, or the subset named
// by idxs) whose representative is closest to row j; ties break on the
// smallest index, keeping routing deterministic.
func (p *patcher) nearest(nodes []Node, idxs []int, j int) int {
	best, bestD := -1, math.Inf(1)
	consider := func(ci int) {
		d := 0.0
		for ai, a := range p.tree.Attrs {
			diff := (numAt(nodes[ci].Rep, a) - numAt(p.rows[j], a)) / p.scales[ai]
			d += diff * diff
		}
		if d < bestD {
			best, bestD = ci, d
		}
	}
	if idxs == nil {
		for ci := range nodes {
			consider(ci)
		}
	} else {
		for _, ci := range idxs {
			consider(ci)
		}
	}
	return best
}

// repairLeaves finishes the leaf level: empty leaves are tombstoned,
// overgrown leaves are re-split locally (the new leaves join the same
// parent), and every touched leaf gets its representative and envelope
// refreshed — exactly rescanned where deletions changed membership or
// a split regrouped it, incrementally extended where the only change
// was appended inserts (the common case, and exact for envelopes).
func (p *patcher) repairLeaves() {
	t := p.tree
	ll := t.Depth - 1
	attrs := shuffledAttrs(t.Attrs, p.opts.Seed)
	n0 := len(p.levels[ll]) // split-born leaves are refreshed at creation
	for i := 0; i < n0; i++ {
		if !p.dirty[ll][i] || p.dead[ll][i] {
			continue
		}
		if len(p.levels[ll][i].Tuples) == 0 {
			p.dead[ll][i] = true
			continue
		}
		if len(p.levels[ll][i].Tuples) > t.Tau {
			groups := medianSplit(p.rows, append([]int(nil), p.levels[ll][i].Tuples...), attrs, t.Tau, 1, nil)
			p.levels[ll][i].Tuples = groups[0]
			for _, g := range groups[1:] {
				p.addLeaf(g, i)
			}
			p.refreshLeaf(i)
			continue
		}
		if p.delDirty[i] {
			p.refreshLeaf(i)
		} else {
			p.refreshLeafIncremental(i)
		}
	}
}

// addLeaf appends a fully-formed new leaf covering g, attached to the
// same parent as sibling (when the tree is hierarchical).
func (p *patcher) addLeaf(g []int, sibling int) int {
	t := p.tree
	ll := t.Depth - 1
	idx := len(p.levels[ll])
	p.levels[ll] = append(p.levels[ll], Node{Tuples: g})
	p.dead[ll] = append(p.dead[ll], false)
	p.dirty[ll] = append(p.dirty[ll], true)
	p.delDirty = append(p.delDirty, true) // mixed regrouping: exact refresh only
	p.refreshLeaf(idx)
	if t.Depth >= 2 {
		parent := p.parentOf[sibling]
		p.parentOf = append(p.parentOf, parent)
		p.newByParent[parent] = append(p.newByParent[parent], idx)
	}
	return idx
}

// refreshLeaf recomputes a leaf's representative and envelope exactly.
func (p *patcher) refreshLeaf(i int) {
	ll := p.tree.Depth - 1
	leaf := &p.levels[ll][i]
	leaf.Rep = representative(p.rows, leaf.Tuples)
	leaf.Lo, leaf.Hi, leaf.NonNull = envelope(p.rows, leaf.Tuples, p.tree.Attrs)
}

// refreshLeafIncremental extends an insert-only leaf without rescanning
// it: the envelope grows by exactly the inserted values (no deletions
// means no shrink — the result is identical to a full rescan) and the
// representative's numeric means fold the inserts in, weighted by the
// prior tuple count. Mode (categorical) columns keep their prior value;
// like the merged internal representatives, that is a steering
// approximation the fuzz harness holds to rebuilt-tree standards.
func (p *patcher) refreshLeafIncremental(i int) {
	ll := p.tree.Depth - 1
	leaf := &p.levels[ll][i]
	split := sort.SearchInts(leaf.Tuples, p.firstNew)
	ins := leaf.Tuples[split:]
	if split == 0 || len(ins) == 0 {
		p.refreshLeaf(i)
		return
	}
	leaf.Rep = insertedRepresentative(p.rows, leaf.Rep, split, ins)
	lo := append([]float64(nil), leaf.Lo...)
	hi := append([]float64(nil), leaf.Hi...)
	nn := append([]int(nil), leaf.NonNull...)
	for ai, a := range p.tree.Attrs {
		for _, j := range ins {
			if a >= len(p.rows[j]) || p.rows[j][a].IsNull() {
				continue
			}
			v, _ := p.rows[j][a].AsFloat()
			if nn[ai] == 0 || v < lo[ai] {
				lo[ai] = v
			}
			if nn[ai] == 0 || v > hi[ai] {
				hi[ai] = v
			}
			nn[ai]++
		}
	}
	leaf.Lo, leaf.Hi, leaf.NonNull = lo, hi, nn
}

// insertedRepresentative folds inserted tuples into an existing
// representative: numeric columns take the count-weighted mean of the
// old mean and the inserted values; other columns keep the old value.
// The old mean is weighted by the survivor count, not the (unstored)
// non-NULL count, so columns with NULLs drift from an exact rescan —
// a steering-only bias, bounded by the fuzz harness's gap gates and
// erased whenever a deletion or split forces the exact refresh.
func insertedRepresentative(rows []schema.Row, oldRep schema.Row, oldCount int, ins []int) schema.Row {
	rep := make(schema.Row, len(oldRep))
	for c := range oldRep {
		ov := oldRep[c]
		if f, ok := ov.AsFloat(); ok && !ov.IsNull() {
			sum, cnt := f*float64(oldCount), oldCount
			numeric := true
			for _, j := range ins {
				v := rows[j][c]
				if v.IsNull() {
					continue
				}
				g, ok := v.AsFloat()
				if !ok {
					numeric = false
					break
				}
				sum += g
				cnt++
			}
			if numeric && cnt > 0 {
				rep[c] = value.Float(sum / float64(cnt))
				continue
			}
		}
		rep[c] = ov
	}
	return rep
}

// patchParents walks the internal levels bottom-up: dead children are
// dropped, split-born leaves adopted, tuple lists renumbered, and
// dirty nodes get merged representatives and envelopes. A leaf-parent
// whose fanout degrades past the build-time shape has its leaf group
// rebuilt in place; degradation higher up aborts the patch.
func (p *patcher) patchParents(renumber bool) bool {
	t := p.tree
	for l := t.Depth - 2; l >= 0; l-- {
		for pi := range p.levels[l] {
			node := &p.levels[l][pi]
			changed := false
			keep := make([]int, 0, len(node.Children))
			for _, ci := range node.Children {
				if p.dead[l+1][ci] {
					changed = true
					continue
				}
				if p.dirty[l+1][ci] {
					changed = true
				}
				keep = append(keep, ci)
			}
			if l == t.Depth-2 {
				if add := p.newByParent[pi]; len(add) > 0 {
					keep = append(keep, add...)
					changed = true
				}
			}
			if len(keep) == 0 {
				p.dead[l][pi] = true
				continue
			}
			if changed && len(keep) > p.limit[l] {
				if l != t.Depth-2 {
					return false // upper-level degradation: full rebuild
				}
				keep = p.rebuildLeafGroup(keep)
			}
			if changed || renumber {
				// The node's tuple set after the patch is exactly its old
				// set remapped (deletions drop out) plus the inserts routed
				// through it — both ascending, inserts strictly above every
				// survivor, so concatenation stays sorted with no merge.
				node.Tuples = p.remapWithInserts(node.Tuples, p.pend[l][pi], renumber)
			}
			if changed {
				p.dirty[l][pi] = true
				node.Rep = mergedRepresentative(p.levels[l+1], keep)
				node.Lo, node.Hi, node.NonNull = mergeEnvelopes(p.levels[l+1], keep, len(t.Attrs))
			}
			node.Children = keep
		}
	}
	return true
}

// remapWithInserts rewrites an internal node's tuple list: survivors
// renumbered in order (when deletions occurred), then the pending
// inserts appended. Both parts are ascending and disjoint by
// construction, so the result is sorted without a merge.
func (p *patcher) remapWithInserts(old, ins []int, renumber bool) []int {
	out := make([]int, 0, len(old)+len(ins))
	if renumber {
		for _, x := range old {
			if x < len(p.remap) && p.remap[x] >= 0 {
				out = append(out, p.remap[x])
			}
		}
	} else {
		out = append(out, old...)
	}
	return append(out, ins...)
}

// rebuildLeafGroup is the scoped subtree rebuild: the parent's leaves
// are merged and re-split from scratch — local median splits over just
// this subtree's tuples — restoring the build-time shape without
// touching the rest of the tree. Returns the new child indexes.
func (p *patcher) rebuildLeafGroup(children []int) []int {
	t := p.tree
	ll := t.Depth - 1
	tuples := mergeChildTuples(p.levels[ll], children)
	for _, ci := range children {
		p.dead[ll][ci] = true
	}
	groups := medianSplit(p.rows, tuples, shuffledAttrs(t.Attrs, p.opts.Seed), t.Tau, 1, nil)
	out := make([]int, 0, len(groups))
	for _, g := range groups {
		idx := len(p.levels[ll])
		p.levels[ll] = append(p.levels[ll], Node{Tuples: g})
		p.dead[ll] = append(p.dead[ll], false)
		p.dirty[ll] = append(p.dirty[ll], true)
		p.delDirty = append(p.delDirty, true)
		p.refreshLeaf(idx)
		out = append(out, idx)
	}
	return out
}

// compact drops tombstoned nodes, renumbers child references, and
// assembles the patched tree. ok is false when a whole level died.
func (p *patcher) compact() (*Tree, bool) {
	t := p.tree
	out := &Tree{Attrs: t.Attrs, Tau: t.Tau, Depth: t.Depth, Patched: true}
	out.Levels = make([][]Node, t.Depth)
	for l := t.Depth - 1; l >= 0; l-- {
		idxMap := make([]int, len(p.levels[l]))
		var nodes []Node
		for i := range p.levels[l] {
			if p.dead[l][i] {
				idxMap[i] = -1
				continue
			}
			idxMap[i] = len(nodes)
			nodes = append(nodes, p.levels[l][i])
		}
		if len(nodes) == 0 {
			return nil, false
		}
		out.Levels[l] = nodes
		if l > 0 {
			for pi := range p.levels[l-1] {
				kids := p.levels[l-1][pi].Children
				nk := make([]int, 0, len(kids))
				for _, ci := range kids {
					if idxMap[ci] >= 0 {
						nk = append(nk, idxMap[ci])
					}
				}
				p.levels[l-1][pi].Children = nk
			}
		}
	}
	return out, true
}

// mergeChildTuples unions the (sorted, disjoint) tuple lists of the
// given children into one sorted list.
func mergeChildTuples(children []Node, group []int) []int {
	total := 0
	for _, ci := range group {
		total += len(children[ci].Tuples)
	}
	out := make([]int, 0, total)
	for _, ci := range group {
		out = append(out, children[ci].Tuples...)
	}
	sort.Ints(out)
	return out
}

// mergedRepresentative folds child representatives into a parent's:
// numeric columns take the subtree-size-weighted mean, others the
// subtree-size-weighted mode over child representatives. A cheaper
// stand-in for the exact union scan the offline build performs — the
// representative only steers the sketch, and the fuzz harness holds
// patched trees to the same gap standards as rebuilt ones.
func mergedRepresentative(children []Node, group []int) schema.Row {
	width := len(children[group[0]].Rep)
	rep := make(schema.Row, width)
	for c := 0; c < width; c++ {
		sum, cnt := 0.0, 0
		numeric := true
		for _, ci := range group {
			v := children[ci].Rep[c]
			if v.IsNull() {
				continue
			}
			f, ok := v.AsFloat()
			if !ok {
				numeric = false
				break
			}
			w := len(children[ci].Tuples)
			sum += f * float64(w)
			cnt += w
		}
		if numeric && cnt > 0 {
			rep[c] = value.Float(sum / float64(cnt))
			continue
		}
		rep[c] = childModeValue(children, group, c)
	}
	return rep
}

// childModeValue picks the subtree-size-weighted most frequent child
// representative value, ties toward the SortLess-smallest.
func childModeValue(children []Node, group []int, c int) value.V {
	counts := map[string]int{}
	byKey := map[string]value.V{}
	for _, ci := range group {
		v := children[ci].Rep[c]
		k := v.String()
		counts[k] += len(children[ci].Tuples)
		byKey[k] = v
	}
	var best value.V
	bestN := -1
	for k, n := range counts {
		v := byKey[k]
		if n > bestN || (n == bestN && v.SortLess(best)) {
			best, bestN = v, n
		}
	}
	return best
}

// rowScales is attrScales over a bare row slice: each attribute's
// spread across all rows (1 for constant columns), normalizing the
// routing distance.
func rowScales(rows []schema.Row, attrs []int) []float64 {
	scales := make([]float64, len(attrs))
	for ai, a := range attrs {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, row := range rows {
			v := numAt(row, a)
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		scales[ai] = 1
		if hi > lo {
			scales[ai] = hi - lo
		}
	}
	return scales
}

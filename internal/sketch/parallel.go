package sketch

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelSplitMin is the group size below which the median splitter
// stays serial: forking a goroutine per tiny subtree costs more in
// scheduling than the split saves, and small subtrees finish in
// microseconds anyway.
const parallelSplitMin = 2048

// workers resolves Options.Parallelism: an explicit positive value
// wins, 0 means one worker per available CPU (GOMAXPROCS).
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFor runs fn(i) for every i in [0, n) across at most workers
// goroutines, returning when all calls have finished. Indexes are
// handed out through an atomic counter, so uneven per-index costs
// (sub-MILPs of very different sizes) balance across workers. The
// caller is responsible for making the calls independent: fn must only
// write state owned by index i. With workers <= 1 the loop runs inline,
// byte-for-byte identical to the concurrent schedule — parallelism is a
// scheduling choice, never an algorithmic one.
func parallelFor(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// limiter is a counting semaphore bounding the goroutines a recursive
// split may fork. A nil limiter admits nobody, so the recursion stays
// serial.
type limiter chan struct{}

// newLimiter returns a limiter admitting workers-1 forks (the calling
// goroutine is the remaining worker), or nil when workers <= 1.
func newLimiter(workers int) limiter {
	if workers <= 1 {
		return nil
	}
	return make(limiter, workers-1)
}

// tryAcquire claims a fork slot without blocking.
func (l limiter) tryAcquire() bool {
	if l == nil {
		return false
	}
	select {
	case l <- struct{}{}:
		return true
	default:
		return false
	}
}

// release returns a fork slot.
func (l limiter) release() { <-l }

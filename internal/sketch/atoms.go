package sketch

import (
	"context"

	"repro/internal/expr"
	"repro/internal/lifecycle"
	"repro/internal/lp"
	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/translate"
)

// branchAtoms is one DNF branch of the SUCH THAT formula weighted at
// every granularity the descent needs: exact tuple-level rows for the
// refine MILPs and the final feasibility check, plus the per-atom
// selector views the partition levels re-weight over nodes.
//
// Non-selector atoms (affine SUM/COUNT rows and AVG rewrites) weigh
// over a level's representative rows exactly like the classic sketch.
// Selector atoms (MIN/MAX eliminations, at-least-one witnesses, AVG
// guards) carry 0/1 tuple weights a representative cannot express — a
// mean row says nothing about whether ANY tuple in the subtree crosses
// a threshold — so they are re-weighted per node from the subtree
// min/max envelopes instead (see selectorNodeAtom).
type branchAtoms struct {
	branch translate.SketchBranch
	tuple  []*translate.LinearAtom     // exact rows over the instance's candidates
	sels   map[int]*translate.Selector // selector view per branch-atom index
	// admissible[i] reports that candidate i survives every elimination
	// row of the branch — only such tuples can enter a feasible
	// package. nil when the branch has no eliminations.
	admissible []bool
}

// newBranchAtoms weighs a compiled branch over the instance's
// candidates. Each atom's weighing is linear in the candidates, so the
// context is checked between atoms — at 1M rows a single weigh runs
// low hundreds of milliseconds, the longest remaining stretch a
// canceled solve can sit out here.
func newBranchAtoms(ctx context.Context, inst *search.Instance, br translate.SketchBranch) (*branchAtoms, error) {
	ba := &branchAtoms{branch: br, sels: map[int]*translate.Selector{}}
	for i, at := range br.Atoms {
		if err := lifecycle.ContextErr(ctx); err != nil {
			return nil, err
		}
		if at.IsSelector() {
			sel, err := at.Selector(inst.Rows)
			if err != nil {
				return nil, err
			}
			ba.sels[i] = sel
			ba.tuple = append(ba.tuple, sel.TupleAtom())
			if sel.Kind == translate.SketchElim {
				if ba.admissible == nil {
					ba.admissible = make([]bool, len(inst.Rows))
					for j := range ba.admissible {
						ba.admissible[j] = true
					}
				}
				for j := range inst.Rows {
					if sel.Present[j] && sel.Match(sel.Vals[j]) {
						ba.admissible[j] = false
					}
				}
			}
			continue
		}
		rows, err := at.Weigh(inst.Rows)
		if err != nil {
			return nil, err
		}
		ba.tuple = append(ba.tuple, rows...)
	}
	return ba, nil
}

// admissibleCounts returns, per node, how many covered tuples survive
// every elimination row of the branch — the node's true supply of
// package-admissible tuples, which caps its multiplicity at every
// sketch level (a node whose whole subtree is eliminated gets 0: the
// envelope prune expressed as a bound, and the reason the sketch never
// routes more units into a subtree than its refine MILP could place).
// nil when the branch has no eliminations.
func (ba *branchAtoms) admissibleCounts(nodes []Node) []int {
	if ba.admissible == nil {
		return nil
	}
	out := make([]int, len(nodes))
	for g := range nodes {
		c := 0
		for _, i := range nodes[g].Tuples {
			if ba.admissible[i] {
				c++
			}
		}
		out[g] = c
	}
	return out
}

// levelAtoms weighs the branch over one level of the partition tree:
// representative rows for the non-selector atoms, envelope relaxations
// for the selectors. The returned slice is ordered like tuple, so
// residual bookkeeping lines up across levels.
func (ba *branchAtoms) levelAtoms(nodes []Node, attrs []int, reps []schema.Row) ([]*translate.LinearAtom, error) {
	out := make([]*translate.LinearAtom, 0, len(ba.tuple))
	for i, at := range ba.branch.Atoms {
		if sel := ba.sels[i]; sel != nil {
			out = append(out, selectorNodeAtom(sel, nodes, attrIndex(attrs, sel.Col)))
			continue
		}
		rows, err := at.Weigh(reps)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

// attrIndex locates a column ordinal within the tree's split
// attributes; -1 disables the envelope fast path for that selector.
func attrIndex(attrs []int, col int) int {
	if col < 0 {
		return -1
	}
	for ai, a := range attrs {
		if a == col {
			return ai
		}
	}
	return -1
}

// selectorNodeAtom relaxes a selector atom over a level's nodes, the
// envelope-pruning step of the billion-tuple follow-up:
//
//   - an elimination row (Σ_bad x ≤ 0 over tuples) gives weight 1 to
//     exactly the nodes whose every covered tuple is present and
//     violating — the subtree cannot supply one admissible tuple, so
//     the row forces its multiplicity to 0. Mixed subtrees keep weight
//     0: the sketch may select them and the per-leaf refine MILP, which
//     enforces the exact tuple row, picks only admissible tuples.
//   - an at-least-one row (Σ_good x ≥ 1) gives weight 1 to the nodes
//     whose subtree holds at least one witness, so the sketch is forced
//     to route at least one unit through a subtree that can actually
//     satisfy the bound.
//
// Both directions are relaxations of the tuple-level row (they never
// exclude a refinable descent), and both are exact set statements about
// the subtree: the per-attribute envelopes answer them in O(1) for
// bare-column aggregates, the per-tuple scan covers filtered or
// compound arguments.
func selectorNodeAtom(sel *translate.Selector, nodes []Node, ai int) *translate.LinearAtom {
	w := make([]float64, len(nodes))
	for g := range nodes {
		switch sel.Kind {
		case translate.SketchElim:
			if nodeEntirelySelected(sel, &nodes[g], ai) {
				w[g] = 1
			}
		case translate.SketchAtLeast:
			if nodeAnySelected(sel, &nodes[g], ai) {
				w[g] = 1
			}
		}
	}
	if sel.Kind == translate.SketchElim {
		return &translate.LinearAtom{W: w, Op: lp.LE, RHS: 0, Source: sel.Source}
	}
	return &translate.LinearAtom{W: w, Op: lp.GE, RHS: 1, Source: sel.Source}
}

// nodeEntirelySelected reports whether every tuple the node covers is
// present under the selector and matches its predicate — for an
// elimination row, the whole subtree is inadmissible and can be pruned
// from the sketch MILP.
func nodeEntirelySelected(sel *translate.Selector, n *Node, ai int) bool {
	if ai >= 0 {
		if n.NonNull[ai] != len(n.Tuples) {
			return false // a NULL tuple is never present, so never bad
		}
		if sel.All {
			return true
		}
		switch sel.Op {
		case expr.OpLe:
			return n.Hi[ai] <= sel.C
		case expr.OpLt:
			return n.Hi[ai] < sel.C
		case expr.OpGe:
			return n.Lo[ai] >= sel.C
		case expr.OpGt:
			return n.Lo[ai] > sel.C
		}
		return false
	}
	for _, i := range n.Tuples {
		if !sel.Present[i] || !sel.Match(sel.Vals[i]) {
			return false
		}
	}
	return true
}

// nodeAnySelected reports whether some tuple the node covers is present
// and matches the predicate — for an at-least-one row, the subtree can
// supply a witness.
func nodeAnySelected(sel *translate.Selector, n *Node, ai int) bool {
	if ai >= 0 {
		if n.NonNull[ai] == 0 {
			return false
		}
		if sel.All {
			return true
		}
		switch sel.Op {
		case expr.OpLe:
			return n.Lo[ai] <= sel.C
		case expr.OpLt:
			return n.Lo[ai] < sel.C
		case expr.OpGe:
			return n.Hi[ai] >= sel.C
		case expr.OpGt:
			return n.Hi[ai] > sel.C
		}
		return false
	}
	for _, i := range n.Tuples {
		if sel.Present[i] && sel.Match(sel.Vals[i]) {
			return true
		}
	}
	return false
}

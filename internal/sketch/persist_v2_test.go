package sketch_test

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sketch"
)

// TestPersistOldVersionTriggersRebuild rewrites a persisted tree as a
// format-version-1 file (the pre-envelope encoding) and checks the
// loader reports it as unusable — the caller rebuilds — rather than
// misreading envelope-free nodes.
func TestPersistOldVersionTriggersRebuild(t *testing.T) {
	prep := recipesPrep(t, 1000)
	dir := t.TempDir()
	opts := sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 3, PersistDir: dir}
	fresh, err := sketch.Solve(prep.Instance, opts)
	if err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(dir)
	if err != nil || len(files) != 1 {
		t.Fatalf("want exactly one persisted file, got %d (%v)", len(files), err)
	}
	path := filepath.Join(dir, files[0].Name())
	// The version uvarint follows the 6-byte magic; 1 is the
	// pre-envelope format.
	corrupt(t, path, true, func(b []byte) []byte {
		b[6] = 1
		return b
	})
	res, err := sketch.Solve(prep.Instance, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TreeLoaded {
		t.Fatal("an old-version file must not be loaded")
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "format version 1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("notes should report the version mismatch, got %v", res.Notes)
	}
	if !reflect.DeepEqual(fresh.Mult, res.Mult) {
		t.Fatal("rebuild after version mismatch produced a different package")
	}
	// The rebuild overwrote the file with the current version; the next
	// cold start loads it.
	again, err := sketch.Solve(prep.Instance, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !again.TreeLoaded {
		t.Fatal("rebuild should have replaced the old-version file")
	}
}

// TestPersistEnvelopeRoundTripBitForBit proves the per-node envelopes
// survive save/load exactly: same float bits, same counts, at every
// level of a depth-3 tree.
func TestPersistEnvelopeRoundTripBitForBit(t *testing.T) {
	prep := recipesPrep(t, 3000)
	tree := sketch.BuildTree(prep.Instance, sketch.Options{MaxPartitionSize: 16, Depth: 3, Seed: 11})
	key := sketch.Key{
		Fingerprint: sketch.Fingerprint(prep.Instance.Rows),
		Attrs:       "1,2", Tau: 16, Depth: 3, Seed: 11,
	}
	store := sketch.NewStore(t.TempDir())
	if err := store.Save(key, tree); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil {
		t.Fatal("saved tree did not load")
	}
	envelopes := 0
	for l, nodes := range tree.Levels {
		for i := range nodes {
			got, want := &loaded.Levels[l][i], &nodes[i]
			if len(want.Lo) == 0 {
				t.Fatalf("level %d node %d has no envelope to round-trip", l, i)
			}
			for ai := range want.Lo {
				if math.Float64bits(got.Lo[ai]) != math.Float64bits(want.Lo[ai]) ||
					math.Float64bits(got.Hi[ai]) != math.Float64bits(want.Hi[ai]) {
					t.Fatalf("level %d node %d attr %d: envelope bits changed: (%g,%g) != (%g,%g)",
						l, i, ai, got.Lo[ai], got.Hi[ai], want.Lo[ai], want.Hi[ai])
				}
				if got.NonNull[ai] != want.NonNull[ai] {
					t.Fatalf("level %d node %d attr %d: NonNull %d != %d", l, i, ai, got.NonNull[ai], want.NonNull[ai])
				}
				envelopes++
			}
		}
	}
	if envelopes == 0 {
		t.Fatal("no envelopes compared")
	}
}

// TestPersistEnvelopeBitFlip flips a bit inside the envelope section
// (the trailing bytes of the last node record) and checks the checksum
// catches it; a structurally inconsistent envelope that re-checksums
// cleanly is caught by the structure validator instead.
func TestPersistEnvelopeBitFlip(t *testing.T) {
	prep := recipesPrep(t, 500)
	key := sketch.Key{
		Fingerprint: sketch.Fingerprint(prep.Instance.Rows),
		Attrs:       "1,2", Tau: 16, Depth: 2, Seed: 5,
	}
	opts := sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 5}

	t.Run("checksum-catches-flip", func(t *testing.T) {
		store := sketch.NewStore(t.TempDir())
		if err := store.Save(key, sketch.BuildTree(prep.Instance, opts)); err != nil {
			t.Fatal(err)
		}
		// The last payload bytes before the 4-byte CRC belong to the
		// final node's envelope triple.
		corrupt(t, store.Path(key), false, func(b []byte) []byte {
			b[len(b)-5] ^= 0x10
			return b
		})
		if _, err := store.Load(key); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("flipped envelope bit should fail the checksum, got %v", err)
		}
	})

	t.Run("validator-catches-inverted-envelope", func(t *testing.T) {
		store := sketch.NewStore(t.TempDir())
		tree := sketch.BuildTree(prep.Instance, opts)
		bad := *tree // shallow copy; deep-copy the node we tamper with
		bad.Levels = append([][]sketch.Node{}, tree.Levels...)
		bad.Levels[0] = append([]sketch.Node{}, tree.Levels[0]...)
		n := bad.Levels[0][0]
		n.Lo = append([]float64{}, n.Lo...)
		n.Lo[0] = n.Hi[0] + 5 // lo above hi with NonNull > 0
		bad.Levels[0][0] = n
		if err := store.Save(key, &bad); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Load(key); err == nil || !strings.Contains(err.Error(), "envelope") {
			t.Fatalf("inverted envelope should fail structure validation, got %v", err)
		}
	})

	t.Run("validator-catches-overcount", func(t *testing.T) {
		store := sketch.NewStore(t.TempDir())
		tree := sketch.BuildTree(prep.Instance, opts)
		bad := *tree
		bad.Levels = append([][]sketch.Node{}, tree.Levels...)
		bad.Levels[0] = append([]sketch.Node{}, tree.Levels[0]...)
		n := bad.Levels[0][0]
		n.NonNull = append([]int{}, n.NonNull...)
		n.NonNull[0] = len(n.Tuples) + 1
		bad.Levels[0][0] = n
		if err := store.Save(key, &bad); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Load(key); err == nil || !strings.Contains(err.Error(), "non-NULL") {
			t.Fatalf("implausible NonNull should fail structure validation, got %v", err)
		}
	})
}

package sketch_test

// End-to-end coverage of the full PaQL atom grammar through
// sketch.Solve: AVG rewrites, MIN/MAX envelope pruning, disjunctive
// branches, and their interaction with REPEAT and pinned tuples. Each
// test cross-checks against the exact MILP solver where it is cheap.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/minidb"
	"repro/internal/sketch"
)

// grammarPrep prepares a recipes query with the given SUCH THAT /
// objective tail.
func grammarPrep(t *testing.T, n int, tail string) *core.Prepared {
	t.Helper()
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: n, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	prep, err := core.Prepare(db, "SELECT PACKAGE(R) AS P FROM recipes R "+tail)
	if err != nil {
		t.Fatal(err)
	}
	return prep
}

// exactObjective solves the instance exactly and returns the optimum.
func exactObjective(t *testing.T, prep *core.Prepared) float64 {
	t.Helper()
	res, err := prep.Run(core.Options{Strategy: core.Solver, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) == 0 {
		t.Fatal("exact solver found no package")
	}
	return res.Packages[0].Objective
}

// feasibleAndValid asserts the sketch result is feasible and that the
// claimed package truly satisfies the formula end to end.
func feasibleAndValid(t *testing.T, prep *core.Prepared, res *sketch.Result) {
	t.Helper()
	if !res.Feasible {
		t.Fatalf("sketch infeasible: %v", res.Notes)
	}
	ok, err := prep.Instance.Validate(res.Mult)
	if err != nil || !ok {
		t.Fatalf("sketch package fails full validation (ok=%v err=%v)", ok, err)
	}
}

func TestSketchAvgAtomVsExact(t *testing.T) {
	prep := grammarPrep(t, 400, `
		SUCH THAT COUNT(*) = 3 AND AVG(P.calories) <= 700
		MAXIMIZE SUM(P.protein)`)
	res, err := sketch.Solve(prep.Instance, sketch.Options{MaxPartitionSize: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	feasibleAndValid(t, prep, res)
	if res.AtomRewrites != 1 {
		t.Errorf("AtomRewrites = %d, want 1", res.AtomRewrites)
	}
	if res.Branches != 1 {
		t.Errorf("Branches = %d, want 1", res.Branches)
	}
	if res.Levels < 1 {
		t.Errorf("Levels = %d, want >= 1 (sketch actually ran)", res.Levels)
	}
	opt := exactObjective(t, prep)
	if res.Objective > opt+1e-6 {
		t.Fatalf("sketch objective %g beats the exact optimum %g", res.Objective, opt)
	}
	if res.Objective < 0.85*opt {
		t.Errorf("sketch objective %g more than 15%% below exact %g", res.Objective, opt)
	}
}

func TestSketchMinMaxAtomsVsExact(t *testing.T) {
	prep := grammarPrep(t, 400, `
		SUCH THAT COUNT(*) = 3 AND MIN(P.protein) >= 10 AND MAX(P.calories) <= 900
		MAXIMIZE SUM(P.protein)`)
	res, err := sketch.Solve(prep.Instance, sketch.Options{MaxPartitionSize: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	feasibleAndValid(t, prep, res)
	if res.AtomRewrites != 2 {
		t.Errorf("AtomRewrites = %d, want 2", res.AtomRewrites)
	}
	// The formula itself proves the per-tuple bounds; spot-check anyway.
	for i, m := range res.Mult {
		if m == 0 {
			continue
		}
		prot, _ := prep.Instance.Rows[i][6].AsFloat()
		cal, _ := prep.Instance.Rows[i][5].AsFloat()
		if prot < 10 || cal > 900 {
			t.Errorf("tuple %d (protein %g, calories %g) violates the MIN/MAX bounds", i, prot, cal)
		}
	}
	opt := exactObjective(t, prep)
	if res.Objective > opt+1e-6 {
		t.Fatalf("sketch objective %g beats the exact optimum %g", res.Objective, opt)
	}
}

func TestSketchDisjunctionDescendsBothBranches(t *testing.T) {
	prep := grammarPrep(t, 400, `
		SUCH THAT COUNT(*) = 3 AND (SUM(P.calories) <= 1600 OR AVG(P.protein) >= 22)
		MAXIMIZE SUM(P.protein)`)
	res, err := sketch.Solve(prep.Instance, sketch.Options{MaxPartitionSize: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	feasibleAndValid(t, prep, res)
	if res.Branches != 2 {
		t.Errorf("Branches = %d, want 2 (both DNF branches descended)", res.Branches)
	}
	opt := exactObjective(t, prep)
	if res.Objective > opt+1e-6 {
		t.Fatalf("sketch objective %g beats the exact optimum %g", res.Objective, opt)
	}
	if res.Objective < 0.85*opt {
		t.Errorf("sketch objective %g more than 15%% below exact %g", res.Objective, opt)
	}
}

// TestSketchEnvelopePruneForcesCluster builds two well-separated value
// clusters that land in different partitions and checks the MIN bound
// prunes the low cluster at the sketch level already: every chosen
// tuple comes from the admissible cluster, with no repair pass needed.
func TestSketchEnvelopePruneForcesCluster(t *testing.T) {
	db := minidb.New()
	if _, err := db.Exec("CREATE TABLE t (x INT, y INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		// Low cluster: x in [0, 32). High cluster: x in [100, 132).
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", 100+i, i)); err != nil {
			t.Fatal(err)
		}
	}
	prep, err := core.Prepare(db, `
		SELECT PACKAGE(T) AS P FROM t T
		SUCH THAT COUNT(*) = 4 AND MIN(P.x) >= 100
		MAXIMIZE SUM(P.y)`)
	if err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{1, 2} {
		t.Run(fmt.Sprintf("depth=%d", depth), func(t *testing.T) {
			res, err := sketch.Solve(prep.Instance, sketch.Options{MaxPartitionSize: 8, Depth: depth, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			feasibleAndValid(t, prep, res)
			for i, m := range res.Mult {
				if m == 0 {
					continue
				}
				x, _ := prep.Instance.Rows[i][0].AsFloat()
				if x < 100 {
					t.Errorf("tuple with x=%g slipped past the MIN envelope prune", x)
				}
			}
			// Optimum picks the four largest y values in the high
			// cluster: 31+30+29+28.
			if res.Objective != 118 {
				t.Errorf("objective %g, want 118 (exact on this tiny instance)", res.Objective)
			}
		})
	}
}

// TestSketchMinMaxWithRepeatAndPins exercises the new atoms together
// with REPEAT multiplicities and pinned tuples.
func TestSketchMinMaxWithRepeatAndPins(t *testing.T) {
	prep := grammarPrep(t, 300, `REPEAT 1
		SUCH THAT COUNT(*) = 4 AND MIN(P.protein) >= 8 AND AVG(P.calories) <= 750
		MAXIMIZE SUM(P.protein)`)
	// Pin an admissible tuple (protein >= 8) so the pin cannot conflict
	// with the MIN bound.
	pin := -1
	for i, row := range prep.Instance.Rows {
		prot, _ := row[6].AsFloat()
		cal, _ := row[5].AsFloat()
		if prot >= 8 && cal <= 700 {
			pin = i
			break
		}
	}
	if pin < 0 {
		t.Fatal("no pinnable tuple in the dataset")
	}
	res, err := sketch.Solve(prep.Instance, sketch.Options{MaxPartitionSize: 16, Seed: 1, Require: []int{pin}})
	if err != nil {
		t.Fatal(err)
	}
	feasibleAndValid(t, prep, res)
	if res.Mult[pin] < 1 {
		t.Fatalf("pinned tuple %d missing from the package", pin)
	}
	for i, m := range res.Mult {
		if m > 2 {
			t.Errorf("tuple %d multiplicity %d exceeds REPEAT 1", i, m)
		}
	}
}

// TestSketchDisjunctionInfeasibleBranchFallsToOther makes the first DNF
// branch unsatisfiable and checks the second one still produces the
// package.
func TestSketchDisjunctionInfeasibleBranchFallsToOther(t *testing.T) {
	prep := grammarPrep(t, 300, `
		SUCH THAT COUNT(*) = 3 AND (SUM(P.calories) <= 0 OR MAX(P.calories) <= 800)
		MAXIMIZE SUM(P.protein)`)
	res, err := sketch.Solve(prep.Instance, sketch.Options{MaxPartitionSize: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	feasibleAndValid(t, prep, res)
	if res.Branches != 2 {
		t.Errorf("Branches = %d, want 2", res.Branches)
	}
	for i, m := range res.Mult {
		if m == 0 {
			continue
		}
		cal, _ := prep.Instance.Rows[i][1].AsFloat()
		if cal > 800 {
			t.Errorf("tuple with calories %g violates the surviving branch", cal)
		}
	}
}

// TestSketchHierarchicalAvgDepth2 runs an AVG query through a real
// depth-2 tree: the rewrite must survive every level of the descent.
func TestSketchHierarchicalAvgDepth2(t *testing.T) {
	prep := grammarPrep(t, 3000, `
		SUCH THAT COUNT(*) = 5 AND AVG(P.calories) <= 650 AND MIN(P.protein) >= 5
		MAXIMIZE SUM(P.protein)`)
	res, err := sketch.Solve(prep.Instance, sketch.Options{MaxPartitionSize: 16, Depth: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	feasibleAndValid(t, prep, res)
	if res.Levels != 2 {
		t.Errorf("Levels = %d, want 2", res.Levels)
	}
}

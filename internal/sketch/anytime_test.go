package sketch_test

// Anytime-mode unit tests: with a certified gap tolerance set, the
// disjunctive descent must stop as soon as the interval proven by the
// pre-pass bounds covers the tolerance — and must still return a
// certified interval when it does.

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/minidb"
	"repro/internal/sketch"
)

const anytimeQuery = `
	SELECT PACKAGE(R) AS P
	FROM recipes R
	SUCH THAT COUNT(*) = 3 AND (SUM(P.protein) >= 0 OR SUM(P.calories) <= 2500)
	MAXIMIZE SUM(P.protein)`

func anytimePrep(t *testing.T, n int) *core.Prepared {
	t.Helper()
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: n, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	prep, err := core.Prepare(db, anytimeQuery)
	if err != nil {
		t.Fatal(err)
	}
	return prep
}

// TestAnytimeEarlyExit: a tolerance loose enough to accept any certified
// interval must stop the descent after the first feasible branch of a
// two-branch disjunction, note the early exit, and still certify.
func TestAnytimeEarlyExit(t *testing.T) {
	prep := anytimePrep(t, 400)
	res, err := sketch.Solve(prep.Instance, sketch.Options{
		MaxPartitionSize: 32, Seed: 1, GapTolerance: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("first branch (SUM(protein) >= 0) must be feasible")
	}
	if res.Branches >= 2 {
		t.Fatalf("descended %d branches; the anytime exit should have stopped after 1", res.Branches)
	}
	if !res.Certified {
		t.Fatal("early exit must still carry a certified interval")
	}
	if res.Bound < res.Objective-1e-6*(1+res.Objective) {
		t.Fatalf("maximize bound %g below found objective %g", res.Bound, res.Objective)
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "anytime:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no anytime note in %v", res.Notes)
	}
}

// TestAnytimeOffDescendsAllBranches: the control run — tolerance zero
// must descend every DNF branch and still report a certified interval,
// proving the bound pass alone never changes what is searched.
func TestAnytimeOffDescendsAllBranches(t *testing.T) {
	prep := anytimePrep(t, 400)
	res, err := sketch.Solve(prep.Instance, sketch.Options{
		MaxPartitionSize: 32, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("query must be feasible")
	}
	if res.Branches != 2 {
		t.Fatalf("descended %d branches, want both", res.Branches)
	}
	if !res.Certified {
		t.Fatalf("full descent of a certified query must certify: %+v", res)
	}
	for _, n := range res.Notes {
		if strings.Contains(n, "anytime:") {
			t.Fatalf("tolerance 0 must never early-exit: %v", res.Notes)
		}
	}
}

package sketch

import (
	"math/rand"
	"sort"

	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/value"
)

// Partitioning is the offline output of the partitioner: the candidate
// tuples split into size-bounded groups over the query's numeric
// attributes, plus one representative tuple per group.
type Partitioning struct {
	Attrs  []int        // column ordinals the splitter used
	Groups [][]int      // candidate indexes per partition, each sorted
	Reps   []schema.Row // one representative tuple per partition
	Tau    int          // effective partition size bound
}

// effectiveTau resolves the partition size bound from the options: an
// explicit size wins, a partition-count target divides the input, and
// the default covers the rest.
func effectiveTau(n int, opts Options) int {
	tau := opts.MaxPartitionSize
	if opts.NumPartitions > 0 {
		byCount := (n + opts.NumPartitions - 1) / opts.NumPartitions
		if tau <= 0 || byCount < tau {
			tau = byCount
		}
	}
	if tau <= 0 {
		tau = DefaultPartitionSize
	}
	return tau
}

// Partition splits the instance's candidates into groups of at most τ
// tuples by recursive median splits on the query's numeric attributes
// (the attribute with the widest normalized spread is split first), and
// builds a representative tuple per group: the mean for numeric
// columns, the mode for categorical ones. The procedure is
// deterministic under a fixed seed and any Options.Parallelism: the
// workers only divide the splits and representative scans, never the
// outcome.
func Partition(inst *search.Instance, opts Options) *Partitioning {
	n := len(inst.Rows)
	part := &Partitioning{Attrs: partitionAttrs(inst), Tau: effectiveTau(n, opts)}
	if n == 0 {
		return part
	}
	attrs := shuffledAttrs(part.Attrs, opts.Seed)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	w := opts.workers()
	var stop func() bool
	if opts.Ctx != nil {
		stop = opts.stopped
	}
	part.Groups = medianSplit(inst.Rows, all, attrs, part.Tau, w, stop)
	part.Reps = make([]schema.Row, len(part.Groups))
	parallelFor(w, len(part.Groups), func(i int) {
		part.Reps[i] = representative(inst.Rows, part.Groups[i])
	})
	return part
}

// shuffledAttrs copies attrs in a seed-dependent order: the seed only
// affects the tie-break ordering used by the splitter, so equal-spread
// attributes split in a reproducible but seed-varied order.
func shuffledAttrs(attrs []int, seed int64) []int {
	out := append([]int(nil), attrs...)
	rand.New(rand.NewSource(seed)).Shuffle(len(out), func(i, j int) {
		out[i], out[j] = out[j], out[i]
	})
	return out
}

// medianSplit splits the index set over rows into groups of at most tau
// elements by recursive median splits on attrs (the attribute with the
// widest normalized spread within the group is split first). The
// returned groups are each sorted ascending and appear in in-order
// traversal order. The partitioner uses it over the candidate tuples;
// the tree builder reuses it over the representative rows of a whole
// level.
//
// With workers > 1 the two halves of a split recurse concurrently
// (bounded by a semaphore, staying serial below parallelSplitMin) —
// the halves operate on disjoint subslices and their group lists are
// concatenated in traversal order, so the result is identical at any
// worker count.
//
// stop, when non-nil, is the cooperative-cancellation poll: once it
// returns true the recursion unwinds immediately, returning each
// remaining group unsplit (and unsorted) as a single oversized leaf.
// The output is then structurally a partitioning but not THE
// partitioning — callers on the cancellation path discard it.
func medianSplit(rows []schema.Row, all []int, attrs []int, tau, workers int, stop func() bool) [][]int {
	return splitRec(rows, all, attrs, tau, newLimiter(workers), stop)
}

// splitRec is medianSplit's recursion; it returns the subtree's groups
// in traversal order so concurrent halves merge deterministically.
func splitRec(rows []schema.Row, g []int, attrs []int, tau int, lim limiter, stop func() bool) [][]int {
	if stop != nil && stop() {
		return [][]int{append([]int(nil), g...)}
	}
	if len(g) <= tau {
		gg := append([]int(nil), g...)
		sort.Ints(gg)
		return [][]int{gg}
	}
	a := widestAttr(rows, g, attrs)
	if a < 0 {
		// No attribute separates the group (all values equal):
		// chop it by index.
		var groups [][]int
		for s := 0; s < len(g); s += tau {
			e := min(s+tau, len(g))
			groups = append(groups, splitRec(rows, g[s:e], attrs, tau, lim, stop)...)
		}
		return groups
	}
	// The comparator is a strict total order (ties break on index), so
	// an unstable sort yields the exact sequence a stable one would —
	// at a fraction of the cost on the hot path.
	sort.Slice(g, func(i, j int) bool {
		vi, vj := numAt(rows[g[i]], a), numAt(rows[g[j]], a)
		if vi != vj {
			return vi < vj
		}
		return g[i] < g[j]
	})
	mid := len(g) / 2
	left, right := g[:mid], g[mid:]
	if len(g) >= parallelSplitMin && lim.tryAcquire() {
		var lg [][]int
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer lim.release()
			lg = splitRec(rows, left, attrs, tau, lim, stop)
		}()
		rg := splitRec(rows, right, attrs, tau, lim, stop)
		<-done
		return append(lg, rg...)
	}
	return append(splitRec(rows, left, attrs, tau, lim, stop), splitRec(rows, right, attrs, tau, lim, stop)...)
}

// partitionAttrs collects the numeric columns referenced by the query's
// aggregates (arguments and filters); when none are found it falls back
// to every numeric column.
func partitionAttrs(inst *search.Instance) []int {
	cols := map[int]bool{}
	collect := func(e expr.Expr) {
		if e == nil {
			return
		}
		expr.Walk(e, func(n expr.Expr) {
			if c, ok := n.(*expr.Col); ok && c.Idx >= 0 {
				cols[c.Idx] = true
			}
		})
	}
	for _, a := range inst.Analysis.Aggs {
		collect(a.Arg)
		collect(a.Filter)
	}
	var attrs []int
	for idx := range cols {
		if numericCol(inst.Rows, idx) {
			attrs = append(attrs, idx)
		}
	}
	if len(attrs) == 0 && len(inst.Rows) > 0 {
		for idx := range inst.Rows[0] {
			if numericCol(inst.Rows, idx) {
				attrs = append(attrs, idx)
			}
		}
	}
	sort.Ints(attrs)
	return attrs
}

// numericCol samples the column and reports whether it is numeric (at
// least one non-null value, and every sampled non-null value numeric).
func numericCol(rows []schema.Row, idx int) bool {
	seen := false
	for i, row := range rows {
		if i >= 64 {
			break
		}
		if idx >= len(row) || row[idx].IsNull() {
			continue
		}
		if !row[idx].IsNumeric() {
			return false
		}
		seen = true
	}
	return seen
}

// numAt reads a numeric cell, mapping NULL/non-numeric to 0 so sorts
// stay total.
func numAt(row schema.Row, idx int) float64 {
	if idx >= len(row) {
		return 0
	}
	f, ok := row[idx].AsFloat()
	if !ok {
		return 0
	}
	return f
}

// widestAttr picks the attribute with the largest normalized spread
// within the group; -1 when every attribute is constant.
func widestAttr(rows []schema.Row, g []int, attrs []int) int {
	best, bestSpread := -1, 0.0
	for _, a := range attrs {
		lo, hi := numAt(rows[g[0]], a), numAt(rows[g[0]], a)
		for _, i := range g[1:] {
			v := numAt(rows[i], a)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		scale := 1 + abs(lo) + abs(hi)
		if spread := (hi - lo) / scale; spread > bestSpread {
			bestSpread, best = spread, a
		}
	}
	return best
}

// representative builds a group's representative tuple: numeric columns
// take the group mean, other columns the group mode (ties break toward
// the smallest value, keeping the construction deterministic).
func representative(rows []schema.Row, g []int) schema.Row {
	width := len(rows[g[0]])
	rep := make(schema.Row, width)
	for c := 0; c < width; c++ {
		sum, cnt := 0.0, 0
		numeric := true
		for _, i := range g {
			v := rows[i][c]
			if v.IsNull() {
				continue
			}
			f, ok := v.AsFloat()
			if !ok {
				numeric = false
				break
			}
			sum += f
			cnt++
		}
		if numeric && cnt > 0 {
			rep[c] = value.Float(sum / float64(cnt))
			continue
		}
		rep[c] = modeValue(rows, g, c)
	}
	return rep
}

// modeValue returns the most frequent value in the column across the
// group, preferring the SortLess-smallest on ties.
func modeValue(rows []schema.Row, g []int, c int) value.V {
	counts := map[string]int{}
	byKey := map[string]value.V{}
	for _, i := range g {
		v := rows[i][c]
		k := v.String()
		counts[k]++
		byKey[k] = v
	}
	var best value.V
	bestN := -1
	for k, n := range counts {
		v := byKey[k]
		if n > bestN || (n == bestN && v.SortLess(best)) {
			best, bestN = v, n
		}
	}
	return best
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

package sketch_test

// Differential fuzz harness: random PaQL queries over small synthetic
// tables are evaluated by both the exact MILP translation and
// SketchRefine, and the two answers are cross-checked on every theorem
// the engines share:
//
//  1. a package SketchRefine reports Feasible must satisfy the full
//     SUCH THAT formula under the independent paql.Satisfies evaluator
//     (and respect REPEAT bounds and pinned tuples);
//  2. SketchRefine must never produce a feasible package for an
//     instance the exact solver proved infeasible;
//  3. when the exact solver proves an optimum, SketchRefine's objective
//     must not beat it.
//
// The generator covers the whole atom grammar the sketch engine claims
// — SUM/COUNT/AVG/MIN/MAX atoms, BETWEEN bands, filtered aggregates,
// disjunctions, REPEAT, NULLs, and pins — so any lowering bug that
// breaks soundness shows up as a feasibility disagreement here. FuzzSketchVsExact
// explores byte-driven mutations; TestDifferentialSketchVsExact1000
// replays a fixed pseudo-random corpus (≥1000 queries in full runs) so
// CI exercises the same checks deterministically on every push.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/milp"
	"repro/internal/minidb"
	"repro/internal/sketch"
	"repro/internal/translate"
)

// qgen turns a byte stream into query-generation decisions. The stream
// cycles, so any non-empty fuzz input yields a full query.
type qgen struct {
	data []byte
	pos  int
}

func (g *qgen) next() byte {
	if len(g.data) == 0 {
		return 0
	}
	b := g.data[g.pos%len(g.data)]
	g.pos++
	return b
}

func (g *qgen) intn(n int) int {
	if n <= 0 {
		return 0
	}
	// Two bytes per draw keep small moduli reasonably uniform.
	v := int(g.next())<<8 | int(g.next())
	return v % n
}

// genCase is one generated differential instance.
type genCase struct {
	queryText string
	kinds     map[string]bool // atom kinds used: sum, count, avg, min, max, or, filter, band
	repeat    int
	pin       bool
}

// genQuery draws a random table and PaQL query. Tables are 3 int
// columns a, b, c with occasional NULLs in c; formulas combine 1-3
// atoms over the full grammar with optional disjunction.
func genQuery(g *qgen) (ddl []string, gc genCase) {
	gc.kinds = map[string]bool{}
	n := 12 + g.intn(30)
	ddl = append(ddl, "CREATE TABLE t (a INT, b INT, c INT)")
	for i := 0; i < n; i++ {
		c := fmt.Sprintf("%d", g.intn(100)-10)
		if g.intn(20) == 0 {
			c = "NULL"
		}
		ddl = append(ddl, fmt.Sprintf("INSERT INTO t VALUES (%d, %d, %s)",
			g.intn(100)-10, g.intn(60), c))
	}

	atom := func() string {
		ops := []string{"<=", ">=", "<", ">"}
		switch g.intn(10) {
		case 0:
			gc.kinds["count"] = true
			return fmt.Sprintf("COUNT(*) %s %d", []string{"<=", ">=", "="}[g.intn(3)], 1+g.intn(5))
		case 1:
			gc.kinds["sum"] = true
			return fmt.Sprintf("SUM(P.a) %s %d", []string{"<=", ">=", "=", "<", ">"}[g.intn(5)], g.intn(260)-40)
		case 2:
			gc.kinds["sum"] = true
			gc.kinds["filter"] = true
			return fmt.Sprintf("SUM(P.a WHERE P.c >= %d) %s %d", g.intn(60), ops[g.intn(4)], g.intn(160)-40)
		case 3:
			gc.kinds["avg"] = true
			return fmt.Sprintf("AVG(P.%s) %s %d", []string{"a", "c"}[g.intn(2)], ops[g.intn(4)], g.intn(80)-10)
		case 4:
			gc.kinds["min"] = true
			return fmt.Sprintf("MIN(P.%s) %s %d", []string{"a", "c"}[g.intn(2)], ops[g.intn(4)], g.intn(70)-15)
		case 5:
			gc.kinds["max"] = true
			return fmt.Sprintf("MAX(P.%s) %s %d", []string{"a", "b"}[g.intn(2)], ops[g.intn(4)], g.intn(90)-10)
		case 6:
			gc.kinds["count"] = true
			gc.kinds["filter"] = true
			return fmt.Sprintf("COUNT(* WHERE P.b >= %d) %s %d", g.intn(40), []string{"<=", ">="}[g.intn(2)], g.intn(4))
		case 7:
			// A band on a signed sum: the atom shape the tightening
			// pipeline targets (lowered to a GE/LE pair over one weight
			// vector).
			gc.kinds["band"] = true
			lo := g.intn(160) - 40
			return fmt.Sprintf("SUM(P.a) BETWEEN %d AND %d", lo, lo+20+g.intn(120))
		case 8:
			gc.kinds["band"] = true
			lo := 1 + g.intn(3)
			return fmt.Sprintf("COUNT(*) BETWEEN %d AND %d", lo, lo+g.intn(4))
		default:
			gc.kinds["sum"] = true
			return fmt.Sprintf("SUM(P.b) %s %d", ops[g.intn(4)], g.intn(200))
		}
	}

	var formula string
	switch g.intn(5) {
	case 0:
		formula = atom()
	case 1:
		formula = atom() + " AND " + atom()
	case 2:
		gc.kinds["or"] = true
		formula = "(" + atom() + " OR " + atom() + ")"
	case 3:
		gc.kinds["or"] = true
		formula = atom() + " AND (" + atom() + " OR " + atom() + ")"
	default:
		formula = atom() + " AND " + atom() + " AND " + atom()
	}

	gc.repeat = []int{0, 0, 0, 1, 2}[g.intn(5)]
	gc.pin = g.intn(6) == 0
	objective := ""
	switch g.intn(3) {
	case 0:
		objective = "\nMAXIMIZE SUM(P.b)"
	case 1:
		objective = "\nMINIMIZE SUM(P.a)"
	}
	gc.queryText = fmt.Sprintf(
		"SELECT PACKAGE(T) AS P\nFROM t T REPEAT %d\nSUCH THAT %s%s", gc.repeat, formula, objective)
	return ddl, gc
}

// diffStats aggregates one differential run for reporting.
type diffStats struct {
	ran, skFeasible, exFeasible int
	skMissed                    int       // exact feasible, sketch not
	gaps                        []float64 // relative objective gap per proven optimum
	certified                   int       // results carrying a certified interval
	certGaps                    []float64 // certified relative gap per certified result
}

// diffOne generates one case and cross-checks sketch vs exact. It
// reports false when the query was rejected before both engines ran
// (non-linear, not sketch-applicable, …) — those cases still fuzz the
// compiler front end.
func diffOne(t *testing.T, g *qgen, st *diffStats) (*genCase, bool) {
	t.Helper()
	ddl, gc := genQuery(g)
	db := minidb.New()
	for _, stmt := range ddl {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("ddl %q: %v", stmt, err)
		}
	}
	prep, err := core.Prepare(db, gc.queryText)
	if err != nil {
		return &gc, false // e.g. analyzer rejections; nothing to compare
	}
	inst := prep.Instance
	if !prep.Analysis.Linear || sketch.Applicable(inst) != nil {
		return &gc, false
	}
	var pins []int
	if gc.pin && len(inst.Rows) > 0 {
		pins = []int{g.intn(len(inst.Rows))}
	}

	// Exact side: the MILP translation, pinned the same way.
	model, err := translate.Translate(prep.Analysis, inst.Rows, inst.IDs)
	if err != nil {
		t.Fatalf("translate (linear query!): %v\n%s", err, gc.queryText)
	}
	for _, i := range pins {
		if err := model.RequireTuple(i); err != nil {
			t.Fatal(err)
		}
	}
	sol := milp.Solve(model.MILP, milp.Options{MaxNodes: 300000})
	exactProvenInfeasible := sol.Status == milp.StatusInfeasible
	exactOptimal := sol.Status == milp.StatusOptimal && sol.X != nil

	skres, err := sketch.Solve(inst, sketch.Options{
		MaxPartitionSize: 4 + g.intn(8),
		Depth:            1 + g.intn(2),
		Seed:             int64(g.intn(1000)),
		Require:          pins,
	})
	if err != nil {
		t.Fatalf("sketch.Solve: %v\n%s", err, gc.queryText)
	}
	st.ran++
	if exactOptimal || sol.Status == milp.StatusFeasible {
		st.exFeasible++
	}

	if skres.Feasible {
		st.skFeasible++
		// (1) The claimed package must really satisfy the formula.
		ok, verr := inst.Validate(skres.Mult)
		if verr != nil || !ok {
			t.Fatalf("FEASIBILITY DISAGREEMENT: sketch package fails validation (ok=%v err=%v)\n%s\nmult=%v",
				ok, verr, gc.queryText, skres.Mult)
		}
		for i, m := range skres.Mult {
			if m < 0 || (inst.MaxMult > 0 && m > inst.MaxMult) {
				t.Fatalf("multiplicity %d of tuple %d outside [0, %d]\n%s", m, i, inst.MaxMult, gc.queryText)
			}
		}
		for _, p := range pins {
			if skres.Mult[p] < 1 {
				t.Fatalf("pinned tuple %d missing\n%s", p, gc.queryText)
			}
		}
		// (2) Sketch cannot out-prove the exact solver.
		if exactProvenInfeasible {
			t.Fatalf("FEASIBILITY DISAGREEMENT: exact proved infeasible, sketch found a valid package\n%s\nmult=%v",
				gc.queryText, skres.Mult)
		}
		// (3) Nor beat a proven optimum.
		if exactOptimal && prep.Query.Objective != nil {
			exactObj, err := inst.Objective(model.Multiplicities(sol.X))
			if err == nil {
				if inst.Better(skres.Objective, exactObj) && math.Abs(skres.Objective-exactObj) > 1e-6*(1+math.Abs(exactObj)) {
					t.Fatalf("OPTIMALITY DISAGREEMENT: sketch %g beats proven optimum %g\n%s",
						skres.Objective, exactObj, gc.queryText)
				}
				denom := math.Max(1, math.Abs(exactObj))
				st.gaps = append(st.gaps, math.Abs(skres.Objective-exactObj)/denom)
				// (4) A certified interval must bracket the proven
				// optimum: by weak duality the dual bound may never be
				// beaten by it, in either sense.
				if skres.Certified {
					tol := 1e-6 * (1 + math.Abs(exactObj))
					if inst.Better(exactObj, skres.Bound) && math.Abs(exactObj-skres.Bound) > tol {
						t.Fatalf("BOUND VIOLATION: exact optimum %g beats certified bound %g\n%s",
							exactObj, skres.Bound, gc.queryText)
					}
					if inst.Better(skres.Objective, skres.Bound) && math.Abs(skres.Objective-skres.Bound) > tol {
						t.Fatalf("certified interval inverted: found %g beats bound %g\n%s",
							skres.Objective, skres.Bound, gc.queryText)
					}
				}
			}
		}
		if skres.Certified {
			st.certified++
			st.certGaps = append(st.certGaps, skres.Gap)
		}
	} else if exactOptimal {
		st.skMissed++
	}
	return &gc, true
}

// FuzzSketchVsExact is the byte-driven entry point: every mutated input
// becomes a fresh table + query pair and runs the full differential
// check. The seed corpus pins one representative input per grammar
// feature; `go test` replays it on every run, including CI's -short
// race leg.
func FuzzSketchVsExact(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte("avg-atoms"))
	f.Add([]byte("min/max envelopes"))
	f.Add([]byte("disjunctive descent"))
	f.Add([]byte{7, 31, 2, 254, 13, 64, 99, 101, 3, 3, 57})
	f.Add([]byte{255, 254, 253, 1, 0, 17, 33, 129, 42, 8})
	f.Add([]byte{9, 9, 9, 200, 180, 160, 140, 120, 100, 80, 60, 40})
	f.Add([]byte("repeat-and-pins"))
	f.Add([]byte{128, 64, 32, 16, 8, 4, 2, 1})
	f.Add([]byte("sum where filter over nulls"))
	f.Add([]byte("between bands on sums"))
	f.Add([]byte{0, 7, 0, 7, 0, 8, 0, 7, 0, 8, 11, 215, 96, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		var st diffStats
		diffOne(t, &qgen{data: data}, &st)
	})
}

// TestDifferentialSketchVsExact1000 replays a fixed corpus of generated
// queries — at least 1000 evaluated head-to-head in full runs (a
// smaller slice under -short) — and demands zero feasibility or
// optimality disagreements, plus real coverage of every atom kind and a
// sane aggregate objective gap.
func TestDifferentialSketchVsExact1000(t *testing.T) {
	target := 1000
	if testing.Short() {
		target = 150
	}
	var st diffStats
	kinds := map[string]int{}
	certKinds := map[string]int{}
	rng := rand.New(rand.NewSource(20260728))
	attempts := 0
	for st.ran < target && attempts < 4*target {
		attempts++
		data := make([]byte, 64)
		rng.Read(data)
		before := st.certified
		gc, ran := diffOne(t, &qgen{data: data}, &st)
		if ran {
			for k := range gc.kinds {
				kinds[k]++
				if st.certified > before {
					certKinds[k]++
				}
			}
		}
	}
	if st.ran < target {
		t.Fatalf("only %d of %d generated queries ran head-to-head (%d attempts)", st.ran, target, attempts)
	}
	for _, k := range []string{"sum", "count", "avg", "min", "max", "or", "filter", "band"} {
		if kinds[k] == 0 {
			t.Errorf("atom kind %q never survived to a head-to-head run", k)
		}
	}
	if st.skFeasible == 0 {
		t.Fatal("sketch never produced a feasible package; the harness is not exercising the engine")
	}
	// Quality gate on robust quantiles: the long tail holds toy
	// instances whose optima sit near zero (any absolute error explodes
	// the relative gap), so the mean is not a signal — the shape of the
	// distribution is.
	within5, within25 := 0, 0
	for _, g := range st.gaps {
		if g <= 0.05 {
			within5++
		}
		if g <= 0.25 {
			within25++
		}
	}
	t.Logf("ran=%d sketch-feasible=%d exact-feasible=%d sketch-missed=%d gaps: %d optima, %d within 5%%, %d within 25%% kinds=%v",
		st.ran, st.skFeasible, st.exFeasible, st.skMissed, len(st.gaps), within5, within25, kinds)
	if n := len(st.gaps); n > 0 {
		if frac := float64(within5) / float64(n); frac < 0.60 {
			t.Errorf("only %.0f%% of proven optima within a 5%% gap (want >= 60%%): sketch quality regressed", 100*frac)
		}
		if frac := float64(within25) / float64(n); frac < 0.80 {
			t.Errorf("only %.0f%% of proven optima within a 25%% gap (want >= 80%%): sketch quality regressed", 100*frac)
		}
	}
	if st.exFeasible > 0 {
		missRate := float64(st.skMissed) / float64(st.exFeasible)
		if missRate > 0.5 {
			t.Errorf("sketch missed %.0f%% of exactly-feasible instances: recall regressed", 100*missRate)
		}
	}
	// Certified-interval gates: enough objective-carrying results must
	// come back with a proof, spanning every atom kind, and the proven
	// gaps must stay in a sane band (the soundness of each proof is
	// checked per case in diffOne).
	t.Logf("certified=%d certKinds=%v", st.certified, certKinds)
	if st.certified == 0 {
		t.Fatal("no result carried a certified interval; the bound engine never engaged")
	}
	for _, k := range []string{"sum", "count", "avg", "min", "max", "or", "filter", "band"} {
		if certKinds[k] == 0 {
			t.Errorf("atom kind %q never produced a certified interval", k)
		}
	}
	if n := len(st.certGaps); n > 0 {
		within25, within100 := 0, 0
		for _, g := range st.certGaps {
			if g <= 0.25 {
				within25++
			}
			if g <= 1.0 {
				within100++
			}
		}
		t.Logf("certified gaps: %d total, %d within 25%%, %d within 100%%", n, within25, within100)
		if frac := float64(within100) / float64(n); frac < 0.60 {
			t.Errorf("only %.0f%% of certified gaps within 100%% (want >= 60%%): bounds got uselessly loose", 100*frac)
		}
		if frac := float64(within25) / float64(n); frac < 0.50 {
			t.Errorf("only %.0f%% of certified gaps within 25%% (want >= 50%%): certificate tightness regressed", 100*frac)
		}
	}
}

// Package fault is a deterministic fault-injection layer for tests and
// benchmarks. Subsystems call Check (or wrap their file access with FS,
// see fs.go) at named sites; an Injector installed via Enable decides —
// from a seeded RNG and a static rule set — whether each visit observes
// an injected error, an added latency, a partial write, or a panic.
//
// The layer is built for two properties:
//
//   - Zero overhead when disabled. Check is a single atomic pointer
//     load followed by a nil comparison; no allocation, no lock, no
//     map lookup. Production binaries never install an injector.
//   - Determinism. An Injector is seeded, and every probabilistic
//     decision is drawn from that seed under a mutex, so a chaos run
//     is reproducible from (corpus seed, injector seed, rule set).
//
// Sites are dot-separated lowercase names ("sketch.store.load",
// "core.solve"). Rules match a site exactly or by prefix with a
// trailing "*" ("sketch.store.*"). The injector counts visits and
// fires per site; Coverage exposes the counters so chaos harnesses can
// assert that every registered rung of a degradation ladder was
// actually exercised.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind selects the effect a Rule injects at a site.
type Kind int

// The four fault kinds. KindPartialWrite only has an effect on sites
// visited through the FS wrapper's file writes; at plain Check sites it
// behaves like KindError.
const (
	// KindError makes Check return an injected error.
	KindError Kind = iota
	// KindLatency makes Check sleep for the rule's Latency and then
	// succeed.
	KindLatency
	// KindPanic makes Check panic with a PanicValue. Callers that own
	// a degradation rung recover it; the top-level solve recovery
	// converts anything unhandled into lifecycle.ErrInternal.
	KindPanic
	// KindPartialWrite makes an injected file write only a prefix of
	// the buffer before failing, modeling torn writes.
	KindPartialWrite
)

// ErrInjected is the sentinel wrapped by every injected error, so
// callers (and retry loops) can recognize synthetic faults with
// errors.Is.
var ErrInjected = errors.New("fault: injected")

// PanicValue is the value thrown by KindPanic rules; recovery code can
// type-assert it to learn the originating site.
type PanicValue struct {
	// Site is the fault site that panicked.
	Site string
}

// String renders the panic value for recovery logs and test failures.
func (p PanicValue) String() string { return "injected panic at " + p.Site }

// Rule describes one fault at one site (or site prefix).
type Rule struct {
	// Site is the site name to match; a trailing "*" matches any site
	// with the preceding prefix.
	Site string
	// Kind is the effect to inject.
	Kind Kind
	// Prob is the per-visit injection probability in [0,1]. If zero,
	// the rule fires on every matching visit (subject to Limit).
	Prob float64
	// Limit caps the total number of fires for this rule; zero means
	// unlimited.
	Limit int
	// Latency is the sleep injected by KindLatency rules.
	Latency time.Duration
}

func (r *Rule) matches(site string) bool {
	if p, ok := strings.CutSuffix(r.Site, "*"); ok {
		return strings.HasPrefix(site, p)
	}
	return r.Site == site
}

// SiteStats reports the visit and fire counters for one site.
type SiteStats struct {
	// Visits counts how many times the site was checked while the
	// injector was installed.
	Visits int64
	// Fires counts how many visits actually observed a fault.
	Fires int64
}

// Coverage maps site name to its counters, as returned by
// (*Injector).Coverage.
type Coverage map[string]SiteStats

// Summary renders the coverage as a stable, human-readable table, one
// "site visits fires" line per site — the artifact the chaos-smoke CI
// job uploads.
func (c Coverage) Summary() string {
	sites := make([]string, 0, len(c))
	for s := range c {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	var b strings.Builder
	for _, s := range sites {
		st := c[s]
		fmt.Fprintf(&b, "%-28s visits=%-6d fires=%d\n", s, st.Visits, st.Fires)
	}
	return b.String()
}

// Injector is a seeded set of fault rules with per-site counters. It is
// safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	rng   *splitMix
	rules []Rule
	fired []int // per-rule fire counts, parallel to rules
	stats map[string]*SiteStats
	sleep func(time.Duration) // test hook; defaults to time.Sleep
}

// NewInjector builds an injector with the given seed and rules. The
// same seed and rules replay the same fault schedule for the same
// sequence of site visits.
func NewInjector(seed int64, rules ...Rule) *Injector {
	return &Injector{
		rng:   newSplitMix(uint64(seed)),
		rules: append([]Rule(nil), rules...),
		fired: make([]int, len(rules)),
		stats: make(map[string]*SiteStats),
		sleep: time.Sleep,
	}
}

// Coverage returns a copy of the per-site visit/fire counters.
func (in *Injector) Coverage() Coverage {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(Coverage, len(in.stats))
	for s, st := range in.stats {
		out[s] = *st
	}
	return out
}

// decide records a visit at site and returns the rule to apply, if any.
func (in *Injector) decide(site string) (Rule, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.stats[site]
	if st == nil {
		st = &SiteStats{}
		in.stats[site] = st
	}
	st.Visits++
	for i := range in.rules {
		r := &in.rules[i]
		if !r.matches(site) {
			continue
		}
		if r.Limit > 0 && in.fired[i] >= r.Limit {
			continue
		}
		if r.Prob > 0 && in.rng.float64() >= r.Prob {
			continue
		}
		in.fired[i]++
		st.Fires++
		return *r, true
	}
	return Rule{}, false
}

// check applies the first matching rule for a visit to site.
func (in *Injector) check(site string) error {
	r, ok := in.decide(site)
	if !ok {
		return nil
	}
	switch r.Kind {
	case KindLatency:
		if r.Latency > 0 {
			in.sleep(r.Latency)
		}
		return nil
	case KindPanic:
		panic(PanicValue{Site: site})
	default: // KindError, KindPartialWrite
		return Errorf(site)
	}
}

// partialWrite reports whether a write at site should be torn, and the
// fraction of the buffer to keep when it is.
func (in *Injector) partialWrite(site string) (float64, bool) {
	r, ok := in.decide(site)
	if !ok {
		return 0, false
	}
	switch r.Kind {
	case KindLatency:
		if r.Latency > 0 {
			in.sleep(r.Latency)
		}
		return 0, false
	case KindPanic:
		panic(PanicValue{Site: site})
	case KindPartialWrite:
		in.mu.Lock()
		frac := in.rng.float64()
		in.mu.Unlock()
		return frac, true
	default:
		return -1, true // full failure before any byte lands
	}
}

// Errorf builds the injected-error value for a site, wrapping
// ErrInjected.
func Errorf(site string) error {
	return fmt.Errorf("%w at %s", ErrInjected, site)
}

// current is the installed injector; nil means the layer is disabled
// and Check is a single atomic load.
var current atomic.Pointer[Injector]

// Enable installs inj as the process-wide injector and returns a
// restore function that reinstates the previous one. Test/bench only.
func Enable(inj *Injector) (restore func()) {
	old := current.Swap(inj)
	return func() { current.Store(old) }
}

// Disable removes any installed injector.
func Disable() { current.Store(nil) }

// Enabled reports whether an injector is installed.
func Enabled() bool { return current.Load() != nil }

// Check records a visit to site and returns an injected error (or
// panics, or sleeps) according to the installed injector's rules. With
// no injector installed it returns nil immediately.
func Check(site string) error {
	in := current.Load()
	if in == nil {
		return nil
	}
	return in.check(site)
}

// Injected reports whether err originates from the injection layer.
func Injected(err error) bool { return errors.Is(err, ErrInjected) }

// splitMix is a tiny deterministic PRNG (SplitMix64) so the injector
// does not perturb or depend on math/rand global state.
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (m *splitMix) next() uint64 {
	m.s += 0x9e3779b97f4a7c15
	z := m.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (m *splitMix) float64() float64 {
	return float64(m.next()>>11) / (1 << 53)
}

package fault

import (
	"io/fs"
	"os"
)

// FS is the small filesystem surface the storage tier uses, pluggable
// so tests can interpose faults between the engine and the disk.
type FS interface {
	// ReadFile reads the named file in full.
	ReadFile(name string) ([]byte, error)
	// CreateTemp creates a new temporary file in dir (see
	// os.CreateTemp for pattern semantics).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically moves oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// MkdirAll creates the directory path with any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// Stat returns file metadata.
	Stat(name string) (fs.FileInfo, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]fs.DirEntry, error)
	// WriteFile writes data to the named file, creating it if needed.
	WriteFile(name string, data []byte, perm fs.FileMode) error
}

// File is the writable temp-file handle returned by FS.CreateTemp.
type File interface {
	// Write appends to the file.
	Write(p []byte) (int, error)
	// Close flushes and closes the handle.
	Close() error
	// Name returns the file's path.
	Name() string
}

// osFS is the passthrough FS backed by the os package.
type osFS struct{}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}

// OS returns the real-filesystem FS.
func OS() FS { return osFS{} }

// FSFor returns the FS a subsystem should use for the given site
// prefix: the plain os-backed FS when no injector is installed, or an
// injecting wrapper that visits "<prefix>.<op>" fault sites around each
// operation. Callers capture it once per operation batch (e.g. per
// store handle), so the disabled path costs one atomic load at
// construction and nothing per file op.
func FSFor(prefix string) FS {
	if current.Load() == nil {
		return osFS{}
	}
	return injectFS{prefix: prefix, base: osFS{}}
}

// injectFS wraps a base FS, consulting the installed injector before
// every operation. It re-reads the global injector on each call so a
// long-lived handle honors Enable/Disable flips mid-test.
type injectFS struct {
	prefix string
	base   FS
}

func (f injectFS) site(op string) string { return f.prefix + "." + op }

func (f injectFS) ReadFile(name string) ([]byte, error) {
	if err := Check(f.site("read")); err != nil {
		return nil, err
	}
	return f.base.ReadFile(name)
}

func (f injectFS) CreateTemp(dir, pattern string) (File, error) {
	if err := Check(f.site("create")); err != nil {
		return nil, err
	}
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injectFile{File: file, site: f.site("write")}, nil
}

func (f injectFS) Rename(oldpath, newpath string) error {
	if err := Check(f.site("rename")); err != nil {
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

func (f injectFS) Remove(name string) error {
	if err := Check(f.site("remove")); err != nil {
		return err
	}
	return f.base.Remove(name)
}

func (f injectFS) MkdirAll(path string, perm fs.FileMode) error {
	if err := Check(f.site("mkdir")); err != nil {
		return err
	}
	return f.base.MkdirAll(path, perm)
}

func (f injectFS) Stat(name string) (fs.FileInfo, error) {
	if err := Check(f.site("stat")); err != nil {
		return nil, err
	}
	return f.base.Stat(name)
}

func (f injectFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := Check(f.site("readdir")); err != nil {
		return nil, err
	}
	return f.base.ReadDir(name)
}

func (f injectFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	if err := Check(f.site("writefile")); err != nil {
		return err
	}
	return f.base.WriteFile(name, data, perm)
}

// injectFile tears or fails writes according to the injector, modeling
// partial writes followed by a crashed save.
type injectFile struct {
	File
	site string
}

func (f *injectFile) Write(p []byte) (int, error) {
	in := current.Load()
	if in == nil {
		return f.File.Write(p)
	}
	frac, fire := in.partialWrite(f.site)
	if !fire {
		return f.File.Write(p)
	}
	if frac < 0 {
		return 0, Errorf(f.site)
	}
	keep := int(frac * float64(len(p)))
	if keep > 0 {
		if n, err := f.File.Write(p[:keep]); err != nil {
			return n, err
		}
	}
	return keep, Errorf(f.site)
}

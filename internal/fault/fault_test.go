package fault_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

func TestDisabledCheckIsNil(t *testing.T) {
	fault.Disable()
	if fault.Enabled() {
		t.Fatal("injector reported enabled after Disable")
	}
	for i := 0; i < 100; i++ {
		if err := fault.Check("any.site"); err != nil {
			t.Fatalf("disabled Check returned %v", err)
		}
	}
}

func TestErrorRuleFiresAndCounts(t *testing.T) {
	inj := fault.NewInjector(1, fault.Rule{Site: "a.b", Kind: fault.KindError})
	restore := fault.Enable(inj)
	defer restore()

	if err := fault.Check("a.b"); !fault.Injected(err) {
		t.Fatalf("want injected error, got %v", err)
	}
	if err := fault.Check("a.other"); err != nil {
		t.Fatalf("unmatched site got %v", err)
	}
	cov := inj.Coverage()
	if cov["a.b"].Visits != 1 || cov["a.b"].Fires != 1 {
		t.Fatalf("a.b coverage = %+v", cov["a.b"])
	}
	if cov["a.other"].Visits != 1 || cov["a.other"].Fires != 0 {
		t.Fatalf("a.other coverage = %+v", cov["a.other"])
	}
}

func TestPrefixMatchAndLimit(t *testing.T) {
	inj := fault.NewInjector(2, fault.Rule{Site: "s.store.*", Kind: fault.KindError, Limit: 2})
	restore := fault.Enable(inj)
	defer restore()

	got := 0
	for _, site := range []string{"s.store.load", "s.store.save", "s.store.load", "s.cache.get"} {
		if fault.Injected(fault.Check(site)) {
			got++
		}
	}
	if got != 2 {
		t.Fatalf("limit 2 rule fired %d times", got)
	}
}

func TestProbabilisticRuleIsDeterministic(t *testing.T) {
	run := func() []bool {
		inj := fault.NewInjector(42, fault.Rule{Site: "p", Kind: fault.KindError, Prob: 0.5})
		restore := fault.Enable(inj)
		defer restore()
		out := make([]bool, 64)
		for i := range out {
			out[i] = fault.Injected(fault.Check("p"))
		}
		return out
	}
	a, b := run(), run()
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at visit %d", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("prob 0.5 fired %d/%d times", fires, len(a))
	}
}

func TestPanicRule(t *testing.T) {
	inj := fault.NewInjector(3, fault.Rule{Site: "boom", Kind: fault.KindPanic})
	restore := fault.Enable(inj)
	defer restore()

	defer func() {
		r := recover()
		pv, ok := r.(fault.PanicValue)
		if !ok || pv.Site != "boom" {
			t.Fatalf("recovered %v", r)
		}
	}()
	_ = fault.Check("boom")
	t.Fatal("no panic")
}

func TestLatencyRule(t *testing.T) {
	inj := fault.NewInjector(4, fault.Rule{Site: "slow", Kind: fault.KindLatency, Latency: 5 * time.Millisecond})
	restore := fault.Enable(inj)
	defer restore()

	start := time.Now()
	if err := fault.Check("slow"); err != nil {
		t.Fatalf("latency rule returned %v", err)
	}
	if time.Since(start) < 4*time.Millisecond {
		t.Fatalf("latency rule returned too fast (%v)", time.Since(start))
	}
}

func TestFSForPassthroughWhenDisabled(t *testing.T) {
	fault.Disable()
	fs := fault.FSFor("t")
	dir := t.TempDir()
	if err := fs.WriteFile(filepath.Join(dir, "x"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := fs.ReadFile(filepath.Join(dir, "x"))
	if err != nil || string(b) != "hello" {
		t.Fatalf("roundtrip: %q, %v", b, err)
	}
}

func TestFSPartialWrite(t *testing.T) {
	inj := fault.NewInjector(5, fault.Rule{Site: "t.write", Kind: fault.KindPartialWrite})
	restore := fault.Enable(inj)
	defer restore()

	fs := fault.FSFor("t")
	dir := t.TempDir()
	f, err := fs.CreateTemp(dir, "tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1024)
	n, err := f.Write(payload)
	if !fault.Injected(err) {
		t.Fatalf("want torn write, got n=%d err=%v", n, err)
	}
	if n >= len(payload) {
		t.Fatalf("partial write kept all %d bytes", n)
	}
	f.Close()
	st, err := os.Stat(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != int64(n) {
		t.Fatalf("on-disk size %d != reported %d", st.Size(), n)
	}
}

func TestFSErrorSites(t *testing.T) {
	inj := fault.NewInjector(6,
		fault.Rule{Site: "t.read", Kind: fault.KindError},
		fault.Rule{Site: "t.rename", Kind: fault.KindError},
	)
	restore := fault.Enable(inj)
	defer restore()

	fs := fault.FSFor("t")
	if _, err := fs.ReadFile("nope"); !fault.Injected(err) {
		t.Fatalf("read: %v", err)
	}
	if err := fs.Rename("a", "b"); !fault.Injected(err) {
		t.Fatalf("rename: %v", err)
	}
	// Unmatched ops pass through to the real filesystem.
	if _, err := fs.Stat("definitely-missing"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stat passthrough: %v", err)
	}
}

func TestCoverageSummary(t *testing.T) {
	inj := fault.NewInjector(7, fault.Rule{Site: "x", Kind: fault.KindError})
	restore := fault.Enable(inj)
	defer restore()
	_ = fault.Check("x")
	_ = fault.Check("y")
	s := inj.Coverage().Summary()
	if !strings.Contains(s, "x") || !strings.Contains(s, "fires=1") {
		t.Fatalf("summary missing data:\n%s", s)
	}
}

// BenchmarkCheckDisabled documents the zero-overhead claim: with no
// injector installed, Check is one atomic load.
func BenchmarkCheckDisabled(b *testing.B) {
	fault.Disable()
	for i := 0; i < b.N; i++ {
		if err := fault.Check("bench.site"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckEnabledMiss measures an installed injector whose rules
// never match the visited site.
func BenchmarkCheckEnabledMiss(b *testing.B) {
	inj := fault.NewInjector(8, fault.Rule{Site: "other", Kind: fault.KindError})
	restore := fault.Enable(inj)
	defer restore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fault.Check("bench.site")
	}
}

// Package plan is the cost-based strategy planner: the single place
// that turns "what does this query look like and how big/hot is its
// table" into "which strategy and which knobs". It follows the classic
// query-planner / execution-planner split:
//
//   - the query-planner half (AnalyzeAtoms) binds a PaQL analysis
//     against the catalog and classifies the atom mix — linear, AVG,
//     MIN/MAX, disjunctive — via the same lowering the sketch engine
//     uses (internal/translate);
//   - the execution-planner half (Planner.Plan) costs the alternatives
//     (exact MILP vs flat vs hierarchical SketchRefine), sizes τ and
//     tree depth to the table, picks parallelism from size and
//     GOMAXPROCS, decides patch-vs-rebuild from the delta-log fraction,
//     and predicts the tree source from the current cache and persist
//     state — emitting a typed Plan whose every Decision carries a cost
//     estimate and a human-readable reason.
//
// Explicit user knobs always win: they enter as Input.Forced and come
// back out in the Plan marked forced, so EXPLAIN shows exactly which
// choices the user pinned and which the planner made.
//
// The package deliberately does not import internal/core or
// internal/sketch — core consumes plans, so strategies are named by
// strings core parses, and cache/persist state arrives through an
// injected probe. That keeps the planner a pure decision function over
// an Input snapshot, which is what makes the decision matrix testable.
package plan

import (
	"math"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/paql"
	"repro/internal/translate"
)

// Strategy names a plan can choose. They match core.ParseStrategy
// spellings so core can parse them back without importing this package
// in reverse.
const (
	// StrategySolver is the exact MILP over all candidates.
	StrategySolver = "solver"
	// StrategySketch is SketchRefine over a (possibly hierarchical)
	// partition tree.
	StrategySketch = "sketch-refine"
	// StrategyPrunedEnum is exact branch-and-bound enumeration.
	StrategyPrunedEnum = "pruned-enum"
	// StrategyLocalSearch is the greedy + local-search heuristic.
	StrategyLocalSearch = "local-search"
)

// Maintenance values for the patch-vs-rebuild decision.
const (
	// MaintainNone: no writes since the last snapshot — any cached tree
	// is still exact.
	MaintainNone = "none"
	// MaintainPatch: the delta is within budget — patch the stale tree
	// in place instead of rebuilding.
	MaintainPatch = "patch"
	// MaintainRebuild: the delta outgrew the patch budget — rebuild the
	// tree from scratch.
	MaintainRebuild = "rebuild"
)

// Tree-source values: where the sketch expects to get its partition
// tree from, in acquisition order.
const (
	// SourceCache: a warm tree sits in the in-memory LRU.
	SourceCache = "cache"
	// SourceDisk: a persisted tree can be loaded from the store.
	SourceDisk = "disk"
	// SourcePatch: a stale base tree plus delta lineage can be patched.
	SourcePatch = "patch"
	// SourceBuild: nothing reusable — a full offline build.
	SourceBuild = "build"
)

// Bound values: which dual-bound pass certifies the objective interval
// the evaluation returns (internal/bound).
const (
	// BoundRawLP: LP relaxation over the raw candidates — the exact LP
	// relaxation of the query's MILP, the tightest bound an LP gives.
	BoundRawLP = "raw-lp"
	// BoundTreeLP: LP relaxation over the partition-tree leaves, each
	// leaf split into objective-sorted segments (piecewise-linear
	// columns); a handful of variables per leaf keeps the bound pass
	// tiny at any scale.
	BoundTreeLP = "tree-lp"
	// BoundTreeLPTighten: the tree relaxation plus a few rounds of
	// subgradient Lagrangian tightening on the rows the LP leaves tight
	// or violated — what band (BETWEEN/equality) rows need, since the
	// grouped envelope is loosest on paired ≤/≥ rows.
	BoundTreeLPTighten = "tree-lp+tighten"
	// BoundDescend1: the full pipeline — the tightened tree relaxation
	// plus an adaptive one-level descent that re-bounds the
	// worst-contributing leaves as singleton columns when the gap is
	// still too wide. The anytime mode's pick: tightest certificate
	// short of the raw LP.
	BoundDescend1 = "descend-1"
	// BoundMILPDual: the exact solver's own branch-and-bound dual bound
	// (gap 0 when it proves optimality).
	BoundMILPDual = "milp-dual"
	// BoundNone: nothing to bound — no objective, or a strategy with no
	// relaxation to certify against.
	BoundNone = "none"
)

// AtomMix classifies a query's constraint atoms — the query-planner
// half's output.
type AtomMix struct {
	// Linear reports whether constraints and objective are all affine.
	Linear bool `json:"linear"`
	// NonlinearReasons lists the linearity obstructions when not.
	NonlinearReasons []string `json:"nonlinearReasons,omitempty"`
	// SketchOK reports whether the sketch path can run this query.
	SketchOK bool `json:"sketchOK"`
	// SketchErr is the applicability error when it cannot.
	SketchErr string `json:"sketchErr,omitempty"`
	// Branches is the DNF branch count the sketch compiler produced
	// (1 for conjunctive queries, 0 when inapplicable).
	Branches int `json:"branches"`
	// SumCount, Avg and MinMax count the distinct aggregates by family.
	SumCount int `json:"sumCountAtoms"`
	Avg      int `json:"avgAtoms"`
	MinMax   int `json:"minMaxAtoms"`
	// Bands counts band-shaped SUCH THAT atoms — BETWEEN ranges and
	// equality comparisons — which lower to paired ≤/≥ rows the grouped
	// envelope relaxation is loosest on. The bound decision escalates
	// to the tightening stages when they are present.
	Bands int `json:"bandAtoms,omitempty"`
	// Objective reports whether the query optimizes an objective — a
	// feasibility-only query has nothing to bound, so the bound
	// decision keys on this.
	Objective bool `json:"objective,omitempty"`
}

// AnalyzeAtoms binds an analyzed query into an atom mix. sketchErr is
// the sketch engine's applicability verdict for the same query (nil
// when the sketch path can run it); it is injected so this package
// stays independent of internal/sketch.
func AnalyzeAtoms(a *paql.Analysis, sketchErr error) AtomMix {
	m := AtomMix{Linear: a.Linear, NonlinearReasons: a.NonlinearReasons,
		Objective: a.Query != nil && a.Query.Objective != nil}
	if a.Query != nil && a.Query.SuchThat != nil {
		expr.Walk(a.Query.SuchThat, func(e expr.Expr) {
			switch n := e.(type) {
			case *expr.Between:
				m.Bands++
			case *expr.Binary:
				if n.Op == expr.OpEq {
					m.Bands++
				}
			}
		})
	}
	for _, agg := range a.Aggs {
		switch agg.Fn {
		case "AVG":
			m.Avg++
		case "MIN", "MAX":
			m.MinMax++
		default:
			m.SumCount++
		}
	}
	if sketchErr != nil {
		m.SketchErr = sketchErr.Error()
		return m
	}
	m.SketchOK = true
	m.Branches = 1
	if br, _, err := translate.CompileSketch(a, translate.DefaultMaxSketchBranches); err == nil && len(br) > 0 {
		m.Branches = len(br)
	}
	return m
}

// CacheState is the probed cache/persist situation for one candidate
// fingerprint at a specific (τ, depth) key.
type CacheState struct {
	// InCache: an exact tree for the key is in the in-memory LRU.
	InCache bool `json:"inCache"`
	// OnDisk: a persisted tree for the key exists in the store.
	OnDisk bool `json:"onDisk"`
	// Patchable: a base tree plus delta lineage exist, so the stale
	// tree could be patched instead of rebuilt.
	Patchable bool `json:"patchable"`
	// PatchFrac is the lineage delta as a fraction of the candidates
	// (meaningful only when Patchable).
	PatchFrac float64 `json:"patchFrac,omitempty"`
	// ProbeFailed: the probe itself failed, so the state above is
	// unknown and the planner assumes cold. Plans are predictions — a
	// failed probe degrades the prediction, never the query.
	ProbeFailed bool `json:"probeFailed,omitempty"`
}

// Forced carries the knobs the user pinned explicitly; zero values
// (nil for Incremental) mean "planner's choice".
type Forced struct {
	// Strategy is the explicit strategy name, or "".
	Strategy string `json:"strategy,omitempty"`
	// Tau is the explicit leaf-size bound (resolved from either a
	// partition-size or partition-count flag), or 0.
	Tau int `json:"tau,omitempty"`
	// Depth is the explicit tree depth, or 0.
	Depth int `json:"depth,omitempty"`
	// Parallelism is the explicit worker bound, or 0.
	Parallelism int `json:"parallelism,omitempty"`
	// Incremental is the explicit patch-vs-rebuild choice, or nil.
	Incremental *bool `json:"incremental,omitempty"`
	// GapTolerance is the explicit anytime gap tolerance (fractional,
	// e.g. 0.05 = stop once provably within 5% of optimal), or 0.
	GapTolerance float64 `json:"gapTolerance,omitempty"`
}

// Input is everything the execution planner looks at — a snapshot, so
// planning is a pure function and the decision matrix can enumerate
// cells without a live engine.
type Input struct {
	// Query is the raw query text (display only).
	Query string `json:"query,omitempty"`
	// Table is the catalog snapshot for the queried table.
	Table catalog.TableStats `json:"table"`
	// N is the candidate count after the WHERE filter.
	N int `json:"candidates"`
	// MaxMult is the per-tuple multiplicity bound (≤0 = unbounded).
	MaxMult int `json:"maxMult"`
	// Mix is the query-planner half's atom classification.
	Mix AtomMix `json:"atomMix"`
	// Procs is the scheduler's GOMAXPROCS.
	Procs int `json:"procs"`
	// Forced carries explicitly pinned knobs.
	Forced Forced `json:"forced"`
	// Probe reports the cache/persist state for a (τ, depth) key; nil
	// means assume cold.
	Probe func(tau, depth int) CacheState `json:"-"`
}

// Alternative is a costed option the planner considered and rejected.
type Alternative struct {
	// Value is the option's value.
	Value string `json:"value"`
	// Cost is its estimate in the same abstract units as Decision.Cost.
	Cost float64 `json:"cost"`
}

// Decision is one planner choice with its justification.
type Decision struct {
	// Name identifies the decision: strategy, tau, depth, parallelism,
	// maintenance, tree-source.
	Name string `json:"name"`
	// Value is the chosen value, rendered as a string.
	Value string `json:"value"`
	// Forced reports that the user pinned this value explicitly.
	Forced bool `json:"forced,omitempty"`
	// Cost is the estimate for the chosen value in abstract work units
	// (0 when the decision is not cost-driven).
	Cost float64 `json:"cost,omitempty"`
	// Reason explains the choice in one human-readable sentence.
	Reason string `json:"reason"`
	// Alternatives lists the costed options not taken.
	Alternatives []Alternative `json:"alternatives,omitempty"`
}

// Plan is the planner's typed output: the chosen strategy and knobs
// plus the per-decision trail EXPLAIN renders.
type Plan struct {
	// Query echoes the planned query text.
	Query string `json:"query,omitempty"`
	// Table echoes the catalog snapshot the plan was made against.
	Table catalog.TableStats `json:"table"`
	// Candidates is the candidate count after the WHERE filter.
	Candidates int `json:"candidates"`
	// Mix is the atom classification.
	Mix AtomMix `json:"atomMix"`
	// Strategy is the chosen strategy name (core.ParseStrategy spelling).
	Strategy string `json:"strategy"`
	// Tau, Depth and Parallelism are the planned sketch knobs (set only
	// when the plan takes the sketch path or the knob was forced).
	Tau         int `json:"tau,omitempty"`
	Depth       int `json:"depth,omitempty"`
	Parallelism int `json:"parallelism,omitempty"`
	// Maintenance is the patch-vs-rebuild choice.
	Maintenance string `json:"maintenance,omitempty"`
	// Incremental is Maintenance folded to the engine's boolean knob:
	// false only when the planner wants a rebuild.
	Incremental bool `json:"incremental"`
	// TreeSource predicts where the partition tree will come from.
	TreeSource string `json:"treeSource,omitempty"`
	// MemoryBytes is the predicted peak working set of the chosen
	// strategy (CostModel.MemoryEstimate); engines gate admission on it
	// against a per-query memory budget.
	MemoryBytes int64 `json:"memoryBytes,omitempty"`
	// Bound names the dual-bound pass the evaluation will run to
	// certify its objective interval (BoundRawLP, BoundTreeLP,
	// BoundTreeLPTighten, BoundDescend1, BoundMILPDual, or BoundNone).
	// Sketch evaluations feed it to the bound pipeline as the deepest
	// stage to run.
	Bound string `json:"bound,omitempty"`
	// Decisions is the ordered decision trail.
	Decisions []Decision `json:"decisions"`
}

// Decision returns the named decision, or nil.
func (p *Plan) Decision(name string) *Decision {
	for i := range p.Decisions {
		if p.Decisions[i].Name == name {
			return &p.Decisions[i]
		}
	}
	return nil
}

// CostModel holds the planner's thresholds and cost formulas. Costs are
// abstract work units (roughly candidate-cell touches) — only their
// ratios matter.
type CostModel struct {
	// ExactEnumMax is the largest candidate count worth exact
	// enumeration for non-linear queries.
	ExactEnumMax int
	// SketchThreshold is the candidate count where an exact MILP stops
	// being "affordable" and SketchRefine takes over (the budget below
	// derives from it).
	SketchThreshold int
	// DefaultTau and LargeTau are the leaf-size bounds for tables at or
	// below / above LargeTauRows candidates.
	DefaultTau   int
	LargeTau     int
	LargeTauRows int
	// MaxTopVars caps the top-level sketch MILP size; depth grows until
	// the root level fits under it.
	MaxTopVars int
	// MaxDepth caps the tree depth (mirrors the sketch engine's bound).
	MaxDepth int
	// MinMaxDepthCap caps depth for queries with MIN/MAX atoms: the
	// envelope relaxation loosens per level, so deep trees cost
	// feasibility more than they save solve time.
	MinMaxDepthCap int
	// ParallelMinRows is the candidate count below which fan-out
	// overhead beats the win (mirrors the builder's serial cutoff).
	ParallelMinRows int
	// PatchMaxFrac is the largest delta fraction worth patching a stale
	// tree for; past it the planner schedules a rebuild.
	PatchMaxFrac float64
}

// DefaultCostModel returns the stock model. The thresholds previously
// hard-coded in core.chooseStrategy (22 and 4096) live here now.
func DefaultCostModel() CostModel {
	return CostModel{
		ExactEnumMax:    22,
		SketchThreshold: 4096,
		DefaultTau:      64,
		LargeTau:        256,
		LargeTauRows:    100_000,
		MaxTopVars:      64,
		MaxDepth:        8,
		MinMaxDepthCap:  2,
		ParallelMinRows: 2048,
		PatchMaxFrac:    0.25,
	}
}

// SolverCost estimates an exact MILP over n candidates: n·√n, the
// empirical super-linear growth of the bounded LP-dive solver.
func (c CostModel) SolverCost(n int) float64 {
	f := float64(n)
	return f * math.Sqrt(f)
}

// SketchCost estimates SketchRefine over n candidates with leaf bound
// tau and the given DNF branch count: per branch one descent over the
// leaves plus a refine pass bounded by n, and — unless a warm tree
// exists — an offline build at n·(log₂(leaves)+1).
func (c CostModel) SketchCost(n, tau, branches int, warm bool) float64 {
	if tau < 1 {
		tau = 1
	}
	if branches < 1 {
		branches = 1
	}
	leaves := float64((n + tau - 1) / tau)
	if leaves < 1 {
		leaves = 1
	}
	cost := float64(branches) * (leaves + float64(n))
	if !warm {
		cost += float64(n) * (math.Log2(leaves) + 1)
	}
	return cost
}

// MemoryEstimate predicts the peak working set a strategy allocates on
// top of the candidate rows, in bytes. The formulas are deliberately
// rough — order-of-magnitude allocation models, not measurements — but
// they scale with the same variables the real allocations do, which is
// what admission control needs:
//
//   - solver: one dense simplex tableau of (atoms+2)·n float64 cells
//     plus branch-and-bound node state (~48 bytes/candidate of bound
//     vectors and incumbents);
//   - sketch-refine: the partition tree stores every tuple index once
//     per level (8·n·depth) plus representatives/envelopes (~16n), and
//     each residual sub-MILP is bounded by the leaf size (negligible
//     next to the tree at scale);
//   - enumeration and local search: multiplicity vectors and bookkeeping
//     linear in n (~32 bytes/candidate).
//
// Engines compare the estimate against Options.MemoryBudget before
// dispatch and refuse with a typed budget error instead of thrashing.
func (c CostModel) MemoryEstimate(strategy string, n, tau, depth, atoms int) int64 {
	if n < 1 {
		return 0
	}
	f := int64(n)
	switch strategy {
	case StrategySolver:
		return f*int64(atoms+2)*16 + f*48
	case StrategySketch:
		if depth < 1 {
			depth = 1
		}
		return f*int64(depth)*8 + f*16
	default: // pruned-enum, brute-force, local-search
		return f * 32
	}
}

// EnumCost estimates exact branch-and-bound enumeration: exponential in
// n, saturating so the estimate stays finite.
func (c CostModel) EnumCost(n int) float64 {
	if n > 40 {
		n = 40
	}
	return math.Exp2(float64(n))
}

// LocalSearchCost estimates the greedy + local-search heuristic:
// linear with a constant for the repair sweeps.
func (c CostModel) LocalSearchCost(n int) float64 { return float64(n) * 64 }

// ExactBudget is the largest solver cost still considered affordable:
// below it the planner prefers the exact answer even when the sketch
// estimate is lower, because exactness is worth the margin. It derives
// from SketchThreshold so the classic 4096-candidate switchover falls
// out of the model.
func (c CostModel) ExactBudget() float64 { return c.SolverCost(c.SketchThreshold) }

// Planner turns an Input into a Plan. The zero value is not usable;
// call NewPlanner, then override Cost fields if desired.
type Planner struct {
	// Cost is the model driving every threshold below.
	Cost CostModel
}

// NewPlanner returns a planner with the default cost model.
func NewPlanner() *Planner { return &Planner{Cost: DefaultCostModel()} }

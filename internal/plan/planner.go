package plan

import (
	"fmt"
	"math"
	"strconv"
)

// Plan runs the execution planner over one input snapshot and returns
// the decision trail. It is a pure function of the input: same
// snapshot, same plan.
func (pl *Planner) Plan(in Input) *Plan {
	n := in.N
	procs := in.Procs
	if procs < 1 {
		procs = 1
	}
	p := &Plan{
		Query:      in.Query,
		Table:      in.Table,
		Candidates: n,
		Mix:        in.Mix,
	}

	// Knobs first: τ and depth are functions of size and atom mix
	// alone, and the cache key the probe needs depends on them.
	tau := pl.pickTau(p, in)
	depth := pl.pickDepth(p, in, tau)
	par := pl.pickParallelism(p, in, procs)

	var cs CacheState
	if in.Probe != nil {
		cs = in.Probe(tau, depth)
	}

	strat := pl.pickStrategy(p, in, tau, cs)
	p.Strategy = strat

	sketchy := strat == StrategySketch
	if sketchy || in.Forced.Tau > 0 {
		p.Tau = tau
	}
	if sketchy || in.Forced.Depth > 0 {
		p.Depth = depth
	}
	if sketchy || in.Forced.Parallelism > 0 {
		p.Parallelism = par
	}
	if sketchy {
		pl.pickMaintenance(p, in)
		pl.pickTreeSource(p, in, cs)
	} else {
		p.Incremental = true
		// The knob decisions explain values that will not be used; keep
		// only forced ones so EXPLAIN for a solver plan stays honest.
		kept := p.Decisions[:0]
		for _, d := range p.Decisions {
			if d.Name == "strategy" || d.Forced {
				kept = append(kept, d)
			}
		}
		p.Decisions = kept
	}

	// Memory is estimated for whatever strategy won (forced ones too):
	// engines gate admission on it, so every plan must carry it.
	pl.pickMemory(p, in, strat, tau, depth)

	// The bound decision also runs after the filter: every strategy's
	// plan says how (or whether) its objective interval gets certified.
	pl.pickBound(p, in, strat, tau)

	// The strategy decision reads best first; knob decisions follow in
	// pick order.
	orderDecisions(p)
	return p
}

// pickMemory records the chosen strategy's predicted peak working set.
// It runs after the solver-plan decision filter so the estimate always
// survives into the trail — admission control reads it off the plan.
func (pl *Planner) pickMemory(p *Plan, in Input, strat string, tau, depth int) {
	atoms := in.Mix.SumCount + in.Mix.Avg + in.Mix.MinMax
	est := pl.Cost.MemoryEstimate(strat, in.N, tau, depth, atoms)
	p.MemoryBytes = est
	// Cost stays zero: Decision.Cost is abstract work units and the
	// trail would render bytes as a solver-cost lookalike.
	p.Decisions = append(p.Decisions, Decision{
		Name:  "memory",
		Value: formatBytes(est),
		Reason: fmt.Sprintf("predicted peak working set for %s over %d candidates (%d atoms)",
			strat, in.N, atoms),
	})
}

// pickBound records which dual-bound pass will certify the objective
// interval (internal/bound): the exact solver proves its own
// branch-and-bound bound; the sketch path runs the staged bound
// pipeline per DNF branch — the exact LP relaxation over the raw
// candidates while they are few, the segmented tree relaxation beyond
// that, escalated to Lagrangian tightening when band (BETWEEN or
// equality) rows are present and to the adaptive one-level descent
// when the anytime mode needs the tightest certificate it can get.
// Strategies without a relaxation leave the gap unproven. The cost
// estimate is the relaxation's variable count times the branch count
// per solve: tightening re-solves the inner LP once per round, and the
// descent adds one refined solve over the extra singleton columns — in
// every case a rounding error next to the descent itself.
func (pl *Planner) pickBound(p *Plan, in Input, strat string, tau int) {
	cm := pl.Cost
	d := Decision{Name: "bound"}
	branches := in.Mix.Branches
	if branches < 1 {
		branches = 1
	}
	leaves := (in.N + tau - 1) / tau
	// One pipeline stage per rung; costs model LP solves: the base tree
	// LP, +1 solve per tightening round, +1 refined solve with the
	// descent's extra columns.
	treeC := float64(leaves * branches)
	tightenC := treeC * float64(1+boundTightenRounds)
	descendC := tightenC + float64((leaves+boundDescendVars)*branches)
	switch {
	case !in.Mix.Objective:
		d.Value = BoundNone
		d.Reason = "no objective: feasibility needs no dual bound"
	case strat == StrategySolver || strat == StrategyPrunedEnum:
		d.Value = BoundMILPDual
		d.Reason = "exact strategy: the search proves its own dual bound (gap 0 at optimality)"
	case strat != StrategySketch:
		d.Value = BoundNone
		d.Reason = fmt.Sprintf("%s has no relaxation to certify against: gap stays unproven", strat)
	case in.N <= cm.SketchThreshold:
		d.Value = BoundRawLP
		d.Cost = float64(in.N * branches)
		d.Reason = fmt.Sprintf("%d candidates ≤ %d: the exact LP relaxation is affordable and tightest", in.N, cm.SketchThreshold)
	case in.Forced.GapTolerance > 0:
		d.Value = BoundDescend1
		d.Cost = descendC
		d.Reason = fmt.Sprintf("anytime mode over ~%d leaves: full pipeline (segments, %d Lagrangian rounds, one-level descent) buys the tightest certificate", leaves, boundTightenRounds)
		d.Alternatives = []Alternative{{Value: BoundTreeLPTighten, Cost: tightenC}, {Value: BoundTreeLP, Cost: treeC}}
	case in.Mix.Bands > 0:
		d.Value = BoundTreeLPTighten
		d.Cost = tightenC
		d.Reason = fmt.Sprintf("%d band atom(s) (BETWEEN/equality): %d Lagrangian rounds tighten the paired-row envelopes over ~%d leaves", in.Mix.Bands, boundTightenRounds, leaves)
		d.Alternatives = []Alternative{{Value: BoundTreeLP, Cost: treeC}, {Value: BoundDescend1, Cost: descendC}}
	default:
		d.Value = BoundTreeLP
		d.Cost = treeC
		d.Reason = fmt.Sprintf("LP relaxation over ~%d partition leaves (objective-sorted segments), %d branch(es); no band atoms to tighten", leaves, branches)
		d.Alternatives = []Alternative{{Value: BoundTreeLPTighten, Cost: tightenC}}
	}
	if in.Forced.GapTolerance > 0 && d.Value != BoundNone {
		d.Forced = true
		d.Reason += fmt.Sprintf("; anytime mode stops once provably within %.1f%% of optimal", 100*in.Forced.GapTolerance)
	}
	p.Bound = d.Value
	p.Decisions = append(p.Decisions, d)
}

// boundTightenRounds and boundDescendVars mirror the sketch engine's
// pipeline budgets (bound.DefaultTightenRounds, its descent variable
// budget) for costing only — plan deliberately imports neither package.
const (
	boundTightenRounds = 4
	boundDescendVars   = 4096
)

// formatBytes renders a byte count with a binary-ish unit for the
// decision trail (the same rendering lifecycle's budget errors use).
func formatBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

// orderDecisions sorts the trail into display order.
func orderDecisions(p *Plan) {
	rank := map[string]int{
		"strategy": 0, "tau": 1, "depth": 2, "parallelism": 3,
		"maintenance": 4, "tree-source": 5, "bound": 6, "memory": 7,
	}
	out := make([]Decision, 0, len(p.Decisions))
	for r := 0; r < len(rank); r++ {
		for _, d := range p.Decisions {
			if rank[d.Name] == r {
				out = append(out, d)
			}
		}
	}
	p.Decisions = out
}

// pickTau chooses the leaf-size bound: the default for ordinary tables,
// quadrupled past LargeTauRows so leaf count — and with it build and
// descent cost — stays bounded as tables grow.
func (pl *Planner) pickTau(p *Plan, in Input) int {
	cm := pl.Cost
	d := Decision{Name: "tau"}
	if in.Forced.Tau > 0 {
		d.Value, d.Forced = strconv.Itoa(in.Forced.Tau), true
		d.Reason = "explicit partition-size/partitions flag"
		p.Decisions = append(p.Decisions, d)
		return in.Forced.Tau
	}
	tau := cm.DefaultTau
	d.Reason = fmt.Sprintf("%d candidates ≤ %d: default leaf size", in.N, cm.LargeTauRows)
	if in.N > cm.LargeTauRows {
		tau = cm.LargeTau
		d.Reason = fmt.Sprintf("%d candidates > %d: larger leaves bound the leaf count", in.N, cm.LargeTauRows)
	}
	d.Value = strconv.Itoa(tau)
	p.Decisions = append(p.Decisions, d)
	return tau
}

// pickDepth sizes the hierarchy so the root level fits under MaxTopVars
// variables: with L leaves the tree needs ⌈log_MaxTopVars(L)⌉ levels.
// MIN/MAX atoms cap depth at MinMaxDepthCap — envelope relaxation
// loosens per level, and feasibility there is worth more than solve
// time.
func (pl *Planner) pickDepth(p *Plan, in Input, tau int) int {
	cm := pl.Cost
	d := Decision{Name: "depth"}
	if in.Forced.Depth > 0 {
		d.Value, d.Forced = strconv.Itoa(in.Forced.Depth), true
		d.Reason = "explicit depth flag"
		p.Decisions = append(p.Decisions, d)
		return in.Forced.Depth
	}
	leaves := (in.N + tau - 1) / tau
	if leaves < 1 {
		leaves = 1
	}
	depth := 1
	if leaves > cm.MaxTopVars {
		depth = int(math.Ceil(math.Log(float64(leaves)) / math.Log(float64(cm.MaxTopVars))))
		if depth > cm.MaxDepth {
			depth = cm.MaxDepth
		}
	}
	d.Reason = fmt.Sprintf("%d leaves fit a single MILP of ≤ %d vars: flat", leaves, cm.MaxTopVars)
	if depth > 1 {
		d.Reason = fmt.Sprintf("%d leaves > %d top-level vars: %d levels keep the root small", leaves, cm.MaxTopVars, depth)
	}
	if in.Mix.MinMax > 0 && depth > cm.MinMaxDepthCap {
		depth = cm.MinMaxDepthCap
		d.Reason = fmt.Sprintf("%d leaves, but %d MIN/MAX atom(s): depth capped at %d to keep envelopes tight", leaves, in.Mix.MinMax, depth)
	}
	d.Value = strconv.Itoa(depth)
	p.Decisions = append(p.Decisions, d)
	return depth
}

// pickParallelism fans the build and refine waves across all procs once
// the table clears the builder's serial cutoff; below it goroutine
// overhead eats the win.
func (pl *Planner) pickParallelism(p *Plan, in Input, procs int) int {
	cm := pl.Cost
	d := Decision{Name: "parallelism"}
	if in.Forced.Parallelism > 0 {
		d.Value, d.Forced = strconv.Itoa(in.Forced.Parallelism), true
		d.Reason = "explicit parallelism flag"
		p.Decisions = append(p.Decisions, d)
		return in.Forced.Parallelism
	}
	par := 1
	d.Reason = fmt.Sprintf("%d candidates < %d: serial avoids fan-out overhead", in.N, cm.ParallelMinRows)
	if in.N >= cm.ParallelMinRows {
		par = procs
		d.Reason = fmt.Sprintf("%d candidates ≥ %d: fan out across %d workers", in.N, cm.ParallelMinRows, procs)
	}
	d.Value = strconv.Itoa(par)
	p.Decisions = append(p.Decisions, d)
	return par
}

// pickStrategy is the cost comparison at the heart of the planner.
// Non-linear queries can only enumerate or local-search; linear ones
// weigh the exact MILP against SketchRefine — exact wins while its
// estimate stays under the affordability budget, the cheaper of the two
// wins beyond it.
func (pl *Planner) pickStrategy(p *Plan, in Input, tau int, cs CacheState) string {
	cm := pl.Cost
	n := in.N
	d := Decision{Name: "strategy"}
	if in.Forced.Strategy != "" {
		d.Value, d.Forced = in.Forced.Strategy, true
		d.Reason = "explicit strategy flag"
		p.Decisions = append(p.Decisions, d)
		return in.Forced.Strategy
	}
	if !in.Mix.Linear {
		enumC, localC := cm.EnumCost(n), cm.LocalSearchCost(n)
		if n <= cm.ExactEnumMax && in.MaxMult > 0 {
			d.Value, d.Cost = StrategyPrunedEnum, enumC
			d.Reason = fmt.Sprintf("non-linear query, %d candidates ≤ %d: exact pruned enumeration is affordable", n, cm.ExactEnumMax)
			d.Alternatives = []Alternative{{Value: StrategyLocalSearch, Cost: localC}}
		} else {
			d.Value, d.Cost = StrategyLocalSearch, localC
			why := fmt.Sprintf("%d candidates > %d", n, cm.ExactEnumMax)
			if in.MaxMult <= 0 {
				why = "unbounded multiplicity"
			}
			d.Reason = fmt.Sprintf("non-linear query (%s): local search is the only tractable option", why)
			d.Alternatives = []Alternative{{Value: StrategyPrunedEnum, Cost: enumC}}
		}
		p.Decisions = append(p.Decisions, d)
		return d.Value
	}
	solverC := cm.SolverCost(n)
	if !in.Mix.SketchOK {
		d.Value, d.Cost = StrategySolver, solverC
		d.Reason = fmt.Sprintf("linear query but sketch inapplicable (%s): exact MILP", in.Mix.SketchErr)
		p.Decisions = append(p.Decisions, d)
		return StrategySolver
	}
	warm := cs.InCache || cs.OnDisk || cs.Patchable
	sketchC := cm.SketchCost(n, tau, in.Mix.Branches, warm)
	if solverC <= cm.ExactBudget() {
		d.Value, d.Cost = StrategySolver, solverC
		d.Reason = fmt.Sprintf("linear query, %d candidates ≤ %d: exact MILP is affordable", n, cm.SketchThreshold)
		d.Alternatives = []Alternative{{Value: StrategySketch, Cost: sketchC}}
		p.Decisions = append(p.Decisions, d)
		return StrategySolver
	}
	if sketchC < solverC {
		d.Value, d.Cost = StrategySketch, sketchC
		why := "cold tree priced in"
		if warm {
			why = "warm tree available"
		}
		d.Reason = fmt.Sprintf("linear query, %d candidates > %d: partitioned sketch is cheapest (%s)", n, cm.SketchThreshold, why)
		d.Alternatives = []Alternative{{Value: StrategySolver, Cost: solverC}}
		p.Decisions = append(p.Decisions, d)
		return StrategySketch
	}
	d.Value, d.Cost = StrategySolver, solverC
	d.Reason = fmt.Sprintf("linear query: sketch estimate exceeds the exact MILP (%d DNF branches)", in.Mix.Branches)
	d.Alternatives = []Alternative{{Value: StrategySketch, Cost: sketchC}}
	p.Decisions = append(p.Decisions, d)
	return StrategySolver
}

// pickMaintenance decides patch-vs-rebuild from the catalog's delta
// fraction: nothing to do on read-only tables, patch while the delta is
// within budget, rebuild past it.
func (pl *Planner) pickMaintenance(p *Plan, in Input) {
	cm := pl.Cost
	d := Decision{Name: "maintenance"}
	if in.Forced.Incremental != nil {
		d.Forced = true
		if *in.Forced.Incremental {
			d.Value = MaintainPatch
		} else {
			d.Value = MaintainRebuild
		}
		d.Reason = "explicit incremental flag"
	} else {
		frac := in.Table.DeltaFrac
		switch {
		case in.Table.DeltaRows == 0 && in.Table.WriteRate == 0:
			d.Value = MaintainNone
			d.Reason = "table looks read-only: cached trees stay exact"
		case frac <= cm.PatchMaxFrac:
			d.Value = MaintainPatch
			d.Reason = fmt.Sprintf("delta %.1f%% of the table ≤ %.0f%% budget (%.2f writes/s): patch stale trees in place",
				100*frac, 100*cm.PatchMaxFrac, in.Table.WriteRate)
		default:
			d.Value = MaintainRebuild
			d.Reason = fmt.Sprintf("delta %.1f%% of the table > %.0f%% budget: rebuilding beats patching",
				100*frac, 100*cm.PatchMaxFrac)
		}
	}
	p.Maintenance = d.Value
	p.Incremental = d.Value != MaintainRebuild
	p.Decisions = append(p.Decisions, d)
}

// pickTreeSource predicts where the partition tree will come from,
// mirroring the engine's acquisition order: memory cache, then the
// on-disk store, then patching a stale base, then a full build.
func (pl *Planner) pickTreeSource(p *Plan, in Input, cs CacheState) {
	d := Decision{Name: "tree-source"}
	switch {
	case cs.InCache:
		d.Value = SourceCache
		d.Reason = "exact tree for this fingerprint is warm in the in-memory LRU"
	case cs.OnDisk:
		d.Value = SourceDisk
		d.Reason = "persisted tree for this fingerprint can be loaded from the store"
	case cs.Patchable && p.Incremental:
		d.Value = SourcePatch
		d.Reason = fmt.Sprintf("stale base tree plus write lineage (delta %.1f%% of candidates): patch instead of rebuild", 100*cs.PatchFrac)
	case cs.ProbeFailed:
		d.Value = SourceBuild
		d.Reason = "cache probe failed; assuming cold and planning a full offline build"
	default:
		d.Value = SourceBuild
		d.Reason = "no cached, persisted, or patchable tree: full offline build"
	}
	p.TreeSource = d.Value
	p.Decisions = append(p.Decisions, d)
}

package plan

import (
	"fmt"
	"strings"
)

// Explain renders the plan as the tree EXPLAIN prints: a header with
// the query, table statistics and atom mix, then one branch per
// decision with its value, cost estimate, forced marker, reason, and
// rejected alternatives.
func (p *Plan) Explain() string {
	var b strings.Builder
	q := collapse(p.Query)
	if q != "" {
		fmt.Fprintf(&b, "plan for: %s\n", q)
	} else {
		b.WriteString("plan\n")
	}
	fmt.Fprintf(&b, "table %s: %d rows, %d attrs, %.2f writes/s, delta %.1f%%\n",
		p.Table.Table, p.Table.Rows, len(p.Table.Attrs), p.Table.WriteRate, 100*p.Table.DeltaFrac)
	fmt.Fprintf(&b, "atoms: %s\n", p.Mix.describe())
	for i, d := range p.Decisions {
		branch, cont := "├─", "│ "
		if i == len(p.Decisions)-1 {
			branch, cont = "└─", "  "
		}
		forced := ""
		if d.Forced {
			forced = "  [forced]"
		}
		cost := ""
		if d.Cost > 0 {
			cost = fmt.Sprintf("  [cost ≈ %.3g]", d.Cost)
		}
		fmt.Fprintf(&b, "%s %s = %s%s%s\n", branch, d.Name, d.Value, cost, forced)
		fmt.Fprintf(&b, "%s     %s\n", cont, d.Reason)
		if len(d.Alternatives) > 0 {
			alts := make([]string, len(d.Alternatives))
			for j, a := range d.Alternatives {
				alts[j] = fmt.Sprintf("%s ≈ %.3g", a.Value, a.Cost)
			}
			fmt.Fprintf(&b, "%s     rejected: %s\n", cont, strings.Join(alts, ", "))
		}
	}
	return b.String()
}

// describe renders the atom mix one-liner for the EXPLAIN header.
func (m AtomMix) describe() string {
	var parts []string
	if m.SumCount > 0 {
		parts = append(parts, fmt.Sprintf("%d sum/count", m.SumCount))
	}
	if m.Avg > 0 {
		parts = append(parts, fmt.Sprintf("%d avg", m.Avg))
	}
	if m.MinMax > 0 {
		parts = append(parts, fmt.Sprintf("%d min/max", m.MinMax))
	}
	if len(parts) == 0 {
		parts = append(parts, "no aggregates")
	}
	kind := "linear"
	if !m.Linear {
		kind = fmt.Sprintf("non-linear (%s)", strings.Join(m.NonlinearReasons, "; "))
	}
	s := fmt.Sprintf("%s; %s", kind, strings.Join(parts, ", "))
	switch {
	case m.SketchOK && m.Branches > 1:
		s += fmt.Sprintf("; disjunctive (%d DNF branches)", m.Branches)
	case m.SketchOK:
		s += "; 1 branch"
	default:
		s += fmt.Sprintf("; sketch inapplicable (%s)", m.SketchErr)
	}
	return s
}

// collapse folds runs of whitespace (including newlines) into single
// spaces so a multi-line query prints as one EXPLAIN header line.
func collapse(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

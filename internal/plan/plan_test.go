package plan

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/paql"
	"repro/internal/schema"
)

func linearMix() AtomMix {
	return AtomMix{Linear: true, SketchOK: true, Branches: 1, SumCount: 2, Objective: true}
}

func baseInput(n int) Input {
	return Input{
		Query:   "SELECT PACKAGE(R) FROM t R SUCH THAT SUM(v) <= 10 MAXIMIZE SUM(v)",
		Table:   catalog.TableStats{Table: "t", Rows: n},
		N:       n,
		MaxMult: 1,
		Mix:     linearMix(),
		Procs:   8,
	}
}

// TestDecisionMatrix is the satellite's size × atom-mix × write-rate ×
// cache-state matrix: every input dimension must flip at least one
// decision relative to its row's neighbor.
func TestDecisionMatrix(t *testing.T) {
	pl := NewPlanner()
	cases := []struct {
		name string
		in   Input
		want map[string]string // decision name → value
	}{
		// --- size axis ---
		{"size/small-linear", baseInput(100),
			map[string]string{"strategy": StrategySolver}},
		{"size/large-linear", baseInput(100_000),
			map[string]string{"strategy": StrategySketch, "tau": "64", "depth": "2", "parallelism": "8"}},
		{"size/huge-linear", baseInput(1_000_000),
			map[string]string{"strategy": StrategySketch, "tau": "256", "depth": "2"}},
		{"size/borderline-serial", func() Input {
			in := baseInput(5000)
			return in
		}(), map[string]string{"strategy": StrategySketch, "depth": "2", "parallelism": "8"}},
		{"size/tiny-parallelism", func() Input {
			in := baseInput(100)
			in.Forced.Strategy = StrategySketch // pin sketch so knob decisions surface
			return in
		}(), map[string]string{"parallelism": "1", "depth": "1"}},

		// --- atom-mix axis ---
		{"mix/nonlinear-small", func() Input {
			in := baseInput(10)
			in.Mix = AtomMix{Linear: false, NonlinearReasons: []string{"objective multiplies aggregates"}}
			return in
		}(), map[string]string{"strategy": StrategyPrunedEnum}},
		{"mix/nonlinear-large", func() Input {
			in := baseInput(1000)
			in.Mix = AtomMix{Linear: false, NonlinearReasons: []string{"objective multiplies aggregates"}}
			return in
		}(), map[string]string{"strategy": StrategyLocalSearch}},
		{"mix/nonlinear-unbounded", func() Input {
			in := baseInput(10)
			in.MaxMult = 0
			in.Mix = AtomMix{Linear: false}
			return in
		}(), map[string]string{"strategy": StrategyLocalSearch}},
		{"mix/sketch-inapplicable", func() Input {
			in := baseInput(100_000)
			in.Mix.SketchOK = false
			in.Mix.SketchErr = "subquery atom"
			return in
		}(), map[string]string{"strategy": StrategySolver}},
		{"mix/minmax-caps-depth", func() Input {
			in := baseInput(3_000_000) // τ=256 → 11719 leaves → depth 3 if unconstrained
			in.Mix.MinMax = 1
			return in
		}(), map[string]string{"strategy": StrategySketch, "depth": "2"}},
		{"mix/linear-deep", func() Input {
			in := baseInput(3_000_000)
			return in
		}(), map[string]string{"depth": "3"}},

		// --- write-rate axis ---
		{"writes/read-only", func() Input {
			in := baseInput(100_000)
			return in
		}(), map[string]string{"maintenance": MaintainNone}},
		{"writes/modest", func() Input {
			in := baseInput(100_000)
			in.Table.WriteRate = 2.5
			in.Table.DeltaRows = 1000
			in.Table.DeltaFrac = 0.01
			return in
		}(), map[string]string{"maintenance": MaintainPatch}},
		{"writes/heavy", func() Input {
			in := baseInput(100_000)
			in.Table.WriteRate = 50
			in.Table.DeltaRows = 40_000
			in.Table.DeltaFrac = 0.4
			return in
		}(), map[string]string{"maintenance": MaintainRebuild}},

		// --- cache-state axis ---
		{"cache/cold", func() Input {
			in := baseInput(100_000)
			return in
		}(), map[string]string{"tree-source": SourceBuild}},
		{"cache/warm-memory", func() Input {
			in := baseInput(100_000)
			in.Probe = func(tau, depth int) CacheState { return CacheState{InCache: true} }
			return in
		}(), map[string]string{"tree-source": SourceCache}},
		{"cache/on-disk", func() Input {
			in := baseInput(100_000)
			in.Probe = func(tau, depth int) CacheState { return CacheState{OnDisk: true} }
			return in
		}(), map[string]string{"tree-source": SourceDisk}},
		{"cache/patchable", func() Input {
			in := baseInput(100_000)
			in.Table.WriteRate = 1
			in.Table.DeltaRows = 100
			in.Table.DeltaFrac = 0.001
			in.Probe = func(tau, depth int) CacheState {
				return CacheState{Patchable: true, PatchFrac: 0.001}
			}
			return in
		}(), map[string]string{"tree-source": SourcePatch, "maintenance": MaintainPatch}},
		{"cache/patchable-but-rebuilding", func() Input {
			in := baseInput(100_000)
			in.Table.WriteRate = 10
			in.Table.DeltaRows = 50_000
			in.Table.DeltaFrac = 0.5
			in.Probe = func(tau, depth int) CacheState {
				return CacheState{Patchable: true, PatchFrac: 0.5}
			}
			return in
		}(), map[string]string{"tree-source": SourceBuild, "maintenance": MaintainRebuild}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := pl.Plan(tc.in)
			for name, want := range tc.want {
				d := p.Decision(name)
				if d == nil {
					t.Fatalf("decision %q missing; plan:\n%s", name, p.Explain())
				}
				if d.Value != want {
					t.Fatalf("decision %q = %q, want %q; plan:\n%s", name, d.Value, want, p.Explain())
				}
				if d.Reason == "" {
					t.Fatalf("decision %q has no reason", name)
				}
			}
		})
	}
}

// TestEachInputChangesADecision pins the acceptance criterion directly:
// flipping any one input dimension of a reference cell changes at
// least one decision value.
func TestEachInputChangesADecision(t *testing.T) {
	pl := NewPlanner()
	ref := baseInput(100_000)
	refPlan := pl.Plan(ref)
	flips := []struct {
		name string
		mut  func(*Input)
	}{
		{"size", func(in *Input) { in.N = 100; in.Table.Rows = 100 }},
		{"atom-mix", func(in *Input) {
			in.Mix = AtomMix{Linear: false, NonlinearReasons: []string{"nonlinear"}}
		}},
		{"write-rate", func(in *Input) {
			in.Table.WriteRate = 50
			in.Table.DeltaRows = 40_000
			in.Table.DeltaFrac = 0.4
		}},
		{"cache-state", func(in *Input) {
			in.Probe = func(tau, depth int) CacheState { return CacheState{InCache: true} }
		}},
	}
	for _, f := range flips {
		t.Run(f.name, func(t *testing.T) {
			in := baseInput(100_000)
			f.mut(&in)
			got := pl.Plan(in)
			if decisionValues(refPlan) == decisionValues(got) {
				t.Fatalf("flipping %s changed no decision:\n%s", f.name, got.Explain())
			}
		})
	}
}

func decisionValues(p *Plan) string {
	var b strings.Builder
	for _, d := range p.Decisions {
		b.WriteString(d.Name + "=" + d.Value + ";")
	}
	return b.String()
}

// TestForcedKnobsWin pins the satellite regression: every explicit knob
// overrides the planner and is marked forced.
func TestForcedKnobsWin(t *testing.T) {
	pl := NewPlanner()
	yes := true
	in := baseInput(100) // planner alone would pick solver/serial here
	in.Forced = Forced{
		Strategy:    StrategySketch,
		Tau:         32,
		Depth:       4,
		Parallelism: 3,
		Incremental: &yes,
	}
	p := pl.Plan(in)
	want := map[string]string{
		"strategy":    StrategySketch,
		"tau":         "32",
		"depth":       "4",
		"parallelism": "3",
		"maintenance": MaintainPatch,
	}
	for name, val := range want {
		d := p.Decision(name)
		if d == nil || d.Value != val || !d.Forced {
			t.Fatalf("decision %q = %+v, want forced %q", name, d, val)
		}
	}
	if p.Tau != 32 || p.Depth != 4 || p.Parallelism != 3 || !p.Incremental {
		t.Fatalf("plan knobs: %+v", p)
	}
	out := p.Explain()
	if strings.Count(out, "[forced]") != 5 {
		t.Fatalf("expected 5 [forced] markers:\n%s", out)
	}
}

// TestForcedKnobSurvivesSolverPlan: a forced knob shows up in the trail
// even when the chosen strategy ignores it.
func TestForcedKnobSurvivesSolverPlan(t *testing.T) {
	pl := NewPlanner()
	in := baseInput(100)
	in.Forced.Depth = 4
	p := pl.Plan(in)
	if p.Strategy != StrategySolver {
		t.Fatalf("strategy=%s", p.Strategy)
	}
	d := p.Decision("depth")
	if d == nil || !d.Forced || d.Value != "4" {
		t.Fatalf("forced depth missing from solver plan: %+v", d)
	}
	if p.Decision("tau") != nil {
		t.Fatal("unforced tau should be dropped from a solver plan")
	}
}

// TestGoldenExplain pins the EXPLAIN text format.
func TestGoldenExplain(t *testing.T) {
	pl := NewPlanner()
	in := Input{
		Query: "SELECT PACKAGE(R) FROM t R\n  SUCH THAT SUM(v) <= 10 MAXIMIZE SUM(v)",
		Table: catalog.TableStats{
			Table: "t", Rows: 100_000, Version: 7,
			Attrs:     []catalog.AttrStats{{Name: "id"}, {Name: "v"}},
			WriteRate: 2.5, DeltaRows: 1000, DeltaFrac: 0.01,
		},
		N:       100_000,
		MaxMult: 1,
		Mix:     linearMix(),
		Procs:   8,
	}
	got := pl.Plan(in).Explain()
	want := `plan for: SELECT PACKAGE(R) FROM t R SUCH THAT SUM(v) <= 10 MAXIMIZE SUM(v)
table t: 100000 rows, 2 attrs, 2.50 writes/s, delta 1.0%
atoms: linear; 2 sum/count; 1 branch
├─ strategy = sketch-refine  [cost ≈ 1.26e+06]
│      linear query, 100000 candidates > 4096: partitioned sketch is cheapest (cold tree priced in)
│      rejected: solver ≈ 3.16e+07
├─ tau = 64
│      100000 candidates ≤ 100000: default leaf size
├─ depth = 2
│      1563 leaves > 64 top-level vars: 2 levels keep the root small
├─ parallelism = 8
│      100000 candidates ≥ 2048: fan out across 8 workers
├─ maintenance = patch
│      delta 1.0% of the table ≤ 25% budget (2.50 writes/s): patch stale trees in place
├─ tree-source = build
│      no cached, persisted, or patchable tree: full offline build
├─ bound = tree-lp  [cost ≈ 1.56e+03]
│      LP relaxation over ~1563 partition leaves (objective-sorted segments), 1 branch(es); no band atoms to tighten
│      rejected: tree-lp+tighten ≈ 7.82e+03
└─ memory = 3.1 MB
       predicted peak working set for sketch-refine over 100000 candidates (2 atoms)
`
	if got != want {
		t.Fatalf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestAnalyzeAtoms drives the query-planner half through real parsed
// queries.
func TestAnalyzeAtoms(t *testing.T) {
	sc := schema.New(
		schema.Column{Table: "R", Name: "v", Type: schema.TFloat},
		schema.Column{Table: "R", Name: "w", Type: schema.TFloat},
	)
	parse := func(src string) *paql.Analysis {
		q, err := paql.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		a, err := paql.Analyze(q, sc)
		if err != nil {
			t.Fatalf("analyze %q: %v", src, err)
		}
		return a
	}
	lin := AnalyzeAtoms(parse("SELECT PACKAGE(R) FROM t R REPEAT 0 SUCH THAT SUM(v) <= 10 MAXIMIZE SUM(w)"), nil)
	if !lin.Linear || !lin.SketchOK || lin.SumCount != 2 || lin.Branches != 1 {
		t.Fatalf("linear mix: %+v", lin)
	}
	mixed := AnalyzeAtoms(parse("SELECT PACKAGE(R) FROM t R REPEAT 0 SUCH THAT AVG(v) >= 1 AND (MIN(w) >= 0 OR MAX(w) <= 9) MAXIMIZE COUNT(*)"), nil)
	if mixed.Avg != 1 || mixed.MinMax != 2 || mixed.SumCount != 1 {
		t.Fatalf("mixed mix: %+v", mixed)
	}
	if mixed.Branches < 2 {
		t.Fatalf("disjunction should expand branches: %+v", mixed)
	}
	inapp := AnalyzeAtoms(parse("SELECT PACKAGE(R) FROM t R REPEAT 0 SUCH THAT SUM(v) <= 10 MAXIMIZE SUM(w)"), errors.New("no dice"))
	if inapp.SketchOK || inapp.SketchErr != "no dice" || inapp.Branches != 0 {
		t.Fatalf("inapplicable mix: %+v", inapp)
	}
}

// TestPlanJSONRoundTrip: pbserver serves plans as JSON; the typed plan
// must survive a round trip.
func TestPlanJSONRoundTrip(t *testing.T) {
	pl := NewPlanner()
	p := pl.Plan(baseInput(100_000))
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Plan
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Strategy != p.Strategy || len(back.Decisions) != len(p.Decisions) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Decision("strategy").Cost <= 0 {
		t.Fatal("cost lost in round trip")
	}
}

// TestCostModelMonotone sanity-checks the cost formulas the decisions
// rest on.
func TestCostModelMonotone(t *testing.T) {
	cm := DefaultCostModel()
	if cm.SolverCost(1000) >= cm.SolverCost(10_000) {
		t.Fatal("solver cost must grow with n")
	}
	if w, c := cm.SketchCost(100_000, 64, 1, true), cm.SketchCost(100_000, 64, 1, false); w >= c {
		t.Fatal("warm sketch must be cheaper than cold")
	}
	if one, eight := cm.SketchCost(100_000, 64, 1, false), cm.SketchCost(100_000, 64, 8, false); one >= eight {
		t.Fatal("branches must raise sketch cost")
	}
	if cm.EnumCost(50) != cm.EnumCost(41) {
		t.Fatal("enum cost must saturate")
	}
	if cm.ExactBudget() != cm.SolverCost(cm.SketchThreshold) {
		t.Fatal("budget must derive from the sketch threshold")
	}
}

// TestMemoryEstimate pins the admission-control memory model: every
// plan carries a strategy-matched estimate, and the formulas scale with
// the variables the real allocations depend on.
func TestMemoryEstimate(t *testing.T) {
	cm := DefaultCostModel()
	if got := cm.MemoryEstimate(StrategySolver, 1000, 0, 0, 3); got != 1000*5*16+1000*48 {
		t.Fatalf("solver estimate = %d", got)
	}
	if got := cm.MemoryEstimate(StrategySketch, 1000, 64, 3, 3); got != 1000*3*8+1000*16 {
		t.Fatalf("sketch estimate = %d", got)
	}
	// depth 0 is treated as a flat (depth-1) tree.
	if cm.MemoryEstimate(StrategySketch, 1000, 64, 0, 3) != cm.MemoryEstimate(StrategySketch, 1000, 64, 1, 3) {
		t.Fatal("depth 0 and depth 1 should match")
	}
	if got := cm.MemoryEstimate(StrategyLocalSearch, 1000, 0, 0, 3); got != 32000 {
		t.Fatalf("linear-strategy estimate = %d", got)
	}
	if cm.MemoryEstimate(StrategySolver, 0, 0, 0, 3) != 0 {
		t.Fatal("no candidates, no memory")
	}

	// Every plan, sketch or solver, records the decision and the field.
	pl := NewPlanner()
	for _, n := range []int{100, 100_000} {
		p := pl.Plan(baseInput(n))
		d := p.Decision("memory")
		if d == nil || p.MemoryBytes <= 0 {
			t.Fatalf("n=%d: memory decision missing (plan %+v)", n, p)
		}
		if d != &p.Decisions[len(p.Decisions)-1] {
			t.Fatalf("n=%d: memory should order last in the trail", n)
		}
	}
}

// TestFormatBytes covers the unit breakpoints the trail renders.
func TestFormatBytesUnits(t *testing.T) {
	cases := map[int64]string{
		512:     "512 B",
		2 << 10: "2.0 KB",
		3 << 20: "3.0 MB",
		5 << 30: "5.0 GB",
	}
	for in, want := range cases {
		if got := formatBytes(in); got != want {
			t.Fatalf("formatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

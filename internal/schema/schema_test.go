package schema

import (
	"testing"

	"repro/internal/value"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{TBool: "BOOLEAN", TInt: "INTEGER", TFloat: "FLOAT", TString: "TEXT"}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q want %q", ty, got, want)
		}
	}
}

func TestTypeKind(t *testing.T) {
	if TInt.Kind() != value.KindInt || TFloat.Kind() != value.KindFloat ||
		TBool.Kind() != value.KindBool || TString.Kind() != value.KindString {
		t.Error("Type.Kind mapping broken")
	}
}

func TestTypeFromName(t *testing.T) {
	ok := map[string]Type{
		"int": TInt, "INTEGER": TInt, "BigInt": TInt,
		"float": TFloat, "DOUBLE": TFloat, "decimal": TFloat,
		"text": TString, "VARCHAR": TString,
		"bool": TBool, "BOOLEAN": TBool,
	}
	for name, want := range ok {
		got, err := TypeFromName(name)
		if err != nil || got != want {
			t.Errorf("TypeFromName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := TypeFromName("blob"); err == nil {
		t.Error("TypeFromName(blob) should fail")
	}
}

func TestNumeric(t *testing.T) {
	if !TInt.Numeric() || !TFloat.Numeric() || TString.Numeric() || TBool.Numeric() {
		t.Error("Numeric() broken")
	}
}

func testSchema() Schema {
	return New(
		Column{Table: "r", Name: "id", Type: TInt},
		Column{Table: "r", Name: "calories", Type: TFloat},
		Column{Table: "r", Name: "name", Type: TString},
		Column{Table: "s", Name: "id", Type: TInt},
	)
}

func TestIndexOf(t *testing.T) {
	s := testSchema()
	if i, err := s.IndexOf("r", "calories"); err != nil || i != 1 {
		t.Errorf("r.calories -> %d, %v", i, err)
	}
	if i, err := s.IndexOf("", "calories"); err != nil || i != 1 {
		t.Errorf("calories -> %d, %v", i, err)
	}
	if i, err := s.IndexOf("R", "CALORIES"); err != nil || i != 1 {
		t.Errorf("case-insensitive lookup -> %d, %v", i, err)
	}
	if _, err := s.IndexOf("", "id"); err == nil {
		t.Error("unqualified id should be ambiguous")
	}
	if i, err := s.IndexOf("s", "id"); err != nil || i != 3 {
		t.Errorf("s.id -> %d, %v", i, err)
	}
	if _, err := s.IndexOf("", "nope"); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := s.IndexOf("x", "calories"); err == nil {
		t.Error("wrong qualifier should fail")
	}
}

func TestWithQualifierAndConcat(t *testing.T) {
	s := New(Column{Name: "a", Type: TInt}, Column{Name: "b", Type: TString})
	q := s.WithQualifier("t")
	for _, c := range q.Cols {
		if c.Table != "t" {
			t.Errorf("qualifier not applied: %+v", c)
		}
	}
	// original untouched
	if s.Cols[0].Table != "" {
		t.Error("WithQualifier must not mutate receiver")
	}
	j := q.Concat(s)
	if j.Len() != 4 {
		t.Errorf("concat len = %d", j.Len())
	}
	if j.Cols[0].Table != "t" || j.Cols[2].Table != "" {
		t.Error("concat order broken")
	}
}

func TestSchemaString(t *testing.T) {
	s := New(Column{Table: "r", Name: "a", Type: TInt}, Column{Name: "b", Type: TString})
	want := "(r.a INTEGER, b TEXT)"
	if got := s.String(); got != want {
		t.Errorf("String() = %q want %q", got, want)
	}
}

func TestRowCloneConcatString(t *testing.T) {
	r := Row{value.Int(1), value.Str("x")}
	c := r.Clone()
	c[0] = value.Int(9)
	if r[0].IntVal() != 1 {
		t.Error("Clone must not alias")
	}
	j := r.Concat(Row{value.Bool(true)})
	if len(j) != 3 || !j[2].Equal(value.Bool(true)) {
		t.Errorf("Concat = %v", j)
	}
	if got := r.String(); got != "[1, x]" {
		t.Errorf("Row.String = %q", got)
	}
}

func TestValidate(t *testing.T) {
	s := New(Column{Name: "a", Type: TInt}, Column{Name: "b", Type: TFloat})
	// exact types pass
	if _, err := s.Validate(Row{value.Int(1), value.Float(2)}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	// nulls pass
	if _, err := s.Validate(Row{value.Null(), value.Null()}); err != nil {
		t.Errorf("null row rejected: %v", err)
	}
	// int widens to float
	out, err := s.Validate(Row{value.Int(1), value.Int(2)})
	if err != nil {
		t.Fatalf("widening rejected: %v", err)
	}
	if out[1].Kind() != value.KindFloat {
		t.Errorf("int not widened: %v", out[1])
	}
	// arity mismatch
	if _, err := s.Validate(Row{value.Int(1)}); err == nil {
		t.Error("short row should fail")
	}
	// type mismatch
	if _, err := s.Validate(Row{value.Str("x"), value.Float(1)}); err == nil {
		t.Error("string in int column should fail")
	}
}

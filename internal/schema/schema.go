// Package schema defines table schemas and rows for the minidb substrate
// and the PackageBuilder engine. A schema is an ordered list of typed,
// optionally table-qualified columns; a row is a slice of datums aligned
// with a schema.
package schema

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Type is a declared column type. It mirrors value.Kind minus NULL
// (every column is nullable).
type Type uint8

const (
	TBool Type = iota
	TInt
	TFloat
	TString
)

// String returns the SQL name of the type.
func (t Type) String() string {
	switch t {
	case TBool:
		return "BOOLEAN"
	case TInt:
		return "INTEGER"
	case TFloat:
		return "FLOAT"
	case TString:
		return "TEXT"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Kind converts the declared type to the runtime kind of its values.
func (t Type) Kind() value.Kind {
	switch t {
	case TBool:
		return value.KindBool
	case TInt:
		return value.KindInt
	case TFloat:
		return value.KindFloat
	case TString:
		return value.KindString
	}
	return value.KindNull
}

// TypeFromName parses a SQL type name. Common aliases (INT, BIGINT,
// DOUBLE, REAL, VARCHAR, CHAR, BOOL, NUMERIC, DECIMAL) are accepted.
func TypeFromName(name string) (Type, error) {
	switch strings.ToUpper(name) {
	case "BOOL", "BOOLEAN":
		return TBool, nil
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return TInt, nil
	case "FLOAT", "DOUBLE", "REAL", "NUMERIC", "DECIMAL":
		return TFloat, nil
	case "TEXT", "STRING", "VARCHAR", "CHAR":
		return TString, nil
	}
	return 0, fmt.Errorf("schema: unknown type %q", name)
}

// Numeric reports whether the type is INT or FLOAT.
func (t Type) Numeric() bool { return t == TInt || t == TFloat }

// Column is a named, typed column, optionally qualified by a table or
// alias name (e.g. "R"."calories").
type Column struct {
	Table string // qualifier; may be empty
	Name  string
	Type  Type
}

// QualifiedName renders "table.name" or just "name" when unqualified.
func (c Column) QualifiedName() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Schema is an ordered set of columns.
type Schema struct {
	Cols []Column
}

// New builds a schema from columns.
func New(cols ...Column) Schema { return Schema{Cols: cols} }

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.Cols) }

// IndexOf resolves a possibly qualified column reference to an ordinal.
// Resolution rules follow SQL:
//   - "t.c" matches only columns with qualifier t and name c;
//   - "c" matches any column named c regardless of qualifier, but is
//     ambiguous if several qualifiers expose the name.
//
// It returns -1 and an error when the name is unknown or ambiguous.
// Matching is case-insensitive on both parts.
func (s Schema) IndexOf(table, name string) (int, error) {
	found := -1
	for i, c := range s.Cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found >= 0 {
			ref := name
			if table != "" {
				ref = table + "." + name
			}
			return -1, fmt.Errorf("schema: ambiguous column reference %q", ref)
		}
		found = i
	}
	if found < 0 {
		ref := name
		if table != "" {
			ref = table + "." + name
		}
		return -1, fmt.Errorf("schema: unknown column %q", ref)
	}
	return found, nil
}

// WithQualifier returns a copy of the schema with every column's
// qualifier replaced by table (used when a base table is aliased).
func (s Schema) WithQualifier(table string) Schema {
	out := Schema{Cols: make([]Column, len(s.Cols))}
	for i, c := range s.Cols {
		c.Table = table
		out.Cols[i] = c
	}
	return out
}

// Concat returns the schema of a join: s's columns followed by o's.
func (s Schema) Concat(o Schema) Schema {
	out := Schema{Cols: make([]Column, 0, len(s.Cols)+len(o.Cols))}
	out.Cols = append(out.Cols, s.Cols...)
	out.Cols = append(out.Cols, o.Cols...)
	return out
}

// String renders "(a INTEGER, b TEXT)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.QualifiedName())
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Row is a tuple of datums aligned with some schema.
type Row []value.V

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Concat returns the concatenation of two rows (join output).
func (r Row) Concat(o Row) Row {
	out := make(Row, 0, len(r)+len(o))
	out = append(out, r...)
	out = append(out, o...)
	return out
}

// String renders the row as a comma-separated list for diagnostics.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Validate checks that a row's datums conform to the schema: same arity
// and each non-null datum has the column's kind (ints are accepted in
// float columns and silently widen).
func (s Schema) Validate(r Row) (Row, error) {
	if len(r) != len(s.Cols) {
		return nil, fmt.Errorf("schema: row has %d values, schema has %d columns", len(r), len(s.Cols))
	}
	out := r
	for i, v := range r {
		if v.IsNull() {
			continue
		}
		want := s.Cols[i].Type.Kind()
		if v.Kind() == want {
			continue
		}
		if want == value.KindFloat && v.Kind() == value.KindInt {
			if &out[0] == &r[0] {
				out = r.Clone()
			}
			out[i] = value.Float(float64(v.IntVal()))
			continue
		}
		return nil, fmt.Errorf("schema: column %s expects %s, got %s (%s)",
			s.Cols[i].QualifiedName(), want, v.Kind(), v)
	}
	return out, nil
}

package minidb

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/parse"
	"repro/internal/schema"
)

// ParseStmt parses a single SQL statement (an optional trailing ';' is
// allowed).
func ParseStmt(src string) (Stmt, error) {
	p, err := parse.NewParser(src)
	if err != nil {
		return nil, err
	}
	installSQLHook(p)
	st, err := parseStmt(p)
	if err != nil {
		return nil, err
	}
	p.AcceptPunct(";")
	if !p.AtEOF() {
		return nil, p.Errf("unexpected trailing input")
	}
	return st, nil
}

// installSQLHook extends the shared expression grammar with aggregate
// calls and scalar sub-queries.
func installSQLHook(p *parse.Parser) {
	p.PrimaryHook = func(p *parse.Parser) (expr.Expr, bool, error) {
		t := p.Peek()
		// Aggregate call: COUNT/SUM/AVG/MIN/MAX followed by '('.
		if t.Kind == parse.TIdent && p.PeekAt(1).Kind == parse.TPunct && p.PeekAt(1).Text == "(" {
			fn := strings.ToUpper(t.Text)
			switch fn {
			case "COUNT", "SUM", "AVG", "MIN", "MAX":
				p.Next() // fn
				p.Next() // (
				if fn == "COUNT" && p.AcceptPunct("*") {
					if err := p.ExpectPunct(")"); err != nil {
						return nil, true, err
					}
					return &AggCall{Fn: "COUNT", Star: true}, true, nil
				}
				arg, err := p.ParseExpr()
				if err != nil {
					return nil, true, err
				}
				if err := p.ExpectPunct(")"); err != nil {
					return nil, true, err
				}
				return &AggCall{Fn: fn, Arg: arg}, true, nil
			}
		}
		// Scalar sub-query: '(' SELECT ...
		if t.Kind == parse.TPunct && t.Text == "(" {
			nxt := p.PeekAt(1)
			if nxt.Kind == parse.TIdent && strings.EqualFold(nxt.Text, "SELECT") {
				p.Next() // (
				start := p.Peek().Pos
				sub, err := parseSelect(p)
				if err != nil {
					return nil, true, err
				}
				end := p.Peek().Pos
				if err := p.ExpectPunct(")"); err != nil {
					return nil, true, err
				}
				return &Subquery{Stmt: sub, Text: sliceSrc(p, start, end)}, true, nil
			}
		}
		return nil, false, nil
	}
}

// sliceSrc extracts the source text between two token offsets, used to
// preserve sub-query text for rendering.
func sliceSrc(p *parse.Parser, start, end int) string {
	src := p.Src()
	if start < 0 || end > len(src) || start > end {
		return ""
	}
	return strings.TrimSpace(src[start:end])
}

func parseStmt(p *parse.Parser) (Stmt, error) {
	switch {
	case p.PeekKeyword("CREATE"):
		return parseCreate(p)
	case p.PeekKeyword("INSERT"):
		return parseInsert(p)
	case p.PeekKeyword("DELETE"):
		return parseDelete(p)
	case p.PeekKeyword("SELECT"):
		return parseSelect(p)
	}
	return nil, p.Errf("expected CREATE, INSERT, DELETE or SELECT")
}

func parseCreate(p *parse.Parser) (Stmt, error) {
	_ = p.ExpectKeyword("CREATE")
	switch {
	case p.AcceptKeyword("TABLE"):
		name, err := p.ParseIdent()
		if err != nil {
			return nil, err
		}
		if err := p.ExpectPunct("("); err != nil {
			return nil, err
		}
		var cols []schema.Column
		for {
			cn, err := p.ParseIdent()
			if err != nil {
				return nil, err
			}
			tn, err := p.ParseIdent()
			if err != nil {
				return nil, err
			}
			ty, err := schema.TypeFromName(tn)
			if err != nil {
				return nil, p.Errf("%v", err)
			}
			cols = append(cols, schema.Column{Name: cn, Type: ty})
			if !p.AcceptPunct(",") {
				break
			}
		}
		if err := p.ExpectPunct(")"); err != nil {
			return nil, err
		}
		return &CreateTableStmt{Name: name, Schema: schema.Schema{Cols: cols}}, nil
	case p.AcceptKeyword("INDEX"):
		var idxName string
		if !p.PeekKeyword("ON") {
			n, err := p.ParseIdent()
			if err != nil {
				return nil, err
			}
			idxName = n
		}
		if err := p.ExpectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.ParseIdent()
		if err != nil {
			return nil, err
		}
		if err := p.ExpectPunct("("); err != nil {
			return nil, err
		}
		col, err := p.ParseIdent()
		if err != nil {
			return nil, err
		}
		if err := p.ExpectPunct(")"); err != nil {
			return nil, err
		}
		return &CreateIndexStmt{Name: idxName, Table: table, Col: col}, nil
	}
	return nil, p.Errf("expected TABLE or INDEX after CREATE")
}

func parseInsert(p *parse.Parser) (Stmt, error) {
	_ = p.ExpectKeyword("INSERT")
	if err := p.ExpectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ParseIdent()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: table}
	if p.AcceptPunct("(") {
		for {
			c, err := p.ParseIdent()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, c)
			if !p.AcceptPunct(",") {
				break
			}
		}
		if err := p.ExpectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.ExpectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.ExpectPunct("("); err != nil {
			return nil, err
		}
		var row []expr.Expr
		for {
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.AcceptPunct(",") {
				break
			}
		}
		if err := p.ExpectPunct(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.AcceptPunct(",") {
			break
		}
	}
	return st, nil
}

func parseDelete(p *parse.Parser) (Stmt, error) {
	_ = p.ExpectKeyword("DELETE")
	if err := p.ExpectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ParseIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table}
	if p.AcceptKeyword("WHERE") {
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

// statement keywords that terminate a select item / table ref alias.
var reservedAfterItem = map[string]bool{
	"FROM": true, "WHERE": true, "GROUP": true, "HAVING": true,
	"ORDER": true, "LIMIT": true, "OFFSET": true, "ON": true,
	"JOIN": true, "INNER": true, "AS": true, "ASC": true, "DESC": true,
	"UNION": true, "BY": true, "AND": true, "OR": true, "NOT": true,
}

func parseSelect(p *parse.Parser) (*SelectStmt, error) {
	if err := p.ExpectKeyword("SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{}
	st.Distinct = p.AcceptKeyword("DISTINCT")
	// select items
	for {
		item, err := parseSelectItem(p)
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.AcceptPunct(",") {
			break
		}
	}
	if err := p.ExpectKeyword("FROM"); err != nil {
		return nil, err
	}
	// table refs: ref (, ref | JOIN ref ON expr)*
	ref, err := parseTableRef(p)
	if err != nil {
		return nil, err
	}
	st.From = append(st.From, ref)
	for {
		if p.AcceptPunct(",") {
			r, err := parseTableRef(p)
			if err != nil {
				return nil, err
			}
			st.From = append(st.From, r)
			continue
		}
		if p.PeekKeyword("INNER") || p.PeekKeyword("JOIN") {
			p.AcceptKeyword("INNER")
			if err := p.ExpectKeyword("JOIN"); err != nil {
				return nil, err
			}
			r, err := parseTableRef(p)
			if err != nil {
				return nil, err
			}
			if err := p.ExpectKeyword("ON"); err != nil {
				return nil, err
			}
			cond, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			r.JoinCond = cond
			st.From = append(st.From, r)
			continue
		}
		break
	}
	if p.AcceptKeyword("WHERE") {
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.AcceptKeyword("GROUP") {
		if err := p.ExpectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.AcceptPunct(",") {
				break
			}
		}
	}
	if p.AcceptKeyword("HAVING") {
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = e
	}
	if p.AcceptKeyword("ORDER") {
		if err := p.ExpectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{E: e}
			if p.AcceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.AcceptKeyword("ASC")
			}
			st.OrderBy = append(st.OrderBy, item)
			if !p.AcceptPunct(",") {
				break
			}
		}
	}
	if p.AcceptKeyword("LIMIT") {
		n, err := p.ParseInt()
		if err != nil {
			return nil, err
		}
		st.Limit = &n
	}
	if p.AcceptKeyword("OFFSET") {
		n, err := p.ParseInt()
		if err != nil {
			return nil, err
		}
		st.Offset = &n
	}
	return st, nil
}

func parseSelectItem(p *parse.Parser) (SelectItem, error) {
	// "*" or "alias.*"
	if p.AcceptPunct("*") {
		return SelectItem{Star: true}, nil
	}
	if p.Peek().Kind == parse.TIdent &&
		p.PeekAt(1).Kind == parse.TPunct && p.PeekAt(1).Text == "." &&
		p.PeekAt(2).Kind == parse.TPunct && p.PeekAt(2).Text == "*" {
		qual := p.Next().Text
		p.Next()
		p.Next()
		return SelectItem{Star: true, StarQual: qual}, nil
	}
	e, err := p.ParseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.AcceptKeyword("AS") {
		a, err := p.ParseIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if t := p.Peek(); t.Kind == parse.TIdent && !reservedAfterItem[strings.ToUpper(t.Text)] {
		// bare alias
		item.Alias = p.Next().Text
	}
	return item, nil
}

func parseTableRef(p *parse.Parser) (TableRef, error) {
	var ref TableRef
	if p.AcceptPunct("(") {
		sub, err := parseSelect(p)
		if err != nil {
			return ref, err
		}
		if err := p.ExpectPunct(")"); err != nil {
			return ref, err
		}
		ref.Sub = sub
	} else {
		name, err := p.ParseIdent()
		if err != nil {
			return ref, err
		}
		ref.Name = name
	}
	if p.AcceptKeyword("AS") {
		a, err := p.ParseIdent()
		if err != nil {
			return ref, err
		}
		ref.Alias = a
	} else if t := p.Peek(); t.Kind == parse.TIdent && !reservedAfterItem[strings.ToUpper(t.Text)] {
		ref.Alias = p.Next().Text
	}
	if ref.Sub != nil && ref.Alias == "" {
		return ref, fmt.Errorf("minidb: derived table requires an alias")
	}
	return ref, nil
}

package minidb

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

func deltaTable(t *testing.T, n int) (*DB, *Table) {
	t.Helper()
	db := New()
	tab, err := db.CreateTable("t", schema.Schema{Cols: []schema.Column{
		{Name: "id", Type: schema.TInt}, {Name: "v", Type: schema.TInt},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var rows []schema.Row
	for i := 0; i < n; i++ {
		rows = append(rows, schema.Row{value.Int(int64(i)), value.Int(int64(i * 10))})
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	return db, tab
}

// replayCheck drives a write sequence while shadowing the table with a
// plain slice of logical row tags, then verifies DeltaSince(base)
// explains exactly how the base rows map onto the current heap.
func TestDeltaSinceReplay(t *testing.T) {
	db, tab := deltaTable(t, 10)
	base := tab.Version()
	baseTags := make([]string, len(tab.Rows))
	for i, r := range tab.Rows {
		baseTags[i] = r[0].String()
	}

	mustExec := func(sql string) {
		t.Helper()
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("DELETE FROM t WHERE id = 3")
	mustExec("INSERT INTO t VALUES (100, 0)")
	mustExec("INSERT INTO t VALUES (101, 0)")
	mustExec("DELETE FROM t WHERE id = 7 OR id = 100")
	mustExec("INSERT INTO t VALUES (102, 0)")

	d, ok := tab.DeltaSince(base)
	if !ok {
		t.Fatal("delta aged out unexpectedly")
	}
	if d.BaseSize != 10 {
		t.Fatalf("BaseSize = %d, want 10", d.BaseSize)
	}
	// Deleted must name base positions of ids 3 and 7.
	if !reflect.DeepEqual(d.Deleted, []int{3, 7}) {
		t.Fatalf("Deleted = %v, want [3 7]", d.Deleted)
	}
	// Survivors must be a prefix of the heap, in base order.
	if d.AppendedStart != 8 {
		t.Fatalf("AppendedStart = %d, want 8", d.AppendedStart)
	}
	want := []string{"0", "1", "2", "4", "5", "6", "8", "9"}
	for i, tag := range want {
		if got := tab.Rows[i][0].String(); got != tag {
			t.Fatalf("row %d = %s, want %s", i, got, tag)
		}
	}
	for i := d.AppendedStart; i < len(tab.Rows); i++ {
		if id := tab.Rows[i][0].String(); id != "101" && id != "102" {
			t.Fatalf("appended row %d = %s, want a post-base insert", i, id)
		}
	}
}

func TestDeltaSinceVersionSemantics(t *testing.T) {
	db, tab := deltaTable(t, 4)
	v0 := tab.Version()
	if v0 == 0 {
		t.Fatal("initial load must bump the version")
	}
	if d, ok := tab.DeltaSince(v0); !ok || len(d.Deleted) != 0 || d.AppendedStart != 4 {
		t.Fatalf("identity delta = %+v ok=%v", d, ok)
	}
	if _, ok := tab.DeltaSince(v0 + 5); ok {
		t.Fatal("future version must not resolve")
	}
	if _, err := db.Exec("DELETE FROM t WHERE id >= 2"); err != nil {
		t.Fatal(err)
	}
	if tab.Version() != v0+1 {
		t.Fatalf("version = %d, want %d", tab.Version(), v0+1)
	}
	// A no-op write (nothing matched) must not bump the version:
	// downstream memos would otherwise rehash for nothing.
	if _, err := db.Exec("DELETE FROM t WHERE id = 999"); err != nil {
		t.Fatal(err)
	}
	if tab.Version() != v0+1 {
		t.Fatalf("no-op delete bumped version to %d", tab.Version())
	}
	d, ok := tab.DeltaSince(v0)
	if !ok || !reflect.DeepEqual(d.Deleted, []int{2, 3}) || d.AppendedStart != 2 {
		t.Fatalf("delta = %+v ok=%v", d, ok)
	}
}

func TestDeltaLogAgesOut(t *testing.T) {
	db, tab := deltaTable(t, 2)
	base := tab.Version()
	for i := 0; i < deltaLogMaxEntries+10; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 0)", 1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := tab.DeltaSince(base); ok {
		t.Fatal("base older than the bounded log must report !ok")
	}
	// A recent base still resolves.
	recent := tab.Version() - 3
	d, ok := tab.DeltaSince(recent)
	if !ok || d.AppendedStart != len(tab.Rows)-3 {
		t.Fatalf("recent delta = %+v ok=%v", d, ok)
	}
}

func TestDeltaLogBoundsDeletedIDs(t *testing.T) {
	db, tab := deltaTable(t, deltaLogMaxDeleted+100)
	base := tab.Version()
	if _, err := db.Exec("DELETE FROM t WHERE id >= 50"); err != nil {
		t.Fatal(err)
	}
	// The single delete exceeds the retained-id budget: the log must
	// shed it rather than pin a huge slice, so the base ages out.
	if _, ok := tab.DeltaSince(base); ok {
		t.Fatal("oversized delete must age the log out")
	}
	if got := tab.Version(); got != base+1 {
		t.Fatalf("version = %d, want %d", got, base+1)
	}
}

package minidb

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/value"
)

// aggState accumulates one aggregate over one group.
type aggState interface {
	add(v value.V) error
	result() value.V
}

type countState struct {
	star bool
	n    int64
}

func (s *countState) add(v value.V) error {
	if s.star || !v.IsNull() {
		s.n++
	}
	return nil
}
func (s *countState) result() value.V { return value.Int(s.n) }

type sumState struct {
	sum   float64
	isInt bool
	any   bool
}

func (s *sumState) add(v value.V) error {
	if v.IsNull() {
		return nil
	}
	f, ok := v.AsFloat()
	if !ok {
		return fmt.Errorf("minidb: SUM over non-numeric value %s", v)
	}
	if !s.any {
		s.isInt = v.Kind() == value.KindInt
	} else if v.Kind() != value.KindInt {
		s.isInt = false
	}
	s.sum += f
	s.any = true
	return nil
}

func (s *sumState) result() value.V {
	if !s.any {
		return value.Null()
	}
	if s.isInt {
		return value.Int(int64(s.sum))
	}
	return value.Float(s.sum)
}

type avgState struct {
	sum float64
	n   int64
}

func (s *avgState) add(v value.V) error {
	if v.IsNull() {
		return nil
	}
	f, ok := v.AsFloat()
	if !ok {
		return fmt.Errorf("minidb: AVG over non-numeric value %s", v)
	}
	s.sum += f
	s.n++
	return nil
}

func (s *avgState) result() value.V {
	if s.n == 0 {
		return value.Null()
	}
	return value.Float(s.sum / float64(s.n))
}

type minMaxState struct {
	max  bool
	best value.V
}

func (s *minMaxState) add(v value.V) error {
	if v.IsNull() {
		return nil
	}
	if s.best.IsNull() {
		s.best = v
		return nil
	}
	cmp, _ := v.Compare(s.best)
	if (s.max && cmp > 0) || (!s.max && cmp < 0) {
		s.best = v
	}
	return nil
}

func (s *minMaxState) result() value.V { return s.best }

func newAggState(fn string, star bool) (aggState, error) {
	switch fn {
	case "COUNT":
		return &countState{star: star}, nil
	case "SUM":
		return &sumState{}, nil
	case "AVG":
		return &avgState{}, nil
	case "MIN":
		return &minMaxState{}, nil
	case "MAX":
		return &minMaxState{max: true}, nil
	}
	return nil, fmt.Errorf("minidb: unknown aggregate %q", fn)
}

// aggOp computes hash aggregation. Output rows are
// [groupVals..., aggVals...]; with no GROUP BY there is exactly one
// output row (aggregates over the whole input, even when empty).
type aggOp struct {
	child   operator
	groupBy []expr.Expr // bound to child schema
	aggs    []*AggCall  // args bound to child schema
	sch     schema.Schema

	out []schema.Row
	pos int
}

func newAggOp(child operator, groupBy []expr.Expr, aggs []*AggCall) *aggOp {
	cols := make([]schema.Column, 0, len(groupBy)+len(aggs))
	for i, g := range groupBy {
		name := fmt.Sprintf("group%d", i)
		ty := schema.TFloat
		if c, ok := g.(*expr.Col); ok {
			name = c.Name
			if c.Idx >= 0 && c.Idx < child.schema().Len() {
				ty = child.schema().Cols[c.Idx].Type
			}
		}
		cols = append(cols, schema.Column{Table: "", Name: name, Type: ty})
	}
	for _, a := range aggs {
		ty := schema.TFloat
		if a.Fn == "COUNT" {
			ty = schema.TInt
		}
		cols = append(cols, schema.Column{Name: a.String(), Type: ty})
	}
	return &aggOp{child: child, groupBy: groupBy, aggs: aggs, sch: schema.Schema{Cols: cols}}
}

func (a *aggOp) schema() schema.Schema { return a.sch }

func (a *aggOp) open() error {
	if err := a.child.open(); err != nil {
		return err
	}
	defer a.child.close()
	type group struct {
		keys   schema.Row
		states []aggState
	}
	groups := map[string]*group{}
	var order []string // deterministic output: first-seen order
	for {
		row, ok, err := a.child.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		keyVals := make(schema.Row, len(a.groupBy))
		var keyBytes []byte
		for i, g := range a.groupBy {
			v, err := g.Eval(row)
			if err != nil {
				return err
			}
			keyVals[i] = v
			keyBytes = v.EncodeKey(keyBytes)
		}
		k := string(keyBytes)
		grp := groups[k]
		if grp == nil {
			grp = &group{keys: keyVals}
			for _, agg := range a.aggs {
				st, err := newAggState(agg.Fn, agg.Star)
				if err != nil {
					return err
				}
				grp.states = append(grp.states, st)
			}
			groups[k] = grp
			order = append(order, k)
		}
		for i, agg := range a.aggs {
			var v value.V
			if agg.Star {
				v = value.Int(1) // ignored by countState with star
			} else {
				var err error
				v, err = agg.Arg.Eval(row)
				if err != nil {
					return err
				}
			}
			if err := grp.states[i].add(v); err != nil {
				return err
			}
		}
	}
	// Global aggregation over empty input still yields one row.
	if len(a.groupBy) == 0 && len(groups) == 0 {
		grp := &group{}
		for _, agg := range a.aggs {
			st, err := newAggState(agg.Fn, agg.Star)
			if err != nil {
				return err
			}
			grp.states = append(grp.states, st)
		}
		groups[""] = grp
		order = append(order, "")
	}
	a.out = a.out[:0]
	for _, k := range order {
		grp := groups[k]
		row := make(schema.Row, 0, len(grp.keys)+len(grp.states))
		row = append(row, grp.keys...)
		for _, st := range grp.states {
			row = append(row, st.result())
		}
		a.out = append(a.out, row)
	}
	a.pos = 0
	return nil
}

func (a *aggOp) next() (schema.Row, bool, error) {
	if a.pos >= len(a.out) {
		return nil, false, nil
	}
	r := a.out[a.pos]
	a.pos++
	return r, true, nil
}

func (a *aggOp) close() { a.out = nil }

package minidb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

func mustExec(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, `CREATE TABLE recipes (id INT, name TEXT, gluten TEXT, calories FLOAT, protein FLOAT, fat FLOAT)`)
	rows := []string{
		`(1, 'Oatmeal',   'free', 300, 10, 5)`,
		`(2, 'Pasta',     'full', 550, 18, 8)`,
		`(3, 'Salad',     'free', 150, 4,  9)`,
		`(4, 'Chicken',   'free', 420, 38, 12)`,
		`(5, 'Burger',    'full', 800, 30, 40)`,
		`(6, 'Tofu Bowl', 'free', 380, 22, 10)`,
		`(7, 'Smoothie',  'free', 200, 6,  2)`,
		`(8, 'Steak',     'free', 650, 45, 30)`,
	}
	mustExec(t, db, "INSERT INTO recipes VALUES "+strings.Join(rows, ", "))
	return db
}

func TestCreateInsertSelectStar(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT * FROM recipes`)
	if len(res.Rows) != 8 || res.Schema.Len() != 6 {
		t.Fatalf("got %d rows, %d cols", len(res.Rows), res.Schema.Len())
	}
	if res.Schema.Cols[0].Table != "recipes" {
		t.Errorf("star schema should be qualified: %v", res.Schema.Cols[0])
	}
}

func TestCreateTableErrors(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec(`CREATE TABLE recipes (x INT)`); err == nil {
		t.Error("duplicate table should fail")
	}
	if _, err := db.Exec(`CREATE TABLE t2 (x INT, X TEXT)`); err == nil {
		t.Error("duplicate column should fail")
	}
	if _, err := db.Exec(`CREATE TABLE t3 (x BLOB)`); err == nil {
		t.Error("unknown type should fail")
	}
}

func TestWhereBaseConstraint(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT name FROM recipes WHERE gluten = 'free' AND calories <= 400`)
	var names []string
	for _, r := range res.Rows {
		names = append(names, r[0].StrVal())
	}
	want := []string{"Oatmeal", "Salad", "Tofu Bowl", "Smoothie"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("names = %v, want %v", names, want)
	}
}

func TestProjectionExpressionsAndAliases(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT name, protein / calories * 100 AS density FROM recipes WHERE id = 4`)
	if res.Schema.Cols[1].Name != "density" {
		t.Errorf("alias = %q", res.Schema.Cols[1].Name)
	}
	got, _ := res.Rows[0][1].AsFloat()
	want := 38.0 / 420.0 * 100
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("density = %v, want %v", got, want)
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT name, calories FROM recipes ORDER BY calories DESC LIMIT 3`)
	var names []string
	for _, r := range res.Rows {
		names = append(names, r[0].StrVal())
	}
	if strings.Join(names, ",") != "Burger,Steak,Pasta" {
		t.Errorf("top3 = %v", names)
	}
	res = mustExec(t, db, `SELECT name FROM recipes ORDER BY calories LIMIT 2 OFFSET 1`)
	names = nil
	for _, r := range res.Rows {
		names = append(names, r[0].StrVal())
	}
	if strings.Join(names, ",") != "Smoothie,Oatmeal" {
		t.Errorf("offset page = %v", names)
	}
	// ORDER BY ordinal and alias
	res = mustExec(t, db, `SELECT name, calories AS c FROM recipes ORDER BY 2 DESC LIMIT 1`)
	if res.Rows[0][0].StrVal() != "Burger" {
		t.Errorf("ordinal order = %v", res.Rows[0])
	}
	res = mustExec(t, db, `SELECT name, calories AS c FROM recipes ORDER BY c DESC LIMIT 1`)
	if res.Rows[0][0].StrVal() != "Burger" {
		t.Errorf("alias order = %v", res.Rows[0])
	}
	// ORDER BY expression not in select list (hidden key)
	res = mustExec(t, db, `SELECT name FROM recipes ORDER BY protein / calories DESC LIMIT 1`)
	if res.Rows[0][0].StrVal() != "Chicken" {
		t.Errorf("hidden key order = %v", res.Rows[0])
	}
	if res.Schema.Len() != 1 {
		t.Errorf("hidden sort column leaked: %v", res.Schema)
	}
}

func TestAggregatesGlobal(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT COUNT(*), SUM(calories), MIN(calories), MAX(calories), AVG(protein) FROM recipes`)
	r := res.Rows[0]
	if !r[0].Equal(value.Int(8)) {
		t.Errorf("count = %v", r[0])
	}
	if f, _ := r[1].AsFloat(); f != 3450 {
		t.Errorf("sum = %v", r[1])
	}
	if f, _ := r[2].AsFloat(); f != 150 {
		t.Errorf("min = %v", r[2])
	}
	if f, _ := r[3].AsFloat(); f != 800 {
		t.Errorf("max = %v", r[3])
	}
	if f, _ := r[4].AsFloat(); f != (10+18+4+38+30+22+6+45)/8.0 {
		t.Errorf("avg = %v", r[4])
	}
}

func TestAggregatesEmptyInput(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT COUNT(*), SUM(calories) FROM recipes WHERE calories > 10000`)
	if len(res.Rows) != 1 {
		t.Fatalf("global agg over empty input should yield 1 row, got %d", len(res.Rows))
	}
	if !res.Rows[0][0].Equal(value.Int(0)) {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if !res.Rows[0][1].IsNull() {
		t.Errorf("sum of empty = %v, want NULL", res.Rows[0][1])
	}
}

func TestGroupByHaving(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `
		SELECT gluten, COUNT(*) AS n, SUM(calories) AS total
		FROM recipes GROUP BY gluten HAVING COUNT(*) > 2 ORDER BY gluten`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	r := res.Rows[0]
	if r[0].StrVal() != "free" || !r[1].Equal(value.Int(6)) {
		t.Errorf("group row = %v", r)
	}
	if f, _ := r[2].AsFloat(); f != 300+150+420+380+200+650 {
		t.Errorf("free total = %v", r[2])
	}
	// grouped column referenced bare vs qualified
	res = mustExec(t, db, `SELECT r.gluten, COUNT(*) FROM recipes r GROUP BY gluten ORDER BY 2 DESC`)
	if len(res.Rows) != 2 || res.Rows[0][0].StrVal() != "free" {
		t.Errorf("qualified group = %v", res.Rows)
	}
	// non-grouped column must error
	if _, err := db.Exec(`SELECT name FROM recipes GROUP BY gluten`); err == nil {
		t.Error("non-grouped column should fail")
	}
	if _, err := db.Exec(`SELECT gluten FROM recipes HAVING COUNT(*) > 1`); err == nil {
		t.Error("HAVING without GROUP BY with bare column select should fail")
	}
	// ORDER BY aggregate not in select list
	res = mustExec(t, db, `SELECT gluten FROM recipes GROUP BY gluten ORDER BY SUM(calories) DESC`)
	if res.Rows[0][0].StrVal() != "free" {
		t.Errorf("order by hidden agg = %v", res.Rows)
	}
}

func TestJoins(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE cuisines (rid INT, cuisine TEXT)`)
	mustExec(t, db, `INSERT INTO cuisines VALUES (1,'US'), (2,'IT'), (3,'US'), (4,'FR'), (99,'XX')`)

	// comma join with equi predicate (hash join path)
	res := mustExec(t, db, `
		SELECT r.name, c.cuisine FROM recipes r, cuisines c
		WHERE r.id = c.rid ORDER BY r.id`)
	if len(res.Rows) != 4 {
		t.Fatalf("join rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].StrVal() != "Oatmeal" || res.Rows[0][1].StrVal() != "US" {
		t.Errorf("first join row = %v", res.Rows[0])
	}
	// JOIN ... ON syntax
	res2 := mustExec(t, db, `
		SELECT r.name, c.cuisine FROM recipes r JOIN cuisines c ON r.id = c.rid ORDER BY r.id`)
	if len(res2.Rows) != len(res.Rows) {
		t.Errorf("ON join rows = %d, want %d", len(res2.Rows), len(res.Rows))
	}
	// non-equi theta join (nested loop path)
	res3 := mustExec(t, db, `
		SELECT a.name, b.name FROM recipes a, recipes b
		WHERE a.calories < b.calories AND a.id = 3 AND b.id = 5`)
	if len(res3.Rows) != 1 {
		t.Errorf("theta join rows = %v", res3.Rows)
	}
	// cross join cardinality
	res4 := mustExec(t, db, `SELECT COUNT(*) FROM recipes a, cuisines b`)
	if !res4.Rows[0][0].Equal(value.Int(40)) {
		t.Errorf("cross count = %v", res4.Rows[0][0])
	}
	// three-way join
	res5 := mustExec(t, db, `
		SELECT COUNT(*) FROM recipes r, cuisines c, recipes r2
		WHERE r.id = c.rid AND r2.id = r.id`)
	if !res5.Rows[0][0].Equal(value.Int(4)) {
		t.Errorf("3-way join count = %v", res5.Rows[0][0])
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE a (x INT)`)
	mustExec(t, db, `CREATE TABLE b (y INT)`)
	mustExec(t, db, `INSERT INTO a VALUES (1), (NULL)`)
	mustExec(t, db, `INSERT INTO b VALUES (1), (NULL)`)
	res := mustExec(t, db, `SELECT COUNT(*) FROM a, b WHERE a.x = b.y`)
	if !res.Rows[0][0].Equal(value.Int(1)) {
		t.Errorf("null join count = %v", res.Rows[0][0])
	}
}

func TestDerivedTable(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `
		SELECT g.gluten, g.total FROM
		(SELECT gluten, SUM(calories) AS total FROM recipes GROUP BY gluten) g
		WHERE g.total > 1400 ORDER BY g.total DESC`)
	if len(res.Rows) != 1 || res.Rows[0][0].StrVal() != "free" {
		t.Errorf("derived = %v", res.Rows)
	}
	if _, err := db.Exec(`SELECT * FROM (SELECT 1 FROM recipes)`); err == nil {
		t.Error("derived table without alias should fail")
	}
}

func TestScalarSubquery(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `
		SELECT name FROM recipes
		WHERE calories = (SELECT MAX(calories) FROM recipes)`)
	if len(res.Rows) != 1 || res.Rows[0][0].StrVal() != "Burger" {
		t.Errorf("subquery = %v", res.Rows)
	}
	// zero-row subquery folds to NULL -> no matches
	res = mustExec(t, db, `
		SELECT name FROM recipes
		WHERE calories = (SELECT calories FROM recipes WHERE id = 999)`)
	if len(res.Rows) != 0 {
		t.Errorf("null subquery matched %v", res.Rows)
	}
	if _, err := db.Exec(`SELECT name FROM recipes WHERE calories = (SELECT id, name FROM recipes)`); err == nil {
		t.Error("two-column subquery should fail")
	}
	if _, err := db.Exec(`SELECT name FROM recipes WHERE calories = (SELECT calories FROM recipes)`); err == nil {
		t.Error("multi-row subquery should fail")
	}
}

func TestDistinct(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT DISTINCT gluten FROM recipes ORDER BY gluten`)
	if len(res.Rows) != 2 || res.Rows[0][0].StrVal() != "free" || res.Rows[1][0].StrVal() != "full" {
		t.Errorf("distinct = %v", res.Rows)
	}
}

func TestInsertWithColumnListAndNulls(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `INSERT INTO recipes (id, name) VALUES (9, 'Mystery')`)
	res := mustExec(t, db, `SELECT calories FROM recipes WHERE id = 9`)
	if !res.Rows[0][0].IsNull() {
		t.Errorf("unspecified column should be NULL, got %v", res.Rows[0][0])
	}
	// NULL does not satisfy predicates
	res = mustExec(t, db, `SELECT COUNT(*) FROM recipes WHERE calories <= 10000`)
	if !res.Rows[0][0].Equal(value.Int(8)) {
		t.Errorf("null row should not match, count = %v", res.Rows[0][0])
	}
	if _, err := db.Exec(`INSERT INTO recipes (id) VALUES (1, 2)`); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := db.Exec(`INSERT INTO recipes (id) VALUES (id)`); err == nil {
		t.Error("non-constant insert should fail")
	}
	if _, err := db.Exec(`INSERT INTO recipes (id) VALUES ('abc')`); err == nil {
		t.Error("type mismatch should fail")
	}
}

func TestDelete(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `DELETE FROM recipes WHERE gluten = 'full'`)
	if res.Affected != 2 {
		t.Errorf("deleted = %d", res.Affected)
	}
	res = mustExec(t, db, `SELECT COUNT(*) FROM recipes`)
	if !res.Rows[0][0].Equal(value.Int(6)) {
		t.Errorf("remaining = %v", res.Rows[0][0])
	}
	res = mustExec(t, db, `DELETE FROM recipes`)
	if res.Affected != 6 {
		t.Errorf("delete all = %d", res.Affected)
	}
}

func TestIndexScanMatchesHeapScan(t *testing.T) {
	db := newTestDB(t)
	run := func(q string) []schema.Row {
		return mustExec(t, db, q).Rows
	}
	q := `SELECT name FROM recipes WHERE calories <= 400 ORDER BY id`
	before := run(q)
	mustExec(t, db, `CREATE INDEX ON recipes (calories)`)
	after := run(q)
	if len(before) != len(after) {
		t.Fatalf("index scan changed results: %d vs %d rows", len(before), len(after))
	}
	for i := range before {
		if before[i][0].StrVal() != after[i][0].StrVal() {
			t.Errorf("row %d: %v vs %v", i, before[i], after[i])
		}
	}
	// equality and lower-bound probes
	r := mustExec(t, db, `SELECT name FROM recipes WHERE calories = 800`)
	if len(r.Rows) != 1 || r.Rows[0][0].StrVal() != "Burger" {
		t.Errorf("eq probe = %v", r.Rows)
	}
	r = mustExec(t, db, `SELECT COUNT(*) FROM recipes WHERE calories > 400`)
	if !r.Rows[0][0].Equal(value.Int(4)) {
		t.Errorf("gt probe = %v", r.Rows[0][0])
	}
	// index maintained across insert and delete
	mustExec(t, db, `INSERT INTO recipes VALUES (10, 'Snack', 'free', 100, 1, 1)`)
	r = mustExec(t, db, `SELECT COUNT(*) FROM recipes WHERE calories < 200`)
	if !r.Rows[0][0].Equal(value.Int(2)) {
		t.Errorf("after insert = %v", r.Rows[0][0])
	}
	mustExec(t, db, `DELETE FROM recipes WHERE id = 10`)
	r = mustExec(t, db, `SELECT COUNT(*) FROM recipes WHERE calories < 200`)
	if !r.Rows[0][0].Equal(value.Int(1)) {
		t.Errorf("after delete = %v", r.Rows[0][0])
	}
	if err := db.CreateIndex("recipes", "calories"); err == nil {
		t.Error("duplicate index should fail")
	}
	if err := db.CreateIndex("recipes", "nope"); err == nil {
		t.Error("index on unknown column should fail")
	}
}

func TestColStats(t *testing.T) {
	db := newTestDB(t)
	tab, _ := db.Table("recipes")
	mn, mx, n, err := tab.ColStats("calories")
	if err != nil || mn != 150 || mx != 800 || n != 8 {
		t.Errorf("stats = %v %v %v %v", mn, mx, n, err)
	}
	// identical through an index
	mustExec(t, db, `CREATE INDEX ON recipes (calories)`)
	mn2, mx2, n2, err := tab.ColStats("calories")
	if err != nil || mn2 != mn || mx2 != mx || n2 != n {
		t.Errorf("indexed stats = %v %v %v %v", mn2, mx2, n2, err)
	}
	if _, _, _, err := tab.ColStats("name"); err == nil {
		t.Error("stats on text column should fail")
	}
	if _, _, _, err := tab.ColStats("nope"); err == nil {
		t.Error("stats on unknown column should fail")
	}
}

func TestLoadCSV(t *testing.T) {
	db := New()
	csvData := `id:int,name,price:float,organic
1,apple,1.25,true
2,banana,0.5,false
3,cherry,3.0,true
`
	n, err := db.LoadCSV("fruit", strings.NewReader(csvData))
	if err != nil || n != 3 {
		t.Fatalf("LoadCSV = %d, %v", n, err)
	}
	res := mustExec(t, db, `SELECT name FROM fruit WHERE organic = TRUE AND price < 2 ORDER BY id`)
	if len(res.Rows) != 1 || res.Rows[0][0].StrVal() != "apple" {
		t.Errorf("csv query = %v", res.Rows)
	}
	tab, _ := db.Table("fruit")
	if tab.Schema.Cols[0].Type != schema.TInt || tab.Schema.Cols[2].Type != schema.TFloat ||
		tab.Schema.Cols[3].Type != schema.TBool || tab.Schema.Cols[1].Type != schema.TString {
		t.Errorf("csv schema = %v", tab.Schema)
	}
	// inference: column of mixed ints and floats becomes float
	db2 := New()
	_, err = db2.LoadCSV("m", strings.NewReader("x\n1\n2.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	tab2, _ := db2.Table("m")
	if tab2.Schema.Cols[0].Type != schema.TFloat {
		t.Errorf("mixed numeric inferred as %v", tab2.Schema.Cols[0].Type)
	}
}

func TestResultFormat(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT name, calories FROM recipes WHERE id <= 2 ORDER BY id`)
	var sb strings.Builder
	res.Format(&sb)
	out := sb.String()
	if !strings.Contains(out, "Oatmeal") || !strings.Contains(out, "(2 rows)") {
		t.Errorf("format output:\n%s", out)
	}
	ddl := mustExec(t, db, `CREATE TABLE empty_t (x INT)`)
	sb.Reset()
	ddl.Format(&sb)
	if !strings.Contains(sb.String(), "OK") {
		t.Errorf("ddl format: %s", sb.String())
	}
}

func TestParseErrorsSurface(t *testing.T) {
	db := newTestDB(t)
	bad := []string{
		`SELEC * FROM recipes`,
		`SELECT * FROM`,
		`SELECT * FROM recipes WHERE`,
		`SELECT * FROM recipes GROUP`,
		`SELECT * FROM recipes trailing_token extra`,
		`INSERT INTO recipes`,
		`CREATE recipes`,
		`SELECT FROM recipes`,
	}
	for _, q := range bad {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("Exec(%q) should fail", q)
		}
	}
	if _, err := db.Exec(`SELECT * FROM nope`); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := db.Exec(`SELECT nope FROM recipes`); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := db.Query(`DELETE FROM recipes`); err == nil {
		t.Error("Query should reject non-SELECT")
	}
	if _, err := db.Exec(`SELECT r.id FROM recipes r, recipes r`); err == nil {
		t.Error("duplicate binding should fail")
	}
	if _, err := db.Exec(`SELECT nope.* FROM recipes r`); err == nil {
		t.Error("unknown star qualifier should fail")
	}
	if _, err := db.Exec(`SELECT SUM(SUM(calories)) FROM recipes`); err == nil {
		t.Error("nested aggregates should fail")
	}
	if _, err := db.Exec(`SELECT * , COUNT(*) FROM recipes`); err == nil {
		t.Error("star with aggregation should fail")
	}
}

func TestDropTableAndNames(t *testing.T) {
	db := newTestDB(t)
	names := db.TableNames()
	if len(names) != 1 || names[0] != "recipes" {
		t.Errorf("names = %v", names)
	}
	if err := db.DropTable("recipes"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("recipes"); err == nil {
		t.Error("double drop should fail")
	}
	if len(db.TableNames()) != 0 {
		t.Error("catalog not empty after drop")
	}
}

// TestReplacementQueryShape runs the paper's §4.2 single-tuple
// replacement query: find all (p, r) pairs where swapping p out of the
// package for r makes the calorie total feasible.
func TestReplacementQueryShape(t *testing.T) {
	db := newTestDB(t)
	// Current package: ids 5, 8, 2 (Burger 800, Steak 650, Pasta 550) = 2000 total.
	mustExec(t, db, `CREATE TABLE p0 (id INT, calories FLOAT)`)
	mustExec(t, db, `INSERT INTO p0 VALUES (5, 800), (8, 650), (2, 550)`)
	// Target: total <= 1500. 2000 - p.calories + r.calories <= 1500.
	res := mustExec(t, db, `
		SELECT p.id, r.id FROM p0 p, recipes r
		WHERE 2000 - p.calories + r.calories <= 1500
		  AND r.id <> p.id
		ORDER BY p.id, r.id`)
	// p=5 (800): need r.calories <= 300: ids 1(300),3(150),7(200) -> 3 pairs
	// p=8 (650): need r.calories <= 150: id 3 -> 1 pair
	// p=2 (550): need r.calories <= 50: none
	if len(res.Rows) != 4 {
		t.Fatalf("replacement pairs = %d: %v", len(res.Rows), res.Rows)
	}
	first := res.Rows[0]
	if !first[0].Equal(value.Int(5)) || !first[1].Equal(value.Int(1)) {
		t.Errorf("first pair = %v", first)
	}
}

// Property-style test: random filters over a random table agree with a
// straightforward in-memory oracle.
func TestRandomFiltersMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := New()
	mustExec(t, db, `CREATE TABLE nums (a INT, b FLOAT)`)
	type rec struct {
		a int64
		b float64
	}
	var data []rec
	var inserts []string
	for i := 0; i < 300; i++ {
		r := rec{a: int64(rng.Intn(100)), b: float64(rng.Intn(1000)) / 10}
		data = append(data, r)
		inserts = append(inserts, fmt.Sprintf("(%d, %g)", r.a, r.b))
	}
	mustExec(t, db, "INSERT INTO nums VALUES "+strings.Join(inserts, ","))
	mustExec(t, db, `CREATE INDEX ON nums (a)`)
	for trial := 0; trial < 50; trial++ {
		lo := rng.Intn(100)
		hi := lo + rng.Intn(40)
		bcut := float64(rng.Intn(1000)) / 10
		q := fmt.Sprintf(`SELECT COUNT(*), SUM(b) FROM nums WHERE a BETWEEN %d AND %d AND b <= %g`, lo, hi, bcut)
		res := mustExec(t, db, q)
		wantN := int64(0)
		wantSum := 0.0
		for _, r := range data {
			if r.a >= int64(lo) && r.a <= int64(hi) && r.b <= bcut {
				wantN++
				wantSum += r.b
			}
		}
		gotN := res.Rows[0][0].IntVal()
		gotSum, _ := res.Rows[0][1].AsFloat()
		if gotN != wantN {
			t.Fatalf("trial %d: count = %d, want %d (q=%s)", trial, gotN, wantN, q)
		}
		if wantN > 0 && (gotSum-wantSum > 1e-6 || wantSum-gotSum > 1e-6) {
			t.Fatalf("trial %d: sum = %v, want %v", trial, gotSum, wantSum)
		}
	}
}

// Join results agree between hash-join (equi) and the nested-loop oracle
// expressed as a filtered cross product.
func TestJoinStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := New()
	mustExec(t, db, `CREATE TABLE l (k INT, v INT)`)
	mustExec(t, db, `CREATE TABLE r (k INT, w INT)`)
	var li, ri []string
	for i := 0; i < 80; i++ {
		li = append(li, fmt.Sprintf("(%d, %d)", rng.Intn(20), i))
		ri = append(ri, fmt.Sprintf("(%d, %d)", rng.Intn(20), i))
	}
	mustExec(t, db, "INSERT INTO l VALUES "+strings.Join(li, ","))
	mustExec(t, db, "INSERT INTO r VALUES "+strings.Join(ri, ","))
	// hash-join path
	hj := mustExec(t, db, `SELECT COUNT(*) FROM l, r WHERE l.k = r.k`)
	// force nested loop with an always-true non-equi wrapper
	nl := mustExec(t, db, `SELECT COUNT(*) FROM l, r WHERE l.k <= r.k AND l.k >= r.k`)
	if hj.Rows[0][0].IntVal() != nl.Rows[0][0].IntVal() {
		t.Errorf("hash join %v != nested loop %v", hj.Rows[0][0], nl.Rows[0][0])
	}
}

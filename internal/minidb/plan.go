package minidb

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/value"
)

// planSelect compiles a SELECT into an operator tree. The plan is
// left-deep in FROM order with:
//   - scalar sub-queries folded to constants,
//   - single-source WHERE conjuncts pushed down to scans (with index
//     range selection when an index matches),
//   - equi-join conjuncts compiled to hash joins, other conjuncts to
//     nested-loop join conditions,
//   - hash aggregation with HAVING,
//   - projection, DISTINCT, ORDER BY (output aliases, ordinals, or
//     hidden input-level keys) and LIMIT/OFFSET.
func (db *DB) planSelect(st *SelectStmt) (operator, error) {
	st, err := db.foldSubqueries(st)
	if err != nil {
		return nil, err
	}

	// --- sources ---------------------------------------------------------
	type source struct {
		ref   TableRef
		op    operator
		sch   schema.Schema
		scan  *scanOp // non-nil for base tables (pushdown target)
		start int     // first ordinal in the joined schema
	}
	if len(st.From) == 0 {
		return nil, fmt.Errorf("minidb: query has no FROM clause")
	}
	var sources []*source
	joined := schema.Schema{}
	bindings := map[string]bool{}
	for _, ref := range st.From {
		b := strings.ToLower(ref.Binding())
		if b == "" {
			return nil, fmt.Errorf("minidb: FROM item requires a name or alias")
		}
		if bindings[b] {
			return nil, fmt.Errorf("minidb: duplicate table binding %q", ref.Binding())
		}
		bindings[b] = true
		src := &source{ref: ref, start: joined.Len()}
		if ref.Sub != nil {
			res, err := db.runSelect(ref.Sub)
			if err != nil {
				return nil, err
			}
			src.sch = res.Schema.WithQualifier(ref.Binding())
			src.op = &valuesOp{rows: res.Rows, sch: src.sch}
		} else {
			t, ok := db.tables[strings.ToLower(ref.Name)]
			if !ok {
				return nil, fmt.Errorf("minidb: table %q does not exist", ref.Name)
			}
			sc := newScanOp(t, ref.Binding())
			src.scan = sc
			src.op = sc
			src.sch = sc.schema()
		}
		sources = append(sources, src)
		joined = joined.Concat(src.sch)
	}

	// --- conjunct classification ------------------------------------------
	// All conjuncts are bound against the full joined schema; the
	// left-deep prefix property makes those ordinals valid at the join
	// step where the conjunct first becomes evaluable.
	type conj struct {
		e         expr.Expr
		maxSource int // last source referenced; -1 for constant conjuncts
		minSource int
	}
	classify := func(e expr.Expr) (conj, error) {
		if err := expr.Bind(e, joined); err != nil {
			return conj{}, err
		}
		mn, mx := len(sources), -1
		for _, c := range expr.Columns(e) {
			si := 0
			for i := range sources {
				if c.Idx >= sources[i].start {
					si = i
				}
			}
			if si < mn {
				mn = si
			}
			if si > mx {
				mx = si
			}
		}
		if mx == -1 {
			mn = -1
		}
		return conj{e: e, maxSource: mx, minSource: mn}, nil
	}
	var conjs []conj
	for _, e := range splitAnd(st.Where) {
		c, err := classify(e)
		if err != nil {
			return nil, err
		}
		conjs = append(conjs, c)
	}
	for i, src := range sources {
		for _, e := range splitAnd(src.ref.JoinCond) {
			c, err := classify(e)
			if err != nil {
				return nil, err
			}
			if c.maxSource > i {
				return nil, fmt.Errorf("minidb: JOIN condition %s references tables to its right", e)
			}
			// ON conditions stay at their join step even if they bind
			// earlier (they cannot filter before the join syntactically,
			// but for inner joins pushing is semantics-preserving; keep
			// them at step i for clarity).
			c.maxSource = i
			if c.minSource < 0 {
				c.minSource = i
			}
			conjs = append(conjs, c)
		}
	}

	// Push single-source conjuncts into base-table scans.
	var remaining []conj
	for _, c := range conjs {
		if c.maxSource >= 0 && c.maxSource == c.minSource && sources[c.maxSource].scan != nil {
			src := sources[c.maxSource]
			local := expr.Clone(c.e)
			if err := expr.Bind(local, src.sch); err != nil {
				// e.g. unqualified name unique globally but ambiguous
				// locally cannot happen; keep the conjunct at its step.
				remaining = append(remaining, c)
				continue
			}
			src.scan.filter = expr.AndAll(src.scan.filter, local)
			considerIndex(src.scan, local)
			continue
		}
		remaining = append(remaining, c)
	}

	// --- joins -------------------------------------------------------------
	acc := sources[0].op
	accWidth := sources[0].sch.Len()
	// Conjuncts for source 0 that could not be pushed (derived tables).
	var step0 []expr.Expr
	for _, c := range remaining {
		if c.maxSource == 0 {
			step0 = append(step0, c.e)
		}
	}
	if f := expr.AndAll(step0...); f != nil {
		acc = &filterOp{child: acc, pred: f}
	}
	for i := 1; i < len(sources); i++ {
		src := sources[i]
		var stepConjs []expr.Expr
		for _, c := range remaining {
			if c.maxSource == i {
				stepConjs = append(stepConjs, c.e)
			}
		}
		var leftKeys, rightKeys []expr.Expr
		var residual []expr.Expr
		for _, e := range stepConjs {
			lk, rk, ok := equiKey(e, accWidth, src.sch.Len())
			if ok {
				leftKeys = append(leftKeys, lk)
				rightKeys = append(rightKeys, rk)
			} else {
				residual = append(residual, e)
			}
		}
		res := expr.AndAll(residual...)
		if len(leftKeys) > 0 {
			acc = newHashJoin(acc, src.op, leftKeys, rightKeys, res)
		} else {
			acc = newNLJoin(acc, src.op, res)
		}
		accWidth += src.sch.Len()
	}
	// Constant conjuncts (no column references) filter once on top.
	var consts []expr.Expr
	for _, c := range remaining {
		if c.maxSource == -1 {
			consts = append(consts, c.e)
		}
	}
	if f := expr.AndAll(consts...); f != nil {
		acc = &filterOp{child: acc, pred: f}
	}

	// --- aggregation ---------------------------------------------------------
	aggs := collectAggs(st)
	havingExpr := st.Having
	orderExprs := make([]OrderItem, len(st.OrderBy))
	copy(orderExprs, st.OrderBy)
	itemExprs := make([]SelectItem, len(st.Items))
	copy(itemExprs, st.Items)
	aggregated := len(aggs) > 0 || len(st.GroupBy) > 0

	if aggregated {
		for _, item := range itemExprs {
			if item.Star {
				return nil, fmt.Errorf("minidb: SELECT * cannot be combined with aggregation")
			}
		}
		for _, a := range aggs {
			if a.Star {
				continue
			}
			nested := false
			expr.Walk(a.Arg, func(n expr.Expr) {
				if _, ok := n.(*AggCall); ok {
					nested = true
				}
			})
			if nested {
				return nil, fmt.Errorf("minidb: nested aggregate in %s", a)
			}
			if err := expr.Bind(a.Arg, joined); err != nil {
				return nil, err
			}
		}
		for _, g := range st.GroupBy {
			if err := expr.Bind(g, joined); err != nil {
				return nil, err
			}
		}
		agg := newAggOp(acc, st.GroupBy, aggs)
		rewrite := func(e expr.Expr) (expr.Expr, error) {
			return rewriteAggExpr(e, st.GroupBy, aggs, joined)
		}
		for i := range itemExprs {
			e, err := rewrite(itemExprs[i].Expr)
			if err != nil {
				return nil, err
			}
			itemExprs[i].Expr = e
		}
		if havingExpr != nil {
			e, err := rewrite(havingExpr)
			if err != nil {
				return nil, err
			}
			havingExpr = e
		}
		for i := range orderExprs {
			e, err := rewrite(orderExprs[i].E)
			if err != nil {
				return nil, err
			}
			orderExprs[i].E = e
		}
		acc = agg
	} else if st.Having != nil {
		return nil, fmt.Errorf("minidb: HAVING requires GROUP BY or aggregates")
	}
	if havingExpr != nil {
		acc = &filterOp{child: acc, pred: havingExpr}
	}

	inputSchema := acc.schema() // post-join or post-agg

	// --- projection -----------------------------------------------------------
	var outExprs []expr.Expr
	var outCols []schema.Column
	for _, item := range itemExprs {
		if item.Star {
			for i, c := range inputSchema.Cols {
				if item.StarQual != "" && !strings.EqualFold(c.Table, item.StarQual) {
					continue
				}
				outExprs = append(outExprs, &expr.Col{Table: c.Table, Name: c.Name, Idx: i})
				outCols = append(outCols, schema.Column{Table: c.Table, Name: c.Name, Type: c.Type})
			}
			if item.StarQual != "" && len(outExprs) == 0 {
				return nil, fmt.Errorf("minidb: unknown table %q in %s.*", item.StarQual, item.StarQual)
			}
			continue
		}
		e := item.Expr
		if !aggregated {
			if err := expr.Bind(e, inputSchema); err != nil {
				return nil, err
			}
		}
		name := item.Alias
		if name == "" {
			if c, ok := e.(*expr.Col); ok {
				name = c.Name
			} else {
				name = e.String()
			}
		}
		outExprs = append(outExprs, e)
		outCols = append(outCols, schema.Column{Name: name, Type: typeOf(e, inputSchema)})
	}
	outSchema := schema.Schema{Cols: outCols}
	proj := &projectOp{child: acc, exprs: outExprs, sch: outSchema}
	var top operator = proj

	if st.Distinct {
		top = &distinctOp{child: top}
	}

	// --- order by ----------------------------------------------------------------
	if len(orderExprs) > 0 {
		outKeys, hiddenKeys, err := resolveOrderBy(orderExprs, outSchema, inputSchema, aggregated)
		if err != nil {
			return nil, err
		}
		if len(hiddenKeys) == 0 {
			top = &sortOp{child: top, keys: outKeys}
		} else {
			if st.Distinct {
				return nil, fmt.Errorf("minidb: ORDER BY expressions must appear in the select list when DISTINCT is used")
			}
			// Extend the projection with hidden sort columns, sort, trim.
			extExprs := append(append([]expr.Expr{}, outExprs...), hiddenKeys...)
			extCols := append([]schema.Column{}, outCols...)
			for i := range hiddenKeys {
				extCols = append(extCols, schema.Column{Name: fmt.Sprintf("__sort%d", i), Type: schema.TFloat})
			}
			extSchema := schema.Schema{Cols: extCols}
			ext := &projectOp{child: acc, exprs: extExprs, sch: extSchema}
			sorted := &sortOp{child: ext, keys: outKeys}
			trimExprs := make([]expr.Expr, len(outCols))
			for i, c := range outCols {
				trimExprs[i] = &expr.Col{Name: c.Name, Idx: i}
			}
			top = &projectOp{child: sorted, exprs: trimExprs, sch: outSchema}
		}
	}

	// --- limit/offset ---------------------------------------------------------------
	if st.Limit != nil || st.Offset != nil {
		lim := int64(-1)
		if st.Limit != nil {
			lim = *st.Limit
		}
		off := int64(0)
		if st.Offset != nil {
			off = *st.Offset
		}
		top = &limitOp{child: top, limit: lim, offset: off}
	}
	return top, nil
}

// foldSubqueries replaces scalar sub-queries in every expression
// position with their computed constant value. Sub-queries must be
// uncorrelated and return at most one row of one column; zero rows fold
// to NULL.
func (db *DB) foldSubqueries(st *SelectStmt) (*SelectStmt, error) {
	var firstErr error
	fold := func(e expr.Expr) expr.Expr {
		if e == nil {
			return nil
		}
		return expr.Transform(e, func(n expr.Expr) expr.Expr {
			sq, ok := n.(*Subquery)
			if !ok {
				return nil
			}
			res, err := db.runSelect(sq.Stmt)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("minidb: scalar sub-query: %w", err)
				}
				return &expr.Const{Val: value.Null()}
			}
			if res.Schema.Len() != 1 {
				if firstErr == nil {
					firstErr = fmt.Errorf("minidb: scalar sub-query must return one column, got %d", res.Schema.Len())
				}
				return &expr.Const{Val: value.Null()}
			}
			if len(res.Rows) > 1 {
				if firstErr == nil {
					firstErr = fmt.Errorf("minidb: scalar sub-query returned %d rows", len(res.Rows))
				}
				return &expr.Const{Val: value.Null()}
			}
			if len(res.Rows) == 0 {
				return &expr.Const{Val: value.Null()}
			}
			return &expr.Const{Val: res.Rows[0][0]}
		})
	}
	out := *st
	out.Where = fold(st.Where)
	out.Having = fold(st.Having)
	out.Items = append([]SelectItem{}, st.Items...)
	for i := range out.Items {
		if !out.Items[i].Star {
			out.Items[i].Expr = fold(out.Items[i].Expr)
		}
	}
	out.GroupBy = append([]expr.Expr{}, st.GroupBy...)
	for i := range out.GroupBy {
		out.GroupBy[i] = fold(out.GroupBy[i])
	}
	out.OrderBy = append([]OrderItem{}, st.OrderBy...)
	for i := range out.OrderBy {
		out.OrderBy[i].E = fold(out.OrderBy[i].E)
	}
	out.From = append([]TableRef{}, st.From...)
	for i := range out.From {
		out.From[i].JoinCond = fold(out.From[i].JoinCond)
	}
	return &out, firstErr
}

// splitAnd flattens a conjunction into its conjuncts.
func splitAnd(e expr.Expr) []expr.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*expr.Binary); ok && b.Op == expr.OpAnd {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []expr.Expr{e}
}

// equiKey recognizes `left = right` conjuncts where one side references
// only the accumulated prefix (ordinals < accWidth) and the other side
// only the new source (ordinals in [accWidth, accWidth+srcWidth)). It
// returns the prefix-side key (valid against prefix rows as-is) and the
// source-side key shifted to the source's local ordinals.
func equiKey(e expr.Expr, accWidth, srcWidth int) (expr.Expr, expr.Expr, bool) {
	b, ok := e.(*expr.Binary)
	if !ok || b.Op != expr.OpEq {
		return nil, nil, false
	}
	side := func(x expr.Expr) int { // 0=prefix, 1=source, -1=mixed/constant
		cols := expr.Columns(x)
		if len(cols) == 0 {
			return -1
		}
		s := -2
		for _, c := range cols {
			var cs int
			switch {
			case c.Idx >= 0 && c.Idx < accWidth:
				cs = 0
			case c.Idx >= accWidth && c.Idx < accWidth+srcWidth:
				cs = 1
			default:
				return -1
			}
			if s == -2 {
				s = cs
			} else if s != cs {
				return -1
			}
		}
		return s
	}
	ls, rs := side(b.L), side(b.R)
	var pre, src expr.Expr
	switch {
	case ls == 0 && rs == 1:
		pre, src = b.L, b.R
	case ls == 1 && rs == 0:
		pre, src = b.R, b.L
	default:
		return nil, nil, false
	}
	local := expr.Clone(src)
	expr.Walk(local, func(n expr.Expr) {
		if c, ok := n.(*expr.Col); ok {
			c.Idx -= accWidth
		}
	})
	return pre, local, true
}

// considerIndex inspects a pushed-down conjunct for a `col cmp const`
// shape matching an existing index, installing an index range on the
// scan. All pushed conjuncts remain in the residual filter, so the range
// only needs to over-approximate.
func considerIndex(sc *scanOp, e expr.Expr) {
	if sc.idx != nil {
		return
	}
	b, ok := e.(*expr.Binary)
	if !ok || !b.Op.Comparison() || b.Op == expr.OpNe {
		return
	}
	col, cok := b.L.(*expr.Col)
	con, vok := b.R.(*expr.Const)
	op := b.Op
	if !cok || !vok {
		// try const cmp col
		con2, vok2 := b.L.(*expr.Const)
		col2, cok2 := b.R.(*expr.Col)
		if !cok2 || !vok2 {
			return
		}
		col, con = col2, con2
		op = b.Op.Flip()
	}
	if con.Val.IsNull() {
		return
	}
	if _, ok := sc.table.Index(col.Name); !ok {
		return
	}
	r := &indexRange{col: col.Name}
	switch op {
	case expr.OpEq:
		r.lo = &indexBound{key: con.Val, inclusive: true}
		r.hi = &indexBound{key: con.Val, inclusive: true}
	case expr.OpLt:
		r.hi = &indexBound{key: con.Val, inclusive: false}
	case expr.OpLe:
		r.hi = &indexBound{key: con.Val, inclusive: true}
	case expr.OpGt:
		r.lo = &indexBound{key: con.Val, inclusive: false}
	case expr.OpGe:
		r.lo = &indexBound{key: con.Val, inclusive: true}
	default:
		return
	}
	sc.idx = r
}

// collectAggs gathers the distinct aggregate calls (by rendered text)
// appearing in SELECT items, HAVING and ORDER BY.
func collectAggs(st *SelectStmt) []*AggCall {
	var aggs []*AggCall
	seen := map[string]bool{}
	visit := func(e expr.Expr) {
		if e == nil {
			return
		}
		expr.Walk(e, func(n expr.Expr) {
			if a, ok := n.(*AggCall); ok {
				key := a.String()
				if !seen[key] {
					seen[key] = true
					aggs = append(aggs, a)
				}
			}
		})
	}
	for _, it := range st.Items {
		if !it.Star {
			visit(it.Expr)
		}
	}
	visit(st.Having)
	for _, o := range st.OrderBy {
		visit(o.E)
	}
	return aggs
}

// rewriteAggExpr rewrites an expression for evaluation over aggregation
// output: group-by expressions become references to the leading output
// columns, aggregate calls become references to the trailing ones. Any
// remaining raw column reference is an error (not grouped).
func rewriteAggExpr(e expr.Expr, groupBy []expr.Expr, aggs []*AggCall, joined schema.Schema) (expr.Expr, error) {
	gStrs := make([]string, len(groupBy))
	for i, g := range groupBy {
		gStrs[i] = g.String()
	}
	aStrs := make([]string, len(aggs))
	for i, a := range aggs {
		aStrs[i] = a.String()
	}
	out := expr.Transform(e, func(n expr.Expr) expr.Expr {
		ns := n.String()
		for i, gs := range gStrs {
			if ns == gs {
				name := gs
				if c, ok := n.(*expr.Col); ok {
					name = c.Name
				}
				return &expr.Col{Name: name, Idx: i}
			}
		}
		// A column that resolves to the same ordinal as a group-by
		// column also matches (e.g. GROUP BY r.cal, SELECT cal).
		if c, ok := n.(*expr.Col); ok {
			probe := expr.Clone(c)
			if err := expr.Bind(probe, joined); err == nil {
				pc := probe.(*expr.Col)
				for i, g := range groupBy {
					if gc, ok := g.(*expr.Col); ok && gc.Idx == pc.Idx {
						return &expr.Col{Name: c.Name, Idx: i}
					}
				}
			}
		}
		if a, ok := n.(*AggCall); ok {
			as := a.String()
			for i, s := range aStrs {
				if as == s {
					return &expr.Col{Name: s, Idx: len(groupBy) + i}
				}
			}
		}
		return nil
	})
	var badCol *expr.Col
	expr.Walk(out, func(n expr.Expr) {
		if c, ok := n.(*expr.Col); ok && c.Idx < 0 && badCol == nil {
			badCol = c
		}
	})
	if badCol != nil {
		return nil, fmt.Errorf("minidb: column %s must appear in GROUP BY or inside an aggregate", badCol)
	}
	return out, nil
}

// resolveOrderBy binds ORDER BY keys. Keys that reference output aliases
// or ordinals sort the projected rows; anything else becomes a hidden
// input-level key (second return value), and the caller extends the
// projection. With aggregation, expressions were already rewritten and
// bound, so they sort the pre-projection (aggregated) rows via hidden keys
// unless they match output columns.
func resolveOrderBy(items []OrderItem, outSchema, inSchema schema.Schema, aggregated bool) (keys []OrderItem, hidden []expr.Expr, err error) {
	hiddenStart := outSchema.Len()
	for _, it := range items {
		// ORDER BY <ordinal>
		if c, ok := it.E.(*expr.Const); ok && c.Val.Kind() == value.KindInt {
			n := int(c.Val.IntVal())
			if n < 1 || n > outSchema.Len() {
				return nil, nil, fmt.Errorf("minidb: ORDER BY position %d out of range", n)
			}
			keys = append(keys, OrderItem{E: &expr.Col{Idx: n - 1}, Desc: it.Desc})
			continue
		}
		if aggregated {
			// Already rewritten+bound against the agg schema (== input
			// schema here). Check whether it coincides with an output
			// column; otherwise it is a hidden key.
			if c, ok := it.E.(*expr.Col); ok {
				matched := false
				for i, oc := range outSchema.Cols {
					if strings.EqualFold(oc.Name, c.Name) {
						keys = append(keys, OrderItem{E: &expr.Col{Idx: i}, Desc: it.Desc})
						matched = true
						break
					}
				}
				if matched {
					continue
				}
			}
			keys = append(keys, OrderItem{E: &expr.Col{Idx: hiddenStart + len(hidden)}, Desc: it.Desc})
			hidden = append(hidden, it.E)
			continue
		}
		// Try output schema first (aliases), then input schema.
		probe := expr.Clone(it.E)
		if err := expr.Bind(probe, outSchema); err == nil {
			keys = append(keys, OrderItem{E: probe, Desc: it.Desc})
			continue
		}
		probe = expr.Clone(it.E)
		if err := expr.Bind(probe, inSchema); err != nil {
			return nil, nil, fmt.Errorf("minidb: cannot resolve ORDER BY expression %s: %w", it.E, err)
		}
		keys = append(keys, OrderItem{E: &expr.Col{Idx: hiddenStart + len(hidden)}, Desc: it.Desc})
		hidden = append(hidden, probe)
	}
	return keys, hidden, nil
}

// typeOf infers a best-effort output column type for result schemas.
func typeOf(e expr.Expr, in schema.Schema) schema.Type {
	switch n := e.(type) {
	case *expr.Const:
		switch n.Val.Kind() {
		case value.KindBool:
			return schema.TBool
		case value.KindInt:
			return schema.TInt
		case value.KindString:
			return schema.TString
		default:
			return schema.TFloat
		}
	case *expr.Col:
		if n.Idx >= 0 && n.Idx < in.Len() {
			return in.Cols[n.Idx].Type
		}
		return schema.TFloat
	case *expr.Binary:
		if n.Op.Comparison() || n.Op == expr.OpAnd || n.Op == expr.OpOr {
			return schema.TBool
		}
		lt := typeOf(n.L, in)
		rt := typeOf(n.R, in)
		if n.Op == expr.OpDiv {
			return schema.TFloat
		}
		if lt == schema.TInt && rt == schema.TInt {
			return schema.TInt
		}
		if lt == schema.TString && rt == schema.TString {
			return schema.TString
		}
		return schema.TFloat
	case *expr.Not, *expr.Between, *expr.InList, *expr.IsNull, *expr.Like:
		return schema.TBool
	case *expr.Neg:
		return typeOf(n.X, in)
	case *expr.Call:
		switch n.Name {
		case "LOWER", "UPPER":
			return schema.TString
		case "LENGTH":
			return schema.TInt
		case "ABS", "COALESCE", "LEAST", "GREATEST":
			if len(n.Args) > 0 {
				return typeOf(n.Args[0], in)
			}
		}
		return schema.TFloat
	}
	return schema.TFloat
}

package minidb

import (
	"fmt"
	"sort"

	"repro/internal/btree"
	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/value"
)

// operator is a volcano-style iterator. Schemas are fixed at plan time;
// open prepares state; next streams rows until ok=false.
type operator interface {
	schema() schema.Schema
	open() error
	next() (row schema.Row, ok bool, err error)
	close()
}

// --- scan -------------------------------------------------------------------

// indexRange describes an index-driven scan: rows whose key falls in
// [lo, hi] (either bound may be nil).
type indexRange struct {
	col    string
	lo, hi *indexBound
}

type indexBound struct {
	key       value.V
	inclusive bool
}

// scanOp reads a base table, optionally through an index range, and
// applies a pushed-down residual filter.
type scanOp struct {
	table   *Table
	binding string
	filter  expr.Expr // bound to sch; may be nil
	idx     *indexRange
	sch     schema.Schema

	rids []int32 // resolved by index scan; nil = heap order
	pos  int
}

func newScanOp(t *Table, binding string) *scanOp {
	return &scanOp{table: t, binding: binding, sch: t.Schema.WithQualifier(binding)}
}

func (s *scanOp) schema() schema.Schema { return s.sch }

func (s *scanOp) open() error {
	s.pos = 0
	s.rids = nil
	if s.idx == nil {
		return nil
	}
	tree, ok := s.table.Index(s.idx.col)
	if !ok {
		return fmt.Errorf("minidb: planned index on %s(%s) disappeared", s.table.Name, s.idx.col)
	}
	var lo, hi *btree.Bound
	if b := s.idx.lo; b != nil {
		lo = &btree.Bound{Key: b.key, Inclusive: b.inclusive}
	}
	if b := s.idx.hi; b != nil {
		hi = &btree.Bound{Key: b.key, Inclusive: b.inclusive}
	}
	// Index scans return at least the matching rows; the residual filter
	// re-checks every pushed predicate, so over-approximation is safe.
	tree.AscendRange(lo, hi, func(_ value.V, rids []int32) bool {
		s.rids = append(s.rids, rids...)
		return true
	})
	if s.rids == nil {
		s.rids = []int32{} // distinguish "empty index result" from "heap scan"
	}
	return nil
}

func (s *scanOp) next() (schema.Row, bool, error) {
	for {
		var row schema.Row
		if s.rids != nil {
			if s.pos >= len(s.rids) {
				return nil, false, nil
			}
			row = s.table.Rows[s.rids[s.pos]]
		} else {
			if s.pos >= len(s.table.Rows) {
				return nil, false, nil
			}
			row = s.table.Rows[s.pos]
		}
		s.pos++
		if s.filter != nil {
			ok, err := expr.EvalBool(s.filter, row)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				continue
			}
		}
		return row, true, nil
	}
}

func (s *scanOp) close() { s.rids = nil }

// --- materialized rows (derived tables) --------------------------------------

type valuesOp struct {
	rows []schema.Row
	sch  schema.Schema
	pos  int
}

func (v *valuesOp) schema() schema.Schema { return v.sch }
func (v *valuesOp) open() error           { v.pos = 0; return nil }
func (v *valuesOp) next() (schema.Row, bool, error) {
	if v.pos >= len(v.rows) {
		return nil, false, nil
	}
	r := v.rows[v.pos]
	v.pos++
	return r, true, nil
}
func (v *valuesOp) close() {}

// --- filter ------------------------------------------------------------------

type filterOp struct {
	child operator
	pred  expr.Expr // bound to child schema
}

func (f *filterOp) schema() schema.Schema { return f.child.schema() }
func (f *filterOp) open() error           { return f.child.open() }
func (f *filterOp) next() (schema.Row, bool, error) {
	for {
		row, ok, err := f.child.next()
		if err != nil || !ok {
			return nil, false, err
		}
		pass, err := expr.EvalBool(f.pred, row)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return row, true, nil
		}
	}
}
func (f *filterOp) close() { f.child.close() }

// --- projection ---------------------------------------------------------------

type projectOp struct {
	child operator
	exprs []expr.Expr // bound to child schema
	sch   schema.Schema
}

func (p *projectOp) schema() schema.Schema { return p.sch }
func (p *projectOp) open() error           { return p.child.open() }
func (p *projectOp) next() (schema.Row, bool, error) {
	row, ok, err := p.child.next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(schema.Row, len(p.exprs))
	for i, e := range p.exprs {
		v, err := e.Eval(row)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}
func (p *projectOp) close() { p.child.close() }

// --- nested-loop join -----------------------------------------------------------

// nlJoinOp is an inner join that streams the left input and loops over a
// materialized right input, applying an optional condition. With a nil
// condition it is a cross join. PackageBuilder's §4.2 replacement query
// runs through this operator when no equi-key is available.
type nlJoinOp struct {
	left, right operator
	cond        expr.Expr // bound to concat schema; may be nil
	sch         schema.Schema

	rightRows []schema.Row
	curLeft   schema.Row
	haveLeft  bool
	rpos      int
	scratch   schema.Row // condition-evaluation buffer; avoids allocating
	// a concat row for every rejected combination (the §4.2 replacement
	// joins reject almost everything)
}

func newNLJoin(l, r operator, cond expr.Expr) *nlJoinOp {
	return &nlJoinOp{left: l, right: r, cond: cond, sch: l.schema().Concat(r.schema())}
}

func (j *nlJoinOp) schema() schema.Schema { return j.sch }

func (j *nlJoinOp) open() error {
	if err := j.left.open(); err != nil {
		return err
	}
	if err := j.right.open(); err != nil {
		return err
	}
	j.rightRows = j.rightRows[:0]
	for {
		row, ok, err := j.right.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		j.rightRows = append(j.rightRows, row)
	}
	j.right.close()
	j.haveLeft = false
	j.rpos = 0
	return nil
}

func (j *nlJoinOp) next() (schema.Row, bool, error) {
	for {
		if !j.haveLeft {
			row, ok, err := j.left.next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.curLeft = row
			j.haveLeft = true
			j.rpos = 0
			if j.cond != nil {
				if j.scratch == nil {
					j.scratch = make(schema.Row, j.sch.Len())
				}
				copy(j.scratch, row)
			}
		}
		lw := len(j.curLeft)
		for j.rpos < len(j.rightRows) {
			right := j.rightRows[j.rpos]
			j.rpos++
			if j.cond != nil {
				copy(j.scratch[lw:], right)
				pass, err := expr.EvalBool(j.cond, j.scratch)
				if err != nil {
					return nil, false, err
				}
				if !pass {
					continue
				}
			}
			return j.curLeft.Concat(right), true, nil
		}
		j.haveLeft = false
	}
}

func (j *nlJoinOp) close() {
	j.left.close()
	j.rightRows = nil
}

// --- hash join -------------------------------------------------------------------

// hashJoinOp is an inner equi-join: it builds a hash table on the right
// input keyed by rightKeys, then probes with the left input. A residual
// condition covers non-equi conjuncts.
type hashJoinOp struct {
	left, right         operator
	leftKeys, rightKeys []expr.Expr // bound to left/right schemas
	residual            expr.Expr   // bound to concat schema; may be nil
	sch                 schema.Schema
	table               map[uint64][]schema.Row
	curMatches          []schema.Row
	curLeft             schema.Row
	mpos                int
	leftKeyVals         []value.V
}

func newHashJoin(l, r operator, lk, rk []expr.Expr, residual expr.Expr) *hashJoinOp {
	return &hashJoinOp{left: l, right: r, leftKeys: lk, rightKeys: rk,
		residual: residual, sch: l.schema().Concat(r.schema())}
}

func (j *hashJoinOp) schema() schema.Schema { return j.sch }

func (j *hashJoinOp) open() error {
	if err := j.left.open(); err != nil {
		return err
	}
	if err := j.right.open(); err != nil {
		return err
	}
	j.table = make(map[uint64][]schema.Row)
	for {
		row, ok, err := j.right.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		h, null, err := hashKeys(j.rightKeys, row)
		if err != nil {
			return err
		}
		if null {
			continue // NULL keys never join
		}
		j.table[h] = append(j.table[h], row)
	}
	j.right.close()
	j.curMatches = nil
	j.mpos = 0
	return nil
}

func hashKeys(keys []expr.Expr, row schema.Row) (uint64, bool, error) {
	var h uint64 = 1469598103934665603
	for _, k := range keys {
		v, err := k.Eval(row)
		if err != nil {
			return 0, false, err
		}
		if v.IsNull() {
			return 0, true, nil
		}
		h = h*1099511628211 + v.Hash()
	}
	return h, false, nil
}

func (j *hashJoinOp) next() (schema.Row, bool, error) {
	for {
		for j.mpos < len(j.curMatches) {
			right := j.curMatches[j.mpos]
			j.mpos++
			// Verify key equality (hash collisions) then residual.
			eq := true
			for i := range j.leftKeys {
				rv, err := j.rightKeys[i].Eval(right)
				if err != nil {
					return nil, false, err
				}
				if !j.leftKeyVals[i].Equal(rv) {
					eq = false
					break
				}
			}
			if !eq {
				continue
			}
			out := j.curLeft.Concat(right)
			if j.residual != nil {
				pass, err := expr.EvalBool(j.residual, out)
				if err != nil {
					return nil, false, err
				}
				if !pass {
					continue
				}
			}
			return out, true, nil
		}
		row, ok, err := j.left.next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.curLeft = row
		h, null, err := hashKeys(j.leftKeys, row)
		if err != nil {
			return nil, false, err
		}
		if null {
			j.curMatches = nil
			j.mpos = 0
			continue
		}
		j.leftKeyVals = j.leftKeyVals[:0]
		for _, k := range j.leftKeys {
			v, _ := k.Eval(row)
			j.leftKeyVals = append(j.leftKeyVals, v)
		}
		j.curMatches = j.table[h]
		j.mpos = 0
	}
}

func (j *hashJoinOp) close() {
	j.left.close()
	j.table = nil
}

// --- sort, distinct, limit --------------------------------------------------------

type sortOp struct {
	child operator
	keys  []OrderItem // bound to child schema
	rows  []schema.Row
	pos   int
}

func (s *sortOp) schema() schema.Schema { return s.child.schema() }

func (s *sortOp) open() error {
	if err := s.child.open(); err != nil {
		return err
	}
	s.rows = s.rows[:0]
	for {
		row, ok, err := s.child.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		s.rows = append(s.rows, row)
	}
	s.child.close()
	var evalErr error
	sort.SliceStable(s.rows, func(i, k int) bool {
		for _, key := range s.keys {
			a, err := key.E.Eval(s.rows[i])
			if err != nil && evalErr == nil {
				evalErr = err
			}
			b, err := key.E.Eval(s.rows[k])
			if err != nil && evalErr == nil {
				evalErr = err
			}
			if a.IsNull() && b.IsNull() {
				continue
			}
			less := a.SortLess(b)
			greater := b.SortLess(a)
			if !less && !greater {
				continue
			}
			if key.Desc {
				return greater
			}
			return less
		}
		return false
	})
	s.pos = 0
	return evalErr
}

func (s *sortOp) next() (schema.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

func (s *sortOp) close() { s.rows = nil }

type distinctOp struct {
	child operator
	seen  map[string]bool
}

func (d *distinctOp) schema() schema.Schema { return d.child.schema() }
func (d *distinctOp) open() error {
	d.seen = make(map[string]bool)
	return d.child.open()
}
func (d *distinctOp) next() (schema.Row, bool, error) {
	for {
		row, ok, err := d.child.next()
		if err != nil || !ok {
			return nil, false, err
		}
		var key []byte
		for _, v := range row {
			key = v.EncodeKey(key)
		}
		k := string(key)
		if d.seen[k] {
			continue
		}
		d.seen[k] = true
		return row, true, nil
	}
}
func (d *distinctOp) close() { d.child.close(); d.seen = nil }

type limitOp struct {
	child         operator
	limit, offset int64
	emitted       int64
	skipped       int64
}

func (l *limitOp) schema() schema.Schema { return l.child.schema() }
func (l *limitOp) open() error {
	l.emitted, l.skipped = 0, 0
	return l.child.open()
}
func (l *limitOp) next() (schema.Row, bool, error) {
	for {
		if l.limit >= 0 && l.emitted >= l.limit {
			return nil, false, nil
		}
		row, ok, err := l.child.next()
		if err != nil || !ok {
			return nil, false, err
		}
		if l.skipped < l.offset {
			l.skipped++
			continue
		}
		l.emitted++
		return row, true, nil
	}
}
func (l *limitOp) close() { l.child.close() }

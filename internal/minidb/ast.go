package minidb

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/value"
)

// Stmt is a parsed SQL statement.
type Stmt interface{ stmt() }

// CreateTableStmt is CREATE TABLE name (col type, ...).
type CreateTableStmt struct {
	Name   string
	Schema schema.Schema
}

// CreateIndexStmt is CREATE INDEX [name] ON table (col).
type CreateIndexStmt struct {
	Name  string
	Table string
	Col   string
}

// InsertStmt is INSERT INTO table [(cols)] VALUES (...), (...).
// Value expressions must be constant (no column references).
type InsertStmt struct {
	Table string
	Cols  []string
	Rows  [][]expr.Expr
}

// DeleteStmt is DELETE FROM table [WHERE pred].
type DeleteStmt struct {
	Table string
	Where expr.Expr
}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    expr.Expr
	GroupBy  []expr.Expr
	Having   expr.Expr
	OrderBy  []OrderItem
	Limit    *int64
	Offset   *int64
}

// SelectItem is one output column: either a star ("*" or "alias.*") or
// an expression with an optional alias.
type SelectItem struct {
	Star     bool
	StarQual string // non-empty for "alias.*"
	Expr     expr.Expr
	Alias    string
}

// TableRef is one FROM source: a base table or a derived table, with an
// optional alias. JoinCond, when non-nil, is the ON condition joining
// this ref to everything to its left (JOIN ... ON syntax); comma-listed
// refs have nil JoinCond and are cross joins constrained by WHERE.
type TableRef struct {
	Name     string
	Alias    string
	Sub      *SelectStmt
	JoinCond expr.Expr
}

// Binding name for the ref ("alias" falling back to the table name).
func (r TableRef) Binding() string {
	if r.Alias != "" {
		return r.Alias
	}
	return r.Name
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	E    expr.Expr
	Desc bool
}

func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*InsertStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*SelectStmt) stmt()      {}

// AggCall is an aggregate invocation appearing in SELECT/HAVING/ORDER
// BY. It implements expr.Expr but cannot be evaluated directly: the
// planner rewrites every AggCall into a column reference over the
// aggregation output. It implements expr.Container so generic
// expression traversal descends into the argument.
type AggCall struct {
	Fn   string // COUNT, SUM, AVG, MIN, MAX (canonical upper case)
	Arg  expr.Expr
	Star bool // COUNT(*)
}

// Eval reports an error: aggregates are handled by the planner.
func (a *AggCall) Eval(schema.Row) (value.V, error) {
	return value.Null(), fmt.Errorf("minidb: aggregate %s used outside an aggregation context", a.String())
}

// String renders "FN(arg)" or "COUNT(*)".
func (a *AggCall) String() string {
	if a.Star {
		return a.Fn + "(*)"
	}
	return a.Fn + "(" + a.Arg.String() + ")"
}

// Children implements expr.Container.
func (a *AggCall) Children() []expr.Expr {
	if a.Star {
		return nil
	}
	return []expr.Expr{a.Arg}
}

// CloneWith implements expr.Container.
func (a *AggCall) CloneWith(children []expr.Expr) expr.Expr {
	c := &AggCall{Fn: a.Fn, Star: a.Star}
	if len(children) > 0 {
		c.Arg = children[0]
	}
	return c
}

// Subquery is an uncorrelated scalar sub-query in an expression. The
// planner evaluates it once and substitutes its single value.
type Subquery struct {
	Stmt *SelectStmt
	Text string // original text, for rendering
}

// Eval reports an error: sub-queries are folded by the planner.
func (s *Subquery) Eval(schema.Row) (value.V, error) {
	return value.Null(), fmt.Errorf("minidb: scalar sub-query used outside a planning context")
}

// String renders the original sub-query text.
func (s *Subquery) String() string { return "(" + strings.TrimSpace(s.Text) + ")" }

// Children implements expr.Container (no scalar children).
func (s *Subquery) Children() []expr.Expr { return nil }

// CloneWith implements expr.Container.
func (s *Subquery) CloneWith([]expr.Expr) expr.Expr { return &Subquery{Stmt: s.Stmt, Text: s.Text} }

package minidb

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/btree"
	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/value"
)

// Result is the materialized output of a statement. For SELECT, Schema
// and Rows are populated; for DDL/DML, Affected counts changed rows.
type Result struct {
	Schema   schema.Schema
	Rows     []schema.Row
	Affected int
}

// Exec parses and runs a single SQL statement.
func (db *DB) Exec(sql string) (*Result, error) {
	st, err := ParseStmt(sql)
	if err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case *SelectStmt:
		db.mu.RLock()
		defer db.mu.RUnlock()
		return db.runSelect(s)
	case *CreateTableStmt:
		_, err := db.CreateTable(s.Name, s.Schema)
		return &Result{}, err
	case *CreateIndexStmt:
		return &Result{}, db.CreateIndex(s.Table, s.Col)
	case *InsertStmt:
		return db.runInsert(s)
	case *DeleteStmt:
		return db.runDelete(s)
	}
	return nil, fmt.Errorf("minidb: unsupported statement %T", st)
}

// Query is Exec restricted to SELECT statements.
func (db *DB) Query(sql string) (*Result, error) {
	st, err := ParseStmt(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("minidb: Query requires a SELECT statement")
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.runSelect(sel)
}

// RunSelectStmt executes an already-parsed SELECT (used by engine
// components that build statements programmatically). The caller must
// not hold the database lock.
func (db *DB) RunSelectStmt(st *SelectStmt) (*Result, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.runSelect(st)
}

// runSelect plans and drains a SELECT. Callers hold at least a read lock.
func (db *DB) runSelect(st *SelectStmt) (*Result, error) {
	op, err := db.planSelect(st)
	if err != nil {
		return nil, err
	}
	if err := op.open(); err != nil {
		return nil, err
	}
	defer op.close()
	res := &Result{Schema: op.schema()}
	for {
		row, ok, err := op.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (db *DB) runInsert(s *InsertStmt) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return nil, fmt.Errorf("minidb: table %q does not exist", s.Table)
	}
	// Column list: default to schema order.
	ords := make([]int, 0, len(s.Cols))
	if len(s.Cols) > 0 {
		for _, c := range s.Cols {
			i, err := t.Schema.IndexOf("", c)
			if err != nil {
				return nil, fmt.Errorf("minidb: insert into %s: %w", s.Table, err)
			}
			ords = append(ords, i)
		}
	}
	rows := make([]schema.Row, 0, len(s.Rows))
	for _, exprRow := range s.Rows {
		want := len(ords)
		if want == 0 {
			want = t.Schema.Len()
		}
		if len(exprRow) != want {
			return nil, fmt.Errorf("minidb: insert into %s: %d values for %d columns", s.Table, len(exprRow), want)
		}
		row := make(schema.Row, t.Schema.Len())
		for i := range row {
			row[i] = value.Null()
		}
		for i, e := range exprRow {
			if len(expr.Columns(e)) > 0 {
				return nil, fmt.Errorf("minidb: INSERT values must be constant expressions, got %s", e)
			}
			v, err := e.Eval(nil)
			if err != nil {
				return nil, err
			}
			ord := i
			if len(ords) > 0 {
				ord = ords[i]
			}
			row[ord] = v
		}
		rows = append(rows, row)
	}
	if err := t.insert(rows); err != nil {
		return nil, err
	}
	return &Result{Affected: len(rows)}, nil
}

func (db *DB) runDelete(s *DeleteStmt) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return nil, fmt.Errorf("minidb: table %q does not exist", s.Table)
	}
	var pred expr.Expr
	if s.Where != nil {
		pred = expr.Clone(s.Where)
		// Accept both bare and table-qualified column references.
		sch := t.Schema.WithQualifier(t.Name)
		if err := expr.Bind(pred, sch); err != nil {
			return nil, err
		}
	}
	kept := t.Rows[:0:0]
	var deleted []int
	for pos, row := range t.Rows {
		del := true
		if pred != nil {
			ok, err := expr.EvalBool(pred, row)
			if err != nil {
				return nil, err
			}
			del = ok
		}
		if del {
			deleted = append(deleted, pos)
		} else {
			kept = append(kept, row)
		}
	}
	t.Rows = kept
	if len(deleted) > 0 {
		t.logWrite(0, deleted)
	}
	// Row ids shifted; rebuild every index.
	for col := range t.indexes {
		ord, _ := t.Schema.IndexOf("", col)
		tree := newIndexOver(t, ord)
		t.indexes[col] = tree
	}
	return &Result{Affected: len(deleted)}, nil
}

// Format renders the result as an aligned text table.
func (r *Result) Format(w io.Writer) {
	if r.Schema.Len() == 0 {
		fmt.Fprintf(w, "OK (%d rows affected)\n", r.Affected)
		return
	}
	headers := make([]string, r.Schema.Len())
	widths := make([]int, r.Schema.Len())
	for i, c := range r.Schema.Cols {
		headers[i] = c.QualifiedName()
		widths[i] = len(headers[i])
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	line := func(parts []string) {
		for i, p := range parts {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], p)
		}
		fmt.Fprintln(w)
	}
	line(headers)
	seps := make([]string, len(headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range cells {
		line(row)
	}
	fmt.Fprintf(w, "(%d rows)\n", len(r.Rows))
}

// newIndexOver builds a fresh index over column ordinal ord.
func newIndexOver(t *Table, ord int) *btree.Tree {
	tree := btree.New()
	for rid, row := range t.Rows {
		if !row[ord].IsNull() {
			_ = tree.Insert(row[ord], int32(rid))
		}
	}
	return tree
}

// Package minidb is the relational substrate PackageBuilder talks to.
// The paper's system is "an external module which communicates with the
// DBMS, where the data resides, via SQL"; minidb plays the DBMS role:
// an embedded, in-memory engine with a SQL subset (CREATE TABLE /
// CREATE INDEX / INSERT / DELETE / SELECT with joins, grouping,
// aggregates, ORDER BY and LIMIT), a volcano-style streaming executor,
// predicate pushdown, hash joins, and B+-tree secondary indexes.
//
// The engine favours clarity over raw speed but is careful about the
// cases PackageBuilder stresses: the §4.2 local-search replacement
// query is a k-way self-join, which streams through nested loops or
// hash joins without materializing the cross product.
package minidb

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/btree"
	"repro/internal/schema"
	"repro/internal/value"
)

// DB is an in-memory database: a catalog of named tables. All methods
// are safe for concurrent use; readers proceed in parallel.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// New returns an empty database.
func New() *DB {
	return &DB{tables: map[string]*Table{}}
}

// Table is a heap of rows plus optional secondary indexes. The schema's
// columns are unqualified; scans qualify them with the table name or
// alias.
type Table struct {
	Name    string
	Schema  schema.Schema
	Rows    []schema.Row
	indexes map[string]*btree.Tree // keyed by lower-case column name

	// version and log implement the per-table write tracking DeltaSince
	// serves (see delta.go).
	version uint64
	log     []deltaEntry
}

// CreateTable registers a new, empty table. Column qualifiers in the
// schema are cleared; names must be unique within the table.
func (db *DB) CreateTable(name string, sc schema.Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := db.tables[key]; exists {
		return nil, fmt.Errorf("minidb: table %q already exists", name)
	}
	seen := map[string]bool{}
	cols := make([]schema.Column, len(sc.Cols))
	for i, c := range sc.Cols {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return nil, fmt.Errorf("minidb: duplicate column %q in table %q", c.Name, name)
		}
		seen[lc] = true
		cols[i] = schema.Column{Name: c.Name, Type: c.Type}
	}
	t := &Table{Name: name, Schema: schema.Schema{Cols: cols}, indexes: map[string]*btree.Tree{}}
	db.tables[key] = t
	return t, nil
}

// DropTable removes a table; dropping a missing table is an error.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; !ok {
		return fmt.Errorf("minidb: table %q does not exist", name)
	}
	delete(db.tables, key)
	return nil
}

// Table looks up a table by name (case-insensitive).
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// TableNames returns the catalog's table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// InsertRows validates and appends rows to a table, maintaining its
// indexes. Rows are validated against the schema (ints widen to floats).
func (db *DB) InsertRows(table string, rows []schema.Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("minidb: table %q does not exist", table)
	}
	return t.insert(rows)
}

func (t *Table) insert(rows []schema.Row) error {
	// A validation failure can leave earlier rows of the batch appended;
	// the write log must record exactly what landed.
	appended := 0
	defer func() {
		if appended > 0 {
			t.logWrite(appended, nil)
		}
	}()
	for _, r := range rows {
		vr, err := t.Schema.Validate(r)
		if err != nil {
			return fmt.Errorf("minidb: insert into %s: %w", t.Name, err)
		}
		rid := int32(len(t.Rows))
		t.Rows = append(t.Rows, vr)
		appended++
		for col, idx := range t.indexes {
			ord, _ := t.Schema.IndexOf("", col)
			if !vr[ord].IsNull() {
				_ = idx.Insert(vr[ord], rid)
			}
		}
	}
	return nil
}

// CreateIndex builds a B+-tree index over one column. NULLs are skipped.
func (db *DB) CreateIndex(table, col string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("minidb: table %q does not exist", table)
	}
	ord, err := t.Schema.IndexOf("", col)
	if err != nil {
		return fmt.Errorf("minidb: create index: %w", err)
	}
	key := strings.ToLower(col)
	if _, exists := t.indexes[key]; exists {
		return fmt.Errorf("minidb: index on %s(%s) already exists", table, col)
	}
	tree := btree.New()
	for rid, row := range t.Rows {
		if !row[ord].IsNull() {
			_ = tree.Insert(row[ord], int32(rid))
		}
	}
	t.indexes[key] = tree
	return nil
}

// Index returns the index on col, if any.
func (t *Table) Index(col string) (*btree.Tree, bool) {
	idx, ok := t.indexes[strings.ToLower(col)]
	return idx, ok
}

// ColStats summarizes a numeric column: MIN, MAX (as floats) and the
// count of non-NULL values. It uses an index when available, otherwise a
// scan. The §4.1 pruning rules consume these statistics.
func (t *Table) ColStats(col string) (min, max float64, n int, err error) {
	ord, err := t.Schema.IndexOf("", col)
	if err != nil {
		return 0, 0, 0, err
	}
	if !t.Schema.Cols[ord].Type.Numeric() {
		return 0, 0, 0, fmt.Errorf("minidb: ColStats on non-numeric column %s.%s", t.Name, col)
	}
	if idx, ok := t.indexes[strings.ToLower(col)]; ok {
		lo, okMin := idx.Min()
		hi, okMax := idx.Max()
		if !okMin || !okMax {
			return 0, 0, 0, nil
		}
		mn, _ := lo.AsFloat()
		mx, _ := hi.AsFloat()
		return mn, mx, idx.Len(), nil
	}
	first := true
	for _, row := range t.Rows {
		v := row[ord]
		if v.IsNull() {
			continue
		}
		f, _ := v.AsFloat()
		if first {
			min, max = f, f
			first = false
		} else {
			if f < min {
				min = f
			}
			if f > max {
				max = f
			}
		}
		n++
	}
	return min, max, n, nil
}

// LoadCSV reads CSV with a header into a new table. Header cells may be
// "name" (type inferred from the data) or "name:type". An existing table
// with the same name is an error.
func (db *DB) LoadCSV(table string, r io.Reader) (int, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("minidb: csv header: %w", err)
	}
	type colSpec struct {
		name  string
		typ   schema.Type
		typed bool
	}
	specs := make([]colSpec, len(header))
	for i, h := range header {
		name := strings.TrimSpace(h)
		if at := strings.IndexByte(name, ':'); at >= 0 {
			tn := strings.TrimSpace(name[at+1:])
			ty, err := schema.TypeFromName(tn)
			if err != nil {
				return 0, fmt.Errorf("minidb: csv header %q: %w", h, err)
			}
			specs[i] = colSpec{name: strings.TrimSpace(name[:at]), typ: ty, typed: true}
		} else {
			specs[i] = colSpec{name: name}
		}
	}
	var records [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("minidb: csv: %w", err)
		}
		records = append(records, rec)
	}
	// Infer untyped columns: INT if all parse as ints, FLOAT if numeric,
	// BOOL if all booleans, else TEXT. Empty cells are NULL and don't vote.
	for i := range specs {
		if specs[i].typed {
			continue
		}
		specs[i].typ = inferType(records, i)
	}
	cols := make([]schema.Column, len(specs))
	for i, s := range specs {
		cols[i] = schema.Column{Name: s.name, Type: s.typ}
	}
	t, err := db.CreateTable(table, schema.Schema{Cols: cols})
	if err != nil {
		return 0, err
	}
	rows := make([]schema.Row, 0, len(records))
	for _, rec := range records {
		row := make(schema.Row, len(specs))
		for i := range specs {
			cell := ""
			if i < len(rec) {
				cell = strings.TrimSpace(rec[i])
			}
			v, err := value.ParseAs(cell, specs[i].typ.Kind())
			if err != nil {
				return 0, fmt.Errorf("minidb: csv %s column %s: %w", table, specs[i].name, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(rows), t.insert(rows)
}

// LoadCSVFile is LoadCSV over a file path.
func (db *DB) LoadCSVFile(table, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return db.LoadCSV(table, f)
}

func inferType(records [][]string, col int) schema.Type {
	allInt, allFloat, allBool := true, true, true
	seen := false
	for _, rec := range records {
		if col >= len(rec) {
			continue
		}
		cell := strings.TrimSpace(rec[col])
		if cell == "" {
			continue
		}
		seen = true
		if _, err := value.ParseAs(cell, value.KindInt); err != nil {
			allInt = false
		}
		if _, err := value.ParseAs(cell, value.KindFloat); err != nil {
			allFloat = false
		}
		if _, err := value.ParseAs(cell, value.KindBool); err != nil {
			allBool = false
		}
	}
	switch {
	case !seen:
		return schema.TString
	case allInt:
		return schema.TInt
	case allFloat:
		return schema.TFloat
	case allBool:
		return schema.TBool
	}
	return schema.TString
}

package minidb

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/value"
)

func TestInsertRowsAPI(t *testing.T) {
	db := New()
	sc := schema.New(
		schema.Column{Name: "a", Type: schema.TInt},
		schema.Column{Name: "b", Type: schema.TFloat},
	)
	if _, err := db.CreateTable("t", sc); err != nil {
		t.Fatal(err)
	}
	rows := []schema.Row{
		{value.Int(1), value.Float(1.5)},
		{value.Int(2), value.Int(3)}, // int widens into float column
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, db, `SELECT SUM(b) FROM t`)
	if f, _ := res.Rows[0][0].AsFloat(); f != 4.5 {
		t.Errorf("sum = %g", f)
	}
	if err := db.InsertRows("nope", rows); err == nil {
		t.Error("insert into missing table should fail")
	}
	if err := db.InsertRows("t", []schema.Row{{value.Str("x"), value.Null()}}); err == nil {
		t.Error("type mismatch should fail")
	}
}

func TestLoadCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(path, []byte("x:int,y\n1,foo\n2,bar\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db := New()
	n, err := db.LoadCSVFile("f", path)
	if err != nil || n != 2 {
		t.Fatalf("LoadCSVFile = %d, %v", n, err)
	}
	if _, err := db.LoadCSVFile("g", filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestAstNodeInterfaces(t *testing.T) {
	// AggCall: String/Children/CloneWith/Eval-error
	agg := &AggCall{Fn: "SUM", Arg: expr.NewCol("t", "x")}
	if agg.String() != "SUM(t.x)" {
		t.Errorf("agg string = %q", agg.String())
	}
	if len(agg.Children()) != 1 {
		t.Error("agg children")
	}
	clone := agg.CloneWith([]expr.Expr{expr.NewCol("u", "y")}).(*AggCall)
	if clone.String() != "SUM(u.y)" {
		t.Errorf("clone = %q", clone.String())
	}
	if _, err := agg.Eval(nil); err == nil {
		t.Error("bare AggCall.Eval must error")
	}
	star := &AggCall{Fn: "COUNT", Star: true}
	if star.String() != "COUNT(*)" || len(star.Children()) != 0 {
		t.Error("star agg shape")
	}
	if star.CloneWith(nil).String() != "COUNT(*)" {
		t.Error("star clone")
	}
	// Subquery
	sq := &Subquery{Text: "SELECT 1"}
	if sq.String() != "(SELECT 1)" || len(sq.Children()) != 0 {
		t.Error("subquery shape")
	}
	if _, err := sq.Eval(nil); err == nil {
		t.Error("bare Subquery.Eval must error")
	}
	if sq.CloneWith(nil).String() != "(SELECT 1)" {
		t.Error("subquery clone")
	}
	// TableRef binding resolution
	if (TableRef{Name: "t"}).Binding() != "t" {
		t.Error("binding falls back to name")
	}
	if (TableRef{Name: "t", Alias: "a"}).Binding() != "a" {
		t.Error("alias wins")
	}
}

func TestSQLScalarFunctionsAndPredicates(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `
		SELECT UPPER(name), LENGTH(name), ABS(0 - calories)
		FROM recipes WHERE name LIKE 'O%' AND calories IS NOT NULL`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].StrVal() != "OATMEAL" {
		t.Errorf("upper = %v", res.Rows[0][0])
	}
	if !res.Rows[0][1].Equal(value.Int(7)) {
		t.Errorf("length = %v", res.Rows[0][1])
	}
	if f, _ := res.Rows[0][2].AsFloat(); f != 300 {
		t.Errorf("abs = %v", res.Rows[0][2])
	}
	// multi-key ORDER BY
	res = mustExec(t, db, `SELECT gluten, name FROM recipes ORDER BY gluten, calories DESC LIMIT 2`)
	if res.Rows[0][0].StrVal() != "free" || res.Rows[0][1].StrVal() != "Steak" {
		t.Errorf("multi-key sort = %v", res.Rows)
	}
	// IN list predicate
	res = mustExec(t, db, `SELECT COUNT(*) FROM recipes WHERE id IN (1, 3, 5, 99)`)
	if !res.Rows[0][0].Equal(value.Int(3)) {
		t.Errorf("in-list count = %v", res.Rows[0][0])
	}
	// expression in GROUP BY
	res = mustExec(t, db, `SELECT calories > 400, COUNT(*) FROM recipes GROUP BY calories > 400 ORDER BY 2`)
	if len(res.Rows) != 2 {
		t.Errorf("bool group = %v", res.Rows)
	}
}

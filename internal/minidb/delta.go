package minidb

import (
	"sort"

	"repro/internal/fault"
)

// Write tracking: every table carries a monotonic version plus a
// bounded log of the writes behind it, so higher layers (the sketch
// engine's candidate-fingerprint memo and partition-tree patcher) can
// ask "what changed since version v?" and touch only the delta instead
// of rehashing and re-partitioning the world.
//
// The log exploits two invariants of this engine's write paths: INSERT
// appends rows at the tail, and DELETE compacts the heap preserving
// the relative order of survivors. Rows present at any base version
// therefore always form a prefix of the current heap (in their
// original order), and rows inserted after it form the suffix — a
// delta is fully described by the set of base positions that vanished
// plus the current position where the post-base suffix starts.

// deltaLogMaxEntries bounds the per-table log length; one entry is
// appended per write statement. Beyond it the oldest entries are
// dropped and deltas from before the drop report !ok (callers fall
// back to a full rehash/rebuild, which is always correct).
const deltaLogMaxEntries = 1024

// deltaLogMaxDeleted bounds the total deleted-position ids the log
// retains across entries; a single huge DELETE would otherwise pin an
// arbitrarily large slice forever.
const deltaLogMaxDeleted = 1 << 16

// deltaEntry records one write statement. preVersion/preSize describe
// the table immediately before the write; exactly one of inserted or
// deleted is set.
type deltaEntry struct {
	preVersion uint64
	preSize    int
	inserted   int   // rows appended at the tail
	deleted    []int // row positions removed, ascending, in pre-write coordinates
}

// Version reports the table's monotonic write version: it starts at 0
// and increments once per INSERT or DELETE statement that reaches the
// table. Like Rows, it must not be read concurrently with writers
// unless the caller serializes access (the DB methods do).
func (t *Table) Version() uint64 { return t.version }

// TableDelta describes how a table evolved from a base version to the
// current one. Because inserts append and deletes preserve order,
// the current heap is exactly: the base rows minus Deleted, in their
// original order, followed by every surviving row inserted after the
// base — the suffix starting at AppendedStart.
type TableDelta struct {
	Base, Current uint64
	BaseSize      int   // heap size at the base version
	Deleted       []int // base-coordinate positions no longer present, ascending
	AppendedStart int   // current position where post-base rows begin
}

// DeltaSince reconstructs the delta from base to the current version.
// ok is false when the base is unknown or has aged out of the bounded
// log — the caller must then treat the whole table as changed.
func (t *Table) DeltaSince(base uint64) (TableDelta, bool) {
	d := TableDelta{Base: base, Current: t.version}
	if fault.Check("minidb.delta") != nil {
		// An unreadable delta log is indistinguishable from an aged-out
		// one: report !ok and the caller degrades to a full
		// rehash/rebuild, which is always correct.
		return d, false
	}
	if base == t.version {
		d.BaseSize = len(t.Rows)
		d.AppendedStart = len(t.Rows)
		return d, true
	}
	if base > t.version {
		return d, false
	}
	// Entries carry strictly increasing preVersions; find the one the
	// base version corresponds to.
	idx := sort.Search(len(t.log), func(i int) bool { return t.log[i].preVersion >= base })
	if idx == len(t.log) || t.log[idx].preVersion != base {
		return d, false
	}
	d.BaseSize = t.log[idx].preSize
	// Replay forward. deletedBase collects base-coordinate positions
	// that vanished; insAlive counts post-base inserts still present.
	var deletedBase []int
	insAlive := 0
	for _, e := range t.log[idx:] {
		if e.inserted > 0 {
			insAlive += e.inserted
			continue
		}
		// Positions in e.deleted are coordinates of the table right
		// before this delete: base survivors first, then live inserts.
		baseAlive := e.preSize - insAlive
		var newly []int
		// Map each p-th surviving base row back to its base coordinate
		// x = p + |{d ∈ deletedBase : d ≤ x}|. Both e.deleted and
		// deletedBase are ascending, so one cursor (k) walks
		// deletedBase across the whole entry — linear, not quadratic.
		k := 0
		for _, p := range e.deleted {
			if p >= baseAlive {
				insAlive--
				continue
			}
			x := p + k
			for k < len(deletedBase) && deletedBase[k] <= x {
				x++
				k++
			}
			newly = append(newly, x)
		}
		if len(newly) > 0 {
			deletedBase = mergeSorted(deletedBase, newly)
		}
	}
	d.Deleted = deletedBase
	d.AppendedStart = d.BaseSize - len(deletedBase)
	return d, true
}

// mergeSorted merges two ascending, disjoint position lists.
func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	return append(append(out, a[i:]...), b[j:]...)
}

// logWrite appends one entry and bumps the version, trimming the log
// to its bounds. Callers hold the DB write lock.
func (t *Table) logWrite(inserted int, deleted []int) {
	t.log = append(t.log, deltaEntry{
		preVersion: t.version,
		preSize:    t.preWriteSize(inserted, deleted),
		inserted:   inserted,
		deleted:    deleted,
	})
	t.version++
	t.trimLog()
}

// preWriteSize reconstructs the heap size before the write being
// logged (logWrite runs after the rows slice was already mutated).
func (t *Table) preWriteSize(inserted int, deleted []int) int {
	return len(t.Rows) - inserted + len(deleted)
}

func (t *Table) trimLog() {
	total := 0
	for _, e := range t.log {
		total += len(e.deleted)
	}
	drop := 0
	for (len(t.log)-drop > deltaLogMaxEntries) ||
		(total > deltaLogMaxDeleted && drop < len(t.log)) {
		total -= len(t.log[drop].deleted)
		drop++
	}
	if drop > 0 {
		t.log = append([]deltaEntry(nil), t.log[drop:]...)
	}
}

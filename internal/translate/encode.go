package translate

import (
	"fmt"
	"math"

	"repro/internal/expr"
	"repro/internal/lp"
	"repro/internal/paql"
)

// bnode is a negation-normal-form boolean tree over comparison atoms.
type bnode interface{ bnode() }

type bAnd struct{ kids []bnode }
type bOr struct{ kids []bnode }
type bAtom struct {
	// cmp holds L op R with negation already applied, or a constant
	// boolean (expr.Const).
	e expr.Expr
}

func (*bAnd) bnode()  {}
func (*bOr) bnode()   {}
func (*bAtom) bnode() {}

// nnf pushes negation down to comparisons and expands BETWEEN.
func nnf(e expr.Expr, neg bool) bnode {
	switch n := e.(type) {
	case *expr.Binary:
		switch n.Op {
		case expr.OpAnd:
			l, r := nnf(n.L, neg), nnf(n.R, neg)
			if neg {
				return &bOr{kids: []bnode{l, r}}
			}
			return &bAnd{kids: []bnode{l, r}}
		case expr.OpOr:
			l, r := nnf(n.L, neg), nnf(n.R, neg)
			if neg {
				return &bAnd{kids: []bnode{l, r}}
			}
			return &bOr{kids: []bnode{l, r}}
		}
		if n.Op.Comparison() && neg {
			nop, _ := n.Op.Negate()
			return &bAtom{e: &expr.Binary{Op: nop, L: n.L, R: n.R}}
		}
		return &bAtom{e: n}
	case *expr.Not:
		return nnf(n.X, !neg)
	case *expr.Between:
		eff := n.Invert != neg
		ge := &expr.Binary{Op: expr.OpGe, L: n.X, R: n.Lo}
		le := &expr.Binary{Op: expr.OpLe, L: n.X, R: n.Hi}
		if eff { // NOT BETWEEN: X < lo OR X > hi
			lt := &expr.Binary{Op: expr.OpLt, L: n.X, R: n.Lo}
			gt := &expr.Binary{Op: expr.OpGt, L: n.X, R: n.Hi}
			return &bOr{kids: []bnode{&bAtom{e: lt}, &bAtom{e: gt}}}
		}
		return &bAnd{kids: []bnode{&bAtom{e: ge}, &bAtom{e: le}}}
	}
	// constants and anything else (the analyzer rejects non-linear
	// shapes before translation)
	if neg {
		return &bAtom{e: &expr.Not{X: e}}
	}
	return &bAtom{e: e}
}

// encodeFormula emits rows for node. ind == -1 means the node must hold
// unconditionally; otherwise its rows activate when indicator ind is 1.
func (m *Model) encodeFormula(node bnode, ind int) error {
	switch n := node.(type) {
	case *bAnd:
		for _, k := range n.kids {
			if err := m.encodeFormula(k, ind); err != nil {
				return err
			}
		}
		return nil
	case *bOr:
		var kidInds []lp.Coef
		for _, k := range n.kids {
			y, err := m.newIndicator()
			if err != nil {
				return err
			}
			kidInds = append(kidInds, lp.Coef{Var: y, Val: 1})
			if err := m.encodeFormula(k, y); err != nil {
				return err
			}
		}
		if ind < 0 {
			// At least one branch holds.
			_, err := m.lpp.AddConstraint(kidInds, lp.GE, 1)
			return err
		}
		// y ≤ Σ y_k
		coefs := append([]lp.Coef{{Var: ind, Val: 1}}, negate(kidInds)...)
		_, err := m.lpp.AddConstraint(coefs, lp.LE, 0)
		return err
	case *bAtom:
		return m.encodeAtom(n.e, ind)
	}
	return fmt.Errorf("translate: unknown formula node %T", node)
}

func negate(cs []lp.Coef) []lp.Coef {
	out := make([]lp.Coef, len(cs))
	for i, c := range cs {
		out[i] = lp.Coef{Var: c.Var, Val: -c.Val}
	}
	return out
}

// encodeAtom emits rows for one comparison (or constant boolean).
func (m *Model) encodeAtom(e expr.Expr, ind int) error {
	// Constant TRUE/FALSE (possibly under NOT).
	if v, ok := constBool(e); ok {
		if v {
			return nil
		}
		if ind < 0 {
			// unconditionally false: infeasible row
			_, err := m.lpp.AddConstraint(nil, lp.GE, 1)
			return err
		}
		// indicator must stay off
		_, err := m.lpp.AddConstraint([]lp.Coef{{Var: ind, Val: 1}}, lp.LE, 0)
		return err
	}
	b, ok := e.(*expr.Binary)
	if !ok || !b.Op.Comparison() {
		return fmt.Errorf("translate: unsupported global atom %s", e)
	}
	// Special aggregate on one side vs a constant on the other?
	if agg, c, op, ok, err := m.specialAtom(b); err != nil {
		return err
	} else if ok {
		switch agg.Fn {
		case "AVG":
			return m.encodeAvg(agg, op, c, ind)
		case "MIN", "MAX":
			return m.encodeMinMax(agg, op, c, ind)
		}
	}
	// Affine comparison: L - R ⋛ 0.
	l, err := m.affineForm(b.L)
	if err != nil {
		return err
	}
	r, err := m.affineForm(b.R)
	if err != nil {
		return err
	}
	diff := newAffine()
	diff.addScaled(l, 1)
	diff.addScaled(r, -1)
	w := make([]float64, m.NumTupleVars)
	for key, coef := range diff.coeffs {
		if coef == 0 {
			continue
		}
		aw, err := m.aggWeights(diff.aggs[key])
		if err != nil {
			return err
		}
		for i, wi := range aw {
			w[i] += coef * wi
		}
	}
	rhs := -diff.konst // Σ w·x + konst ⋛ 0  →  Σ w·x ⋛ −konst
	switch b.Op {
	case expr.OpLe:
		return m.addRow(w, lp.LE, rhs, ind)
	case expr.OpLt:
		return m.addRow(w, lp.LE, rhs-eps(rhs), ind)
	case expr.OpGe:
		return m.addRow(w, lp.GE, rhs, ind)
	case expr.OpGt:
		return m.addRow(w, lp.GE, rhs+eps(rhs), ind)
	case expr.OpEq:
		if err := m.addRow(w, lp.LE, rhs, ind); err != nil {
			return err
		}
		return m.addRow(w, lp.GE, rhs, ind)
	case expr.OpNe:
		return fmt.Errorf("translate: <> over aggregates has no exact linear form")
	}
	return fmt.Errorf("translate: unsupported comparison %s", b.Op)
}

func constBool(e expr.Expr) (bool, bool) {
	switch n := e.(type) {
	case *expr.Const:
		b, null := n.Val.Truthy()
		if null {
			return false, true // NULL formula is unsatisfied
		}
		return b, true
	case *expr.Not:
		b, ok := constBool(n.X)
		return !b, ok
	}
	return false, false
}

// specialAtom detects `AVG/MIN/MAX(arg) op const` (either orientation),
// returning the aggregate, the constant, and the op oriented with the
// aggregate on the left.
func (m *Model) specialAtom(b *expr.Binary) (*paql.Agg, float64, expr.BinOp, bool, error) {
	if a, ok := b.L.(*paql.Agg); ok && (a.Fn == "AVG" || a.Fn == "MIN" || a.Fn == "MAX") {
		c, err := m.constSide(b.R)
		if err != nil {
			return nil, 0, 0, false, err
		}
		return a, c, b.Op, true, nil
	}
	if a, ok := b.R.(*paql.Agg); ok && (a.Fn == "AVG" || a.Fn == "MIN" || a.Fn == "MAX") {
		c, err := m.constSide(b.L)
		if err != nil {
			return nil, 0, 0, false, err
		}
		return a, c, b.Op.Flip(), true, nil
	}
	return nil, 0, 0, false, nil
}

func (m *Model) constSide(e expr.Expr) (float64, error) {
	f, err := m.affineForm(e)
	if err != nil {
		return 0, err
	}
	if !f.isConst() {
		return 0, fmt.Errorf("translate: %s must be constant opposite an AVG/MIN/MAX aggregate", e)
	}
	return f.konst, nil
}

// encodeAvg emits SUM(arg·w) − c·N ⋛ 0 plus the non-empty guard N ≥ 1,
// where N counts tuples entering the average.
func (m *Model) encodeAvg(a *paql.Agg, op expr.BinOp, c float64, ind int) error {
	sum := &paql.Agg{Fn: "SUM", Arg: a.Arg, Filter: a.Filter}
	sw, err := m.aggWeights(sum)
	if err != nil {
		return err
	}
	cnt := &paql.Agg{Fn: "COUNT", Arg: a.Arg, Filter: a.Filter}
	cw, err := m.aggWeights(cnt)
	if err != nil {
		return err
	}
	w := make([]float64, m.NumTupleVars)
	for i := range w {
		w[i] = sw[i] - c*cw[i]
	}
	switch op {
	case expr.OpLe:
		err = m.addRow(w, lp.LE, 0, ind)
	case expr.OpLt:
		err = m.addRow(w, lp.LE, -eps(c), ind)
	case expr.OpGe:
		err = m.addRow(w, lp.GE, 0, ind)
	case expr.OpGt:
		err = m.addRow(w, lp.GE, eps(c), ind)
	default:
		return fmt.Errorf("translate: AVG %s has no exact linear form", op)
	}
	if err != nil {
		return err
	}
	// guard: the average exists
	return m.addRow(cw, lp.GE, 1, ind)
}

// encodeMinMax rewrites MIN/MAX comparisons into elimination and
// at-least-one rows (DESIGN.md, "MIN/MAX global constraints").
func (m *Model) encodeMinMax(a *paql.Agg, op expr.BinOp, c float64, ind int) error {
	// present_i: tuple contributes to the aggregate at all
	present, err := m.filterPresence(a)
	if err != nil {
		return err
	}
	vals := make([]float64, m.NumTupleVars)
	for i, row := range m.Candidates {
		if !present[i] {
			continue
		}
		v, err := a.Arg.Eval(row)
		if err != nil {
			return err
		}
		f, _ := v.AsFloat()
		vals[i] = f
	}
	selector := func(pred func(float64) bool) []float64 {
		w := make([]float64, m.NumTupleVars)
		for i := range w {
			if present[i] && pred(vals[i]) {
				w[i] = 1
			}
		}
		return w
	}
	presentW := selector(func(float64) bool { return true })

	isMin := a.Fn == "MIN"
	switch {
	case (isMin && (op == expr.OpGe || op == expr.OpGt)) || (!isMin && (op == expr.OpLe || op == expr.OpLt)):
		// Eliminate violating tuples; require a survivor.
		var bad []float64
		switch {
		case isMin && op == expr.OpGe:
			bad = selector(func(v float64) bool { return v < c })
		case isMin && op == expr.OpGt:
			bad = selector(func(v float64) bool { return v <= c })
		case !isMin && op == expr.OpLe:
			bad = selector(func(v float64) bool { return v > c })
		default: // MAX <
			bad = selector(func(v float64) bool { return v >= c })
		}
		if err := m.addRow(bad, lp.LE, 0, ind); err != nil {
			return err
		}
		return m.addRow(presentW, lp.GE, 1, ind)
	case (isMin && (op == expr.OpLe || op == expr.OpLt)) || (!isMin && (op == expr.OpGe || op == expr.OpGt)):
		// At least one tuple on the right side of the threshold.
		var good []float64
		switch {
		case isMin && op == expr.OpLe:
			good = selector(func(v float64) bool { return v <= c })
		case isMin && op == expr.OpLt:
			good = selector(func(v float64) bool { return v < c })
		case !isMin && op == expr.OpGe:
			good = selector(func(v float64) bool { return v >= c })
		default: // MAX >
			good = selector(func(v float64) bool { return v > c })
		}
		return m.addRow(good, lp.GE, 1, ind)
	}
	return fmt.Errorf("translate: %s %s has no exact linear form", a.Fn, op)
}

// filterPresence marks candidates whose argument is non-NULL and whose
// filter passes.
func (m *Model) filterPresence(a *paql.Agg) ([]bool, error) {
	out := make([]bool, m.NumTupleVars)
	for i, row := range m.Candidates {
		if a.Filter != nil {
			ok, err := expr.EvalBool(a.Filter, row)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		if a.Arg != nil {
			v, err := a.Arg.Eval(row)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				continue
			}
		}
		out[i] = true
	}
	return out, nil
}

// addRow emits Σ w·x (op) rhs, optionally big-M-linked to an indicator.
func (m *Model) addRow(w []float64, op lp.Op, rhs float64, ind int) error {
	var coefs []lp.Coef
	for i, wi := range w {
		if wi != 0 {
			coefs = append(coefs, lp.Coef{Var: i, Val: wi})
		}
	}
	if ind < 0 {
		_, err := m.lpp.AddConstraint(coefs, op, rhs)
		return err
	}
	if m.MaxMult <= 0 {
		return fmt.Errorf("translate: disjunctive constraints need bounded multiplicity (add REPEAT)")
	}
	M := math.Abs(rhs) + 1
	for _, c := range coefs {
		M += math.Abs(c.Val) * float64(m.MaxMult)
	}
	switch op {
	case lp.LE:
		coefs = append(coefs, lp.Coef{Var: ind, Val: M})
		_, err := m.lpp.AddConstraint(coefs, lp.LE, rhs+M)
		return err
	case lp.GE:
		coefs = append(coefs, lp.Coef{Var: ind, Val: -M})
		_, err := m.lpp.AddConstraint(coefs, lp.GE, rhs-M)
		return err
	case lp.EQ:
		le := append(append([]lp.Coef{}, coefs...), lp.Coef{Var: ind, Val: M})
		if _, err := m.lpp.AddConstraint(le, lp.LE, rhs+M); err != nil {
			return err
		}
		ge := append(coefs, lp.Coef{Var: ind, Val: -M})
		_, err := m.lpp.AddConstraint(ge, lp.GE, rhs-M)
		return err
	}
	return fmt.Errorf("translate: unknown op %v", op)
}

// newIndicator allocates a fresh 0/1 indicator variable.
func (m *Model) newIndicator() (int, error) {
	j := m.NumTupleVars + m.indicators
	if j >= m.lpp.NumVars() {
		return 0, fmt.Errorf("translate: indicator budget exhausted (internal error)")
	}
	if err := m.lpp.SetBounds(j, 0, 1); err != nil {
		return 0, err
	}
	m.MILP.SetInteger(j)
	m.indicators++
	return j, nil
}

// eps is the strict-inequality tolerance, scaled to the constant.
func eps(c float64) float64 { return 1e-6 * (1 + math.Abs(c)) }

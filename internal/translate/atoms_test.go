package translate

import (
	"math"
	"testing"

	"repro/internal/lp"
	"repro/internal/milp"
)

func TestConjunctiveAtomsExtraction(t *testing.T) {
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500
		MAXIMIZE SUM(P.protein)`)
	rows := testRows()
	atoms, pure, err := ConjunctiveAtoms(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	if !pure {
		t.Error("pure conjunctive formula should report pure")
	}
	// COUNT(*)=3 -> LE+GE; BETWEEN -> GE+LE: 4 atoms.
	if len(atoms) != 4 {
		t.Fatalf("atoms = %d", len(atoms))
	}
	// verify atom checking against a known-feasible multiplicity vector:
	// rows 1 (550), 4 (800), 7 (650) = 2000 cal.
	mult := make([]int, len(rows))
	mult[1], mult[4], mult[7] = 1, 1, 1
	for _, at := range atoms {
		if !at.Check(mult) {
			t.Errorf("atom %s rejects the known-valid package", at.Source)
		}
	}
	// and an invalid one (count 2)
	bad := make([]int, len(rows))
	bad[1], bad[4] = 1, 1
	okAll := true
	for _, at := range atoms {
		if !at.Check(bad) {
			okAll = false
		}
	}
	if okAll {
		t.Error("atoms accepted an invalid package")
	}
}

func TestConjunctiveAtomsImpure(t *testing.T) {
	// Disjunction: atoms under OR are not top-level conjuncts.
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT COUNT(*) = 2 AND (SUM(P.calories) <= 600 OR SUM(P.calories) >= 1800)`)
	atoms, pure, err := ConjunctiveAtoms(a, testRows())
	if err != nil {
		t.Fatal(err)
	}
	if pure {
		t.Error("formula with OR must not report pure")
	}
	if len(atoms) != 2 { // only COUNT(*)=2 (LE+GE)
		t.Errorf("atoms = %d, want the COUNT conjunct only", len(atoms))
	}
	// AVG atoms are skipped (no incremental form) and mark impure.
	a2 := analyze(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT COUNT(*) = 2 AND AVG(P.calories) <= 500`)
	atoms2, pure2, err := ConjunctiveAtoms(a2, testRows())
	if err != nil {
		t.Fatal(err)
	}
	if pure2 || len(atoms2) != 2 {
		t.Errorf("AVG handling: pure=%v atoms=%d", pure2, len(atoms2))
	}
	// nil formula
	a3 := analyze(t, `SELECT PACKAGE(R) AS P FROM Recipes R`)
	atoms3, pure3, err := ConjunctiveAtoms(a3, testRows())
	if err != nil || !pure3 || atoms3 != nil {
		t.Errorf("nil formula: %v %v %v", atoms3, pure3, err)
	}
}

func TestCheckSumOps(t *testing.T) {
	le := &LinearAtom{W: []float64{1}, Op: lp.LE, RHS: 5}
	ge := &LinearAtom{W: []float64{1}, Op: lp.GE, RHS: 5}
	eq := &LinearAtom{W: []float64{1}, Op: lp.EQ, RHS: 5}
	cases := []struct {
		at   *LinearAtom
		sum  float64
		want bool
	}{
		{le, 5, true}, {le, 5.1, false}, {le, -100, true},
		{ge, 5, true}, {ge, 4.9, false},
		{eq, 5, true}, {eq, 5.2, false}, {eq, 4.8, false},
	}
	for _, tc := range cases {
		if got := tc.at.CheckSum(tc.sum); got != tc.want {
			t.Errorf("%v sum=%g -> %v, want %v", tc.at.Op, tc.sum, got, tc.want)
		}
	}
	if (&LinearAtom{W: []float64{1}, Op: lp.Op(99)}).CheckSum(0) {
		t.Error("unknown op should fail closed")
	}
}

func TestObjectiveWeights(t *testing.T) {
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		MAXIMIZE 2 * SUM(P.protein) - SUM(P.price) + 10`)
	rows := testRows()
	w, konst, err := ObjectiveWeights(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	if konst != 10 {
		t.Errorf("const = %g", konst)
	}
	// row 0: protein 10, price 5 -> 2*10 - 5 = 15
	if w[0] != 15 {
		t.Errorf("w[0] = %g, want 15", w[0])
	}
	// no objective -> zero weights
	a2 := analyze(t, `SELECT PACKAGE(R) AS P FROM Recipes R`)
	w2, k2, err := ObjectiveWeights(a2, rows)
	if err != nil || k2 != 0 {
		t.Fatalf("no-objective weights: %v %v", k2, err)
	}
	for _, v := range w2 {
		if v != 0 {
			t.Error("no-objective weights must be zero")
		}
	}
	// non-affine objective errors
	a3 := analyze(t, `SELECT PACKAGE(R) AS P FROM Recipes R MAXIMIZE SUM(P.protein) / COUNT(*)`)
	if _, _, err := ObjectiveWeights(a3, rows); err == nil {
		t.Error("ratio objective should fail")
	}
}

func TestRequireTuple(t *testing.T) {
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT COUNT(*) = 3 AND SUM(P.calories) <= 1500
		MAXIMIZE SUM(P.protein)`)
	rows := testRows()
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7}
	m, err := Translate(a, rows, ids)
	if err != nil {
		t.Fatal(err)
	}
	// candidate 2 (Salad, protein 4) would never be chosen freely
	if err := m.RequireTuple(2); err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Status != milp.StatusOptimal {
		t.Fatalf("status = %v", res.Solution.Status)
	}
	if res.Multiplicities[2] != 1 {
		t.Errorf("required tuple missing: %v", res.Multiplicities)
	}
	if err := m.RequireTuple(99); err == nil {
		t.Error("out-of-range require should fail")
	}
	if m.NumIndicators() != 0 {
		t.Errorf("conjunctive model should have 0 indicators, got %d", m.NumIndicators())
	}
}

func TestStrictAndNegatedComparisons(t *testing.T) {
	rows := testRows()
	// strict < and > with integral data match closed comparisons offset by 1
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT COUNT(*) = 2 AND SUM(P.calories) < 500 AND SUM(P.calories) > 300
		MAXIMIZE SUM(P.protein)`)
	want, feasible := bruteBest(t, a.Query, rows)
	res := solveModel(t, a, rows)
	if !feasible {
		if res.Solution.Status != milp.StatusInfeasible {
			t.Fatalf("want infeasible, got %v", res.Solution.Status)
		}
	} else if math.Abs(res.Solution.Objective-want) > 1e-6 {
		t.Errorf("strict: %g vs brute %g", res.Solution.Objective, want)
	}
	// NOT BETWEEN becomes a disjunction of strict comparisons
	a2 := analyze(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT COUNT(*) = 2 AND SUM(P.calories) NOT BETWEEN 500 AND 1200
		MAXIMIZE SUM(P.protein)`)
	want2, feasible2 := bruteBest(t, a2.Query, rows)
	res2 := solveModel(t, a2, rows)
	if !feasible2 {
		t.Fatal("NOT BETWEEN instance should be feasible")
	}
	if math.Abs(res2.Solution.Objective-want2) > 1e-6 {
		t.Errorf("not-between: %g vs brute %g", res2.Solution.Objective, want2)
	}
	// NOT over a conjunction pushes to a disjunction
	a3 := analyze(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT COUNT(*) = 2 AND NOT (SUM(P.calories) >= 500 AND SUM(P.calories) <= 1200)
		MAXIMIZE SUM(P.protein)`)
	want3, _ := bruteBest(t, a3.Query, rows)
	res3 := solveModel(t, a3, rows)
	if math.Abs(res3.Solution.Objective-want3) > 1e-6 {
		t.Errorf("negated conjunction: %g vs brute %g", res3.Solution.Objective, want3)
	}
}

func TestConstantFormulas(t *testing.T) {
	rows := testRows()
	// TRUE is a no-op constraint
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT TRUE AND COUNT(*) = 1 MAXIMIZE SUM(P.protein)`)
	res := solveModel(t, a, rows)
	if res.Solution.Status != milp.StatusOptimal || math.Abs(res.Solution.Objective-45) > 1e-9 {
		t.Errorf("TRUE formula: %v %g", res.Solution.Status, res.Solution.Objective)
	}
	// FALSE is unsatisfiable
	a2 := analyze(t, `SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT FALSE`)
	res2 := solveModel(t, a2, rows)
	if res2.Solution.Status != milp.StatusInfeasible {
		t.Errorf("FALSE formula: %v", res2.Solution.Status)
	}
	// FALSE under an OR branch is pruned, the other branch carries
	a3 := analyze(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT FALSE OR COUNT(*) = 1 MAXIMIZE SUM(P.protein)`)
	res3 := solveModel(t, a3, rows)
	if res3.Solution.Status != milp.StatusOptimal || math.Abs(res3.Solution.Objective-45) > 1e-9 {
		t.Errorf("FALSE OR x: %v %g", res3.Solution.Status, res3.Solution.Objective)
	}
}

func TestFilteredAvgAndMinMaxFilters(t *testing.T) {
	rows := testRows()
	// filtered AVG
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT COUNT(*) = 3 AND AVG(P.calories WHERE P.kind = 'meal') <= 600
		MAXIMIZE SUM(P.protein)`)
	want, feasible := bruteBest(t, a.Query, rows)
	if !feasible {
		t.Fatal("filtered AVG instance should be feasible")
	}
	res := solveModel(t, a, rows)
	if math.Abs(res.Solution.Objective-want) > 1e-6 {
		t.Errorf("filtered AVG: %g vs brute %g", res.Solution.Objective, want)
	}
	// filtered MIN with a guard
	a2 := analyze(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT COUNT(*) = 2 AND MIN(P.price WHERE P.kind = 'snack') <= 3
		MAXIMIZE SUM(P.protein)`)
	want2, feasible2 := bruteBest(t, a2.Query, rows)
	if !feasible2 {
		t.Fatal("filtered MIN instance should be feasible")
	}
	res2 := solveModel(t, a2, rows)
	if math.Abs(res2.Solution.Objective-want2) > 1e-6 {
		t.Errorf("filtered MIN: %g vs brute %g", res2.Solution.Objective, want2)
	}
}

func TestAffineFormErrors(t *testing.T) {
	rows := testRows()
	m := &Model{Candidates: rows, NumTupleVars: len(rows)}
	bad := []string{
		`SUM(P.calories) * SUM(P.protein)`,
		`COUNT(*) / SUM(P.protein)`,
		`MIN(P.calories) + 1`,
		`SUM(P.calories) / 0`,
	}
	for _, src := range bad {
		a := analyze(t, `SELECT PACKAGE(R) AS P FROM Recipes R MAXIMIZE `+src)
		if _, err := m.affineForm(a.Query.Objective.Expr); err == nil {
			t.Errorf("affineForm(%q) should fail", src)
		}
	}
	// modulo is not affine either
	aMod := analyze(t, `SELECT PACKAGE(R) AS P FROM Recipes R MAXIMIZE COUNT(*) % 2`)
	if _, err := m.affineForm(aMod.Query.Objective.Expr); err == nil {
		t.Error("modulo should fail")
	}
}

package translate

import (
	"math"
	"strings"
	"testing"

	"repro/internal/lp"
	"repro/internal/schema"
	"repro/internal/value"
)

func sketchRows(t *testing.T, br SketchBranch, cands []schema.Row) []*LinearAtom {
	t.Helper()
	var out []*LinearAtom
	for _, at := range br.Atoms {
		rows, err := at.Weigh(cands)
		if err != nil {
			t.Fatalf("weigh %s: %v", at.Source(), err)
		}
		out = append(out, rows...)
	}
	return out
}

func TestCompileSketchPureConjunctionMatchesConjunctiveAtoms(t *testing.T) {
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500`)
	cands := []schema.Row{
		mkRow(1, 700, 30, "a", 1),
		mkRow(2, 900, 10, "b", 2),
	}
	branches, rewrites, err := CompileSketch(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 1 || rewrites != 0 {
		t.Fatalf("branches=%d rewrites=%d, want 1 and 0", len(branches), rewrites)
	}
	got := sketchRows(t, branches[0], cands)
	want, pure, err := ConjunctiveAtoms(a, cands)
	if err != nil || !pure {
		t.Fatalf("ConjunctiveAtoms pure=%v err=%v", pure, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d sketch rows for %d conjunctive atoms", len(got), len(want))
	}
	for k := range want {
		if got[k].Op != want[k].Op || got[k].RHS != want[k].RHS {
			t.Errorf("row %d: got (%v, %g), want (%v, %g)", k, got[k].Op, got[k].RHS, want[k].Op, want[k].RHS)
		}
		for i := range want[k].W {
			if got[k].W[i] != want[k].W[i] {
				t.Errorf("row %d weight %d: got %g, want %g", k, i, got[k].W[i], want[k].W[i])
			}
		}
	}
}

func TestCompileSketchAvgRewrite(t *testing.T) {
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT AVG(P.calories) <= 800`)
	cands := []schema.Row{
		mkRow(1, 700, 30, "a", 1),
		mkRow(2, 900, 10, "b", 2),
	}
	branches, rewrites, err := CompileSketch(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 1 || rewrites != 1 {
		t.Fatalf("branches=%d rewrites=%d, want 1 and 1", len(branches), rewrites)
	}
	rows := sketchRows(t, branches[0], cands)
	if len(rows) != 2 {
		t.Fatalf("AVG atom lowered to %d rows, want 2 (main + guard)", len(rows))
	}
	// Main row: SUM(cal) − 800·COUNT ≤ 0, i.e. weights cal−800.
	main := rows[0]
	if main.Op != lp.LE || main.RHS != 0 {
		t.Fatalf("main row (%v, %g), want (LE, 0)", main.Op, main.RHS)
	}
	if main.W[0] != 700-800 || main.W[1] != 900-800 {
		t.Fatalf("main weights %v, want [-100, 100]", main.W)
	}
	// Guard: at least one contributing tuple.
	guard := rows[1]
	if guard.Op != lp.GE || guard.RHS != 1 || guard.W[0] != 1 || guard.W[1] != 1 {
		t.Fatalf("guard row %+v, want Σx ≥ 1 over both tuples", guard)
	}
}

// TestCompileSketchAvgNullArgumentWeighsZero pins the rewrite against
// SQL AVG semantics: a tuple whose argument is NULL contributes to
// neither the sum nor the count, so its weight in the SUM − c·COUNT
// row must be 0 — COUNT(*)-style weights (-c for NULL tuples) would
// accept packages whose true average violates the bound.
func TestCompileSketchAvgNullArgumentWeighsZero(t *testing.T) {
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT AVG(P.calories) <= 5`)
	cands := []schema.Row{
		mkRow(1, 10, 1, "a", 1),
		{mkRow(2, 0, 1, "b", 1)[0], value.Null(), mkRow(2, 0, 1, "b", 1)[2], mkRow(2, 0, 1, "b", 1)[3], mkRow(2, 0, 1, "b", 1)[4]},
	}
	branches, _, err := CompileSketch(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows := sketchRows(t, branches[0], cands)
	main := rows[0]
	if main.W[0] != 10-5 {
		t.Errorf("non-NULL tuple weight %g, want 5", main.W[0])
	}
	if main.W[1] != 0 {
		t.Errorf("NULL-argument tuple weight %g, want 0 (it enters neither SUM nor COUNT)", main.W[1])
	}
	// The package {both tuples} has true AVG = 10 > 5; the sufficient
	// row must reject it.
	if main.Check([]int{1, 1}) {
		t.Error("row accepts a package whose true average violates the bound")
	}
	// The guard must not count the NULL tuple either.
	guard := rows[1]
	if guard.W[1] != 0 {
		t.Errorf("guard counts the NULL-argument tuple: %v", guard.W)
	}
}

func TestCompileSketchMinMaxLowering(t *testing.T) {
	cands := []schema.Row{
		mkRow(1, 700, 30, "a", 1),
		mkRow(2, 900, 10, "b", 2),
		mkRow(3, 500, 20, "c", 3),
	}
	cases := []struct {
		clause   string
		wantRows int
		// selected[i] = expected weight of the predicate row (the
		// elimination row when present, else the at-least-one row).
		selected []float64
	}{
		{"MIN(P.calories) >= 600", 2, []float64{0, 0, 1}}, // eliminate cal < 600
		{"MIN(P.calories) > 500", 2, []float64{0, 0, 1}},  // eliminate cal <= 500
		{"MIN(P.calories) <= 600", 1, []float64{0, 0, 1}}, // witness cal <= 600
		{"MAX(P.calories) <= 800", 2, []float64{0, 1, 0}}, // eliminate cal > 800
		{"MAX(P.calories) >= 800", 1, []float64{0, 1, 0}}, // witness cal >= 800
		{"MAX(P.calories) < 900", 2, []float64{0, 1, 0}},  // eliminate cal >= 900
	}
	for _, tc := range cases {
		t.Run(tc.clause, func(t *testing.T) {
			a := analyze(t, "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT "+tc.clause)
			branches, rewrites, err := CompileSketch(a, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(branches) != 1 || rewrites != 1 {
				t.Fatalf("branches=%d rewrites=%d, want 1 and 1", len(branches), rewrites)
			}
			rows := sketchRows(t, branches[0], cands)
			if len(rows) != tc.wantRows {
				t.Fatalf("%d rows, want %d", len(rows), tc.wantRows)
			}
			pred := rows[0]
			for i, w := range tc.selected {
				if pred.W[i] != w {
					t.Errorf("predicate weight %d = %g, want %g (%v)", i, pred.W[i], w, pred)
				}
			}
			if tc.wantRows == 2 {
				if pred.Op != lp.LE || pred.RHS != 0 {
					t.Errorf("elimination row (%v, %g), want (LE, 0)", pred.Op, pred.RHS)
				}
				if rows[1].Op != lp.GE || rows[1].RHS != 1 {
					t.Errorf("witness guard (%v, %g), want (GE, 1)", rows[1].Op, rows[1].RHS)
				}
			} else if pred.Op != lp.GE || pred.RHS != 1 {
				t.Errorf("at-least-one row (%v, %g), want (GE, 1)", pred.Op, pred.RHS)
			}
		})
	}
}

func TestCompileSketchDisjunctionBranches(t *testing.T) {
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 2 AND (SUM(P.calories) <= 1000 OR AVG(P.protein) >= 20)`)
	branches, rewrites, err := CompileSketch(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 2 {
		t.Fatalf("branches = %d, want 2", len(branches))
	}
	if rewrites != 1 {
		t.Fatalf("rewrites = %d, want 1 (the AVG atom)", rewrites)
	}
	// Both branches carry the COUNT(*) = 2 conjunct.
	for bi, br := range branches {
		found := false
		for _, at := range br.Atoms {
			if at.Kind == SketchLinear && strings.Contains(at.Source(), "COUNT(*)") {
				found = true
			}
		}
		if !found {
			t.Errorf("branch %d misses the shared COUNT conjunct", bi)
		}
	}
	if branches[1].Atoms[1].Kind != SketchAvg {
		t.Errorf("second branch should carry the AVG rewrite, got kind %d", branches[1].Atoms[1].Kind)
	}
}

func TestCompileSketchBranchCap(t *testing.T) {
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT (COUNT(*) = 1 OR COUNT(*) = 2)
		      AND (SUM(P.calories) <= 1 OR SUM(P.calories) <= 2)
		      AND (SUM(P.protein) <= 1 OR SUM(P.protein) <= 2)`)
	if _, _, err := CompileSketch(a, 4); err == nil {
		t.Fatal("8-branch DNF should exceed a cap of 4")
	} else if !strings.Contains(err.Error(), "disjunctive branches") {
		t.Fatalf("error should explain the DNF cap, got: %v", err)
	}
}

func TestCompileSketchErrorNamesAtom(t *testing.T) {
	// Analyze accepts MIN = c (it only flags it non-linear); the sketch
	// compiler must name the atom it cannot lower.
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT MIN(P.calories) = 500`)
	_, _, err := CompileSketch(a, 0)
	if err == nil {
		t.Fatal("MIN equality should not compile")
	}
	if !strings.Contains(err.Error(), "MIN(R.calories)") {
		t.Fatalf("error should name the offending aggregate, got: %v", err)
	}
}

func TestSelectorEnvelopeFastPathMetadata(t *testing.T) {
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT MIN(P.calories) >= 600 AND MAX(P.protein WHERE P.kind = 'a') <= 25`)
	branches, _, err := CompileSketch(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	cands := []schema.Row{mkRow(1, 700, 30, "a", 1), mkRow(2, 900, 10, "b", 2)}
	var sels []*Selector
	for _, at := range branches[0].Atoms {
		if at.IsSelector() {
			sel, err := at.Selector(cands)
			if err != nil {
				t.Fatal(err)
			}
			sels = append(sels, sel)
		}
	}
	if len(sels) != 4 {
		t.Fatalf("%d selectors, want 4 (elim + guard for each MIN/MAX atom)", len(sels))
	}
	if sels[0].Col != 1 {
		t.Errorf("bare-column MIN selector should expose col 1, got %d", sels[0].Col)
	}
	if !sels[1].All {
		t.Error("witness guard should select every present tuple")
	}
	// The filtered MAX atom cannot use the envelope fast path.
	filtered := sels[2]
	if filtered.Col != -1 {
		t.Errorf("filtered selector must disable the envelope fast path, got col %d", filtered.Col)
	}
	if !filtered.Present[0] || filtered.Present[1] {
		t.Errorf("filter presence wrong: %v", filtered.Present)
	}
	if got := filtered.Vals[0]; got != 30 {
		t.Errorf("filtered val = %g, want 30", got)
	}
	if !filtered.Match(30) || filtered.Match(20) {
		t.Error("MAX <= 25 elimination predicate should select values > 25")
	}
}

func TestSketchLinearStrictOpsTightened(t *testing.T) {
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT SUM(P.calories) < 1000 AND SUM(P.protein) > 20`)
	branches, _, err := CompileSketch(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	cands := []schema.Row{mkRow(1, 700, 30, "a", 1)}
	rows := sketchRows(t, branches[0], cands)
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	if !(rows[0].Op == lp.LE && rows[0].RHS < 1000) {
		t.Errorf("strict < should tighten below 1000, got (%v, %g)", rows[0].Op, rows[0].RHS)
	}
	if !(rows[1].Op == lp.GE && rows[1].RHS > 20) {
		t.Errorf("strict > should tighten above 20, got (%v, %g)", rows[1].Op, rows[1].RHS)
	}
	if math.Abs(rows[0].RHS-1000) > 1e-2 || math.Abs(rows[1].RHS-20) > 1e-4 {
		t.Errorf("tightening should stay epsilon-sized: %g, %g", rows[0].RHS, rows[1].RHS)
	}
}

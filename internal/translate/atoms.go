package translate

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/lp"
	"repro/internal/paql"
	"repro/internal/schema"
)

// LinearAtom is one linear constraint Σᵢ W[i]·x_i (Op) RHS over the
// candidate tuples. Search strategies consume these for incremental
// feasibility checks and for generating the §4.2 replacement SQL.
type LinearAtom struct {
	W      []float64
	Op     lp.Op
	RHS    float64
	Source string // rendered source atom, for SQL generation and logs
}

// Check evaluates the atom against a multiplicity vector.
func (la *LinearAtom) Check(mult []int) bool {
	s := 0.0
	for i, m := range mult {
		if m != 0 {
			s += la.W[i] * float64(m)
		}
	}
	return la.CheckSum(s)
}

// CheckSum evaluates the atom given a precomputed Σ W·x.
func (la *LinearAtom) CheckSum(s float64) bool {
	const tol = 1e-9
	switch la.Op {
	case lp.LE:
		return s <= la.RHS+tol
	case lp.GE:
		return s >= la.RHS-tol
	case lp.EQ:
		return s >= la.RHS-tol && s <= la.RHS+tol
	}
	return false
}

// ConjunctiveAtoms extracts the linear SUM/COUNT comparison atoms that
// appear as top-level conjuncts of the query's SUCH THAT formula,
// weighted over the given candidates. The boolean result reports
// whether the atoms are EXACTLY the formula (pure): when false (the
// formula also has disjunctions, AVG/MIN/MAX atoms, or non-linear
// parts), the atoms are still necessary conditions usable for sound
// pruning, but candidates must be re-validated with paql.Satisfies.
//
// Strict comparisons relax to their closed forms (sound for pruning).
func ConjunctiveAtoms(a *paql.Analysis, candidates []schema.Row) ([]*LinearAtom, bool, error) {
	if a.Query.SuchThat == nil {
		return nil, true, nil
	}
	m := &Model{Candidates: candidates, NumTupleVars: len(candidates)}
	pure := true
	var atoms []*LinearAtom
	var visit func(n bnode)
	visit = func(n bnode) {
		switch node := n.(type) {
		case *bAnd:
			for _, k := range node.kids {
				visit(k)
			}
		case *bOr:
			pure = false
		case *bAtom:
			la, ok := m.linearAtom(node.e)
			if !ok {
				pure = false
				return
			}
			atoms = append(atoms, la...)
		}
	}
	visit(nnf(a.Query.SuchThat, false))
	return atoms, pure, nil
}

// linearAtom converts one comparison into linear atoms (an equality
// yields LE+GE). ok=false for shapes with no (closed) linear form.
func (m *Model) linearAtom(e expr.Expr) ([]*LinearAtom, bool) {
	b, isCmp := e.(*expr.Binary)
	if !isCmp || !b.Op.Comparison() {
		return nil, false
	}
	// AVG/MIN/MAX atoms are not usable for incremental sums; skip.
	if agg, _, _, ok, _ := m.specialAtom(b); ok && agg != nil {
		return nil, false
	}
	l, err := m.affineForm(b.L)
	if err != nil {
		return nil, false
	}
	r, err := m.affineForm(b.R)
	if err != nil {
		return nil, false
	}
	diff := newAffine()
	diff.addScaled(l, 1)
	diff.addScaled(r, -1)
	w := make([]float64, m.NumTupleVars)
	for key, coef := range diff.coeffs {
		if coef == 0 {
			continue
		}
		aw, err := m.aggWeights(diff.aggs[key])
		if err != nil {
			return nil, false
		}
		for i, wi := range aw {
			w[i] += coef * wi
		}
	}
	rhs := -diff.konst
	src := e.String()
	switch b.Op {
	case expr.OpLe, expr.OpLt:
		return []*LinearAtom{{W: w, Op: lp.LE, RHS: rhs, Source: src}}, true
	case expr.OpGe, expr.OpGt:
		return []*LinearAtom{{W: w, Op: lp.GE, RHS: rhs, Source: src}}, true
	case expr.OpEq:
		return []*LinearAtom{
			{W: w, Op: lp.LE, RHS: rhs, Source: src},
			{W: w, Op: lp.GE, RHS: rhs, Source: src},
		}, true
	}
	return nil, false
}

// ObjectiveWeights linearizes the query objective over the candidates:
// value(pkg) = Σ W[i]·mult[i] + Const. An error is returned for
// non-affine objectives.
func ObjectiveWeights(a *paql.Analysis, candidates []schema.Row) (w []float64, konst float64, err error) {
	if a.Query.Objective == nil {
		return make([]float64, len(candidates)), 0, nil
	}
	m := &Model{Candidates: candidates, NumTupleVars: len(candidates)}
	form, err := m.affineForm(a.Query.Objective.Expr)
	if err != nil {
		return nil, 0, fmt.Errorf("translate: objective: %w", err)
	}
	w = make([]float64, len(candidates))
	for key, coef := range form.coeffs {
		aw, err := m.aggWeights(form.aggs[key])
		if err != nil {
			return nil, 0, err
		}
		for i, wi := range aw {
			w[i] += coef * wi
		}
	}
	return w, form.konst, nil
}

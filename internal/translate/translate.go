// Package translate compiles analyzed PaQL queries into mixed-integer
// linear programs, the paper's §7 "PaQL query is translated into a
// linear program and then solved using existing constraint solvers".
//
// The translation introduces one integer variable x_i per candidate
// tuple (its multiplicity in the package, bounded by REPEAT+1) and maps
// global constraints to linear rows:
//
//   - affine SUM/COUNT constraints become a single row;
//   - AVG(x) ⋚ c becomes SUM(x·w) − c·COUNT_w ⋚ 0 plus a non-empty
//     guard (AVG over an empty package is NULL, which fails the atom);
//   - MIN(x) ≥ c eliminates tuples below c and requires one survivor;
//     MIN(x) ≤ c requires at least one tuple at or below c (MAX is
//     symmetric);
//   - disjunctions get one 0/1 indicator per atom with big-M linking
//     and implication rows (OR: y ≤ y_a + y_b; AND: y ≤ y_a, y ≤ y_b),
//     sound and complete because only the root must hold;
//   - strict comparisons use a small epsilon, documented in DESIGN.md.
package translate

import (
	"fmt"
	"math"

	"repro/internal/expr"
	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/paql"
	"repro/internal/schema"
)

// Model is a compiled query: the MILP plus the mapping back to tuples.
type Model struct {
	MILP         *milp.Problem
	Query        *paql.Query
	Candidates   []schema.Row // candidate tuples (those passing WHERE)
	CandidateIDs []int        // base-table row ids, parallel to Candidates
	NumTupleVars int          // tuple variables come first; indicators follow
	MaxMult      int          // per-tuple multiplicity cap (0 = unlimited)

	lpp        *lp.Problem
	indicators int
}

// Translate compiles an analyzed, linear query over the given candidate
// tuples. candidates[i] must be full relation rows (aggregate arguments
// are bound against the relation schema). ids are the matching
// base-table row ids.
func Translate(a *paql.Analysis, candidates []schema.Row, ids []int) (*Model, error) {
	if !a.Linear {
		return nil, fmt.Errorf("translate: query is not linear: %v", a.NonlinearReasons)
	}
	if len(ids) != len(candidates) {
		return nil, fmt.Errorf("translate: %d candidates but %d ids", len(candidates), len(ids))
	}
	q := a.Query
	maxMult := q.MaxMultiplicity()
	n := len(candidates)

	// Count the indicator variables needed: one per atom plus one per
	// internal AND/OR node under a disjunction. We discover them during
	// encoding, so build the LP in two passes: first count, then emit.
	// Simpler: over-allocate by counting formula nodes.
	extra := 0
	if q.SuchThat != nil {
		expr.Walk(q.SuchThat, func(expr.Expr) { extra++ })
		extra *= 2 // Between expansion can double atom count
	}
	p := lp.NewProblem(n + extra)
	m := &Model{
		MILP: milp.NewProblem(p), Query: q,
		Candidates: candidates, CandidateIDs: ids,
		NumTupleVars: n, MaxMult: maxMult, lpp: p,
	}
	for i := 0; i < n; i++ {
		up := lp.Inf
		if maxMult > 0 {
			up = float64(maxMult)
		}
		if err := p.SetBounds(i, 0, up); err != nil {
			return nil, err
		}
		m.MILP.SetInteger(i)
	}
	// Unused indicator slots are pinned to zero at the end.

	// Objective.
	if q.Objective != nil {
		form, err := m.affineForm(q.Objective.Expr)
		if err != nil {
			return nil, fmt.Errorf("translate: objective: %w", err)
		}
		obj := make([]float64, p.NumVars())
		for key, coef := range form.coeffs {
			w, err := m.aggWeights(form.aggs[key])
			if err != nil {
				return nil, err
			}
			for i, wi := range w {
				obj[i] += coef * wi
			}
		}
		sense := lp.Maximize
		if q.Objective.Sense == paql.Minimize {
			sense = lp.Minimize
		}
		if err := p.SetObjective(obj, sense); err != nil {
			return nil, err
		}
	}

	// Constraints.
	if q.SuchThat != nil {
		if err := m.encodeFormula(nnf(q.SuchThat, false), -1); err != nil {
			return nil, err
		}
	}
	// Pin unused indicator slots.
	for j := n + m.indicators; j < p.NumVars(); j++ {
		if err := p.SetBounds(j, 0, 0); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Solve runs the MILP and decodes the package.
func (m *Model) Solve(opts ...milp.Options) (*Result, error) {
	sol := milp.Solve(m.MILP, opts...)
	res := &Result{Solution: sol}
	if sol.X != nil {
		res.Multiplicities = m.Multiplicities(sol.X)
	}
	return res, nil
}

// Result pairs the raw MILP solution with decoded multiplicities.
type Result struct {
	Solution       *milp.Solution
	Multiplicities []int // per candidate index
}

// NumIndicators returns the number of 0/1 indicator variables the
// formula encoding allocated (0 for purely conjunctive queries).
func (m *Model) NumIndicators() int { return m.indicators }

// RequireTuple forces candidate i into every solution (multiplicity ≥ 1)
// — the solver side of §3.3 adaptive exploration, where the user pins
// the tuples they want to keep.
func (m *Model) RequireTuple(i int) error {
	if i < 0 || i >= m.NumTupleVars {
		return fmt.Errorf("translate: candidate %d out of range", i)
	}
	_, up := m.lpp.Bounds(i)
	return m.lpp.SetBounds(i, 1, up)
}

// Multiplicities decodes a solution vector into per-candidate counts.
func (m *Model) Multiplicities(x []float64) []int {
	out := make([]int, m.NumTupleVars)
	for i := 0; i < m.NumTupleVars; i++ {
		out[i] = int(math.Round(x[i]))
	}
	return out
}

// AddExclusionCut forbids an exact 0/1 package so the next solve yields
// a different one — the paper's §5 "retrieving more packages requires
// modifying and re-evaluating the query". Only defined for REPEAT 0
// queries (0/1 multiplicities).
func (m *Model) AddExclusionCut(mult []int) error {
	if m.MaxMult != 1 {
		return fmt.Errorf("translate: exclusion cuts require REPEAT 0 (0/1 multiplicities), REPEAT is %d", m.MaxMult-1)
	}
	if len(mult) != m.NumTupleVars {
		return fmt.Errorf("translate: cut has %d entries for %d tuple variables", len(mult), m.NumTupleVars)
	}
	var coefs []lp.Coef
	inCount := 0
	for i, v := range mult {
		if v > 0 {
			coefs = append(coefs, lp.Coef{Var: i, Val: 1})
			inCount++
		} else {
			coefs = append(coefs, lp.Coef{Var: i, Val: -1})
		}
	}
	// Σ_{i∈S} x_i − Σ_{i∉S} x_i ≤ |S| − 1
	_, err := m.lpp.AddConstraint(coefs, lp.LE, float64(inCount-1))
	return err
}

// --- affine forms -------------------------------------------------------------

type affine struct {
	coeffs map[string]float64
	aggs   map[string]*paql.Agg
	konst  float64
}

func newAffine() *affine {
	return &affine{coeffs: map[string]float64{}, aggs: map[string]*paql.Agg{}}
}

func (f *affine) addScaled(o *affine, s float64) {
	for k, c := range o.coeffs {
		f.coeffs[k] += c * s
		f.aggs[k] = o.aggs[k]
	}
	f.konst += o.konst * s
}

func (f *affine) isConst() bool {
	for _, c := range f.coeffs {
		if c != 0 {
			return false
		}
	}
	return true
}

// affineForm decomposes a numeric global expression into Σ coef·agg +
// const. Only COUNT and SUM aggregates may appear (AVG/MIN/MAX are
// handled at the comparison level).
func (m *Model) affineForm(e expr.Expr) (*affine, error) {
	switch n := e.(type) {
	case *expr.Const:
		f := newAffine()
		v, ok := n.Val.AsFloat()
		if !ok {
			if n.Val.IsNull() {
				return nil, fmt.Errorf("translate: NULL constant in linear expression")
			}
			return nil, fmt.Errorf("translate: non-numeric constant %s", n.Val)
		}
		f.konst = v
		return f, nil
	case *paql.Agg:
		if n.Fn != "COUNT" && n.Fn != "SUM" {
			return nil, fmt.Errorf("translate: %s cannot appear inside arithmetic (only SUM/COUNT)", n)
		}
		f := newAffine()
		key := n.String()
		f.coeffs[key] = 1
		f.aggs[key] = n
		return f, nil
	case *expr.Neg:
		f, err := m.affineForm(n.X)
		if err != nil {
			return nil, err
		}
		out := newAffine()
		out.addScaled(f, -1)
		return out, nil
	case *expr.Binary:
		l, err := m.affineForm(n.L)
		if err != nil {
			return nil, err
		}
		r, err := m.affineForm(n.R)
		if err != nil {
			return nil, err
		}
		out := newAffine()
		switch n.Op {
		case expr.OpAdd:
			out.addScaled(l, 1)
			out.addScaled(r, 1)
			return out, nil
		case expr.OpSub:
			out.addScaled(l, 1)
			out.addScaled(r, -1)
			return out, nil
		case expr.OpMul:
			switch {
			case l.isConst():
				out.addScaled(r, l.konst)
				return out, nil
			case r.isConst():
				out.addScaled(l, r.konst)
				return out, nil
			}
			return nil, fmt.Errorf("translate: product of aggregates in %s", n)
		case expr.OpDiv:
			if !r.isConst() {
				return nil, fmt.Errorf("translate: division by aggregate in %s", n)
			}
			if r.konst == 0 {
				return nil, fmt.Errorf("translate: division by zero in %s", n)
			}
			out.addScaled(l, 1/r.konst)
			return out, nil
		}
		return nil, fmt.Errorf("translate: operator %s is not affine", n.Op)
	case *expr.Call:
		// constant-only calls were folded by classify; evaluate.
		v, err := n.Eval(nil)
		if err != nil {
			return nil, err
		}
		f := newAffine()
		fv, ok := v.AsFloat()
		if !ok {
			return nil, fmt.Errorf("translate: non-numeric call %s", n)
		}
		f.konst = fv
		return f, nil
	}
	return nil, fmt.Errorf("translate: expression %s is not affine", e)
}

// aggWeights computes the per-candidate contribution of a SUM/COUNT
// aggregate: 0 when the filter rejects the tuple or the argument is
// NULL, otherwise 1 (COUNT) or the argument value (SUM).
func (m *Model) aggWeights(a *paql.Agg) ([]float64, error) {
	w := make([]float64, m.NumTupleVars)
	for i, row := range m.Candidates {
		if a.Filter != nil {
			ok, err := expr.EvalBool(a.Filter, row)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		if a.Star {
			w[i] = 1
			continue
		}
		v, err := a.Arg.Eval(row)
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			continue
		}
		if a.Fn == "COUNT" {
			w[i] = 1
			continue
		}
		f, ok := v.AsFloat()
		if !ok {
			return nil, fmt.Errorf("translate: non-numeric value %s under %s", v, a)
		}
		w[i] = f
	}
	return w, nil
}

// filterWeights is aggWeights for the COUNT(*) of an aggregate's filter
// (used by AVG and MIN/MAX guards).
func (m *Model) filterWeights(a *paql.Agg) ([]float64, error) {
	count := &paql.Agg{Fn: "COUNT", Star: true, Filter: a.Filter}
	return m.aggWeights(count)
}

package translate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/milp"
	"repro/internal/paql"
	"repro/internal/schema"
	"repro/internal/value"
)

func relSchema() schema.Schema {
	return schema.New(
		schema.Column{Name: "id", Type: schema.TInt},
		schema.Column{Name: "calories", Type: schema.TFloat},
		schema.Column{Name: "protein", Type: schema.TFloat},
		schema.Column{Name: "kind", Type: schema.TString},
		schema.Column{Name: "price", Type: schema.TFloat},
	)
}

func mkRow(id int, cal, prot float64, kind string, price float64) schema.Row {
	return schema.Row{value.Int(int64(id)), value.Float(cal), value.Float(prot), value.Str(kind), value.Float(price)}
}

func analyze(t *testing.T, src string) *paql.Analysis {
	t.Helper()
	q, err := paql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	a, err := paql.Analyze(q, relSchema())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}

// bruteBest enumerates every multiplicity vector up to maxMult and
// returns the best objective among satisfying packages.
func bruteBest(t *testing.T, q *paql.Query, rows []schema.Row) (float64, bool) {
	t.Helper()
	maxMult := q.MaxMultiplicity()
	if maxMult == 0 {
		t.Fatal("bruteBest requires bounded multiplicity")
	}
	n := len(rows)
	mult := make([]int, n)
	best := 0.0
	found := false
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			var pkg []schema.Row
			for j, m := range mult {
				for k := 0; k < m; k++ {
					pkg = append(pkg, rows[j])
				}
			}
			ok, err := paql.Satisfies(q.SuchThat, pkg)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return
			}
			obj := 0.0
			if q.Objective != nil {
				obj, err = paql.ObjectiveValue(q.Objective, pkg)
				if err != nil {
					t.Fatal(err)
				}
			}
			if !found || paql.Better(q.Objective, obj, best) {
				best = obj
				found = true
			}
			return
		}
		for m := 0; m <= maxMult; m++ {
			mult[i] = m
			rec(i + 1)
		}
		mult[i] = 0
	}
	rec(0)
	return best, found
}

func solveModel(t *testing.T, a *paql.Analysis, rows []schema.Row) *Result {
	t.Helper()
	ids := make([]int, len(rows))
	for i := range ids {
		ids[i] = i
	}
	m, err := Translate(a, rows, ids)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	res, err := m.Solve()
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	return res
}

// verify decodes and re-checks the package against the query semantics.
func verify(t *testing.T, a *paql.Analysis, rows []schema.Row, res *Result) []schema.Row {
	t.Helper()
	var pkg []schema.Row
	for i, m := range res.Multiplicities {
		for k := 0; k < m; k++ {
			pkg = append(pkg, rows[i])
		}
	}
	ok, err := paql.Satisfies(a.Query.SuchThat, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("solver package does not satisfy SUCH THAT: mult=%v", res.Multiplicities)
	}
	return pkg
}

func testRows() []schema.Row {
	return []schema.Row{
		mkRow(1, 300, 10, "meal", 5),
		mkRow(2, 550, 18, "meal", 9),
		mkRow(3, 150, 4, "snack", 3),
		mkRow(4, 420, 38, "meal", 11),
		mkRow(5, 800, 30, "meal", 14),
		mkRow(6, 380, 22, "snack", 6),
		mkRow(7, 200, 6, "snack", 2),
		mkRow(8, 650, 45, "meal", 13),
	}
}

func TestMealQueryMatchesBruteForce(t *testing.T) {
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500
		MAXIMIZE SUM(P.protein)`)
	rows := testRows()
	want, feasible := bruteBest(t, a.Query, rows)
	if !feasible {
		t.Fatal("test instance should be feasible")
	}
	res := solveModel(t, a, rows)
	if res.Solution.Status != milp.StatusOptimal {
		t.Fatalf("status = %v", res.Solution.Status)
	}
	verify(t, a, rows, res)
	if math.Abs(res.Solution.Objective-want) > 1e-6 {
		t.Errorf("objective = %g, want %g", res.Solution.Objective, want)
	}
}

func TestRepeatAllowsMultiplicity(t *testing.T) {
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 2
		SUCH THAT COUNT(*) = 3 AND SUM(P.calories) >= 2300
		MAXIMIZE SUM(P.protein)`)
	rows := testRows()[:4] // calories 300,550,150,420: only repetition reaches 2300? 3*550=1650 no...
	// With REPEAT 2 (mult<=3): max sum = 3*550 = 1650 < 2300: infeasible.
	res := solveModel(t, a, rows)
	if res.Solution.Status != milp.StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Solution.Status)
	}
	// Achievable with repetition: >= 1500 needs e.g. 550*3.
	a2 := analyze(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 2
		SUCH THAT COUNT(*) = 3 AND SUM(P.calories) >= 1500
		MAXIMIZE SUM(P.protein)`)
	want, feasible := bruteBest(t, a2.Query, rows)
	if !feasible {
		t.Fatal("repeat instance should be feasible")
	}
	res2 := solveModel(t, a2, rows)
	if res2.Solution.Status != milp.StatusOptimal {
		t.Fatalf("status = %v", res2.Solution.Status)
	}
	if math.Abs(res2.Solution.Objective-want) > 1e-6 {
		t.Errorf("objective = %g, want %g", res2.Solution.Objective, want)
	}
	// must actually use multiplicity > 1
	hasRepeat := false
	for _, m := range res2.Multiplicities {
		if m > 1 {
			hasRepeat = true
		}
	}
	if !hasRepeat {
		t.Log("note: optimum did not need repetition (still correct)")
	}
}

func TestDisjunctionMatchesBruteForce(t *testing.T) {
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT (COUNT(*) = 2 AND SUM(P.calories) <= 600) OR
		          (COUNT(*) = 3 AND SUM(P.calories) >= 1800)
		MAXIMIZE SUM(P.protein)`)
	rows := testRows()
	want, feasible := bruteBest(t, a.Query, rows)
	res := solveModel(t, a, rows)
	if !feasible {
		if res.Solution.Status != milp.StatusInfeasible {
			t.Fatalf("want infeasible, got %v", res.Solution.Status)
		}
		return
	}
	if res.Solution.Status != milp.StatusOptimal {
		t.Fatalf("status = %v", res.Solution.Status)
	}
	verify(t, a, rows, res)
	if math.Abs(res.Solution.Objective-want) > 1e-6 {
		t.Errorf("objective = %g, want %g", res.Solution.Objective, want)
	}
}

func TestVacationStyleFilteredDisjunction(t *testing.T) {
	// Items: flights, hotels, cars. Budget, and "close hotel OR a car".
	rows := []schema.Row{
		mkRow(1, 0, 0, "flight", 600),
		mkRow(2, 0, 0, "flight", 450),
		mkRow(3, 2.5, 0, "hotel", 700), // calories column reused as distance
		mkRow(4, 0.4, 0, "hotel", 950),
		mkRow(5, 0, 0, "car", 300),
	}
	a := analyze(t, `
		SELECT PACKAGE(V) AS P FROM Items V
		SUCH THAT SUM(P.price) <= 2000
		      AND COUNT(* WHERE P.kind = 'flight') = 1
		      AND COUNT(* WHERE P.kind = 'hotel') = 1
		      AND (MAX(P.calories WHERE P.kind = 'hotel') <= 1.0 OR COUNT(* WHERE P.kind = 'car') >= 1)
		MINIMIZE SUM(P.price)`)
	want, feasible := bruteBest(t, a.Query, rows)
	if !feasible {
		t.Fatal("vacation instance should be feasible")
	}
	res := solveModel(t, a, rows)
	if res.Solution.Status != milp.StatusOptimal {
		t.Fatalf("status = %v", res.Solution.Status)
	}
	verify(t, a, rows, res)
	if math.Abs(res.Solution.Objective-want) > 1e-6 {
		t.Errorf("objective = %g, want %g", res.Solution.Objective, want)
	}
	// cheapest: flight 450 + far hotel? hotel 700 is far (2.5) -> needs car
	// (450+700+300=1450) vs close hotel 950 (450+950=1400). Want 1400.
	if math.Abs(want-1400) > 1e-9 {
		t.Errorf("oracle sanity: want 1400, got %g", want)
	}
}

func TestMinMaxConstraints(t *testing.T) {
	cases := []string{
		`SUCH THAT COUNT(*) = 2 AND MIN(P.calories) >= 300 MAXIMIZE SUM(P.protein)`,
		`SUCH THAT COUNT(*) = 2 AND MIN(P.calories) <= 200 MAXIMIZE SUM(P.protein)`,
		`SUCH THAT COUNT(*) = 2 AND MAX(P.calories) <= 500 MAXIMIZE SUM(P.protein)`,
		`SUCH THAT COUNT(*) = 2 AND MAX(P.calories) >= 700 MAXIMIZE SUM(P.protein)`,
		`SUCH THAT COUNT(*) = 3 AND MIN(P.calories) > 150 AND MAX(P.calories) < 700 MAXIMIZE SUM(P.protein)`,
	}
	rows := testRows()
	for _, clause := range cases {
		a := analyze(t, `SELECT PACKAGE(R) AS P FROM Recipes R `+clause)
		want, feasible := bruteBest(t, a.Query, rows)
		res := solveModel(t, a, rows)
		if !feasible {
			if res.Solution.Status != milp.StatusInfeasible {
				t.Errorf("%q: want infeasible, got %v", clause, res.Solution.Status)
			}
			continue
		}
		if res.Solution.Status != milp.StatusOptimal {
			t.Fatalf("%q: status %v", clause, res.Solution.Status)
		}
		verify(t, a, rows, res)
		if math.Abs(res.Solution.Objective-want) > 1e-6 {
			t.Errorf("%q: objective %g, want %g", clause, res.Solution.Objective, want)
		}
	}
}

func TestAvgConstraint(t *testing.T) {
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT COUNT(*) = 3 AND AVG(P.calories) <= 400
		MAXIMIZE SUM(P.protein)`)
	rows := testRows()
	want, feasible := bruteBest(t, a.Query, rows)
	if !feasible {
		t.Fatal("avg instance should be feasible")
	}
	res := solveModel(t, a, rows)
	if res.Solution.Status != milp.StatusOptimal {
		t.Fatalf("status = %v", res.Solution.Status)
	}
	verify(t, a, rows, res)
	if math.Abs(res.Solution.Objective-want) > 1e-6 {
		t.Errorf("objective = %g, want %g", res.Solution.Objective, want)
	}
}

func TestAvgGuardsEmptyPackage(t *testing.T) {
	// AVG <= 1000 alone: empty package must NOT satisfy (AVG is NULL),
	// so the minimal solution has one tuple.
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT AVG(P.calories) <= 1000
		MINIMIZE COUNT(*)`)
	rows := testRows()
	res := solveModel(t, a, rows)
	if res.Solution.Status != milp.StatusOptimal {
		t.Fatalf("status = %v", res.Solution.Status)
	}
	total := 0
	for _, m := range res.Multiplicities {
		total += m
	}
	if total != 1 {
		t.Errorf("minimal AVG package size = %d, want 1 (empty is invalid)", total)
	}
}

func TestExclusionCuts(t *testing.T) {
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT COUNT(*) = 2 AND SUM(P.calories) <= 1000
		MAXIMIZE SUM(P.protein)`)
	rows := testRows()
	ids := make([]int, len(rows))
	for i := range ids {
		ids[i] = i
	}
	m, err := Translate(a, rows, ids)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	prevObj := math.Inf(1)
	for k := 0; k < 4; k++ {
		res, err := m.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if res.Solution.Status != milp.StatusOptimal {
			break
		}
		key := ""
		for _, mm := range res.Multiplicities {
			key += string(rune('0' + mm))
		}
		if seen[key] {
			t.Fatalf("exclusion cut failed: package %s repeated", key)
		}
		seen[key] = true
		if res.Solution.Objective > prevObj+1e-9 {
			t.Errorf("objective increased across cuts: %g after %g", res.Solution.Objective, prevObj)
		}
		prevObj = res.Solution.Objective
		if err := m.AddExclusionCut(res.Multiplicities); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) < 3 {
		t.Errorf("expected at least 3 distinct packages, got %d", len(seen))
	}
}

func TestTranslateErrors(t *testing.T) {
	rows := testRows()
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7}
	// nonlinear rejected
	a := analyze(t, `SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT SUM(P.calories) * SUM(P.protein) <= 10`)
	if _, err := Translate(a, rows, ids); err == nil {
		t.Error("nonlinear query should fail to translate")
	}
	// id/candidate mismatch
	a = analyze(t, `SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT COUNT(*) = 1`)
	if _, err := Translate(a, rows, ids[:2]); err == nil {
		t.Error("mismatched ids should fail")
	}
	// exclusion cut with REPEAT
	a = analyze(t, `SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 1 SUCH THAT COUNT(*) = 2`)
	m, err := Translate(a, rows, ids)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddExclusionCut(make([]int, len(rows))); err == nil {
		t.Error("exclusion cut with REPEAT should fail")
	}
}

func TestFeasibilityOnlyQuery(t *testing.T) {
	// No objective: any satisfying package will do.
	a := analyze(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT COUNT(*) = 4 AND SUM(P.price) <= 30`)
	rows := testRows()
	res := solveModel(t, a, rows)
	if res.Solution.Status != milp.StatusOptimal {
		t.Fatalf("status = %v", res.Solution.Status)
	}
	verify(t, a, rows, res)
}

// Property: random linear queries over random data agree with brute force.
func TestPropTranslateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	templates := []string{
		`SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT COUNT(*) = %K AND SUM(P.calories) <= %B MAXIMIZE SUM(P.protein)`,
		`SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT SUM(P.calories) BETWEEN %A AND %B MINIMIZE SUM(P.price)`,
		`SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT COUNT(*) <= %K AND SUM(P.calories) >= %A MAXIMIZE SUM(P.protein) - SUM(P.price)`,
		`SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT COUNT(*) = %K OR SUM(P.calories) <= %A MAXIMIZE SUM(P.calories)`,
		`SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 1 SUCH THAT COUNT(*) = %K AND SUM(P.calories) <= %B MAXIMIZE SUM(P.protein)`,
	}
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(5)
		rows := make([]schema.Row, n)
		for i := range rows {
			rows[i] = mkRow(i, float64(100+rng.Intn(9)*100), float64(rng.Intn(50)),
				[]string{"meal", "snack"}[rng.Intn(2)], float64(1+rng.Intn(20)))
		}
		src := templates[trial%len(templates)]
		src = replaceAll(src, "%K", itoa(1+rng.Intn(3)))
		src = replaceAll(src, "%A", itoa(300+rng.Intn(800)))
		src = replaceAll(src, "%B", itoa(1200+rng.Intn(1500)))
		a := analyze(t, src)
		want, feasible := bruteBest(t, a.Query, rows)
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		m, err := Translate(a, rows, ids)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, src, err)
		}
		res, err := m.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if !feasible {
			if res.Solution.Status != milp.StatusInfeasible {
				t.Fatalf("trial %d (%s): want infeasible, got %v (obj %g)",
					trial, src, res.Solution.Status, res.Solution.Objective)
			}
			continue
		}
		if res.Solution.Status != milp.StatusOptimal {
			t.Fatalf("trial %d (%s): status %v", trial, src, res.Solution.Status)
		}
		if math.Abs(res.Solution.Objective-want) > 1e-5 {
			t.Fatalf("trial %d (%s): milp %g, brute %g", trial, src, res.Solution.Objective, want)
		}
	}
}

func itoa(i int) string { return value.Int(int64(i)).String() }

func replaceAll(s, old, new string) string {
	for {
		i := index(s, old)
		if i < 0 {
			return s
		}
		s = s[:i] + new + s[i+len(old):]
	}
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

package translate

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/lp"
	"repro/internal/paql"
	"repro/internal/schema"
)

// DefaultMaxSketchBranches caps the disjunctive-normal-form expansion
// CompileSketch performs: a SUCH THAT formula whose DNF has more
// branches than this is rejected as not sketchable (each branch costs
// one full sketch descent, so the cap bounds SketchRefine's work).
const DefaultMaxSketchBranches = 8

// SketchAtomKind classifies one lowered atom of a sketch branch.
type SketchAtomKind int

const (
	// SketchLinear is an affine SUM/COUNT comparison: one (or, for
	// equality, two) exact linear rows at every level.
	SketchLinear SketchAtomKind = iota
	// SketchAvg is an AVG(arg) ⋚ c atom rewritten to its linear form
	// SUM(arg·w) − c·COUNT_w ⋚ 0 (the PVLDB 2016 linearization); the
	// non-empty guard is emitted as a separate SketchAtLeast atom.
	SketchAvg
	// SketchElim is a MIN/MAX elimination row: tuples violating the
	// bound may not enter the package (Σ_bad x ≤ 0). Exact over real
	// tuples; relaxed over partition nodes via min/max envelopes.
	SketchElim
	// SketchAtLeast is an at-least-one row (Σ_good x ≥ 1): the
	// MIN/MAX witness requirement and the AVG/MIN/MAX non-empty
	// guards. Exact over real tuples; relaxed over partition nodes.
	SketchAtLeast
)

// SketchAtom is one atom of a sketch branch, lowered far enough that it
// weighs to exact linear rows over any candidate set. The same atom
// weighs over real tuples (refine) and over representative rows (the
// sketch levels); selector kinds (SketchElim/SketchAtLeast) are instead
// re-weighted over partition nodes from subtree envelopes, which is why
// they expose their predicate through Selector.
type SketchAtom struct {
	// Kind drives how the atom is weighted at each level.
	Kind SketchAtomKind

	cmp *expr.Binary // SketchLinear: the source comparison
	agg *paql.Agg    // SketchAvg/SketchElim/SketchAtLeast: the aggregate
	op  expr.BinOp   // SketchAvg: comparison op; selectors: predicate op
	c   float64      // threshold constant (aggregate on the left)
	all bool         // SketchAtLeast: select every present tuple (guard)
	src string       // rendered source atom, for rows and diagnostics
}

// Source returns the rendered source atom the lowering came from.
func (at *SketchAtom) Source() string { return at.src }

// IsSelector reports whether the atom carries 0/1 selector weights
// (SketchElim/SketchAtLeast) that partition levels must re-weight from
// subtree envelopes rather than from representative rows.
func (at *SketchAtom) IsSelector() bool {
	return at.Kind == SketchElim || at.Kind == SketchAtLeast
}

// SketchBranch is one DNF branch: a conjunction of sketch atoms. A
// package satisfying every atom of any branch satisfies the SUCH THAT
// formula.
type SketchBranch struct {
	// Atoms is the branch's conjunction, in formula order.
	Atoms []*SketchAtom
}

// CompileSketch lowers the query's SUCH THAT formula into
// disjunctive-normal-form branches of sketch atoms, the form
// SketchRefine descends one branch at a time: affine SUM/COUNT
// comparisons stay single rows, AVG atoms are linearized as
// SUM − c·COUNT plus a non-empty guard, and MIN/MAX atoms lower to
// elimination and at-least-one selector rows. maxBranches caps the DNF
// expansion (0 = DefaultMaxSketchBranches). rewrites counts the
// AVG/MIN/MAX source atoms that were rewritten.
//
// A nil SUCH THAT yields one empty branch (everything is feasible); a
// constant-false formula yields zero branches. Errors name the atom
// that blocks sketch evaluation.
func CompileSketch(a *paql.Analysis, maxBranches int) (branches []SketchBranch, rewrites int, err error) {
	if maxBranches <= 0 {
		maxBranches = DefaultMaxSketchBranches
	}
	if a.Query.SuchThat == nil {
		return []SketchBranch{{}}, 0, nil
	}
	raw, err := dnfBranches(nnf(a.Query.SuchThat, false), maxBranches)
	if err != nil {
		return nil, 0, err
	}
	probe := &Model{}
	rewritten := map[*bAtom]bool{}
	for _, rb := range raw {
		atoms := make([]*SketchAtom, 0, len(rb))
		drop := false
		for _, ba := range rb {
			lowered, dropBranch, wasRewrite, err := lowerSketchAtom(probe, ba.e)
			if err != nil {
				return nil, 0, err
			}
			if dropBranch {
				drop = true
				break
			}
			if wasRewrite && !rewritten[ba] {
				rewritten[ba] = true
				rewrites++
			}
			atoms = append(atoms, lowered...)
		}
		if !drop {
			branches = append(branches, SketchBranch{Atoms: atoms})
		}
	}
	return branches, rewrites, nil
}

// dnfBranches expands a negation-normal-form tree into DNF: a list of
// branches, each a conjunction of atoms. cap bounds the branch count.
func dnfBranches(n bnode, cap int) ([][]*bAtom, error) {
	switch node := n.(type) {
	case *bAtom:
		return [][]*bAtom{{node}}, nil
	case *bOr:
		var out [][]*bAtom
		for _, k := range node.kids {
			kb, err := dnfBranches(k, cap)
			if err != nil {
				return nil, err
			}
			out = append(out, kb...)
			if len(out) > cap {
				return nil, fmt.Errorf("SUCH THAT expands to more than %d disjunctive branches; SketchRefine caps the DNF blow-up (simplify the formula or use -strategy solver)", cap)
			}
		}
		return out, nil
	case *bAnd:
		out := [][]*bAtom{nil}
		for _, k := range node.kids {
			kb, err := dnfBranches(k, cap)
			if err != nil {
				return nil, err
			}
			next := make([][]*bAtom, 0, len(out)*len(kb))
			for _, pre := range out {
				for _, suf := range kb {
					branch := make([]*bAtom, 0, len(pre)+len(suf))
					branch = append(append(branch, pre...), suf...)
					next = append(next, branch)
					if len(next) > cap {
						return nil, fmt.Errorf("SUCH THAT expands to more than %d disjunctive branches; SketchRefine caps the DNF blow-up (simplify the formula or use -strategy solver)", cap)
					}
				}
			}
			out = next
		}
		return out, nil
	}
	return nil, fmt.Errorf("unknown formula node %T", n)
}

// lowerSketchAtom lowers one comparison (or constant boolean) into
// sketch atoms. dropBranch reports a constant-false atom (the branch is
// unsatisfiable); wasRewrite reports an AVG/MIN/MAX rewrite. Errors
// name the offending atom.
func lowerSketchAtom(probe *Model, e expr.Expr) (atoms []*SketchAtom, dropBranch, wasRewrite bool, err error) {
	if v, ok := constBool(e); ok {
		return nil, !v, false, nil
	}
	b, ok := e.(*expr.Binary)
	if !ok || !b.Op.Comparison() {
		return nil, false, false, fmt.Errorf("atom %s is not a comparison over aggregates", e)
	}
	agg, c, op, special, err := probe.specialAtom(b)
	if err != nil {
		return nil, false, false, fmt.Errorf("atom %s blocks SketchRefine: %w", e, err)
	}
	src := e.String()
	if special {
		switch agg.Fn {
		case "AVG":
			switch op {
			case expr.OpLe, expr.OpLt, expr.OpGe, expr.OpGt:
			default:
				return nil, false, false, fmt.Errorf("atom %s blocks SketchRefine: AVG with %s has no exact linear form", e, op)
			}
			return []*SketchAtom{
				{Kind: SketchAvg, agg: agg, op: op, c: c, src: src},
				{Kind: SketchAtLeast, agg: agg, all: true, src: src + " [non-empty guard]"},
			}, false, true, nil
		case "MIN", "MAX":
			return lowerMinMax(agg, op, c, e, src)
		}
	}
	if _, ok := probe.linearAtom(b); !ok {
		return nil, false, false, fmt.Errorf("atom %s is not an affine SUM/COUNT comparison (no linear form)", e)
	}
	return []*SketchAtom{{Kind: SketchLinear, cmp: b, src: src}}, false, false, nil
}

// lowerMinMax lowers a MIN/MAX comparison into selector atoms, the
// same elimination + at-least-one scheme the exact MILP uses
// (encodeMinMax): bounds that constrain every package member eliminate
// the violating tuples and require a surviving witness; bounds that
// only need one witness require a tuple on the right side of the
// threshold.
func lowerMinMax(agg *paql.Agg, op expr.BinOp, c float64, e expr.Expr, src string) ([]*SketchAtom, bool, bool, error) {
	isMin := agg.Fn == "MIN"
	switch {
	case (isMin && (op == expr.OpGe || op == expr.OpGt)) || (!isMin && (op == expr.OpLe || op == expr.OpLt)):
		var badOp expr.BinOp
		switch {
		case isMin && op == expr.OpGe:
			badOp = expr.OpLt
		case isMin && op == expr.OpGt:
			badOp = expr.OpLe
		case !isMin && op == expr.OpLe:
			badOp = expr.OpGt
		default: // MAX <
			badOp = expr.OpGe
		}
		return []*SketchAtom{
			{Kind: SketchElim, agg: agg, op: badOp, c: c, src: src},
			{Kind: SketchAtLeast, agg: agg, all: true, src: src + " [witness guard]"},
		}, false, true, nil
	case (isMin && (op == expr.OpLe || op == expr.OpLt)) || (!isMin && (op == expr.OpGe || op == expr.OpGt)):
		return []*SketchAtom{
			{Kind: SketchAtLeast, agg: agg, op: op, c: c, src: src},
		}, false, true, nil
	}
	return nil, false, false, fmt.Errorf("atom %s blocks SketchRefine: %s with %s has no exact linear form", e, agg.Fn, op)
}

// Weigh compiles the atom into exact linear rows over the given
// candidate rows. Calling it with the instance's real tuples yields the
// rows the refine MILPs and the final feasibility check enforce;
// calling it with representative rows yields a sketch level's
// approximation for the non-selector kinds (selector kinds weigh their
// 0/1 predicate over whatever rows they are given — partition levels
// should re-weight them from subtree envelopes instead).
func (at *SketchAtom) Weigh(cands []schema.Row) ([]*LinearAtom, error) {
	m := &Model{Candidates: cands, NumTupleVars: len(cands)}
	switch at.Kind {
	case SketchLinear:
		return m.sketchLinearRows(at.cmp)
	case SketchAvg:
		sum := &paql.Agg{Fn: "SUM", Arg: at.agg.Arg, Filter: at.agg.Filter}
		sw, err := m.aggWeights(sum)
		if err != nil {
			return nil, err
		}
		// COUNT over the argument, exactly like encodeAvg: a NULL
		// argument contributes to neither the sum nor the count, so its
		// weight must be 0 — COUNT(*) weights would let NULL tuples
		// shift the rewritten average.
		cnt := &paql.Agg{Fn: "COUNT", Arg: at.agg.Arg, Filter: at.agg.Filter}
		cw, err := m.aggWeights(cnt)
		if err != nil {
			return nil, err
		}
		w := make([]float64, m.NumTupleVars)
		for i := range w {
			w[i] = sw[i] - at.c*cw[i]
		}
		row := &LinearAtom{W: w, Source: at.src}
		switch at.op {
		case expr.OpLe:
			row.Op, row.RHS = lp.LE, 0
		case expr.OpLt:
			row.Op, row.RHS = lp.LE, -eps(at.c)
		case expr.OpGe:
			row.Op, row.RHS = lp.GE, 0
		case expr.OpGt:
			row.Op, row.RHS = lp.GE, eps(at.c)
		default:
			return nil, fmt.Errorf("AVG with %s has no exact linear form", at.op)
		}
		return []*LinearAtom{row}, nil
	case SketchElim, SketchAtLeast:
		sel, err := at.Selector(cands)
		if err != nil {
			return nil, err
		}
		return []*LinearAtom{sel.TupleAtom()}, nil
	}
	return nil, fmt.Errorf("unknown sketch atom kind %d", at.Kind)
}

// sketchLinearRows is linearAtom with strict comparisons tightened by
// the shared epsilon instead of relaxed to their closed forms: sketch
// branches need sufficient conditions (a package passing the rows must
// satisfy the formula), where ConjunctiveAtoms only needs necessary
// ones.
func (m *Model) sketchLinearRows(b *expr.Binary) ([]*LinearAtom, error) {
	rows, ok := m.linearAtom(b)
	if !ok {
		return nil, fmt.Errorf("atom %s is not an affine SUM/COUNT comparison", b)
	}
	switch b.Op {
	case expr.OpLt:
		rows[0].RHS -= eps(rows[0].RHS)
	case expr.OpGt:
		rows[0].RHS += eps(rows[0].RHS)
	}
	return rows, nil
}

// Selector is the per-candidate view of a selector atom
// (SketchElim/SketchAtLeast): which tuples are present under the
// aggregate's filter, their argument values, and the predicate that
// selects them (bad tuples for an elimination row, good tuples for an
// at-least-one row). Partition levels use it to re-weight the atom over
// nodes from subtree envelopes; Col names the bare unfiltered argument
// column when the envelope fast path applies (-1 otherwise).
type Selector struct {
	Kind    SketchAtomKind
	Present []bool    // filter passes and the argument is non-NULL
	Vals    []float64 // argument value per candidate (0 when absent)
	Col     int       // bare argument column ordinal, or -1
	All     bool      // predicate selects every present tuple (guards)
	Op      expr.BinOp
	C       float64
	Source  string
}

// Selector computes the selector view of the atom over the candidates.
// It errors on non-selector kinds.
func (at *SketchAtom) Selector(cands []schema.Row) (*Selector, error) {
	if !at.IsSelector() {
		return nil, fmt.Errorf("atom %s is not a selector", at.src)
	}
	m := &Model{Candidates: cands, NumTupleVars: len(cands)}
	present, err := m.filterPresence(at.agg)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, len(cands))
	if at.agg.Arg != nil {
		for i, row := range cands {
			if !present[i] {
				continue
			}
			v, err := at.agg.Arg.Eval(row)
			if err != nil {
				return nil, err
			}
			f, _ := v.AsFloat()
			vals[i] = f
		}
	}
	col := -1
	if at.agg.Filter == nil && at.agg.Arg != nil {
		if c, ok := at.agg.Arg.(*expr.Col); ok {
			col = c.Idx
		}
	}
	return &Selector{
		Kind: at.Kind, Present: present, Vals: vals, Col: col,
		All: at.all, Op: at.op, C: at.c, Source: at.src,
	}, nil
}

// Match reports whether a present tuple with the given argument value
// is selected by the predicate.
func (s *Selector) Match(v float64) bool {
	if s.All {
		return true
	}
	switch s.Op {
	case expr.OpLe:
		return v <= s.C
	case expr.OpLt:
		return v < s.C
	case expr.OpGe:
		return v >= s.C
	case expr.OpGt:
		return v > s.C
	}
	return false
}

// TupleAtom is the exact tuple-level row of the selector: Σ_bad x ≤ 0
// for eliminations, Σ_good x ≥ 1 for at-least-one rows — the same rows
// the exact MILP enforces for MIN/MAX atoms and AVG guards.
func (s *Selector) TupleAtom() *LinearAtom {
	w := make([]float64, len(s.Present))
	for i := range w {
		if s.Present[i] && s.Match(s.Vals[i]) {
			w[i] = 1
		}
	}
	if s.Kind == SketchElim {
		return &LinearAtom{W: w, Op: lp.LE, RHS: 0, Source: s.Source}
	}
	return &LinearAtom{W: w, Op: lp.GE, RHS: 1, Source: s.Source}
}

package search

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/lp"
	"repro/internal/minidb"
	"repro/internal/schema"
	"repro/internal/value"
)

// tableSeq disambiguates the scratch tables of concurrent searches.
var tableSeq atomic.Int64

// LocalSearch is the paper's §4.2 heuristic: starting from a candidate
// package, find k-tuple replacements leading to a valid (then better)
// package, where the replacement neighbourhood is computed by a single
// SQL join query against the DBMS — a 2k-way join between the current
// package and the candidate relation. Additions and removals repair
// cardinality; swaps repair sums and improve the objective. Restarts
// diversify; as the paper notes, "there is no guarantee that all valid
// solutions will be found".
func LocalSearch(inst *Instance, db *minidb.DB, opt Options) (*Result, error) {
	if inst.MaxMult <= 0 {
		return nil, fmt.Errorf("search: local search requires bounded multiplicity (REPEAT)")
	}
	start := time.Now()
	res := &Result{}
	deadline := opt.deadline()
	limit := opt.limit()
	restarts := opt.Restarts
	if restarts <= 0 {
		restarts = 4
	}
	maxK := opt.MaxK
	if maxK <= 0 {
		maxK = 2
	}
	if maxK > 3 {
		maxK = 3
	}
	rng := rand.New(rand.NewSource(opt.Seed + 1))

	ls := &localState{inst: inst, db: db, res: res, opt: opt,
		candTable: fmt.Sprintf("pb_cand_%d", tableSeq.Add(1)),
		required:  opt.requireSet(len(inst.Rows)),
	}
	if err := ls.createCandidateTable(); err != nil {
		return nil, err
	}
	defer func() { _ = db.DropTable(ls.candTable) }()

	for r := 0; r < restarts; r++ {
		if opt.stop(deadline) {
			break
		}
		res.Restarts++
		var cur Pkg
		if r == 0 {
			cur = Greedy(inst, nil)
		} else if r == 1 {
			cur = Greedy(inst, rng)
		} else {
			cur = RandomStart(inst, rng)
		}
		for i := range ls.required {
			if cur.Mult[i] == 0 {
				cur.Mult[i] = 1
			}
		}
		if err := ls.climb(cur, maxK, limit, deadline); err != nil {
			_ = db.DropTable(ls.pkgTable())
			return nil, err
		}
		if limit == 1 && len(res.Packages) > 0 && inst.Analysis.Query.Objective == nil {
			break // any valid package suffices
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

type localState struct {
	inst      *Instance
	db        *minidb.DB
	res       *Result
	opt       Options
	candTable string
	pkgSeq    int
	required  map[int]bool // pinned candidates (adaptive exploration)
}

func (ls *localState) pkgTable() string {
	return fmt.Sprintf("%s_pkg%d", ls.candTable, ls.pkgSeq)
}

// createCandidateTable materializes the candidates with per-atom weight
// columns: rid (candidate index), obj, w0..wk.
func (ls *localState) createCandidateTable() error {
	cols := []schema.Column{
		{Name: "rid", Type: schema.TInt},
		{Name: "obj", Type: schema.TFloat},
	}
	for k := range ls.inst.Atoms {
		cols = append(cols, schema.Column{Name: fmt.Sprintf("w%d", k), Type: schema.TFloat})
	}
	if _, err := ls.db.CreateTable(ls.candTable, schema.Schema{Cols: cols}); err != nil {
		return err
	}
	rows := make([]schema.Row, len(ls.inst.Rows))
	for i := range ls.inst.Rows {
		row := make(schema.Row, 2+len(ls.inst.Atoms))
		row[0] = value.Int(int64(i))
		row[1] = value.Float(objWeight(ls.inst, i))
		for k, at := range ls.inst.Atoms {
			row[2+k] = value.Float(at.W[i])
		}
		rows[i] = row
	}
	return ls.db.InsertRows(ls.candTable, rows)
}

// syncPackageTable (re)materializes the current package, one row per
// multiplicity unit: idx (slot), rid, obj, w0..wk.
func (ls *localState) syncPackageTable(mult []int) ([]int, error) {
	old := ls.pkgTable()
	_ = ls.db.DropTable(old)
	ls.pkgSeq++
	name := ls.pkgTable()
	cols := []schema.Column{
		{Name: "idx", Type: schema.TInt},
		{Name: "rid", Type: schema.TInt},
		{Name: "obj", Type: schema.TFloat},
	}
	for k := range ls.inst.Atoms {
		cols = append(cols, schema.Column{Name: fmt.Sprintf("w%d", k), Type: schema.TFloat})
	}
	if _, err := ls.db.CreateTable(name, schema.Schema{Cols: cols}); err != nil {
		return nil, err
	}
	var rows []schema.Row
	var slots []int
	slot := 0
	for i, m := range mult {
		start := 0
		if ls.required[i] && m > 0 {
			start = 1 // the pinned unit never enters the swap pool
		}
		for u := start; u < m; u++ {
			row := make(schema.Row, 3+len(ls.inst.Atoms))
			row[0] = value.Int(int64(slot))
			row[1] = value.Int(int64(i))
			row[2] = value.Float(objWeight(ls.inst, i))
			for k, at := range ls.inst.Atoms {
				row[3+k] = value.Float(at.W[i])
			}
			rows = append(rows, row)
			slots = append(slots, i)
			slot++
		}
	}
	if len(rows) > 0 {
		if err := ls.db.InsertRows(name, rows); err != nil {
			return nil, err
		}
	}
	return slots, nil
}

func num(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if strings.HasPrefix(s, "-") {
		return "(0 " + s[:1] + " " + s[1:] + ")"
	}
	return s
}

// swapQuery builds the §4.2 replacement SQL for k simultaneous swaps.
// sums are the current atom sums; improving adds the objective-delta
// requirement; maximize orients it.
func (ls *localState) swapQuery(k int, sums []float64, maxed []int, improving, maximize bool) string {
	var from []string
	var selects []string
	var conds []string
	for j := 1; j <= k; j++ {
		from = append(from, fmt.Sprintf("%s p%d", ls.pkgTable(), j))
		selects = append(selects, fmt.Sprintf("p%d.idx", j))
	}
	for j := 1; j <= k; j++ {
		from = append(from, fmt.Sprintf("%s c%d", ls.candTable, j))
		selects = append(selects, fmt.Sprintf("c%d.rid", j))
	}
	for j := 1; j < k; j++ {
		conds = append(conds, fmt.Sprintf("p%d.idx < p%d.idx", j, j+1))
		conds = append(conds, fmt.Sprintf("c%d.rid < c%d.rid", j, j+1))
	}
	for j := 1; j <= k; j++ {
		conds = append(conds, fmt.Sprintf("c%d.rid <> p%d.rid", j, j))
		if len(maxed) > 0 {
			var lits []string
			for _, r := range maxed {
				lits = append(lits, strconv.Itoa(r))
			}
			conds = append(conds, fmt.Sprintf("c%d.rid NOT IN (%s)", j, strings.Join(lits, ", ")))
		}
	}
	for a, at := range ls.inst.Atoms {
		lhs := num(sums[a])
		for j := 1; j <= k; j++ {
			lhs += fmt.Sprintf(" - p%d.w%d + c%d.w%d", j, a, j, a)
		}
		op := "<="
		if at.Op == lp.GE {
			op = ">="
		}
		conds = append(conds, fmt.Sprintf("%s %s %s", lhs, op, num(at.RHS)))
	}
	delta := ""
	for j := 1; j <= k; j++ {
		if j > 1 {
			delta += " + "
		}
		delta += fmt.Sprintf("c%d.obj - p%d.obj", j, j)
	}
	if improving {
		if maximize {
			conds = append(conds, fmt.Sprintf("%s > 0.000000001", delta))
		} else {
			conds = append(conds, fmt.Sprintf("%s < -0.000000001", delta))
		}
	}
	// First-improvement: LIMIT 1 with no ORDER BY lets the streaming
	// executor stop at the first qualifying replacement instead of
	// materializing and sorting the whole neighbourhood. Hill climbing
	// still terminates (the objective strictly improves per move); the
	// final no-move-exists proof costs one full scan, same as
	// best-improvement's every iteration.
	return fmt.Sprintf("SELECT %s FROM %s WHERE %s LIMIT 1",
		strings.Join(selects, ", "), strings.Join(from, ", "),
		strings.Join(conds, " AND "))
}

// climb runs one repair-then-improve trajectory from a start package.
func (ls *localState) climb(cur Pkg, maxK, limit int, deadline time.Time) error {
	inst := ls.inst
	maximize := inst.Analysis.Query.Objective != nil && inst.Better(1, 0)
	mult := append([]int(nil), cur.Mult...)
	maxIters := 60 + 12*len(inst.Atoms) + cur.Size()*4
	// First-improvement hill climbing can take many tiny steps on large
	// candidate sets; cap the improvement phase to keep the strategy in
	// its "fast but heuristic" regime (§4.2).
	improvesLeft := 12 + cur.Size()*4

	for iter := 0; iter < maxIters; iter++ {
		if ls.opt.stop(deadline) {
			return nil
		}
		sums := ls.atomSums(mult)
		atomsOK := true
		for k, at := range inst.Atoms {
			if !at.CheckSum(sums[k]) {
				atomsOK = false
				break
			}
		}
		countOK := true
		size := sizeOf(mult)
		if size < inst.Bounds.Lo || size > inst.Bounds.Hi {
			countOK = false
		}
		if atomsOK && countOK {
			valid, err := inst.Validate(mult)
			if err != nil {
				return err
			}
			if valid {
				obj, err := inst.Objective(mult)
				if err != nil {
					return err
				}
				ls.res.add(inst, Pkg{Mult: append([]int(nil), mult...), Obj: obj}, limit)
				if inst.Analysis.Query.Objective == nil {
					return nil
				}
				// Improve: first objective-improving swap that stays valid.
				if improvesLeft <= 0 {
					return nil // improvement budget spent
				}
				improvesLeft--
				applied, err := ls.trySwaps(mult, sums, 1, true, maximize)
				if err != nil {
					return err
				}
				if !applied {
					return nil // local optimum
				}
				continue
			}
			// Atoms hold but the full formula (disjunctive or
			// AVG/MIN/MAX parts) fails: perturb via a random swap.
			if applied, err := ls.trySwaps(mult, sums, 1, false, maximize); err != nil || !applied {
				return err
			}
			continue
		}
		// Repair: additions for low cardinality / unmet GE, removals for
		// excess, then SQL swaps of growing size.
		if size < inst.Bounds.Lo || ls.needsAddition(sums) {
			if ls.tryAdd(mult, sums) {
				continue
			}
		}
		if size > inst.Bounds.Hi || ls.needsRemoval(sums) {
			if ls.tryDrop(mult, sums) {
				continue
			}
		}
		moved := false
		for k := 1; k <= maxK; k++ {
			if swapCombos(sizeOf(mult), len(inst.Rows), k) > comboBudget {
				break // the 2k-way join would be intractable (§4.2)
			}
			applied, err := ls.trySwaps(mult, sums, k, false, maximize)
			if err != nil {
				return err
			}
			if applied {
				moved = true
				break
			}
		}
		if !moved {
			return nil // stuck; caller restarts
		}
	}
	return nil
}

// comboBudget caps the join size a repair swap may scan; beyond it the
// neighbourhood is skipped, mirroring the paper's observation that the
// 2k-way replacement join "quickly becomes intractable".
const comboBudget = 500_000

// swapCombos estimates the k-swap join size C(slots,k)*C(n,k).
func swapCombos(slots, n, k int) float64 {
	choose := func(m, r int) float64 {
		if r > m {
			return 0
		}
		out := 1.0
		for i := 0; i < r; i++ {
			out *= float64(m-i) / float64(i+1)
		}
		return out
	}
	return choose(slots, k) * choose(n, k)
}

func (ls *localState) atomSums(mult []int) []float64 {
	sums := make([]float64, len(ls.inst.Atoms))
	for k, at := range ls.inst.Atoms {
		s := 0.0
		for i, m := range mult {
			if m != 0 {
				s += at.W[i] * float64(m)
			}
		}
		sums[k] = s
	}
	return sums
}

func sizeOf(mult []int) int {
	s := 0
	for _, m := range mult {
		s += m
	}
	return s
}

func (ls *localState) needsAddition(sums []float64) bool {
	for k, at := range ls.inst.Atoms {
		if at.Op == lp.GE && sums[k] < at.RHS-1e-9 {
			return true
		}
	}
	return false
}

func (ls *localState) needsRemoval(sums []float64) bool {
	for k, at := range ls.inst.Atoms {
		if at.Op == lp.LE && sums[k] > at.RHS+1e-9 {
			return true
		}
	}
	return false
}

// tryAdd inserts the tuple that most reduces GE violations without
// breaking LE atoms (computed locally; the package is small but the
// candidate scan is linear, mirroring an indexed DBMS lookup).
func (ls *localState) tryAdd(mult []int, sums []float64) bool {
	inst := ls.inst
	if sizeOf(mult)+1 > inst.Bounds.Hi {
		return false
	}
	bestI := -1
	bestScore := 0.0
	for i := range inst.Rows {
		if mult[i] >= inst.MaxMult {
			continue
		}
		ok := true
		score := 0.0
		for k, at := range inst.Atoms {
			after := sums[k] + at.W[i]
			switch at.Op {
			case lp.LE:
				if after > at.RHS+1e-9 {
					ok = false
				}
			case lp.GE:
				if sums[k] < at.RHS {
					gain := minf(after, at.RHS) - sums[k]
					score += gain
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		if sizeOf(mult) < inst.Bounds.Lo {
			score += 1 // any legal addition helps cardinality
		}
		if score > bestScore {
			bestScore = score
			bestI = i
		}
	}
	if bestI == -1 {
		return false
	}
	mult[bestI]++
	return true
}

// tryDrop removes the tuple that most reduces LE violations without
// breaking GE atoms or the cardinality lower bound.
func (ls *localState) tryDrop(mult []int, sums []float64) bool {
	inst := ls.inst
	if sizeOf(mult)-1 < inst.Bounds.Lo {
		return false
	}
	bestI := -1
	bestScore := 0.0
	for i := range inst.Rows {
		if mult[i] == 0 || (ls.required[i] && mult[i] == 1) {
			continue
		}
		ok := true
		score := 0.0
		for k, at := range inst.Atoms {
			after := sums[k] - at.W[i]
			switch at.Op {
			case lp.GE:
				if after < at.RHS-1e-9 {
					ok = false
				}
			case lp.LE:
				if sums[k] > at.RHS {
					score += sums[k] - maxf(after, at.RHS)
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		if sizeOf(mult) > inst.Bounds.Hi {
			score += 1
		}
		if score > bestScore {
			bestScore = score
			bestI = i
		}
	}
	if bestI == -1 {
		return false
	}
	mult[bestI]--
	return true
}

// trySwaps issues the k-replacement SQL query and applies the top
// result. It reports whether a move was applied.
func (ls *localState) trySwaps(mult []int, sums []float64, k int, improving, maximize bool) (bool, error) {
	slots, err := ls.syncPackageTable(mult)
	if err != nil {
		return false, err
	}
	defer func() { _ = ls.db.DropTable(ls.pkgTable()) }()
	if len(slots) < k {
		return false, nil
	}
	var maxed []int
	for i, m := range mult {
		if m >= ls.inst.MaxMult {
			maxed = append(maxed, i)
		}
	}
	q := ls.swapQuery(k, sums, maxed, improving, maximize)
	res, err := ls.db.Query(q)
	ls.res.Queries++
	if err != nil {
		return false, fmt.Errorf("search: replacement query failed: %w\n%s", err, q)
	}
	ls.res.Examined += int64(len(res.Rows))
	if len(res.Rows) == 0 {
		return false, nil
	}
	row := res.Rows[0]
	// first k columns: slot indexes out; next k: candidate rids in
	for j := 0; j < k; j++ {
		slot, _ := row[j].AsInt()
		out := slots[slot]
		mult[out]--
	}
	for j := k; j < 2*k; j++ {
		in, _ := row[j].AsInt()
		mult[in]++
	}
	return true, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

package search

import (
	"strings"
	"testing"

	"repro/internal/minidb"
)

func TestReplacementProbe(t *testing.T) {
	rows := testRows()
	inst := instance(t, mealSrc, rows)
	db := minidb.New()
	// P0 = three heaviest tuples (550+800+650 = 2000: on the boundary).
	mult := make([]int, len(rows))
	mult[1], mult[4], mult[7] = 1, 1, 1
	sql, neigh, elapsed, err := ReplacementProbe(inst, db, mult, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "FROM") || strings.Contains(sql, "LIMIT") {
		t.Errorf("probe SQL should be a full-scan query: %s", sql)
	}
	if elapsed <= 0 {
		t.Error("elapsed not measured")
	}
	// Verify the neighbourhood against a direct enumeration oracle: all
	// (slot, candidate) swaps that keep every atom satisfied.
	want := 0
	for out := range mult {
		if mult[out] == 0 {
			continue
		}
		for in := range rows {
			if in == out || mult[in] > 0 {
				continue
			}
			trial := append([]int(nil), mult...)
			trial[out]--
			trial[in]++
			ok := true
			for _, at := range inst.Atoms {
				if !at.Check(trial) {
					ok = false
					break
				}
			}
			if ok {
				want++
			}
		}
	}
	if neigh != want {
		t.Errorf("neighbourhood = %d, oracle = %d", neigh, want)
	}
	// k=2 also runs
	if _, _, _, err := ReplacementProbe(inst, db, mult, 2); err != nil {
		t.Fatal(err)
	}
	// bad k rejected
	if _, _, _, err := ReplacementProbe(inst, db, mult, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, _, _, err := ReplacementProbe(inst, db, mult, 4); err == nil {
		t.Error("k=4 should fail")
	}
	// scratch tables cleaned
	if n := len(db.TableNames()); n != 0 {
		t.Errorf("%d leftover tables", n)
	}
}

func TestLocalSearchAddDropRepair(t *testing.T) {
	// Variable-cardinality query: greedy starts at the lower bound, so
	// reaching the protein floor forces additions; a too-heavy random
	// start forces drops.
	rows := testRows()
	inst := instance(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT COUNT(*) BETWEEN 2 AND 6
		      AND SUM(P.protein) >= 120
		      AND SUM(P.calories) <= 2600
		MINIMIZE SUM(P.calories)`, rows)
	// COUNT gives [2,6]; SUM(protein) >= 120 with MAX(protein)=45
	// tightens the lower bound to ceil(120/45) = 3.
	if inst.Bounds.Lo != 3 || inst.Bounds.Hi != 6 {
		t.Fatalf("bounds = %v", inst.Bounds)
	}
	db := minidb.New()
	res, err := LocalSearch(inst, db, Options{Seed: 5, Restarts: 8, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) == 0 {
		t.Fatal("local search found nothing")
	}
	for _, p := range res.Packages {
		ok, err := inst.Validate(p.Mult)
		if err != nil || !ok {
			t.Errorf("invalid package %v (%v)", p.Mult, err)
		}
	}
	// exact comparison: heuristic never better than optimum under MINIMIZE
	exact, err := PrunedEnumerate(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Packages) > 0 && inst.Better(res.Packages[0].Obj, exact.Packages[0].Obj) {
		t.Errorf("heuristic %g beats exact %g", res.Packages[0].Obj, exact.Packages[0].Obj)
	}
}

func TestRequireInEnumerators(t *testing.T) {
	rows := testRows()
	inst := instance(t, mealSrc, rows)
	// candidate 2 (Salad, 150 cal, 4 protein) is never in the optimum;
	// requiring it must constrain every returned package.
	req := Options{Limit: 100, Require: []int{2}}
	for name, run := range map[string]func() (*Result, error){
		"brute":  func() (*Result, error) { return BruteForce(inst, req) },
		"pruned": func() (*Result, error) { return PrunedEnumerate(inst, req) },
	} {
		res, err := run()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range res.Packages {
			if p.Mult[2] == 0 {
				t.Errorf("%s: package without required tuple: %v", name, p.Mult)
			}
		}
		// oracle: required package sets are a subset of unrestricted ones
		free, err := BruteForce(inst, Options{Limit: 100})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Packages) >= len(free.Packages) && len(free.Packages) > 0 {
			// equality is possible only if every package contains tuple 2
			all2 := true
			for _, p := range free.Packages {
				if p.Mult[2] == 0 {
					all2 = false
				}
			}
			if !all2 {
				t.Errorf("%s: require did not restrict the result set", name)
			}
		}
	}
	// local search honors pins too
	db := minidb.New()
	res, err := LocalSearch(inst, db, Options{Seed: 2, Restarts: 6, Require: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Packages {
		if p.Mult[2] == 0 {
			t.Errorf("local search dropped the pinned tuple: %v", p.Mult)
		}
	}
}

func TestCheckAtomsHelper(t *testing.T) {
	inst := instance(t, mealSrc, testRows())
	good := make([]int, len(inst.Rows))
	good[1], good[4], good[7] = 1, 1, 1 // 2000 cal, count 3
	if !inst.CheckAtoms(good) {
		t.Error("CheckAtoms rejects a valid package")
	}
	bad := make([]int, len(inst.Rows))
	bad[0] = 1
	if inst.CheckAtoms(bad) {
		t.Error("CheckAtoms accepts an invalid package")
	}
}

func TestStripSuffixClause(t *testing.T) {
	q := "SELECT x FROM t WHERE a ORDER BY b LIMIT 1"
	q = stripSuffixClause(q, " ORDER BY ")
	if strings.Contains(q, "ORDER") {
		t.Errorf("order not stripped: %s", q)
	}
	q2 := stripSuffixClause("SELECT 1 LIMIT 1", " LIMIT ")
	if strings.Contains(q2, "LIMIT") {
		t.Errorf("limit not stripped: %s", q2)
	}
	if got := stripSuffixClause("abc", " LIMIT "); got != "abc" {
		t.Errorf("no-op strip changed input: %s", got)
	}
}

package search

import (
	"fmt"
	"time"

	"repro/internal/lp"
	"repro/internal/paql"
)

// BruteForce enumerates every multiplicity vector and checks the full
// formula — the paper's impractical 2^n baseline (§4: "a brute-force
// approach that generates and evaluates all candidate packages is thus
// impractical"). It exists as the ground-truth oracle and as the E1/E2
// comparison baseline.
func BruteForce(inst *Instance, opt Options) (*Result, error) {
	if inst.MaxMult <= 0 {
		return nil, fmt.Errorf("search: brute force requires bounded multiplicity (REPEAT)")
	}
	start := time.Now()
	res := &Result{Complete: true}
	deadline := opt.deadline()
	limit := opt.limit()
	n := len(inst.Rows)
	required := opt.requireSet(n)
	mult := make([]int, n)
	sums := make([]float64, len(inst.Atoms))
	objSum := inst.ObjK

	var best float64
	haveBest := false
	hasObj := inst.Analysis.Query.Objective != nil

	var rec func(i int) error
	rec = func(i int) error {
		if opt.MaxExamined > 0 && res.Examined >= opt.MaxExamined {
			res.Complete = false
			return nil
		}
		if res.Examined%4096 == 0 && opt.stop(deadline) {
			res.Complete = false
			return nil
		}
		if i == n {
			res.Examined++
			ok := true
			for k, at := range inst.Atoms {
				if !at.CheckSum(sums[k]) {
					ok = false
					break
				}
			}
			if ok && !inst.Pure {
				valid, err := inst.Validate(mult)
				if err != nil {
					return err
				}
				ok = valid
			}
			if !ok {
				return nil
			}
			obj := 0.0
			if hasObj {
				var err error
				obj, err = inst.Objective(mult)
				if err != nil {
					return err
				}
			}
			p := Pkg{Mult: append([]int(nil), mult...), Obj: obj}
			if hasObj && (!haveBest || inst.Better(obj, best)) {
				best = obj
				haveBest = true
			}
			res.add(inst, p, limit)
			return nil
		}
		lowM := 0
		if required[i] {
			lowM = 1
		}
		for m := 0; m <= inst.MaxMult; m++ {
			if m > 0 {
				for k, at := range inst.Atoms {
					sums[k] += at.W[i]
				}
				objSum += objWeight(inst, i)
			}
			mult[i] = m
			if m >= lowM {
				if err := rec(i + 1); err != nil {
					return err
				}
			}
			if !res.Complete {
				break
			}
		}
		for m := mult[i]; m > 0; m-- {
			for k, at := range inst.Atoms {
				sums[k] -= at.W[i]
			}
			objSum -= objWeight(inst, i)
		}
		mult[i] = 0
		return nil
	}
	err := rec(0)
	res.Elapsed = time.Since(start)
	return res, err
}

func objWeight(inst *Instance, i int) float64 {
	if inst.ObjW == nil {
		return 0
	}
	return inst.ObjW[i]
}

// PrunedEnumerate is the §4.1 strategy: depth-first enumeration
// restricted to the derived cardinality bounds [l, u], with sound
// branch-and-bound pruning on every conjunctive linear atom (optimistic
// suffix completions) and, when searching for a single optimal package,
// on the objective. Completeness is preserved: no valid package is
// skipped.
func PrunedEnumerate(inst *Instance, opt Options) (*Result, error) {
	if inst.MaxMult <= 0 {
		return nil, fmt.Errorf("search: enumeration requires bounded multiplicity (REPEAT)")
	}
	start := time.Now()
	res := &Result{Complete: true}
	deadline := opt.deadline()
	limit := opt.limit()
	n := len(inst.Rows)
	required := opt.requireSet(n)

	bounds := inst.Bounds
	if opt.DisablePruning {
		bounds.Lo, bounds.Hi = 0, n*inst.MaxMult
	}
	if bounds.IsInfeasible() {
		res.Elapsed = time.Since(start)
		return res, nil // provably empty: zero packages, complete
	}

	// Suffix completion bounds per atom: the most the remaining tuples
	// can add (positive weights) or subtract (negative weights).
	nAtoms := len(inst.Atoms)
	sufMax := make([][]float64, nAtoms)
	sufMin := make([][]float64, nAtoms)
	if !opt.DisablePruning {
		for k, at := range inst.Atoms {
			sufMax[k] = make([]float64, n+1)
			sufMin[k] = make([]float64, n+1)
			for i := n - 1; i >= 0; i-- {
				w := at.W[i] * float64(inst.MaxMult)
				sufMax[k][i] = sufMax[k][i+1]
				sufMin[k][i] = sufMin[k][i+1]
				if w > 0 {
					sufMax[k][i] += w
				} else {
					sufMin[k][i] += w
				}
			}
		}
	}
	// Objective optimistic suffix (for maximize: positive weights).
	hasObj := inst.Analysis.Query.Objective != nil
	useObjBound := hasObj && inst.ObjW != nil && limit == 1 && !opt.NoObjBound && !opt.DisablePruning
	maximize := hasObj && inst.Analysis.Query.Objective.Sense == paql.Maximize
	var objSuf []float64
	if useObjBound {
		objSuf = make([]float64, n+1)
		for i := n - 1; i >= 0; i-- {
			w := inst.ObjW[i] * float64(inst.MaxMult)
			objSuf[i] = objSuf[i+1]
			if (maximize && w > 0) || (!maximize && w < 0) {
				objSuf[i] += w
			}
		}
	}

	mult := make([]int, n)
	sums := make([]float64, nAtoms)
	objSum := inst.ObjK
	count := 0
	var best float64
	haveBest := false
	const tol = 1e-9

	var rec func(i int) error
	rec = func(i int) error {
		if opt.MaxExamined > 0 && res.Examined >= opt.MaxExamined {
			res.Complete = false
			return nil
		}
		if res.Examined%4096 == 0 && opt.stop(deadline) {
			res.Complete = false
			return nil
		}
		res.Examined++
		// Cardinality pruning (§4.1).
		if count > bounds.Hi {
			return nil
		}
		if count+(n-i)*inst.MaxMult < bounds.Lo {
			return nil
		}
		// Atom suffix pruning.
		if !opt.DisablePruning {
			for k, at := range inst.Atoms {
				switch at.Op {
				case lp.LE:
					if sums[k]+sufMin[k][i] > at.RHS+tol {
						return nil
					}
				case lp.GE:
					if sums[k]+sufMax[k][i] < at.RHS-tol {
						return nil
					}
				}
			}
		}
		// Objective bound.
		if useObjBound && haveBest {
			optimistic := objSum + objSuf[i]
			if !inst.Better(optimistic, best) {
				return nil
			}
		}
		if i == n {
			if count < bounds.Lo || count > bounds.Hi {
				return nil
			}
			ok := true
			for k, at := range inst.Atoms {
				if !at.CheckSum(sums[k]) {
					ok = false
					break
				}
			}
			if ok && !inst.Pure {
				valid, err := inst.Validate(mult)
				if err != nil {
					return err
				}
				ok = valid
			}
			if !ok {
				return nil
			}
			obj := 0.0
			if hasObj {
				var err error
				obj, err = inst.Objective(mult)
				if err != nil {
					return err
				}
			}
			if hasObj && (!haveBest || inst.Better(obj, best)) {
				best = obj
				haveBest = true
			}
			res.add(inst, Pkg{Mult: append([]int(nil), mult...), Obj: obj}, limit)
			return nil
		}
		lowM := 0
		if required[i] {
			lowM = 1
		}
		for m := 0; m <= inst.MaxMult; m++ {
			if m > 0 {
				for k, at := range inst.Atoms {
					sums[k] += at.W[i]
				}
				objSum += objWeight(inst, i)
				count++
			}
			mult[i] = m
			if m >= lowM {
				if err := rec(i + 1); err != nil {
					return err
				}
			}
			if !res.Complete {
				break
			}
		}
		for m := mult[i]; m > 0; m-- {
			for k, at := range inst.Atoms {
				sums[k] -= at.W[i]
			}
			objSum -= objWeight(inst, i)
			count--
		}
		mult[i] = 0
		return nil
	}
	err := rec(0)
	res.Elapsed = time.Since(start)
	return res, err
}

package search

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/minidb"
	"repro/internal/paql"
	"repro/internal/schema"
	"repro/internal/value"
)

func relSchema() schema.Schema {
	return schema.New(
		schema.Column{Name: "id", Type: schema.TInt},
		schema.Column{Name: "calories", Type: schema.TFloat},
		schema.Column{Name: "protein", Type: schema.TFloat},
		schema.Column{Name: "kind", Type: schema.TString},
	)
}

func mkRow(id int, cal, prot float64, kind string) schema.Row {
	return schema.Row{value.Int(int64(id)), value.Float(cal), value.Float(prot), value.Str(kind)}
}

func testRows() []schema.Row {
	return []schema.Row{
		mkRow(0, 300, 10, "meal"),
		mkRow(1, 550, 18, "meal"),
		mkRow(2, 150, 4, "snack"),
		mkRow(3, 420, 38, "meal"),
		mkRow(4, 800, 30, "meal"),
		mkRow(5, 380, 22, "snack"),
		mkRow(6, 200, 6, "snack"),
		mkRow(7, 650, 45, "meal"),
	}
}

func instance(t *testing.T, src string, rows []schema.Row) *Instance {
	t.Helper()
	q, err := paql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := paql.Analyze(q, relSchema())
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, len(rows))
	for i := range ids {
		ids[i] = i
	}
	inst, err := NewInstance(a, rows, ids)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

const mealSrc = `
	SELECT PACKAGE(R) AS P FROM Recipes R
	SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500
	MAXIMIZE SUM(P.protein)`

func TestNewInstanceDerivations(t *testing.T) {
	inst := instance(t, mealSrc, testRows())
	// COUNT(*)=3 yields EQ -> two atoms; BETWEEN yields GE+LE.
	if len(inst.Atoms) != 4 {
		t.Errorf("atoms = %d, want 4", len(inst.Atoms))
	}
	if !inst.Pure {
		t.Error("meal formula should be purely conjunctive-linear")
	}
	if inst.Bounds.Lo != 3 || inst.Bounds.Hi != 3 {
		t.Errorf("bounds = %v, want [3,3]", inst.Bounds)
	}
	if inst.ObjW == nil || inst.ObjW[3] != 38 {
		t.Errorf("objective weights = %v", inst.ObjW)
	}
	if inst.MaxMult != 1 {
		t.Errorf("maxMult = %d", inst.MaxMult)
	}
}

func TestBruteForceFindsOptimum(t *testing.T) {
	inst := instance(t, mealSrc, testRows())
	res, err := BruteForce(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || len(res.Packages) != 1 {
		t.Fatalf("res = %+v", res)
	}
	// Optimum: need sum in [2000,2500] with 3 tuples, max protein:
	// {550,800,650} = 2000 cal, protein 18+30+45 = 93.
	if math.Abs(res.Packages[0].Obj-93) > 1e-9 {
		t.Errorf("best obj = %g, want 93", res.Packages[0].Obj)
	}
	if res.Examined == 0 {
		t.Error("examined count missing")
	}
	// multiplicity vector correct
	p := res.Packages[0]
	if p.Size() != 3 || p.Mult[1] != 1 || p.Mult[4] != 1 || p.Mult[7] != 1 {
		t.Errorf("best package = %v", p.Mult)
	}
}

func TestPrunedMatchesBruteExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	queries := []string{
		`SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 900 AND 1500 MAXIMIZE SUM(P.protein)`,
		`SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT SUM(P.calories) <= 800 MINIMIZE COUNT(*)`,
		`SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT COUNT(*) BETWEEN 2 AND 4 AND SUM(P.protein) >= 80 MAXIMIZE SUM(P.protein)`,
		`SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 1 SUCH THAT COUNT(*) = 3 AND SUM(P.calories) <= 1200 MAXIMIZE SUM(P.protein)`,
		`SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT COUNT(*) = 2 AND (SUM(P.calories) <= 500 OR SUM(P.calories) >= 1200) MAXIMIZE SUM(P.protein)`,
		`SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT COUNT(*) = 2 AND MIN(P.calories) >= 300 MAXIMIZE SUM(P.protein)`,
	}
	for trial := 0; trial < 24; trial++ {
		n := 5 + rng.Intn(5)
		rows := make([]schema.Row, n)
		for i := range rows {
			rows[i] = mkRow(i, float64(100+rng.Intn(9)*100), float64(rng.Intn(50)),
				[]string{"meal", "snack"}[rng.Intn(2)])
		}
		src := queries[trial%len(queries)]
		inst := instance(t, src, rows)
		brute, err := BruteForce(inst, Options{Limit: 1000000})
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := PrunedEnumerate(inst, Options{Limit: 1000000})
		if err != nil {
			t.Fatal(err)
		}
		if !brute.Complete || !pruned.Complete {
			t.Fatalf("trial %d: incomplete searches", trial)
		}
		// identical package sets
		bKeys := map[string]bool{}
		for _, p := range brute.Packages {
			bKeys[p.Key()] = true
		}
		pKeys := map[string]bool{}
		for _, p := range pruned.Packages {
			pKeys[p.Key()] = true
		}
		if len(bKeys) != len(pKeys) {
			t.Fatalf("trial %d (%s): brute %d packages, pruned %d",
				trial, src, len(bKeys), len(pKeys))
		}
		for k := range bKeys {
			if !pKeys[k] {
				t.Fatalf("trial %d: pruning lost package %s", trial, k)
			}
		}
		// pruning must not explore more nodes than brute force leaves
		if pruned.Examined > brute.Examined*2 {
			t.Errorf("trial %d: pruned examined %d > 2x brute %d",
				trial, pruned.Examined, brute.Examined)
		}
	}
}

func TestPrunedObjectiveBoundKeepsOptimum(t *testing.T) {
	inst := instance(t, mealSrc, testRows())
	withBound, err := PrunedEnumerate(inst, Options{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	noBound, err := PrunedEnumerate(inst, Options{Limit: 1, NoObjBound: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(withBound.Packages) != 1 || len(noBound.Packages) != 1 {
		t.Fatal("expected one package each")
	}
	if math.Abs(withBound.Packages[0].Obj-noBound.Packages[0].Obj) > 1e-9 {
		t.Errorf("objective bound changed the optimum: %g vs %g",
			withBound.Packages[0].Obj, noBound.Packages[0].Obj)
	}
	if withBound.Examined > noBound.Examined {
		t.Errorf("objective bound did not reduce nodes: %d vs %d",
			withBound.Examined, noBound.Examined)
	}
}

func TestPruningReducesExaminedNodes(t *testing.T) {
	inst := instance(t, mealSrc, testRows())
	pruned, err := PrunedEnumerate(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	unpruned, err := PrunedEnumerate(inst, Options{DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Examined >= unpruned.Examined {
		t.Errorf("pruning should reduce nodes: %d vs %d", pruned.Examined, unpruned.Examined)
	}
	if len(pruned.Packages) != 1 || len(unpruned.Packages) != 1 {
		t.Fatal("both searches should find the optimum")
	}
	if math.Abs(pruned.Packages[0].Obj-unpruned.Packages[0].Obj) > 1e-9 {
		t.Error("ablation changed the optimum")
	}
}

func TestInfeasibleBoundsShortCircuit(t *testing.T) {
	inst := instance(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT COUNT(*) = 2 AND COUNT(*) = 5`, testRows())
	if !inst.Bounds.IsInfeasible() {
		t.Fatalf("bounds = %v", inst.Bounds)
	}
	res, err := PrunedEnumerate(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || len(res.Packages) != 0 || res.Examined != 0 {
		t.Errorf("infeasible bounds should end immediately: %+v", res)
	}
}

func TestGreedyProducesStart(t *testing.T) {
	inst := instance(t, mealSrc, testRows())
	p := Greedy(inst, nil)
	if p.Size() != 3 {
		t.Errorf("greedy size = %d, want 3 (cardinality bound)", p.Size())
	}
	// deterministic without rng
	p2 := Greedy(inst, nil)
	if p.Key() != p2.Key() {
		t.Error("greedy should be deterministic without rng")
	}
	// random start respects bounds
	r := RandomStart(inst, rand.New(rand.NewSource(1)))
	if r.Size() != 3 {
		t.Errorf("random start size = %d", r.Size())
	}
}

func TestLocalSearchFindsValidPackages(t *testing.T) {
	inst := instance(t, mealSrc, testRows())
	db := minidb.New()
	res, err := LocalSearch(inst, db, Options{Seed: 3, Restarts: 6, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) == 0 {
		t.Fatal("local search found nothing on an easy instance")
	}
	for _, p := range res.Packages {
		ok, err := inst.Validate(p.Mult)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("local search returned invalid package %v", p.Mult)
		}
	}
	if res.Queries == 0 {
		t.Error("local search should have issued SQL replacement queries")
	}
	// heuristic result never beats the exact optimum
	exact, err := PrunedEnumerate(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Better(res.Packages[0].Obj, exact.Packages[0].Obj) {
		t.Errorf("heuristic %g beats exact %g", res.Packages[0].Obj, exact.Packages[0].Obj)
	}
	// scratch tables cleaned up
	for _, name := range db.TableNames() {
		t.Errorf("leftover scratch table %q", name)
	}
}

func TestLocalSearchHeuristicQuality(t *testing.T) {
	// Across random instances, local search with restarts should find a
	// valid package whenever one exists reasonably often, and never
	// return an invalid one. We assert validity always, and track the
	// hit rate loosely.
	rng := rand.New(rand.NewSource(23))
	db := minidb.New()
	hits, feasibleTrials := 0, 0
	for trial := 0; trial < 12; trial++ {
		n := 8 + rng.Intn(6)
		rows := make([]schema.Row, n)
		for i := range rows {
			rows[i] = mkRow(i, float64(100+rng.Intn(9)*100), float64(rng.Intn(50)),
				[]string{"meal", "snack"}[rng.Intn(2)])
		}
		inst := instance(t, mealSrc, rows)
		exact, err := PrunedEnumerate(inst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(exact.Packages) == 0 {
			continue
		}
		feasibleTrials++
		res, err := LocalSearch(inst, db, Options{Seed: int64(trial), Restarts: 8})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Packages) > 0 {
			hits++
			if inst.Better(res.Packages[0].Obj, exact.Packages[0].Obj) {
				t.Fatalf("trial %d: heuristic beats exact", trial)
			}
		}
	}
	if feasibleTrials > 0 && hits == 0 {
		t.Errorf("local search found nothing in %d feasible trials", feasibleTrials)
	}
}

func TestLocalSearchRepeatQueries(t *testing.T) {
	inst := instance(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 2
		SUCH THAT COUNT(*) = 4 AND SUM(P.calories) BETWEEN 1500 AND 2200
		MAXIMIZE SUM(P.protein)`, testRows()[:5])
	db := minidb.New()
	res, err := LocalSearch(inst, db, Options{Seed: 9, Restarts: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Packages {
		ok, _ := inst.Validate(p.Mult)
		if !ok {
			t.Errorf("invalid package %v", p.Mult)
		}
		for _, m := range p.Mult {
			if m > 3 {
				t.Errorf("multiplicity %d exceeds REPEAT 2 + 1", m)
			}
		}
	}
}

func TestLimitCollectsDistinctPackages(t *testing.T) {
	inst := instance(t, `
		SELECT PACKAGE(R) AS P FROM Recipes R
		SUCH THAT COUNT(*) = 2 AND SUM(P.calories) <= 1000
		MAXIMIZE SUM(P.protein) LIMIT 5`, testRows())
	res, err := PrunedEnumerate(inst, Options{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) != 5 {
		t.Fatalf("packages = %d, want 5", len(res.Packages))
	}
	seen := map[string]bool{}
	prev := math.Inf(1)
	for _, p := range res.Packages {
		if seen[p.Key()] {
			t.Error("duplicate package in results")
		}
		seen[p.Key()] = true
		if p.Obj > prev+1e-9 {
			t.Error("packages not sorted best-first")
		}
		prev = p.Obj
	}
}

func TestBudgetLimits(t *testing.T) {
	rows := make([]schema.Row, 24)
	for i := range rows {
		rows[i] = mkRow(i, float64(100+(i%9)*100), float64(i%50), "meal")
	}
	inst := instance(t, mealSrc, rows)
	res, err := BruteForce(inst, Options{MaxExamined: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Error("budget-capped brute force should be incomplete")
	}
	if res.Examined > 1100 {
		t.Errorf("examined %d exceeded budget", res.Examined)
	}
}

func TestUnboundedMultiplicityErrors(t *testing.T) {
	// REPEAT-less queries default to multiplicity 1 in PaQL, so force
	// the unlimited case through the instance.
	inst := instance(t, mealSrc, testRows())
	inst.MaxMult = 0
	if _, err := BruteForce(inst, Options{}); err == nil {
		t.Error("brute force should require bounded multiplicity")
	}
	if _, err := PrunedEnumerate(inst, Options{}); err == nil {
		t.Error("pruned enumeration should require bounded multiplicity")
	}
	if _, err := LocalSearch(inst, minidb.New(), Options{}); err == nil {
		t.Error("local search should require bounded multiplicity")
	}
}

package search

import (
	"math/rand"
	"sort"

	"repro/internal/lp"
)

// Greedy constructs a starting package: candidates are ranked by
// objective contribution (best first for MAXIMIZE), added while no
// upper-bounding atom breaks, then lower-bounding atoms are repaired by
// targeted additions. The result is a heuristic start — it may be
// infeasible; local search repairs it. A non-nil rng shuffles ties so
// restarts diversify.
func Greedy(inst *Instance, rng *rand.Rand) Pkg {
	n := len(inst.Rows)
	mult := make([]int, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if rng != nil {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	if inst.ObjW != nil && inst.Analysis.Query.Objective != nil {
		maximize := inst.Better(1, 0)
		sort.SliceStable(order, func(a, b int) bool {
			if maximize {
				return inst.ObjW[order[a]] > inst.ObjW[order[b]]
			}
			return inst.ObjW[order[a]] < inst.ObjW[order[b]]
		})
	}
	sums := make([]float64, len(inst.Atoms))
	count := 0
	targetLo := inst.Bounds.Lo
	targetHi := inst.Bounds.Hi
	if targetHi > n*inst.MaxMult {
		targetHi = n * inst.MaxMult
	}

	fits := func(i int) bool {
		if count+1 > targetHi {
			return false
		}
		for k, at := range inst.Atoms {
			if at.Op == lp.LE && sums[k]+at.W[i] > at.RHS+1e-9 {
				return false
			}
		}
		return true
	}
	take := func(i int) {
		mult[i]++
		count++
		for k, at := range inst.Atoms {
			sums[k] += at.W[i]
		}
	}

	// Phase 1: fill toward the lower cardinality bound greedily.
	for _, i := range order {
		for mult[i] < inst.MaxMult && count < targetLo && fits(i) {
			take(i)
		}
	}
	// Phase 2: repair violated GE atoms by adding the tuple with the
	// largest positive contribution that still fits.
	for pass := 0; pass < n*maxMultOr1(inst); pass++ {
		worstK := -1
		worstGap := 1e-9
		for k, at := range inst.Atoms {
			if at.Op == lp.GE && at.RHS-sums[k] > worstGap {
				worstGap = at.RHS - sums[k]
				worstK = k
			}
		}
		if worstK == -1 {
			break
		}
		at := inst.Atoms[worstK]
		bestI := -1
		bestW := 0.0
		for _, i := range order {
			if mult[i] >= inst.MaxMult || !fits(i) {
				continue
			}
			if at.W[i] > bestW {
				bestW = at.W[i]
				bestI = i
			}
		}
		if bestI == -1 {
			break // stuck: no tuple helps
		}
		take(bestI)
	}
	obj, err := inst.Objective(mult)
	if err != nil {
		obj = 0
	}
	return Pkg{Mult: mult, Obj: obj}
}

// RandomStart draws a uniform package of a size within the cardinality
// bounds (used by local-search restarts).
func RandomStart(inst *Instance, rng *rand.Rand) Pkg {
	n := len(inst.Rows)
	mult := make([]int, n)
	lo := inst.Bounds.Lo
	hi := inst.Bounds.Hi
	maxTotal := n * inst.MaxMult
	if hi > maxTotal {
		hi = maxTotal
	}
	if lo > hi {
		lo = hi
	}
	size := lo
	if hi > lo {
		size = lo + rng.Intn(hi-lo+1)
	}
	placed := 0
	for attempts := 0; placed < size && attempts < 50*size+100; attempts++ {
		i := rng.Intn(n)
		if mult[i] < inst.MaxMult {
			mult[i]++
			placed++
		}
	}
	obj, err := inst.Objective(mult)
	if err != nil {
		obj = 0
	}
	return Pkg{Mult: mult, Obj: obj}
}

func maxMultOr1(inst *Instance) int {
	if inst.MaxMult > 0 {
		return inst.MaxMult
	}
	return 1
}

package search

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/minidb"
)

// ReplacementProbe measures one §4.2 k-replacement neighbourhood query
// without applying any move: it materializes the package and candidate
// scratch tables, runs the 2k-way join that enumerates every valid
// k-swap, and reports the generated SQL, the neighbourhood size, and
// the join's wall time. The E3 experiment uses this to reproduce the
// paper's claim that "for k replacements this method would require a
// 2k-way join, which quickly becomes intractable".
func ReplacementProbe(inst *Instance, db *minidb.DB, mult []int, k int) (sql string, neighbourhood int, elapsed time.Duration, err error) {
	if k < 1 || k > 3 {
		return "", 0, 0, fmt.Errorf("search: probe supports k in 1..3, got %d", k)
	}
	ls := &localState{inst: inst, db: db, res: &Result{},
		candTable: fmt.Sprintf("pb_probe_%d", tableSeq.Add(1)),
	}
	if err := ls.createCandidateTable(); err != nil {
		return "", 0, 0, err
	}
	defer func() { _ = db.DropTable(ls.candTable) }()
	if _, err := ls.syncPackageTable(mult); err != nil {
		return "", 0, 0, err
	}
	defer func() { _ = db.DropTable(ls.pkgTable()) }()

	sums := ls.atomSums(mult)
	var maxed []int
	for i, m := range mult {
		if inst.MaxMult > 0 && m >= inst.MaxMult {
			maxed = append(maxed, i)
		}
	}
	q := ls.swapQuery(k, sums, maxed, false, true)
	// Count the whole neighbourhood: strip LIMIT and ORDER BY so the
	// measurement covers the full join, not an early-out.
	q = stripSuffixClause(q, " ORDER BY ")
	q = stripSuffixClause(q, " LIMIT ")
	start := time.Now()
	res, err := db.Query(q)
	elapsed = time.Since(start)
	if err != nil {
		return q, 0, elapsed, fmt.Errorf("search: probe query: %w\n%s", err, q)
	}
	return q, len(res.Rows), elapsed, nil
}

func stripSuffixClause(q, marker string) string {
	if i := strings.LastIndex(q, marker); i >= 0 {
		return q[:i]
	}
	return q
}

// Package dataset generates the synthetic workloads PackageBuilder's
// examples and experiments run on. The paper demonstrates on "a rich
// recipe data set scrapped from online recipe and nutrition websites";
// that data is not redistributable, so these generators produce
// deterministic (seeded) tables with realistic marginal distributions:
// log-normal calorie counts, protein/fat correlated with calories,
// categorical attributes with skew. The §1 vacation-planner and
// investment-portfolio scenarios get matching generators.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/minidb"
	"repro/internal/schema"
	"repro/internal/value"
)

// RecipesConfig sizes the recipe generator.
type RecipesConfig struct {
	N    int
	Seed int64
}

var (
	recipeAdjectives = []string{
		"Roasted", "Spicy", "Creamy", "Grilled", "Baked", "Fresh",
		"Smoky", "Zesty", "Hearty", "Light", "Rustic", "Golden",
	}
	recipeDishes = []string{
		"Chicken Bowl", "Lentil Soup", "Pasta", "Quinoa Salad", "Tofu Stir-fry",
		"Beef Stew", "Veggie Wrap", "Salmon Plate", "Omelette", "Rice Pilaf",
		"Burrito", "Curry", "Chili", "Flatbread", "Noodle Soup", "Grain Bowl",
	}
	cuisines  = []string{"italian", "mexican", "indian", "american", "thai", "french", "japanese"}
	mealTypes = []string{"breakfast", "lunch", "dinner", "snack"}
)

// RecipesSchema is the schema of the generated recipe relation.
func RecipesSchema() schema.Schema {
	return schema.New(
		schema.Column{Name: "id", Type: schema.TInt},
		schema.Column{Name: "name", Type: schema.TString},
		schema.Column{Name: "cuisine", Type: schema.TString},
		schema.Column{Name: "mealtype", Type: schema.TString},
		schema.Column{Name: "gluten", Type: schema.TString}, // 'free' | 'full'
		schema.Column{Name: "calories", Type: schema.TFloat},
		schema.Column{Name: "protein", Type: schema.TFloat},
		schema.Column{Name: "fat", Type: schema.TFloat},
		schema.Column{Name: "carbs", Type: schema.TFloat},
		schema.Column{Name: "price", Type: schema.TFloat},
		schema.Column{Name: "rating", Type: schema.TFloat},
	)
}

// Recipes generates n recipe rows, deterministic per seed.
func Recipes(cfg RecipesConfig) []schema.Row {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rows := make([]schema.Row, cfg.N)
	for i := 0; i < cfg.N; i++ {
		// Calories: log-normal around ~420 kcal, clamped to menu reality.
		cal := math.Exp(rng.NormFloat64()*0.45 + 6.05)
		cal = clamp(cal, 80, 1400)
		cal = math.Round(cal)
		// Protein correlates with calories (≈8-20% of kcal from protein).
		protein := math.Round(clamp(cal*(0.02+0.03*rng.Float64())+rng.NormFloat64()*3, 1, 120))
		fat := math.Round(clamp(cal*(0.015+0.03*rng.Float64())+rng.NormFloat64()*4, 0, 110))
		carbs := math.Round(clamp(cal*0.10-fat*0.4+rng.NormFloat64()*10+20, 0, 200))
		price := math.Round((2+rng.Float64()*18)*100) / 100
		rating := math.Round((1+rng.Float64()*4)*10) / 10
		gluten := "free"
		if rng.Float64() < 0.35 {
			gluten = "full"
		}
		name := fmt.Sprintf("%s %s #%d",
			recipeAdjectives[rng.Intn(len(recipeAdjectives))],
			recipeDishes[rng.Intn(len(recipeDishes))], i+1)
		rows[i] = schema.Row{
			value.Int(int64(i + 1)),
			value.Str(name),
			value.Str(cuisines[rng.Intn(len(cuisines))]),
			value.Str(mealTypes[rng.Intn(len(mealTypes))]),
			value.Str(gluten),
			value.Float(cal),
			value.Float(protein),
			value.Float(fat),
			value.Float(carbs),
			value.Float(price),
			value.Float(rating),
		}
	}
	return rows
}

// LoadRecipes creates and fills a recipe table.
func LoadRecipes(db *minidb.DB, table string, cfg RecipesConfig) error {
	if _, err := db.CreateTable(table, RecipesSchema()); err != nil {
		return err
	}
	return db.InsertRows(table, Recipes(cfg))
}

// VacationConfig sizes the travel-item generator (§1 vacation planner).
type VacationConfig struct {
	Flights int
	Hotels  int
	Cars    int
	Seed    int64
}

var destinations = []string{"Cancun", "Maui", "Phuket", "Bali", "Fiji", "Aruba", "Ibiza"}

// VacationSchema is the schema of the generated travel-item relation.
// kind ∈ {flight, hotel, car}; dist is the hotel's distance to the
// beach in km (NULL for other kinds); price is total for the stay.
func VacationSchema() schema.Schema {
	return schema.New(
		schema.Column{Name: "id", Type: schema.TInt},
		schema.Column{Name: "kind", Type: schema.TString},
		schema.Column{Name: "name", Type: schema.TString},
		schema.Column{Name: "destination", Type: schema.TString},
		schema.Column{Name: "price", Type: schema.TFloat},
		schema.Column{Name: "dist", Type: schema.TFloat},
		schema.Column{Name: "comfort", Type: schema.TFloat}, // 1..5
	)
}

// Vacation generates flights, hotels and rental cars.
func Vacation(cfg VacationConfig) []schema.Row {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var rows []schema.Row
	id := 0
	add := func(kind, name, dest string, price, dist, comfort float64) {
		id++
		dv := value.Null()
		if dist >= 0 {
			dv = value.Float(math.Round(dist*100) / 100)
		}
		rows = append(rows, schema.Row{
			value.Int(int64(id)), value.Str(kind), value.Str(name), value.Str(dest),
			value.Float(math.Round(price)), dv, value.Float(math.Round(comfort*10) / 10),
		})
	}
	for i := 0; i < cfg.Flights; i++ {
		dest := destinations[rng.Intn(len(destinations))]
		price := 250 + rng.Float64()*900
		comfort := 1 + rng.Float64()*4
		add("flight", fmt.Sprintf("Flight %c%d to %s", 'A'+rng.Intn(6), 100+rng.Intn(900), dest),
			dest, price, -1, comfort)
	}
	for i := 0; i < cfg.Hotels; i++ {
		dest := destinations[rng.Intn(len(destinations))]
		dist := math.Abs(rng.NormFloat64()) * 2.2
		// Closer hotels are pricier.
		price := (400 + rng.Float64()*900) * (1.6 - clamp(dist, 0, 5)/5)
		comfort := 2 + rng.Float64()*3
		add("hotel", fmt.Sprintf("Hotel %s %d", dest, i+1), dest, price, dist, comfort)
	}
	for i := 0; i < cfg.Cars; i++ {
		dest := destinations[rng.Intn(len(destinations))]
		price := 120 + rng.Float64()*380
		add("car", fmt.Sprintf("Rental car %d (%s)", i+1, dest), dest, price, -1, 2+rng.Float64()*2)
	}
	return rows
}

// LoadVacation creates and fills a travel-item table.
func LoadVacation(db *minidb.DB, table string, cfg VacationConfig) error {
	if _, err := db.CreateTable(table, VacationSchema()); err != nil {
		return err
	}
	return db.InsertRows(table, Vacation(cfg))
}

// StocksConfig sizes the stock generator (§1 investment portfolio).
type StocksConfig struct {
	N    int
	Seed int64
}

var sectors = []string{"technology", "health", "energy", "finance", "consumer", "industrial"}

// StocksSchema is the schema of the generated stock relation. price is
// per lot; expret the expected annual return (fraction); risk a 0..1
// volatility score; horizon ∈ {short, long}.
func StocksSchema() schema.Schema {
	return schema.New(
		schema.Column{Name: "id", Type: schema.TInt},
		schema.Column{Name: "ticker", Type: schema.TString},
		schema.Column{Name: "sector", Type: schema.TString},
		schema.Column{Name: "price", Type: schema.TFloat},
		schema.Column{Name: "expret", Type: schema.TFloat},
		schema.Column{Name: "risk", Type: schema.TFloat},
		schema.Column{Name: "horizon", Type: schema.TString},
	)
}

// Stocks generates n stock lots.
func Stocks(cfg StocksConfig) []schema.Row {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rows := make([]schema.Row, cfg.N)
	for i := 0; i < cfg.N; i++ {
		sector := sectors[rng.Intn(len(sectors))]
		// Lot price: log-normal around $3k.
		price := math.Round(math.Exp(rng.NormFloat64()*0.6 + 8.0))
		// Higher risk ↦ higher expected return, tech skews risky.
		risk := clamp(rng.Float64()*0.8+boolTo(sector == "technology", 0.15, 0), 0.02, 1)
		expret := math.Round((0.01+risk*0.18+rng.NormFloat64()*0.02)*1000) / 1000
		horizon := "long"
		if rng.Float64() < 0.45 {
			horizon = "short"
		}
		ticker := fmt.Sprintf("%c%c%c%c",
			'A'+rng.Intn(26), 'A'+rng.Intn(26), 'A'+rng.Intn(26), 'A'+rng.Intn(26))
		rows[i] = schema.Row{
			value.Int(int64(i + 1)), value.Str(ticker), value.Str(sector),
			value.Float(price), value.Float(expret),
			value.Float(math.Round(risk*1000) / 1000), value.Str(horizon),
		}
	}
	return rows
}

// LoadStocks creates and fills a stock table.
func LoadStocks(db *minidb.DB, table string, cfg StocksConfig) error {
	if _, err := db.CreateTable(table, StocksSchema()); err != nil {
		return err
	}
	return db.InsertRows(table, Stocks(cfg))
}

// WriteCSV renders rows as CSV with a typed header, matching the
// minidb CSV loader's "name:type" convention.
func WriteCSV(sc schema.Schema, rows []schema.Row) string {
	out := ""
	for i, c := range sc.Cols {
		if i > 0 {
			out += ","
		}
		out += c.Name + ":" + typeName(c.Type)
	}
	out += "\n"
	for _, r := range rows {
		for i, v := range r {
			if i > 0 {
				out += ","
			}
			if v.IsNull() {
				continue
			}
			s := v.String()
			if v.Kind() == value.KindString {
				s = csvEscape(s)
			}
			out += s
		}
		out += "\n"
	}
	return out
}

func csvEscape(s string) string {
	needs := false
	for _, r := range s {
		if r == ',' || r == '"' || r == '\n' {
			needs = true
			break
		}
	}
	if !needs {
		return s
	}
	out := `"`
	for _, r := range s {
		if r == '"' {
			out += `""`
		} else {
			out += string(r)
		}
	}
	return out + `"`
}

func typeName(t schema.Type) string {
	switch t {
	case schema.TInt:
		return "int"
	case schema.TFloat:
		return "float"
	case schema.TBool:
		return "bool"
	}
	return "text"
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func boolTo(b bool, t, f float64) float64 {
	if b {
		return t
	}
	return f
}

package dataset

import (
	"strings"
	"testing"

	"repro/internal/minidb"
	"repro/internal/value"
)

func TestRecipesDeterministicAndPlausible(t *testing.T) {
	a := Recipes(RecipesConfig{N: 200, Seed: 7})
	b := Recipes(RecipesConfig{N: 200, Seed: 7})
	c := Recipes(RecipesConfig{N: 200, Seed: 8})
	if len(a) != 200 {
		t.Fatalf("n = %d", len(a))
	}
	same, diff := true, false
	for i := range a {
		if a[i].String() != b[i].String() {
			same = false
		}
		if a[i].String() != c[i].String() {
			diff = true
		}
	}
	if !same {
		t.Error("same seed must reproduce identical rows")
	}
	if !diff {
		t.Error("different seeds should differ")
	}
	freeCount := 0
	for _, r := range a {
		cal, _ := r[5].AsFloat()
		if cal < 80 || cal > 1400 {
			t.Errorf("calories out of range: %v", cal)
		}
		prot, _ := r[6].AsFloat()
		if prot < 1 || prot > 120 {
			t.Errorf("protein out of range: %v", prot)
		}
		price, _ := r[9].AsFloat()
		if price < 2 || price > 20 {
			t.Errorf("price out of range: %v", price)
		}
		if r[4].StrVal() == "free" {
			freeCount++
		}
	}
	if freeCount < 100 || freeCount == 200 {
		t.Errorf("gluten-free share implausible: %d/200", freeCount)
	}
}

func TestLoadRecipesQueryable(t *testing.T) {
	db := minidb.New()
	if err := LoadRecipes(db, "recipes", RecipesConfig{N: 150, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT COUNT(*), AVG(calories) FROM recipes WHERE gluten = 'free'`)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := res.Rows[0][0].AsInt()
	if n == 0 || n == 150 {
		t.Errorf("free count = %d", n)
	}
	avg, _ := res.Rows[0][1].AsFloat()
	if avg < 150 || avg > 900 {
		t.Errorf("avg calories = %g", avg)
	}
}

func TestVacationShape(t *testing.T) {
	rows := Vacation(VacationConfig{Flights: 10, Hotels: 15, Cars: 5, Seed: 3})
	if len(rows) != 30 {
		t.Fatalf("rows = %d", len(rows))
	}
	kinds := map[string]int{}
	for _, r := range rows {
		kind := r[1].StrVal()
		kinds[kind]++
		switch kind {
		case "hotel":
			if r[5].IsNull() {
				t.Error("hotel must have a distance")
			}
		case "flight", "car":
			if !r[5].IsNull() {
				t.Errorf("%s must have NULL distance", kind)
			}
		default:
			t.Errorf("unknown kind %q", kind)
		}
		price, _ := r[4].AsFloat()
		if price <= 0 {
			t.Errorf("price = %g", price)
		}
	}
	if kinds["flight"] != 10 || kinds["hotel"] != 15 || kinds["car"] != 5 {
		t.Errorf("kind counts = %v", kinds)
	}
}

func TestVacationQueryableWithEngineShapes(t *testing.T) {
	db := minidb.New()
	if err := LoadVacation(db, "items", VacationConfig{Flights: 8, Hotels: 12, Cars: 4, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT MIN(price), MAX(price) FROM items WHERE kind = 'hotel'`)
	if err != nil {
		t.Fatal(err)
	}
	mn, _ := res.Rows[0][0].AsFloat()
	mx, _ := res.Rows[0][1].AsFloat()
	if mn <= 0 || mx <= mn {
		t.Errorf("hotel price range [%g, %g]", mn, mx)
	}
}

func TestStocksShape(t *testing.T) {
	rows := Stocks(StocksConfig{N: 300, Seed: 11})
	long := 0
	for _, r := range rows {
		risk, _ := r[5].AsFloat()
		if risk < 0 || risk > 1 {
			t.Errorf("risk = %g", risk)
		}
		ret, _ := r[4].AsFloat()
		if ret < -0.2 || ret > 0.5 {
			t.Errorf("expret = %g", ret)
		}
		if r[6].StrVal() == "long" {
			long++
		}
		if len(r[1].StrVal()) != 4 {
			t.Errorf("ticker = %q", r[1].StrVal())
		}
	}
	if long < 100 || long > 250 {
		t.Errorf("long-horizon share = %d/300", long)
	}
}

func TestWriteCSVRoundTripsThroughLoader(t *testing.T) {
	rows := Recipes(RecipesConfig{N: 25, Seed: 2})
	csvText := WriteCSV(RecipesSchema(), rows)
	if !strings.HasPrefix(csvText, "id:int,name:text") {
		t.Errorf("header = %q", strings.SplitN(csvText, "\n", 2)[0])
	}
	db := minidb.New()
	n, err := db.LoadCSV("r2", strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Errorf("loaded %d rows", n)
	}
	res, err := db.Query(`SELECT SUM(calories) FROM r2`)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.Rows[0][0].AsFloat()
	want := 0.0
	for _, r := range rows {
		c, _ := r[5].AsFloat()
		want += c
	}
	if got != want {
		t.Errorf("csv round trip: sum %g != %g", got, want)
	}
	// quoted names survive
	vac := Vacation(VacationConfig{Flights: 2, Hotels: 2, Cars: 1, Seed: 1})
	vcsv := WriteCSV(VacationSchema(), vac)
	db2 := minidb.New()
	if _, err := db2.LoadCSV("v", strings.NewReader(vcsv)); err != nil {
		t.Fatal(err)
	}
	res, err = db2.Query(`SELECT COUNT(*) FROM v WHERE dist IS NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].Equal(value.Int(3)) {
		t.Errorf("null dist count = %v", res.Rows[0][0])
	}
}

// Package viz implements the paper's §3.2 presentation abstraction:
// "the system analyzes the current query specification and selects two
// dimensions to visually layout the valid packages along". A Summary
// places each package in a 2-D space of aggregate values; RenderASCII
// draws the glyph scatter the demo's visual summary shows (packages as
// 'o', the current one as '@'), and the struct marshals to JSON for the
// web UI.
package viz

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/paql"
	"repro/internal/schema"
	"repro/internal/value"
)

// Point is one package's position in the 2-D summary.
type Point struct {
	Index   int     `json:"index"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	Obj     float64 `json:"objective"`
	Size    int     `json:"size"`
	Current bool    `json:"current"`
}

// Summary is the 2-D layout of a package set.
type Summary struct {
	XLabel string  `json:"xLabel"`
	YLabel string  `json:"yLabel"`
	Points []Point `json:"points"`
	// Running mirrors the demo UI's "Running indicates incomplete
	// result space": true when the producing search was not exhaustive.
	Running bool `json:"running"`
}

// Summarize lays out packages along two automatically chosen aggregate
// dimensions. currentIdx highlights one package (-1 for none); running
// marks the result space incomplete.
func Summarize(prep *core.Prepared, pkgs []*core.Package, currentIdx int, running bool) (*Summary, error) {
	if len(pkgs) == 0 {
		return &Summary{Running: running}, nil
	}
	dims := candidateDims(prep)
	if len(dims) < 2 {
		return nil, fmt.Errorf("viz: need at least two numeric dimensions, have %d", len(dims))
	}
	// Evaluate every dimension for every package, then pick the two
	// with the largest normalized spread.
	vals := make([][]float64, len(dims))
	for d, agg := range dims {
		vals[d] = make([]float64, len(pkgs))
		for i, p := range pkgs {
			v, err := paql.EvalAgg(agg, p.Rows)
			if err != nil {
				return nil, err
			}
			f, _ := v.AsFloat()
			vals[d][i] = f
		}
	}
	xi, yi := pickDims(vals)
	s := &Summary{
		XLabel:  dims[xi].String(),
		YLabel:  dims[yi].String(),
		Running: running,
	}
	for i, p := range pkgs {
		s.Points = append(s.Points, Point{
			Index: i, X: vals[xi][i], Y: vals[yi][i],
			Obj: p.Objective, Size: p.Size(), Current: i == currentIdx,
		})
	}
	return s, nil
}

// candidateDims gathers aggregate dimensions: the query's own
// aggregates first (most meaningful to the user), then SUMs over the
// relation's numeric columns.
func candidateDims(prep *core.Prepared) []*paql.Agg {
	var dims []*paql.Agg
	seen := map[string]bool{}
	add := func(a *paql.Agg) {
		k := a.String()
		if !seen[k] {
			seen[k] = true
			dims = append(dims, a)
		}
	}
	for _, a := range prep.Analysis.Aggs {
		if a.Fn == "COUNT" && a.Filter == nil {
			continue // COUNT(*) is constant across equal-size packages
		}
		add(a)
	}
	rv := prep.Query.RelVar
	for _, c := range prep.Table.Schema.Cols {
		if !c.Type.Numeric() || keyLike(c.Name) {
			continue
		}
		col := &paql.Agg{Fn: "SUM", Arg: boundCol(prep, rv, c)}
		add(col)
	}
	return dims
}

// keyLike filters surrogate-key columns out of the dimension pool:
// summing row ids tells the user nothing about the package.
func keyLike(name string) bool {
	ln := strings.ToLower(name)
	return ln == "id" || ln == "rowid" || strings.HasSuffix(ln, "_id")
}

func boundCol(prep *core.Prepared, rv string, c schema.Column) *colExpr {
	ord, _ := prep.Table.Schema.IndexOf("", c.Name)
	return &colExpr{table: rv, name: c.Name, ord: ord}
}

// pickDims chooses the two dimensions with the largest coefficient of
// variation, requiring distinct dimensions.
func pickDims(vals [][]float64) (int, int) {
	type scored struct {
		idx   int
		score float64
	}
	var sc []scored
	for d, vs := range vals {
		mean, sd := meanStd(vs)
		score := sd
		if math.Abs(mean) > 1e-12 {
			score = sd / math.Abs(mean)
		}
		sc = append(sc, scored{d, score})
	}
	bestX, bestY := 0, 1
	bx, by := -1.0, -2.0
	for _, s := range sc {
		if s.score > bx {
			bestY, by = bestX, bx
			bestX, bx = s.idx, s.score
		} else if s.score > by {
			bestY, by = s.idx, s.score
		}
	}
	return bestX, bestY
}

func meanStd(vs []float64) (float64, float64) {
	if len(vs) == 0 {
		return 0, 0
	}
	m := 0.0
	for _, v := range vs {
		m += v
	}
	m /= float64(len(vs))
	ss := 0.0
	for _, v := range vs {
		ss += (v - m) * (v - m)
	}
	return m, math.Sqrt(ss / float64(len(vs)))
}

// RenderASCII draws the scatter as a width×height character grid with
// axis labels. Packages render as 'o', the current one as '@';
// overlapping packages show as '*'.
func (s *Summary) RenderASCII(w io.Writer, width, height int) {
	if width < 20 {
		width = 20
	}
	if height < 6 {
		height = 6
	}
	if len(s.Points) == 0 {
		fmt.Fprintln(w, "(no packages to display)")
		return
	}
	xmin, xmax := rangeOf(s.Points, func(p Point) float64 { return p.X })
	ymin, ymax := rangeOf(s.Points, func(p Point) float64 { return p.Y })
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	place := func(v, lo, hi float64, steps int) int {
		if hi-lo < 1e-12 {
			return steps / 2
		}
		i := int(math.Round((v - lo) / (hi - lo) * float64(steps-1)))
		if i < 0 {
			i = 0
		}
		if i >= steps {
			i = steps - 1
		}
		return i
	}
	for _, p := range s.Points {
		cx := place(p.X, xmin, xmax, width)
		cy := height - 1 - place(p.Y, ymin, ymax, height)
		cur := grid[cy][cx]
		switch {
		case p.Current:
			grid[cy][cx] = '@'
		case cur == ' ':
			grid[cy][cx] = 'o'
		case cur == 'o':
			grid[cy][cx] = '*'
		}
	}
	status := ""
	if s.Running {
		status = "  [running: result space incomplete]"
	}
	fmt.Fprintf(w, "%s (vertical) vs %s (horizontal)%s\n", s.YLabel, s.XLabel, status)
	fmt.Fprintf(w, "%10.4g ┤%s\n", ymax, string(grid[0]))
	for r := 1; r < height-1; r++ {
		fmt.Fprintf(w, "%10s │%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(w, "%10.4g ┤%s\n", ymin, string(grid[height-1]))
	fmt.Fprintf(w, "%10s └%s\n", "", strings.Repeat("─", width))
	fmt.Fprintf(w, "%10s  %-*.4g%*.4g\n", "", width/2, xmin, width-width/2, xmax)
}

// JSON renders the summary for the web UI.
func (s *Summary) JSON() ([]byte, error) { return json.Marshal(s) }

func rangeOf(pts []Point, f func(Point) float64) (float64, float64) {
	lo, hi := f(pts[0]), f(pts[0])
	for _, p := range pts[1:] {
		v := f(p)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// colExpr is a pre-bound column reference usable inside viz-made
// aggregates without re-binding.
type colExpr struct {
	table, name string
	ord         int
}

// Eval reads the column from the row.
func (c *colExpr) Eval(row schema.Row) (value.V, error) {
	if c.ord < 0 || c.ord >= len(row) {
		return value.Null(), fmt.Errorf("viz: column %s.%s out of range", c.table, c.name)
	}
	return row[c.ord], nil
}

// String renders the qualified name.
func (c *colExpr) String() string { return c.table + "." + c.name }

package viz

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/minidb"
)

func preparedWithPackages(t *testing.T) (*core.Prepared, []*core.Package) {
	t.Helper()
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 50, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	prep, err := core.Prepare(db, `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 900 AND 2400
		MAXIMIZE SUM(P.protein) LIMIT 6`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prep.Run(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) < 4 {
		t.Fatalf("need several packages, got %d", len(res.Packages))
	}
	return prep, res.Packages
}

func TestSummarizeChoosesQueryDimensions(t *testing.T) {
	prep, pkgs := preparedWithPackages(t)
	s, err := Summarize(prep, pkgs, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != len(pkgs) {
		t.Fatalf("points = %d", len(s.Points))
	}
	if s.XLabel == s.YLabel {
		t.Errorf("dimensions must differ: %q", s.XLabel)
	}
	if !s.Points[0].Current {
		t.Error("current package not flagged")
	}
	for _, p := range s.Points[1:] {
		if p.Current {
			t.Error("only one package should be current")
		}
	}
	// every point has positive coordinates for this workload
	for _, p := range s.Points {
		if p.X <= 0 || p.Y <= 0 {
			t.Errorf("suspicious point %+v", p)
		}
		if p.Size != 3 {
			t.Errorf("size = %d", p.Size)
		}
	}
}

func TestRenderASCII(t *testing.T) {
	prep, pkgs := preparedWithPackages(t)
	s, err := Summarize(prep, pkgs, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	s.RenderASCII(&sb, 40, 10)
	out := sb.String()
	if !strings.Contains(out, "@") {
		t.Error("current package glyph missing")
	}
	if !strings.Contains(out, "o") && !strings.Contains(out, "*") {
		t.Error("package glyphs missing")
	}
	if !strings.Contains(out, "running") {
		t.Error("running indicator missing")
	}
	if !strings.Contains(out, "vertical") {
		t.Error("axis labels missing")
	}
}

func TestRenderEmptyAndJSON(t *testing.T) {
	s := &Summary{Running: true}
	var sb strings.Builder
	s.RenderASCII(&sb, 40, 10)
	if !strings.Contains(sb.String(), "no packages") {
		t.Error("empty render missing message")
	}
	prep, pkgs := preparedWithPackages(t)
	full, err := Summarize(prep, pkgs, -1, false)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := full.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(full.Points) || back.XLabel != full.XLabel {
		t.Error("JSON round trip lost data")
	}
}

func TestSummarizeEmptyPackages(t *testing.T) {
	prep, _ := preparedWithPackages(t)
	s, err := Summarize(prep, nil, -1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 0 || !s.Running {
		t.Errorf("empty summary = %+v", s)
	}
}

package core

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/minidb"
	"repro/internal/sketch"
)

const incrQuery = `
	SELECT PACKAGE(R) AS P
	FROM recipes R
	WHERE R.gluten = 'free'
	SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500
	MAXIMIZE SUM(P.protein)`

func incrOptions(cache *sketch.Cache, memo *FingerprintMemo) Options {
	return Options{
		Strategy:            SketchRefineStrategy,
		Seed:                1,
		SketchPartitionSize: 16,
		SketchDepth:         2,
		SketchCache:         cache,
		SketchMemo:          memo,
		SketchIncremental:   true,
	}
}

// TestWarmEvaluationHashesNothing pins the fingerprint-memo contract:
// a repeat evaluation over an unchanged table performs zero candidate
// hashing — the O(n)-per-query rehash the memo exists to kill.
func TestWarmEvaluationHashesNothing(t *testing.T) {
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 400, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	cache := sketch.NewCache(0)
	memo := NewFingerprintMemo()
	opts := incrOptions(cache, memo)

	run := func() *Result {
		t.Helper()
		prep, err := Prepare(db, incrQuery)
		if err != nil {
			t.Fatal(err)
		}
		res, err := prep.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	cold := run()
	afterCold := memo.Stats()
	if afterCold.RowsHashed != int64(cold.Stats.Candidates) {
		t.Fatalf("cold run hashed %d rows for %d candidates", afterCold.RowsHashed, cold.Stats.Candidates)
	}
	warm := run()
	if !warm.Stats.SketchCacheHit {
		t.Fatal("warm run must hit the tree cache")
	}
	afterWarm := memo.Stats()
	if afterWarm.RowsHashed != afterCold.RowsHashed {
		t.Fatalf("warm run hashed %d extra candidate rows; want zero",
			afterWarm.RowsHashed-afterCold.RowsHashed)
	}
	if afterWarm.Hits != afterCold.Hits+1 {
		t.Fatalf("memo hits = %d, want %d", afterWarm.Hits, afterCold.Hits+1)
	}
}

// TestIncrementalInsertPatchesTree drives an INSERT batch through
// minidb → core → sketch: the write must invalidate the exact cache
// key, hash only the appended candidates, and patch the stale tree in
// place instead of rebuilding.
func TestIncrementalInsertPatchesTree(t *testing.T) {
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 500, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	cache := sketch.NewCache(0)
	memo := NewFingerprintMemo()
	opts := incrOptions(cache, memo)

	prep, err := Prepare(db, incrQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Run(opts); err != nil {
		t.Fatal(err)
	}
	before := memo.Stats()

	inserted := 5
	for i := 0; i < inserted; i++ {
		stmt := fmt.Sprintf("INSERT INTO recipes VALUES (%d, 'delta%d', 'fusion', 'dinner', 'free', %d, %d, 10, 50, 9.5, 4.5)",
			80000+i, i, 650+i*10, 30+i)
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	prep2, err := Prepare(db, incrQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prep2.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SketchCacheHit {
		t.Fatal("stale tree served after a write")
	}
	if !res.Stats.SketchTreePatched {
		t.Fatalf("tree was rebuilt, not patched; notes: %v", res.Stats.Notes)
	}
	if res.Stats.SketchDeltaApplied != inserted {
		t.Fatalf("DeltaApplied = %d, want %d", res.Stats.SketchDeltaApplied, inserted)
	}
	after := memo.Stats()
	if hashed := after.RowsHashed - before.RowsHashed; hashed != int64(inserted) {
		t.Fatalf("write of %d rows hashed %d candidates; want delta-only hashing", inserted, hashed)
	}
	if len(res.Packages) == 0 {
		t.Fatal("no package after the write")
	}
}

// TestIncrementalDeletePatchesTree is the DELETE mirror: tombstoned
// candidates must invalidate the cache, renumber the survivors, and
// patch — covering the delete path end to end through minidb's delta
// log, the memo's remap, and the sketch engine.
func TestIncrementalDeletePatchesTree(t *testing.T) {
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 500, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	cache := sketch.NewCache(0)
	memo := NewFingerprintMemo()
	opts := incrOptions(cache, memo)

	prep, err := Prepare(db, incrQuery)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := prep.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	before := memo.Stats()

	res0, err := db.Exec("DELETE FROM recipes WHERE id >= 100 AND id < 120")
	if err != nil {
		t.Fatal(err)
	}
	if res0.Affected == 0 {
		t.Fatal("delete removed nothing; fixture broken")
	}
	prep2, err := Prepare(db, incrQuery)
	if err != nil {
		t.Fatal(err)
	}
	removed := cold.Stats.Candidates - len(prep2.Instance.Rows)
	if removed <= 0 {
		t.Fatalf("delete removed no candidates (%d -> %d)", cold.Stats.Candidates, len(prep2.Instance.Rows))
	}
	res, err := prep2.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SketchCacheHit {
		t.Fatal("stale tree served after a delete")
	}
	if !res.Stats.SketchTreePatched {
		t.Fatalf("tree was rebuilt, not patched; notes: %v", res.Stats.Notes)
	}
	if res.Stats.SketchDeltaApplied != removed {
		t.Fatalf("DeltaApplied = %d, want %d", res.Stats.SketchDeltaApplied, removed)
	}
	after := memo.Stats()
	if after.RowsHashed != before.RowsHashed {
		t.Fatalf("delete hashed %d candidate rows; deletions need none", after.RowsHashed-before.RowsHashed)
	}
	if len(res.Packages) == 0 {
		t.Fatal("no package after the delete")
	}
	// And the next evaluation over the patched state is warm again.
	prep3, err := Prepare(db, incrQuery)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := prep3.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.SketchCacheHit {
		t.Fatal("patched tree not cached under the new fingerprint")
	}
	if memo.Stats().RowsHashed != after.RowsHashed {
		t.Fatal("warm run after the delete rehashed candidates")
	}
}

// TestIncrementalDisabledRebuilds pins the ablation: with
// SketchIncremental off the memo still kills rehashing, but a write
// forces a full rebuild (no patching).
func TestIncrementalDisabledRebuilds(t *testing.T) {
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: 300, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	cache := sketch.NewCache(0)
	memo := NewFingerprintMemo()
	opts := incrOptions(cache, memo)
	// An explicit "off" must survive the planner's patch-vs-rebuild
	// decision; the Set flag is how the surfaces mark it forced.
	opts.SketchIncremental = false
	opts.SketchIncrementalSet = true

	prep, err := Prepare(db, incrQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Run(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO recipes VALUES (80000, 'x', 'fusion', 'dinner', 'free', 700, 30, 10, 50, 9.5, 4.5)"); err != nil {
		t.Fatal(err)
	}
	prep2, err := Prepare(db, incrQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prep2.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SketchTreePatched {
		t.Fatal("patching ran with SketchIncremental disabled")
	}
	if res.Stats.SketchCacheHit {
		t.Fatal("stale tree served")
	}
}

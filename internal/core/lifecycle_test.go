package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/lifecycle"
	"repro/internal/minidb"
)

func lcDB(t *testing.T, n int) *minidb.DB {
	t.Helper()
	db := minidb.New()
	if err := dataset.LoadRecipes(db, "recipes", dataset.RecipesConfig{N: n, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	return db
}

const lcQuery = `
	SELECT PACKAGE(R) AS P FROM recipes R
	SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500
	MAXIMIZE SUM(P.protein)`

func TestRunContextCanceledBeforeStart(t *testing.T) {
	db := lcDB(t, 100)
	prep, err := Prepare(db, lcQuery)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := prep.RunContext(ctx, Options{}); !errors.Is(err, lifecycle.ErrCanceled) {
		t.Fatalf("RunContext on dead ctx = %v, want ErrCanceled", err)
	}
	// The cause survives the wrap.
	if _, err := prep.RunContext(ctx, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cause lost: %v", err)
	}
	// The same Prepared still works afterwards.
	if res, err := prep.RunContext(context.Background(), Options{}); err != nil || len(res.Packages) == 0 {
		t.Fatalf("follow-up query: packages=%d err=%v", len(res.Packages), err)
	}
}

func TestPrepareContextCanceled(t *testing.T) {
	db := lcDB(t, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PrepareContext(ctx, db, lcQuery); !errors.Is(err, lifecycle.ErrCanceled) {
		t.Fatalf("PrepareContext on dead ctx = %v, want ErrCanceled", err)
	}
	if _, err := EvaluateContext(ctx, db, lcQuery, Options{}); !errors.Is(err, lifecycle.ErrCanceled) {
		t.Fatalf("EvaluateContext on dead ctx = %v, want ErrCanceled", err)
	}
}

func TestRunContextInfeasibleTyped(t *testing.T) {
	db := lcDB(t, 30)
	// Contradictory cardinality bounds: provably no package.
	prep, err := Prepare(db, `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) >= 5 AND COUNT(*) <= 2`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prep.RunContext(context.Background(), Options{})
	if !errors.Is(err, lifecycle.ErrInfeasible) {
		t.Fatalf("contradictory bounds = %v, want ErrInfeasible", err)
	}
	if res == nil || res.Stats.Plan == nil {
		t.Fatal("infeasible result should still carry the plan for diagnostics")
	}
	// The legacy surface keeps its answer-not-error contract.
	lres, err := prep.Run(Options{})
	if err != nil || lres == nil || len(lres.Packages) != 0 {
		t.Fatalf("legacy Run: res=%v err=%v, want empty result and nil error", lres, err)
	}

	// An exact strategy completing empty is also provably infeasible.
	// Calories are integer-valued, so a fractional SUM target has no
	// solution — but the cardinality bounds cannot see that, so the
	// verdict must come from the solver itself.
	prep2, err := Prepare(db, `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 2 AND SUM(P.calories) = 1000.5`)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := prep2.RunContext(context.Background(), Options{Strategy: Solver})
	if !errors.Is(err, lifecycle.ErrInfeasible) {
		t.Fatalf("exact-solver empty = %v, want ErrInfeasible", err)
	}
	if res2 == nil || !res2.Stats.Exact {
		t.Fatal("the infeasibility verdict must come from an exact run")
	}
}

func TestRunContextHeuristicEmptyIsNotInfeasible(t *testing.T) {
	db := lcDB(t, 5000)
	// Unsatisfiable (integer calories, fractional target), but
	// sketch-refine cannot prove it: the contract keeps this an answer
	// (no packages, note) rather than a verdict.
	prep, err := Prepare(db, `
		SELECT PACKAGE(R) AS P FROM recipes R
		SUCH THAT COUNT(*) = 2 AND SUM(P.calories) = 1000.5`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prep.RunContext(context.Background(), Options{Strategy: SketchRefineStrategy})
	if err != nil {
		t.Fatalf("heuristic empty answer should not be an error: %v", err)
	}
	if len(res.Packages) != 0 || res.Stats.Exact {
		t.Fatalf("packages=%d exact=%v", len(res.Packages), res.Stats.Exact)
	}
}

func TestRunContextMemoryBudget(t *testing.T) {
	db := lcDB(t, 200)
	prep, err := Prepare(db, lcQuery)
	if err != nil {
		t.Fatal(err)
	}
	// One byte of budget refuses everything, before any solve work.
	res, err := prep.RunContext(context.Background(), Options{MemoryBudget: 1})
	if !errors.Is(err, lifecycle.ErrBudgetExceeded) {
		t.Fatalf("budget 1B = %v, want ErrBudgetExceeded", err)
	}
	if res == nil || res.Stats.MemoryEstimate <= 0 {
		t.Fatal("refusal should report the estimate that tripped it")
	}
	// A generous budget admits the query; the estimate is still reported.
	res, err = prep.RunContext(context.Background(), Options{MemoryBudget: 1 << 30})
	if err != nil || len(res.Packages) == 0 {
		t.Fatalf("generous budget: packages=%d err=%v", len(res.Packages), err)
	}
	if res.Stats.MemoryEstimate <= 0 || res.Stats.MemoryEstimate >= 1<<30 {
		t.Fatalf("estimate = %d", res.Stats.MemoryEstimate)
	}
	// The legacy surface enforces the (new) knob too — it predates only
	// the cancellation and infeasibility parts of the taxonomy.
	if _, err := prep.Run(Options{MemoryBudget: 1}); !errors.Is(err, lifecycle.ErrBudgetExceeded) {
		t.Fatalf("legacy Run with budget = %v, want ErrBudgetExceeded", err)
	}
}

func TestRunContextDeadlineKeepsPackages(t *testing.T) {
	db := lcDB(t, 100)
	prep, err := Prepare(db, lcQuery)
	if err != nil {
		t.Fatal(err)
	}
	// A deadline generous enough for this tiny solve: packages come back
	// clean even though the context carries a deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := prep.RunContext(ctx, Options{})
	if err != nil || len(res.Packages) == 0 {
		t.Fatalf("packages=%d err=%v", len(res.Packages), err)
	}
	// The context deadline became the soft budget: the strategies saw a
	// bounded Timeout even though the caller set none.
	if res.Stats.Elapsed > 30*time.Second {
		t.Fatal("elapsed exceeds the deadline")
	}
}

func TestErrorsAreExclusive(t *testing.T) {
	// The taxonomy's sentinels never alias: one outcome, one category.
	errs := []error{
		lifecycle.Infeasible("x"),
		lifecycle.Canceled(context.Canceled),
		lifecycle.BudgetExceeded(10, 1),
		lifecycle.Shed("full"),
	}
	sentinels := []error{
		lifecycle.ErrInfeasible, lifecycle.ErrCanceled,
		lifecycle.ErrBudgetExceeded, lifecycle.ErrAdmission,
	}
	for i, e := range errs {
		for j, s := range sentinels {
			if got := errors.Is(e, s); got != (i == j) {
				t.Errorf("errors.Is(%v, %v) = %v", e, s, got)
			}
		}
	}
}
